#!/usr/bin/env python3
"""Perf-regression gate over the committed bench baselines.

Compares bench_results/*.csv produced by the current build against the
checked-in baselines in bench_results/baselines/*.csv and fails when

  - a throughput metric (wall qps, achieved qps, qps per dollar) drops by
    more than its tolerance, or
  - a modeled-cost metric (modeled/kernel/interconnect ms, $/hr) rises by
    more than its tolerance.

Wall-clock throughput gets a wide 25% band (shared CI runners are noisy);
modeled costs come off the deterministic simulator and get tight bands.

A before/after table is appended to $GITHUB_STEP_SUMMARY when set (plain
stdout otherwise). Refresh the baselines after an intentional perf change
with:

    python3 ci/bench_gate.py --refresh   # then commit bench_results/baselines
"""

import argparse
import csv
import os
import shutil
import sys

RESULTS_DIR = "bench_results"
BASELINE_DIR = os.path.join(RESULTS_DIR, "baselines")

# Per-file gate config. `key`: columns identifying a row (an occurrence
# counter is appended, so duplicate keys still pair up). `metrics`: column ->
# (direction, relative tolerance[, always_ok]); "lower" fails when value <
# base*(1-tol), "upper" fails when value > base*(1+tol). The optional third
# element is an absolute value at which the metric always passes regardless
# of the relative band — used for tail latencies, where the baseline can
# land on a lucky run but any value under the SLA is fine. `rows`: predicate
# choosing which rows participate.
GATES = {
    "serve_throughput.csv": {
        "key": ["mode", "backend", "device", "shards", "batch", "devices"],
        "rows": lambda r: r["mode"] in ("direct", "batcher", "multidev", "fleet"),
        "metrics": {
            "qps": ("lower", 0.25),
            "modeled_ms": ("upper", 0.10),
            "kernel_ms": ("upper", 0.10),
            "interconnect_ms": ("upper", 0.10),
            "dollars_per_hr": ("upper", 0.01),
            "qps_per_dollar": ("lower", 0.01),
        },
        # Wall-clock qps only exists for rows that actually ran queries;
        # fleet rows are pure cost-model output, so their qps column is the
        # modeled fleet capacity and far too stable to need the wide band.
        "skip_metric": lambda r, m: (
            (m == "qps" and r["mode"] == "fleet")
            or (m != "qps" and r["mode"] in ("direct", "batcher")
                and r["backend"] == "cpu")
        ),
    },
    "orchestrate_refresh.csv": {
        "key": ["delta_rate_per_s", "cadence_ms", "tier_mode", "cycle"],
        "rows": lambda r: True,
        # delta_to_promote_ms is the point of the incremental tier: the
        # whole snapshot→train→gate→promote cycle must stay far under the
        # full-ALS cycle (~80-110 ms in these cells). The wide relative band
        # absorbs runner noise; the absolute floor means any value under
        # 50 ms passes outright, while an incremental cycle that silently
        # fell back to full-tier cost blows through both. Only rows that
        # ran the incremental tier gate — full and consolidation cycles are
        # the comparison baseline, not the regression surface.
        "metrics": {
            "delta_to_promote_ms": ("upper", 1.00, 50.0),
        },
        "skip_metric": lambda r, m: r["tier"] != "incremental",
    },
    "serve_netload.csv": {
        "key": ["mode", "conns", "offered_qps"],
        "rows": lambda r: True,
        # e2e_p99_ms is the client-measured accept→reply tail through the
        # sharded front-end; it only gates the shaped sweeps (bursty/diurnal
        # run at a fixed offered load, so their tail is comparable across
        # runs). Tail latency on a shared runner is noisy — one scheduler
        # stall mid-burst moves p99 by tens of ms — so the relative band is
        # wide and anything under 75 ms passes outright; a front-end
        # regression at 1k connections (the old rebuild-the-pollfd-vector
        # loop) shows up as hundreds of ms, well past both.
        "metrics": {
            "achieved_qps": ("lower", 0.25),
            "e2e_p99_ms": ("upper", 1.00, 75.0),
        },
        "skip_metric": lambda r, m: (
            # The overload row's "achieved" qps is the shed-dominated drain
            # rate of an unthrottled dump, not a throughput SLO.
            (m == "achieved_qps" and r["mode"] == "overload")
            or (m == "e2e_p99_ms" and r["mode"] not in ("bursty", "diurnal"))
        ),
    },
}


def load_rows(path):
    with open(path, newline="") as f:
        return list(csv.DictReader(f))


def keyed(rows, cfg):
    out = {}
    counts = {}
    for row in rows:
        if not cfg["rows"](row):
            continue
        base = tuple(row[c] for c in cfg["key"])
        n = counts.get(base, 0)
        counts[base] = n + 1
        out[base + (n,)] = row
    return out


def refresh():
    os.makedirs(BASELINE_DIR, exist_ok=True)
    copied = []
    for name in GATES:
        src = os.path.join(RESULTS_DIR, name)
        if not os.path.exists(src):
            sys.exit(f"bench_gate: cannot refresh, {src} missing — run the "
                     "Release benches first")
        shutil.copy(src, os.path.join(BASELINE_DIR, name))
        copied.append(name)
    print(f"bench_gate: baselines refreshed ({', '.join(copied)}); "
          f"commit {BASELINE_DIR}/")


def check():
    failures = []
    lines = ["## Bench perf gate", "",
             "| file | row | metric | baseline | current | Δ | limit | ok |",
             "|---|---|---|---|---|---|---|---|"]
    for name, cfg in GATES.items():
        cur_path = os.path.join(RESULTS_DIR, name)
        base_path = os.path.join(BASELINE_DIR, name)
        if not os.path.exists(base_path):
            failures.append(f"{name}: no baseline at {base_path}")
            continue
        if not os.path.exists(cur_path):
            failures.append(f"{name}: bench output missing at {cur_path}")
            continue
        base_rows = keyed(load_rows(base_path), cfg)
        cur_rows = keyed(load_rows(cur_path), cfg)
        for key, base_row in base_rows.items():
            cur_row = cur_rows.get(key)
            label = "/".join(str(k) for k in key[:-1])
            if cur_row is None:
                failures.append(f"{name}: row {label} missing from current "
                                "results")
                continue
            for metric, spec in cfg["metrics"].items():
                direction, tol = spec[0], spec[1]
                always_ok = spec[2] if len(spec) > 2 else None
                if cfg["skip_metric"](base_row, metric):
                    continue
                base_v = float(base_row[metric])
                cur_v = float(cur_row[metric])
                if direction == "lower":
                    limit = base_v * (1.0 - tol)
                    ok = cur_v >= limit
                else:
                    limit = base_v * (1.0 + tol)
                    if always_ok is not None:
                        limit = max(limit, always_ok)
                    ok = cur_v <= limit
                delta = (cur_v / base_v - 1.0) * 100.0 if base_v else 0.0
                lines.append(
                    f"| {name} | {label} | {metric} | {base_v:.4g} "
                    f"| {cur_v:.4g} | {delta:+.1f}% | "
                    f"{'≥' if direction == 'lower' else '≤'} {limit:.4g} "
                    f"| {'✅' if ok else '❌'} |")
                if not ok:
                    failures.append(
                        f"{name}: {label} {metric} {cur_v:.4g} vs baseline "
                        f"{base_v:.4g} ({delta:+.1f}%, tolerance "
                        f"{'-' if direction == 'lower' else '+'}{tol:.0%})")
    if failures:
        lines += ["", "**Failures:**", ""]
        lines += [f"- {f}" for f in failures]
    report = "\n".join(lines) + "\n"
    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a") as f:
            f.write(report)
    print(report)
    if failures:
        print(f"bench_gate: FAILED ({len(failures)} regression(s))",
              file=sys.stderr)
        sys.exit(1)
    print("bench_gate: OK")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--refresh", action="store_true",
                        help="copy current bench CSVs into the baseline "
                             "directory instead of gating")
    args = parser.parse_args()
    if args.refresh:
        refresh()
    else:
        check()


if __name__ == "__main__":
    main()
