// Quickstart: factorize a small synthetic movie-ratings matrix with cuMF's
// ALS solver on one simulated GPU, and inspect the result.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/solver.hpp"
#include "data/synthetic.hpp"
#include "eval/metrics.hpp"
#include "gpusim/device_group.hpp"
#include "linalg/hermitian.hpp"
#include "sparse/split.hpp"

int main() {
  using namespace cumf;

  // 1. Make a ratings matrix: 2,000 users × 500 movies, ~60K ratings with a
  //    planted rank-8 taste structure plus noise.
  data::SyntheticOptions gen;
  gen.m = 2000;
  gen.n = 500;
  gen.nz = 60'000;
  gen.f_true = 8;
  gen.noise_std = 0.4;
  gen.seed = 42;
  const sparse::CooMatrix ratings = data::generate_ratings(gen);

  // 2. Hold out 10% for evaluation and build the solver's CSR/CSC views.
  util::Rng rng(7);
  auto split = sparse::split_ratings(ratings, 0.1, rng);
  const auto R = sparse::coo_to_csr(split.train);
  const auto Rt = sparse::csc_as_csr_of_transpose(sparse::csr_to_csc(R));

  // 3. One simulated Titan X; the planner picks single-device MO-ALS.
  const auto topo = gpusim::PcieTopology::flat(1);
  gpusim::DeviceGroup gpu(1, gpusim::titan_x(), topo);

  core::SolverConfig cfg;
  cfg.als.f = 16;        // latent dimension
  cfg.als.lambda = 0.05f;
  cfg.als.verbose = true;
  core::AlsSolver solver(gpu.pointers(), topo, R, Rt, cfg);
  std::printf("plan: update-X %s | update-Theta %s\n",
              solver.plan_x().describe().c_str(),
              solver.plan_theta().describe().c_str());

  // 4. Train and watch test RMSE fall toward the noise floor (0.4).
  const auto history =
      solver.train(/*iterations=*/8, &split.train, &split.test, "quickstart");
  for (const auto& pt : history.points) {
    std::printf("  iter %d: train RMSE %.4f, test RMSE %.4f "
                "(modeled GPU time %.3fs)\n",
                pt.iteration, pt.train_rmse, pt.test_rmse, pt.modeled_seconds);
  }

  // 5. Predict: score user 3 against a few movies.
  const auto& X = solver.x();
  const auto& Theta = solver.theta();
  std::printf("\npredictions for user 3:\n");
  for (const idx_t movie : {0, 100, 250, 499}) {
    std::printf("  movie %3d -> %.2f\n", movie,
                linalg::dot(X.row(3), Theta.row(movie), cfg.als.f));
  }
  std::printf("\nfinal test RMSE %.4f (noise floor %.1f)\n",
              history.points.back().test_rmse, gen.noise_std);
  return 0;
}
