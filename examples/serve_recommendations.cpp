// End-to-end serving demo: train a model with ALS, checkpoint it, restore it
// into a live sharded FactorStore, and serve batched top-k recommendations
// through the RequestBatcher — then *retrain* and hot-swap the fresher
// checkpoint into the running server without dropping a query: the full
// train → serve → retrain → hot-swap loop the paper's cheap-retraining
// pitch implies.
//
// With a target load, it also sizes a serving fleet: the trained model is
// replayed through GpuSimScoringBackend on each priced device spec, and the
// cost model answers "how many GPUs, at what $/hour, to serve target_qps at
// p99 <= p99_ms".
//
// With --port the server stays up after the demo: the trained model keeps
// serving over TCP (protocol: src/serve/net/protocol.hpp) until SIGINT, so a
// second terminal can drive it with the network load generator.
//
// With --daemon (implies --port) the retrain orchestrator runs behind the
// server: rating deltas arriving over the wire (AddRating op) land in a
// RatingLog, the orchestrator retrains on a cadence or a delta-count
// trigger, gates each candidate on held-out RMSE + recall@k, and hot-swaps
// passing models under the live traffic — watch the generation column
// advance from the other terminal. --train-tier picks the retraining tier
// (full ALS, incremental SGD, or auto) and --consolidate-every N sets how
// often the auto tier schedules a full-ALS consolidation cycle; the
// shutdown audit prints per-tier cycle counts.
//
// With --trace-out FILE request tracing is on for the whole run and the
// Chrome trace-event JSON is written to FILE on the way out — including after
// Ctrl-C in --port mode, so a traced serving session ends with a loadable
// timeline. In --daemon mode shutdown also prints the Prometheus-style
// metrics exposition (the same text a GetMetrics frame returns).
//
// In --port mode an SLO monitor always watches the served traffic:
// --slo-p99-ms sets the latency SLO threshold (e2e above it burns latency
// budget) and --slo-availability the availability objective (non-kOk replies
// and edge sheds burn it). A GetHealth frame (op 5) returns the alert
// states, burn rates, slow-query exemplars, and recent structured events at
// any time; the Ctrl-C shutdown audit prints the same health view plus the
// event tail, so an incident that ended the run is visible on the way out.
//
// Build & run:
//   cmake -B build -S . && cmake --build build -j
//   ./build/examples/serve_recommendations [shards] [top_k] [target_qps] [p99_ms] [--port N] [--daemon] [--train-tier full|incremental|auto] [--consolidate-every N] [--trace-out FILE] [--slo-p99-ms X] [--slo-availability F]
//   ./build/examples/serve_recommendations 4 10 1000000 5   # fleet-sizing mode
//   ./build/examples/serve_recommendations --port 7070 --daemon   # then, elsewhere:
//   ./build/bench/serve_netload --connect 127.0.0.1 7070 3000 10

#include <csignal>
#include <cstring>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <span>
#include <vector>

#include <memory>

#include "core/checkpoint.hpp"
#include "core/solver.hpp"
#include "costmodel/machines.hpp"
#include "costmodel/serving_fleet.hpp"
#include "data/synthetic.hpp"
#include "eval/metrics.hpp"
#include "gpusim/device_group.hpp"
#include "obs/events.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "orchestrate/orchestrator.hpp"
#include "serve/batcher.hpp"
#include "serve/factor_store.hpp"
#include "serve/live_store.hpp"
#include "serve/metrics_export.hpp"
#include "serve/net/server.hpp"
#include "serve/scoring_backend.hpp"
#include "serve/topk.hpp"
#include "sparse/split.hpp"

int main(int argc, char** argv) {
  using namespace cumf;

  bool serve_over_tcp = false;
  bool daemon_mode = false;
  std::uint16_t port = 0;
  std::string trace_out;
  auto tier_mode = orchestrate::TrainTierMode::kAuto;
  int consolidate_every = 8;
  double slo_p99_ms = 50.0;
  double slo_availability = 0.999;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      serve_over_tcp = true;
      port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--daemon") == 0) {
      daemon_mode = true;
      serve_over_tcp = true;  // the orchestrator serves behind the socket
    } else if (std::strcmp(argv[i], "--train-tier") == 0 && i + 1 < argc) {
      const char* tier = argv[++i];
      if (std::strcmp(tier, "full") == 0) {
        tier_mode = orchestrate::TrainTierMode::kFull;
      } else if (std::strcmp(tier, "incremental") == 0) {
        tier_mode = orchestrate::TrainTierMode::kIncremental;
      } else if (std::strcmp(tier, "auto") == 0) {
        tier_mode = orchestrate::TrainTierMode::kAuto;
      } else {
        std::fprintf(stderr,
                     "--train-tier must be full, incremental, or auto\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--consolidate-every") == 0 &&
               i + 1 < argc) {
      consolidate_every = std::atoi(argv[++i]);
      if (consolidate_every < 1) {
        std::fprintf(stderr, "--consolidate-every must be >= 1\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--slo-p99-ms") == 0 && i + 1 < argc) {
      slo_p99_ms = std::atof(argv[++i]);
      if (slo_p99_ms <= 0.0) {
        std::fprintf(stderr, "--slo-p99-ms must be > 0\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--slo-availability") == 0 &&
               i + 1 < argc) {
      slo_availability = std::atof(argv[++i]);
      if (slo_availability <= 0.0 || slo_availability >= 1.0) {
        std::fprintf(stderr, "--slo-availability must be in (0, 1)\n");
        return 2;
      }
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (!trace_out.empty()) obs::TraceCollector::global().enable();
  const int shards = positional.size() > 0 ? std::atoi(positional[0]) : 4;
  const int top_k = positional.size() > 1 ? std::atoi(positional[1]) : 10;
  const double target_qps = positional.size() > 2 ? std::atof(positional[2]) : 0.0;
  const double p99_ms = positional.size() > 3 ? std::atof(positional[3]) : 5.0;
  if (shards < 1 || top_k < 1 || target_qps < 0.0 || p99_ms <= 0.0) {
    std::fprintf(stderr,
                 "usage: %s [shards >= 1] [top_k >= 1] [target_qps] [p99_ms] "
                 "[--port N] [--daemon] [--train-tier full|incremental|auto] "
                 "[--consolidate-every N] [--trace-out FILE] "
                 "[--slo-p99-ms X] [--slo-availability F]\n",
                 argv[0]);
    return 2;
  }

  // In --port mode SIGINT/SIGTERM must be blocked *before any thread
  // exists* — training pool threads and the batcher's flusher inherit the
  // mask, so a process-directed Ctrl-C can only land in the sigwait at step
  // 8 instead of killing an arbitrary worker thread with the default action.
  sigset_t sigs;
  sigemptyset(&sigs);
  if (serve_over_tcp) {
    sigaddset(&sigs, SIGINT);
    sigaddset(&sigs, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &sigs, nullptr);
  }

  // 1. Train: 3,000 users × 1,200 items, planted rank-8 taste structure.
  data::SyntheticOptions gen;
  gen.m = 3000;
  gen.n = 1200;
  gen.nz = 90'000;
  gen.f_true = 8;
  gen.noise_std = 0.4;
  gen.seed = 42;
  const sparse::CooMatrix ratings = data::generate_ratings(gen);

  util::Rng rng(7);
  auto split = sparse::split_ratings(ratings, 0.1, rng);
  const auto R = sparse::coo_to_csr(split.train);
  const auto Rt = sparse::csc_as_csr_of_transpose(sparse::csr_to_csc(R));

  const auto topo = gpusim::PcieTopology::flat(1);
  gpusim::DeviceGroup gpu(1, gpusim::titan_x(), topo);
  core::SolverConfig cfg;
  cfg.als.f = 16;
  cfg.als.lambda = 0.05f;
  core::AlsSolver solver(gpu.pointers(), topo, R, Rt, cfg);
  const auto history =
      solver.train(/*iterations=*/6, &split.train, &split.test, "serve-demo");
  std::printf("trained 6 ALS iterations, final test RMSE %.4f\n",
              history.points.back().test_rmse);

  // 2. Checkpoint, exactly as a training job would on its way out.
  const auto ckpt_dir =
      std::filesystem::temp_directory_path() / "cumf_serve_demo_ckpt";
  std::filesystem::create_directories(ckpt_dir);
  core::CheckpointManager manager(ckpt_dir.string());
  manager.save_x(solver.x(), solver.iterations_run());
  manager.save_theta(solver.theta(), solver.iterations_run());

  // 3. Restore into a *live* sharded store; attach the training CSR so users
  //    are never recommended items they already rated. The engine pins one
  //    generation per micro-batch, so step 6's hot swap below lands under
  //    live traffic without a lock on the query path.
  serve::LiveFactorStore live(
      serve::FactorStore::from_checkpoint(ckpt_dir.string(), shards));
  std::printf("restored checkpoint (iteration %d) into %d shards as generation %llu\n",
              static_cast<int>(live.pin()->restored_iteration()), live.shards(),
              static_cast<unsigned long long>(live.generation()));

  serve::TopKOptions engine_opt;
  engine_opt.exclude_rated = &R;
  const serve::TopKEngine engine(live, engine_opt);

  serve::BatcherOptions batch_opt;
  batch_opt.k = top_k;
  batch_opt.max_batch = 32;
  batch_opt.cache_capacity = 128;
  serve::RequestBatcher batcher(engine, batch_opt);

  // 4. Serve a burst of queries, a few hot users among them.
  std::vector<idx_t> traffic;
  util::Rng qrng(99);
  for (int q = 0; q < 500; ++q) {
    traffic.push_back(
        static_cast<idx_t>(qrng.zipf(static_cast<std::uint64_t>(gen.m), 1.1)));
  }
  // Closed-loop waves, so hot users from earlier waves hit the LRU cache.
  std::vector<serve::Recommendation> first_answer;
  std::vector<std::future<serve::BatchedAnswer>> futures;
  for (std::size_t q = 0; q < traffic.size(); q += 50) {
    futures.clear();
    const std::size_t hi = std::min(traffic.size(), q + 50);
    for (std::size_t i = q; i < hi; ++i) futures.push_back(batcher.submit(traffic[i]));
    for (std::size_t i = 0; i < futures.size(); ++i) {
      auto answer = futures[i].get().items;
      if (q == 0 && i == 0) first_answer = std::move(answer);
    }
  }

  std::printf("\ntop-%d for user %d:\n", top_k, traffic[0]);
  for (const auto& rec : first_answer) {
    std::printf("  item %4d  score %.3f\n", rec.item, rec.score);
  }

  // 5. Ranking quality of the served lists against the held-out test set.
  std::vector<std::vector<idx_t>> test_items(static_cast<std::size_t>(gen.m));
  for (std::size_t i = 0; i < split.test.val.size(); ++i) {
    test_items[static_cast<std::size_t>(split.test.row[i])].push_back(
        split.test.col[i]);
  }
  const auto ranking_quality = [&](const char* label) {
    double recall_sum = 0.0, ndcg_sum = 0.0;
    int evaluated = 0;
    for (idx_t u = 0; u < gen.m && evaluated < 200; ++u) {
      const auto& relevant = test_items[static_cast<std::size_t>(u)];
      if (relevant.empty()) continue;
      const auto top = engine.recommend_one(u, top_k);
      std::vector<idx_t> items;
      items.reserve(top.size());
      for (const auto& rec : top) items.push_back(rec.item);
      recall_sum += eval::recall_at_k(items, relevant);
      ndcg_sum += eval::ndcg_at_k(items, relevant);
      ++evaluated;
    }
    std::printf("\nranking quality (%s) over %d users: recall@%d %.3f, "
                "ndcg@%d %.3f\n",
                label, evaluated, top_k, recall_sum / evaluated, top_k,
                ndcg_sum / evaluated);
  };
  ranking_quality("generation 1");

  // 6. Retrain → hot swap: four more ALS iterations, checkpointed and
  //    swapped into the running server. The batcher keeps serving across
  //    the swap; its generation-tagged cache retires stale lists lazily.
  (void)solver.train(/*iterations=*/4, &split.train, &split.test, "serve-demo-2");
  manager.save_x(solver.x(), solver.iterations_run());
  manager.save_theta(solver.theta(), solver.iterations_run());
  const auto outcome = live.refresh_from_checkpoint(ckpt_dir.string());
  if (!outcome.swapped) {
    std::fprintf(stderr, "refresh failed: %s\n", outcome.error.c_str());
    return 1;
  }
  std::printf("\nhot-swapped checkpoint (iteration %d) in as generation %llu: "
              "load %.1f ms off the query path, swap pause %.4f ms\n",
              static_cast<int>(live.pin()->restored_iteration()),
              static_cast<unsigned long long>(outcome.generation),
              outcome.load_ms, outcome.swap_pause_ms);

  // Replay the same traffic through the same batcher: hot users that were
  // cached under generation 1 are rescored against the fresh factors.
  for (std::size_t q = 0; q < traffic.size(); q += 50) {
    futures.clear();
    const std::size_t hi = std::min(traffic.size(), q + 50);
    for (std::size_t i = q; i < hi; ++i) futures.push_back(batcher.submit(traffic[i]));
    for (auto& fut : futures) (void)fut.get();
  }
  ranking_quality("generation 2");

  const auto stats = batcher.stats();
  std::printf("\nserve stats: %llu queries in %llu micro-batches, "
              "%llu cache hits / %llu misses (%llu stale lists retired), "
              "%llu scored, %llu pruned\n",
              static_cast<unsigned long long>(stats.queries),
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.cache_misses),
              static_cast<unsigned long long>(stats.cache_stale_evictions),
              static_cast<unsigned long long>(stats.items_scored),
              static_cast<unsigned long long>(stats.items_pruned));
  // `samples` is the retained percentile window; `total_recorded` is the
  // lifetime batch count this process actually flushed.
  std::printf("serving generation %llu after %llu refreshes "
              "(%llu rejected); engine batch latency: p50 %.2f ms, "
              "p99 %.2f ms over %llu batches (%llu in window)\n",
              static_cast<unsigned long long>(stats.generation),
              static_cast<unsigned long long>(stats.refreshes),
              static_cast<unsigned long long>(stats.refresh_failures),
              stats.batch_wall.p50_ms, stats.batch_wall.p99_ms,
              static_cast<unsigned long long>(stats.batch_wall.total_recorded),
              static_cast<unsigned long long>(stats.batch_wall.samples));
  std::printf("per-query latency: e2e p50 %.3f ms / p99 %.3f ms "
              "(cache hits included), queueing p99 %.3f ms\n",
              stats.e2e.p50_ms, stats.e2e.p99_ms, stats.queue_delay.p99_ms);

  // 7. Fleet-sizing mode: price a serving fleet for this exact model.
  if (target_qps > 0.0) {
    constexpr int kFleetBatch = 32;
    costmodel::FleetRequirement req;
    req.target_qps = target_qps;
    req.p99_ms = p99_ms;

    std::printf("\nfleet plan for %.0f qps at p99 <= %.1f ms:\n", target_qps,
                p99_ms);
    std::printf("%-8s %11s %8s %11s %10s %13s\n", "device", "qps/device",
                "devices", "p99(ms)", "$/hr", "qps/$-hr");
    // Pinning keeps the probed generation alive and bit-stable even if a
    // refresh lands while the fleet probes run.
    const auto pinned = live.pin();
    for (const auto& fd : costmodel::priced_serving_devices()) {
      // Replay a probe through the simulated backend: same top-k answers,
      // but every sweep is accounted on the device's roofline clock.
      gpusim::Device dev(0, fd.spec);
      serve::GpuSimScoringBackend backend(dev, *pinned.store);
      serve::TopKOptions opt;
      opt.exclude_rated = &R;
      opt.user_block = kFleetBatch;
      opt.backend = &backend;
      const serve::TopKEngine modeled(*pinned.store, opt);
      for (std::size_t q = 0; q + kFleetBatch <= traffic.size();
           q += kFleetBatch) {
        (void)modeled.recommend(
            std::span<const idx_t>(traffic.data() + q, kFleetBatch), top_k);
      }

      costmodel::ServingProfile profile;
      profile.batch_seconds = modeled.batch_modeled_summary().p50_ms * 1e-3;
      profile.batch_users = kFleetBatch;
      const auto plan = costmodel::plan_serving_fleet(
          req, fd.spec, fd.pricing.price_per_device_hr, profile);
      std::printf("%-8s %11.0f %8d %11.2f %10.2f %13.0f%s\n",
                  plan.device.c_str(), plan.device_qps, plan.devices,
                  plan.modeled_p99_ms, plan.dollars_per_hr,
                  plan.qps_per_dollar_hr,
                  plan.feasible ? "" : "  (INFEASIBLE)");
    }
  }

  // 8. --port: keep the trained model serving over TCP until SIGINT (the
  //    mask was installed at the top of main, before any thread spawned).
  //    --daemon additionally runs the retrain orchestrator behind the
  //    server: AddRating frames feed its RatingLog, retrains fire on the
  //    cadence or the delta trigger, and gate-passing candidates hot-swap
  //    under the live connections.
  if (serve_over_tcp) {
    orchestrate::RatingLog rating_log(split.train);
    std::unique_ptr<orchestrate::Orchestrator> orch;
    const auto orch_dir =
        std::filesystem::temp_directory_path() / "cumf_serve_demo_orch";

    // SLO monitor for the wire-served traffic: the batcher feeds it every
    // answered query (latency + availability), the server feeds it edge
    // sheds, and GetHealth frames read it back.
    obs::SloOptions slo_opt;
    slo_opt.latency_threshold_ms = slo_p99_ms;
    slo_opt.availability_objective = slo_availability;
    obs::SloMonitor slo(slo_opt, &obs::EventLog::global());
    batcher.set_slo(&slo);

    serve::net::ServerOptions sopt;
    sopt.port = port;
    sopt.slo = &slo;
    if (daemon_mode) {
      std::filesystem::create_directories(orch_dir);
      orchestrate::OrchestratorOptions oopt;
      oopt.trainer.solver = cfg;  // same rank/lambda the demo trained with
      oopt.trainer.iterations = 2;
      oopt.gate.k = top_k;
      oopt.cadence = std::chrono::milliseconds(5000);
      oopt.delta_trigger = 500;
      oopt.tier_mode = tier_mode;
      oopt.consolidate_every = consolidate_every;
      // Retrain on cadence even without deltas so the generation column
      // visibly advances in the other terminal.
      oopt.skip_when_idle = false;
      oopt.work_dir = orch_dir.string();
      orch = std::make_unique<orchestrate::Orchestrator>(
          rating_log, live, split.test, oopt, &R);
      sopt.ingest = [&rating_log](idx_t user, idx_t item, double value) {
        return rating_log.append(user, item, static_cast<real_t>(value));
      };
      sopt.augment_stats = [&orch](serve::ServeStats& s) {
        orch->merge_into(&s);
      };
    }

    serve::net::TcpServer server(batcher, sopt);
    if (orch) orch->start();
    std::printf("\nserving generation %llu on 127.0.0.1:%u (top-%d, %d users%s)"
                "\ndrive it from another terminal:\n"
                "  ./build/bench/serve_netload --connect 127.0.0.1 %u %d %d\n"
                "Ctrl-C to stop.\n",
                static_cast<unsigned long long>(live.generation()),
                server.port(), top_k, gen.m,
                daemon_mode ? ", retrain daemon on" : "", server.port(), gen.m,
                top_k);
    int sig = 0;
    sigwait(&sigs, &sig);

    if (orch) {
      orch->stop();
      const auto oc = orch->counters();
      std::printf("\norchestrator: %llu retrains, %llu promotions, "
                  "%llu rejections, %llu rollbacks; %llu deltas ingested "
                  "(%llu rejected); last gate rmse %.4f recall@%d %.3f; "
                  "last train %.0f ms wall / %.3f s modeled\n",
                  static_cast<unsigned long long>(oc.retrains),
                  static_cast<unsigned long long>(oc.promotions),
                  static_cast<unsigned long long>(oc.rejections),
                  static_cast<unsigned long long>(oc.rollbacks),
                  static_cast<unsigned long long>(oc.deltas_ingested),
                  static_cast<unsigned long long>(oc.deltas_rejected),
                  oc.last_gate_rmse, top_k, oc.last_gate_recall,
                  oc.last_train_wall_ms, oc.last_train_modeled_s);
      std::printf("retraining tiers: full %llu cycles (%llu promoted, "
                  "%llu rejected), incremental %llu cycles (%llu promoted, "
                  "%llu rejected); %llu escalations, %llu consolidations\n",
                  static_cast<unsigned long long>(oc.retrains_full),
                  static_cast<unsigned long long>(oc.promotions_full),
                  static_cast<unsigned long long>(oc.rejections_full),
                  static_cast<unsigned long long>(oc.retrains_incremental),
                  static_cast<unsigned long long>(oc.promotions_incremental),
                  static_cast<unsigned long long>(oc.rejections_incremental),
                  static_cast<unsigned long long>(oc.escalations),
                  static_cast<unsigned long long>(oc.consolidations));
      for (const auto& rec : orch->history()) {
        const char* what =
            rec.outcome == orchestrate::CycleOutcome::kPromoted   ? "promoted"
            : rec.outcome == orchestrate::CycleOutcome::kRejected ? "rejected"
            : rec.outcome == orchestrate::CycleOutcome::kRolledBack
                ? "rolled back"
                : "failed";
        std::printf("  cycle %llu [%s%s%s]: %s -> generation %llu "
                    "(gate rmse %.4f, recall %.3f)%s%s\n",
                    static_cast<unsigned long long>(rec.cycle),
                    orchestrate::tier_name(rec.tier),
                    rec.escalated ? ", escalated" : "",
                    rec.consolidation ? ", consolidation" : "", what,
                    static_cast<unsigned long long>(rec.generation),
                    rec.gate.rmse, rec.gate.recall,
                    rec.gate.reason.empty() ? "" : " — ",
                    rec.gate.reason.c_str());
      }
    }
    const auto net = server.stats();
    std::printf("\nshutting down: served %llu queries over the wire, "
                "accept→reply p99 %.3f ms (queueing p99 %.3f ms)\n",
                static_cast<unsigned long long>(net.queries - stats.queries),
                net.net_e2e.p99_ms, net.queue_delay.p99_ms);

    // Health on the way out — the same view a GetHealth frame (op 5) would
    // have returned moments earlier, so an incident that ended the run is
    // not lost with the process.
    {
      const obs::HealthSnapshot health = slo.snapshot();
      std::printf("\nSLO health at shutdown:\n"
                  "  latency      %-4s  fast burn %6.2f  slow burn %6.2f  "
                  "(threshold %.1f ms, %llu violations, %llu transitions)\n"
                  "  availability %-4s  fast burn %6.2f  slow burn %6.2f  "
                  "(%llu errors incl. sheds, %llu transitions)\n",
                  obs::alert_state_name(health.latency.state),
                  health.latency.fast_burn, health.latency.slow_burn,
                  health.latency_threshold_ms,
                  static_cast<unsigned long long>(health.latency.lifetime_bad),
                  static_cast<unsigned long long>(health.latency.transitions),
                  obs::alert_state_name(health.availability.state),
                  health.availability.fast_burn, health.availability.slow_burn,
                  static_cast<unsigned long long>(
                      health.availability.lifetime_bad),
                  static_cast<unsigned long long>(
                      health.availability.transitions));
      for (const auto& ex : health.exemplars) {
        std::printf("  slow query: user %llu  e2e %.3f ms = queue %.3f + "
                    "engine %.3f + finish %.3f\n",
                    static_cast<unsigned long long>(ex.user), ex.e2e_ms,
                    ex.queue_ms, ex.engine_ms, ex.finish_ms);
      }
      auto& events = obs::EventLog::global();
      std::printf("\nevent tail (%llu recorded, %llu dropped):\n%s",
                  static_cast<unsigned long long>(events.recorded()),
                  static_cast<unsigned long long>(events.dropped()),
                  events.export_json_lines(16).c_str());
    }
    if (daemon_mode) {
      // Final metrics snapshot — byte-identical in shape to what a GetMetrics
      // frame (op 4) would have returned over the wire moments earlier.
      std::printf("\nfinal metrics exposition:\n%s",
                  serve::metrics_exposition(net).c_str());
    }
    // Detach before the monitor leaves this scope: the batcher (and its
    // flusher thread) outlives the block.
    batcher.set_slo(nullptr);
    std::error_code ec;
    std::filesystem::remove_all(orch_dir, ec);
  }

  if (!trace_out.empty()) {
    auto& trace = obs::TraceCollector::global();
    trace.disable();
    if (trace.write_chrome_json(trace_out)) {
      std::printf("\ntrace: %llu events (%llu dropped by ring wrap) -> %s\n",
                  static_cast<unsigned long long>(trace.events_recorded()),
                  static_cast<unsigned long long>(trace.events_dropped()),
                  trace_out.c_str());
    } else {
      std::fprintf(stderr, "could not write trace to %s\n", trace_out.c_str());
    }
  }

  std::filesystem::remove_all(ckpt_dir);
  return 0;
}
