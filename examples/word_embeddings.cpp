// Word embeddings via matrix factorization — the paper's §1 notes MF is
// "applied in text mining, deriving hidden features of words" (GloVe).
//
// We synthesize a word-word co-occurrence matrix from a small planted topic
// model (words in the same topic co-occur often), factorize its log counts
// with cuMF ALS, and verify that nearest neighbours in embedding space land
// in the same topic.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "core/solver.hpp"
#include "gpusim/device_group.hpp"
#include "linalg/hermitian.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "util/rng.hpp"

namespace {

using namespace cumf;

constexpr int kVocab = 1200;
constexpr int kTopics = 8;

int topic_of(int word) { return word % kTopics; }

/// Synthetic co-occurrence: same-topic pairs co-occur ~30× as often, so
/// their aggregated counts dominate. The GloVe-style target is the log of
/// the total pair count, centered (subtracting the global mean removes the
/// rank-1 "everything co-occurs" component that would otherwise swamp the
/// topic structure).
sparse::CooMatrix co_occurrence(util::Rng& rng) {
  std::unordered_map<std::uint64_t, double> counts;
  constexpr nnz_t kPairs = 240'000;
  for (nnz_t k = 0; k < kPairs; ++k) {
    const auto a = static_cast<idx_t>(rng.next_below(kVocab));
    idx_t b;
    if (rng.next_double() < 0.8) {
      // same-topic partner
      b = static_cast<idx_t>(topic_of(a) +
                             kTopics * rng.next_below(kVocab / kTopics));
    } else {
      b = static_cast<idx_t>(rng.next_below(kVocab));
    }
    if (a == b) continue;
    counts[(static_cast<std::uint64_t>(a) << 32) |
           static_cast<std::uint32_t>(b)] += 1.0 + rng.lognormal(0.0, 0.4);
  }
  double mean = 0.0;
  for (const auto& [key, c] : counts) mean += std::log1p(c);
  mean /= static_cast<double>(counts.size());

  sparse::CooMatrix m;
  m.rows = m.cols = kVocab;
  m.reserve(static_cast<nnz_t>(counts.size()));
  for (const auto& [key, c] : counts) {
    m.push_back(static_cast<idx_t>(key >> 32),
                static_cast<idx_t>(key & 0xffffffffu),
                static_cast<real_t>(std::log1p(c) - mean));
  }
  return m;
}

double cosine(const real_t* a, const real_t* b, int f) {
  const double ab = linalg::dot(a, b, f);
  const double aa = linalg::dot(a, a, f);
  const double bb = linalg::dot(b, b, f);
  return ab / (std::sqrt(aa * bb) + 1e-12);
}

}  // namespace

int main() {
  using namespace cumf;
  util::Rng rng(2016);
  const auto cooc = co_occurrence(rng);
  const auto R = sparse::coo_to_csr(cooc);
  const auto Rt = sparse::csc_as_csr_of_transpose(sparse::csr_to_csc(R));
  std::printf("co-occurrence matrix: %d x %d, %lld entries\n", R.rows, R.cols,
              static_cast<long long>(R.nnz()));

  const auto topo = gpusim::PcieTopology::flat(1);
  gpusim::DeviceGroup gpu(1, gpusim::titan_x(), topo);
  core::SolverConfig cfg;
  cfg.als.f = 16;
  cfg.als.lambda = 0.02f;
  core::AlsSolver solver(gpu.pointers(), topo, R, Rt, cfg);
  for (int i = 0; i < 8; ++i) solver.run_iteration();

  // Word vectors: average the row and column factors (standard for GloVe).
  const int f = cfg.als.f;
  std::vector<real_t> vecs(static_cast<std::size_t>(kVocab) * f);
  for (idx_t w = 0; w < kVocab; ++w) {
    for (int k = 0; k < f; ++k) {
      vecs[static_cast<std::size_t>(w) * f + k] =
          0.5f * (solver.x().row(w)[k] + solver.theta().row(w)[k]);
    }
  }

  // For a sample of words, check that nearest neighbours share the topic.
  int checked = 0, same_topic = 0;
  for (idx_t w = 0; w < kVocab; w += 97) {
    double best = -2.0;
    idx_t best_word = -1;
    for (idx_t o = 0; o < kVocab; ++o) {
      if (o == w) continue;
      const double c = cosine(vecs.data() + static_cast<std::size_t>(w) * f,
                              vecs.data() + static_cast<std::size_t>(o) * f, f);
      if (c > best) {
        best = c;
        best_word = o;
      }
    }
    ++checked;
    if (topic_of(best_word) == topic_of(w)) ++same_topic;
    if (checked <= 5) {
      std::printf("  word %4d (topic %d): nearest neighbour %4d (topic %d), "
                  "cosine %.3f\n",
                  w, topic_of(w), best_word, topic_of(best_word), best);
    }
  }
  std::printf("nearest neighbour shares topic for %d/%d sampled words "
              "(chance: %.0f%%)\n",
              same_topic, checked, 100.0 / kTopics);
  return same_topic * 2 > checked ? 0 : 1;  // embeddings must beat chance
}
