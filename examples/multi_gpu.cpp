// Multi-GPU scale-up (SU-ALS, §4): train the same problem on 1, 2, and 4
// simulated GPUs and compare modeled training time, then force data
// parallelism and compare the three reduction schemes of Fig. 5.

#include <cstdio>

#include "core/solver.hpp"
#include "data/datasets.hpp"
#include "data/synthetic.hpp"
#include "gpusim/device_group.hpp"

int main() {
  using namespace cumf;

  const auto ds = data::make_sim_dataset(data::netflix(), 0.01, 99, 0.1, 16);
  std::printf("netflix-sim: m=%lld n=%lld nz=%lld\n",
              static_cast<long long>(ds.spec.m),
              static_cast<long long>(ds.spec.n),
              static_cast<long long>(ds.train_csr.nnz()));

  // --- model parallelism: 1 vs 2 vs 4 GPUs (Fig. 9 setup) ---
  std::printf("\nmodel parallelism (Θ replicated, X rows split):\n");
  double t1 = 0.0;
  for (const int p : {1, 2, 4}) {
    const auto topo = p > 2 ? gpusim::PcieTopology::two_socket(p)
                            : gpusim::PcieTopology::flat(p);
    gpusim::DeviceGroup gpus(p, gpusim::titan_x(), topo);
    core::SolverConfig cfg;
    cfg.als.f = 16;
    core::AlsSolver solver(gpus.pointers(), topo, ds.train_csr,
                           ds.train_rt_csr, cfg);
    for (int i = 0; i < 3; ++i) solver.run_iteration();
    const double t = solver.modeled_seconds();
    if (p == 1) t1 = t;
    std::printf("  %d GPU(s): %.3fs modeled for 3 iterations (speedup %.2fx)"
                "  [update-X plan: %s]\n",
                p, t, t1 / t, solver.plan_x().describe().c_str());
  }

  // --- data parallelism: reduction schemes on a two-socket machine ---
  std::printf("\ndata parallelism (Θ split 4 ways, Hermitians reduced):\n");
  core::Plan forced;
  forced.mode = core::ParallelMode::DataParallel;
  forced.p = 4;
  forced.q = 2;
  for (const auto scheme :
       {core::ReduceScheme::SingleDevice, core::ReduceScheme::OnePhase,
        core::ReduceScheme::TwoPhase}) {
    const auto topo = gpusim::PcieTopology::two_socket(4);
    gpusim::DeviceGroup gpus(4, gpusim::titan_x(), topo);
    core::SolverConfig cfg;
    cfg.als.f = 16;
    cfg.plan_x = forced;
    cfg.plan_t = forced;
    cfg.reduce = scheme;
    core::AlsSolver solver(gpus.pointers(), topo, ds.train_csr,
                           ds.train_rt_csr, cfg);
    for (int i = 0; i < 3; ++i) solver.run_iteration();
    std::printf("  %-14s: %.3fs modeled (reduce share %.3fs)\n",
                core::reduce_scheme_name(scheme), solver.modeled_seconds(),
                solver.profile().reduce);
  }
  std::printf("\nExpected: near-linear model-parallel speedup; "
              "two-phase < one-phase < single-device reduction cost.\n");
  return 0;
}
