// Graph analytics on the cuMF substrate — the paper's §7 future-work
// direction ("extend cuMF to deal with other sparse problems such as graph
// algorithms"). Two workloads on one synthetic social graph:
//
//  1. PageRank on the simulated device (the SpMV has the same gathered-read
//     profile the ALS kernels optimize);
//  2. link prediction via matrix factorization: the adjacency matrix is
//     implicit-feedback data (an edge is an observed interaction), so the
//     Hu-Koren implicit ALS solver applies unchanged.

#include <algorithm>
#include <cstdio>
#include <unordered_set>
#include <vector>

#include "core/implicit_als.hpp"
#include "gpusim/device_spec.hpp"
#include "graph/graph.hpp"
#include "graph/pagerank.hpp"
#include "linalg/hermitian.hpp"
#include "sparse/split.hpp"
#include "sparse/stats.hpp"

int main() {
  using namespace cumf;
  util::Rng rng(2016);

  // A 3,000-node preferential-attachment graph: heavy-tailed in-degrees
  // like real social/web graphs.
  const graph::Graph g = graph::preferential_attachment(3000, 5, rng);
  std::printf("graph: %d nodes, %lld edges\n", g.nodes(),
              static_cast<long long>(g.edges()));

  // --- 1. PageRank ---
  gpusim::Device dev(0, gpusim::titan_x());
  const auto pr = graph::pagerank(dev, g.adj);
  std::printf("pagerank converged in %d iterations (modeled device time "
              "%.4gs)\n",
              pr.iterations, dev.clock_seconds());
  std::vector<idx_t> order(static_cast<std::size_t>(g.nodes()));
  for (idx_t v = 0; v < g.nodes(); ++v) order[static_cast<std::size_t>(v)] = v;
  std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                    [&](idx_t a, idx_t b) {
                      return pr.scores[static_cast<std::size_t>(a)] >
                             pr.scores[static_cast<std::size_t>(b)];
                    });
  const auto in_deg = sparse::col_degrees(g.adj);
  std::printf("top-5 nodes by pagerank (in-degree in parens):");
  for (int i = 0; i < 5; ++i) {
    std::printf(" %d(%lld)", order[static_cast<std::size_t>(i)],
                static_cast<long long>(
                    in_deg[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])]));
  }
  std::printf("\n");

  // --- 2. link prediction via implicit MF ---
  sparse::CooMatrix edges;
  edges.rows = edges.cols = g.nodes();
  for (idx_t u = 0; u < g.nodes(); ++u) {
    for (const idx_t v : g.adj.row_cols(u)) {
      edges.push_back(u, v, 1.0f);
    }
  }
  auto split = sparse::split_ratings(edges, 0.2, rng);
  const auto R = sparse::coo_to_csr(split.train);
  const auto Rt = sparse::csc_as_csr_of_transpose(sparse::csr_to_csc(R));

  gpusim::Device dev2(0, gpusim::titan_x());
  core::ImplicitAlsOptions opt;
  opt.f = 24;
  opt.lambda = 0.05f;
  opt.alpha = 20.0f;
  core::ImplicitAlsSolver mf(dev2, R, Rt, opt);
  for (int i = 0; i < 8; ++i) mf.run_iteration();

  std::vector<std::unordered_set<idx_t>> known(
      static_cast<std::size_t>(g.nodes()));
  for (std::size_t k = 0; k < edges.val.size(); ++k) {
    known[static_cast<std::size_t>(edges.row[k])].insert(edges.col[k]);
  }
  long long wins = 0, trials = 0;
  for (std::size_t k = 0; k < split.test.val.size(); ++k) {
    const idx_t u = split.test.row[k];
    const double pos =
        linalg::dot(mf.x().row(u), mf.theta().row(split.test.col[k]), opt.f);
    for (int t = 0; t < 4; ++t) {
      const auto neg = static_cast<idx_t>(
          rng.next_below(static_cast<std::uint64_t>(g.nodes())));
      if (neg == u || known[static_cast<std::size_t>(u)].count(neg)) continue;
      ++trials;
      if (pos > linalg::dot(mf.x().row(u), mf.theta().row(neg), opt.f)) {
        ++wins;
      }
    }
  }
  const double auc = static_cast<double>(wins) / static_cast<double>(trials);
  std::printf("link-prediction AUC on held-out edges: %.3f "
              "(0.5 = random)\n", auc);
  return auc > 0.6 ? 0 : 1;
}
