// Top-N recommendation — the paper's motivating application (§1:
// collaborative filtering for e-commerce and content streaming).
//
// Trains cuMF ALS on a synthetic catalog with popularity skew, then produces
// per-user top-N lists, excluding items the user has already rated, and
// reports hit-rate against the held-out set.

#include <algorithm>
#include <cstdio>
#include <unordered_set>
#include <vector>

#include "core/solver.hpp"
#include "data/synthetic.hpp"
#include "gpusim/device_group.hpp"
#include "linalg/hermitian.hpp"
#include "sparse/split.hpp"

namespace {

using namespace cumf;

/// Scores every item for `user` and returns the indices of the best `n`
/// unseen ones.
std::vector<idx_t> top_n(const linalg::FactorMatrix& X,
                         const linalg::FactorMatrix& Theta, idx_t user, int n,
                         const std::unordered_set<idx_t>& seen) {
  const int f = X.f();
  std::vector<std::pair<real_t, idx_t>> scored;
  scored.reserve(static_cast<std::size_t>(Theta.rows()));
  for (idx_t v = 0; v < Theta.rows(); ++v) {
    if (seen.count(v)) continue;
    scored.emplace_back(
        static_cast<real_t>(linalg::dot(X.row(user), Theta.row(v), f)), v);
  }
  const auto keep = std::min<std::size_t>(static_cast<std::size_t>(n),
                                          scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<std::ptrdiff_t>(keep),
                    scored.end(), std::greater<>());
  std::vector<idx_t> out;
  for (std::size_t i = 0; i < keep; ++i) out.push_back(scored[i].second);
  return out;
}

}  // namespace

int main() {
  using namespace cumf;

  data::SyntheticOptions gen;
  gen.m = 3000;
  gen.n = 800;
  gen.nz = 90'000;
  gen.f_true = 12;
  gen.noise_std = 0.4;
  gen.col_zipf_s = 1.05;  // popular items dominate, like real catalogs
  gen.seed = 11;
  const auto ratings = data::generate_ratings(gen);

  util::Rng rng(12);
  auto split = sparse::split_ratings(ratings, 0.2, rng);
  const auto R = sparse::coo_to_csr(split.train);
  const auto Rt = sparse::csc_as_csr_of_transpose(sparse::csr_to_csc(R));

  const auto topo = gpusim::PcieTopology::flat(1);
  gpusim::DeviceGroup gpu(1, gpusim::titan_x(), topo);
  core::SolverConfig cfg;
  cfg.als.f = 24;
  cfg.als.lambda = 0.05f;
  core::AlsSolver solver(gpu.pointers(), topo, R, Rt, cfg);
  for (int i = 0; i < 8; ++i) solver.run_iteration();

  // Held-out items per user (the "future" we try to predict).
  std::vector<std::unordered_set<idx_t>> heldout(
      static_cast<std::size_t>(gen.m));
  for (std::size_t k = 0; k < split.test.val.size(); ++k) {
    if (split.test.val[k] > 3.5f) {  // only count liked items as hits
      heldout[static_cast<std::size_t>(split.test.row[k])].insert(
          split.test.col[k]);
    }
  }

  constexpr int kN = 10;
  int users_with_heldout = 0, hits = 0;
  for (idx_t u = 0; u < R.rows; ++u) {
    if (heldout[static_cast<std::size_t>(u)].empty()) continue;
    ++users_with_heldout;
    std::unordered_set<idx_t> seen(R.row_cols(u).begin(), R.row_cols(u).end());
    for (const idx_t rec : top_n(solver.x(), solver.theta(), u, kN, seen)) {
      if (heldout[static_cast<std::size_t>(u)].count(rec)) {
        ++hits;
        break;
      }
    }
  }
  std::printf("hit-rate@%d over %d users with liked held-out items: %.1f%%\n",
              kN, users_with_heldout,
              100.0 * hits / std::max(1, users_with_heldout));

  // Show one user's list.
  const idx_t demo_user = 42;
  std::unordered_set<idx_t> seen(R.row_cols(demo_user).begin(),
                                 R.row_cols(demo_user).end());
  std::printf("top-%d recommendations for user %d:", kN, demo_user);
  for (const idx_t rec : top_n(solver.x(), solver.theta(), demo_user, kN, seen)) {
    std::printf(" %d", rec);
  }
  std::printf("\n");
  return 0;
}
