// Out-of-core staging and fault tolerance (§4.4).
//
// Demonstrates the two production features around the solver:
//  1. OocBlockStore/OocPrefetcher — grid-partitioned ratings staged on disk
//     and prefetched asynchronously ("close-to-zero data loading time except
//     for the first load");
//  2. CheckpointManager — X/Θ checkpointed each iteration; a simulated crash
//     restarts from the freshest valid snapshot.

#include <cstdio>
#include <filesystem>

#include "core/checkpoint.hpp"
#include "core/ooc.hpp"
#include "core/solver.hpp"
#include "data/synthetic.hpp"
#include "eval/metrics.hpp"
#include "gpusim/device_group.hpp"
#include "sparse/split.hpp"
#include "util/stopwatch.hpp"

int main() {
  using namespace cumf;
  const std::string work_dir = "ooc_demo";
  std::filesystem::create_directories(work_dir);

  data::SyntheticOptions gen;
  gen.m = 4000;
  gen.n = 600;
  gen.nz = 80'000;
  gen.seed = 5;
  const auto ratings = data::generate_ratings(gen);
  util::Rng rng(6);
  auto split = sparse::split_ratings(ratings, 0.1, rng);
  const auto R = sparse::coo_to_csr(split.train);
  const auto Rt = sparse::csc_as_csr_of_transpose(sparse::csr_to_csc(R));

  // --- 1. out-of-core block store + prefetch ---
  const auto part = sparse::grid_partition(R, 2, 4);
  const auto store = core::OocBlockStore::create(work_dir + "/blocks", part);
  std::printf("staged %dx%d grid blocks on disk\n", store.p(), store.q());

  std::vector<std::pair<int, int>> schedule;
  for (int j = 0; j < store.q(); ++j) {
    for (int i = 0; i < store.p(); ++i) schedule.emplace_back(i, j);
  }
  core::OocPrefetcher prefetch(store, schedule);
  util::Stopwatch sw;
  nnz_t streamed = 0;
  while (prefetch.has_next()) {
    const auto blk = prefetch.next();
    streamed += blk.nnz();
    // (a real out-of-core run would feed blk into get_hermitian here)
  }
  std::printf("streamed %lld nonzeros in %.3fs; prefetch stall %.4fs "
              "(paper: close-to-zero after the first load)\n",
              static_cast<long long>(streamed), sw.seconds(),
              prefetch.stall_seconds());

  // --- 2. checkpointed training with a simulated crash ---
  const auto topo = gpusim::PcieTopology::flat(1);
  core::SolverConfig cfg;
  cfg.als.f = 16;
  core::CheckpointManager ckpt(work_dir);
  double crashed_rmse = 0.0;
  {
    gpusim::DeviceGroup gpu(1, gpusim::titan_x(), topo);
    core::AlsSolver solver(gpu.pointers(), topo, R, Rt, cfg);
    for (int it = 1; it <= 3; ++it) {
      solver.run_iteration();
      ckpt.save_x(solver.x(), it);
      ckpt.save_theta(solver.theta(), it);
    }
    crashed_rmse = eval::rmse(split.test, solver.x(), solver.theta());
    std::printf("trained 3 iterations (test RMSE %.4f)... simulating machine "
                "failure now\n",
                crashed_rmse);
  }  // solver destroyed: the "crash"

  gpusim::DeviceGroup gpu2(1, gpusim::titan_x(), topo);
  core::AlsSolver resumed(gpu2.pointers(), topo, R, Rt, cfg);
  auto restored = ckpt.restore();
  if (!restored) {
    std::printf("no usable checkpoint found!\n");
    return 1;
  }
  std::printf("restored checkpoint from iteration %d\n",
              restored->resume_iteration());
  resumed.set_factors(std::move(restored->x), std::move(restored->theta));
  std::printf("post-restore test RMSE %.4f (matches pre-crash %.4f)\n",
              eval::rmse(split.test, resumed.x(), resumed.theta()),
              crashed_rmse);
  for (int it = 0; it < 2; ++it) resumed.run_iteration();
  std::printf("resumed and trained 2 more iterations: test RMSE %.4f\n",
              eval::rmse(split.test, resumed.x(), resumed.theta()));

  std::filesystem::remove_all(work_dir);
  return 0;
}
