// Implicit feedback — §1/§2.1: "ALS has advantage when R is made up of
// implicit ratings and therefore cannot be considered sparse" (a key reason
// the paper picks ALS over SGD: with implicit data, unobserved cells carry
// signal too, which SGD-over-nonzeros cannot express).
//
// This example contrasts two treatments of click-style data:
//   1. naive: binarize and run the explicit ALS solver on the 1s;
//   2. proper: Hu-Koren weighted implicit ALS (core/implicit_als.hpp), where
//      every unobserved cell is a 0-preference with confidence 1 and
//      observed cells get confidence 1 + α·count.
// Evaluation is ranking AUC of held-out interactions vs unseen items.

#include <cstdio>
#include <unordered_set>
#include <vector>

#include "core/implicit_als.hpp"
#include "core/solver.hpp"
#include "data/synthetic.hpp"
#include "gpusim/device_group.hpp"
#include "linalg/hermitian.hpp"
#include "sparse/split.hpp"

namespace {

using namespace cumf;

double ranking_auc(const linalg::FactorMatrix& X,
                   const linalg::FactorMatrix& Theta,
                   const sparse::CooMatrix& heldout,
                   const std::vector<std::unordered_set<idx_t>>& interacted,
                   idx_t n_items, util::Rng& rng) {
  const int f = X.f();
  long long wins = 0, trials = 0;
  for (std::size_t k = 0; k < heldout.val.size(); ++k) {
    const idx_t u = heldout.row[k];
    const double pos = linalg::dot(X.row(u), Theta.row(heldout.col[k]), f);
    for (int t = 0; t < 4; ++t) {
      const auto neg =
          static_cast<idx_t>(rng.next_below(static_cast<std::uint64_t>(n_items)));
      if (interacted[static_cast<std::size_t>(u)].count(neg)) continue;
      ++trials;
      if (pos > linalg::dot(X.row(u), Theta.row(neg), f)) ++wins;
    }
  }
  return static_cast<double>(wins) / static_cast<double>(trials);
}

}  // namespace

int main() {
  using namespace cumf;

  data::SyntheticOptions gen;
  gen.m = 2500;
  gen.n = 600;
  gen.nz = 70'000;
  gen.f_true = 10;
  gen.noise_std = 0.4;
  gen.seed = 31;
  const auto raw = data::generate_ratings(gen);

  // Keep liked items as implicit interaction counts.
  sparse::CooMatrix implicit;
  implicit.rows = raw.rows;
  implicit.cols = raw.cols;
  for (std::size_t k = 0; k < raw.val.size(); ++k) {
    if (raw.val[k] > 3.5f) {
      implicit.push_back(raw.row[k], raw.col[k], raw.val[k] - 3.5f);
    }
  }
  std::printf("implicit interactions: %lld of %lld raw ratings\n",
              static_cast<long long>(implicit.nnz()),
              static_cast<long long>(raw.nnz()));

  util::Rng rng(32);
  auto split = sparse::split_ratings(implicit, 0.2, rng);
  const auto R = sparse::coo_to_csr(split.train);
  const auto Rt = sparse::csc_as_csr_of_transpose(sparse::csr_to_csc(R));

  std::vector<std::unordered_set<idx_t>> interacted(
      static_cast<std::size_t>(implicit.rows));
  for (std::size_t k = 0; k < implicit.val.size(); ++k) {
    interacted[static_cast<std::size_t>(implicit.row[k])].insert(
        implicit.col[k]);
  }

  // --- 1. naive: explicit ALS on binarized data ---
  sparse::CooMatrix binary = split.train;
  for (auto& v : binary.val) v = 1.0f;
  const auto Rb = sparse::coo_to_csr(binary);
  const auto Rbt = sparse::csc_as_csr_of_transpose(sparse::csr_to_csc(Rb));
  const auto topo = gpusim::PcieTopology::flat(1);
  gpusim::DeviceGroup gpu(1, gpusim::titan_x(), topo);
  core::SolverConfig cfg;
  cfg.als.f = 16;
  cfg.als.lambda = 0.1f;
  core::AlsSolver naive(gpu.pointers(), topo, Rb, Rbt, cfg);
  for (int i = 0; i < 8; ++i) naive.run_iteration();
  const double auc_naive = ranking_auc(naive.x(), naive.theta(), split.test,
                                       interacted, R.cols, rng);

  // --- 2. proper: Hu-Koren weighted implicit ALS ---
  gpusim::Device dev(0, gpusim::titan_x());
  core::ImplicitAlsOptions iopt;
  iopt.f = 16;
  iopt.lambda = 0.1f;
  iopt.alpha = 40.0f;
  core::ImplicitAlsSolver proper(dev, R, Rt, iopt);
  for (int i = 0; i < 8; ++i) proper.run_iteration();
  const double auc_proper = ranking_auc(proper.x(), proper.theta(),
                                        split.test, interacted, R.cols, rng);

  std::printf("ranking AUC (0.5 = random):\n");
  std::printf("  explicit ALS on binarized data : %.3f\n", auc_naive);
  std::printf("  implicit weighted ALS (α=%.0f)  : %.3f\n",
              static_cast<double>(iopt.alpha), auc_proper);
  std::printf("expected: the naive treatment collapses toward a rank-1 "
              "\"everything is a 1\" fit\n(AUC ~0.5 or below), while "
              "weighted implicit ALS ranks well above chance.\n");
  return (auc_proper > 0.65 && auc_proper > auc_naive) ? 0 : 1;
}
