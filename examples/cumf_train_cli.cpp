// cumf_train — command-line trainer, the entry point a release would ship.
//
// Reads ratings from a MatrixMarket file (or generates a synthetic workload),
// trains cuMF ALS on a configurable simulated-GPU machine, reports
// convergence, and optionally writes the factor matrices and a checkpoint.
//
// Usage:
//   cumf_train [--input ratings.mtx] [--synthetic m,n,nz] [--f 32]
//              [--lambda 0.05] [--iters 10] [--gpus 1] [--two-socket]
//              [--reduce one-phase|two-phase|single] [--cg]
//              [--test-fraction 0.1] [--seed 42] [--out prefix]
//
// Example:
//   ./build/examples/cumf_train --synthetic 20000,2000,1000000 --f 32
//       --gpus 4 --two-socket --reduce two-phase --iters 8

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/solver.hpp"
#include "data/synthetic.hpp"
#include "gpusim/device_group.hpp"
#include "sparse/matrix_market.hpp"
#include "sparse/split.hpp"

namespace {

using namespace cumf;

struct CliOptions {
  std::string input;
  idx_t m = 20000, n = 2000;
  nnz_t nz = 1'000'000;
  int f = 32;
  double lambda = 0.05;
  int iters = 10;
  int gpus = 1;
  bool two_socket = false;
  std::string reduce = "one-phase";
  bool cg = false;
  double test_fraction = 0.1;
  std::uint64_t seed = 42;
  std::string out;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--input f.mtx | --synthetic m,n,nz] [--f K]\n"
               "          [--lambda L] [--iters N] [--gpus P] [--two-socket]\n"
               "          [--reduce one-phase|two-phase|single] [--cg]\n"
               "          [--test-fraction T] [--seed S] [--out prefix]\n",
               argv0);
  std::exit(2);
}

CliOptions parse(int argc, char** argv) {
  CliOptions o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (++i >= argc) usage(argv[0]);
      return argv[i];
    };
    if (arg == "--input") {
      o.input = next();
    } else if (arg == "--synthetic") {
      long long m = 0, n = 0, nz = 0;
      if (std::sscanf(next(), "%lld,%lld,%lld", &m, &n, &nz) != 3) {
        usage(argv[0]);
      }
      o.m = static_cast<idx_t>(m);
      o.n = static_cast<idx_t>(n);
      o.nz = nz;
    } else if (arg == "--f") {
      o.f = std::atoi(next());
    } else if (arg == "--lambda") {
      o.lambda = std::atof(next());
    } else if (arg == "--iters") {
      o.iters = std::atoi(next());
    } else if (arg == "--gpus") {
      o.gpus = std::atoi(next());
    } else if (arg == "--two-socket") {
      o.two_socket = true;
    } else if (arg == "--reduce") {
      o.reduce = next();
    } else if (arg == "--cg") {
      o.cg = true;
    } else if (arg == "--test-fraction") {
      o.test_fraction = std::atof(next());
    } else if (arg == "--seed") {
      o.seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--out") {
      o.out = next();
    } else {
      usage(argv[0]);
    }
  }
  if (o.f <= 0 || o.iters <= 0 || o.gpus <= 0) usage(argv[0]);
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions o = parse(argc, argv);

  // 1. Data.
  sparse::CooMatrix all;
  if (!o.input.empty()) {
    std::printf("loading %s ...\n", o.input.c_str());
    all = sparse::load_matrix_market(o.input);
  } else {
    std::printf("generating synthetic ratings m=%d n=%d nz=%lld ...\n", o.m,
                o.n, static_cast<long long>(o.nz));
    data::SyntheticOptions gen;
    gen.m = o.m;
    gen.n = o.n;
    gen.nz = o.nz;
    gen.seed = o.seed;
    all = data::generate_ratings(gen);
  }
  util::Rng rng(o.seed ^ 0x5eed);
  auto split = sparse::split_ratings(all, o.test_fraction, rng);
  const auto R = sparse::coo_to_csr(split.train);
  const auto Rt = sparse::csc_as_csr_of_transpose(sparse::csr_to_csc(R));
  std::printf("train nz=%lld test nz=%lld (m=%d n=%d)\n",
              static_cast<long long>(R.nnz()),
              static_cast<long long>(split.test.nnz()), R.rows, R.cols);

  // 2. Machine.
  const auto topo = o.two_socket ? gpusim::PcieTopology::two_socket(o.gpus)
                                 : gpusim::PcieTopology::flat(o.gpus);
  gpusim::DeviceGroup gpus(o.gpus, gpusim::titan_x(), topo);

  // 3. Solver.
  core::SolverConfig cfg;
  cfg.als.f = o.f;
  cfg.als.lambda = static_cast<real_t>(o.lambda);
  cfg.als.seed = o.seed;
  cfg.als.verbose = true;
  if (o.cg) cfg.als.solve_backend = core::SolveBackend::ConjugateGradient;
  if (o.reduce == "two-phase") {
    cfg.reduce = core::ReduceScheme::TwoPhase;
  } else if (o.reduce == "single") {
    cfg.reduce = core::ReduceScheme::SingleDevice;
  } else if (o.reduce != "one-phase") {
    usage(argv[0]);
  }

  core::AlsSolver solver(gpus.pointers(), topo, R, Rt, cfg);
  std::printf("plans: update-X %s | update-Theta %s\n",
              solver.plan_x().describe().c_str(),
              solver.plan_theta().describe().c_str());

  const auto hist =
      solver.train(o.iters, &split.train, &split.test, "cumf_train");
  std::printf("\n%4s %9s %11s %11s %11s\n", "iter", "wall(s)", "modeled(s)",
              "train-rmse", "test-rmse");
  for (const auto& pt : hist.points) {
    std::printf("%4d %9.2f %11.4g %11.4f %11.4f\n", pt.iteration,
                pt.wall_seconds, pt.modeled_seconds, pt.train_rmse,
                pt.test_rmse);
  }
  const auto& prof = solver.profile();
  std::printf("\nphase profile (modeled s): get_hermitian %.4g | batch_solve "
              "%.4g | reduce %.4g | transfer %.4g\n",
              prof.get_hermitian, prof.batch_solve, prof.reduce,
              prof.transfer);

  // 4. Outputs.
  if (!o.out.empty()) {
    linalg::save_factors(o.out + ".x.bin", solver.x());
    linalg::save_factors(o.out + ".theta.bin", solver.theta());
    std::printf("wrote %s.x.bin and %s.theta.bin\n", o.out.c_str(),
                o.out.c_str());
  }
  return 0;
}
