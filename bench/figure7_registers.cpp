// Figure 7: convergence speed of cuMF with and without aggressively using
// registers to aggregate A_u (the Listing-1 optimization).
//
// Paper's findings on one GPU: Netflix converges 2.5× as slow without
// registers (75 s vs 30 s to RMSE 0.92); YahooMusic 1.7× as slow — smaller
// because YahooMusic is sparser, so get_hermitian is a smaller share of the
// runtime. "Among all optimizations done in MO-ALS, using registers for A_u
// brings the greatest performance gain."

#include <cstdio>

#include "bench_common.hpp"
#include "core/solver.hpp"
#include "data/datasets.hpp"
#include "gpusim/device_group.hpp"

namespace {

using namespace cumf;

void run_dataset(const data::DatasetSpec& full, double scale, int f,
                 int iters, double paper_slowdown, util::CsvWriter& csv) {
  const auto ds = data::make_sim_dataset(full, scale, 2016, 0.1, f);
  std::printf("\n--- %s (m=%lld n=%lld nz=%lld f=%d) ---\n",
              full.name.c_str(), static_cast<long long>(ds.spec.m),
              static_cast<long long>(ds.spec.n),
              static_cast<long long>(ds.train_csr.nnz()), f);

  eval::ConvergenceHistory runs[2];
  for (const bool use_registers : {true, false}) {
    const auto topo = gpusim::PcieTopology::flat(1);
    gpusim::DeviceGroup gpu(1, gpusim::titan_x(), topo);
    core::SolverConfig cfg;
    cfg.als.f = f;
    cfg.als.lambda = static_cast<real_t>(full.lambda);
    cfg.als.kernel.use_registers = use_registers;
    core::AlsSolver solver(gpu.pointers(), topo, ds.train_csr,
                           ds.train_rt_csr, cfg);
    auto hist = solver.train(iters, &ds.train, &ds.test,
                             use_registers ? "with-registers"
                                           : "without-registers");
    bench::print_history(hist);
    for (const auto& pt : hist.points) {
      csv.row(full.name, hist.label, pt.iteration, pt.wall_seconds,
              pt.modeled_seconds, pt.train_rmse, pt.test_rmse);
    }
    runs[use_registers ? 0 : 1] = std::move(hist);
  }

  const double t_with = runs[0].modeled_time_to_rmse(ds.target_rmse);
  const double t_without = runs[1].modeled_time_to_rmse(ds.target_rmse);
  if (t_with > 0 && t_without > 0) {
    std::printf(
        "  modeled time to RMSE %.3f: with %.4gs, without %.4gs -> %.2fx "
        "slower without (paper: %.1fx)\n",
        ds.target_rmse, t_with, t_without, t_without / t_with,
        paper_slowdown);
  }
  const double wall_with = runs[0].points.back().wall_seconds;
  const double wall_without = runs[1].points.back().wall_seconds;
  std::printf("  wall time for %d iters: with %.2fs, without %.2fs (%.2fx)\n",
              iters, wall_with, wall_without, wall_without / wall_with);
}

}  // namespace

int main() {
  bench::print_header("Figure 7", "benefit of aggressively using registers");
  util::CsvWriter csv(bench::results_dir() + "/figure7_registers.csv",
                      {"dataset", "config", "iteration", "wall_s", "modeled_s",
                       "train_rmse", "test_rmse"});
  run_dataset(data::netflix(), 0.015, 24, 4, 2.5, csv);
  run_dataset(data::yahoomusic(), 0.003, 24, 4, 1.7, csv);
  return 0;
}
