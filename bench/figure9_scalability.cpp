// Figure 9: convergence speed of cuMF on one, two, and four GPUs (Netflix and
// YahooMusic). Both factor matrices fit on a single device, so only model
// parallelism is exercised.
//
// Paper's finding: close-to-linear speedup — 3.8× at four GPUs measured at
// RMSE 0.92 — with the residual overhead coming from PCIe IO contention when
// multiple GPUs read host memory simultaneously.

#include <cstdio>

#include "bench_common.hpp"
#include "core/solver.hpp"
#include "data/datasets.hpp"
#include "gpusim/device_group.hpp"

namespace {

using namespace cumf;

void run_dataset(const data::DatasetSpec& full, double scale, int f,
                 int iters, util::CsvWriter& csv) {
  const auto ds = data::make_sim_dataset(full, scale, 2016, 0.1, f);
  std::printf("\n--- %s (m=%lld n=%lld nz=%lld f=%d) ---\n",
              full.name.c_str(), static_cast<long long>(ds.spec.m),
              static_cast<long long>(ds.spec.n),
              static_cast<long long>(ds.train_csr.nnz()), f);

  double t1 = 0.0;
  for (const int p : {1, 2, 4}) {
    const auto topo = p > 2 ? gpusim::PcieTopology::two_socket(p)
                            : gpusim::PcieTopology::flat(p);
    gpusim::DeviceGroup gpus(p, gpusim::titan_x(), topo);
    core::SolverConfig cfg;
    cfg.als.f = f;
    cfg.als.lambda = static_cast<real_t>(full.lambda);
    core::AlsSolver solver(gpus.pointers(), topo, ds.train_csr,
                           ds.train_rt_csr, cfg);
    const std::string label = std::to_string(p) + "GPU";
    auto hist = solver.train(iters, &ds.train, &ds.test, label);
    bench::print_history(hist);
    for (const auto& pt : hist.points) {
      csv.row(full.name, p, pt.iteration, pt.wall_seconds, pt.modeled_seconds,
              pt.train_rmse, pt.test_rmse);
    }
    double t = hist.modeled_time_to_rmse(ds.target_rmse);
    if (t < 0) t = hist.points.back().modeled_seconds;  // fall back: total
    if (p == 1) {
      t1 = t;
    } else {
      std::printf(
          "  %d GPUs: modeled time to RMSE %.3f = %.4gs -> speedup %.2fx "
          "(paper: close-to-linear, 3.8x at 4 GPUs)\n",
          p, ds.target_rmse, t, t1 / t);
    }
  }
}

}  // namespace

int main() {
  bench::print_header("Figure 9", "SU-ALS scalability on 1/2/4 GPUs");
  util::CsvWriter csv(bench::results_dir() + "/figure9_scalability.csv",
                      {"dataset", "gpus", "iteration", "wall_s", "modeled_s",
                       "train_rmse", "test_rmse"});
  run_dataset(data::netflix(), 0.02, 48, 4, csv);
  run_dataset(data::yahoomusic(), 0.004, 32, 4, csv);
  return 0;
}
