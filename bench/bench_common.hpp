#pragma once

// Shared plumbing for the table/figure reproduction benches.
//
// Every bench prints the paper's rows/series to stdout (with the published
// value next to ours where the paper gives one) and drops a CSV under
// ./bench_results/ for plotting. Run them all with:
//   for b in build/bench/*; do $b; done

#include <cstdio>
#include <filesystem>
#include <string>

#include "data/synthetic.hpp"
#include "eval/metrics.hpp"
#include "util/csv.hpp"

namespace cumf::bench {

inline std::string results_dir() {
  const std::string dir = "bench_results";
  std::filesystem::create_directories(dir);
  return dir;
}

inline void print_header(const char* id, const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("================================================================\n");
}

/// Dumps one convergence history into an open CSV
/// (columns: label, iteration, wall_s, modeled_s, train_rmse, test_rmse).
inline void dump_history(util::CsvWriter& csv,
                         const eval::ConvergenceHistory& hist) {
  for (const auto& pt : hist.points) {
    csv.row(hist.label, pt.iteration, pt.wall_seconds, pt.modeled_seconds,
            pt.train_rmse, pt.test_rmse);
  }
}

inline void print_history(const eval::ConvergenceHistory& hist) {
  std::printf("  %-22s %4s %9s %10s %11s %10s\n", hist.label.c_str(), "iter",
              "wall(s)", "modeled(s)", "train-rmse", "test-rmse");
  for (const auto& pt : hist.points) {
    std::printf("  %-22s %4d %9.3f %10.4g %11.4f %10.4f\n", "", pt.iteration,
                pt.wall_seconds, pt.modeled_seconds, pt.train_rmse,
                pt.test_rmse);
  }
}

}  // namespace cumf::bench
