// Table 1: speed and cost of cuMF on one 4-GPU machine vs three distributed
// CPU systems, on the cloud.
//
// Paper's table:
//   baseline    config          nodes  $/node/hr   cuMF speed   cuMF cost
//   NOMAD       m3.xlarge       32     $0.27       10x          3%
//   SparkALS    m3.2xlarge      50     $0.53       10x          1%
//   Factorbird  c3.2xlarge      50     $0.42       6x           2%
// with the cuMF machine (2 × K80) at $2.44/hr amortized.
//
// cost = (price/node/hr) × nodes × execution time. Baseline execution times
// are the paper's published figures; cuMF's time comes from the full-scale
// projection (validated in figure11) — so the speed column is
// baseline_time / cumf_time and the cost column follows from the price
// arithmetic alone.

#include <cstdio>

#include "bench_common.hpp"
#include "costmodel/machines.hpp"
#include "costmodel/projection.hpp"
#include "data/datasets.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/topology.hpp"

namespace {

using namespace cumf;

struct Table1Row {
  const char* baseline;
  const char* node_type;
  int nodes;
  double price_per_node_hr;
  double baseline_seconds;  // published per-iteration (or per-epoch) time
  data::DatasetSpec dataset;
  double paper_speed;
  double paper_cost_pct;
};

}  // namespace

int main() {
  using namespace cumf;
  bench::print_header("Table 1", "speed and cost vs distributed CPU systems");
  util::CsvWriter csv(bench::results_dir() + "/table1_speed_cost.csv",
                      {"baseline", "nodes", "price_node_hr", "baseline_s",
                       "cumf_s", "speedup", "paper_speedup", "cost_pct",
                       "paper_cost_pct"});

  // Row semantics follow the paper's own comparison bases: the SparkALS and
  // Factorbird rows compare per-iteration latency (the §5.5 anchors); the
  // NOMAD row compares time-to-convergence on Hugewiki (Fig. 10's basis),
  // since one SGD epoch and one ALS iteration make different progress —
  // NOMAD needs ~40 epochs where ALS needs ~12 iterations (§2.1: ALS
  // converges in 5-20).
  constexpr double kNomadEpochsToConverge = 40.0;
  constexpr double kAlsItersToConverge = 12.0;
  const auto hugewiki = data::hugewiki();
  const double nomad_aws_s =
      kNomadEpochsToConverge *
      costmodel::cluster_sgd_epoch_seconds(
          costmodel::nomad_aws32(), static_cast<double>(hugewiki.nz),
          hugewiki.f, static_cast<double>(hugewiki.m + hugewiki.n) * hugewiki.f);

  const Table1Row rows[] = {
      {"NOMAD", "m3.xlarge", 32, 0.27, nomad_aws_s, hugewiki, 10.0, 3.0},
      {"SparkALS", "m3.2xlarge", 50, 0.53, costmodel::kSparkAlsSecPerIter,
       data::sparkals(), 10.0, 1.0},
      {"Factorbird", "c3.2xlarge", 50, 0.42, costmodel::kFactorbirdSecPerIter,
       data::factorbird(), 6.0, 2.0},
  };

  const auto topo = gpusim::PcieTopology::two_socket(4);
  std::printf("\n%-11s %-11s %5s %9s | %10s %9s %7s(%5s) %7s(%5s)\n",
              "baseline", "node", "nodes", "$/node/hr", "baseline_s",
              "cuMF_s", "speed", "paper", "cost%", "paper");
  for (const auto& row : rows) {
    const auto proj = costmodel::project_cumf_iteration(
        row.dataset, gpusim::gk210(), 4, topo, core::ReduceScheme::TwoPhase);
    double cumf_s = proj.iteration_seconds();
    if (std::string(row.baseline) == "NOMAD") {
      cumf_s *= kAlsItersToConverge;  // convergence basis for this row
    }
    const double speedup = row.baseline_seconds / cumf_s;
    const double baseline_cost = costmodel::run_cost_dollars(
        row.price_per_node_hr, row.nodes, row.baseline_seconds);
    const double cumf_cost = costmodel::run_cost_dollars(
        costmodel::kCumfMachinePricePerHr, 1, cumf_s);
    const double cost_pct = 100.0 * cumf_cost / baseline_cost;
    std::printf("%-11s %-11s %5d %9.2f | %10.1f %9.1f %6.1fx(%4.0fx) %6.1f%%(%4.0f%%)\n",
                row.baseline, row.node_type, row.nodes, row.price_per_node_hr,
                row.baseline_seconds, cumf_s, speedup, row.paper_speed,
                cost_pct, row.paper_cost_pct);
    csv.row(row.baseline, row.nodes, row.price_per_node_hr,
            row.baseline_seconds, cumf_s, speedup, row.paper_speed, cost_pct,
            row.paper_cost_pct);
  }
  std::printf("\ncuMF machine: one node, 2 x K80 (4 GK210 devices), "
              "$%.2f/hr amortized (IBM SoftLayer).\n",
              costmodel::kCumfMachinePricePerHr);
  std::printf("Shape check: cuMF several-x faster and 1-3%% of the cost on "
              "every row.\n");
  return 0;
}
