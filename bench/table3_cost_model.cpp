// Table 3 + Table 4: the analytic cost model of the ALS update-X step, and
// the programmable-GPU-memory characteristics, validated against the
// simulator's measured counters.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/kernels.hpp"
#include "costmodel/roofline.hpp"
#include "costmodel/table3.hpp"
#include "data/synthetic.hpp"
#include "gpusim/device.hpp"
#include "gpusim/device_spec.hpp"

int main() {
  using namespace cumf;
  bench::print_header("Table 3 / Table 4", "ALS cost model + GPU memory");
  util::CsvWriter csv(bench::results_dir() + "/table3_cost_model.csv",
                      {"quantity", "analytic", "measured", "ratio"});

  // ----- Table 3 for the Netflix shape (f=100), as printed in the paper.
  const costmodel::Table3Model netflix{480'189, 17'770, 99'000'000, 100};
  std::printf("\nTable 3 (Netflix, f=100):\n");
  std::printf("  %-34s %14s %14s\n", "quantity", "one item", "all m items");
  const auto one = netflix.one_item();
  const auto all = netflix.all_items();
  std::printf("  %-34s %14.4g %14.4g\n", "get_hermitian A (multiplies)",
              one.a_compute, all.a_compute);
  std::printf("  %-34s %14.4g %14.4g\n", "get_hermitian B (ops)",
              one.b_compute, all.b_compute);
  std::printf("  %-34s %14.4g %14.4g\n", "batch_solve (ops)",
              one.solve_compute, all.solve_compute);
  std::printf("  %-34s %14.4g %14.4g\n", "A memory (floats)", one.a_mem_floats,
              all.a_mem_floats);
  std::printf("  %-34s %14.4g %14.4g\n", "B memory (floats)", one.b_mem_floats,
              all.b_mem_floats);

  // ----- Validate the simulator's counters against the analytic model on a
  // synthetic workload we can actually run.
  data::SyntheticOptions opt;
  opt.m = 2000;
  opt.n = 500;
  opt.nz = 100'000;
  opt.seed = 5;
  const auto R = sparse::coo_to_csr(data::generate_ratings(opt));
  const int f = 32;
  const costmodel::Table3Model model{R.rows, R.cols, R.nnz(), f};

  gpusim::Device dev(0, gpusim::titan_x());
  std::vector<real_t> theta(static_cast<std::size_t>(R.cols) * f, 0.1f);
  std::vector<real_t> A(static_cast<std::size_t>(R.rows) * f * f);
  std::vector<real_t> B(static_cast<std::size_t>(R.rows) * f);
  core::get_hermitian_block(dev, R, 0, R.rows, theta.data(), f, 0.05f, {},
                            A.data(), B.data());
  std::vector<real_t> X(static_cast<std::size_t>(R.rows) * f);
  core::batch_solve_block(dev, A.data(), B.data(), R.rows, f, X.data());

  const auto& c = dev.counters();
  const double analytic_herm_flops =
      2.0 * model.all_items().a_compute + model.all_items().b_compute;
  const double analytic_solve_flops = 2.0 / 3.0 * model.all_items().solve_compute;
  const double measured_herm = c.flops - analytic_solve_flops;  // order of launches
  std::printf("\nCounter validation (m=%d n=%d nz=%lld f=%d):\n", R.rows,
              R.cols, static_cast<long long>(R.nnz()), f);
  std::printf("  %-34s %14.4g %14.4g  (%.2fx)\n", "hermitian flops",
              analytic_herm_flops, measured_herm,
              measured_herm / analytic_herm_flops);
  csv.row("hermitian_flops", analytic_herm_flops, measured_herm,
          measured_herm / analytic_herm_flops);
  const double a_bytes_analytic = model.all_items().a_mem_floats * 4;
  std::printf("  %-34s %14.4g %14llu\n", "A flush bytes (analytic floats*4)",
              a_bytes_analytic,
              static_cast<unsigned long long>(c.global_write));
  csv.row("a_flush_bytes", a_bytes_analytic,
          static_cast<double>(c.global_write),
          static_cast<double>(c.global_write) / a_bytes_analytic);

  // ----- Table 4: programmable GPU memory (drives the simulator's model).
  std::printf("\nTable 4 (programmable GPU memory, modeled):\n");
  std::printf("  %-10s %10s %10s %s\n", "type", "size", "latency", "scope");
  std::printf("  %-10s %10s %10s %s\n", "global", "12 GB", "high",
              "application");
  std::printf("  %-10s %10s %10s %s\n", "texture", "medium", "medium",
              "application, read-only");
  std::printf("  %-10s %10s %10s %s\n", "shared", "96 KB/SM", "low",
              "thread block");
  std::printf("  %-10s %10s %10s %s\n", "register", "256 KB/SM", "lowest",
              "thread; not indexable");

  // ----- Roofline (§3): MO-ALS climbs the roofline by raising intensity.
  const auto spec = gpusim::titan_x();
  const double i_base = costmodel::hermitian_intensity_base(99e6, 480189, 100);
  const double i_mo = costmodel::hermitian_intensity_mo(99e6, 480189, 100);
  std::printf("\nRoofline (%s, ridge %.1f flops/byte):\n", spec.name.c_str(),
              costmodel::roofline_ridge(spec));
  std::printf("  base ALS  intensity %6.2f -> %7.0f attainable GFLOP/s\n",
              i_base, costmodel::roofline_gflops(spec, i_base));
  std::printf("  MO-ALS    intensity %6.2f -> %7.0f attainable GFLOP/s\n",
              i_mo, costmodel::roofline_gflops(spec, i_mo));
  csv.row("roofline_gflops_base", costmodel::roofline_gflops(spec, i_base),
          0.0, 0.0);
  csv.row("roofline_gflops_mo", costmodel::roofline_gflops(spec, i_mo), 0.0,
          0.0);
  return 0;
}
