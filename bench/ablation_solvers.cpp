// Ablations beyond the paper's figures (DESIGN.md §7):
//
//  A. batch_solve backend — the paper's exact Cholesky vs the approximate
//     warm-started CG solver the cuMF line later shipped (als_cg): per-
//     iteration cost vs convergence quality.
//  B. algorithm family on equal footing — ALS vs CCD++ vs blocked SGD
//     (libMF-style) objective/RMSE per pass, reproducing the related-work
//     claims: CCD++ is strong early then flattens; ALS costs more per pass
//     but needs far fewer passes.
//  C. bin-size sweep around the paper's recommended [10, 30].

#include <cstdio>

#include "baselines/ccdpp.hpp"
#include "baselines/fpsgd.hpp"
#include "bench_common.hpp"
#include "util/stopwatch.hpp"
#include "core/solver.hpp"
#include "data/datasets.hpp"
#include "gpusim/device_group.hpp"

namespace {

using namespace cumf;

void ablation_solver_backend(const data::SimDataset& ds, int f,
                             util::CsvWriter& csv) {
  std::printf("\nA. batch_solve backend (f=%d):\n", f);
  for (const auto backend :
       {core::SolveBackend::Cholesky, core::SolveBackend::ConjugateGradient}) {
    const bool cg = backend == core::SolveBackend::ConjugateGradient;
    const auto topo = gpusim::PcieTopology::flat(1);
    gpusim::DeviceGroup gpu(1, gpusim::titan_x(), topo);
    core::SolverConfig cfg;
    cfg.als.f = f;
    cfg.als.lambda = 0.05f;
    cfg.als.solve_backend = backend;
    cfg.als.cg_max_iters = 6;
    core::AlsSolver solver(gpu.pointers(), topo, ds.train_csr,
                           ds.train_rt_csr, cfg);
    const auto hist =
        solver.train(5, &ds.train, &ds.test, cg ? "ALS-CG" : "ALS-Cholesky");
    std::printf("  %-12s final test RMSE %.4f | modeled %.4gs | solve share "
                "%.4gs\n",
                hist.label.c_str(), hist.points.back().test_rmse,
                solver.modeled_seconds(), solver.profile().batch_solve);
    csv.row("backend", hist.label, hist.points.back().test_rmse,
            solver.modeled_seconds(), solver.profile().batch_solve);
  }
  std::printf("  expectation: near-identical RMSE; CG shrinks the solve "
              "share at f large.\n");
}

void ablation_algorithms(const data::SimDataset& ds, int f,
                         util::CsvWriter& csv) {
  std::printf("\nB. algorithm families, RMSE per pass (f=%d):\n", f);
  const auto topo = gpusim::PcieTopology::flat(1);
  gpusim::DeviceGroup gpu(1, gpusim::titan_x(), topo);
  core::SolverConfig cfg;
  cfg.als.f = f;
  cfg.als.lambda = 0.05f;
  core::AlsSolver als(gpu.pointers(), topo, ds.train_csr, ds.train_rt_csr,
                      cfg);
  const auto als_hist = als.train(6, &ds.train, &ds.test, "ALS");

  baselines::CcdOptions ccd;
  ccd.f = f;
  ccd.lambda = 0.05f;
  ccd.outer_sweeps = 6;
  const auto ccd_hist = baselines::CcdPlusPlus(ds.train_csr, ccd)
                            .train(&ds.train, &ds.test, "CCD++");

  baselines::SgdOptions sgd;
  sgd.f = f;
  sgd.lambda = 0.05f;
  sgd.epochs = 6;
  sgd.threads = 3;
  const auto sgd_hist = baselines::FpsgdSgd(ds.train_csr, sgd)
                            .train(&ds.train, &ds.test, "FPSGD")
                            .history;

  std::printf("  %-6s %10s %10s %10s\n", "pass", "ALS", "CCD++", "FPSGD");
  for (std::size_t i = 0; i < als_hist.points.size(); ++i) {
    std::printf("  %-6zu %10.4f %10.4f %10.4f\n", i,
                als_hist.points[i].test_rmse, ccd_hist.points[i].test_rmse,
                sgd_hist.points[i].test_rmse);
    csv.row("algorithms", i, als_hist.points[i].test_rmse,
            ccd_hist.points[i].test_rmse, sgd_hist.points[i].test_rmse);
  }
  std::printf("  expectation (§6.2): CCD++ strong early; ALS lowest after a "
              "few passes.\n");
}

void ablation_bin_size(const data::SimDataset& ds, int f,
                       util::CsvWriter& csv) {
  std::printf("\nC. shared-memory bin-size sweep (paper picks 10-30):\n");
  for (const int bin : {2, 5, 10, 20, 30, 60}) {
    const auto topo = gpusim::PcieTopology::flat(1);
    gpusim::DeviceGroup gpu(1, gpusim::titan_x(), topo);
    core::SolverConfig cfg;
    cfg.als.f = f;
    cfg.als.lambda = 0.05f;
    cfg.als.kernel.bin = bin;
    core::AlsSolver solver(gpu.pointers(), topo, ds.train_csr,
                           ds.train_rt_csr, cfg);
    util::Stopwatch sw;
    solver.run_iteration();
    solver.run_iteration();
    const double wall = sw.seconds() / 2;
    // Shared usage per block: bin·f floats — the Alg. 2 occupancy trade-off.
    const double shared_kb = static_cast<double>(bin) * f * 4.0 / 1024.0;
    std::printf("  bin %3d: %.3fs wall/iter, %5.1f KiB shared per block\n",
                bin, wall, shared_kb);
    csv.row("bin_size", bin, wall, shared_kb, 0);
  }
  std::printf("  expectation: flat wall cost within [10,30]; tiny bins pay "
              "staging overhead, huge bins exceed the 96 KiB/SM budget.\n");
}

}  // namespace

int main() {
  using namespace cumf;
  bench::print_header("Ablations", "solver backend / algorithm family / bin");
  util::CsvWriter csv(bench::results_dir() + "/ablation_solvers.csv",
                      {"ablation", "arg", "v1", "v2", "v3"});
  const auto ds = data::make_sim_dataset(data::netflix(), 0.01, 909, 0.1, 32);
  std::printf("workload: netflix-sim m=%lld n=%lld nz=%lld\n",
              static_cast<long long>(ds.spec.m),
              static_cast<long long>(ds.spec.n),
              static_cast<long long>(ds.train_csr.nnz()));
  ablation_solver_backend(ds, 32, csv);
  ablation_algorithms(ds, 32, csv);
  ablation_bin_size(ds, 32, csv);
  return 0;
}
