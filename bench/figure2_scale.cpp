// Figure 2 + Table 5: the scale of MF data sets — Nz (y) against model
// parameters (m+n)·f (x) — and the characteristics table.
//
// Paper's point: cuMF tackles problems two orders of magnitude beyond the
// Netflix-class sets earlier parallel solutions targeted, up to the
// Facebook-scale 112B-rating matrix (and the paper's own f=100 variant).

#include <cstdio>

#include "bench_common.hpp"
#include "costmodel/table3.hpp"
#include "data/datasets.hpp"

int main() {
  using namespace cumf;
  bench::print_header("Figure 2 / Table 5", "the scale of MF data sets");
  util::CsvWriter csv(bench::results_dir() + "/figure2_scale.csv",
                      {"dataset", "m", "n", "nz", "f", "lambda",
                       "model_parameters", "approximate"});

  std::printf("\n%-22s %13s %11s %15s %4s %7s %14s\n", "dataset", "m", "n",
              "Nz", "f", "lambda", "(m+n)*f");
  for (const auto& ds : data::figure2_inventory()) {
    std::printf("%-22s %13lld %11lld %15lld %4d %7.2f %14.3e%s\n",
                ds.name.c_str(), static_cast<long long>(ds.m),
                static_cast<long long>(ds.n), static_cast<long long>(ds.nz),
                ds.f, ds.lambda, ds.model_parameters(),
                ds.approximate ? "  (approx.)" : "");
    csv.row(ds.name, ds.m, ds.n, ds.nz, ds.f, ds.lambda,
            ds.model_parameters(), ds.approximate ? 1 : 0);
  }

  // The §2.2 capacity argument that motivates everything downstream.
  const auto nf = data::netflix();
  costmodel::Table3Model model{nf.m, nf.n, nf.nz, nf.f};
  std::printf("\nCapacity check (§2.2): Netflix at f=%d needs %.2fB floats "
              "for the Hermitians alone;\na 12 GB device holds 3B — hence "
              "batching (q>1) and SU-ALS.\n",
              nf.f, model.all_items().a_mem_floats / 1e9);
  return 0;
}
