// Figure 11: per-iteration time on three extremely large data sets, vs the
// original systems' published numbers.
//
// Paper's numbers (4 GK210 devices):
//   SparkALS data   — cuMF 24 s/iter  vs SparkALS 240 s (50 × m3.2xlarge)
//   Factorbird data — cuMF 92 s/iter  vs Factorbird 563 s (50 nodes)
//   Facebook data   — cuMF 746 s/iter (f=16); f=100 takes 3.8 h — "the
//                     largest matrix factorization problem ever reported".
//
// We cannot materialize 10¹¹ ratings; instead we (a) project full-scale
// per-iteration time with the analytic device model (validated against the
// measured scaled replica below) and (b) run a duplication-generated scaled
// replica end-to-end, exactly the way the paper synthesizes these data sets.

#include <cstdio>

#include "bench_common.hpp"
#include "core/solver.hpp"
#include "costmodel/machines.hpp"
#include "costmodel/projection.hpp"
#include "data/datasets.hpp"
#include "data/duplicate.hpp"
#include "gpusim/device_group.hpp"
#include "sparse/split.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace cumf;

void project_row(const data::DatasetSpec& full, double paper_cumf_s,
                 double paper_baseline_s, const char* baseline_name,
                 util::CsvWriter& csv) {
  const auto topo = gpusim::PcieTopology::two_socket(4);
  const auto proj = costmodel::project_cumf_iteration(
      full, gpusim::gk210(), 4, topo, core::ReduceScheme::TwoPhase);
  std::printf("  %-12s f=%-3d projected %8.1f s/iter (paper cuMF: %7.1f s)",
              full.name.c_str(), full.f, proj.iteration_seconds(),
              paper_cumf_s);
  if (paper_baseline_s > 0) {
    std::printf("  | %s published: %.0f s -> speedup %.1fx (paper: %.1fx)",
                baseline_name, paper_baseline_s,
                paper_baseline_s / proj.iteration_seconds(),
                paper_baseline_s / paper_cumf_s);
  }
  std::printf("\n    plans: X %s | Theta %s\n",
              proj.plan_x.describe().c_str(),
              proj.plan_theta.describe().c_str());
  csv.row(full.name, full.f, proj.iteration_seconds(), paper_cumf_s,
          baseline_name, paper_baseline_s);
}

}  // namespace

int main() {
  using namespace cumf;
  bench::print_header("Figure 11", "extremely large data sets, s/iteration");
  util::CsvWriter csv(bench::results_dir() + "/figure11_extreme.csv",
                      {"dataset", "f", "projected_s_per_iter", "paper_cumf_s",
                       "baseline", "baseline_s"});

  std::printf("\nFull-scale projections (4x GK210, two-socket, two-phase "
              "reduction):\n");
  project_row(data::sparkals(), costmodel::kSparkAlsCumfSecPerIter,
              costmodel::kSparkAlsSecPerIter, "SparkALS", csv);
  project_row(data::factorbird(), costmodel::kFactorbirdCumfSecPerIter,
              costmodel::kFactorbirdSecPerIter, "Factorbird", csv);
  project_row(data::facebook(), costmodel::kFacebookCumfSecPerIter, 0,
              "Facebook(Giraph)", csv);
  project_row(data::cumf_largest(), costmodel::kCumfLargestSecPerIter, 0,
              "none (largest ever reported)", csv);

  // Validation leg: a duplication-synthesized SparkALS replica, run for real.
  std::printf("\nMeasured validation on a duplication-scaled SparkALS "
              "replica (the paper's own synthesis method):\n");
  data::SyntheticOptions base_opt;
  base_opt.m = 6600;   // Amazon Reviews base, scaled
  base_opt.n = 2400;
  base_opt.nz = 35000;
  base_opt.seed = 77;
  const auto base = data::generate_ratings(base_opt);
  util::Rng rng(78);
  const auto dup = data::duplicate_grid(base, 10, 2, 0.05, rng);
  auto split = sparse::split_ratings(dup, 0.1, rng);
  const auto csr = sparse::coo_to_csr(split.train);
  const auto csc = sparse::csc_as_csr_of_transpose(sparse::csr_to_csc(csr));
  std::printf("  replica: m=%d n=%d nz=%lld (10x2 duplication)\n", csr.rows,
              csr.cols, static_cast<long long>(csr.nnz()));

  const auto topo = gpusim::PcieTopology::two_socket(4);
  gpusim::DeviceGroup gpus(4, gpusim::gk210(), topo);
  core::SolverConfig cfg;
  cfg.als.f = 10;  // SparkALS uses f=10
  cfg.als.lambda = 0.05f;
  cfg.reduce = core::ReduceScheme::TwoPhase;
  core::AlsSolver solver(gpus.pointers(), topo, csr, csc, cfg);
  util::Stopwatch sw;
  solver.run_iteration();
  solver.run_iteration();
  std::printf("  measured: %.2f s wall, %.4f s modeled per iteration "
              "(replica is %.0fx smaller than full scale)\n",
              sw.seconds() / 2, solver.modeled_seconds() / 2,
              static_cast<double>(data::sparkals().nz) /
                  static_cast<double>(csr.nnz()));
  std::printf("  (linear-in-Nz extrapolation of the modeled value lands at "
              "%.1f s, consistent with the projection above)\n",
              solver.modeled_seconds() / 2 *
                  static_cast<double>(data::sparkals().nz) /
                  static_cast<double>(csr.nnz()) / costmodel::kAchievedFraction);
  return 0;
}
