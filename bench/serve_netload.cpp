// Network serving load generator: end-to-end latency over the wire.
//
// The serving benches so far measured the engine and batcher in-process;
// this one measures what a *user* sees — accept→reply across a real TCP
// socket — and what the queueing path adds on top of batch service time.
// Two load shapes against the same loopback server:
//
//  - closed loop: N connections, each waiting for its reply before sending
//    the next query. Concurrency is the lever: one connection pays the full
//    batcher deadline per query; many connections fill micro-batches and
//    ride the same flush.
//  - open loop: queries arrive on a schedule (offered qps) regardless of
//    completions, pipelined on one connection — the shape that exposes
//    queueing delay as load approaches capacity.
//
// Mid-run a fresh model generation is hot-swapped into the live store, so
// the CSV also shows the generation advancing under load. Client-measured
// e2e percentiles ride next to the server's own ServeStats (queue-delay p99,
// batch-wall p99, net e2e) fetched over the wire via the stats op, and every
// row carries the latency SLO's fast-window burn rate plus lifetime
// violations fetched via the GetHealth op.
//
// The overload row doubles as a detect-and-recover check on the alerting
// pipeline: the dump must drive the availability SLO into `page` (sheds
// burn the error budget through 1 s / 2 s windows) and the quiet aftermath
// must decay it back out of `page` — the bench fails on either miss.
//
// ServeStats e2e p99 >= batch-wall p99 holds by construction on these runs
// (cache off: every query's end-to-end time contains its batch's wall time);
// the bench prints the check but, per repo convention, perf-shaped numbers
// never gate — correctness is pinned in tests/serve_net_test.cpp.
//
// Usage:
//   serve_netload                          # in-process loopback server
//   serve_netload --connect HOST PORT [USERS [K]]
//       client side only, against an external server (e.g.
//       `serve_recommendations --port 7070` in another terminal).
//   serve_netload --trace-out FILE
//       enable request tracing (sample_every=1) and dump the run's Chrome
//       trace-event JSON to FILE — load it in Perfetto/chrome://tracing to
//       see the mid-sweep hot swap land between decomposed queries.
//   serve_netload --devices N
//       in-process mode only: serve from a MultiDeviceScoringBackend over N
//       simulated devices (model-parallel scatter-gather path), wired into
//       the live store's admission hook so the mid-run hot swap exercises
//       all-or-nothing multi-device generation charging.
//   serve_netload --conns N
//       connection count for the sharded open-loop sweep (default 1000).
//   serve_netload --slo-report
//       print an end-of-run SLO health summary fetched over the wire with
//       the GetHealth op (alert states, burn rates, slow-query exemplars).
//   serve_netload --events-out FILE
//       dump the structured event log (obs/events.hpp) as JSON lines to
//       FILE on the way out — the overload phase's shed events included.
//
// Beyond the closed/open loops, a sharded sweep drives the server the way a
// real edge does: N concurrent connections (default 1000) fed from one
// epoll-based load generator, with two open-loop arrival shapes —
//
//  - bursty: on/off traffic, 25 ms bursts at 4× the mean rate then silence,
//    the shape that stresses accept→reply tail latency through the io
//    shards' completion lanes;
//  - diurnal: a sinusoidal rate swinging ±80% around the mean (one "day"
//    per 400 ms), the slow swell a fleet planner provisions for.
//
// The run then snapshots ServeStats and feeds measured_serving_profile →
// plan_serving_fleet, so the printed fleet plan's queue floor reflects the
// sharded front-end tail (net_e2e p99 minus one median batch), not just
// in-process batcher queueing. Finally an *overload* row floods a second
// server (same batcher, max_queued_replies=32) with an unthrottled dump:
// the expected outcome is kOverloaded shedding at the edge — bounded
// memory, connection kept, immediate recovery — and the bench fails if no
// shed is observed.
//
// CSV: bench_results/serve_netload.csv

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <arpa/inet.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "costmodel/machines.hpp"
#include "costmodel/serving_fleet.hpp"
#include "gpusim/device_group.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/topology.hpp"
#include "obs/events.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "serve/batcher.hpp"
#include "serve/multi_device_backend.hpp"
#include "serve/factor_store.hpp"
#include "serve/live_store.hpp"
#include "serve/net/client.hpp"
#include "serve/net/server.hpp"
#include "serve/topk.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace cumf;
using serve::net::Client;
using serve::net::StatsResponse;
using serve::net::Status;

constexpr int kF = 16;
constexpr int kTopK = 10;

linalg::FactorMatrix random_factors(idx_t rows, int f, std::uint64_t seed) {
  linalg::FactorMatrix m(rows, f);
  util::Rng rng(seed);
  m.randomize_uniform(rng, -1.0f, 1.0f);
  return m;
}

std::vector<idx_t> zipf_stream(idx_t users, int n, std::uint64_t seed) {
  std::vector<idx_t> stream(static_cast<std::size_t>(n));
  util::Rng rng(seed);
  for (auto& u : stream) {
    u = static_cast<idx_t>(rng.zipf(static_cast<std::uint64_t>(users), 1.1));
  }
  return stream;
}

/// A model generation change observed in a connection's reply stream — the
/// client-side view of a hot swap landing (promotion timing, satellite of
/// the retrain orchestrator: with --connect against a --daemon server these
/// are the orchestrator's promotions/rollbacks as the wire reports them).
struct GenTransition {
  int conn = 0;
  int query = 0;  // 0-based index within that connection's stream
  std::uint64_t from = 0;
  std::uint64_t to = 0;
};

struct LoadResult {
  int queries = 0;
  int errors = 0;
  int overloaded = 0;  // replies shed with Status::kOverloaded (not errors)
  double wall_s = 0.0;
  double achieved_qps = 0.0;
  serve::LatencySummary e2e;  // client-measured send→reply
  std::vector<GenTransition> transitions;
};

void print_transitions(const LoadResult& r) {
  for (const auto& t : r.transitions) {
    std::printf("    generation %llu -> %llu observed at conn %d query #%d "
                "of %d\n",
                static_cast<unsigned long long>(t.from),
                static_cast<unsigned long long>(t.to), t.conn, t.query,
                r.queries);
  }
}

/// N connections, one outstanding query each.
LoadResult closed_loop(const std::string& host, std::uint16_t port, int conns,
                       int per_conn, idx_t users, int k) {
  LoadResult r;
  serve::LatencyTracker e2e;
  std::atomic<int> errors{0};
  std::mutex transitions_mu;
  std::vector<GenTransition> transitions;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(conns));
  util::Stopwatch wall;
  for (int c = 0; c < conns; ++c) {
    threads.emplace_back([&, c] {
      Client client(host, port);
      const auto stream =
          zipf_stream(users, per_conn, 900 + static_cast<std::uint64_t>(c));
      std::uint64_t last_gen = 0;
      int idx = 0;
      for (const idx_t u : stream) {
        util::Stopwatch q;
        const auto resp = client.query(u, k);
        e2e.record(q.milliseconds());
        if (resp.status != Status::kOk) errors.fetch_add(1);
        if (resp.generation != last_gen) {
          if (last_gen != 0) {  // first reply just establishes the baseline
            std::lock_guard<std::mutex> lock(transitions_mu);
            transitions.push_back({c, idx, last_gen, resp.generation});
          }
          last_gen = resp.generation;
        }
        ++idx;
      }
    });
  }
  for (auto& t : threads) t.join();
  r.transitions = std::move(transitions);
  r.wall_s = wall.seconds();
  r.queries = conns * per_conn;
  r.errors = errors.load();
  r.achieved_qps = r.queries / r.wall_s;
  r.e2e = e2e.summary();
  return r;
}

/// One pipelined connection, queries sent on a fixed schedule. The sender
/// and reader share the Client: its send and receive paths touch disjoint
/// state, so one writer thread plus one reader thread is safe.
LoadResult open_loop(const std::string& host, std::uint16_t port,
                     double offered_qps, int total, idx_t users, int k) {
  LoadResult r;
  serve::LatencyTracker e2e;
  Client client(host, port);

  std::mutex mu;
  std::deque<std::chrono::steady_clock::time_point> sent;
  std::atomic<int> errors{0};

  std::vector<GenTransition> transitions;
  std::thread reader([&] {
    std::uint64_t last_gen = 0;
    for (int i = 0; i < total; ++i) {
      const auto resp = client.read_query_response();
      std::chrono::steady_clock::time_point t0;
      {
        std::lock_guard<std::mutex> lock(mu);
        t0 = sent.front();
        sent.pop_front();
      }
      e2e.record(std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0)
                     .count());
      if (resp.status != Status::kOk) errors.fetch_add(1);
      if (resp.generation != last_gen) {
        if (last_gen != 0) transitions.push_back({0, i, last_gen, resp.generation});
        last_gen = resp.generation;
      }
    }
  });

  const auto stream = zipf_stream(users, total, 950);
  const auto period = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(1.0 / offered_qps));
  util::Stopwatch wall;
  auto next = std::chrono::steady_clock::now();
  for (const idx_t u : stream) {
    std::this_thread::sleep_until(next);  // no-op once the sender is behind
    next += period;
    {
      std::lock_guard<std::mutex> lock(mu);
      sent.push_back(std::chrono::steady_clock::now());
    }
    client.send_query(u, k);
  }
  reader.join();
  r.wall_s = wall.seconds();
  r.queries = total;
  r.errors = errors.load();
  r.achieved_qps = total / r.wall_s;
  r.e2e = e2e.summary();
  r.transitions = std::move(transitions);
  return r;
}

// ---- sharded sweep: many connections, one epoll load generator ------------

enum class Shape { kBursty, kDiurnal, kUnthrottled };

const char* shape_name(Shape s) {
  switch (s) {
    case Shape::kBursty:
      return "bursty";
    case Shape::kDiurnal:
      return "diurnal";
    case Shape::kUnthrottled:
      return "overload";
  }
  return "?";
}

/// Arrival offsets (seconds from run start) for `total` queries at mean rate
/// `offered`. Bursty: 25 ms on at 4× the mean, 75 ms off. Diurnal: rate
/// swings ±80% around the mean, one period per 400 ms. Unthrottled: all due
/// immediately (the overload dump).
std::vector<double> arrival_schedule(Shape shape, double offered, int total) {
  std::vector<double> at(static_cast<std::size_t>(total), 0.0);
  if (shape == Shape::kUnthrottled) return at;
  if (shape == Shape::kBursty) {
    constexpr double kCycle = 0.100, kOn = 0.025;
    const double burst_rate = offered * (kCycle / kOn);
    int i = 0;
    double cycle_start = 0.0;
    while (i < total) {
      double t = cycle_start;
      while (i < total && t < cycle_start + kOn) {
        at[static_cast<std::size_t>(i++)] = t;
        t += 1.0 / burst_rate;
      }
      cycle_start += kCycle;
    }
    return at;
  }
  constexpr double kPi = 3.14159265358979323846;
  constexpr double kDay = 0.400;
  double t = 0.0;
  for (int i = 0; i < total; ++i) {
    const double rate = offered * (1.0 + 0.8 * std::sin(2.0 * kPi * t / kDay));
    t += 1.0 / std::max(rate, offered * 0.05);
    at[static_cast<std::size_t>(i)] = t;
  }
  return at;
}

struct RawConn {
  int fd = -1;
  std::vector<std::uint8_t> out;  // encoded frames not yet written
  std::size_t out_off = 0;
  std::vector<std::uint8_t> in;  // read accumulation
  std::deque<std::chrono::steady_clock::time_point> t0s;  // send times, FIFO
  std::uint32_t armed = EPOLLIN;
};

/// Drains conn.out into the socket; false on a hard send error.
bool raw_flush(RawConn& c) {
  while (c.out.size() > c.out_off) {
    const ssize_t n = ::send(c.fd, c.out.data() + c.out_off,
                             c.out.size() - c.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      c.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  if (c.out_off == c.out.size()) {
    c.out.clear();
    c.out_off = 0;
  }
  return true;
}

void raw_arm(int epfd, int index, RawConn& c) {
  std::uint32_t want = EPOLLIN;
  if (c.out.size() > c.out_off) want |= EPOLLOUT;
  if (want == c.armed) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.u32 = static_cast<std::uint32_t>(index);
  (void)::epoll_ctl(epfd, EPOLL_CTL_MOD, c.fd, &ev);
  c.armed = want;
}

/// Open-loop load over `conns` concurrent connections from a single epoll
/// loop: arrivals follow `shape`, each assigned round-robin, replies parsed
/// per connection in order. kOverloaded replies are counted separately from
/// errors — shedding is the protocol working, not a failure.
LoadResult open_loop_sharded(const std::string& host, std::uint16_t port,
                             Shape shape, int conns, double offered, int total,
                             idx_t users, int k) {
  LoadResult r;
  serve::LatencyTracker e2e;
  const int epfd = ::epoll_create1(EPOLL_CLOEXEC);
  if (epfd < 0) {
    std::fprintf(stderr, "FATAL: epoll_create1: %s\n", std::strerror(errno));
    std::exit(1);
  }

  std::vector<RawConn> pool(static_cast<std::size_t>(conns));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "FATAL: bad host %s\n", host.c_str());
    std::exit(1);
  }
  for (int i = 0; i < conns; ++i) {
    RawConn& c = pool[static_cast<std::size_t>(i)];
    c.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (c.fd < 0 ||
        ::connect(c.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
            0) {
      std::fprintf(stderr, "FATAL: connect %d/%d: %s\n", i, conns,
                   std::strerror(errno));
      std::exit(1);
    }
    int one = 1;
    (void)setsockopt(c.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    (void)::fcntl(c.fd, F_SETFL, O_NONBLOCK);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u32 = static_cast<std::uint32_t>(i);
    if (::epoll_ctl(epfd, EPOLL_CTL_ADD, c.fd, &ev) < 0) {
      std::fprintf(stderr, "FATAL: epoll_ctl: %s\n", std::strerror(errno));
      std::exit(1);
    }
  }

  const auto schedule = arrival_schedule(shape, offered, total);
  const auto stream = zipf_stream(users, total, 960);
  int sent = 0, answered = 0, lost = 0, ok = 0, overloaded = 0, errors = 0;
  epoll_event events[256];
  util::Stopwatch wall;
  const auto start = std::chrono::steady_clock::now();

  auto on_readable = [&](RawConn& c) {
    char buf[16384];
    for (;;) {
      const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
      if (n > 0) {
        c.in.insert(c.in.end(), buf, buf + n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      // Server closed (or reset) the connection: its pending replies are
      // lost. Under these sweeps that is a failure — the server is expected
      // to shed with kOverloaded, not by killing connections.
      lost += static_cast<int>(c.t0s.size());
      errors += static_cast<int>(c.t0s.size());
      c.t0s.clear();
      (void)::epoll_ctl(epfd, EPOLL_CTL_DEL, c.fd, nullptr);
      ::close(c.fd);
      c.fd = -1;
      return;
    }
    std::size_t consumed = 0;
    for (;;) {
      std::size_t off = 0, len = 0;
      if (!serve::net::try_frame(c.in.data() + consumed,
                                 c.in.size() - consumed, &off, &len)) {
        break;
      }
      serve::net::QueryResponse query;
      StatsResponse stats;
      (void)serve::net::decode_response(c.in.data() + consumed + off, len,
                                        &query, &stats);
      e2e.record(std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - c.t0s.front())
                     .count());
      c.t0s.pop_front();
      ++answered;
      if (query.status == Status::kOk) {
        ++ok;
      } else if (query.status == Status::kOverloaded) {
        ++overloaded;
      } else {
        ++errors;
      }
      consumed += off + len;
    }
    if (consumed > 0) {
      c.in.erase(c.in.begin(),
                 c.in.begin() + static_cast<std::ptrdiff_t>(consumed));
    }
  };

  while (answered + lost < total) {
    const auto now = std::chrono::steady_clock::now();
    // Queue every arrival that is due onto its connection.
    while (sent < total) {
      const auto due =
          start + std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(
                          schedule[static_cast<std::size_t>(sent)]));
      if (due > now) break;
      RawConn& c = pool[static_cast<std::size_t>(sent % conns)];
      if (c.fd < 0) {  // connection already lost; count and move on
        ++lost;
        ++errors;
        ++sent;
        continue;
      }
      serve::net::encode_query_request(
          {stream[static_cast<std::size_t>(sent)], static_cast<std::int32_t>(k)},
          &c.out);
      c.t0s.push_back(now);
      ++sent;
      if (!raw_flush(c)) {
        lost += static_cast<int>(c.t0s.size());
        errors += static_cast<int>(c.t0s.size());
        c.t0s.clear();
        (void)::epoll_ctl(epfd, EPOLL_CTL_DEL, c.fd, nullptr);
        ::close(c.fd);
        c.fd = -1;
        continue;
      }
      raw_arm(epfd, (sent - 1) % conns, c);
    }

    int timeout_ms = 100;
    if (sent < total) {
      const double dt =
          schedule[static_cast<std::size_t>(sent)] -
          std::chrono::duration<double>(now - start).count();
      timeout_ms = std::clamp(static_cast<int>(dt * 1e3) + 1, 0, 100);
    }
    const int nev = ::epoll_wait(epfd, events, 256, timeout_ms);
    for (int i = 0; i < nev; ++i) {
      RawConn& c = pool[events[i].data.u32];
      if (c.fd < 0) continue;
      if ((events[i].events & EPOLLIN) != 0) on_readable(c);
      if (c.fd < 0) continue;
      if ((events[i].events & (EPOLLOUT | EPOLLERR | EPOLLHUP)) != 0) {
        if (!raw_flush(c)) {
          lost += static_cast<int>(c.t0s.size());
          errors += static_cast<int>(c.t0s.size());
          c.t0s.clear();
          (void)::epoll_ctl(epfd, EPOLL_CTL_DEL, c.fd, nullptr);
          ::close(c.fd);
          c.fd = -1;
          continue;
        }
      }
      raw_arm(epfd, static_cast<int>(events[i].data.u32), c);
    }
  }

  r.wall_s = wall.seconds();
  for (auto& c : pool) {
    if (c.fd >= 0) ::close(c.fd);
  }
  ::close(epfd);
  r.queries = total;
  r.errors = errors;
  r.overloaded = overloaded;
  r.achieved_qps = answered > 0 ? answered / r.wall_s : 0.0;
  r.e2e = e2e.summary();
  (void)ok;
  return r;
}

StatsResponse wire_stats(const std::string& host, std::uint16_t port) {
  Client client(host, port);
  return client.stats();
}

serve::net::HealthResponse wire_health(const std::string& host,
                                       std::uint16_t port) {
  Client client(host, port);
  return client.health();
}

void emit(util::CsvWriter& csv, const char* mode, int conns,
          double offered_qps, const LoadResult& r, const StatsResponse& s,
          const serve::net::HealthResponse& h) {
  std::printf("  %-8s %6d %11.0f %11.0f %9.2f %9.2f %9.2f %11.2f %13.2f %6d "
              "%4llu\n",
              mode, conns, offered_qps, r.achieved_qps, r.e2e.p50_ms,
              r.e2e.p95_ms, r.e2e.p99_ms, s.queue_p99_ms, s.batch_wall_p99_ms,
              r.overloaded, static_cast<unsigned long long>(s.generation));
  csv.row(mode, conns, offered_qps, r.achieved_qps, r.queries, r.e2e.p50_ms,
          r.e2e.p95_ms, r.e2e.p99_ms, r.e2e.samples, r.e2e.total_recorded,
          s.queue_p50_ms, s.queue_p99_ms, s.batch_wall_p99_ms,
          s.net_e2e_p99_ms, s.e2e_p99_ms, r.overloaded, s.generation,
          h.latency_fast_burn, h.latency_violations);
}

const char* wire_state_name(std::uint8_t state) {
  return obs::alert_state_name(static_cast<obs::AlertState>(state));
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  idx_t users = 1500;
  int k = kTopK;

  // Strip --trace-out FILE / --devices N / --conns N / --slo-report /
  // --events-out FILE before the positional --connect parsing.
  std::string trace_out;
  std::string events_out;
  bool slo_report = false;
  int devices = 1;
  int sweep_conns = 1000;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "--events-out") == 0 && i + 1 < argc) {
      events_out = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "--slo-report") == 0) {
      slo_report = true;
      continue;
    }
    if (std::strcmp(argv[i], "--devices") == 0 && i + 1 < argc) {
      devices = std::max(1, std::atoi(argv[++i]));
      continue;
    }
    if (std::strcmp(argv[i], "--conns") == 0 && i + 1 < argc) {
      sweep_conns = std::max(4, std::atoi(argv[++i]));
      continue;
    }
    args.push_back(argv[i]);
  }

  // The sharded sweep holds sweep_conns client sockets plus the server's
  // side of each in one process; lift the fd ceiling to the hard limit.
  rlimit nofile{};
  if (::getrlimit(RLIMIT_NOFILE, &nofile) == 0 &&
      nofile.rlim_cur < nofile.rlim_max) {
    nofile.rlim_cur = nofile.rlim_max;
    (void)::setrlimit(RLIMIT_NOFILE, &nofile);
  }
  const int nargs = static_cast<int>(args.size());

  const bool external = nargs > 1 && std::strcmp(args[1], "--connect") == 0;
  if (external) {
    if (nargs < 4) {
      std::fprintf(stderr,
                   "usage: %s [--connect HOST PORT [USERS [K]]] "
                   "[--trace-out FILE]\n",
                   argv[0]);
      return 2;
    }
    host = args[2];
    port = static_cast<std::uint16_t>(std::atoi(args[3]));
    if (nargs > 4) users = static_cast<idx_t>(std::atoi(args[4]));
    if (nargs > 5) k = std::atoi(args[5]);
  }

  if (!trace_out.empty()) {
    // Trace everything: the point of a bench trace is one fully decomposed
    // timeline, not statistical sampling. The ring is sized to retain the
    // whole run, so the mid-sweep store.swap instant survives to the export
    // instead of being overwritten by the load that follows it.
    obs::TraceCollector::Options topt;
    topt.capacity = 1 << 18;
    obs::TraceCollector::global().enable(topt);
  }

  bench::print_header("serve_netload",
                      "TCP front-end: e2e latency & queueing vs offered load");

  // Latency + availability SLOs over the in-process server's traffic; every
  // CSV row carries its fast-window burn. The threshold sits at 25 ms so
  // ordinary sweeps stay inside budget while queueing spikes show up as
  // burn. Declared before the serving stack so it outlives the batcher's
  // flusher and the server's shed path.
  obs::SloOptions slo_opt;
  slo_opt.latency_threshold_ms = 25.0;
  obs::SloMonitor slo_main(slo_opt, &obs::EventLog::global());

  // In-process loopback stack (skipped with --connect): a live store so a
  // fresh generation can be hot-swapped in mid-run.
  std::unique_ptr<serve::LiveFactorStore> live;
  std::unique_ptr<gpusim::PcieTopology> topo;
  std::unique_ptr<gpusim::DeviceGroup> group;
  std::unique_ptr<serve::MultiDeviceScoringBackend> md_backend;
  std::unique_ptr<serve::TopKEngine> engine;
  std::unique_ptr<serve::RequestBatcher> batcher;
  std::unique_ptr<serve::net::TcpServer> server;
  if (!external) {
    constexpr idx_t kItems = 3000;
    live = std::make_unique<serve::LiveFactorStore>(
        serve::FactorStore(random_factors(users, kF, 701),
                           random_factors(kItems, kF, 702), 2));
    serve::TopKOptions topt_engine;
    if (devices > 1) {
      // Model-parallel serving: shards spread across the group, and the
      // admission hook makes hot swaps all-or-nothing across devices.
      topo = std::make_unique<gpusim::PcieTopology>(
          gpusim::PcieTopology::flat(devices));
      group = std::make_unique<gpusim::DeviceGroup>(devices, gpusim::titan_x(),
                                                    *topo);
      md_backend =
          std::make_unique<serve::MultiDeviceScoringBackend>(*group, *topo);
      topt_engine.backend = md_backend.get();
      live->set_admission_hook(
          [backend = md_backend.get()](
              const std::shared_ptr<const serve::FactorStore>& s) {
            backend->admit(s);
          });
    }
    engine = std::make_unique<serve::TopKEngine>(*live, topt_engine);
    serve::BatcherOptions opt;
    opt.k = k;
    opt.max_batch = 32;
    opt.max_delay = std::chrono::microseconds(1000);
    opt.cache_capacity = 0;  // pure queueing measurement, no hit shortcut
    batcher = std::make_unique<serve::RequestBatcher>(*engine, opt);
    batcher->set_slo(&slo_main);
    serve::net::ServerOptions sopt;
    sopt.io_threads = 4;
    sopt.backlog = 1024;
    sopt.max_connections =
        static_cast<std::size_t>(std::max(4096, sweep_conns * 2));
    sopt.slo = &slo_main;
    server = std::make_unique<serve::net::TcpServer>(*batcher, sopt);
    port = server->port();
    std::printf("  loopback server on 127.0.0.1:%u — %d users × %d items, "
                "f=%d, top-%d, max_batch 32, max_delay 1 ms, cache off, "
                "%d device(s), %d io shards\n",
                port, users, kItems, kF, k, devices, server->io_shards());
  } else {
    std::printf("  external server %s:%u — users=%d k=%d\n", host.c_str(),
                port, users, k);
  }

  util::CsvWriter csv(
      bench::results_dir() + "/serve_netload.csv",
      {"mode", "conns", "offered_qps", "achieved_qps", "queries", "e2e_p50_ms",
       "e2e_p95_ms", "e2e_p99_ms", "e2e_samples", "e2e_total", "queue_p50_ms",
       "queue_p99_ms", "batch_wall_p99_ms", "net_e2e_p99_ms",
       "server_e2e_p99_ms", "overloaded", "generation", "slo_latency_burn",
       "slo_violations"});

  std::printf("\n  %-8s %6s %11s %11s %9s %9s %9s %11s %13s %6s %4s\n", "mode",
              "conns", "offered", "achieved", "p50(ms)", "p95(ms)", "p99(ms)",
              "queue_p99", "batch_p99", "shed", "gen");

  int total_errors = 0;

  // ---- closed loop: concurrency fills micro-batches ----------------------
  for (const int conns : {1, 4, 16}) {
    const auto r = closed_loop(host, port, conns, 250, users, k);
    emit(csv, "closed", conns, 0.0, r, wire_stats(host, port),
         wire_health(host, port));
    print_transitions(r);  // hot swaps visible from the client side
    total_errors += r.errors;
  }

  // ---- open loop: offered load sweeps toward capacity --------------------
  // A fresh generation lands mid-sweep (in-process mode): the generation
  // column advances while queries keep flowing.
  std::thread swapper;
  if (!external) {
    swapper = std::thread([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
      (void)live->refresh(serve::FactorStore(random_factors(users, kF, 711),
                                             random_factors(3000, kF, 712),
                                             2));
    });
  }
  for (const double offered : {2000.0, 8000.0, 20000.0}) {
    const int total = std::min(6000, static_cast<int>(offered * 0.4));
    const auto r = open_loop(host, port, offered, total, users, k);
    emit(csv, "open", 1, offered, r, wire_stats(host, port),
         wire_health(host, port));
    print_transitions(r);  // the mid-sweep swap (or a --daemon promotion)
    total_errors += r.errors;
  }
  if (swapper.joinable()) swapper.join();

  // ---- sharded sweep: 1k connections, bursty and diurnal arrivals --------
  // Mean offered load sits well under capacity (the "pre-PR" operating
  // point): the run must complete with zero errors and zero sheds — the
  // tail the CSV captures is pure accept→reply latency through the shards.
  const double sweep_qps = 2000.0;
  const int sweep_total = 3000;
  for (const auto& [shape, conns] :
       {std::pair<Shape, int>{Shape::kBursty, std::max(4, sweep_conns / 4)},
        {Shape::kBursty, sweep_conns},
        {Shape::kDiurnal, sweep_conns}}) {
    const auto r = open_loop_sharded(host, port, shape, conns, sweep_qps,
                                     sweep_total, users, k);
    emit(csv, shape_name(shape), conns, sweep_qps, r, wire_stats(host, port),
         wire_health(host, port));
    total_errors += r.errors + r.overloaded;  // sheds are failures *here*
  }

  // ---- fleet plan fed from the live front-end ----------------------------
  // measured_serving_profile floors the planner's queueing on the wire tail
  // (net_e2e p99 − one median batch) the sharded sweep just produced.
  if (!external) {
    const serve::ServeStats live_stats = server->stats();
    const auto profile = costmodel::measured_serving_profile(live_stats, 32);
    costmodel::FleetRequirement req;
    req.target_qps = 4000.0;
    req.p99_ms = 25.0;
    req.max_fill_ms = 1.0;
    std::printf("\n  fleet plan @ %.0f qps, p99 ≤ %.0f ms (queue floor "
                "%.2f ms from the sharded front-end):\n",
                req.target_qps, req.p99_ms, profile.queue_floor_s * 1e3);
    for (const auto& pd : costmodel::priced_serving_devices()) {
      const auto plan = costmodel::plan_serving_fleet(
          req, pd.spec, pd.pricing.price_per_device_hr, profile);
      std::printf("    %-8s %s: %d device(s), modeled p99 %.2f ms, "
                  "$%.2f/hr, %.0f qps/$hr\n",
                  pd.spec.name.c_str(), plan.feasible ? "ok" : "infeasible",
                  plan.devices, plan.modeled_p99_ms, plan.dollars_per_hr,
                  plan.qps_per_dollar_hr);
    }
  }

  // ---- overload: unthrottled dump against a tight admission bound --------
  // A second server shares the batcher but caps each completion lane at 32
  // queued queries; dumping far more than capacity must surface as
  // kOverloaded sheds at the edge (bounded memory, connections kept) — not
  // as errors, closed sockets, or unbounded queueing.
  if (!external) {
    serve::net::ServerOptions oopt;
    oopt.io_threads = 2;
    oopt.backlog = 512;
    oopt.max_connections = 1024;
    oopt.max_queued_replies = 32;
    // A dedicated monitor with tight 1 s / 2 s windows watches the overload:
    // sheds must burn the availability budget into `page` during the dump,
    // and the quiet aftermath must decay the alert back out of `page` —
    // detect and recover, asserted below.
    obs::SloOptions oslo_opt;
    oslo_opt.latency_threshold_ms = 25.0;
    oslo_opt.fast_window_s = 1;
    oslo_opt.slow_window_s = 2;
    obs::SloMonitor overload_slo(oslo_opt, &obs::EventLog::global());
    oopt.slo = &overload_slo;
    batcher->set_slo(&overload_slo);
    serve::net::TcpServer overload_server(*batcher, oopt);
    const int oconns = 200, ototal = 4000;
    const auto r = open_loop_sharded("127.0.0.1", overload_server.port(),
                                     Shape::kUnthrottled, oconns, 0.0, ototal,
                                     users, k);
    const auto during = overload_slo.snapshot();
    StatsResponse os;
    serve::net::HealthResponse oh;
    {
      Client probe("127.0.0.1", overload_server.port());
      os = probe.stats();
      oh = probe.health();
      // Recovery: with the dump drained the same admission bound serves
      // normally again.
      const auto after = probe.query(0, k);
      if (after.status != Status::kOk) {
        std::fprintf(stderr, "FATAL: no recovery after overload (status %d)\n",
                     static_cast<int>(after.status));
        return 1;
      }
    }
    emit(csv, "overload", oconns, 0.0, r, os, oh);
    std::printf("    overload dump: %d queries -> %d served, %d shed "
                "(server counter %llu), %d errors\n",
                ototal, ototal - r.overloaded - r.errors, r.overloaded,
                static_cast<unsigned long long>(os.net_overload_sheds),
                r.errors);
    total_errors += r.errors;
    if (r.overloaded == 0) {
      std::fprintf(stderr, "FATAL: overload dump produced no kOverloaded "
                           "sheds — admission control is not engaging\n");
      return 1;
    }
    if (during.availability.state != obs::AlertState::kPage) {
      std::fprintf(stderr,
                   "FATAL: overload dump did not page the availability SLO "
                   "(state %s, fast burn %.1f, slow burn %.1f)\n",
                   obs::alert_state_name(during.availability.state),
                   during.availability.fast_burn,
                   during.availability.slow_burn);
      return 1;
    }
    std::printf("    availability SLO paged during the dump (fast burn %.0f, "
                "slow burn %.0f); waiting for the alert to clear...\n",
                during.availability.fast_burn, during.availability.slow_burn);
    // Leave `page`: with the dump over, the 1 s / 2 s windows empty out and
    // the hysteretic state machine steps down one level per evaluation.
    obs::AlertState settled = obs::AlertState::kPage;
    for (int i = 0; i < 40 && settled == obs::AlertState::kPage; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(250));
      settled = overload_slo.snapshot().availability.state;
    }
    if (settled == obs::AlertState::kPage) {
      std::fprintf(stderr, "FATAL: availability SLO still paging 10 s after "
                           "the overload dump ended\n");
      return 1;
    }
    std::printf("    availability SLO recovered to %s after the dump "
                "(%llu transitions)\n",
                obs::alert_state_name(settled),
                static_cast<unsigned long long>(
                    overload_slo.snapshot().availability.transitions));
    batcher->set_slo(&slo_main);  // overload_slo dies with this block
  }

  // ---- the accounting invariant, printed for the record ------------------
  const auto s = wire_stats(host, port);
  std::printf("\n  server e2e p99 %.2f ms >= batch-wall p99 %.2f ms: %s "
              "(holds by construction: cache off, every query contains its "
              "batch)\n",
              s.e2e_p99_ms, s.batch_wall_p99_ms,
              s.e2e_p99_ms >= s.batch_wall_p99_ms ? "yes" : "NO (?)");
  std::printf("  e2e percentiles over %llu window samples "
              "(%llu recorded lifetime); queue-delay p99 %.2f ms\n",
              static_cast<unsigned long long>(s.e2e_samples),
              static_cast<unsigned long long>(s.e2e_total), s.queue_p99_ms);
  if (!external) {
    std::printf("  final serving generation: %llu (one hot swap mid-sweep)\n",
                static_cast<unsigned long long>(s.generation));
  }
  if (slo_report) {
    // The same view a dashboard would poll: GetHealth over the wire.
    const auto h = wire_health(host, port);
    std::printf("\n  SLO report (GetHealth, threshold %.1f ms):\n"
                "    latency      %-4s  fast burn %6.2f  slow burn %6.2f  "
                "%llu violations, %llu transitions\n"
                "    availability %-4s  fast burn %6.2f  slow burn %6.2f  "
                "%llu errors, %llu transitions\n",
                h.latency_threshold_ms, wire_state_name(h.latency_state),
                h.latency_fast_burn, h.latency_slow_burn,
                static_cast<unsigned long long>(h.latency_violations),
                static_cast<unsigned long long>(h.latency_transitions),
                wire_state_name(h.availability_state),
                h.availability_fast_burn, h.availability_slow_burn,
                static_cast<unsigned long long>(h.availability_errors),
                static_cast<unsigned long long>(h.availability_transitions));
    for (const auto& ex : h.exemplars) {
      std::printf("    slow query: user %llu  e2e %.3f ms = queue %.3f + "
                  "engine %.3f + finish %.3f\n",
                  static_cast<unsigned long long>(ex.user), ex.e2e_ms,
                  ex.queue_ms, ex.engine_ms, ex.finish_ms);
    }
    std::printf("    events: %llu recorded, %llu dropped\n",
                static_cast<unsigned long long>(h.events_recorded),
                static_cast<unsigned long long>(h.events_dropped));
  }
  if (!events_out.empty()) {
    auto& events = obs::EventLog::global();
    if (events.write_json_lines(events_out)) {
      std::printf("  events: %llu recorded (%llu dropped by ring wrap) -> "
                  "%s\n",
                  static_cast<unsigned long long>(events.recorded()),
                  static_cast<unsigned long long>(events.dropped()),
                  events_out.c_str());
    } else {
      std::fprintf(stderr, "FATAL: could not write events to %s\n",
                   events_out.c_str());
      return 1;
    }
  }
  if (!trace_out.empty()) {
    auto& trace = obs::TraceCollector::global();
    trace.disable();
    if (trace.write_chrome_json(trace_out)) {
      std::printf("  trace: %llu events (%llu dropped by ring wrap) -> %s\n",
                  static_cast<unsigned long long>(trace.events_recorded()),
                  static_cast<unsigned long long>(trace.events_dropped()),
                  trace_out.c_str());
    } else {
      std::fprintf(stderr, "FATAL: could not write trace to %s\n",
                   trace_out.c_str());
      return 1;
    }
  }
  if (total_errors > 0) {
    std::fprintf(stderr, "FATAL: %d queries returned a non-OK status\n",
                 total_errors);
    return 1;
  }
  return 0;
}
