// Network serving load generator: end-to-end latency over the wire.
//
// The serving benches so far measured the engine and batcher in-process;
// this one measures what a *user* sees — accept→reply across a real TCP
// socket — and what the queueing path adds on top of batch service time.
// Two load shapes against the same loopback server:
//
//  - closed loop: N connections, each waiting for its reply before sending
//    the next query. Concurrency is the lever: one connection pays the full
//    batcher deadline per query; many connections fill micro-batches and
//    ride the same flush.
//  - open loop: queries arrive on a schedule (offered qps) regardless of
//    completions, pipelined on one connection — the shape that exposes
//    queueing delay as load approaches capacity.
//
// Mid-run a fresh model generation is hot-swapped into the live store, so
// the CSV also shows the generation advancing under load. Client-measured
// e2e percentiles ride next to the server's own ServeStats (queue-delay p99,
// batch-wall p99, net e2e) fetched over the wire via the stats op.
//
// ServeStats e2e p99 >= batch-wall p99 holds by construction on these runs
// (cache off: every query's end-to-end time contains its batch's wall time);
// the bench prints the check but, per repo convention, perf-shaped numbers
// never gate — correctness is pinned in tests/serve_net_test.cpp.
//
// Usage:
//   serve_netload                          # in-process loopback server
//   serve_netload --connect HOST PORT [USERS [K]]
//       client side only, against an external server (e.g.
//       `serve_recommendations --port 7070` in another terminal).
//   serve_netload --trace-out FILE
//       enable request tracing (sample_every=1) and dump the run's Chrome
//       trace-event JSON to FILE — load it in Perfetto/chrome://tracing to
//       see the mid-sweep hot swap land between decomposed queries.
//   serve_netload --devices N
//       in-process mode only: serve from a MultiDeviceScoringBackend over N
//       simulated devices (model-parallel scatter-gather path), wired into
//       the live store's admission hook so the mid-run hot swap exercises
//       all-or-nothing multi-device generation charging.
//
// CSV: bench_results/serve_netload.csv

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "gpusim/device_group.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/topology.hpp"
#include "obs/trace.hpp"
#include "serve/batcher.hpp"
#include "serve/multi_device_backend.hpp"
#include "serve/factor_store.hpp"
#include "serve/live_store.hpp"
#include "serve/net/client.hpp"
#include "serve/net/server.hpp"
#include "serve/topk.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace cumf;
using serve::net::Client;
using serve::net::StatsResponse;
using serve::net::Status;

constexpr int kF = 16;
constexpr int kTopK = 10;

linalg::FactorMatrix random_factors(idx_t rows, int f, std::uint64_t seed) {
  linalg::FactorMatrix m(rows, f);
  util::Rng rng(seed);
  m.randomize_uniform(rng, -1.0f, 1.0f);
  return m;
}

std::vector<idx_t> zipf_stream(idx_t users, int n, std::uint64_t seed) {
  std::vector<idx_t> stream(static_cast<std::size_t>(n));
  util::Rng rng(seed);
  for (auto& u : stream) {
    u = static_cast<idx_t>(rng.zipf(static_cast<std::uint64_t>(users), 1.1));
  }
  return stream;
}

/// A model generation change observed in a connection's reply stream — the
/// client-side view of a hot swap landing (promotion timing, satellite of
/// the retrain orchestrator: with --connect against a --daemon server these
/// are the orchestrator's promotions/rollbacks as the wire reports them).
struct GenTransition {
  int conn = 0;
  int query = 0;  // 0-based index within that connection's stream
  std::uint64_t from = 0;
  std::uint64_t to = 0;
};

struct LoadResult {
  int queries = 0;
  int errors = 0;
  double wall_s = 0.0;
  double achieved_qps = 0.0;
  serve::LatencySummary e2e;  // client-measured send→reply
  std::vector<GenTransition> transitions;
};

void print_transitions(const LoadResult& r) {
  for (const auto& t : r.transitions) {
    std::printf("    generation %llu -> %llu observed at conn %d query #%d "
                "of %d\n",
                static_cast<unsigned long long>(t.from),
                static_cast<unsigned long long>(t.to), t.conn, t.query,
                r.queries);
  }
}

/// N connections, one outstanding query each.
LoadResult closed_loop(const std::string& host, std::uint16_t port, int conns,
                       int per_conn, idx_t users, int k) {
  LoadResult r;
  serve::LatencyTracker e2e;
  std::atomic<int> errors{0};
  std::mutex transitions_mu;
  std::vector<GenTransition> transitions;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(conns));
  util::Stopwatch wall;
  for (int c = 0; c < conns; ++c) {
    threads.emplace_back([&, c] {
      Client client(host, port);
      const auto stream =
          zipf_stream(users, per_conn, 900 + static_cast<std::uint64_t>(c));
      std::uint64_t last_gen = 0;
      int idx = 0;
      for (const idx_t u : stream) {
        util::Stopwatch q;
        const auto resp = client.query(u, k);
        e2e.record(q.milliseconds());
        if (resp.status != Status::kOk) errors.fetch_add(1);
        if (resp.generation != last_gen) {
          if (last_gen != 0) {  // first reply just establishes the baseline
            std::lock_guard<std::mutex> lock(transitions_mu);
            transitions.push_back({c, idx, last_gen, resp.generation});
          }
          last_gen = resp.generation;
        }
        ++idx;
      }
    });
  }
  for (auto& t : threads) t.join();
  r.transitions = std::move(transitions);
  r.wall_s = wall.seconds();
  r.queries = conns * per_conn;
  r.errors = errors.load();
  r.achieved_qps = r.queries / r.wall_s;
  r.e2e = e2e.summary();
  return r;
}

/// One pipelined connection, queries sent on a fixed schedule. The sender
/// and reader share the Client: its send and receive paths touch disjoint
/// state, so one writer thread plus one reader thread is safe.
LoadResult open_loop(const std::string& host, std::uint16_t port,
                     double offered_qps, int total, idx_t users, int k) {
  LoadResult r;
  serve::LatencyTracker e2e;
  Client client(host, port);

  std::mutex mu;
  std::deque<std::chrono::steady_clock::time_point> sent;
  std::atomic<int> errors{0};

  std::vector<GenTransition> transitions;
  std::thread reader([&] {
    std::uint64_t last_gen = 0;
    for (int i = 0; i < total; ++i) {
      const auto resp = client.read_query_response();
      std::chrono::steady_clock::time_point t0;
      {
        std::lock_guard<std::mutex> lock(mu);
        t0 = sent.front();
        sent.pop_front();
      }
      e2e.record(std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0)
                     .count());
      if (resp.status != Status::kOk) errors.fetch_add(1);
      if (resp.generation != last_gen) {
        if (last_gen != 0) transitions.push_back({0, i, last_gen, resp.generation});
        last_gen = resp.generation;
      }
    }
  });

  const auto stream = zipf_stream(users, total, 950);
  const auto period = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(1.0 / offered_qps));
  util::Stopwatch wall;
  auto next = std::chrono::steady_clock::now();
  for (const idx_t u : stream) {
    std::this_thread::sleep_until(next);  // no-op once the sender is behind
    next += period;
    {
      std::lock_guard<std::mutex> lock(mu);
      sent.push_back(std::chrono::steady_clock::now());
    }
    client.send_query(u, k);
  }
  reader.join();
  r.wall_s = wall.seconds();
  r.queries = total;
  r.errors = errors.load();
  r.achieved_qps = total / r.wall_s;
  r.e2e = e2e.summary();
  r.transitions = std::move(transitions);
  return r;
}

StatsResponse wire_stats(const std::string& host, std::uint16_t port) {
  Client client(host, port);
  return client.stats();
}

void emit(util::CsvWriter& csv, const char* mode, int conns,
          double offered_qps, const LoadResult& r, const StatsResponse& s) {
  std::printf("  %-7s %6d %11.0f %11.0f %9.2f %9.2f %9.2f %11.2f %13.2f %4llu\n",
              mode, conns, offered_qps, r.achieved_qps, r.e2e.p50_ms,
              r.e2e.p95_ms, r.e2e.p99_ms, s.queue_p99_ms, s.batch_wall_p99_ms,
              static_cast<unsigned long long>(s.generation));
  csv.row(mode, conns, offered_qps, r.achieved_qps, r.queries, r.e2e.p50_ms,
          r.e2e.p95_ms, r.e2e.p99_ms, r.e2e.samples, r.e2e.total_recorded,
          s.queue_p50_ms, s.queue_p99_ms, s.batch_wall_p99_ms,
          s.net_e2e_p99_ms, s.e2e_p99_ms, s.generation);
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  idx_t users = 1500;
  int k = kTopK;

  // Strip --trace-out FILE / --devices N before the positional --connect
  // parsing.
  std::string trace_out;
  int devices = 1;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "--devices") == 0 && i + 1 < argc) {
      devices = std::max(1, std::atoi(argv[++i]));
      continue;
    }
    args.push_back(argv[i]);
  }
  const int nargs = static_cast<int>(args.size());

  const bool external = nargs > 1 && std::strcmp(args[1], "--connect") == 0;
  if (external) {
    if (nargs < 4) {
      std::fprintf(stderr,
                   "usage: %s [--connect HOST PORT [USERS [K]]] "
                   "[--trace-out FILE]\n",
                   argv[0]);
      return 2;
    }
    host = args[2];
    port = static_cast<std::uint16_t>(std::atoi(args[3]));
    if (nargs > 4) users = static_cast<idx_t>(std::atoi(args[4]));
    if (nargs > 5) k = std::atoi(args[5]);
  }

  if (!trace_out.empty()) {
    // Trace everything: the point of a bench trace is one fully decomposed
    // timeline, not statistical sampling. The ring is sized to retain the
    // whole run, so the mid-sweep store.swap instant survives to the export
    // instead of being overwritten by the load that follows it.
    obs::TraceCollector::Options topt;
    topt.capacity = 1 << 18;
    obs::TraceCollector::global().enable(topt);
  }

  bench::print_header("serve_netload",
                      "TCP front-end: e2e latency & queueing vs offered load");

  // In-process loopback stack (skipped with --connect): a live store so a
  // fresh generation can be hot-swapped in mid-run.
  std::unique_ptr<serve::LiveFactorStore> live;
  std::unique_ptr<gpusim::PcieTopology> topo;
  std::unique_ptr<gpusim::DeviceGroup> group;
  std::unique_ptr<serve::MultiDeviceScoringBackend> md_backend;
  std::unique_ptr<serve::TopKEngine> engine;
  std::unique_ptr<serve::RequestBatcher> batcher;
  std::unique_ptr<serve::net::TcpServer> server;
  if (!external) {
    constexpr idx_t kItems = 3000;
    live = std::make_unique<serve::LiveFactorStore>(
        serve::FactorStore(random_factors(users, kF, 701),
                           random_factors(kItems, kF, 702), 2));
    serve::TopKOptions topt_engine;
    if (devices > 1) {
      // Model-parallel serving: shards spread across the group, and the
      // admission hook makes hot swaps all-or-nothing across devices.
      topo = std::make_unique<gpusim::PcieTopology>(
          gpusim::PcieTopology::flat(devices));
      group = std::make_unique<gpusim::DeviceGroup>(devices, gpusim::titan_x(),
                                                    *topo);
      md_backend =
          std::make_unique<serve::MultiDeviceScoringBackend>(*group, *topo);
      topt_engine.backend = md_backend.get();
      live->set_admission_hook(
          [backend = md_backend.get()](
              const std::shared_ptr<const serve::FactorStore>& s) {
            backend->admit(s);
          });
    }
    engine = std::make_unique<serve::TopKEngine>(*live, topt_engine);
    serve::BatcherOptions opt;
    opt.k = k;
    opt.max_batch = 32;
    opt.max_delay = std::chrono::microseconds(1000);
    opt.cache_capacity = 0;  // pure queueing measurement, no hit shortcut
    batcher = std::make_unique<serve::RequestBatcher>(*engine, opt);
    server = std::make_unique<serve::net::TcpServer>(*batcher);
    port = server->port();
    std::printf("  loopback server on 127.0.0.1:%u — %d users × %d items, "
                "f=%d, top-%d, max_batch 32, max_delay 1 ms, cache off, "
                "%d device(s)\n",
                port, users, kItems, kF, k, devices);
  } else {
    std::printf("  external server %s:%u — users=%d k=%d\n", host.c_str(),
                port, users, k);
  }

  util::CsvWriter csv(
      bench::results_dir() + "/serve_netload.csv",
      {"mode", "conns", "offered_qps", "achieved_qps", "queries", "e2e_p50_ms",
       "e2e_p95_ms", "e2e_p99_ms", "e2e_samples", "e2e_total", "queue_p50_ms",
       "queue_p99_ms", "batch_wall_p99_ms", "net_e2e_p99_ms",
       "server_e2e_p99_ms", "generation"});

  std::printf("\n  %-7s %6s %11s %11s %9s %9s %9s %11s %13s %4s\n", "mode",
              "conns", "offered", "achieved", "p50(ms)", "p95(ms)", "p99(ms)",
              "queue_p99", "batch_p99", "gen");

  int total_errors = 0;

  // ---- closed loop: concurrency fills micro-batches ----------------------
  for (const int conns : {1, 4, 16}) {
    const auto r = closed_loop(host, port, conns, 250, users, k);
    emit(csv, "closed", conns, 0.0, r, wire_stats(host, port));
    print_transitions(r);  // hot swaps visible from the client side
    total_errors += r.errors;
  }

  // ---- open loop: offered load sweeps toward capacity --------------------
  // A fresh generation lands mid-sweep (in-process mode): the generation
  // column advances while queries keep flowing.
  std::thread swapper;
  if (!external) {
    swapper = std::thread([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
      (void)live->refresh(serve::FactorStore(random_factors(users, kF, 711),
                                             random_factors(3000, kF, 712),
                                             2));
    });
  }
  for (const double offered : {2000.0, 8000.0, 20000.0}) {
    const int total = std::min(6000, static_cast<int>(offered * 0.4));
    const auto r = open_loop(host, port, offered, total, users, k);
    emit(csv, "open", 1, offered, r, wire_stats(host, port));
    print_transitions(r);  // the mid-sweep swap (or a --daemon promotion)
    total_errors += r.errors;
  }
  if (swapper.joinable()) swapper.join();

  // ---- the accounting invariant, printed for the record ------------------
  const auto s = wire_stats(host, port);
  std::printf("\n  server e2e p99 %.2f ms >= batch-wall p99 %.2f ms: %s "
              "(holds by construction: cache off, every query contains its "
              "batch)\n",
              s.e2e_p99_ms, s.batch_wall_p99_ms,
              s.e2e_p99_ms >= s.batch_wall_p99_ms ? "yes" : "NO (?)");
  std::printf("  e2e percentiles over %llu window samples "
              "(%llu recorded lifetime); queue-delay p99 %.2f ms\n",
              static_cast<unsigned long long>(s.e2e_samples),
              static_cast<unsigned long long>(s.e2e_total), s.queue_p99_ms);
  if (!external) {
    std::printf("  final serving generation: %llu (one hot swap mid-sweep)\n",
                static_cast<unsigned long long>(s.generation));
  }
  if (!trace_out.empty()) {
    auto& trace = obs::TraceCollector::global();
    trace.disable();
    if (trace.write_chrome_json(trace_out)) {
      std::printf("  trace: %llu events (%llu dropped by ring wrap) -> %s\n",
                  static_cast<unsigned long long>(trace.events_recorded()),
                  static_cast<unsigned long long>(trace.events_dropped()),
                  trace_out.c_str());
    } else {
      std::fprintf(stderr, "FATAL: could not write trace to %s\n",
                   trace_out.c_str());
      return 1;
    }
  }
  if (total_errors > 0) {
    std::fprintf(stderr, "FATAL: %d queries returned a non-OK status\n",
                 total_errors);
    return 1;
  }
  return 0;
}
