// Continuous-refresh bench: what does the retrain → gate → hot-swap loop
// cost the query path?
//
// The paper's economics say retraining is cheap; this bench measures whether
// *serving* stays cheap while the orchestrator runs the loop for real. For
// each (delta_rate, cadence) cell an ingest thread feeds rating deltas into
// the RatingLog at the offered rate, closed-loop query threads hammer the
// batcher, and the orchestrator retrains + gates + promotes on its cadence.
// Per cycle the CSV records the gate verdict and metrics, the training cost
// on both time axes, the swap pause, and the measured qps in equal windows
// before / during / after the promotion — the "during" window containing the
// retrain + swap is the number that must not crater for the continuous-
// refresh story to hold.
//
// Per repo convention the perf-shaped numbers never gate: correctness of the
// loop (zero dropped queries, bit-exact generations, gate behavior) is
// pinned in tests/orchestrate_test.cpp; this bench exists for the CSV
// artifact and its trajectory across commits.
//
// Usage:
//   orchestrate_refresh [--trace-out FILE]
//       with --trace-out, enable request tracing and dump the run's Chrome
//       trace-event JSON (orch.cycle → snapshot/train/gate/promote spans on
//       the orchestrator thread, store.swap instants, query spans around
//       them) to FILE.
//
// CSV: bench_results/orchestrate_refresh.csv

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "obs/trace.hpp"
#include "core/solver.hpp"
#include "gpusim/device_group.hpp"
#include "orchestrate/orchestrator.hpp"
#include "serve/batcher.hpp"
#include "serve/live_store.hpp"
#include "serve/topk.hpp"
#include "sparse/split.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace cumf;

constexpr int kF = 16;
constexpr int kTopK = 10;
constexpr int kQueryThreads = 3;

const char* outcome_name(orchestrate::CycleOutcome o) {
  switch (o) {
    case orchestrate::CycleOutcome::kPromoted: return "promoted";
    case orchestrate::CycleOutcome::kRejected: return "rejected";
    case orchestrate::CycleOutcome::kSkipped: return "skipped";
    case orchestrate::CycleOutcome::kTrainFailed: return "train_failed";
    case orchestrate::CycleOutcome::kRolledBack: return "rolled_back";
  }
  return "?";
}

/// Queries answered across all closed-loop threads in a timed window.
double measure_qps(serve::RequestBatcher& batcher, idx_t users,
                   std::chrono::milliseconds window) {
  std::atomic<std::uint64_t> answered{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kQueryThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Rng rng(7000 + static_cast<std::uint64_t>(t));
      while (!stop.load(std::memory_order_acquire)) {
        const auto u = static_cast<idx_t>(
            rng.zipf(static_cast<std::uint64_t>(users), 1.1));
        (void)batcher.submit(u).get();
        answered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  util::Stopwatch wall;
  std::this_thread::sleep_for(window);
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  return static_cast<double>(answered.load()) / wall.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--trace-out FILE]\n", argv[0]);
      return 2;
    }
  }
  if (!trace_out.empty()) {
    // Sized to retain the whole run: every orch.cycle (not just the last)
    // should still be on the timeline when the export runs.
    obs::TraceCollector::Options topt;
    topt.capacity = 1 << 18;
    obs::TraceCollector::global().enable(topt);
  }

  bench::print_header("orchestrate_refresh",
                      "retrain → gate → hot-swap loop under query load");

  // One trained world reused across cells (retrains warm-start from it).
  data::SyntheticOptions gen;
  gen.m = 1500;
  gen.n = 700;
  gen.nz = 40'000;
  gen.f_true = 8;
  gen.noise_std = 0.4;
  gen.seed = 42;
  const auto ratings = data::generate_ratings(gen);
  util::Rng split_rng(9);
  const auto split = sparse::split_ratings(ratings, 0.1, split_rng);
  const auto R = sparse::coo_to_csr(split.train);
  const auto Rt = sparse::csc_as_csr_of_transpose(sparse::csr_to_csc(R));

  const auto topo = gpusim::PcieTopology::flat(1);
  gpusim::DeviceGroup gpu(1, gpusim::titan_x(), topo);
  core::SolverConfig cfg;
  cfg.als.f = kF;
  cfg.als.lambda = 0.05f;
  core::AlsSolver solver(gpu.pointers(), topo, R, Rt, cfg);
  for (int i = 0; i < 4; ++i) solver.run_iteration();
  std::printf("  base model: %d users × %d items, f=%d, 4 ALS iterations\n",
              gen.m, gen.n, kF);

  util::CsvWriter csv(
      bench::results_dir() + "/orchestrate_refresh.csv",
      {"delta_rate_per_s", "cadence_ms", "cycle", "outcome", "gate_rmse",
       "gate_recall", "train_wall_ms", "train_modeled_s", "swap_pause_ms",
       "qps_before", "qps_during", "qps_after", "generation",
       "deltas_merged"});

  std::printf("\n  %9s %10s %5s %12s %9s %7s %10s %9s %9s %9s %9s %4s\n",
              "deltas/s", "cadence", "cycle", "outcome", "gate_rmse",
              "recall", "train(ms)", "qps_bef", "qps_dur", "qps_aft",
              "pause(ms)", "gen");

  for (const double delta_rate : {2000.0, 8000.0}) {
    for (const int cadence_ms : {150, 400}) {
      const auto work_dir = std::filesystem::temp_directory_path() /
                            ("cumf_orch_bench_" + std::to_string(cadence_ms) +
                             "_" + std::to_string(static_cast<int>(delta_rate)));
      std::filesystem::create_directories(work_dir);

      orchestrate::RatingLog log(split.train);
      serve::LiveFactorStore live(
          serve::FactorStore(solver.x(), solver.theta(), 4));
      serve::TopKOptions eopt;
      eopt.exclude_rated = &R;
      const serve::TopKEngine engine(live, eopt);
      serve::BatcherOptions bopt;
      bopt.k = kTopK;
      bopt.max_batch = 32;
      bopt.max_delay = std::chrono::microseconds(1000);
      serve::RequestBatcher batcher(engine, bopt);

      orchestrate::OrchestratorOptions oopt;
      oopt.trainer.solver = cfg;
      oopt.trainer.iterations = 2;
      oopt.gate.k = kTopK;
      oopt.gate.max_eval_users = 150;
      oopt.gate.rmse_slack = 0.05;
      oopt.gate.recall_slack = 0.2;
      oopt.work_dir = work_dir.string();
      orchestrate::Orchestrator orch(log, live, split.test, oopt, &R);

      // Offered-rate delta ingestion for the whole cell.
      std::atomic<bool> stop_ingest{false};
      std::thread ingest([&] {
        util::Rng rng(31);
        const auto period = std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(1.0 / delta_rate));
        auto next = std::chrono::steady_clock::now();
        while (!stop_ingest.load(std::memory_order_acquire)) {
          std::this_thread::sleep_until(next);
          next += period;
          const auto u = static_cast<idx_t>(
              rng.next_below(static_cast<std::uint64_t>(gen.m)));
          const auto v = static_cast<idx_t>(
              rng.zipf(static_cast<std::uint64_t>(gen.n), 1.05));
          (void)log.append(u, v, rng.next_real() * 5.0f);
        }
      });

      const auto window = std::chrono::milliseconds(cadence_ms);
      for (int cycle = 1; cycle <= 2; ++cycle) {
        const double qps_before = measure_qps(batcher, gen.m, window);

        // The retrain + gate + swap runs while queries keep flowing: the
        // "during" window brackets the whole cycle.
        std::atomic<bool> cycle_done{false};
        orchestrate::CycleRecord rec;
        std::thread retrainer([&] {
          rec = orch.run_cycle(/*force=*/true);
          cycle_done.store(true, std::memory_order_release);
        });
        std::atomic<std::uint64_t> answered{0};
        std::vector<std::thread> load;
        for (int t = 0; t < kQueryThreads; ++t) {
          load.emplace_back([&, t] {
            util::Rng rng(8000 + static_cast<std::uint64_t>(t));
            while (!cycle_done.load(std::memory_order_acquire)) {
              const auto u = static_cast<idx_t>(
                  rng.zipf(static_cast<std::uint64_t>(gen.m), 1.1));
              (void)batcher.submit(u).get();
              answered.fetch_add(1, std::memory_order_relaxed);
            }
          });
        }
        util::Stopwatch during;
        retrainer.join();
        for (auto& t : load) t.join();
        const double qps_during =
            static_cast<double>(answered.load()) / during.seconds();

        const double qps_after = measure_qps(batcher, gen.m, window);

        std::printf("  %9.0f %8dms %5d %12s %9.4f %7.3f %10.1f %9.0f %9.0f "
                    "%9.0f %9.4f %4llu\n",
                    delta_rate, cadence_ms, cycle, outcome_name(rec.outcome),
                    rec.gate.rmse, rec.gate.recall, rec.train_wall_ms,
                    qps_before, qps_during, qps_after, rec.swap_pause_ms,
                    static_cast<unsigned long long>(rec.generation));
        csv.row(delta_rate, cadence_ms, cycle, outcome_name(rec.outcome),
                rec.gate.rmse, rec.gate.recall, rec.train_wall_ms,
                rec.train_modeled_s, rec.swap_pause_ms, qps_before,
                qps_during, qps_after, rec.generation, rec.deltas_seen);
      }

      stop_ingest.store(true, std::memory_order_release);
      ingest.join();
      const auto oc = orch.counters();
      std::printf("  cell totals: %llu retrains, %llu promotions, %llu "
                  "rejections; %llu deltas ingested\n",
                  static_cast<unsigned long long>(oc.retrains),
                  static_cast<unsigned long long>(oc.promotions),
                  static_cast<unsigned long long>(oc.rejections),
                  static_cast<unsigned long long>(oc.deltas_ingested));
      std::error_code ec;
      std::filesystem::remove_all(work_dir, ec);
    }
  }

  if (!trace_out.empty()) {
    auto& trace = obs::TraceCollector::global();
    trace.disable();
    if (trace.write_chrome_json(trace_out)) {
      std::printf("  trace: %llu events (%llu dropped by ring wrap) -> %s\n",
                  static_cast<unsigned long long>(trace.events_recorded()),
                  static_cast<unsigned long long>(trace.events_dropped()),
                  trace_out.c_str());
    } else {
      std::fprintf(stderr, "FATAL: could not write trace to %s\n",
                   trace_out.c_str());
      return 1;
    }
  }

  std::printf("\n  CSV: %s/orchestrate_refresh.csv (uploaded as a CI "
              "artifact next to serve_netload)\n",
              bench::results_dir().c_str());
  return 0;
}
