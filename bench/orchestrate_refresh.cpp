// Continuous-refresh bench: what does the retrain → gate → hot-swap loop
// cost the query path?
//
// The paper's economics say retraining is cheap; this bench measures whether
// *serving* stays cheap while the orchestrator runs the loop for real. For
// each (delta_rate, cadence) cell an ingest thread feeds rating deltas into
// the RatingLog at the offered rate, closed-loop query threads hammer the
// batcher, and the orchestrator retrains + gates + promotes on its cadence.
// Per cycle the CSV records the gate verdict and metrics, the training cost
// on both time axes, the swap pause, and the measured qps in equal windows
// before / during / after the promotion — the "during" window containing the
// retrain + swap is the number that must not crater for the continuous-
// refresh story to hold.
//
// Each (delta_rate) runs twice: once forced to the full-ALS tier and once in
// auto tier mode (incremental SGD with consolidate_every=4, so cycle 4 of
// each auto cell is a visible full-ALS consolidation). delta_to_promote_ms
// is the whole run_cycle wall — snapshot + train + gate + promote — i.e. how
// stale the freshest merged delta is by the time its generation serves. The
// incremental tier's reason to exist is cutting that number ≥5× at equal
// gated quality; the bench prints the measured speedup per delta rate.
//
// Per repo convention the perf-shaped numbers never gate: correctness of the
// loop (zero dropped queries, bit-exact generations, gate behavior) is
// pinned in tests/orchestrate_test.cpp; this bench exists for the CSV
// artifact and its trajectory across commits.
//
// Usage:
//   orchestrate_refresh [--trace-out FILE]
//       with --trace-out, enable request tracing and dump the run's Chrome
//       trace-event JSON (orch.cycle → snapshot/train/gate/promote spans on
//       the orchestrator thread, store.swap instants, query spans around
//       them) to FILE.
//
// CSV: bench_results/orchestrate_refresh.csv

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "obs/trace.hpp"
#include "core/solver.hpp"
#include "gpusim/device_group.hpp"
#include "orchestrate/orchestrator.hpp"
#include "serve/batcher.hpp"
#include "serve/live_store.hpp"
#include "serve/topk.hpp"
#include "sparse/split.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace cumf;

constexpr int kF = 16;
constexpr int kTopK = 10;
constexpr int kQueryThreads = 3;

const char* tier_mode_name(orchestrate::TrainTierMode m) {
  switch (m) {
    case orchestrate::TrainTierMode::kFull: return "full";
    case orchestrate::TrainTierMode::kIncremental: return "incremental";
    case orchestrate::TrainTierMode::kAuto: return "auto";
  }
  return "?";
}

const char* outcome_name(orchestrate::CycleOutcome o) {
  switch (o) {
    case orchestrate::CycleOutcome::kPromoted: return "promoted";
    case orchestrate::CycleOutcome::kRejected: return "rejected";
    case orchestrate::CycleOutcome::kSkipped: return "skipped";
    case orchestrate::CycleOutcome::kTrainFailed: return "train_failed";
    case orchestrate::CycleOutcome::kRolledBack: return "rolled_back";
  }
  return "?";
}

/// Queries answered across all closed-loop threads in a timed window.
double measure_qps(serve::RequestBatcher& batcher, idx_t users,
                   std::chrono::milliseconds window) {
  std::atomic<std::uint64_t> answered{0};
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kQueryThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Rng rng(7000 + static_cast<std::uint64_t>(t));
      while (!stop.load(std::memory_order_acquire)) {
        const auto u = static_cast<idx_t>(
            rng.zipf(static_cast<std::uint64_t>(users), 1.1));
        (void)batcher.submit(u).get();
        answered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  util::Stopwatch wall;
  std::this_thread::sleep_for(window);
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  return static_cast<double>(answered.load()) / wall.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--trace-out FILE]\n", argv[0]);
      return 2;
    }
  }
  if (!trace_out.empty()) {
    // Sized to retain the whole run: every orch.cycle (not just the last)
    // should still be on the timeline when the export runs.
    obs::TraceCollector::Options topt;
    topt.capacity = 1 << 18;
    obs::TraceCollector::global().enable(topt);
  }

  bench::print_header("orchestrate_refresh",
                      "retrain → gate → hot-swap loop under query load");

  // One trained world reused across cells (retrains warm-start from it).
  data::SyntheticOptions gen;
  gen.m = 1500;
  gen.n = 700;
  gen.nz = 40'000;
  gen.f_true = 8;
  gen.noise_std = 0.4;
  gen.seed = 42;
  const auto ratings = data::generate_ratings(gen);
  util::Rng split_rng(9);
  const auto split = sparse::split_ratings(ratings, 0.1, split_rng);
  const auto R = sparse::coo_to_csr(split.train);
  const auto Rt = sparse::csc_as_csr_of_transpose(sparse::csr_to_csc(R));

  const auto topo = gpusim::PcieTopology::flat(1);
  gpusim::DeviceGroup gpu(1, gpusim::titan_x(), topo);
  core::SolverConfig cfg;
  cfg.als.f = kF;
  cfg.als.lambda = 0.05f;
  core::AlsSolver solver(gpu.pointers(), topo, R, Rt, cfg);
  for (int i = 0; i < 4; ++i) solver.run_iteration();
  std::printf("  base model: %d users × %d items, f=%d, 4 ALS iterations\n",
              gen.m, gen.n, kF);

  util::CsvWriter csv(
      bench::results_dir() + "/orchestrate_refresh.csv",
      {"delta_rate_per_s", "cadence_ms", "tier_mode", "cycle", "tier",
       "outcome", "escalated", "gate_rmse", "gate_recall", "train_wall_ms",
       "train_modeled_s", "delta_to_promote_ms", "swap_pause_ms",
       "qps_before", "qps_during", "qps_after", "generation",
       "deltas_merged"});

  std::printf("\n  %9s %5s %5s %12s %12s %9s %7s %10s %8s %9s %9s %9s %4s\n",
              "deltas/s", "mode", "cycle", "tier", "outcome", "gate_rmse",
              "recall", "train(ms)", "d2p(ms)", "qps_bef", "qps_dur",
              "qps_aft", "gen");

  constexpr int kCadenceMs = 250;
  constexpr int kCyclesPerCell = 4;
  for (const double delta_rate : {2000.0, 8000.0}) {
    // Mean run_cycle wall of promoted cycles, split by tier, for the
    // speedup verdict printed after both tier modes have run this rate.
    double full_ms_sum = 0.0, incr_ms_sum = 0.0;
    int full_n = 0, incr_n = 0;
    for (const auto tier_mode : {orchestrate::TrainTierMode::kFull,
                                 orchestrate::TrainTierMode::kAuto}) {
      const int cadence_ms = kCadenceMs;
      const auto work_dir = std::filesystem::temp_directory_path() /
                            ("cumf_orch_bench_" +
                             std::string(tier_mode_name(tier_mode)) + "_" +
                             std::to_string(static_cast<int>(delta_rate)));
      std::filesystem::create_directories(work_dir);

      orchestrate::RatingLog log(split.train);
      serve::LiveFactorStore live(
          serve::FactorStore(solver.x(), solver.theta(), 4));
      serve::TopKOptions eopt;
      eopt.exclude_rated = &R;
      const serve::TopKEngine engine(live, eopt);
      serve::BatcherOptions bopt;
      bopt.k = kTopK;
      bopt.max_batch = 32;
      bopt.max_delay = std::chrono::microseconds(1000);
      serve::RequestBatcher batcher(engine, bopt);

      orchestrate::OrchestratorOptions oopt;
      oopt.trainer.solver = cfg;
      oopt.trainer.iterations = 3;
      oopt.gate.k = kTopK;
      oopt.gate.max_eval_users = 150;
      oopt.gate.rmse_slack = 0.05;
      oopt.gate.recall_slack = 0.2;
      oopt.tier_mode = tier_mode;
      oopt.consolidate_every = 4;
      // Gentler than the default lr, and two epochs instead of three: the
      // bench's uniform-random delta values are pure noise, and the gate
      // must keep passing incremental candidates for the latency comparison
      // to be at equal gated quality.
      oopt.sgd.lr = 0.01f;
      oopt.sgd.epochs = 2;
      oopt.work_dir = work_dir.string();
      orchestrate::Orchestrator orch(log, live, split.test, oopt, &R);

      // Offered-rate delta ingestion for the whole cell.
      std::atomic<bool> stop_ingest{false};
      std::thread ingest([&] {
        util::Rng rng(31);
        const auto period = std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(1.0 / delta_rate));
        auto next = std::chrono::steady_clock::now();
        while (!stop_ingest.load(std::memory_order_acquire)) {
          std::this_thread::sleep_until(next);
          next += period;
          const auto u = static_cast<idx_t>(
              rng.next_below(static_cast<std::uint64_t>(gen.m)));
          const auto v = static_cast<idx_t>(
              rng.zipf(static_cast<std::uint64_t>(gen.n), 1.05));
          (void)log.append(u, v, rng.next_real() * 5.0f);
        }
      });

      const auto window = std::chrono::milliseconds(cadence_ms);
      for (int cycle = 1; cycle <= kCyclesPerCell; ++cycle) {
        const double qps_before = measure_qps(batcher, gen.m, window);

        // The retrain + gate + swap runs while queries keep flowing: the
        // "during" window brackets the whole cycle. cycle_ms is the
        // delta→promoted-generation latency: everything between "the log
        // held fresh deltas" and "the promoted model serves them".
        std::atomic<bool> cycle_done{false};
        orchestrate::CycleRecord rec;
        double cycle_ms = 0.0;
        std::thread retrainer([&] {
          util::Stopwatch cycle_wall;
          rec = orch.run_cycle(/*force=*/true);
          cycle_ms = cycle_wall.seconds() * 1e3;
          cycle_done.store(true, std::memory_order_release);
        });
        std::atomic<std::uint64_t> answered{0};
        std::vector<std::thread> load;
        for (int t = 0; t < kQueryThreads; ++t) {
          load.emplace_back([&, t] {
            util::Rng rng(8000 + static_cast<std::uint64_t>(t));
            while (!cycle_done.load(std::memory_order_acquire)) {
              const auto u = static_cast<idx_t>(
                  rng.zipf(static_cast<std::uint64_t>(gen.m), 1.1));
              (void)batcher.submit(u).get();
              answered.fetch_add(1, std::memory_order_relaxed);
            }
          });
        }
        util::Stopwatch during;
        retrainer.join();
        for (auto& t : load) t.join();
        const double qps_during =
            static_cast<double>(answered.load()) / during.seconds();

        const double qps_after = measure_qps(batcher, gen.m, window);

        const bool promoted =
            rec.outcome == orchestrate::CycleOutcome::kPromoted;
        if (promoted && !rec.escalated) {
          if (rec.tier == orchestrate::TrainTier::kIncrementalSgd) {
            incr_ms_sum += cycle_ms;
            ++incr_n;
          } else if (tier_mode == orchestrate::TrainTierMode::kFull) {
            full_ms_sum += cycle_ms;
            ++full_n;
          }
        }

        std::printf("  %9.0f %5s %5d %12s %12s %9.4f %7.3f %10.1f %8.1f "
                    "%9.0f %9.0f %9.0f %4llu%s\n",
                    delta_rate, tier_mode_name(tier_mode), cycle,
                    orchestrate::tier_name(rec.tier),
                    outcome_name(rec.outcome), rec.gate.rmse, rec.gate.recall,
                    rec.train_wall_ms, cycle_ms, qps_before, qps_during,
                    qps_after, static_cast<unsigned long long>(rec.generation),
                    rec.escalated      ? "  (escalated)"
                    : rec.consolidation ? "  (consolidation)"
                                        : "");
        csv.row(delta_rate, cadence_ms, tier_mode_name(tier_mode), cycle,
                orchestrate::tier_name(rec.tier), outcome_name(rec.outcome),
                rec.escalated ? 1 : 0, rec.gate.rmse, rec.gate.recall,
                rec.train_wall_ms, rec.train_modeled_s, cycle_ms,
                rec.swap_pause_ms, qps_before, qps_during, qps_after,
                rec.generation, rec.deltas_seen);
      }

      stop_ingest.store(true, std::memory_order_release);
      ingest.join();
      const auto oc = orch.counters();
      std::printf("  cell totals: %llu retrains (%llu full / %llu "
                  "incremental), %llu promotions, %llu rejections, %llu "
                  "escalations, %llu consolidations; %llu deltas ingested\n",
                  static_cast<unsigned long long>(oc.retrains),
                  static_cast<unsigned long long>(oc.retrains_full),
                  static_cast<unsigned long long>(oc.retrains_incremental),
                  static_cast<unsigned long long>(oc.promotions),
                  static_cast<unsigned long long>(oc.rejections),
                  static_cast<unsigned long long>(oc.escalations),
                  static_cast<unsigned long long>(oc.consolidations),
                  static_cast<unsigned long long>(oc.deltas_ingested));
      std::error_code ec;
      std::filesystem::remove_all(work_dir, ec);
    }

    if (full_n > 0 && incr_n > 0) {
      const double full_ms = full_ms_sum / full_n;
      const double incr_ms = incr_ms_sum / incr_n;
      std::printf("  %9.0f deltas/s verdict: delta→promote %.1f ms full vs "
                  "%.1f ms incremental — %.1fx faster (target >= 5x)\n",
                  delta_rate, full_ms, incr_ms, full_ms / incr_ms);
    } else {
      std::printf("  %9.0f deltas/s verdict: not enough promoted cycles to "
                  "compare tiers (full %d, incremental %d)\n",
                  delta_rate, full_n, incr_n);
    }
  }

  if (!trace_out.empty()) {
    auto& trace = obs::TraceCollector::global();
    trace.disable();
    if (trace.write_chrome_json(trace_out)) {
      std::printf("  trace: %llu events (%llu dropped by ring wrap) -> %s\n",
                  static_cast<unsigned long long>(trace.events_recorded()),
                  static_cast<unsigned long long>(trace.events_dropped()),
                  trace_out.c_str());
    } else {
      std::fprintf(stderr, "FATAL: could not write trace to %s\n",
                   trace_out.c_str());
      return 1;
    }
  }

  std::printf("\n  CSV: %s/orchestrate_refresh.csv (uploaded as a CI "
              "artifact next to serve_netload)\n",
              bench::results_dir().c_str());
  return 0;
}
