// Figure 5 / §4.2: parallel reduction schemes.
//
// Paper's claims:
//   * slice-parallel (one-phase) reduction is 1.7× as fast as reducing on a
//     single GPU, by using every PCIe channel full-duplex (Hugewiki data);
//   * the topology-aware two-phase scheme adds another 1.5× on a two-socket
//     machine by minimizing inter-socket traffic.
//
// We reduce Hugewiki-batch-sized Hermitian buffers across 4 simulated
// devices, executing the real arithmetic and pricing the transfer schedule
// on the PCIe model, for both the flat and the two-socket topology.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/reduction.hpp"
#include "gpusim/device_group.hpp"

namespace {

using namespace cumf;

double run_scheme(core::ReduceScheme scheme, const gpusim::PcieTopology& topo,
                  idx_t units, int unit_elems) {
  const int P = topo.num_devices();
  gpusim::DeviceGroup gpus(P, gpusim::gk210(), topo);
  std::vector<std::vector<real_t>> bufs(
      static_cast<std::size_t>(P),
      std::vector<real_t>(static_cast<std::size_t>(units) * unit_elems, 1.0f));
  std::vector<real_t*> ptrs;
  for (auto& b : bufs) ptrs.push_back(b.data());
  const auto res = core::reduce_across_devices(gpus.pointers(), topo, ptrs,
                                               units, unit_elems, scheme);
  return res.modeled_seconds;
}

}  // namespace

int main() {
  bench::print_header("Figure 5", "one-phase and two-phase parallel reduction");
  util::CsvWriter csv(bench::results_dir() + "/figure5_reduction.csv",
                      {"topology", "scheme", "modeled_s", "speedup_vs_single"});

  // A Hugewiki-like batch: 4096 rows × f=100 Hermitians ≈ 160 MiB/device.
  const idx_t units = 4096;
  const int unit_elems = 100 * 100;

  for (const bool two_socket : {false, true}) {
    const auto topo = two_socket ? gpusim::PcieTopology::two_socket(4)
                                 : gpusim::PcieTopology::flat(4);
    std::printf("\n--- topology: %s ---\n",
                two_socket ? "two-socket (2+2 GPUs)" : "flat (4 GPUs, one root)");
    const double t_single =
        run_scheme(core::ReduceScheme::SingleDevice, topo, units, unit_elems);
    std::printf("  %-28s %8.4f s  (baseline)\n", "reduce-at-one-GPU", t_single);
    csv.row(two_socket ? "two-socket" : "flat", "single-device", t_single, 1.0);

    const double t_one =
        run_scheme(core::ReduceScheme::OnePhase, topo, units, unit_elems);
    std::printf("  %-28s %8.4f s  (%.2fx vs single; paper: 1.7x)\n",
                "one-phase parallel", t_one, t_single / t_one);
    csv.row(two_socket ? "two-socket" : "flat", "one-phase", t_one,
            t_single / t_one);

    const double t_two =
        run_scheme(core::ReduceScheme::TwoPhase, topo, units, unit_elems);
    std::printf("  %-28s %8.4f s  (%.2fx vs one-phase; paper: 1.5x on "
                "two-socket)\n",
                "two-phase topology-aware", t_two, t_one / t_two);
    csv.row(two_socket ? "two-socket" : "flat", "two-phase", t_two,
            t_single / t_two);
  }
  std::printf(
      "\nShape check: one-phase beats single everywhere; two-phase only "
      "helps when an inter-socket link exists.\n");
  return 0;
}
