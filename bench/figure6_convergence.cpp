// Figure 6: test-RMSE convergence of cuMF (1 GPU) vs NOMAD and libMF (both
// 30 CPU cores) on Netflix and YahooMusic.
//
// Paper's finding: cuMF "performs slightly worse than NOMAD at the beginning
// but slightly better later, and constantly faster than libMF" — ALS
// iterations are expensive but few; SGD epochs are cheap but many.
//
// We run scaled synthetic replicas of both data sets. The convergence curves
// (RMSE per iteration/epoch) come from the real solvers; the time axis is
// modeled — Titan X device clock for cuMF, a 30-core Xeon throughput model
// with each system's published parallel-efficiency behaviour for the SGD
// baselines (see DESIGN.md §2).

#include <cstdio>

#include "baselines/fpsgd.hpp"
#include "baselines/nomad.hpp"
#include "bench_common.hpp"
#include "core/solver.hpp"
#include "costmodel/machines.hpp"
#include "data/datasets.hpp"
#include "gpusim/device_group.hpp"

namespace {

using namespace cumf;

void run_dataset(const data::DatasetSpec& full, double scale, int f,
                 int als_iters, int sgd_epochs, util::CsvWriter& csv) {
  std::printf("\n--- %s (scaled %gx, f=%d) ---\n", full.name.c_str(), scale,
              f);
  const auto ds = data::make_sim_dataset(full, scale, /*seed=*/2016, 0.1, f);
  std::printf("    actual: m=%lld n=%lld nz=%lld  target RMSE %.3f\n",
              static_cast<long long>(ds.spec.m),
              static_cast<long long>(ds.spec.n),
              static_cast<long long>(ds.train_csr.nnz()), ds.target_rmse);

  // cuMF on one simulated Titan X.
  const auto topo = gpusim::PcieTopology::flat(1);
  gpusim::DeviceGroup gpu(1, gpusim::titan_x(), topo);
  core::SolverConfig cfg;
  cfg.als.f = f;
  cfg.als.lambda = static_cast<real_t>(full.lambda);
  auto cumf_hist = core::AlsSolver(gpu.pointers(), topo, ds.train_csr,
                                   ds.train_rt_csr, cfg)
                       .train(als_iters, &ds.train, &ds.test, "cuMF@1GPU");

  // SGD baselines on the 30-core machine model. Learning rate and init are
  // adapted to the rating scale (YahooMusic lives on 0-100, Netflix on 1-5).
  double mean = 0.0, var = 0.0;
  for (const real_t v : ds.train.val) mean += v;
  mean /= static_cast<double>(ds.train.nnz());
  for (const real_t v : ds.train.val) {
    var += (static_cast<double>(v) - mean) * (static_cast<double>(v) - mean);
  }
  var /= static_cast<double>(ds.train.nnz());

  baselines::SgdOptions sgd;
  sgd.f = f;
  sgd.lambda = static_cast<real_t>(full.lambda);
  sgd.epochs = sgd_epochs;
  sgd.threads = 4;  // host threads; modeled time uses 30 cores below
  sgd.adapt_to_rating_scale(mean, var);

  auto nomad_run = baselines::NomadSgd(ds.train_csr, sgd)
                       .train(&ds.train, &ds.test, "NOMAD@30cores");
  auto libmf_run = baselines::FpsgdSgd(ds.train_csr, sgd)
                       .train(&ds.train, &ds.test, "libMF@30cores");

  const auto cpu = costmodel::xeon_30core();
  const double nz = static_cast<double>(ds.train_csr.nnz());
  const double nomad_epoch = costmodel::sgd_epoch_seconds(
      cpu, 30, costmodel::nomad_efficiency(30), nz, f);
  const double libmf_epoch = costmodel::sgd_epoch_seconds(
      cpu, 30, costmodel::libmf_efficiency(30), nz, f);
  for (auto& pt : nomad_run.history.points) {
    pt.modeled_seconds = pt.iteration * nomad_epoch;
  }
  for (auto& pt : libmf_run.history.points) {
    pt.modeled_seconds = pt.iteration * libmf_epoch;
  }

  for (const auto* hist :
       {&cumf_hist, &nomad_run.history, &libmf_run.history}) {
    bench::print_history(*hist);
    for (const auto& pt : hist->points) {
      csv.row(full.name, hist->label, pt.iteration, pt.wall_seconds,
              pt.modeled_seconds, pt.train_rmse, pt.test_rmse);
    }
  }

  const double target = ds.target_rmse;
  std::printf(
      "  time to RMSE %.3f (modeled s): cuMF %.4g | NOMAD %.4g | libMF %.4g\n",
      target, cumf_hist.modeled_time_to_rmse(target),
      nomad_run.history.modeled_time_to_rmse(target),
      libmf_run.history.modeled_time_to_rmse(target));
  std::printf(
      "  paper: cuMF slower at start, catches up and outperforms later.\n");
}

}  // namespace

int main() {
  bench::print_header("Figure 6", "cuMF vs NOMAD vs libMF convergence");
  util::CsvWriter csv(bench::results_dir() + "/figure6_convergence.csv",
                      {"dataset", "system", "iteration", "wall_s", "modeled_s",
                       "train_rmse", "test_rmse"});
  run_dataset(data::netflix(), 0.02, 24, 6, 30, csv);
  run_dataset(data::yahoomusic(), 0.004, 24, 6, 40, csv);
  return 0;
}
