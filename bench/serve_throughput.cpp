// Serving throughput: queries/sec vs micro-batch size, shard count, and
// scoring backend — plus the Table 3 cost treatment applied to serving.
//
// The serving analogue of the paper's batching story — MO-ALS batches row
// solves so Θᵀ is swept once per batch instead of once per row; the top-k
// engine batches user queries so each Θ shard row is read once per user
// block. This bench quantifies that lever on a synthetic model: batch size 1
// (naive online serving) vs micro-batches, across shard counts, plus the
// RequestBatcher + LRU cache on Zipf-skewed traffic.
//
// The same stream is then replayed through GpuSimScoringBackend on two
// device specs (Titan X, GK210): identical top-k lists, but every sweep is
// accounted as a simulated kernel launch, yielding modeled ms per batch —
// and from that, a fleet plan per device: how many GPUs, at what $/hr, to
// serve the target load, and the qps-per-dollar each device spec buys.
//
// A refresh-under-load mode then exercises the live-serving path: query
// threads keep hammering a LiveFactorStore-backed engine while freshly
// "retrained" checkpoints are hot-swapped in, reporting qps before / during /
// after each swap plus the swap-pause (pointer-swap critical section) — the
// paper's retrain-often story measured at the serving edge.
//
// The batching-vs-batch-1 comparison is a *relative perf race* that can
// flake on loaded shared runners; it is reported (with a WARNING on
// regression) but never fails the run — exactness is gated in
// tests/serve_test.cpp, not here.
//
// CSV: bench_results/serve_throughput.csv

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <future>
#include <span>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/checkpoint.hpp"
#include "obs/slo.hpp"
#include "costmodel/machines.hpp"
#include "costmodel/serving_fleet.hpp"
#include "gpusim/device.hpp"
#include "gpusim/device_group.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/topology.hpp"
#include "serve/batcher.hpp"
#include "serve/multi_device_backend.hpp"
#include "serve/factor_store.hpp"
#include "serve/live_store.hpp"
#include "serve/scoring_backend.hpp"
#include "serve/topk.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace cumf;

constexpr idx_t kUsers = 2000;
constexpr idx_t kItems = 4000;
constexpr int kF = 32;
constexpr int kTopK = 10;
constexpr int kQueries = 2000;
constexpr int kFleetBatch = 32;

linalg::FactorMatrix random_factors(idx_t rows, int f, std::uint64_t seed) {
  linalg::FactorMatrix m(rows, f);
  util::Rng rng(seed);
  m.randomize_uniform(rng, -1.0f, 1.0f);
  return m;
}

struct RunResult {
  double seconds = 0.0;
  double qps = 0.0;
  std::uint64_t scored = 0;
  std::uint64_t pruned = 0;
  serve::LatencySummary modeled;
  serve::LatencySummary interconnect;
};

RunResult run_stream(const serve::TopKEngine& engine,
                     const std::vector<idx_t>& stream, int batch) {
  RunResult r;
  const std::uint64_t scored0 = engine.items_scored();
  const std::uint64_t pruned0 = engine.items_pruned();
  util::Stopwatch watch;
  for (int q = 0; q < kQueries; q += batch) {
    const int take = std::min(batch, kQueries - q);
    (void)engine.recommend(
        std::span<const idx_t>(stream.data() + q,
                               static_cast<std::size_t>(take)),
        kTopK);
  }
  r.seconds = watch.seconds();
  r.qps = static_cast<double>(kQueries) / r.seconds;
  r.scored = engine.items_scored() - scored0;
  r.pruned = engine.items_pruned() - pruned0;
  r.modeled = engine.batch_modeled_summary();
  r.interconnect = engine.batch_interconnect_summary();
  return r;
}

}  // namespace

int main() {
  bench::print_header("serve_throughput",
                      "online top-k serving: qps, modeled time, fleet cost");

  const auto x = random_factors(kUsers, kF, 101);
  const auto theta = random_factors(kItems, kF, 102);

  // Zipf-skewed query stream: hot users repeat, like production traffic.
  std::vector<idx_t> stream(kQueries);
  util::Rng traffic(103);
  for (auto& u : stream) {
    u = static_cast<idx_t>(traffic.zipf(static_cast<std::uint64_t>(kUsers), 1.1));
  }

  util::CsvWriter csv(
      bench::results_dir() + "/serve_throughput.csv",
      {"mode", "backend", "device", "shards", "batch", "queries", "seconds",
       "qps", "modeled_ms", "kernel_ms", "interconnect_ms", "devices", "nodes",
       "dollars_per_hr", "qps_per_dollar", "items_scored", "items_pruned",
       "cache_hits", "generation", "swap_pause_ms", "qps_before", "qps_during",
       "qps_after"});

  std::printf("  model: %d users x %d items, f=%d, top-%d\n\n", kUsers, kItems,
              kF, kTopK);
  std::printf("  %-10s %-8s %-8s %7s %6s %9s %11s %11s %13s %13s\n", "mode",
              "backend", "device", "shards", "batch", "wall(s)", "qps",
              "modeled(ms)", "scored", "pruned");

  double qps_batch1 = 0.0;
  double qps_batched_best = 0.0;

  // ---- host backend: the batching lever across shard counts --------------
  for (const int shards : {1, 2, 4}) {
    const serve::FactorStore store(x, theta, shards);
    for (const int batch : {1, 8, 32, 128}) {
      serve::TopKOptions opt;
      opt.user_block = batch;
      const serve::TopKEngine engine(store, opt);
      const RunResult r = run_stream(engine, stream, batch);

      if (batch == 1) {
        qps_batch1 = std::max(qps_batch1, r.qps);
      } else {
        qps_batched_best = std::max(qps_batched_best, r.qps);
      }

      std::printf("  %-10s %-8s %-8s %7d %6d %9.3f %11.0f %11s %13llu %13llu\n",
                  "direct", "cpu", "host", shards, batch, r.seconds, r.qps,
                  "-", static_cast<unsigned long long>(r.scored),
                  static_cast<unsigned long long>(r.pruned));
      csv.row("direct", "cpu", "host", shards, batch, kQueries, r.seconds,
              r.qps, 0.0, 0.0, 0.0, 0, 0, 0.0, 0.0, r.scored, r.pruned, 0, 0,
              0.0, 0.0, 0.0, 0.0);
    }
  }

  // ---- simulated-GPU backend: same answers, modeled-time axis ------------
  // Per device spec: replay the stream, record modeled ms per micro-batch,
  // and derive the fleet profile the cost model prices below.
  struct DeviceRun {
    costmodel::PricedDevice device;
    costmodel::ServingProfile profile;
  };
  std::vector<DeviceRun> device_runs;
  for (const auto& priced : costmodel::priced_serving_devices()) {
    device_runs.push_back({priced, {}});
  }

  const serve::FactorStore store(x, theta, 2);
  const serve::TopKEngine cpu_engine(store);
  for (auto& run : device_runs) {
    gpusim::Device dev(0, run.device.spec);
    serve::GpuSimScoringBackend backend(dev, store);
    serve::TopKOptions opt;
    opt.user_block = kFleetBatch;
    opt.backend = &backend;

    // Backend parity is asserted in tests; this is a cheap belt-and-braces
    // check that the bench itself is comparing identical answers. A separate
    // engine keeps these single-user probes out of the modeled-latency
    // summary the fleet profile is built from.
    {
      const serve::TopKEngine parity_engine(store, opt);
      for (int q = 0; q < 8; ++q) {
        if (parity_engine.recommend_one(stream[q], kTopK) !=
            cpu_engine.recommend_one(stream[q], kTopK)) {
          std::fprintf(stderr, "FATAL: gpusim backend diverged from cpu\n");
          return 1;
        }
      }
    }
    dev.reset_counters();
    dev.reset_clock();

    const serve::TopKEngine engine(store, opt);
    const RunResult r = run_stream(engine, stream, kFleetBatch);
    run.profile.batch_seconds = r.modeled.p50_ms * 1e-3;
    run.profile.batch_users = kFleetBatch;

    std::printf("  %-10s %-8s %-8s %7d %6d %9.3f %11.0f %11.3f %13llu %13llu\n",
                "direct", "gpusim", run.device.spec.name.c_str(), 2,
                kFleetBatch, r.seconds, r.qps, r.modeled.p50_ms,
                static_cast<unsigned long long>(r.scored),
                static_cast<unsigned long long>(r.pruned));
    csv.row("direct", "gpusim", run.device.spec.name, 2, kFleetBatch, kQueries,
            r.seconds, r.qps, r.modeled.p50_ms, r.modeled.p50_ms, 0.0, 1, 0,
            0.0, 0.0, r.scored, r.pruned, 0, 0, 0.0, 0.0, 0.0, 0.0);
  }

  // Fleet requirement shared by the multi-device sweep and the fleet-sizing
  // section: well above one device's modeled capacity, so plans actually
  // size fleets rather than answer "one".
  costmodel::FleetRequirement req;
  req.target_qps = 5'000'000.0;
  req.p99_ms = 5.0;
  req.max_fill_ms = 2.0;

  // ---- multi-device sweep: the model-parallel split across a group -------
  // Θ's shards spread across 1/2/4 devices per spec; answers stay
  // bit-identical to the host engine while the modeled axis splits into
  // per-device kernel time (max over devices — they run concurrently) plus
  // the interconnect gather of per-device candidate partials. Each
  // configuration is priced as a node by the multi-device fleet planner, so
  // the qps-per-dollar column answers "2×cheap vs 1×big" directly.
  std::printf("\n  multi-device sweep (batch %d, %d shards):\n", kFleetBatch,
              4);
  std::printf("  %-8s %7s %9s %11s %11s %11s %11s %13s\n", "device", "devs",
              "wall(s)", "qps", "modeled(ms)", "kernel(ms)", "gather(ms)",
              "qps/$-hr");
  const serve::FactorStore mdstore(x, theta, 4);
  for (auto& run : device_runs) {
    for (const int p : {1, 2, 4}) {
      const auto topo = gpusim::PcieTopology::flat(p);
      gpusim::DeviceGroup group(p, run.device.spec, topo);
      serve::MultiDeviceScoringBackend backend(group, topo, mdstore);
      serve::TopKOptions opt;
      opt.user_block = kFleetBatch;
      opt.backend = &backend;

      {
        const serve::TopKEngine parity_engine(mdstore, opt);
        for (int q = 0; q < 8; ++q) {
          if (parity_engine.recommend_one(stream[q], kTopK) !=
              cpu_engine.recommend_one(stream[q], kTopK)) {
            std::fprintf(stderr,
                         "FATAL: multigpu backend diverged from cpu (p=%d)\n",
                         p);
            return 1;
          }
        }
      }

      const serve::TopKEngine engine(mdstore, opt);
      const RunResult r = run_stream(engine, stream, kFleetBatch);
      const double gather_ms = r.interconnect.p50_ms;
      const double kernel_ms = r.modeled.p50_ms - gather_ms;

      costmodel::MultiDeviceNode node;
      node.spec = run.device.spec;
      node.price_per_device_hr = run.device.pricing.price_per_device_hr;
      node.devices = p;
      node.interconnect_gbps = topo.pcie_gbps();
      const auto plan = costmodel::plan_multi_device_fleet(
          req, node, run.profile, kTopK, backend.placement_imbalance(mdstore));

      std::printf("  %-8s %7d %9.3f %11.0f %11.3f %11.3f %11.3f %13.0f\n",
                  run.device.spec.name.c_str(), p, r.seconds, r.qps,
                  r.modeled.p50_ms, kernel_ms, gather_ms,
                  plan.qps_per_dollar_hr);
      csv.row("multidev", "multigpu", run.device.spec.name, 4, kFleetBatch,
              kQueries, r.seconds, r.qps, r.modeled.p50_ms, kernel_ms,
              gather_ms, p, plan.nodes, plan.dollars_per_hr,
              plan.qps_per_dollar_hr, r.scored, r.pruned, 0, 0, 0.0, 0.0, 0.0,
              0.0);
    }
  }

  // ---- RequestBatcher + hot-user LRU cache on the same Zipf stream -------
  {
    const serve::TopKEngine engine(store);
    serve::BatcherOptions opt;
    opt.k = kTopK;
    opt.max_batch = 32;
    opt.cache_capacity = 256;
    // SLO watch over the batcher run: burn rates computed against a 25 ms
    // latency threshold, reported after the wave loop.
    obs::SloOptions slo_opt;
    slo_opt.latency_threshold_ms = 25.0;
    obs::SloMonitor slo(slo_opt);
    serve::RequestBatcher batcher(engine, opt);
    batcher.set_slo(&slo);

    // Closed-loop waves: each wave's queries resolve before the next wave
    // arrives, so hot users from earlier waves hit the LRU cache.
    constexpr int kWave = 100;
    util::Stopwatch watch;
    std::vector<std::future<serve::BatchedAnswer>> futures;
    futures.reserve(kWave);
    for (int q = 0; q < kQueries; q += kWave) {
      futures.clear();
      const int take = std::min(kWave, kQueries - q);
      for (int i = 0; i < take; ++i) futures.push_back(batcher.submit(stream[q + i]));
      for (auto& fut : futures) (void)fut.get();
    }
    const double secs = watch.seconds();
    const double qps = static_cast<double>(kQueries) / secs;

    const auto stats = batcher.stats();
    std::printf(
        "  %-10s %-8s %-8s %7d %6d %9.3f %11.0f %11s %13llu %13llu  (%.0f%% "
        "cache hits, wall p99 %.2f ms, e2e p99 %.2f ms, queue p99 %.2f ms)\n",
        "batcher", "cpu", "host", 2, 32, secs, qps, "-",
        static_cast<unsigned long long>(stats.items_scored),
        static_cast<unsigned long long>(stats.items_pruned),
        100.0 * static_cast<double>(stats.cache_hits) /
            static_cast<double>(stats.queries),
        stats.batch_wall.p99_ms, stats.e2e.p99_ms, stats.queue_delay.p99_ms);
    csv.row("batcher", "cpu", "host", 2, 32, kQueries, secs, qps, 0.0, 0.0,
            0.0, 0, 0, 0.0, 0.0, stats.items_scored, stats.items_pruned,
            stats.cache_hits, 0, 0.0, 0.0, 0.0, 0.0);
    const auto health = slo.snapshot();
    std::printf("  SLO: latency %s (fast burn %.2f, %llu violations over "
                "%llu queries, threshold %.0f ms), availability %s\n",
                obs::alert_state_name(health.latency.state),
                health.latency.fast_burn,
                static_cast<unsigned long long>(health.latency.lifetime_bad),
                static_cast<unsigned long long>(health.latency.lifetime_total),
                health.latency_threshold_ms,
                obs::alert_state_name(health.availability.state));
  }

  // ---- refresh under load: hot swaps while query threads stay hot --------
  // Query threads run closed-loop micro-batches against a LiveFactorStore
  // engine; the main thread "retrains" (fresh random factors), checkpoints,
  // and hot-swaps. qps is sampled before each swap, across the refresh call
  // (load + shard + pointer swap), and after — the drop to watch is the
  // during column; swap_pause is the pointer-swap critical section alone.
  {
    constexpr int kLiveThreads = 4;
    constexpr int kSwaps = 3;
    serve::LiveFactorStore live(serve::FactorStore(x, theta, 2));
    serve::TopKOptions opt;
    opt.user_block = kFleetBatch;
    const serve::TopKEngine engine(live, opt);

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> answered{0};
    std::vector<std::thread> workers;
    workers.reserve(kLiveThreads);
    for (int t = 0; t < kLiveThreads; ++t) {
      workers.emplace_back([&, t] {
        // Each thread walks the Zipf stream from its own offset.
        std::size_t pos = static_cast<std::size_t>(t) * 499;
        while (!stop.load(std::memory_order_relaxed)) {
          pos = (pos + kFleetBatch) %
                (stream.size() - static_cast<std::size_t>(kFleetBatch));
          (void)engine.recommend(
              std::span<const idx_t>(stream.data() + pos, kFleetBatch), kTopK);
          answered.fetch_add(kFleetBatch, std::memory_order_relaxed);
        }
      });
    }

    const auto window_qps = [&answered](double seconds) {
      const std::uint64_t start = answered.load();
      util::Stopwatch w;
      std::this_thread::sleep_for(
          std::chrono::microseconds(static_cast<long>(seconds * 1e6)));
      return static_cast<double>(answered.load() - start) / w.seconds();
    };

    const auto ckpt_dir =
        std::filesystem::temp_directory_path() / "cumf_serve_bench_ckpt";
    std::filesystem::create_directories(ckpt_dir);

    std::printf("\n  refresh under load (%d query threads, batch %d):\n",
                kLiveThreads, kFleetBatch);
    std::printf("  %-4s %11s %11s %13s %13s %13s\n", "gen", "load(ms)",
                "pause(ms)", "qps_before", "qps_during", "qps_after");
    for (int s = 1; s <= kSwaps; ++s) {
      const auto x_new = random_factors(kUsers, kF, 500 + static_cast<std::uint64_t>(s));
      const auto t_new = random_factors(kItems, kF, 600 + static_cast<std::uint64_t>(s));
      {
        core::CheckpointManager manager(ckpt_dir.string());
        manager.save_x(x_new, s);
        manager.save_theta(t_new, s);
      }

      const double qps_before = window_qps(0.15);
      // The during window matches the before/after windows and contains the
      // whole refresh (load + shard + swap), so the three qps are comparable.
      const std::uint64_t during0 = answered.load();
      util::Stopwatch during;
      const auto outcome = live.refresh_from_checkpoint(ckpt_dir.string());
      const double refresh_s = during.seconds();
      if (refresh_s < 0.15) {
        std::this_thread::sleep_for(std::chrono::microseconds(
            static_cast<long>((0.15 - refresh_s) * 1e6)));
      }
      const double qps_during =
          static_cast<double>(answered.load() - during0) / during.seconds();
      const double qps_after = window_qps(0.15);
      if (!outcome.swapped) {
        std::fprintf(stderr, "FATAL: refresh failed: %s\n",
                     outcome.error.c_str());
        stop.store(true);
        for (auto& t : workers) t.join();
        std::filesystem::remove_all(ckpt_dir);
        return 1;
      }

      std::printf("  %-4llu %11.2f %11.4f %13.0f %13.0f %13.0f\n",
                  static_cast<unsigned long long>(outcome.generation),
                  outcome.load_ms, outcome.swap_pause_ms, qps_before,
                  qps_during, qps_after);
      csv.row("refresh", "cpu", "host", 2, kFleetBatch, kQueries, 0.0, 0.0,
              0.0, 0.0, 0.0, 0, 0, 0.0, 0.0, 0, 0, 0, outcome.generation,
              outcome.swap_pause_ms, qps_before, qps_during, qps_after);
    }
    stop.store(true);
    for (auto& t : workers) t.join();
    std::filesystem::remove_all(ckpt_dir);

    const auto pause = live.swap_pause_summary();
    std::printf("  %llu swaps, swap-pause p99 %.4f ms, max %.4f ms — queries "
                "never block on a swap (generation pinning)\n",
                static_cast<unsigned long long>(live.refreshes()),
                pause.p99_ms, pause.max_ms);
  }

  // ---- fleet sizing: how many GPUs, at what $/hr, for the target load ----
  std::printf("\n  fleet plan for %.0f qps at p99 <= %.1f ms:\n",
              req.target_qps, req.p99_ms);
  std::printf("  %-8s %11s %8s %11s %10s %13s\n", "device", "qps/device",
              "devices", "p99(ms)", "$/hr", "qps/$-hr");
  for (const auto& run : device_runs) {
    const auto plan = costmodel::plan_serving_fleet(
        req, run.device.spec, run.device.pricing.price_per_device_hr, run.profile);
    std::printf("  %-8s %11.0f %8d %11.2f %10.2f %13.0f%s\n",
                plan.device.c_str(), plan.device_qps, plan.devices,
                plan.modeled_p99_ms, plan.dollars_per_hr,
                plan.qps_per_dollar_hr, plan.feasible ? "" : "  (INFEASIBLE)");
    csv.row("fleet", "gpusim", plan.device, 2, kFleetBatch, kQueries, 0.0,
            plan.device_qps, plan.modeled_p99_ms, 0.0, 0.0, plan.devices,
            plan.nodes, plan.dollars_per_hr, plan.qps_per_dollar_hr, 0, 0, 0,
            0, 0.0, 0.0, 0.0, 0.0);
  }

  // ---- 2×cheap vs 1×big: the CuMF_SGD cost question, answered ------------
  // Price the same target on single big-device nodes vs dual cheap-device
  // nodes (gather cost included) and let dollars decide.
  {
    const auto& big = device_runs[0];    // titan_x
    const auto& cheap = device_runs[1];  // gk210
    const auto big_plan = costmodel::plan_serving_fleet(
        req, big.device.spec, big.device.pricing.price_per_device_hr,
        big.profile);
    costmodel::MultiDeviceNode node;
    node.spec = cheap.device.spec;
    node.price_per_device_hr = cheap.device.pricing.price_per_device_hr;
    node.devices = 2;
    const auto cheap_plan =
        costmodel::plan_multi_device_fleet(req, node, cheap.profile, kTopK);
    const bool cheap_wins =
        cheap_plan.feasible &&
        (!big_plan.feasible ||
         cheap_plan.dollars_per_hr < big_plan.dollars_per_hr);
    std::printf("\n  2xcheap vs 1xbig for %.0f qps: %s at $%.2f/hr vs %s at "
                "$%.2f/hr -> %s\n",
                req.target_qps, cheap_plan.device.c_str(),
                cheap_plan.dollars_per_hr, big_plan.device.c_str(),
                big_plan.dollars_per_hr,
                cheap_wins ? cheap_plan.device.c_str()
                           : big_plan.device.c_str());
    csv.row("fleet", "gpusim", cheap_plan.device, 2, kFleetBatch, kQueries,
            0.0, cheap_plan.device_qps, cheap_plan.modeled_p99_ms, 0.0,
            cheap_plan.interconnect_ms, cheap_plan.devices, cheap_plan.nodes,
            cheap_plan.dollars_per_hr, cheap_plan.qps_per_dollar_hr, 0, 0, 0,
            0, 0.0, 0.0, 0.0, 0.0);
  }

  // ---- informational perf race (never gates: shared runners flake) -------
  const bool batching_wins = qps_batched_best > qps_batch1;
  std::printf("\n  micro-batched best %.0f qps vs batch-1 best %.0f qps: %s\n",
              qps_batched_best, qps_batch1,
              batching_wins ? "batching wins" : "regression");
  if (!batching_wins) {
    std::printf("  WARNING: batching did not beat batch-1 on this run; this "
                "is a relative perf race on a shared machine, not a "
                "correctness failure (exactness is gated in serve_test).\n");
  }
  return 0;
}
