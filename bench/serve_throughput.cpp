// Serving throughput: queries/sec vs micro-batch size, shard count, and
// scoring backend — plus the Table 3 cost treatment applied to serving.
//
// The serving analogue of the paper's batching story — MO-ALS batches row
// solves so Θᵀ is swept once per batch instead of once per row; the top-k
// engine batches user queries so each Θ shard row is read once per user
// block. This bench quantifies that lever on a synthetic model: batch size 1
// (naive online serving) vs micro-batches, across shard counts, plus the
// RequestBatcher + LRU cache on Zipf-skewed traffic.
//
// The same stream is then replayed through GpuSimScoringBackend on two
// device specs (Titan X, GK210): identical top-k lists, but every sweep is
// accounted as a simulated kernel launch, yielding modeled ms per batch —
// and from that, a fleet plan per device: how many GPUs, at what $/hr, to
// serve the target load, and the qps-per-dollar each device spec buys.
//
// The batching-vs-batch-1 comparison is a *relative perf race* that can
// flake on loaded shared runners; it is reported (with a WARNING on
// regression) but never fails the run — exactness is gated in
// tests/serve_test.cpp, not here.
//
// CSV: bench_results/serve_throughput.csv

#include <algorithm>
#include <cstdio>
#include <future>
#include <span>
#include <vector>

#include "bench_common.hpp"
#include "costmodel/machines.hpp"
#include "costmodel/serving_fleet.hpp"
#include "gpusim/device.hpp"
#include "gpusim/device_spec.hpp"
#include "serve/batcher.hpp"
#include "serve/factor_store.hpp"
#include "serve/scoring_backend.hpp"
#include "serve/topk.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace cumf;

constexpr idx_t kUsers = 2000;
constexpr idx_t kItems = 4000;
constexpr int kF = 32;
constexpr int kTopK = 10;
constexpr int kQueries = 2000;
constexpr int kFleetBatch = 32;

linalg::FactorMatrix random_factors(idx_t rows, int f, std::uint64_t seed) {
  linalg::FactorMatrix m(rows, f);
  util::Rng rng(seed);
  m.randomize_uniform(rng, -1.0f, 1.0f);
  return m;
}

struct RunResult {
  double seconds = 0.0;
  double qps = 0.0;
  std::uint64_t scored = 0;
  std::uint64_t pruned = 0;
  serve::LatencySummary modeled;
};

RunResult run_stream(const serve::TopKEngine& engine,
                     const std::vector<idx_t>& stream, int batch) {
  RunResult r;
  const std::uint64_t scored0 = engine.items_scored();
  const std::uint64_t pruned0 = engine.items_pruned();
  util::Stopwatch watch;
  for (int q = 0; q < kQueries; q += batch) {
    const int take = std::min(batch, kQueries - q);
    (void)engine.recommend(
        std::span<const idx_t>(stream.data() + q,
                               static_cast<std::size_t>(take)),
        kTopK);
  }
  r.seconds = watch.seconds();
  r.qps = static_cast<double>(kQueries) / r.seconds;
  r.scored = engine.items_scored() - scored0;
  r.pruned = engine.items_pruned() - pruned0;
  r.modeled = engine.batch_modeled_summary();
  return r;
}

}  // namespace

int main() {
  bench::print_header("serve_throughput",
                      "online top-k serving: qps, modeled time, fleet cost");

  const auto x = random_factors(kUsers, kF, 101);
  const auto theta = random_factors(kItems, kF, 102);

  // Zipf-skewed query stream: hot users repeat, like production traffic.
  std::vector<idx_t> stream(kQueries);
  util::Rng traffic(103);
  for (auto& u : stream) {
    u = static_cast<idx_t>(traffic.zipf(static_cast<std::uint64_t>(kUsers), 1.1));
  }

  util::CsvWriter csv(
      bench::results_dir() + "/serve_throughput.csv",
      {"mode", "backend", "device", "shards", "batch", "queries", "seconds",
       "qps", "modeled_ms", "devices", "dollars_per_hr", "qps_per_dollar",
       "items_scored", "items_pruned", "cache_hits"});

  std::printf("  model: %d users x %d items, f=%d, top-%d\n\n", kUsers, kItems,
              kF, kTopK);
  std::printf("  %-10s %-8s %-8s %7s %6s %9s %11s %11s %13s %13s\n", "mode",
              "backend", "device", "shards", "batch", "wall(s)", "qps",
              "modeled(ms)", "scored", "pruned");

  double qps_batch1 = 0.0;
  double qps_batched_best = 0.0;

  // ---- host backend: the batching lever across shard counts --------------
  for (const int shards : {1, 2, 4}) {
    const serve::FactorStore store(x, theta, shards);
    for (const int batch : {1, 8, 32, 128}) {
      serve::TopKOptions opt;
      opt.user_block = batch;
      const serve::TopKEngine engine(store, opt);
      const RunResult r = run_stream(engine, stream, batch);

      if (batch == 1) {
        qps_batch1 = std::max(qps_batch1, r.qps);
      } else {
        qps_batched_best = std::max(qps_batched_best, r.qps);
      }

      std::printf("  %-10s %-8s %-8s %7d %6d %9.3f %11.0f %11s %13llu %13llu\n",
                  "direct", "cpu", "host", shards, batch, r.seconds, r.qps,
                  "-", static_cast<unsigned long long>(r.scored),
                  static_cast<unsigned long long>(r.pruned));
      csv.row("direct", "cpu", "host", shards, batch, kQueries, r.seconds,
              r.qps, 0.0, 0, 0.0, 0.0, r.scored, r.pruned, 0);
    }
  }

  // ---- simulated-GPU backend: same answers, modeled-time axis ------------
  // Per device spec: replay the stream, record modeled ms per micro-batch,
  // and derive the fleet profile the cost model prices below.
  struct DeviceRun {
    costmodel::PricedDevice device;
    costmodel::ServingProfile profile;
  };
  std::vector<DeviceRun> device_runs;
  for (const auto& priced : costmodel::priced_serving_devices()) {
    device_runs.push_back({priced, {}});
  }

  const serve::FactorStore store(x, theta, 2);
  const serve::TopKEngine cpu_engine(store);
  for (auto& run : device_runs) {
    gpusim::Device dev(0, run.device.spec);
    serve::GpuSimScoringBackend backend(dev, store);
    serve::TopKOptions opt;
    opt.user_block = kFleetBatch;
    opt.backend = &backend;

    // Backend parity is asserted in tests; this is a cheap belt-and-braces
    // check that the bench itself is comparing identical answers. A separate
    // engine keeps these single-user probes out of the modeled-latency
    // summary the fleet profile is built from.
    {
      const serve::TopKEngine parity_engine(store, opt);
      for (int q = 0; q < 8; ++q) {
        if (parity_engine.recommend_one(stream[q], kTopK) !=
            cpu_engine.recommend_one(stream[q], kTopK)) {
          std::fprintf(stderr, "FATAL: gpusim backend diverged from cpu\n");
          return 1;
        }
      }
    }
    dev.reset_counters();
    dev.reset_clock();

    const serve::TopKEngine engine(store, opt);
    const RunResult r = run_stream(engine, stream, kFleetBatch);
    run.profile.batch_seconds = r.modeled.p50_ms * 1e-3;
    run.profile.batch_users = kFleetBatch;

    std::printf("  %-10s %-8s %-8s %7d %6d %9.3f %11.0f %11.3f %13llu %13llu\n",
                "direct", "gpusim", run.device.spec.name.c_str(), 2,
                kFleetBatch, r.seconds, r.qps, r.modeled.p50_ms,
                static_cast<unsigned long long>(r.scored),
                static_cast<unsigned long long>(r.pruned));
    csv.row("direct", "gpusim", run.device.spec.name, 2, kFleetBatch, kQueries,
            r.seconds, r.qps, r.modeled.p50_ms, 0, 0.0, 0.0, r.scored,
            r.pruned, 0);
  }

  // ---- RequestBatcher + hot-user LRU cache on the same Zipf stream -------
  {
    const serve::TopKEngine engine(store);
    serve::BatcherOptions opt;
    opt.k = kTopK;
    opt.max_batch = 32;
    opt.cache_capacity = 256;
    serve::RequestBatcher batcher(engine, opt);

    // Closed-loop waves: each wave's queries resolve before the next wave
    // arrives, so hot users from earlier waves hit the LRU cache.
    constexpr int kWave = 100;
    util::Stopwatch watch;
    std::vector<std::future<std::vector<serve::Recommendation>>> futures;
    futures.reserve(kWave);
    for (int q = 0; q < kQueries; q += kWave) {
      futures.clear();
      const int take = std::min(kWave, kQueries - q);
      for (int i = 0; i < take; ++i) futures.push_back(batcher.submit(stream[q + i]));
      for (auto& fut : futures) (void)fut.get();
    }
    const double secs = watch.seconds();
    const double qps = static_cast<double>(kQueries) / secs;

    const auto stats = batcher.stats();
    std::printf(
        "  %-10s %-8s %-8s %7d %6d %9.3f %11.0f %11s %13llu %13llu  (%.0f%% "
        "cache hits, wall p99 %.2f ms)\n",
        "batcher", "cpu", "host", 2, 32, secs, qps, "-",
        static_cast<unsigned long long>(stats.items_scored),
        static_cast<unsigned long long>(stats.items_pruned),
        100.0 * static_cast<double>(stats.cache_hits) /
            static_cast<double>(stats.queries),
        stats.batch_wall.p99_ms);
    csv.row("batcher", "cpu", "host", 2, 32, kQueries, secs, qps, 0.0, 0, 0.0,
            0.0, stats.items_scored, stats.items_pruned, stats.cache_hits);
  }

  // ---- fleet sizing: how many GPUs, at what $/hr, for the target load ----
  // Target well above one device's modeled capacity, so the plan actually
  // has to size a fleet rather than answer "one".
  costmodel::FleetRequirement req;
  req.target_qps = 5'000'000.0;
  req.p99_ms = 5.0;
  req.max_fill_ms = 2.0;

  std::printf("\n  fleet plan for %.0f qps at p99 <= %.1f ms:\n",
              req.target_qps, req.p99_ms);
  std::printf("  %-8s %11s %8s %11s %10s %13s\n", "device", "qps/device",
              "devices", "p99(ms)", "$/hr", "qps/$-hr");
  for (const auto& run : device_runs) {
    const auto plan = costmodel::plan_serving_fleet(
        req, run.device.spec, run.device.pricing.price_per_device_hr, run.profile);
    std::printf("  %-8s %11.0f %8d %11.2f %10.2f %13.0f%s\n",
                plan.device.c_str(), plan.device_qps, plan.devices,
                plan.modeled_p99_ms, plan.dollars_per_hr,
                plan.qps_per_dollar_hr, plan.feasible ? "" : "  (INFEASIBLE)");
    csv.row("fleet", "gpusim", plan.device, 2, kFleetBatch, kQueries, 0.0,
            plan.device_qps, plan.modeled_p99_ms, plan.devices,
            plan.dollars_per_hr, plan.qps_per_dollar_hr, 0, 0, 0);
  }

  // ---- informational perf race (never gates: shared runners flake) -------
  const bool batching_wins = qps_batched_best > qps_batch1;
  std::printf("\n  micro-batched best %.0f qps vs batch-1 best %.0f qps: %s\n",
              qps_batched_best, qps_batch1,
              batching_wins ? "batching wins" : "regression");
  if (!batching_wins) {
    std::printf("  WARNING: batching did not beat batch-1 on this run; this "
                "is a relative perf race on a shared machine, not a "
                "correctness failure (exactness is gated in serve_test).\n");
  }
  return 0;
}
