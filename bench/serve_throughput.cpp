// Serving throughput: queries/sec vs micro-batch size and shard count.
//
// The serving analogue of the paper's batching story — MO-ALS batches row
// solves so Θᵀ is swept once per batch instead of once per row; the top-k
// engine batches user queries so each Θ shard row is read once per user
// block. This bench quantifies that lever on a synthetic model: batch size 1
// (naive online serving) vs micro-batches, across shard counts, plus the
// RequestBatcher + LRU cache on Zipf-skewed traffic.
//
// CSV: bench_results/serve_throughput.csv

#include <algorithm>
#include <cstdio>
#include <future>
#include <span>
#include <vector>

#include "bench_common.hpp"
#include "serve/batcher.hpp"
#include "serve/factor_store.hpp"
#include "serve/topk.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace cumf;

linalg::FactorMatrix random_factors(idx_t rows, int f, std::uint64_t seed) {
  linalg::FactorMatrix m(rows, f);
  util::Rng rng(seed);
  m.randomize_uniform(rng, -1.0f, 1.0f);
  return m;
}

}  // namespace

int main() {
  constexpr idx_t kUsers = 2000;
  constexpr idx_t kItems = 4000;
  constexpr int kF = 32;
  constexpr int kTopK = 10;
  constexpr int kQueries = 2000;

  bench::print_header("serve_throughput",
                      "online top-k serving: queries/sec vs batch and shards");

  const auto x = random_factors(kUsers, kF, 101);
  const auto theta = random_factors(kItems, kF, 102);

  // Zipf-skewed query stream: hot users repeat, like production traffic.
  std::vector<idx_t> stream(kQueries);
  util::Rng traffic(103);
  for (auto& u : stream) {
    u = static_cast<idx_t>(traffic.zipf(static_cast<std::uint64_t>(kUsers), 1.1));
  }

  util::CsvWriter csv(bench::results_dir() + "/serve_throughput.csv",
                      {"mode", "shards", "batch", "queries", "seconds", "qps",
                       "items_scored", "items_pruned", "cache_hits"});

  std::printf("  model: %d users x %d items, f=%d, top-%d\n\n", kUsers, kItems,
              kF, kTopK);
  std::printf("  %-10s %7s %6s %9s %11s %13s %13s\n", "mode", "shards",
              "batch", "wall(s)", "qps", "scored", "pruned");

  double qps_batch1 = 0.0;
  double qps_batched_best = 0.0;

  for (const int shards : {1, 2, 4}) {
    const serve::FactorStore store(x, theta, shards);
    for (const int batch : {1, 8, 32, 128}) {
      serve::TopKOptions opt;
      opt.user_block = batch;
      const serve::TopKEngine engine(store, opt);

      const std::uint64_t scored0 = engine.items_scored();
      const std::uint64_t pruned0 = engine.items_pruned();
      util::Stopwatch watch;
      for (int q = 0; q < kQueries; q += batch) {
        const int take = std::min(batch, kQueries - q);
        (void)engine.recommend(
            std::span<const idx_t>(stream.data() + q,
                                   static_cast<std::size_t>(take)),
            kTopK);
      }
      const double secs = watch.seconds();
      const double qps = static_cast<double>(kQueries) / secs;
      const std::uint64_t scored = engine.items_scored() - scored0;
      const std::uint64_t pruned = engine.items_pruned() - pruned0;

      if (batch == 1) {
        qps_batch1 = std::max(qps_batch1, qps);
      } else {
        qps_batched_best = std::max(qps_batched_best, qps);
      }

      std::printf("  %-10s %7d %6d %9.3f %11.0f %13llu %13llu\n", "direct",
                  shards, batch, secs, qps,
                  static_cast<unsigned long long>(scored),
                  static_cast<unsigned long long>(pruned));
      csv.row("direct", shards, batch, kQueries, secs, qps, scored, pruned, 0);
    }
  }

  // RequestBatcher + hot-user LRU cache on the same Zipf stream.
  {
    const serve::FactorStore store(x, theta, 2);
    const serve::TopKEngine engine(store);
    serve::BatcherOptions opt;
    opt.k = kTopK;
    opt.max_batch = 32;
    opt.cache_capacity = 256;
    serve::RequestBatcher batcher(engine, opt);

    // Closed-loop waves: each wave's queries resolve before the next wave
    // arrives, so hot users from earlier waves hit the LRU cache.
    constexpr int kWave = 100;
    util::Stopwatch watch;
    std::vector<std::future<std::vector<serve::Recommendation>>> futures;
    futures.reserve(kWave);
    for (int q = 0; q < kQueries; q += kWave) {
      futures.clear();
      const int take = std::min(kWave, kQueries - q);
      for (int i = 0; i < take; ++i) futures.push_back(batcher.submit(stream[q + i]));
      for (auto& fut : futures) (void)fut.get();
    }
    const double secs = watch.seconds();
    const double qps = static_cast<double>(kQueries) / secs;

    const auto stats = batcher.stats();
    std::printf("  %-10s %7d %6d %9.3f %11.0f %13llu %13llu  (%.0f%% cache hits)\n",
                "batcher", 2, 32, secs, qps,
                static_cast<unsigned long long>(stats.items_scored),
                static_cast<unsigned long long>(stats.items_pruned),
                100.0 * static_cast<double>(stats.cache_hits) /
                    static_cast<double>(stats.queries));
    csv.row("batcher", 2, 32, kQueries, secs, qps, stats.items_scored,
            stats.items_pruned, stats.cache_hits);
  }

  std::printf("\n  micro-batched best %.0f qps vs batch-1 best %.0f qps: %s\n",
              qps_batched_best, qps_batch1,
              qps_batched_best > qps_batch1 ? "batching wins" : "REGRESSION");
  return qps_batched_best > qps_batch1 ? 0 : 1;
}
