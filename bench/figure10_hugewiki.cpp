// Figure 10: Hugewiki — cuMF on 4 GPUs vs NOMAD on a 64-node HPC cluster and
// a 32-node AWS cluster.
//
// Paper's finding: cuMF converges about as fast as NOMAD on 64 HPC nodes
// (with a slower start) and ~10× as fast as NOMAD on 32 AWS nodes — one node
// plus four GPUs outperforming a 64-node cluster.
//
// We run a scaled Hugewiki replica: cuMF with data parallelism where X is
// too big per batch plus the two-phase reduction (our machine model has two
// sockets), and the NOMAD implementation whose per-epoch modeled time comes
// from the respective cluster models.

#include <cstdio>

#include "baselines/nomad.hpp"
#include "bench_common.hpp"
#include "core/solver.hpp"
#include "costmodel/machines.hpp"
#include "data/datasets.hpp"
#include "gpusim/device_group.hpp"

int main() {
  using namespace cumf;
  bench::print_header("Figure 10",
                      "Hugewiki: cuMF@4GPU vs NOMAD on 64-HPC / 32-AWS");
  util::CsvWriter csv(bench::results_dir() + "/figure10_hugewiki.csv",
                      {"system", "iteration", "wall_s", "modeled_s",
                       "train_rmse", "test_rmse"});

  const int f = 16;
  const auto ds = data::make_sim_dataset(data::hugewiki(), 0.001, 2016, 0.1, f);
  std::printf("hugewiki-sim: m=%lld n=%lld nz=%lld f=%d\n",
              static_cast<long long>(ds.spec.m),
              static_cast<long long>(ds.spec.n),
              static_cast<long long>(ds.train_csr.nnz()), f);

  // cuMF: 4 GK210s on a two-socket machine, two-phase reduction (§5.4).
  const auto topo = gpusim::PcieTopology::two_socket(4);
  gpusim::DeviceGroup gpus(4, gpusim::gk210(), topo);
  core::SolverConfig cfg;
  cfg.als.f = f;
  cfg.als.lambda = 0.05f;
  cfg.reduce = core::ReduceScheme::TwoPhase;
  // At full Hugewiki scale update-Θ cannot replicate the 50M-row X and runs
  // data-parallel (§5.4); the laptop-scale replica would fit, so force the
  // full-scale plan to exercise the same code path and reduction.
  core::Plan theta_plan;
  theta_plan.mode = core::ParallelMode::DataParallel;
  theta_plan.p = 4;
  theta_plan.q = 2;
  cfg.plan_t = theta_plan;
  core::AlsSolver solver(gpus.pointers(), topo, ds.train_csr, ds.train_rt_csr,
                         cfg);
  std::printf("cuMF plans: update-X %s | update-Theta %s\n",
              solver.plan_x().describe().c_str(),
              solver.plan_theta().describe().c_str());
  auto cumf_hist = solver.train(5, &ds.train, &ds.test, "cuMF@4GPU");

  // NOMAD on the two cluster models.
  baselines::SgdOptions sgd;
  sgd.f = f;
  sgd.lambda = 0.05f;
  sgd.epochs = 40;
  sgd.threads = 4;
  auto nomad_run = baselines::NomadSgd(ds.train_csr, sgd)
                       .train(&ds.train, &ds.test, "NOMAD");

  const double nz = static_cast<double>(ds.train_csr.nnz());
  const double model_floats =
      static_cast<double>(ds.spec.m + ds.spec.n) * f;
  const double hpc_epoch = costmodel::cluster_sgd_epoch_seconds(
      costmodel::nomad_hpc64(), nz, f, model_floats);
  const double aws_epoch = costmodel::cluster_sgd_epoch_seconds(
      costmodel::nomad_aws32(), nz, f, model_floats);

  auto hpc_hist = nomad_run.history;
  hpc_hist.label = "NOMAD@64HPC";
  for (auto& pt : hpc_hist.points) pt.modeled_seconds = pt.iteration * hpc_epoch;
  auto aws_hist = nomad_run.history;
  aws_hist.label = "NOMAD@32AWS";
  for (auto& pt : aws_hist.points) pt.modeled_seconds = pt.iteration * aws_epoch;

  for (const auto* hist : {&cumf_hist, &hpc_hist, &aws_hist}) {
    bench::print_history(*hist);
    for (const auto& pt : hist->points) {
      csv.row(hist->label, pt.iteration, pt.wall_seconds, pt.modeled_seconds,
              pt.train_rmse, pt.test_rmse);
    }
  }

  const double target = ds.target_rmse;
  const double t_cumf = cumf_hist.modeled_time_to_rmse(target);
  const double t_hpc = hpc_hist.modeled_time_to_rmse(target);
  const double t_aws = aws_hist.modeled_time_to_rmse(target);
  std::printf("\n  modeled time to RMSE %.3f: cuMF@4GPU %.4gs | NOMAD@64HPC "
              "%.4gs | NOMAD@32AWS %.4gs\n",
              target, t_cumf, t_hpc, t_aws);
  if (t_cumf > 0 && t_aws > 0) {
    std::printf("  cuMF vs NOMAD@32AWS: %.1fx (paper: ~10x)\n",
                t_aws / t_cumf);
  }
  if (t_cumf > 0 && t_hpc > 0) {
    std::printf("  cuMF vs NOMAD@64HPC: %.1fx (paper: comparable, ~1x)\n",
                t_hpc / t_cumf);
  }
  return 0;
}
