// Kernel-level microbenchmarks (google-benchmark): the building blocks whose
// relative speeds the paper's §3 optimizations rest on. Wall-clock here is
// host CPU time — the register-tiled path is genuinely faster on CPUs too,
// for the same reason it is on GPUs (accumulator locality).

#include <benchmark/benchmark.h>

#include <vector>

#include "core/kernels.hpp"
#include "data/synthetic.hpp"
#include "gpusim/device.hpp"
#include "gpusim/device_spec.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/hermitian.hpp"
#include "util/rng.hpp"

namespace {

using namespace cumf;

std::vector<real_t> random_vec(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<real_t> v(n);
  for (auto& x : v) x = static_cast<real_t>(rng.uniform(-1.0, 1.0));
  return v;
}

// ---- rank-1 accumulation: global vs register paths ----

void BM_Rank1Global(benchmark::State& state) {
  const int f = static_cast<int>(state.range(0));
  const int bin = 20;
  const auto cols = random_vec(static_cast<std::size_t>(bin) * f, 1);
  std::vector<real_t> A(static_cast<std::size_t>(f) * f, 0.0f);
  for (auto _ : state) {
    linalg::rank1_accumulate_global(A.data(), cols.data(), bin, f);
    benchmark::DoNotOptimize(A.data());
  }
  state.SetItemsProcessed(state.iterations() * bin * f * f);
}
BENCHMARK(BM_Rank1Global)->Arg(16)->Arg(32)->Arg(64)->Arg(100);

void BM_Rank1Registers(benchmark::State& state) {
  const int f = static_cast<int>(state.range(0));
  const int bin = 20;
  const auto cols = random_vec(static_cast<std::size_t>(bin) * f, 1);
  std::vector<real_t> A(static_cast<std::size_t>(f) * f, 0.0f);
  for (auto _ : state) {
    linalg::rank1_accumulate_registers(A.data(), cols.data(), bin, f);
    benchmark::DoNotOptimize(A.data());
  }
  state.SetItemsProcessed(state.iterations() * bin * f * f);
}
BENCHMARK(BM_Rank1Registers)->Arg(16)->Arg(32)->Arg(64)->Arg(100);

// ---- full get_hermitian: Algorithm 1 vs Algorithm 2 ----

sparse::CsrMatrix bench_matrix() {
  data::SyntheticOptions opt;
  opt.m = 2000;
  opt.n = 400;
  opt.nz = 120'000;
  opt.seed = 3;
  return sparse::coo_to_csr(data::generate_ratings(opt));
}

void BM_GetHermitian(benchmark::State& state) {
  const bool mo = state.range(0) != 0;
  const int f = 32;
  static const sparse::CsrMatrix R = bench_matrix();
  const auto theta = random_vec(static_cast<std::size_t>(R.cols) * f, 7);
  std::vector<real_t> A(static_cast<std::size_t>(R.rows) * f * f);
  std::vector<real_t> B(static_cast<std::size_t>(R.rows) * f);
  gpusim::Device dev(0, gpusim::titan_x());
  const core::KernelOptions opt =
      mo ? core::KernelOptions{20, true, true}
         : core::KernelOptions{1, false, false};
  for (auto _ : state) {
    core::get_hermitian_block(dev, R, 0, R.rows, theta.data(), f, 0.05f, opt,
                              A.data(), B.data());
    benchmark::DoNotOptimize(A.data());
  }
  state.SetItemsProcessed(state.iterations() * R.nnz());
  state.SetLabel(mo ? "MO-ALS(Alg2)" : "base(Alg1)");
}
BENCHMARK(BM_GetHermitian)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// ---- bin-size sweep (DESIGN.md ablation: paper picks bin in [10, 30]) ----

void BM_BinSize(benchmark::State& state) {
  const int bin = static_cast<int>(state.range(0));
  const int f = 32;
  static const sparse::CsrMatrix R = bench_matrix();
  const auto theta = random_vec(static_cast<std::size_t>(R.cols) * f, 7);
  std::vector<real_t> A(static_cast<std::size_t>(R.rows) * f * f);
  std::vector<real_t> B(static_cast<std::size_t>(R.rows) * f);
  gpusim::Device dev(0, gpusim::titan_x());
  const core::KernelOptions opt{bin, true, true};
  for (auto _ : state) {
    core::get_hermitian_block(dev, R, 0, R.rows, theta.data(), f, 0.05f, opt,
                              A.data(), B.data());
    benchmark::DoNotOptimize(A.data());
  }
  state.SetItemsProcessed(state.iterations() * R.nnz());
}
BENCHMARK(BM_BinSize)->Arg(2)->Arg(5)->Arg(10)->Arg(20)->Arg(30)->Arg(60)
    ->Unit(benchmark::kMillisecond);

// ---- batched Cholesky solve ----

void BM_BatchSolve(benchmark::State& state) {
  const int f = static_cast<int>(state.range(0));
  const idx_t count = 256;
  util::Rng rng(9);
  std::vector<real_t> A0(static_cast<std::size_t>(count) * f * f);
  for (idx_t u = 0; u < count; ++u) {
    real_t* a = A0.data() + static_cast<std::size_t>(u) * f * f;
    for (int i = 0; i < f; ++i) {
      for (int j = 0; j <= i; ++j) {
        const auto v = static_cast<real_t>(rng.uniform(-0.1, 0.1));
        a[static_cast<std::size_t>(i) * f + j] = v;
        a[static_cast<std::size_t>(j) * f + i] = v;
      }
      a[static_cast<std::size_t>(i) * f + i] += static_cast<real_t>(f);
    }
  }
  const auto B0 = random_vec(static_cast<std::size_t>(count) * f, 11);
  std::vector<real_t> X(static_cast<std::size_t>(count) * f);
  gpusim::Device dev(0, gpusim::titan_x());
  for (auto _ : state) {
    state.PauseTiming();
    auto A = A0;
    auto B = B0;
    state.ResumeTiming();
    core::batch_solve_block(dev, A.data(), B.data(), count, f, X.data());
    benchmark::DoNotOptimize(X.data());
  }
  state.SetItemsProcessed(state.iterations() * count);
}
BENCHMARK(BM_BatchSolve)->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

// ---- Cholesky single system ----

void BM_Cholesky(benchmark::State& state) {
  const int f = static_cast<int>(state.range(0));
  util::Rng rng(13);
  std::vector<real_t> A0(static_cast<std::size_t>(f) * f, 0.0f);
  for (int i = 0; i < f; ++i) {
    A0[static_cast<std::size_t>(i) * f + i] = static_cast<real_t>(f);
    for (int j = 0; j < i; ++j) {
      const auto v = static_cast<real_t>(rng.uniform(-0.1, 0.1));
      A0[static_cast<std::size_t>(i) * f + j] = v;
      A0[static_cast<std::size_t>(j) * f + i] = v;
    }
  }
  for (auto _ : state) {
    auto A = A0;
    linalg::cholesky_factor(A.data(), f);
    benchmark::DoNotOptimize(A.data());
  }
}
BENCHMARK(BM_Cholesky)->Arg(16)->Arg(32)->Arg(64)->Arg(100);

}  // namespace

BENCHMARK_MAIN();
