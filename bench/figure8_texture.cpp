// Figure 8: convergence speed of cuMF with and without texture memory.
//
// Paper's finding: routing the read-only θ gathers through texture cache
// makes convergence 25-35% faster; the gain is smaller on YahooMusic because
// its rating matrix is sparser (less θ reuse to exploit).

#include <cstdio>

#include "bench_common.hpp"
#include "core/solver.hpp"
#include "data/datasets.hpp"
#include "gpusim/device_group.hpp"

namespace {

using namespace cumf;

void run_dataset(const data::DatasetSpec& full, double scale, int f,
                 int iters, util::CsvWriter& csv) {
  const auto ds = data::make_sim_dataset(full, scale, 2016, 0.1, f);
  std::printf("\n--- %s (m=%lld n=%lld nz=%lld f=%d) ---\n",
              full.name.c_str(), static_cast<long long>(ds.spec.m),
              static_cast<long long>(ds.spec.n),
              static_cast<long long>(ds.train_csr.nnz()), f);

  eval::ConvergenceHistory runs[2];
  for (const bool use_texture : {true, false}) {
    const auto topo = gpusim::PcieTopology::flat(1);
    gpusim::DeviceGroup gpu(1, gpusim::titan_x(), topo);
    core::SolverConfig cfg;
    cfg.als.f = f;
    cfg.als.lambda = static_cast<real_t>(full.lambda);
    cfg.als.kernel.use_texture = use_texture;
    core::AlsSolver solver(gpu.pointers(), topo, ds.train_csr,
                           ds.train_rt_csr, cfg);
    auto hist = solver.train(iters, &ds.train, &ds.test,
                             use_texture ? "with-texture" : "without-texture");
    bench::print_history(hist);
    for (const auto& pt : hist.points) {
      csv.row(full.name, hist.label, pt.iteration, pt.wall_seconds,
              pt.modeled_seconds, pt.train_rmse, pt.test_rmse);
    }
    runs[use_texture ? 0 : 1] = std::move(hist);
  }

  const double t_with = runs[0].modeled_time_to_rmse(ds.target_rmse);
  const double t_without = runs[1].modeled_time_to_rmse(ds.target_rmse);
  if (t_with > 0 && t_without > 0) {
    std::printf(
        "  modeled time to RMSE %.3f: with %.4gs, without %.4gs -> texture "
        "%.0f%% faster (paper: 25-35%%)\n",
        ds.target_rmse, t_with, t_without, (t_without / t_with - 1.0) * 100);
  }
}

}  // namespace

int main() {
  bench::print_header("Figure 8", "benefit of texture memory");
  util::CsvWriter csv(bench::results_dir() + "/figure8_texture.csv",
                      {"dataset", "config", "iteration", "wall_s", "modeled_s",
                       "train_rmse", "test_rmse"});
  run_dataset(data::netflix(), 0.015, 24, 4, csv);
  run_dataset(data::yahoomusic(), 0.003, 24, 4, csv);
  return 0;
}
