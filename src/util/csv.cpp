#include "util/csv.hpp"

#include <stdexcept>

namespace cumf::util {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) out_ << ',';
    out_ << header[i];
  }
  out_ << '\n';
}

}  // namespace cumf::util
