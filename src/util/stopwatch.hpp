#pragma once

// Wall-clock timing. All wall times in cuMF are reported in seconds as double.

#include <chrono>

namespace cumf::util {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void restart() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last restart().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace cumf::util
