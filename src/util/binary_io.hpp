#pragma once

// Checksummed binary blob I/O.
//
// Used by (a) the checkpoint/restore fault-tolerance path (§4.4 of the paper:
// X and Θ are asynchronously checkpointed to a parallel file system) and
// (b) the out-of-core pipeline, which stages R partitions on disk and
// prefetches them ahead of the compute.

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "util/types.hpp"

namespace cumf::util {

/// FNV-1a 64-bit over a byte range.
std::uint64_t fnv1a(const void* data, std::size_t bytes);

/// Writes {magic, tag, element count, payload, checksum}. Throws
/// std::runtime_error on I/O failure.
void write_blob(const std::string& path, std::uint32_t tag,
                std::span<const std::byte> payload);

/// Writes the blob to a uniquely-named temp file next to `path` (distinct
/// pid+sequence suffix, so concurrent writers never share a temp) and
/// returns the temp path without touching `path` itself. Callers sequence
/// their own publish — e.g. the checkpoint manager rotates current→previous
/// only after staging succeeds, so a failed write can never cost an
/// existing snapshot. The temp file is removed on write failure.
std::string stage_blob(const std::string& path, std::uint32_t tag,
                       std::span<const std::byte> payload);

/// stage_blob + a single atomic rename onto `path`: a concurrent reader sees
/// either the previous complete file or the new complete file, never a
/// partial write. The temp file is removed on failure.
void write_blob_atomic(const std::string& path, std::uint32_t tag,
                       std::span<const std::byte> payload);

/// Reads a blob written by write_blob, verifying magic, tag and checksum.
/// Throws std::runtime_error on mismatch or I/O failure.
std::vector<std::byte> read_blob(const std::string& path, std::uint32_t tag);

/// Typed helpers for trivially copyable element types.
template <typename T>
void write_vector(const std::string& path, std::uint32_t tag,
                  const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  write_blob(path, tag,
             std::span(reinterpret_cast<const std::byte*>(v.data()),
                       v.size() * sizeof(T)));
}

template <typename T>
std::vector<T> read_vector(const std::string& path, std::uint32_t tag) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::vector<std::byte> raw = read_blob(path, tag);
  std::vector<T> out(raw.size() / sizeof(T));
  std::memcpy(out.data(), raw.data(), out.size() * sizeof(T));
  return out;
}

}  // namespace cumf::util
