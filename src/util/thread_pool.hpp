#pragma once

// A small fixed-size thread pool plus blocking parallel_for.
//
// All host-side parallelism in cuMF goes through this pool: simulated GPU
// kernels fan their thread blocks out over it, and the CPU baselines (Hogwild,
// FPSGD, NOMAD, CCD++) use it as their worker set. Keeping one shared pool
// avoids oversubscription when several simulated devices execute at once.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/types.hpp"

namespace cumf::util {

class ThreadPool {
 public:
  /// threads == 0 picks std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns immediately.
  void submit(std::function<void()> task);

  /// Runs one queued task on the calling thread if any is pending. Returns
  /// false when the queue was empty. Lets blocked waiters help drain the
  /// queue, which is what makes nested parallel_for deadlock-free.
  bool try_run_one();

  /// Block until every task submitted so far has finished.
  void wait_idle();

  /// Process-wide default pool (hardware concurrency).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Run fn(i) for i in [begin, end), blocking until done. Splits the range into
/// chunks of at least `min_chunk`; degenerates to a serial loop for tiny
/// ranges or a single-thread pool.
void parallel_for(ThreadPool& pool, nnz_t begin, nnz_t end,
                  const std::function<void(nnz_t)>& fn, nnz_t min_chunk = 1);

/// Chunked variant: fn(chunk_begin, chunk_end) per worker chunk. This is the
/// primitive the simulated-kernel layer uses (a chunk ~ a wave of thread
/// blocks).
void parallel_for_chunks(ThreadPool& pool, nnz_t begin, nnz_t end,
                         const std::function<void(nnz_t, nnz_t)>& fn,
                         std::size_t num_chunks = 0);

}  // namespace cumf::util
