#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace cumf::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Info};
std::mutex g_mu;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void log_message(LogLevel level, const std::string& msg) {
  std::lock_guard lock(g_mu);
  std::fprintf(stderr, "[cumf %s] %s\n", level_name(level), msg.c_str());
}

}  // namespace cumf::util
