#pragma once

// Deterministic random number generation for all experiments.
//
// Every workload generator and solver initialization draws from a seeded Rng
// so that tests and benches are reproducible run to run. The core generator
// is xoshiro256**, seeded via splitmix64 as its authors recommend.

#include <cmath>
#include <cstdint>

#include "util/types.hpp"

namespace cumf::util {

/// xoshiro256** pseudo-random generator with derived distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
    have_gauss_ = false;
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [0, 1) as real_t.
  real_t next_real() { return static_cast<real_t>(next_double()); }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection-free variant is fine here; the tiny
    // modulo bias of a plain multiply-shift is irrelevant for workloads.
    const __uint128_t wide = static_cast<__uint128_t>(next_u64()) * bound;
    return static_cast<std::uint64_t>(wide >> 64);
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  /// Standard normal via Marsaglia polar method (cached pair).
  double gaussian() {
    if (have_gauss_) {
      have_gauss_ = false;
      return cached_gauss_;
    }
    double u, v, s;
    do {
      u = 2.0 * next_double() - 1.0;
      v = 2.0 * next_double() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    cached_gauss_ = v * mul;
    have_gauss_ = true;
    return u * mul;
  }

  double gaussian(double mean, double stddev) { return mean + stddev * gaussian(); }

  /// Log-normal: exp(N(mu, sigma)). Used for per-row rating counts.
  double lognormal(double mu, double sigma) { return std::exp(gaussian(mu, sigma)); }

  /// Zipf-like rank sampling over [0, n): P(k) ~ 1/(k+1)^s via inverse-CDF
  /// approximation on the continuous bounded Pareto. Good enough to induce
  /// realistic popularity skew; exactness is not required.
  std::uint64_t zipf(std::uint64_t n, double s) {
    if (n <= 1) return 0;
    if (s <= 0.0) return next_below(n);
    const double u = next_double();
    double k;
    if (std::abs(s - 1.0) < 1e-9) {
      k = std::pow(static_cast<double>(n), u) - 1.0;
    } else {
      const double one_minus_s = 1.0 - s;
      const double hi = std::pow(static_cast<double>(n), one_minus_s);
      k = std::pow(u * (hi - 1.0) + 1.0, 1.0 / one_minus_s) - 1.0;
    }
    auto r = static_cast<std::uint64_t>(k);
    return r >= n ? n - 1 : r;
  }

  /// Split off an independent stream (for per-thread generators).
  Rng split() { return Rng(next_u64() ^ 0xd2b74407b1ce6e93ull); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double cached_gauss_ = 0.0;
  bool have_gauss_ = false;
};

}  // namespace cumf::util
