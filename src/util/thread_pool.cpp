#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

#include "obs/trace.hpp"

namespace cumf::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

bool ThreadPool::try_run_one() {
  std::function<void()> task;
  {
    std::lock_guard lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  {
    std::lock_guard lock(mu_);
    --in_flight_;
    if (in_flight_ == 0) cv_idle_.notify_all();
  }
  return true;
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  obs::TraceCollector::global().set_thread_name("pool.worker");
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(ThreadPool& pool, nnz_t begin, nnz_t end,
                  const std::function<void(nnz_t)>& fn, nnz_t min_chunk) {
  if (begin >= end) return;
  const nnz_t n = end - begin;
  const auto workers = static_cast<nnz_t>(pool.size());
  if (workers <= 1 || n <= min_chunk) {
    for (nnz_t i = begin; i < end; ++i) fn(i);
    return;
  }
  parallel_for_chunks(pool, begin, end, [&fn](nnz_t lo, nnz_t hi) {
    for (nnz_t i = lo; i < hi; ++i) fn(i);
  });
}

void parallel_for_chunks(ThreadPool& pool, nnz_t begin, nnz_t end,
                         const std::function<void(nnz_t, nnz_t)>& fn,
                         std::size_t num_chunks) {
  if (begin >= end) return;
  const nnz_t n = end - begin;
  if (num_chunks == 0) num_chunks = pool.size() * 4;
  num_chunks = std::min<std::size_t>(num_chunks, static_cast<std::size_t>(n));
  if (num_chunks <= 1 || pool.size() <= 1) {
    fn(begin, end);
    return;
  }

  // Work-stealing style: caller and helpers all pull chunk ids from a shared
  // counter. The caller participates, so progress is guaranteed even when
  // every pool worker is itself blocked inside a nested parallel_for.
  const nnz_t chunk = (n + static_cast<nnz_t>(num_chunks) - 1) /
                      static_cast<nnz_t>(num_chunks);
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  auto run_chunks = [=, &fn] {
    for (;;) {
      const std::size_t c = next->fetch_add(1);
      if (c >= num_chunks) return;
      const nnz_t lo = begin + static_cast<nnz_t>(c) * chunk;
      const nnz_t hi = std::min(end, lo + chunk);
      if (lo < hi) fn(lo, hi);
    }
  };

  const std::size_t helpers = std::min(pool.size(), num_chunks - 1);
  std::atomic<std::size_t> live_helpers{helpers};
  for (std::size_t h = 0; h < helpers; ++h) {
    pool.submit([&live_helpers, run_chunks] {
      run_chunks();
      live_helpers.fetch_sub(1, std::memory_order_acq_rel);
    });
  }
  run_chunks();
  // Wait for the helpers — but keep draining the pool's queue meanwhile.
  // If every pool worker is itself blocked inside a nested parallel_for,
  // their queued helpers can only make progress on waiting threads; without
  // this, nested parallelism deadlocks.
  while (live_helpers.load(std::memory_order_acquire) != 0) {
    if (!pool.try_run_one()) std::this_thread::yield();
  }
}

}  // namespace cumf::util
