#pragma once

// Minimal leveled logging to stderr. Benches use Info, tests keep Warn.

#include <sstream>
#include <string>

namespace cumf::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);
void log_message(LogLevel level, const std::string& msg);

namespace detail {
inline void format_into(std::ostringstream&) {}
template <typename T, typename... Rest>
void format_into(std::ostringstream& os, const T& value, const Rest&... rest) {
  os << value;
  format_into(os, rest...);
}
}  // namespace detail

template <typename... Args>
void log(LogLevel level, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  detail::format_into(os, args...);
  log_message(level, os.str());
}

template <typename... Args>
void log_info(const Args&... args) { log(LogLevel::Info, args...); }
template <typename... Args>
void log_warn(const Args&... args) { log(LogLevel::Warn, args...); }
template <typename... Args>
void log_error(const Args&... args) { log(LogLevel::Error, args...); }
template <typename... Args>
void log_debug(const Args&... args) { log(LogLevel::Debug, args...); }

}  // namespace cumf::util
