#pragma once

// CSV emission for bench outputs. Every table/figure bench writes its series
// both to stdout (human-readable) and to a CSV file for plotting.

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace cumf::util {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws
  /// std::runtime_error when the file cannot be created.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Append one row; values are stringified with operator<<.
  template <typename... Args>
  void row(const Args&... args) {
    std::ostringstream os;
    os.precision(10);
    append_cells(os, args...);
    out_ << os.str() << '\n';
  }

  void flush() { out_.flush(); }

 private:
  template <typename T>
  void append_cells(std::ostringstream& os, const T& v) {
    os << v;
  }
  template <typename T, typename... Rest>
  void append_cells(std::ostringstream& os, const T& v, const Rest&... rest) {
    os << v << ',';
    append_cells(os, rest...);
  }

  std::ofstream out_;
};

}  // namespace cumf::util
