#include "util/binary_io.hpp"

#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace cumf::util {

namespace {
constexpr std::uint32_t kMagic = 0x43554d46;  // "CUMF"

struct BlobHeader {
  std::uint32_t magic;
  std::uint32_t tag;
  std::uint64_t payload_bytes;
};
}  // namespace

std::uint64_t fnv1a(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

void write_blob(const std::string& path, std::uint32_t tag,
                std::span<const std::byte> payload) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("write_blob: cannot open " + path);
  const BlobHeader hdr{kMagic, tag, payload.size()};
  const std::uint64_t checksum = fnv1a(payload.data(), payload.size());
  out.write(reinterpret_cast<const char*>(&hdr), sizeof(hdr));
  out.write(reinterpret_cast<const char*>(payload.data()),
            static_cast<std::streamsize>(payload.size()));
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  if (!out) throw std::runtime_error("write_blob: short write to " + path);
}

std::string stage_blob(const std::string& path, std::uint32_t tag,
                       std::span<const std::byte> payload) {
  // Unique per process *and* per call: two threads (or two processes sharing
  // a checkpoint directory) publishing the same path never write through the
  // same temp file, so a rename of the staged file always moves a complete
  // blob.
  static std::atomic<std::uint64_t> seq{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(seq.fetch_add(1));
  try {
    write_blob(tmp, tag, payload);
  } catch (...) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    throw;
  }
  return tmp;
}

void write_blob_atomic(const std::string& path, std::uint32_t tag,
                       std::span<const std::byte> payload) {
  const std::string tmp = stage_blob(path, tag, payload);
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code rm;
    std::filesystem::remove(tmp, rm);
    throw std::runtime_error("write_blob_atomic: rename to " + path +
                             " failed: " + ec.message());
  }
}

std::vector<std::byte> read_blob(const std::string& path, std::uint32_t tag) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_blob: cannot open " + path);
  BlobHeader hdr{};
  in.read(reinterpret_cast<char*>(&hdr), sizeof(hdr));
  if (!in || hdr.magic != kMagic) {
    throw std::runtime_error("read_blob: bad magic in " + path);
  }
  if (hdr.tag != tag) {
    throw std::runtime_error("read_blob: tag mismatch in " + path);
  }
  std::vector<std::byte> payload(hdr.payload_bytes);
  in.read(reinterpret_cast<char*>(payload.data()),
          static_cast<std::streamsize>(payload.size()));
  std::uint64_t checksum = 0;
  in.read(reinterpret_cast<char*>(&checksum), sizeof(checksum));
  if (!in) throw std::runtime_error("read_blob: truncated file " + path);
  if (checksum != fnv1a(payload.data(), payload.size())) {
    throw std::runtime_error("read_blob: checksum mismatch in " + path);
  }
  return payload;
}

}  // namespace cumf::util
