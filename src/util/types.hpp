#pragma once

// Fundamental scalar and index types shared across all cuMF modules.
//
// The paper (Table 2) works with m, n up to 1e9 and Nz up to 1e11, in single
// precision. We keep row/column identifiers at 32 bits (per-partition ids in
// SU-ALS always fit) and anything counting nonzeros at 64 bits.

#include <cstddef>
#include <cstdint>

namespace cumf {

/// Value type of ratings and factors. The paper uses single precision.
using real_t = float;

/// Row/column index within a matrix or partition.
using idx_t = std::int32_t;

/// Count of nonzeros / offsets into nonzero arrays (Nz can exceed 2^31).
using nnz_t = std::int64_t;

/// Bytes, for device-capacity accounting.
using bytes_t = std::uint64_t;

inline constexpr bytes_t operator""_KiB(unsigned long long v) { return v << 10; }
inline constexpr bytes_t operator""_MiB(unsigned long long v) { return v << 20; }
inline constexpr bytes_t operator""_GiB(unsigned long long v) { return v << 30; }

}  // namespace cumf
