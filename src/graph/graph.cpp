#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>
#include <vector>

namespace cumf::graph {

namespace {
Graph from_coo(sparse::CooMatrix&& coo) {
  Graph g;
  g.adj = sparse::coo_to_csr(coo);
  return g;
}
}  // namespace

Graph ring_graph(idx_t n) {
  if (n <= 0) throw std::invalid_argument("ring_graph: n must be > 0");
  sparse::CooMatrix coo;
  coo.rows = coo.cols = n;
  coo.reserve(n);
  for (idx_t u = 0; u < n; ++u) {
    coo.push_back(u, (u + 1) % n, 1.0f);
  }
  return from_coo(std::move(coo));
}

Graph star_graph(idx_t n) {
  if (n < 2) throw std::invalid_argument("star_graph: n must be >= 2");
  sparse::CooMatrix coo;
  coo.rows = coo.cols = n;
  coo.reserve(n);
  for (idx_t u = 1; u < n; ++u) {
    coo.push_back(u, 0, 1.0f);
  }
  coo.push_back(0, 1, 1.0f);  // keep the hub non-dangling
  return from_coo(std::move(coo));
}

Graph random_graph(idx_t n, int out_degree, util::Rng& rng) {
  if (n <= 1 || out_degree <= 0) {
    throw std::invalid_argument("random_graph: bad arguments");
  }
  sparse::CooMatrix coo;
  coo.rows = coo.cols = n;
  coo.reserve(static_cast<nnz_t>(n) * out_degree);
  std::unordered_set<idx_t> seen;
  for (idx_t u = 0; u < n; ++u) {
    seen.clear();
    const int want = std::min<int>(out_degree, n - 1);
    while (static_cast<int>(seen.size()) < want) {
      const auto v = static_cast<idx_t>(rng.next_below(static_cast<std::uint64_t>(n)));
      if (v != u && seen.insert(v).second) {
        coo.push_back(u, v, 1.0f);
      }
    }
  }
  return from_coo(std::move(coo));
}

Graph preferential_attachment(idx_t n, int links, util::Rng& rng) {
  if (n < 2 || links <= 0) {
    throw std::invalid_argument("preferential_attachment: bad arguments");
  }
  sparse::CooMatrix coo;
  coo.rows = coo.cols = n;
  // Repeated-targets list: node v appears once per in-edge (+ once base),
  // so sampling uniformly from it is proportional to in-degree + 1.
  std::vector<idx_t> targets;
  targets.reserve(static_cast<std::size_t>(n) * (1 + links));
  targets.push_back(0);
  std::unordered_set<idx_t> seen;
  for (idx_t u = 1; u < n; ++u) {
    seen.clear();
    const int want = std::min<int>(links, u);
    int guard = 0;
    while (static_cast<int>(seen.size()) < want && guard++ < 50 * links) {
      const idx_t v = targets[rng.next_below(targets.size())];
      if (v != u && seen.insert(v).second) {
        coo.push_back(u, v, 1.0f);
        targets.push_back(v);
      }
    }
    targets.push_back(u);
  }
  return from_coo(std::move(coo));
}

}  // namespace cumf::graph
