#pragma once

// Graph substrate — the paper's §7 future work: "we plan to extend cuMF to
// deal with other sparse problems such as graph algorithms [CuSha]". The
// same CSR structures, device simulator, and gathered-access kernels that
// power ALS carry over directly; this module adds graph construction and a
// PageRank engine on top, and examples/graph_analytics.cpp does MF-based
// link prediction with the implicit-ALS solver.

#include "sparse/csr.hpp"
#include "util/rng.hpp"

namespace cumf::graph {

/// A directed graph stored as a CSR adjacency matrix (row u lists u's
/// out-neighbours; edge weights default to 1).
struct Graph {
  sparse::CsrMatrix adj;  // rows == cols == node count

  [[nodiscard]] idx_t nodes() const { return adj.rows; }
  [[nodiscard]] nnz_t edges() const { return adj.nnz(); }
};

/// Directed ring 0→1→…→n-1→0.
Graph ring_graph(idx_t n);

/// Star: spokes 1..n-1 each point at the hub (node 0), hub points back at
/// node 1 so it is not dangling.
Graph star_graph(idx_t n);

/// G(n, deg): each node draws `deg` random out-neighbours (no self loops,
/// duplicates removed).
Graph random_graph(idx_t n, int out_degree, util::Rng& rng);

/// Preferential attachment: nodes arrive one at a time and attach `links`
/// out-edges to existing nodes with probability proportional to current
/// in-degree (+1). Produces the heavy-tailed in-degree of real webs/socials.
Graph preferential_attachment(idx_t n, int links, util::Rng& rng);

}  // namespace cumf::graph
