#include "graph/pagerank.hpp"

#include <cmath>
#include <stdexcept>

#include "sparse/stats.hpp"
#include "util/thread_pool.hpp"

namespace cumf::graph {

PageRankResult pagerank(gpusim::Device& dev, const sparse::CsrMatrix& adj,
                        const PageRankOptions& opt) {
  if (adj.rows != adj.cols) {
    throw std::invalid_argument("pagerank: adjacency must be square");
  }
  const idx_t n = adj.rows;
  PageRankResult res;
  if (n == 0) return res;

  // Pull formulation: in-edges of v with source out-degrees.
  const sparse::CsrMatrix in_edges = sparse::transpose(adj);
  const auto out_deg = sparse::row_degrees(adj);

  std::vector<double> score(static_cast<std::size_t>(n),
                            1.0 / static_cast<double>(n));
  std::vector<double> next(static_cast<std::size_t>(n), 0.0);
  const double d = opt.damping;

  for (int it = 0; it < opt.max_iters; ++it) {
    // Mass parked on dangling nodes is spread uniformly.
    double dangling = 0.0;
    for (idx_t u = 0; u < n; ++u) {
      if (out_deg[static_cast<std::size_t>(u)] == 0) {
        dangling += score[static_cast<std::size_t>(u)];
      }
    }
    const double base =
        (1.0 - d) / static_cast<double>(n) + d * dangling / static_cast<double>(n);

    util::parallel_for_chunks(dev.pool(), 0, n, [&](nnz_t lo, nnz_t hi) {
      for (nnz_t v = lo; v < hi; ++v) {
        double s = 0.0;
        const auto srcs = in_edges.row_cols(static_cast<idx_t>(v));
        for (const idx_t u : srcs) {
          s += score[static_cast<std::size_t>(u)] /
               static_cast<double>(out_deg[static_cast<std::size_t>(u)]);
        }
        next[static_cast<std::size_t>(v)] = base + d * s;
      }
    });

    // SpMV traffic: gathered reads of source scores + contiguous CSR walk.
    gpusim::KernelStats stats;
    stats.flops = 2.0 * static_cast<double>(in_edges.nnz());
    stats.gathered_read =
        static_cast<bytes_t>(in_edges.nnz()) * sizeof(double);
    stats.gathered_via_texture = true;  // scores are read-only per iteration
    stats.global_read = static_cast<bytes_t>(in_edges.nnz()) * sizeof(idx_t) +
                        static_cast<bytes_t>(n) * sizeof(nnz_t);
    stats.global_write = static_cast<bytes_t>(n) * sizeof(double);
    dev.account_kernel(stats);

    double delta = 0.0;
    for (idx_t v = 0; v < n; ++v) {
      delta += std::abs(next[static_cast<std::size_t>(v)] -
                        score[static_cast<std::size_t>(v)]);
    }
    score.swap(next);
    res.iterations = it + 1;
    res.final_delta = delta;
    if (delta < opt.tolerance * static_cast<double>(n)) {
      res.converged = true;
      break;
    }
  }
  res.scores = std::move(score);
  return res;
}

}  // namespace cumf::graph
