#pragma once

// PageRank on the simulated device — the flagship "other sparse problem"
// of the paper's future-work section. The pull-style SpMV iteration has the
// exact memory profile the cuMF kernels optimize for: gathered reads of
// source scores (θ-column-style discontiguous access) against a CSR of
// in-edges, with per-launch traffic accounted on the device clock.

#include <vector>

#include "gpusim/device.hpp"
#include "sparse/csr.hpp"

namespace cumf::graph {

struct PageRankOptions {
  double damping = 0.85;
  int max_iters = 100;
  double tolerance = 1e-9;  // L1 change per node between iterations
};

struct PageRankResult {
  std::vector<double> scores;  // sums to 1
  int iterations = 0;
  double final_delta = 0.0;
  bool converged = false;
};

/// Runs PageRank over the out-edge adjacency `adj` (rows = source nodes).
/// Dangling-node mass is redistributed uniformly each iteration.
PageRankResult pagerank(gpusim::Device& dev, const sparse::CsrMatrix& adj,
                        const PageRankOptions& opt = {});

}  // namespace cumf::graph
