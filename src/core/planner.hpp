#pragma once

// Capacity-driven partition planning (§4.3, eq. 8).
//
// For one update phase (solving a factor with `rows_solved` rows against a
// fixed factor of `cols_fixed` rows), a device participating in SU-ALS must
// simultaneously hold
//
//    X(j): (m/q)·f   +  Θ(i): (n/p)·f  +  R(ij)  +  A(j): (m/q)·f²
//    +  B(j): (m/q)·f  +  ε   <   C                               (eq. 8)
//
// (in floats; ε is headroom for miscellanea — the paper uses 500 MB at
// C = 12 GB). The planner applies the paper's three best practices:
//   1. if p = 1 satisfies (8), solve on a single GPU in sequential batches;
//   2. never grow q further once p = 1 fits;
//   3. otherwise start from p ≈ n·f/(C/2) and pick the smallest feasible q.
//
// The plan also selects the execution mode: with multiple physical devices
// and a fixed factor that fits everywhere, replicate it (pure model
// parallelism, the Fig. 9 configuration); otherwise partition it and reduce
// (data parallelism, Fig. 10). A logical p larger than the physical device
// count is allowed — the solver runs partitions in sequential waves
// (elasticity, §4.4).

#include <cstdint>
#include <string>

#include "util/types.hpp"

namespace cumf::core {

enum class ParallelMode {
  SingleDevice,   // MO-ALS with sequential row batches
  ModelParallel,  // fixed factor replicated, rows split across devices
  DataParallel,   // fixed factor partitioned, Hermitians reduced (SU-ALS)
};

const char* parallel_mode_name(ParallelMode mode);

struct PlanInput {
  std::int64_t rows_solved = 0;  // m when updating X, n when updating Θ
  std::int64_t cols_fixed = 0;   // n when updating X, m when updating Θ
  std::int64_t nz = 0;
  int f = 0;
  int physical_devices = 1;
  bytes_t capacity = 12_GiB;   // C
  bytes_t headroom = 500_MiB;  // ε
};

struct Plan {
  ParallelMode mode = ParallelMode::SingleDevice;
  int p = 1;  // logical fixed-factor partitions (may exceed physical devices)
  int q = 1;  // row batches
  bytes_t per_device_bytes = 0;  // worst-case bytes a device holds
  [[nodiscard]] std::string describe() const;
};

/// Worst-case bytes one device needs under a (p, q) split of the given
/// problem — the left side of eq. (8) in bytes, excluding headroom.
bytes_t eq8_bytes(const PlanInput& in, int p, int q);

/// Produces the cheapest feasible plan. Throws std::runtime_error when even
/// the maximum partitioning cannot satisfy eq. (8) (the problem needs
/// out-of-core staging on top, see core/ooc.hpp).
Plan plan_partition(const PlanInput& in);

}  // namespace cumf::core
