#include "core/solver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "core/kernels.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace cumf::core {

namespace {

using gpusim::Device;
using gpusim::DeviceBuffer;
using gpusim::kHost;
using gpusim::Transfer;

/// RAII capacity charge for data that logically resides on a device but is
/// physically shared host memory (R blocks).
class ChargeGuard {
 public:
  ChargeGuard(Device& dev, bytes_t bytes) : dev_(&dev), bytes_(bytes) {
    dev_->charge(bytes_);
  }
  ~ChargeGuard() {
    if (dev_) dev_->release(bytes_);
  }
  ChargeGuard(const ChargeGuard&) = delete;
  ChargeGuard& operator=(const ChargeGuard&) = delete;

 private:
  Device* dev_;
  bytes_t bytes_;
};

bytes_t factor_bytes(std::int64_t rows, int f) {
  return static_cast<bytes_t>(rows) * static_cast<bytes_t>(f) * sizeof(real_t);
}

}  // namespace

AlsSolver::AlsSolver(std::vector<Device*> devices, gpusim::PcieTopology topo,
                     const sparse::CsrMatrix& R, const sparse::CsrMatrix& Rt,
                     SolverConfig config)
    : devices_(std::move(devices)), topo_(std::move(topo)),
      cfg_(std::move(config)) {
  if (devices_.empty()) {
    throw std::invalid_argument("AlsSolver: need at least one device");
  }
  if (topo_.num_devices() < static_cast<int>(devices_.size())) {
    throw std::invalid_argument("AlsSolver: topology smaller than device set");
  }
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    if (devices_[d]->id() != static_cast<int>(d)) {
      throw std::invalid_argument("AlsSolver: device ids must be 0..P-1");
    }
  }
  if (R.rows != Rt.cols || R.cols != Rt.rows || R.nnz() != Rt.nnz()) {
    throw std::invalid_argument("AlsSolver: R and Rt shapes do not match");
  }

  side_x_ = make_side(R, cfg_.plan_x);
  side_t_ = make_side(Rt, cfg_.plan_t);

  const int f = cfg_.als.f;
  x_ = linalg::FactorMatrix(R.rows, f);
  theta_ = linalg::FactorMatrix(R.cols, f);
  util::Rng rng(cfg_.als.seed);
  const auto scale =
      static_cast<real_t>(1.0 / std::sqrt(static_cast<double>(f)));
  x_.randomize(rng, scale);
  theta_.randomize(rng, scale);

  if (cfg_.als.verbose) {
    util::log_info("AlsSolver: update-X ", side_x_.plan.describe(),
                   "; update-Theta ", side_t_.plan.describe());
  }
}

AlsSolver::Side AlsSolver::make_side(const sparse::CsrMatrix& R,
                                     const std::optional<Plan>& forced) {
  Side side;
  side.R = &R;
  if (forced) {
    side.plan = *forced;
  } else {
    PlanInput in;
    in.rows_solved = R.rows;
    in.cols_fixed = R.cols;
    in.nz = R.nnz();
    in.f = cfg_.als.f;
    in.physical_devices = static_cast<int>(devices_.size());
    in.capacity = devices_[0]->spec().global_bytes;
    in.headroom = cfg_.planner_headroom
                      ? cfg_.planner_headroom
                      : std::min<bytes_t>(500_MiB, in.capacity / 24);
    side.plan = plan_partition(in);
  }
  if (side.plan.mode == ParallelMode::DataParallel) {
    side.grid = sparse::grid_partition(R, side.plan.p, side.plan.q);
  }
  return side;
}

void AlsSolver::set_factors(linalg::FactorMatrix x,
                            linalg::FactorMatrix theta) {
  if (x.rows() != x_.rows() || x.f() != x_.f() ||
      theta.rows() != theta_.rows() || theta.f() != theta_.f()) {
    throw std::invalid_argument("set_factors: shape mismatch");
  }
  x_ = std::move(x);
  theta_ = std::move(theta);
}

double AlsSolver::modeled_seconds() const {
  return gpusim::max_clock(devices_);
}

void AlsSolver::run_iteration() {
  update_side(side_x_, theta_, x_);
  update_side(side_t_, x_, theta_);
  ++iterations_run_;
}

void AlsSolver::update_side(const Side& side,
                            const linalg::FactorMatrix& fixed,
                            linalg::FactorMatrix& out) {
  switch (side.plan.mode) {
    case ParallelMode::SingleDevice:
      update_single(side, fixed, out);
      break;
    case ParallelMode::ModelParallel:
      update_model_parallel(side, fixed, out);
      break;
    case ParallelMode::DataParallel:
      update_data_parallel(side, fixed, out);
      break;
  }
  cold_start_ = false;  // factors now live on the devices
}

namespace {
/// Rows per get_hermitian/batch_solve wave for the single/model-parallel
/// paths: the planner's q batches, capped by the practical solve_batch.
idx_t wave_rows(idx_t rows, int q, idx_t cap) {
  const idx_t per_batch = (rows + q - 1) / std::max(1, q);
  return std::max<idx_t>(1, std::min(per_batch, cap));
}
}  // namespace

void AlsSolver::update_single(const Side& side,
                              const linalg::FactorMatrix& fixed,
                              linalg::FactorMatrix& out) {
  Device& dev = *devices_[0];
  const int f = cfg_.als.f;
  const sparse::CsrMatrix& R = *side.R;

  DeviceBuffer<real_t> theta_buf(dev, fixed.data().size());
  std::memcpy(theta_buf.data(), fixed.data().data(),
              fixed.data().size() * sizeof(real_t));
  if (cold_start_) {
    account_transfer_batch({{kHost, 0, factor_bytes(fixed.rows(), f)}});
  }

  const ChargeGuard r_guard(dev, R.footprint_bytes());
  const idx_t bs = wave_rows(R.rows, side.plan.q, cfg_.als.solve_batch);
  DeviceBuffer<real_t> A(dev, static_cast<std::size_t>(bs) * f * f);
  DeviceBuffer<real_t> B(dev, static_cast<std::size_t>(bs) * f);

  for (idx_t b = 0; b < R.rows; b += bs) {
    const idx_t e = std::min<idx_t>(R.rows, b + bs);
    double t0 = dev.clock_seconds();
    get_hermitian_block(dev, R, b, e, theta_buf.data(), f, cfg_.als.lambda,
                        cfg_.als.kernel, A.data(), B.data());
    profile_.get_hermitian += dev.clock_seconds() - t0;
    t0 = dev.clock_seconds();
    solve_rows(dev, A.data(), B.data(), e - b, out.row(b));
    profile_.batch_solve += dev.clock_seconds() - t0;
  }
  // The solved factor stays device-resident for the next phase.
}

void AlsSolver::update_model_parallel(const Side& side,
                                      const linalg::FactorMatrix& fixed,
                                      linalg::FactorMatrix& out) {
  const int f = cfg_.als.f;
  const sparse::CsrMatrix& R = *side.R;
  const auto P = static_cast<int>(devices_.size());
  const auto ranges = sparse::split_even(R.rows, P);

  if (cold_start_) {
    // Broadcast the fixed factor: P simultaneous H2D copies contend on the
    // host channel — the "PCIe IO contention" overhead of §5.4.
    std::vector<Transfer> bcast;
    bcast.reserve(static_cast<std::size_t>(P));
    for (int d = 0; d < P; ++d) {
      bcast.push_back({kHost, d, factor_bytes(fixed.rows(), f)});
    }
    account_transfer_batch(bcast);
  } else {
    // Warm phase: the fixed factor was just solved in slices across the
    // devices; all-gather those slices peer-to-peer over PCIe.
    const auto fixed_slices = sparse::split_even(fixed.rows(), P);
    std::vector<Transfer> allgather;
    for (int src = 0; src < P; ++src) {
      const bytes_t b = factor_bytes(
          fixed_slices[static_cast<std::size_t>(src)].size(), f);
      if (b == 0) continue;
      for (int dst = 0; dst < P; ++dst) {
        if (dst != src) allgather.push_back({src, dst, b});
      }
    }
    account_transfer_batch(allgather);
  }

  for (int d = 0; d < P; ++d) {
    Device& dev = *devices_[d];
    const sparse::Range rr = ranges[static_cast<std::size_t>(d)];
    if (rr.size() == 0) continue;

    DeviceBuffer<real_t> theta_buf(dev, fixed.data().size());
    std::memcpy(theta_buf.data(), fixed.data().data(),
                fixed.data().size() * sizeof(real_t));
    // This device holds only its share of R.
    const ChargeGuard r_guard(
        dev, R.footprint_bytes() / static_cast<bytes_t>(P) + 1);

    const idx_t bs = wave_rows(R.rows, side.plan.q, cfg_.als.solve_batch);
    DeviceBuffer<real_t> A(dev, static_cast<std::size_t>(bs) * f * f);
    DeviceBuffer<real_t> B(dev, static_cast<std::size_t>(bs) * f);
    for (idx_t b = rr.begin; b < rr.end; b += bs) {
      const idx_t e = std::min<idx_t>(rr.end, b + bs);
      double t0 = dev.clock_seconds();
      get_hermitian_block(dev, R, b, e, theta_buf.data(), f, cfg_.als.lambda,
                          cfg_.als.kernel, A.data(), B.data());
      if (d == 0) profile_.get_hermitian += dev.clock_seconds() - t0;
      t0 = dev.clock_seconds();
      solve_rows(dev, A.data(), B.data(), e - b, out.row(b));
      if (d == 0) profile_.batch_solve += dev.clock_seconds() - t0;
    }
    // Solved slices stay device-resident for the next phase.
  }
  gpusim::sync_devices(devices_);
}

void AlsSolver::update_data_parallel(const Side& side,
                                     const linalg::FactorMatrix& fixed,
                                     linalg::FactorMatrix& out) {
  const int f = cfg_.als.f;
  const auto P = static_cast<int>(devices_.size());
  const int p = side.plan.p;
  const int q = side.plan.q;
  const int waves = (p + P - 1) / P;
  const auto& grid = side.grid;
  const std::size_t fsq = static_cast<std::size_t>(f) * f;

  std::vector<DeviceBuffer<real_t>> theta_parts(static_cast<std::size_t>(P));
  auto load_theta_wave = [&](int wave) {
    std::vector<Transfer> h2d;
    for (int d = 0; d < P; ++d) {
      const int l = wave * P + d;
      if (l >= p) {
        theta_parts[static_cast<std::size_t>(d)].reset();
        continue;
      }
      const sparse::Range cr = grid.col_ranges[static_cast<std::size_t>(l)];
      auto& buf = theta_parts[static_cast<std::size_t>(d)];
      buf = DeviceBuffer<real_t>(*devices_[static_cast<std::size_t>(d)],
                                 static_cast<std::size_t>(cr.size()) * f);
      std::memcpy(buf.data(), fixed.row(cr.begin),
                  static_cast<std::size_t>(cr.size()) * f * sizeof(real_t));
      h2d.push_back({kHost, d, factor_bytes(cr.size(), f)});
    }
    account_transfer_batch(h2d);
  };
  if (waves == 1) load_theta_wave(0);

  for (int j = 0; j < q; ++j) {
    const sparse::Range rows_j = grid.row_ranges[static_cast<std::size_t>(j)];
    if (rows_j.size() == 0) continue;

    // Per-device partial-Hermitian accumulators (zero-initialized).
    std::vector<DeviceBuffer<real_t>> A_acc, B_acc;
    A_acc.reserve(static_cast<std::size_t>(P));
    B_acc.reserve(static_cast<std::size_t>(P));
    for (int d = 0; d < P; ++d) {
      A_acc.emplace_back(*devices_[static_cast<std::size_t>(d)],
                         static_cast<std::size_t>(rows_j.size()) * fsq);
      B_acc.emplace_back(*devices_[static_cast<std::size_t>(d)],
                         static_cast<std::size_t>(rows_j.size()) * f);
    }

    for (int wave = 0; wave < waves; ++wave) {
      if (waves > 1) load_theta_wave(wave);
      std::vector<Transfer> h2d;
      for (int d = 0; d < P; ++d) {
        const int l = wave * P + d;
        if (l >= p) continue;
        h2d.push_back({kHost, d, grid.block(l, j).local.footprint_bytes()});
      }
      account_transfer_batch(h2d);

      for (int d = 0; d < P; ++d) {
        const int l = wave * P + d;
        if (l >= p) continue;
        Device& dev = *devices_[static_cast<std::size_t>(d)];
        const sparse::GridBlock& blk = grid.block(l, j);
        const ChargeGuard r_guard(dev, blk.local.footprint_bytes());
        const double t0 = dev.clock_seconds();
        get_hermitian_block(dev, blk.local, 0, blk.local.rows,
                            theta_parts[static_cast<std::size_t>(d)].data(), f,
                            cfg_.als.lambda, cfg_.als.kernel,
                            A_acc[static_cast<std::size_t>(d)].data(),
                            B_acc[static_cast<std::size_t>(d)].data(),
                            /*accumulate=*/true);
        if (d == 0) profile_.get_hermitian += dev.clock_seconds() - t0;
      }
    }

    // Parallel reduction of the partial Hermitians (Alg. 3 lines 13-16).
    std::vector<real_t*> abufs, bbufs;
    for (int d = 0; d < P; ++d) {
      abufs.push_back(A_acc[static_cast<std::size_t>(d)].data());
      bbufs.push_back(B_acc[static_cast<std::size_t>(d)].data());
    }
    const ReduceResult ra = reduce_across_devices(
        devices_, topo_, abufs, rows_j.size(), f * f, cfg_.reduce);
    const ReduceResult rb = reduce_across_devices(
        devices_, topo_, bbufs, rows_j.size(), f, cfg_.reduce);
    profile_.reduce += ra.modeled_seconds + rb.modeled_seconds;

    // Slice-parallel solve on the owning devices (Alg. 3 line 17).
    std::vector<Transfer> d2h;
    for (int d = 0; d < P; ++d) {
      const sparse::Range owned = ra.owned[static_cast<std::size_t>(d)];
      assert(owned.begin == rb.owned[static_cast<std::size_t>(d)].begin);
      if (owned.size() == 0) continue;
      Device& dev = *devices_[static_cast<std::size_t>(d)];
      const double t0 = dev.clock_seconds();
      solve_rows(dev,
                 A_acc[static_cast<std::size_t>(d)].data() +
                     static_cast<std::size_t>(owned.begin) * fsq,
                 B_acc[static_cast<std::size_t>(d)].data() +
                     static_cast<std::size_t>(owned.begin) * f,
                 owned.size(), out.row(rows_j.begin + owned.begin));
      if (d == 0) profile_.batch_solve += dev.clock_seconds() - t0;
      d2h.push_back({d, kHost, factor_bytes(owned.size(), f)});
    }
    account_transfer_batch(d2h);
  }
  gpusim::sync_devices(devices_);
}

void AlsSolver::solve_rows(Device& dev, real_t* A, real_t* B, idx_t count,
                           real_t* x_out) {
  const int f = cfg_.als.f;
  if (cfg_.als.solve_backend == SolveBackend::Cholesky) {
    batch_solve_block(dev, A, B, count, f, x_out);
  } else {
    batch_solve_block_cg(dev, A, B, count, f, x_out, cfg_.als.cg_max_iters,
                         cfg_.als.cg_tolerance);
  }
}

void AlsSolver::account_transfer_batch(const std::vector<Transfer>& batch) {
  if (batch.empty()) return;
  const double makespan = topo_.makespan_seconds(batch);
  std::vector<bytes_t> in_bytes(devices_.size(), 0);
  std::vector<bytes_t> out_bytes(devices_.size(), 0);
  for (const Transfer& t : batch) {
    if (t.dst != kHost) in_bytes[static_cast<std::size_t>(t.dst)] += t.bytes;
    if (t.src != kHost) out_bytes[static_cast<std::size_t>(t.src)] += t.bytes;
  }
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    if (in_bytes[d] == 0 && out_bytes[d] == 0) continue;
    if (in_bytes[d] != 0) {
      devices_[d]->account_transfer(in_bytes[d], makespan, true, false);
    }
    if (out_bytes[d] != 0) {
      devices_[d]->account_transfer(out_bytes[d],
                                    in_bytes[d] != 0 ? 0.0 : makespan, true,
                                    true);
    }
  }
  profile_.transfer += makespan;
}

eval::ConvergenceHistory AlsSolver::train(int iterations,
                                          const sparse::CooMatrix* train_eval,
                                          const sparse::CooMatrix* test_eval,
                                          const std::string& label) {
  eval::ConvergenceHistory hist;
  hist.label = label;
  auto snapshot = [&](int iter, double wall) {
    eval::ConvergencePoint pt;
    pt.iteration = iter;
    pt.wall_seconds = wall;
    pt.modeled_seconds = modeled_seconds();
    pt.train_rmse = train_eval ? eval::rmse(*train_eval, x_, theta_) : 0.0;
    pt.test_rmse = test_eval ? eval::rmse(*test_eval, x_, theta_) : 0.0;
    hist.add(pt);
  };
  snapshot(0, 0.0);
  double wall_total = 0.0;
  for (int it = 1; it <= iterations; ++it) {
    util::Stopwatch sw;
    run_iteration();
    wall_total += sw.seconds();
    snapshot(it, wall_total);
    if (cfg_.als.verbose) {
      const auto& pt = hist.points.back();
      util::log_info(label, " iter ", it, " wall ", pt.wall_seconds,
                     "s modeled ", pt.modeled_seconds, "s test-rmse ",
                     pt.test_rmse);
    }
  }
  return hist;
}

}  // namespace cumf::core
