#pragma once

// Fault tolerance (§4.4): "During ALS execution we asynchronously checkpoint
// X and Θ generated from the latest iteration into a connected parallel file
// system. When the machine fails, the latest X or Θ (whichever is more
// recent) is used to restart ALS."
//
// The manager double-buffers each factor (current + previous file) and stamps
// every write with its iteration, so a crash mid-write — simulated in the
// tests by truncating or corrupting the current file — falls back to the
// previous consistent snapshot. restore() returns the freshest pair of
// factors that pass their checksums.

#include <optional>
#include <string>

#include "linalg/dense.hpp"

namespace cumf::core {

class CheckpointManager {
 public:
  /// `dir` must exist and be writable.
  explicit CheckpointManager(std::string dir);

  /// Writes the factor, stamped with `iteration`, rotating current→previous.
  void save_x(const linalg::FactorMatrix& x, int iteration);
  void save_theta(const linalg::FactorMatrix& theta, int iteration);

  struct Restored {
    linalg::FactorMatrix x;
    linalg::FactorMatrix theta;
    int x_iteration = -1;
    int theta_iteration = -1;
    /// Resume from min(x_iteration, theta_iteration) completed iterations.
    [[nodiscard]] int resume_iteration() const {
      return x_iteration < theta_iteration ? x_iteration : theta_iteration;
    }
  };

  /// Loads the freshest valid snapshot of both factors, skipping files that
  /// fail checksum validation. Returns nullopt when either factor has no
  /// valid snapshot at all.
  [[nodiscard]] std::optional<Restored> restore() const;

 private:
  void save_one(const std::string& stem, const linalg::FactorMatrix& m,
                int iteration);
  [[nodiscard]] std::optional<std::pair<linalg::FactorMatrix, int>> load_one(
      const std::string& stem) const;

  std::string dir_;
};

}  // namespace cumf::core
