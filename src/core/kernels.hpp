#pragma once

// The two compute phases of ALS update-X (and, symmetrically, update-Θ):
//
//   get_hermitian — for every row u of a CSR block, form
//       A_u = Σ_{r_uv≠0} (θ_v·θ_vᵀ + λI)   and   B_u = Θᵀ·R_{u*}ᵀ
//     (eq. 2). The λ term uses the block-local nonzero count, so partial
//     A_u's computed from column partitions sum to the globally correct
//     weighted-λ Hermitian after reduction (eq. 5).
//
//   batch_solve — solve A_u·x_u = B_u for every u via in-place Cholesky.
//
// Two kernel flavors exist, matching Algorithm 1 (base) and Algorithm 2
// (memory-optimized). They run real arithmetic on the host pool; simulated
// traffic is accounted analytically per launch (see kernel_stats_* below),
// and the CPU code genuinely takes the corresponding fast/slow path (direct
// heap accumulation vs register-tiled accumulation), so both wall and
// modeled time respond to the toggles.

#include "core/als_options.hpp"
#include "gpusim/counters.hpp"
#include "gpusim/device.hpp"
#include "sparse/csr.hpp"
#include "util/types.hpp"

namespace cumf::core {

/// Analytic traffic of get_hermitian over `nz` nonzeros and `rows` rows at
/// dimension f (Table 3's cost model turned into bytes/flops). `cols` is the
/// fixed factor's extent: the average per-column reuse nz/cols sets the
/// texture-cache quality (sparser catalogs benefit less, §5.3); cols = 0
/// assumes perfect reuse.
gpusim::KernelStats hermitian_kernel_stats(nnz_t nz, idx_t rows, int f,
                                           const KernelOptions& opt,
                                           idx_t cols = 0);

/// Analytic traffic of batch_solve over `rows` systems of size f.
gpusim::KernelStats solve_kernel_stats(idx_t rows, int f);

/// Computes A/B for rows [row_begin, row_end) of `R` (a CSR whose column
/// indices address `theta` — θ_v is the f contiguous floats at theta+v*f).
/// A has (row_end-row_begin)·f² entries, B (row_end-row_begin)·f.
/// With accumulate=true the contribution is added to the existing A/B
/// contents instead of overwriting them — this is how the elastic sequential
/// waves of §4.4 fold several logical Θ-partitions through one physical
/// device. Accounts one kernel launch on `dev`.
void get_hermitian_block(gpusim::Device& dev, const sparse::CsrMatrix& R,
                         idx_t row_begin, idx_t row_end, const real_t* theta,
                         int f, real_t lambda, const KernelOptions& opt,
                         real_t* A, real_t* B, bool accumulate = false);

/// Solves the `count` systems produced by get_hermitian_block, writing
/// x_u into x_out (count·f, row-major). A and B are clobbered (in-place
/// solve, §2.2). Returns the number of systems that needed pivot clamping
/// (rows with no ratings produce the zero solution and are not counted).
int batch_solve_block(gpusim::Device& dev, real_t* A, real_t* B, idx_t count,
                      int f, real_t* x_out);

/// Analytic traffic of the CG batch solver at `avg_iters` steps per system.
gpusim::KernelStats solve_cg_kernel_stats(idx_t rows, int f, double avg_iters);

/// CG variant of batch_solve: x_inout provides the warm start (the previous
/// ALS iterate) and receives the solution; A and B are read-only. Returns
/// the total CG iterations taken across all systems.
std::int64_t batch_solve_block_cg(gpusim::Device& dev, const real_t* A,
                                  const real_t* B, idx_t count, int f,
                                  real_t* x_inout, int max_iters,
                                  double tolerance);

}  // namespace cumf::core
