#pragma once

// Cross-device reduction of partial Hermitians (Algorithm 3 lines 13-16 and
// §4.2). Each of the p devices holds a partial buffer of identical length;
// after reduction, device i owns slice i of the fully reduced sum.
//
// Three schemes, in increasing sophistication:
//   SingleDevice — every device ships its whole buffer to device 0, which
//     sums (the strawman of §4.2; the fully reduced result lives on
//     device 0 only).
//   OnePhase — Fig. 5(a): the buffer is cut into p slices; device i collects
//     every other device's slice i, using every in- and out-channel
//     simultaneously (full-duplex PCIe).
//   TwoPhase — Fig. 5(b): slices are first reduced within each socket, and
//     only one partial per slice crosses the (slower) inter-socket link.
//
// The arithmetic is performed for real on the host-resident device buffers;
// the PCIe model prices the transfer schedule and the device clocks advance
// by that makespan plus the add-kernel time.

#include <vector>

#include "gpusim/device.hpp"
#include "gpusim/topology.hpp"
#include "sparse/partition.hpp"
#include "util/types.hpp"

namespace cumf::core {

enum class ReduceScheme { SingleDevice, OnePhase, TwoPhase };

const char* reduce_scheme_name(ReduceScheme scheme);

struct ReduceResult {
  double modeled_seconds = 0.0;  // transfer makespan + add time
  bytes_t bytes_moved = 0;       // total bytes crossing any link
  /// Slice of the reduced buffer owned by each device (by element index).
  std::vector<sparse::Range> owned;
};

/// Reduces p equal-shape buffers (bufs[i] on devices[i]) holding `units`
/// logical units of `unit_elems` contiguous real_t each (for the Hermitian
/// reduction a unit is one row's A_u, unit_elems = f²; slicing respects unit
/// boundaries so each owner can batch-solve its rows directly — `owned` ranges
/// are in units). On return, device i's buffer holds the correct global sum
/// over its owned slice (other regions are unspecified); for SingleDevice,
/// device 0 owns everything. Device clocks are advanced; every device ends
/// at the same simulated time (the reduction is a synchronization point).
ReduceResult reduce_across_devices(const std::vector<gpusim::Device*>& devices,
                                   const gpusim::PcieTopology& topo,
                                   const std::vector<real_t*>& bufs,
                                   idx_t units, int unit_elems,
                                   ReduceScheme scheme);

/// Model-only variant: prices the same transfer schedule and add kernels for
/// `total_elems` reduced elements across p devices WITHOUT touching any data.
/// Used to project reductions at full paper scale (10¹¹-element Hermitians)
/// where materializing buffers is impossible.
double reduce_modeled_seconds(int p, const gpusim::PcieTopology& topo,
                              double total_elems, ReduceScheme scheme,
                              const gpusim::DeviceSpec& spec);

}  // namespace cumf::core
