#include "core/planner.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace cumf::core {

const char* parallel_mode_name(ParallelMode mode) {
  switch (mode) {
    case ParallelMode::SingleDevice: return "single-device";
    case ParallelMode::ModelParallel: return "model-parallel";
    case ParallelMode::DataParallel: return "data-parallel";
  }
  return "?";
}

std::string Plan::describe() const {
  std::ostringstream os;
  os << parallel_mode_name(mode) << " p=" << p << " q=" << q
     << " per-device=" << (per_device_bytes >> 20) << " MiB";
  return os.str();
}

bytes_t eq8_bytes(const PlanInput& in, int p, int q) {
  const auto f = static_cast<double>(in.f);
  const double rows_batch =
      static_cast<double>(in.rows_solved) / q;  // ceil'd below via +1 rows
  const double cols_part = static_cast<double>(in.cols_fixed) / p;
  const double r_block_words =
      2.0 * static_cast<double>(in.nz) / (static_cast<double>(p) * q) +
      rows_batch + 1.0;
  const double words = rows_batch * f          // X(j)
                       + cols_part * f         // Θ(i)
                       + r_block_words         // R(ij)
                       + rows_batch * f * f    // A(j)
                       + rows_batch * f;       // B(j)
  return static_cast<bytes_t>(words * sizeof(real_t));
}

Plan plan_partition(const PlanInput& in) {
  if (in.rows_solved <= 0 || in.cols_fixed <= 0 || in.f <= 0 ||
      in.physical_devices <= 0) {
    throw std::invalid_argument("plan_partition: bad input");
  }
  if (in.capacity <= in.headroom) {
    throw std::runtime_error("plan_partition: headroom exceeds capacity");
  }
  const bytes_t budget = in.capacity - in.headroom;

  const auto max_q = static_cast<int>(std::min<std::int64_t>(
      in.rows_solved, 1 << 20));
  auto smallest_feasible_q = [&](int p) -> int {
    // Doubling then binary search keeps this O(log q) despite huge ranges.
    int lo = 1, hi = 1;
    while (hi <= max_q && eq8_bytes(in, p, hi) > budget) {
      lo = hi + 1;
      hi *= 2;
    }
    if (hi > max_q) {
      if (eq8_bytes(in, p, max_q) > budget) return -1;
      hi = max_q;
    }
    while (lo < hi) {
      const int mid = lo + (hi - lo) / 2;
      if (eq8_bytes(in, p, mid) <= budget) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  };

  // Best practice 1: p = 1 feasible → single device, sequential batches.
  const int q1 = smallest_feasible_q(1);
  if (q1 > 0) {
    Plan plan;
    plan.p = 1;
    plan.q = q1;
    plan.per_device_bytes = eq8_bytes(in, 1, q1);
    if (in.physical_devices == 1) {
      plan.mode = ParallelMode::SingleDevice;
    } else {
      // The fixed factor fits on every device: replicate it and split the
      // rows (Fig. 9). Keep per-device batching from the p=1 analysis.
      plan.mode = ParallelMode::ModelParallel;
    }
    return plan;
  }

  // Best practice 3: start from p with (n·f)/p ≈ C/2, grow until feasible.
  const double fixed_bytes =
      static_cast<double>(in.cols_fixed) * in.f * sizeof(real_t);
  int p = std::max(2, static_cast<int>(fixed_bytes / (static_cast<double>(budget) / 2.0)));
  constexpr int kMaxLogicalP = 4096;
  for (; p <= kMaxLogicalP; ++p) {
    const int q = smallest_feasible_q(p);
    if (q > 0) {
      Plan plan;
      plan.mode = ParallelMode::DataParallel;
      plan.p = p;
      plan.q = q;
      plan.per_device_bytes = eq8_bytes(in, p, q);
      return plan;
    }
  }
  throw std::runtime_error(
      "plan_partition: no (p,q) satisfies eq. 8 — problem requires "
      "out-of-core staging");
}

}  // namespace cumf::core
