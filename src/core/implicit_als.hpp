#pragma once

// Implicit-feedback weighted ALS (Hu, Koren, Volinsky 2008) — the workload
// the paper cites as a key reason to prefer ALS over SGD (§1/§2.1: "ALS has
// advantage when R is made up of implicit ratings and therefore cannot be
// considered sparse"): with implicit data every (u, v) cell carries signal
// (preference 0 with confidence 1 when unobserved), so SGD over nonzeros
// cannot express the objective, while ALS can via the Gram-matrix trick.
//
// Objective: Σ_uv c_uv (p_uv − x_uᵀθ_v)² + λ(Σ‖x_u‖² + Σ‖θ_v‖²), with
// preference p_uv = 1 when r_uv > 0 else 0, confidence c_uv = 1 + α·r_uv.
// Update-X solves
//     (ΘᵀΘ + Θᵀ(C_u − I)Θ + λI) x_u = Θᵀ C_u p_u
// where ΘᵀΘ is ONE precomputed f×f Gram matrix shared by every row, and the
// (C_u − I) correction touches only u's observed items — the same sparse
// per-row kernel shape as explicit MO-ALS, with weighted rank-1 updates.
// Note λ here is plain (Hu-Koren), not degree-weighted like eq. (1).

#include "core/als_options.hpp"
#include "eval/metrics.hpp"
#include "gpusim/device.hpp"
#include "linalg/dense.hpp"
#include "sparse/csr.hpp"

namespace cumf::core {

struct ImplicitAlsOptions {
  int f = 32;
  real_t lambda = 0.05f;
  real_t alpha = 40.0f;  // Hu-Koren confidence slope: c = 1 + α·r
  int iterations = 10;
  KernelOptions kernel;
  idx_t solve_batch = 4096;
  std::uint64_t seed = 42;
};

/// Computes the Gram matrix G = Σ_v θ_v·θ_vᵀ (f×f) over all `n` rows of
/// `theta`, accounting one kernel launch on `dev`.
void gram_kernel(gpusim::Device& dev, const real_t* theta, idx_t n, int f,
                 real_t* G);

/// Weighted get_hermitian for implicit ALS: for rows [row_begin, row_end) of
/// R (values are raw implicit counts), computes
///   A_u = G + λI + Σ_{r_uv>0} α·r_uv·θ_vθ_vᵀ
///   B_u = Σ_{r_uv>0} (1 + α·r_uv)·θ_v
void get_hermitian_implicit(gpusim::Device& dev, const sparse::CsrMatrix& R,
                            idx_t row_begin, idx_t row_end,
                            const real_t* theta, const real_t* G, int f,
                            real_t lambda, real_t alpha,
                            const KernelOptions& opt, real_t* A, real_t* B);

class ImplicitAlsSolver {
 public:
  /// `R` holds raw implicit counts (plays, clicks); `Rt` its transpose.
  ImplicitAlsSolver(gpusim::Device& dev, const sparse::CsrMatrix& R,
                    const sparse::CsrMatrix& Rt, ImplicitAlsOptions opt);

  void run_iteration();
  [[nodiscard]] int iterations_run() const { return iterations_run_; }

  [[nodiscard]] const linalg::FactorMatrix& x() const { return x_; }
  [[nodiscard]] const linalg::FactorMatrix& theta() const { return theta_; }
  [[nodiscard]] double modeled_seconds() const;

 private:
  void update_side(const sparse::CsrMatrix& R, const linalg::FactorMatrix& fixed,
                   linalg::FactorMatrix& out);

  gpusim::Device& dev_;
  const sparse::CsrMatrix& R_;
  const sparse::CsrMatrix& Rt_;
  ImplicitAlsOptions opt_;
  linalg::FactorMatrix x_;
  linalg::FactorMatrix theta_;
  int iterations_run_ = 0;
};

}  // namespace cumf::core
