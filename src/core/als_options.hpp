#pragma once

// Configuration for the cuMF ALS solvers.

#include <cstdint>

#include "util/types.hpp"

namespace cumf::core {

/// Memory-path configuration of the get_hermitian kernel (Algorithm 2's
/// three optimizations, each independently toggleable for the Fig. 7/8
/// ablations).
struct KernelOptions {
  int bin = 20;               // shared-memory staging width, paper uses 10-30
  bool use_registers = true;  // accumulate A_u in registers (Listing 1)
  bool use_texture = true;    // route θ gathers through texture cache
};

/// Backend for the batch_solve phase. Cholesky is the paper's exact
/// O(f³) in-place solver; ConjugateGradient is the approximate O(k·f²)
/// solver the cuMF line later shipped (als_cg) — warm-started from the
/// previous ALS iterate, it reaches ALS-useful accuracy in a few steps.
enum class SolveBackend { Cholesky, ConjugateGradient };

struct AlsOptions {
  int f = 32;                 // latent dimension (paper: 100)
  real_t lambda = 0.05f;      // weighted-λ regularization strength
  int iterations = 10;        // one iteration = update-X + update-Θ
  KernelOptions kernel;
  idx_t solve_batch = 4096;   // rows per get_hermitian/batch_solve wave
  SolveBackend solve_backend = SolveBackend::Cholesky;
  int cg_max_iters = 8;       // CG steps per system (als_cg-style)
  double cg_tolerance = 1e-4;
  std::uint64_t seed = 42;
  bool verbose = false;
};

}  // namespace cumf::core
