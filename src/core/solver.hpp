#pragma once

// The cuMF ALS solver.
//
// One public class covers the paper's three deployment shapes, selected per
// update phase by the eq.-8 planner (or forced via SolverConfig):
//
//   SingleDevice  — MO-ALS (Algorithm 2) on one device, X solved in
//                   sequential row batches;
//   ModelParallel — the fixed factor is replicated on every device and the
//                   solved factor's rows are split across them (the Fig. 9
//                   configuration; no inter-device reduction);
//   DataParallel  — SU-ALS (Algorithm 3): the fixed factor is vertically
//                   partitioned into p pieces, R grid-partitioned p×q, local
//                   Hermitians computed per device and parallel-reduced with
//                   a topology-aware scheme (§4.2), then solved slice-
//                   parallel. A logical p larger than the physical device
//                   count runs in sequential waves (elasticity, §4.4).
//
// Update-X and update-Θ are planned independently — e.g. for a Hugewiki-
// shaped problem, update-X is model-parallel (Θ is tiny) while update-Θ is
// data-parallel (X is huge), exactly as in §5.5.

#include <optional>
#include <string>
#include <vector>

#include "core/als_options.hpp"
#include "core/planner.hpp"
#include "core/reduction.hpp"
#include "eval/metrics.hpp"
#include "gpusim/device.hpp"
#include "gpusim/topology.hpp"
#include "linalg/dense.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/partition.hpp"

namespace cumf::core {

struct SolverConfig {
  AlsOptions als;
  ReduceScheme reduce = ReduceScheme::OnePhase;
  /// Optional plan overrides (tests/ablations); nullopt → eq.-8 planner.
  std::optional<Plan> plan_x;
  std::optional<Plan> plan_t;
  /// Device capacity/headroom fed to the planner. Defaults to the first
  /// device's capacity and the paper's 500 MB ε (scaled if tiny).
  bytes_t planner_headroom = 0;  // 0 → auto
};

/// Cumulative per-phase cost breakdown (modeled seconds).
struct PhaseProfile {
  double get_hermitian = 0.0;
  double batch_solve = 0.0;
  double reduce = 0.0;
  double transfer = 0.0;
  [[nodiscard]] double total() const {
    return get_hermitian + batch_solve + reduce + transfer;
  }
};

class AlsSolver {
 public:
  /// `R` is the m×n training matrix in CSR; `Rt` its transpose (CSR of Rᵀ).
  /// Devices must be numbered 0..P-1 matching the topology.
  AlsSolver(std::vector<gpusim::Device*> devices, gpusim::PcieTopology topo,
            const sparse::CsrMatrix& R, const sparse::CsrMatrix& Rt,
            SolverConfig config);

  [[nodiscard]] const linalg::FactorMatrix& x() const { return x_; }
  [[nodiscard]] const linalg::FactorMatrix& theta() const { return theta_; }
  /// Replaces the factors (checkpoint restore). Shapes must match.
  void set_factors(linalg::FactorMatrix x, linalg::FactorMatrix theta);

  [[nodiscard]] const Plan& plan_x() const { return side_x_.plan; }
  [[nodiscard]] const Plan& plan_theta() const { return side_t_.plan; }

  /// One full ALS iteration: update-X, then update-Θ.
  void run_iteration();
  [[nodiscard]] int iterations_run() const { return iterations_run_; }

  /// Max simulated device clock (the modeled end-to-end training time).
  [[nodiscard]] double modeled_seconds() const;
  [[nodiscard]] const PhaseProfile& profile() const { return profile_; }

  /// Runs `iterations` full iterations, recording train/test RMSE and both
  /// time axes after each. Evaluation cost is excluded from the wall clock.
  eval::ConvergenceHistory train(int iterations,
                                 const sparse::CooMatrix* train_eval,
                                 const sparse::CooMatrix* test_eval,
                                 const std::string& label);

 private:
  struct Side {
    const sparse::CsrMatrix* R = nullptr;  // rows = factor being solved
    Plan plan;
    sparse::GridPartition grid;            // DataParallel only
  };

  Side make_side(const sparse::CsrMatrix& R, const std::optional<Plan>& forced);
  void update_side(const Side& side, const linalg::FactorMatrix& fixed,
                   linalg::FactorMatrix& out);
  void update_single(const Side& side, const linalg::FactorMatrix& fixed,
                     linalg::FactorMatrix& out);
  void update_model_parallel(const Side& side,
                             const linalg::FactorMatrix& fixed,
                             linalg::FactorMatrix& out);
  void update_data_parallel(const Side& side,
                            const linalg::FactorMatrix& fixed,
                            linalg::FactorMatrix& out);

  /// Advances the clocks of all devices appearing in `batch` by the batch's
  /// makespan and records the per-device byte counters.
  void account_transfer_batch(const std::vector<gpusim::Transfer>& batch);

  /// Dispatches batch_solve to the configured backend (Cholesky in-place or
  /// warm-started CG; x_out holds the previous iterate on entry either way).
  void solve_rows(gpusim::Device& dev, real_t* A, real_t* B, idx_t count,
                  real_t* x_out);

  std::vector<gpusim::Device*> devices_;
  gpusim::PcieTopology topo_;
  SolverConfig cfg_;
  Side side_x_;
  Side side_t_;
  linalg::FactorMatrix x_;
  linalg::FactorMatrix theta_;
  PhaseProfile profile_;
  int iterations_run_ = 0;
  // First phase ever must load the fixed factor from host memory; every
  // later phase finds it device-resident (it was just computed there), so
  // only slice exchange between devices is charged. This mirrors cuMF
  // keeping X and Θ on the GPUs across the whole run.
  bool cold_start_ = true;
};

}  // namespace cumf::core
