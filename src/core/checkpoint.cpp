#include "core/checkpoint.hpp"

#include <cstdint>
#include <cstring>
#include <filesystem>

#include "util/binary_io.hpp"
#include "util/log.hpp"

namespace cumf::core {

namespace {
constexpr std::uint32_t kCkptTag = 0x434b5054;  // "CKPT"

std::vector<std::byte> stamp(const linalg::FactorMatrix& m, int iteration) {
  const std::vector<std::byte> body = linalg::serialize_factors(m);
  std::vector<std::byte> payload(sizeof(std::int32_t) + body.size());
  const auto it32 = static_cast<std::int32_t>(iteration);
  std::memcpy(payload.data(), &it32, sizeof(it32));
  std::memcpy(payload.data() + sizeof(it32), body.data(), body.size());
  return payload;
}

std::pair<linalg::FactorMatrix, int> unstamp(
    const std::vector<std::byte>& payload) {
  if (payload.size() < sizeof(std::int32_t)) {
    throw std::runtime_error("checkpoint payload truncated");
  }
  std::int32_t iteration = 0;
  std::memcpy(&iteration, payload.data(), sizeof(iteration));
  return {linalg::deserialize_factors(payload.data() + sizeof(iteration),
                                      payload.size() - sizeof(iteration)),
          iteration};
}
}  // namespace

CheckpointManager::CheckpointManager(std::string dir) : dir_(std::move(dir)) {}

void CheckpointManager::save_one(const std::string& stem,
                                 const linalg::FactorMatrix& m,
                                 int iteration) {
  namespace fs = std::filesystem;
  const fs::path cur = fs::path(dir_) / (stem + ".ckpt");
  const fs::path prev = fs::path(dir_) / (stem + ".prev.ckpt");

  // Stage the full replacement first — a failed write (disk full) costs
  // nothing, both existing snapshots survive. Only then rotate current to
  // .prev (best effort — a concurrent saver may have rotated it already)
  // and publish the staged file with one atomic rename. A watcher daemon
  // polling this directory can therefore never load a torn current file:
  // in the brief rotate→publish window it falls back to .prev, and
  // concurrent savers each publish through their own unique temp file.
  const std::string tmp =
      util::stage_blob(cur.string(), kCkptTag, stamp(m, iteration));
  std::error_code ec;
  fs::rename(cur, prev, ec);
  fs::rename(tmp, cur, ec);
  if (ec) {
    std::error_code rm;
    fs::remove(tmp, rm);
    throw std::runtime_error("checkpoint publish failed: " + ec.message());
  }
}

void CheckpointManager::save_x(const linalg::FactorMatrix& x, int iteration) {
  save_one("x", x, iteration);
}

void CheckpointManager::save_theta(const linalg::FactorMatrix& theta,
                                   int iteration) {
  save_one("theta", theta, iteration);
}

std::optional<std::pair<linalg::FactorMatrix, int>> CheckpointManager::load_one(
    const std::string& stem) const {
  namespace fs = std::filesystem;
  for (const char* suffix : {".ckpt", ".prev.ckpt"}) {
    const fs::path path = fs::path(dir_) / (stem + suffix);
    if (!fs::exists(path)) continue;
    try {
      return unstamp(util::read_blob(path.string(), kCkptTag));
    } catch (const std::exception& e) {
      util::log_warn("checkpoint ", path.string(), " unreadable (", e.what(),
                     "), trying previous");
    }
  }
  return std::nullopt;
}

std::optional<CheckpointManager::Restored> CheckpointManager::restore() const {
  auto x = load_one("x");
  auto theta = load_one("theta");
  if (!x || !theta) return std::nullopt;
  Restored r{std::move(x->first), std::move(theta->first), x->second,
             theta->second};
  return r;
}

}  // namespace cumf::core
