#include "core/ooc.hpp"

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "sparse/io.hpp"
#include "util/stopwatch.hpp"

namespace cumf::core {

namespace fs = std::filesystem;

OocBlockStore OocBlockStore::create(const std::string& dir,
                                    const sparse::GridPartition& part) {
  fs::create_directories(dir);
  OocBlockStore store(dir, part.p, part.q);
  for (int i = 0; i < part.p; ++i) {
    for (int j = 0; j < part.q; ++j) {
      sparse::save_csr(store.block_path(i, j), part.block(i, j).local);
    }
  }
  std::ofstream manifest(fs::path(dir) / "manifest.txt");
  if (!manifest) {
    throw std::runtime_error("OocBlockStore: cannot write manifest in " + dir);
  }
  manifest << part.p << ' ' << part.q << '\n';
  return store;
}

OocBlockStore::OocBlockStore(const std::string& dir) : dir_(dir) {
  std::ifstream manifest(fs::path(dir) / "manifest.txt");
  if (!manifest || !(manifest >> p_ >> q_) || p_ <= 0 || q_ <= 0) {
    throw std::runtime_error("OocBlockStore: missing/bad manifest in " + dir);
  }
}

std::string OocBlockStore::block_path(int i, int j) const {
  return (fs::path(dir_) / ("block_" + std::to_string(i) + "_" +
                            std::to_string(j) + ".csr"))
      .string();
}

sparse::CsrMatrix OocBlockStore::load_block(int i, int j) const {
  if (i < 0 || i >= p_ || j < 0 || j >= q_) {
    throw std::out_of_range("OocBlockStore::load_block: bad block index");
  }
  return sparse::load_csr(block_path(i, j));
}

OocPrefetcher::OocPrefetcher(const OocBlockStore& store,
                             std::vector<std::pair<int, int>> schedule)
    : store_(store), schedule_(std::move(schedule)) {
  if (!schedule_.empty()) {
    const auto [i, j] = schedule_[0];
    inflight_ = std::async(std::launch::async,
                           [this, i, j] { return store_.load_block(i, j); });
  }
}

sparse::CsrMatrix OocPrefetcher::next() {
  if (!has_next()) {
    throw std::out_of_range("OocPrefetcher::next: schedule exhausted");
  }
  util::Stopwatch sw;
  sparse::CsrMatrix block = inflight_.get();
  stall_seconds_ += sw.seconds();
  ++at_;
  if (at_ < schedule_.size()) {
    const auto [i, j] = schedule_[at_];
    inflight_ = std::async(std::launch::async,
                           [this, i, j] { return store_.load_block(i, j); });
  }
  return block;
}

}  // namespace cumf::core
