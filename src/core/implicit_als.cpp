#include "core/implicit_als.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <mutex>
#include <vector>

#include "core/kernels.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/hermitian.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace cumf::core {

void gram_kernel(gpusim::Device& dev, const real_t* theta, idx_t n, int f,
                 real_t* G) {
  const std::size_t fsq = static_cast<std::size_t>(f) * f;
  std::memset(G, 0, fsq * sizeof(real_t));
  std::mutex mu;
  util::parallel_for_chunks(dev.pool(), 0, n, [&](nnz_t lo, nnz_t hi) {
    std::vector<real_t> local(fsq, 0.0f);
    for (nnz_t v = lo; v < hi; ++v) {
      linalg::rank1_update_global(local.data(),
                                  theta + static_cast<std::size_t>(v) * f, f);
    }
    std::lock_guard lock(mu);
    for (std::size_t e = 0; e < fsq; ++e) G[e] += local[e];
  });

  gpusim::KernelStats s;
  s.flops = static_cast<double>(n) * f * f * 2.0;
  s.global_read = static_cast<bytes_t>(n) * f * sizeof(real_t);
  s.global_write = fsq * sizeof(real_t);
  dev.account_kernel(s);
}

void get_hermitian_implicit(gpusim::Device& dev, const sparse::CsrMatrix& R,
                            idx_t row_begin, idx_t row_end,
                            const real_t* theta, const real_t* G, int f,
                            real_t lambda, real_t alpha,
                            const KernelOptions& opt, real_t* A, real_t* B) {
  const std::size_t fsq = static_cast<std::size_t>(f) * f;
  const int bin = std::max(1, opt.bin);

  util::parallel_for_chunks(
      dev.pool(), row_begin, row_end, [&](nnz_t lo, nnz_t hi) {
        std::vector<real_t> bin_buf(static_cast<std::size_t>(bin) * f);
        std::vector<real_t> a_local(fsq);
        std::vector<real_t> b_local(static_cast<std::size_t>(f));

        for (nnz_t u = lo; u < hi; ++u) {
          const auto local = static_cast<std::size_t>(u - row_begin);
          real_t* a_out = A + local * fsq;
          real_t* b_out = B + local * static_cast<std::size_t>(f);
          real_t* a_acc = opt.use_registers ? a_local.data() : a_out;
          // Seed with the shared Gram matrix plus plain-λ diagonal.
          std::memcpy(a_acc, G, fsq * sizeof(real_t));
          linalg::add_diagonal(a_acc, lambda, f);
          std::memset(b_local.data(), 0,
                      static_cast<std::size_t>(f) * sizeof(real_t));

          const auto cols = R.row_cols(static_cast<idx_t>(u));
          const auto vals = R.row_vals(static_cast<idx_t>(u));
          std::size_t k = 0;
          while (k < cols.size()) {
            const int cnt =
                static_cast<int>(std::min<std::size_t>(bin, cols.size() - k));
            for (int c = 0; c < cnt; ++c) {
              const real_t* tv =
                  theta + static_cast<std::size_t>(cols[k + static_cast<std::size_t>(c)]) * f;
              const real_t w = alpha * vals[k + static_cast<std::size_t>(c)];
              real_t* staged = bin_buf.data() + static_cast<std::size_t>(c) * f;
              // B wants (1 + w)·θ with the raw column; A wants w·θθᵀ, which
              // the rank-1 kernel gets by staging √w·θ.
              linalg::axpy(b_local.data(), real_t{1} + w, tv, f);
              const real_t root = std::sqrt(std::max(real_t{0}, w));
              for (int i = 0; i < f; ++i) staged[i] = root * tv[i];
            }
            if (opt.use_registers) {
              linalg::rank1_accumulate_registers(a_acc, bin_buf.data(), cnt, f);
            } else {
              linalg::rank1_accumulate_global(a_acc, bin_buf.data(), cnt, f);
            }
            k += static_cast<std::size_t>(cnt);
          }
          if (opt.use_registers) {
            std::memcpy(a_out, a_acc, fsq * sizeof(real_t));
          }
          std::memcpy(b_out, b_local.data(),
                      static_cast<std::size_t>(f) * sizeof(real_t));
        }
      });

  const nnz_t nz = R.row_ptr[static_cast<std::size_t>(row_end)] -
                   R.row_ptr[static_cast<std::size_t>(row_begin)];
  auto stats = hermitian_kernel_stats(nz, row_end - row_begin, f, opt, R.cols);
  // Extra traffic vs the explicit kernel: reading G once per row.
  stats.global_read += static_cast<bytes_t>(row_end - row_begin) * fsq *
                       sizeof(real_t);
  dev.account_kernel(stats);
}

ImplicitAlsSolver::ImplicitAlsSolver(gpusim::Device& dev,
                                     const sparse::CsrMatrix& R,
                                     const sparse::CsrMatrix& Rt,
                                     ImplicitAlsOptions opt)
    : dev_(dev), R_(R), Rt_(Rt), opt_(opt), x_(R.rows, opt.f),
      theta_(R.cols, opt.f) {
  if (R.rows != Rt.cols || R.cols != Rt.rows || R.nnz() != Rt.nnz()) {
    throw std::invalid_argument("ImplicitAlsSolver: R/Rt shape mismatch");
  }
  util::Rng rng(opt_.seed);
  const auto scale =
      static_cast<real_t>(1.0 / std::sqrt(static_cast<double>(opt_.f)));
  x_.randomize(rng, scale);
  theta_.randomize(rng, scale);
}

double ImplicitAlsSolver::modeled_seconds() const {
  return dev_.clock_seconds();
}

void ImplicitAlsSolver::update_side(const sparse::CsrMatrix& R,
                                    const linalg::FactorMatrix& fixed,
                                    linalg::FactorMatrix& out) {
  const int f = opt_.f;
  const std::size_t fsq = static_cast<std::size_t>(f) * f;
  std::vector<real_t> G(fsq);
  gram_kernel(dev_, fixed.data().data(), fixed.rows(), f, G.data());

  const idx_t bs = std::max<idx_t>(1, std::min(R.rows, opt_.solve_batch));
  std::vector<real_t> A(static_cast<std::size_t>(bs) * fsq);
  std::vector<real_t> B(static_cast<std::size_t>(bs) * f);
  for (idx_t b = 0; b < R.rows; b += bs) {
    const idx_t e = std::min<idx_t>(R.rows, b + bs);
    get_hermitian_implicit(dev_, R, b, e, fixed.data().data(), G.data(), f,
                           opt_.lambda, opt_.alpha, opt_.kernel, A.data(),
                           B.data());
    batch_solve_block(dev_, A.data(), B.data(), e - b, f, out.row(b));
  }
}

void ImplicitAlsSolver::run_iteration() {
  update_side(R_, theta_, x_);
  update_side(Rt_, x_, theta_);
  ++iterations_run_;
}

}  // namespace cumf::core
