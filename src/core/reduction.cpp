#include "core/reduction.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace cumf::core {

namespace {

using gpusim::Device;
using gpusim::PcieTopology;
using gpusim::Transfer;

gpusim::KernelStats add_stats(double adds) {
  gpusim::KernelStats s;
  s.flops = adds;
  s.global_read = static_cast<bytes_t>(adds * 2) * sizeof(real_t);
  s.global_write = static_cast<bytes_t>(adds) * sizeof(real_t);
  return s;
}

/// Sums bufs[*] over the unit range into bufs[owner]. Summation order is
/// fixed (device 0 first), so every scheme produces bit-identical values.
void sum_units(const std::vector<real_t*>& bufs, const sparse::Range& units,
               int unit_elems, std::size_t owner) {
  real_t* out = bufs[owner];
  const std::size_t lo = static_cast<std::size_t>(units.begin) *
                         static_cast<std::size_t>(unit_elems);
  const std::size_t hi = static_cast<std::size_t>(units.end) *
                         static_cast<std::size_t>(unit_elems);
  for (std::size_t e = lo; e < hi; ++e) {
    real_t acc = bufs[0][e];
    for (std::size_t d = 1; d < bufs.size(); ++d) {
      acc += bufs[d][e];
    }
    out[e] = acc;
  }
}

bytes_t total_bytes(const std::vector<Transfer>& batch) {
  bytes_t total = 0;
  for (const auto& t : batch) total += t.bytes;
  return total;
}

}  // namespace

const char* reduce_scheme_name(ReduceScheme scheme) {
  switch (scheme) {
    case ReduceScheme::SingleDevice: return "single-device";
    case ReduceScheme::OnePhase: return "one-phase";
    case ReduceScheme::TwoPhase: return "two-phase";
  }
  return "?";
}

ReduceResult reduce_across_devices(const std::vector<Device*>& devices,
                                   const PcieTopology& topo,
                                   const std::vector<real_t*>& bufs,
                                   idx_t units, int unit_elems,
                                   ReduceScheme scheme) {
  const auto p = devices.size();
  if (p == 0 || bufs.size() != p) {
    throw std::invalid_argument("reduce_across_devices: device/buffer mismatch");
  }
  ReduceResult result;
  result.owned.assign(p, sparse::Range{0, 0});

  if (p == 1) {
    result.owned[0] = sparse::Range{0, units};
    return result;  // nothing to move or add
  }

  // Reduction is a synchronization point: align clocks first.
  gpusim::sync_devices(devices);
  const double t0 = devices[0]->clock_seconds();
  const bytes_t unit_bytes = static_cast<bytes_t>(unit_elems) * sizeof(real_t);
  const double unit_adds = static_cast<double>(unit_elems);

  if (scheme == ReduceScheme::SingleDevice) {
    std::vector<Transfer> batch;
    const bytes_t full = static_cast<bytes_t>(units) * unit_bytes;
    for (std::size_t src = 1; src < p; ++src) {
      batch.push_back({static_cast<int>(src), 0, full});
    }
    const double makespan = topo.makespan_seconds(batch);
    for (std::size_t d = 0; d < p; ++d) {
      devices[d]->account_transfer(d == 0 ? 0 : full, makespan, false, d != 0);
    }
    result.owned[0] = sparse::Range{0, units};
    sum_units(bufs, result.owned[0], unit_elems, 0);
    devices[0]->account_kernel(add_stats(static_cast<double>(p - 1) *
                                         static_cast<double>(units) * unit_adds));
    result.bytes_moved = total_bytes(batch);
  } else {
    const auto slices = sparse::split_even(units, static_cast<int>(p));
    for (std::size_t i = 0; i < p; ++i) result.owned[i] = slices[i];

    if (scheme == ReduceScheme::OnePhase) {
      // Fig. 5(a): all-to-all slice exchange on full-duplex channels.
      std::vector<Transfer> batch;
      for (std::size_t owner = 0; owner < p; ++owner) {
        const bytes_t b = static_cast<bytes_t>(slices[owner].size()) * unit_bytes;
        for (std::size_t src = 0; src < p; ++src) {
          if (src != owner) {
            batch.push_back({static_cast<int>(src), static_cast<int>(owner), b});
          }
        }
      }
      const double makespan = topo.makespan_seconds(batch);
      for (std::size_t d = 0; d < p; ++d) {
        devices[d]->advance_clock(makespan);
        devices[d]->account_kernel(
            add_stats(static_cast<double>(p - 1) *
                      static_cast<double>(slices[d].size()) * unit_adds));
      }
      for (std::size_t owner = 0; owner < p; ++owner) {
        sum_units(bufs, slices[owner], unit_elems, owner);
      }
      result.bytes_moved = total_bytes(batch);
    } else {
      // Fig. 5(b): phase 1 reduces each slice within every socket; phase 2
      // moves exactly one partial per (slice, foreign socket) across.
      std::vector<std::vector<int>> socket_members;
      for (std::size_t d = 0; d < p; ++d) {
        const int s = topo.socket_of(static_cast<int>(d));
        if (static_cast<std::size_t>(s) >= socket_members.size()) {
          socket_members.resize(static_cast<std::size_t>(s) + 1);
        }
        socket_members[static_cast<std::size_t>(s)].push_back(static_cast<int>(d));
      }

      std::vector<Transfer> phase1, phase2;
      std::vector<double> adds(p, 0.0);
      for (std::size_t owner = 0; owner < p; ++owner) {
        const bytes_t b = static_cast<bytes_t>(slices[owner].size()) * unit_bytes;
        const double slice_adds =
            static_cast<double>(slices[owner].size()) * unit_adds;
        const int owner_socket = topo.socket_of(static_cast<int>(owner));
        for (std::size_t s = 0; s < socket_members.size(); ++s) {
          const auto& members = socket_members[s];
          if (members.empty()) continue;
          // Aggregator: the owner within its own socket; round-robin over
          // the socket's members otherwise to balance channels over slices.
          int agg;
          if (static_cast<int>(s) == owner_socket) {
            agg = static_cast<int>(owner);
          } else {
            agg = members[owner % members.size()];
          }
          for (const int d : members) {
            if (d != agg) {
              phase1.push_back({d, agg, b});
              adds[static_cast<std::size_t>(agg)] += slice_adds;
            }
          }
          if (static_cast<int>(s) != owner_socket) {
            phase2.push_back({agg, static_cast<int>(owner), b});
            adds[owner] += slice_adds;
          }
        }
      }
      const double makespan =
          topo.makespan_seconds(phase1) + topo.makespan_seconds(phase2);
      for (std::size_t d = 0; d < p; ++d) {
        devices[d]->advance_clock(makespan);
        devices[d]->account_kernel(add_stats(adds[d]));
      }
      for (std::size_t owner = 0; owner < p; ++owner) {
        sum_units(bufs, slices[owner], unit_elems, owner);
      }
      result.bytes_moved = total_bytes(phase1) + total_bytes(phase2);
    }
  }

  gpusim::sync_devices(devices);
  result.modeled_seconds = devices[0]->clock_seconds() - t0;
  return result;
}

double reduce_modeled_seconds(int p, const gpusim::PcieTopology& topo,
                              double total_elems, ReduceScheme scheme,
                              const gpusim::DeviceSpec& spec) {
  if (p <= 1) return 0.0;
  const double total_bytes = total_elems * sizeof(real_t);
  const double slice_bytes = total_bytes / p;
  const auto b = [](double v) { return static_cast<bytes_t>(v); };
  Device model_dev(0, spec);

  std::vector<Transfer> batch;
  double adds_per_dev = 0.0;
  double makespan = 0.0;
  switch (scheme) {
    case ReduceScheme::SingleDevice: {
      for (int src = 1; src < p; ++src) batch.push_back({src, 0, b(total_bytes)});
      makespan = topo.makespan_seconds(batch);
      adds_per_dev = static_cast<double>(p - 1) * total_elems;  // all on dev 0
      break;
    }
    case ReduceScheme::OnePhase: {
      for (int owner = 0; owner < p; ++owner) {
        for (int src = 0; src < p; ++src) {
          if (src != owner) batch.push_back({src, owner, b(slice_bytes)});
        }
      }
      makespan = topo.makespan_seconds(batch);
      adds_per_dev = static_cast<double>(p - 1) * total_elems / p;
      break;
    }
    case ReduceScheme::TwoPhase: {
      std::vector<std::vector<int>> members;
      for (int d = 0; d < p; ++d) {
        const int s = topo.socket_of(d);
        if (static_cast<std::size_t>(s) >= members.size()) {
          members.resize(static_cast<std::size_t>(s) + 1);
        }
        members[static_cast<std::size_t>(s)].push_back(d);
      }
      std::vector<Transfer> phase1, phase2;
      for (int owner = 0; owner < p; ++owner) {
        const int os = topo.socket_of(owner);
        for (std::size_t s = 0; s < members.size(); ++s) {
          const auto& mem = members[s];
          if (mem.empty()) continue;
          const int agg = (static_cast<int>(s) == os)
                              ? owner
                              : mem[static_cast<std::size_t>(owner) % mem.size()];
          for (const int d : mem) {
            if (d != agg) phase1.push_back({d, agg, b(slice_bytes)});
          }
          if (static_cast<int>(s) != os) phase2.push_back({agg, owner, b(slice_bytes)});
        }
      }
      makespan = topo.makespan_seconds(phase1) + topo.makespan_seconds(phase2);
      // Each slice needs p-1 adds in total, balanced across aggregators.
      adds_per_dev = static_cast<double>(p - 1) * total_elems / p;
      break;
    }
  }
  gpusim::KernelStats adds = add_stats(adds_per_dev);
  return makespan + model_dev.model_kernel_seconds(adds);
}

}  // namespace cumf::core
