#pragma once

// Out-of-core staging (§4.4): "cuMF first generates a partition scheme,
// planning which partition to send to which GPU in what order. With this
// knowledge in advance, cuMF uses separate CPU threads to preload data from
// disk to host memory [...] By this proactive and asynchronous data loading,
// we manage to handle out-of-core problems with close-to-zero data loading
// time except for the first load."
//
// OocBlockStore persists a grid partition's blocks to disk; OocPrefetcher
// walks a known (i, j) schedule, always reading the next block on a
// background thread while the caller computes on the current one.

#include <future>
#include <string>
#include <utility>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/partition.hpp"

namespace cumf::core {

class OocBlockStore {
 public:
  /// Writes every block of `part` under `dir` (created if missing) plus a
  /// manifest. The GridPartition's block payloads can be freed afterwards.
  static OocBlockStore create(const std::string& dir,
                              const sparse::GridPartition& part);

  /// Opens an existing store (reads the manifest).
  explicit OocBlockStore(const std::string& dir);

  [[nodiscard]] int p() const { return p_; }
  [[nodiscard]] int q() const { return q_; }

  /// Loads block (i, j) from disk (synchronous).
  [[nodiscard]] sparse::CsrMatrix load_block(int i, int j) const;

  [[nodiscard]] std::string block_path(int i, int j) const;

 private:
  OocBlockStore(std::string dir, int p, int q)
      : dir_(std::move(dir)), p_(p), q_(q) {}

  std::string dir_;
  int p_ = 0;
  int q_ = 0;
};

/// Double-buffered read-ahead over a fixed schedule of blocks.
class OocPrefetcher {
 public:
  OocPrefetcher(const OocBlockStore& store,
                std::vector<std::pair<int, int>> schedule);

  [[nodiscard]] bool has_next() const { return at_ < schedule_.size(); }

  /// The block for the current schedule position (waits for the background
  /// read, then kicks off the next one).
  sparse::CsrMatrix next();

  /// Seconds the caller spent blocked on disk (the paper's claim is that
  /// this stays near zero after the first load).
  [[nodiscard]] double stall_seconds() const { return stall_seconds_; }

 private:
  const OocBlockStore& store_;
  std::vector<std::pair<int, int>> schedule_;
  std::size_t at_ = 0;
  std::future<sparse::CsrMatrix> inflight_;
  double stall_seconds_ = 0.0;
};

}  // namespace cumf::core
