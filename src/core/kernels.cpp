#include "core/kernels.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <vector>

#include "linalg/cg.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/hermitian.hpp"
#include "util/thread_pool.hpp"

namespace cumf::core {

namespace {
constexpr bytes_t kReal = sizeof(real_t);

bool is_base_path(const KernelOptions& opt) {
  return opt.bin <= 1 && !opt.use_registers;
}
}  // namespace

gpusim::KernelStats hermitian_kernel_stats(nnz_t nz, idx_t rows, int f,
                                           const KernelOptions& opt,
                                           idx_t cols) {
  gpusim::KernelStats s;
  const double dnz = static_cast<double>(nz);
  const double df = static_cast<double>(f);
  // Table 3: A costs Nz·f(f+1)/2 multiplies (+ as many adds); B costs
  // Nz + Nz·f (+ per-row tail, folded into the rows term).
  s.flops = dnz * df * (df + 1.0) + 2.0 * dnz * df +
            static_cast<double>(rows) * df;
  // CSR traversal: values + column indices, plus row pointers.
  s.global_read = static_cast<bytes_t>(nz) * (kReal + sizeof(idx_t)) +
                  static_cast<bytes_t>(rows) * sizeof(nnz_t);
  // B is written once per row.
  s.global_write = static_cast<bytes_t>(rows) * f * kReal;

  const bytes_t theta_bytes = static_cast<bytes_t>(nz) * f * kReal;
  const bytes_t product_bytes = static_cast<bytes_t>(nz) * f * f * kReal;
  const bytes_t a_bytes =
      static_cast<bytes_t>(rows) * f * f * kReal;

  s.gathered_via_texture = opt.use_texture;
  if (cols > 0 && nz > 0) {
    const double reuse = static_cast<double>(nz) / cols;
    s.gather_quality = std::clamp(0.5 + 0.07 * std::log(reuse + 1.0), 0.5, 1.0);
  }
  if (is_base_path(opt)) {
    // Algorithm 1: every multiplicand is fetched from (gathered) global
    // memory and every partial product read-modify-writes A_u in global.
    s.gathered_read = product_bytes + theta_bytes;  // A products + B axpy
    s.global_read += product_bytes;                 // A RMW reads
    s.global_write += product_bytes;                // A RMW writes
    return s;
  }

  // Algorithm 2: θ columns staged once into shared memory, products read
  // from shared; register accumulation flushes A once per row.
  s.gathered_read = theta_bytes;
  s.shared_write = theta_bytes;
  if (opt.use_registers) {
    // 4x4 register tiles reuse each staged element across a tile row/col.
    s.shared_read = product_bytes / 2;
    s.global_write += a_bytes;  // single flush per row (Listing 1)
  } else {
    // Without register accumulation every partial product read-modify-
    // writes A_u. A_u is only f²·4 B and stays hot, so those RMWs are
    // served at L1/shared speed rather than DRAM — but unlike the register
    // path they are real traffic: one read + one write per product on top
    // of reading the staged operands.
    s.shared_read = 2 * product_bytes;   // staged operands + A reads
    s.shared_write = theta_bytes + product_bytes;  // staging + A writes
    s.global_write += a_bytes;
  }
  return s;
}

gpusim::KernelStats solve_kernel_stats(idx_t rows, int f) {
  gpusim::KernelStats s;
  const double df = static_cast<double>(f);
  // Cholesky factor ~ f³/3 multiply-adds, two triangular solves ~ f² each.
  s.flops = static_cast<double>(rows) * (2.0 * df * df * df / 3.0 + 2.0 * df * df);
  s.global_read = static_cast<bytes_t>(rows) * (f * f + f) * kReal;
  s.global_write = static_cast<bytes_t>(rows) * f * kReal;
  return s;
}

void get_hermitian_block(gpusim::Device& dev, const sparse::CsrMatrix& R,
                         idx_t row_begin, idx_t row_end, const real_t* theta,
                         int f, real_t lambda, const KernelOptions& opt,
                         real_t* A, real_t* B, bool accumulate) {
  const std::size_t fsq = static_cast<std::size_t>(f) * f;
  const int bin = std::max(1, opt.bin);
  const bool base_path = is_base_path(opt);

  util::parallel_for_chunks(
      dev.pool(), row_begin, row_end, [&](nnz_t lo, nnz_t hi) {
        // Per-worker scratch: the "shared memory" bin and the "register"
        // accumulator tile target.
        std::vector<real_t> bin_buf(static_cast<std::size_t>(bin) * f);
        std::vector<real_t> a_local(opt.use_registers ? fsq : 0);
        std::vector<real_t> b_local(static_cast<std::size_t>(f));

        for (nnz_t u = lo; u < hi; ++u) {
          const auto local = static_cast<std::size_t>(u - row_begin);
          real_t* a_out = A + local * fsq;
          real_t* b_out = B + local * static_cast<std::size_t>(f);
          real_t* a_acc = opt.use_registers ? a_local.data() : a_out;
          if (opt.use_registers) {
            std::memset(a_acc, 0, fsq * sizeof(real_t));
          } else if (!accumulate) {
            std::memset(a_out, 0, fsq * sizeof(real_t));
          }
          std::memset(b_local.data(), 0, static_cast<std::size_t>(f) * sizeof(real_t));

          const auto cols = R.row_cols(static_cast<idx_t>(u));
          const auto vals = R.row_vals(static_cast<idx_t>(u));

          if (base_path) {
            // Algorithm 1: no staging, accumulate straight into A_u.
            for (std::size_t k = 0; k < cols.size(); ++k) {
              const real_t* tv = theta + static_cast<std::size_t>(cols[k]) * f;
              linalg::rank1_update_global(a_acc, tv, f);
              linalg::axpy(b_local.data(), vals[k], tv, f);
            }
          } else {
            // Algorithm 2 lines 5-10: stage `bin` columns, contract, repeat.
            std::size_t k = 0;
            while (k < cols.size()) {
              const int cnt =
                  static_cast<int>(std::min<std::size_t>(bin, cols.size() - k));
              for (int c = 0; c < cnt; ++c) {
                const real_t* tv =
                    theta + static_cast<std::size_t>(cols[k + static_cast<std::size_t>(c)]) * f;
                std::memcpy(bin_buf.data() + static_cast<std::size_t>(c) * f, tv,
                            static_cast<std::size_t>(f) * sizeof(real_t));
                linalg::axpy(b_local.data(), vals[k + static_cast<std::size_t>(c)],
                             bin_buf.data() + static_cast<std::size_t>(c) * f, f);
              }
              if (opt.use_registers) {
                linalg::rank1_accumulate_registers(a_acc, bin_buf.data(), cnt, f);
              } else {
                linalg::rank1_accumulate_global(a_acc, bin_buf.data(), cnt, f);
              }
              k += static_cast<std::size_t>(cnt);
            }
          }

          // Weighted-λ: block-local count, so partial Hermitians reduce to
          // the global n_{x_u}·λ·I (eq. 5).
          linalg::add_diagonal(a_acc, lambda * static_cast<real_t>(cols.size()), f);
          if (opt.use_registers) {
            // Alg. 2 line 11: one flush from registers to global memory.
            if (accumulate) {
              for (std::size_t e = 0; e < fsq; ++e) a_out[e] += a_acc[e];
            } else {
              std::memcpy(a_out, a_acc, fsq * sizeof(real_t));
            }
          }
          if (accumulate) {
            for (int e = 0; e < f; ++e) b_out[e] += b_local[static_cast<std::size_t>(e)];
          } else {
            std::memcpy(b_out, b_local.data(),
                        static_cast<std::size_t>(f) * sizeof(real_t));
          }
        }
      });

  nnz_t nz = R.row_ptr[static_cast<std::size_t>(row_end)] -
             R.row_ptr[static_cast<std::size_t>(row_begin)];
  dev.account_kernel(
      hermitian_kernel_stats(nz, row_end - row_begin, f, opt, R.cols));
}

int batch_solve_block(gpusim::Device& dev, real_t* A, real_t* B, idx_t count,
                      int f, real_t* x_out) {
  const std::size_t fsq = static_cast<std::size_t>(f) * f;
  std::atomic<int> clamped{0};

  util::parallel_for_chunks(dev.pool(), 0, count, [&](nnz_t lo, nnz_t hi) {
    int local_clamped = 0;
    for (nnz_t u = lo; u < hi; ++u) {
      real_t* a = A + static_cast<std::size_t>(u) * fsq;
      real_t* b = B + static_cast<std::size_t>(u) * static_cast<std::size_t>(f);
      // A row with no ratings leaves A_u == 0: by convention x_u = 0.
      bool empty = true;
      for (int i = 0; i < f && empty; ++i) {
        empty = (a[static_cast<std::size_t>(i) * f + i] == real_t{0});
      }
      real_t* x = x_out + static_cast<std::size_t>(u) * static_cast<std::size_t>(f);
      if (empty) {
        std::memset(x, 0, static_cast<std::size_t>(f) * sizeof(real_t));
        continue;
      }
      const linalg::CholeskyResult res = linalg::solve_spd_inplace(a, b, f);
      if (!res.ok) ++local_clamped;
      std::memcpy(x, b, static_cast<std::size_t>(f) * sizeof(real_t));
    }
    clamped.fetch_add(local_clamped);
  });

  dev.account_kernel(solve_kernel_stats(count, f));
  return clamped.load();
}

gpusim::KernelStats solve_cg_kernel_stats(idx_t rows, int f,
                                          double avg_iters) {
  gpusim::KernelStats s;
  const double df = static_cast<double>(f);
  // Each CG step is one symv (2f²) plus a few axpy/dot passes (~6f).
  s.flops = static_cast<double>(rows) * avg_iters * (2.0 * df * df + 6.0 * df);
  // A is re-read from global memory every step.
  s.global_read = static_cast<bytes_t>(
      static_cast<double>(rows) * avg_iters * df * df * sizeof(real_t));
  s.global_write = static_cast<bytes_t>(rows) * f * kReal;
  return s;
}

std::int64_t batch_solve_block_cg(gpusim::Device& dev, const real_t* A,
                                  const real_t* B, idx_t count, int f,
                                  real_t* x_inout, int max_iters,
                                  double tolerance) {
  const std::size_t fsq = static_cast<std::size_t>(f) * f;
  std::atomic<std::int64_t> total_iters{0};
  linalg::CgOptions opt;
  opt.max_iters = max_iters;
  opt.tolerance = tolerance;

  util::parallel_for_chunks(dev.pool(), 0, count, [&](nnz_t lo, nnz_t hi) {
    std::int64_t local = 0;
    for (nnz_t u = lo; u < hi; ++u) {
      const real_t* a = A + static_cast<std::size_t>(u) * fsq;
      const real_t* b = B + static_cast<std::size_t>(u) * static_cast<std::size_t>(f);
      real_t* x = x_inout + static_cast<std::size_t>(u) * static_cast<std::size_t>(f);
      bool empty = true;
      for (int i = 0; i < f && empty; ++i) {
        empty = (a[static_cast<std::size_t>(i) * f + i] == real_t{0});
      }
      if (empty) {
        std::memset(x, 0, static_cast<std::size_t>(f) * sizeof(real_t));
        continue;
      }
      local += linalg::cg_solve(a, b, x, f, opt).iterations;
    }
    total_iters.fetch_add(local);
  });

  const double avg = count > 0 ? static_cast<double>(total_iters.load()) /
                                     static_cast<double>(count)
                               : 0.0;
  dev.account_kernel(solve_cg_kernel_stats(count, f, avg));
  return total_iters.load();
}

}  // namespace cumf::core
