#include "serve/factor_store.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <stdexcept>

#include "core/checkpoint.hpp"
#include "linalg/hermitian.hpp"

namespace cumf::serve {

namespace {

std::vector<double> row_norms(const linalg::FactorMatrix& m) {
  std::vector<double> norms(static_cast<std::size_t>(m.rows()));
  for (idx_t r = 0; r < m.rows(); ++r) {
    norms[static_cast<std::size_t>(r)] =
        std::sqrt(linalg::dot(m.row(r), m.row(r), m.f()));
  }
  return norms;
}

}  // namespace

FactorStore::FactorStore(linalg::FactorMatrix x,
                         const linalg::FactorMatrix& theta, int shards)
    : x_(std::move(x)), num_items_(theta.rows()) {
  if (shards < 1) {
    throw std::invalid_argument("FactorStore: shards must be >= 1");
  }
  user_norms_ = row_norms(x_);

  const int parts =
      std::max(1, std::min<int>(shards, std::max<idx_t>(num_items_, 1)));
  const auto ranges = sparse::split_even(num_items_, parts);
  const auto item_norms = row_norms(theta);
  const int f = theta.f();

  shards_.reserve(ranges.size());
  for (const auto& range : ranges) {
    FactorShard shard;
    shard.items = range;

    // Order the shard's items by descending norm (ties by id for
    // determinism) so scorers can break out once the bound drops below a
    // user's current k-th best.
    std::vector<idx_t> order(static_cast<std::size_t>(range.size()));
    std::iota(order.begin(), order.end(), range.begin);
    std::sort(order.begin(), order.end(), [&item_norms](idx_t a, idx_t b) {
      const double na = item_norms[static_cast<std::size_t>(a)];
      const double nb = item_norms[static_cast<std::size_t>(b)];
      return na > nb || (na == nb && a < b);
    });

    shard.item_ids = std::move(order);
    shard.theta = linalg::FactorMatrix(range.size(), f);
    shard.norms.resize(shard.item_ids.size());
    for (std::size_t slot = 0; slot < shard.item_ids.size(); ++slot) {
      const idx_t gid = shard.item_ids[slot];
      std::memcpy(shard.theta.row(static_cast<idx_t>(slot)), theta.row(gid),
                  static_cast<std::size_t>(f) * sizeof(real_t));
      shard.norms[slot] = item_norms[static_cast<std::size_t>(gid)];
    }
    shards_.push_back(std::move(shard));
  }
}

FactorStore FactorStore::from_checkpoint(const std::string& dir, int shards) {
  core::CheckpointManager manager(dir);
  auto restored = manager.restore();
  if (!restored) {
    throw std::runtime_error("FactorStore: no valid checkpoint in " + dir);
  }
  FactorStore store(std::move(restored->x), restored->theta, shards);
  store.restored_iteration_ = restored->resume_iteration();
  return store;
}

}  // namespace cumf::serve
