#pragma once

// Live factor store: hot checkpoint swap without dropping queries.
//
// The paper's pitch is cheap, frequent retraining — but fresher factors only
// pay off if serving can pick them up while queries are in flight. A
// LiveFactorStore owns a sequence of immutable FactorStore *generations*
// behind an atomically-swapped shared_ptr:
//
//  - readers pin(): an atomic shared_ptr load yields the current generation,
//    and holding the returned Pinned keeps that snapshot alive for the whole
//    query batch — no lock on the query path, no torn reads;
//  - writers refresh(): the next snapshot is loaded and sharded *off* the
//    query path (refresh_from_checkpoint reuses core::CheckpointManager via
//    FactorStore::from_checkpoint), then swapped in with a single pointer
//    store. In-flight readers drain naturally: the superseded generation is
//    destroyed when its last pin is released (double-buffered shards, no
//    quiescence barrier).
//
// A refresh that fails — missing directory, corrupt or truncated checkpoint —
// leaves the serving generation untouched and is reported in the outcome and
// the refresh_failures counter; the store keeps answering from the old
// snapshot. Generation numbers are monotonically increasing, starting at 1.
//
// Swap-pause is tracked per refresh: the duration of the pointer-swap
// critical section, which is the only moment a refresh and the stats path
// contend. Queries never wait on it — they hold pins, not locks.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "serve/factor_store.hpp"
#include "serve/serve_stats.hpp"

namespace cumf::serve {

class LiveFactorStore {
 public:
  /// Starts serving `initial` as generation 1. Later refreshes shard their
  /// snapshots into the same number of partitions the initial store uses.
  explicit LiveFactorStore(FactorStore initial);

  LiveFactorStore(const LiveFactorStore&) = delete;
  LiveFactorStore& operator=(const LiveFactorStore&) = delete;

  /// A pinned generation: the snapshot stays alive (and bit-stable) for as
  /// long as the Pinned is held, across any number of concurrent refreshes.
  struct Pinned {
    std::shared_ptr<const FactorStore> store;
    std::uint64_t generation = 0;

    [[nodiscard]] const FactorStore& operator*() const { return *store; }
    [[nodiscard]] const FactorStore* operator->() const { return store.get(); }
  };

  /// Atomically pins the current generation. Wait-free for readers.
  [[nodiscard]] Pinned pin() const;

  /// Number of the generation serving right now — a plain atomic read, no
  /// pin taken (hot-path friendly: the batcher consults it per submit).
  [[nodiscard]] std::uint64_t generation() const {
    return gen_number_.load(std::memory_order_acquire);
  }

  /// Shard count applied to refreshed snapshots.
  [[nodiscard]] int shards() const { return shards_; }

  struct RefreshOutcome {
    bool swapped = false;       // false: old generation kept serving
    std::uint64_t generation = 0;  // generation serving after the call
    double load_ms = 0.0;       // load + shard time, off the query path
    double swap_pause_ms = 0.0;  // pointer-swap critical section
    std::string error;          // why swapped == false
  };

  /// Loads the freshest valid snapshot from a core::CheckpointManager
  /// directory, shards it off the query path, and swaps it in. On any load
  /// failure the current generation keeps serving and the outcome carries the
  /// error. Safe to call from multiple threads concurrently; swaps serialize,
  /// loads do not.
  RefreshOutcome refresh_from_checkpoint(const std::string& dir);

  /// In-memory refresh path (retrain-in-process pipelines): swaps `next` in
  /// as the new generation. Succeeds unless the admission hook vetoes.
  RefreshOutcome refresh(FactorStore next);

  /// Called with each candidate generation inside the swap critical section,
  /// *before* it becomes current. A throwing hook vetoes the swap: the old
  /// generation keeps serving, the outcome carries the error, and the
  /// candidate is destroyed. Capacity-accounting backends register here
  /// (e.g. MultiDeviceScoringBackend::admit) so a snapshot that does not fit
  /// the device fleet is refused up front instead of failing mid-batch —
  /// and a multi-device placement is refused *everywhere* rather than torn.
  using AdmissionHook =
      std::function<void(const std::shared_ptr<const FactorStore>&)>;
  void set_admission_hook(AdmissionHook hook);

  /// Successful hot swaps since construction.
  [[nodiscard]] std::uint64_t refreshes() const {
    return refreshes_.load(std::memory_order_relaxed);
  }
  /// Refreshes rejected because the snapshot could not be loaded.
  [[nodiscard]] std::uint64_t refresh_failures() const {
    return refresh_failures_.load(std::memory_order_relaxed);
  }
  /// Distribution of pointer-swap critical-section durations.
  [[nodiscard]] LatencySummary swap_pause_summary() const {
    return swap_pause_.summary();
  }

 private:
  struct Generation {
    FactorStore store;
    std::uint64_t number;

    Generation(FactorStore s, std::uint64_t n)
        : store(std::move(s)), number(n) {}
  };

  RefreshOutcome install(FactorStore next, double load_ms);

  int shards_;
  std::atomic<std::shared_ptr<const Generation>> current_;
  // Mirror of current_->number; advanced (before the pointer swap, so it can
  // only ever run ahead — the conservative direction for cache staling) so
  // generation() never has to materialize a shared_ptr.
  std::atomic<std::uint64_t> gen_number_{0};
  std::mutex swap_mu_;  // serializes writers; readers never take it
  AdmissionHook admission_hook_;  // guarded by swap_mu_
  std::atomic<std::uint64_t> refreshes_{0};
  std::atomic<std::uint64_t> refresh_failures_{0};
  LatencyTracker swap_pause_;
};

}  // namespace cumf::serve
