#pragma once

// Request batcher: coalesces single-user queries into micro-batches.
//
// One-user-at-a-time serving re-reads every Θ shard per query; the engine's
// blocked scorer amortizes that sweep across a block of users — the same
// lever MO-ALS pulls by batching row solves. The batcher buys that
// amortization for online traffic: submit() parks each query with a promise,
// and a flusher thread hands the pending set to TopKEngine::recommend()
// whenever `max_batch` queries accumulate or the oldest has waited
// `max_delay`, whichever comes first.
//
// Hot users short-circuit: submit() consults the LRU ScoreCache and fulfills
// hits immediately without waking the flusher. Duplicate users inside one
// micro-batch are scored once.
//
// When the engine serves a LiveFactorStore, the batcher rides hot swaps
// without dropping queries: cache entries are tagged with the generation
// that scored them (stale ones evict lazily, no global clear), a post-swap
// submit can never be answered from superseded factors, and an engine
// failure inside a flush (e.g. a swap shrank the model under an admitted
// user id) fails that batch's futures instead of tearing down the flusher
// thread.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/cache.hpp"
#include "serve/serve_stats.hpp"
#include "serve/topk.hpp"

namespace cumf::serve {

struct BatcherOptions {
  /// Recommendations returned per query.
  int k = 10;
  /// Flush as soon as this many queries are pending.
  std::size_t max_batch = 32;
  /// Flush when the oldest pending query has waited this long.
  std::chrono::microseconds max_delay{2000};
  /// LRU hot-user cache capacity; 0 disables caching.
  std::size_t cache_capacity = 0;
};

class RequestBatcher {
 public:
  /// The engine (and everything it references) must outlive the batcher.
  explicit RequestBatcher(const TopKEngine& engine, BatcherOptions opt = {});

  /// Drains every pending query, then stops the flusher thread.
  ~RequestBatcher();

  RequestBatcher(const RequestBatcher&) = delete;
  RequestBatcher& operator=(const RequestBatcher&) = delete;

  /// Enqueue one user query; the future resolves with their top-k list.
  std::future<std::vector<Recommendation>> submit(idx_t user);

  /// Blocking convenience wrapper around submit().
  std::vector<Recommendation> query(idx_t user) { return submit(user).get(); }

  /// Force an immediate flush of whatever is pending (benches, shutdown).
  void flush();

  /// Merged snapshot of batcher + cache + engine counters. Scored/pruned are
  /// baselined to this batcher's construction; the latency percentiles are
  /// the engine's recent-window summaries, so when the engine also serves
  /// traffic outside this batcher those samples are included too.
  [[nodiscard]] ServeStats stats() const;

 private:
  struct Pending {
    idx_t user;
    std::promise<std::vector<Recommendation>> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void flusher_loop();
  void run_batch(std::vector<Pending> batch);

  const TopKEngine& engine_;
  BatcherOptions opt_;
  ScoreCache cache_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> pending_;  // FIFO; flushes pop from the front
  bool stop_ = false;
  bool flush_now_ = false;
  std::uint64_t queries_ = 0;
  std::uint64_t batches_ = 0;
  // Engine counters at construction; stats() reports this batcher's share.
  std::uint64_t base_scored_ = 0;
  std::uint64_t base_pruned_ = 0;

  std::thread flusher_;
};

}  // namespace cumf::serve
