#pragma once

// Request batcher: coalesces single-user queries into micro-batches.
//
// One-user-at-a-time serving re-reads every Θ shard per query; the engine's
// blocked scorer amortizes that sweep across a block of users — the same
// lever MO-ALS pulls by batching row solves. The batcher buys that
// amortization for online traffic: submit() parks each query with a promise,
// and a flusher thread hands the pending set to TopKEngine::recommend()
// whenever `max_batch` queries accumulate or the oldest has waited
// `max_delay`, whichever comes first.
//
// Hot users short-circuit: submit() consults the LRU ScoreCache and fulfills
// hits immediately without waking the flusher. Duplicate users inside one
// micro-batch are scored once.
//
// Every query is latency-accounted end to end (submit() → future
// fulfillment, cache hits included) and, for batched queries, from submit()
// to micro-batch take (queueing delay) — ServeStats::e2e / queue_delay. The
// TCP front-end (net/server.hpp) widens the end-to-end view to accept→reply.
//
// When the engine serves a LiveFactorStore, the batcher rides hot swaps
// without dropping queries: cache entries are tagged with the generation
// that scored them (stale ones evict lazily, no global clear), a post-swap
// submit can never be answered from superseded factors, and an engine
// failure inside a flush (e.g. a swap shrank the model under an admitted
// user id) fails that batch's futures instead of tearing down the flusher
// thread.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/cache.hpp"
#include "serve/serve_stats.hpp"
#include "serve/topk.hpp"

namespace cumf::obs {
class SloMonitor;
}

namespace cumf::serve {

struct BatcherOptions {
  /// Recommendations returned per query.
  int k = 10;
  /// Flush as soon as this many queries are pending.
  std::size_t max_batch = 32;
  /// Flush when the oldest pending query has waited this long.
  std::chrono::microseconds max_delay{2000};
  /// LRU hot-user cache capacity; 0 disables caching.
  std::size_t cache_capacity = 0;
};

/// One answered query: the ranked list plus the model generation whose
/// factors produced it (0 = static store; a cache hit carries the generation
/// its entry was scored under). The generation is what lets a network
/// front-end tag responses so clients can tell a hot swap happened.
struct BatchedAnswer {
  std::vector<Recommendation> items;
  std::uint64_t generation = 0;
};

class RequestBatcher {
 public:
  /// The engine (and everything it references) must outlive the batcher.
  explicit RequestBatcher(const TopKEngine& engine, BatcherOptions opt = {});

  /// Drains every pending query, then stops the flusher thread.
  ~RequestBatcher();

  RequestBatcher(const RequestBatcher&) = delete;
  RequestBatcher& operator=(const RequestBatcher&) = delete;

  /// Enqueue one user query; the future resolves with their top-k list and
  /// the generation that answered it.
  std::future<BatchedAnswer> submit(idx_t user);

  /// Blocking convenience wrapper around submit().
  std::vector<Recommendation> query(idx_t user) {
    return submit(user).get().items;
  }

  [[nodiscard]] const BatcherOptions& options() const { return opt_; }

  /// Force an immediate drain of *everything* pending (benches, shutdown):
  /// the flusher keeps taking micro-batches (still at most max_batch each, so
  /// the engine's batch shape is preserved) until the pending queue is empty,
  /// never waiting out max_delay in between. Queries submitted while the
  /// drain runs ride along. Returns without waiting; see drain().
  void flush();

  /// flush(), then block until the pending queue is empty and no micro-batch
  /// is in flight — every future submitted before the call is resolved when
  /// this returns. Used by bench/server shutdown paths.
  void drain();

  /// Merged snapshot of batcher + cache + engine counters. Scored/pruned are
  /// baselined to this batcher's construction; the latency percentiles are
  /// the engine's recent-window summaries, so when the engine also serves
  /// traffic outside this batcher those samples are included too.
  [[nodiscard]] ServeStats stats() const;

  /// Attaches an SLO monitor (obs/slo.hpp): every fulfilled query feeds the
  /// availability and latency objectives, traced queries past the latency
  /// threshold capture slow-query exemplars, and stats() carries the burn
  /// snapshot (ServeStats::slo). The monitor must outlive the batcher (or be
  /// detached with nullptr first).
  void set_slo(obs::SloMonitor* slo) {
    slo_.store(slo, std::memory_order_release);
  }
  [[nodiscard]] obs::SloMonitor* slo() const {
    return slo_.load(std::memory_order_acquire);
  }

 private:
  struct Pending {
    idx_t user;
    std::promise<BatchedAnswer> promise;
    std::chrono::steady_clock::time_point enqueued;
    /// Sampled for request tracing at submit() time; a traced query emits
    /// batch.queue_wait and query.e2e spans along its whole path.
    bool traced = false;
  };

  void flusher_loop();
  void run_batch(std::vector<Pending> batch,
                 std::chrono::steady_clock::time_point taken);
  /// Emits the query.e2e span for one fulfilled query (no-op unless the
  /// query was sampled at submit time).
  void trace_e2e(const Pending& p, std::uint64_t generation,
                 bool failed) const;
  /// Feeds one fulfilled query to the attached SLO monitor (no-op without
  /// one): availability by `ok`, the latency objective for ok replies, and —
  /// for traced queries past the threshold — a slow-query exemplar whose
  /// queue/engine/finish stages sum to the e2e.
  void slo_observe(idx_t user, bool traced, double e2e_ms, bool ok,
                   double queue_ms, double engine_ms) const;

  const TopKEngine& engine_;
  BatcherOptions opt_;
  ScoreCache cache_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable drained_cv_;  // signaled when a drain may be done
  std::deque<Pending> pending_;  // FIFO; flushes pop from the front
  bool stop_ = false;
  bool flush_now_ = false;
  bool batch_in_flight_ = false;  // flusher is inside run_batch()
  std::uint64_t queries_ = 0;
  std::uint64_t batches_ = 0;
  // Per-query latency accounting (ServeStats::e2e / queue_delay). Every
  // fulfilled future records an end-to-end sample — cache hits and rejected
  // ids included — so the percentiles cover the same population `queries_`
  // counts; queue delay is recorded per query at micro-batch take time.
  LatencyTracker e2e_;
  LatencyTracker queue_delay_;
  // Engine counters at construction; stats() reports this batcher's share.
  std::uint64_t base_scored_ = 0;
  std::uint64_t base_pruned_ = 0;

  /// Optional SLO monitor (set_slo); loaded per fulfillment with acquire.
  std::atomic<obs::SloMonitor*> slo_{nullptr};

  std::thread flusher_;
};

}  // namespace cumf::serve
