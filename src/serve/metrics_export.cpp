#include "serve/metrics_export.hpp"

#include <vector>

#include "obs/events.hpp"
#include "obs/trace.hpp"

namespace cumf::serve {

namespace {

void fill_latency(obs::MetricsRegistry* reg, const char* stage,
                  const LatencySummary& s) {
  static const std::vector<double> bounds(kLatencyBucketBoundsMs.begin(),
                                          kLatencyBucketBoundsMs.end());
  const obs::Labels labels = {{"stage", stage}};
  reg->histogram("cumf_serve_latency_ms",
                 "Per-stage serving latency (lifetime histogram)", bounds,
                 labels)
      .merge_bins(s.bucket_counts.data(), s.bucket_counts.size(), s.sum_ms,
                  s.total_recorded);
  const struct {
    const char* q;
    double v;
  } quantiles[] = {{"0.5", s.p50_ms}, {"0.95", s.p95_ms}, {"0.99", s.p99_ms}};
  for (const auto& q : quantiles) {
    reg->gauge("cumf_serve_latency_quantile_ms",
               "Per-stage latency quantiles over the recent window",
               {{"stage", stage}, {"q", q.q}})
        .set(q.v);
  }
}

}  // namespace

void fill_registry(const ServeStats& stats, obs::MetricsRegistry* reg) {
  reg->counter("cumf_serve_queries_total", "User queries answered")
      .set(static_cast<double>(stats.queries));
  reg->counter("cumf_serve_batches_total",
               "Micro-batches flushed to the engine")
      .set(static_cast<double>(stats.batches));
  reg->counter("cumf_serve_cache_requests_total",
               "Hot-user cache lookups by result", {{"result", "hit"}})
      .set(static_cast<double>(stats.cache_hits));
  reg->counter("cumf_serve_cache_requests_total",
               "Hot-user cache lookups by result", {{"result", "miss"}})
      .set(static_cast<double>(stats.cache_misses));
  reg->counter("cumf_serve_cache_stale_evictions_total",
               "Superseded-generation cache entries evicted lazily")
      .set(static_cast<double>(stats.cache_stale_evictions));
  reg->counter("cumf_serve_items_total",
               "Candidate items by disposition (scored vs norm-bound pruned)",
               {{"disposition", "scored"}})
      .set(static_cast<double>(stats.items_scored));
  reg->counter("cumf_serve_items_total",
               "Candidate items by disposition (scored vs norm-bound pruned)",
               {{"disposition", "pruned"}})
      .set(static_cast<double>(stats.items_pruned));
  reg->gauge("cumf_serve_generation", "Model generation serving right now")
      .set(static_cast<double>(stats.generation));
  reg->gauge("cumf_serve_devices",
             "Devices the scoring backend spreads the model across")
      .set(static_cast<double>(stats.serving_devices));
  reg->counter("cumf_serve_refreshes_total",
               "Live-store refresh attempts by result", {{"result", "ok"}})
      .set(static_cast<double>(stats.refreshes));
  reg->counter("cumf_serve_refreshes_total",
               "Live-store refresh attempts by result", {{"result", "failed"}})
      .set(static_cast<double>(stats.refresh_failures));

  fill_latency(reg, "e2e", stats.e2e);
  fill_latency(reg, "queue", stats.queue_delay);
  fill_latency(reg, "net_e2e", stats.net_e2e);
  fill_latency(reg, "batch_wall", stats.batch_wall);
  fill_latency(reg, "batch_modeled", stats.batch_modeled);
  fill_latency(reg, "batch_interconnect", stats.batch_interconnect);
  fill_latency(reg, "swap_pause", stats.swap_pause);

  // Training-pass counters split by tier (full ALS vs incremental SGD);
  // the per-family sum across tiers is the orchestrator's aggregate count.
  const OrchestratorStats& o = stats.orchestrator;
  reg->counter("cumf_orchestrator_retrains_total",
               "Retrain training passes by tier", {{"tier", "full"}})
      .set(static_cast<double>(o.retrains_full));
  reg->counter("cumf_orchestrator_retrains_total",
               "Retrain training passes by tier", {{"tier", "incremental"}})
      .set(static_cast<double>(o.retrains_incremental));
  reg->counter("cumf_orchestrator_promotions_total",
               "Candidates that passed the gate and swapped in, by tier",
               {{"tier", "full"}})
      .set(static_cast<double>(o.promotions_full));
  reg->counter("cumf_orchestrator_promotions_total",
               "Candidates that passed the gate and swapped in, by tier",
               {{"tier", "incremental"}})
      .set(static_cast<double>(o.promotions_incremental));
  reg->counter("cumf_orchestrator_rejections_total",
               "Candidates the quality gate refused, by tier",
               {{"tier", "full"}})
      .set(static_cast<double>(o.rejections_full));
  reg->counter("cumf_orchestrator_rejections_total",
               "Candidates the quality gate refused, by tier",
               {{"tier", "incremental"}})
      .set(static_cast<double>(o.rejections_incremental));
  reg->counter("cumf_orchestrator_escalations_total",
               "Incremental rejections escalated to full ALS in-cycle")
      .set(static_cast<double>(o.escalations));
  reg->counter("cumf_orchestrator_consolidations_total",
               "Full-ALS cycles scheduled by the auto tier's cadence")
      .set(static_cast<double>(o.consolidations));
  reg->gauge("cumf_orchestrator_train_tier",
             "Tier of the most recent training pass (0 full, 1 incremental)")
      .set(static_cast<double>(o.last_train_tier));
  reg->counter("cumf_orchestrator_rollbacks_total",
               "Reverts to the last-good checkpoint")
      .set(static_cast<double>(o.rollbacks));
  reg->counter("cumf_orchestrator_deltas_total",
               "Rating deltas by ingest result", {{"result", "ingested"}})
      .set(static_cast<double>(o.deltas_ingested));
  reg->counter("cumf_orchestrator_deltas_total",
               "Rating deltas by ingest result", {{"result", "rejected"}})
      .set(static_cast<double>(o.deltas_rejected));
  reg->gauge("cumf_orchestrator_gate_rmse",
             "Gate RMSE of the most recent candidate")
      .set(o.last_gate_rmse);
  reg->gauge("cumf_orchestrator_gate_recall",
             "Gate recall of the most recent candidate")
      .set(o.last_gate_recall);
  reg->gauge("cumf_orchestrator_baseline_rmse",
             "RMSE of the currently serving model")
      .set(o.baseline_rmse);
  reg->gauge("cumf_orchestrator_baseline_recall",
             "Recall of the currently serving model")
      .set(o.baseline_recall);
  reg->gauge("cumf_orchestrator_train_wall_ms",
             "Wall time of the most recent training pass")
      .set(o.last_train_wall_ms);
  reg->gauge("cumf_orchestrator_train_modeled_s",
             "Modeled GPU time of the most recent training pass")
      .set(o.last_train_modeled_s);

  const NetMetrics& net = stats.net;
  reg->counter("cumf_net_connections_total", "TCP connections accepted")
      .set(static_cast<double>(net.connections_accepted));
  reg->counter("cumf_net_connections_rejected_total",
               "Connections turned away by admission control")
      .set(static_cast<double>(net.connections_rejected));
  reg->counter("cumf_net_protocol_errors_total",
               "Connections dropped for malformed frames")
      .set(static_cast<double>(net.protocol_errors));
  reg->counter("cumf_net_recv_errors_total",
               "Connections closed on hard recv() errors")
      .set(static_cast<double>(net.recv_errors));
  reg->counter("cumf_net_slow_client_closes_total",
               "Connections closed for unread reply backlog")
      .set(static_cast<double>(net.slow_client_closes));
  reg->counter("cumf_net_overload_sheds_total",
               "Queries answered kOverloaded at the admission bound")
      .set(static_cast<double>(net.overload_sheds));
  reg->gauge("cumf_net_io_shards", "Epoll io threads the server runs")
      .set(static_cast<double>(net.io_shards));
  reg->gauge("cumf_net_open_connections", "Connections open right now")
      .set(static_cast<double>(net.open_connections));

  // SLO slice: zero/absent-attached servers still expose the family so
  // dashboards do not 404 on a server without a monitor.
  const SloStats& slo = stats.slo;
  reg->gauge("cumf_slo_attached", "1 when an SLO monitor is attached")
      .set(slo.attached ? 1.0 : 0.0);
  reg->gauge("cumf_slo_latency_threshold_ms",
             "Latency SLO threshold (e2e above it burns budget)")
      .set(slo.latency_threshold_ms);
  reg->gauge("cumf_slo_state", "Alert state (0 ok, 1 warn, 2 page) by SLO",
             {{"slo", "latency"}})
      .set(static_cast<double>(slo.latency_state));
  reg->gauge("cumf_slo_state", "Alert state (0 ok, 1 warn, 2 page) by SLO",
             {{"slo", "availability"}})
      .set(static_cast<double>(slo.availability_state));
  reg->gauge("cumf_slo_burn_rate",
             "Error-budget burn rate by SLO and window",
             {{"slo", "latency"}, {"window", "fast"}})
      .set(slo.latency_fast_burn);
  reg->gauge("cumf_slo_burn_rate",
             "Error-budget burn rate by SLO and window",
             {{"slo", "latency"}, {"window", "slow"}})
      .set(slo.latency_slow_burn);
  reg->gauge("cumf_slo_burn_rate",
             "Error-budget burn rate by SLO and window",
             {{"slo", "availability"}, {"window", "fast"}})
      .set(slo.availability_fast_burn);
  reg->gauge("cumf_slo_burn_rate",
             "Error-budget burn rate by SLO and window",
             {{"slo", "availability"}, {"window", "slow"}})
      .set(slo.availability_slow_burn);
  reg->counter("cumf_slo_bad_total", "Budget-burning samples by SLO",
               {{"slo", "latency"}})
      .set(static_cast<double>(slo.latency_violations));
  reg->counter("cumf_slo_bad_total", "Budget-burning samples by SLO",
               {{"slo", "availability"}})
      .set(static_cast<double>(slo.availability_errors));
  reg->counter("cumf_slo_transitions_total",
               "Alert-state transitions by SLO", {{"slo", "latency"}})
      .set(static_cast<double>(slo.latency_transitions));
  reg->counter("cumf_slo_transitions_total",
               "Alert-state transitions by SLO", {{"slo", "availability"}})
      .set(static_cast<double>(slo.availability_transitions));
  reg->counter("cumf_slo_exemplars_total",
               "Slow-query exemplars captured from traced queries")
      .set(static_cast<double>(slo.exemplars_captured));

  const auto& events = obs::EventLog::global();
  reg->counter("cumf_events_total",
               "Structured operational events recorded since process start")
      .set(static_cast<double>(events.recorded()));
  reg->counter("cumf_events_dropped_total",
               "Structured events overwritten by ring wrap")
      .set(static_cast<double>(events.dropped()));

  const auto& trace = obs::TraceCollector::global();
  reg->counter("cumf_trace_events_total",
               "Trace events recorded since process start")
      .set(static_cast<double>(trace.events_recorded()));
  reg->counter("cumf_trace_events_dropped_total",
               "Trace events overwritten by ring wrap")
      .set(static_cast<double>(trace.events_dropped()));
  reg->gauge("cumf_trace_enabled", "1 when request tracing is recording")
      .set(trace.enabled() ? 1.0 : 0.0);
}

std::string metrics_exposition(const ServeStats& stats) {
  obs::MetricsRegistry reg;
  fill_registry(stats, &reg);
  return reg.expose();
}

}  // namespace cumf::serve
