#include "serve/live_store.hpp"

#include <exception>
#include <utility>

#include "obs/events.hpp"
#include "obs/trace.hpp"
#include "util/stopwatch.hpp"

namespace cumf::serve {

LiveFactorStore::LiveFactorStore(FactorStore initial)
    : shards_(initial.num_shards()) {
  gen_number_.store(1, std::memory_order_release);
  current_.store(std::make_shared<const Generation>(std::move(initial), 1),
                 std::memory_order_release);
}

LiveFactorStore::Pinned LiveFactorStore::pin() const {
  const auto gen = current_.load(std::memory_order_acquire);
  // Aliasing shared_ptr: callers see a FactorStore, but the pin keeps the
  // whole (store, number) snapshot alive.
  return Pinned{std::shared_ptr<const FactorStore>(gen, &gen->store),
                gen->number};
}

LiveFactorStore::RefreshOutcome LiveFactorStore::refresh_from_checkpoint(
    const std::string& dir) {
  util::Stopwatch load_watch;
  try {
    // The load span covers the off-critical-path checkpoint read + shard
    // build; the swap itself appears as a store.swap instant from install().
    obs::TraceSpan load_span(obs::TraceCollector::global(), "store.load");
    FactorStore next = FactorStore::from_checkpoint(dir, shards_);
    load_span.finish();
    return install(std::move(next), load_watch.milliseconds());
  } catch (const std::exception& e) {
    refresh_failures_.fetch_add(1, std::memory_order_relaxed);
    RefreshOutcome out;
    out.swapped = false;
    out.generation = generation();
    out.load_ms = load_watch.milliseconds();
    out.error = e.what();
    obs::EventLog::global().record(
        obs::Severity::kError, obs::Component::kStore, "refresh_failed",
        {"generation", out.generation},
        {"load_ms", static_cast<std::uint64_t>(out.load_ms)});
    return out;
  }
}

LiveFactorStore::RefreshOutcome LiveFactorStore::refresh(FactorStore next) {
  return install(std::move(next), 0.0);
}

void LiveFactorStore::set_admission_hook(AdmissionHook hook) {
  std::lock_guard<std::mutex> lock(swap_mu_);
  admission_hook_ = std::move(hook);
}

LiveFactorStore::RefreshOutcome LiveFactorStore::install(FactorStore next,
                                                         double load_ms) {
  // Allocate the generation wrapper before entering the critical section so
  // the swap pause is a number assignment plus one atomic pointer store.
  auto gen = std::make_shared<Generation>(std::move(next), 0);

  RefreshOutcome out;
  out.load_ms = load_ms;
  util::Stopwatch pause;
  {
    std::lock_guard<std::mutex> lock(swap_mu_);
    const auto cur = current_.load(std::memory_order_acquire);
    gen->number = cur->number + 1;
    out.generation = gen->number;
    if (admission_hook_) {
      // Admission runs before the candidate is published anywhere: a veto
      // (thrown exception) means no reader ever pinned it and the backend
      // rolled back whatever it charged — the old generation keeps serving.
      try {
        admission_hook_(
            std::shared_ptr<const FactorStore>(gen, &gen->store));
      } catch (const std::exception& e) {
        refresh_failures_.fetch_add(1, std::memory_order_relaxed);
        out.swapped = false;
        out.generation = cur->number;
        out.swap_pause_ms = pause.milliseconds();
        out.error = e.what();
        obs::EventLog::global().record(
            obs::Severity::kWarn, obs::Component::kStore, "admission_veto",
            {"candidate_generation", cur->number + 1},
            {"serving_generation", cur->number});
        return out;
      }
    }
    gen_number_.store(gen->number, std::memory_order_release);
    current_.store(std::move(gen), std::memory_order_release);
    // The superseded generation is not destroyed here: in-flight readers
    // still hold pins; the last one to release drains it.
  }
  out.swap_pause_ms = pause.milliseconds();
  out.swapped = true;
  swap_pause_.record(out.swap_pause_ms);
  refreshes_.fetch_add(1, std::memory_order_relaxed);
  // Full-height marker on the trace timeline: everything after this instant
  // was answered (or re-pinned) under the new generation.
  obs::TraceCollector::global().record_instant(
      "store.swap", {"generation", out.generation},
      {"pause_us", static_cast<std::uint64_t>(out.swap_pause_ms * 1e3)});
  obs::EventLog::global().record(
      obs::Severity::kInfo, obs::Component::kStore, "generation_swap",
      {"generation", out.generation},
      {"pause_us", static_cast<std::uint64_t>(out.swap_pause_ms * 1e3)});
  return out;
}

}  // namespace cumf::serve
