#pragma once

// Pluggable scoring backends for the TopKEngine.
//
// The engine decides *what* to score — it fans one SweepTask per
// shard × user-block out over the thread pool — and a ScoringBackend decides
// *how*: where the arithmetic runs and on which time axis it is accounted.
// Every backend is required to fill per-user heaps whose merged top-k is
// bit-identical to the reference CPU sweep, so backends differ only in cost,
// never in answers. That contract is what lets a real GPU, a SIMD-autotuned
// sweep, or an approximate scorer slot in later without touching the engine.
//
// Two implementations ship today:
//  - CpuScoringBackend  — the 4-chain item-major sweep on host threads
//    (wall-clock only, no modeled-time axis);
//  - GpuSimScoringBackend — the same arithmetic, but each sweep is accounted
//    as a gpusim::Device kernel launch (flops/bytes derived analytically from
//    shard size × factor rank), the resident model is charged against device
//    capacity, and per-query-batch modeled seconds come off the device's
//    roofline clock — which puts serving on the same modeled-time axis as
//    training and lets the Table 3 cost model price serving fleets.

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "gpusim/counters.hpp"
#include "gpusim/device.hpp"
#include "serve/factor_store.hpp"
#include "util/types.hpp"

namespace cumf::serve {

struct Recommendation;  // serve/topk.hpp

/// One shard × user-block sweep handed to a backend. Spans/pointers reference
/// engine-owned state and are valid only for the duration of the sweep call.
struct SweepTask {
  const FactorStore* store = nullptr;
  std::span<const idx_t> users;  // the whole query batch
  /// Per-query sorted rated-item lists (parallel to `users`); only consulted
  /// when `exclude` is set.
  const std::vector<std::vector<idx_t>>* rated = nullptr;
  int first = 0;  // user block [first, last) within `users`
  int last = 0;
  const FactorShard* shard = nullptr;
  int k = 0;
  bool prune = true;     // Cauchy–Schwarz norm pruning
  bool exclude = false;  // drop items in rated[i]
};

/// What one sweep did — the engine aggregates these into its counters and
/// backends derive kernel traffic from them.
struct SweepCounters {
  std::uint64_t scored = 0;      // user×item dots computed
  std::uint64_t pruned = 0;      // candidates skipped via the norm bound
  std::uint64_t rows_swept = 0;  // θ rows touched before every user pruned out
};

/// Modeled cost of one recommend() batch, reported by finish_batch().
/// All-zero for wall-clock-only backends.
struct BatchCost {
  /// Total modeled seconds for the batch (kernels + interconnect).
  double modeled_s = 0.0;
  /// Slice of modeled_s spent gathering per-device candidates over the
  /// interconnect; nonzero only for multi-device backends.
  double interconnect_s = 0.0;
};

/// Reference sweep: item-major, 4-chain scoring, strict-bound pruning. All
/// backends must reproduce its heaps bit-for-bit (GpuSimScoringBackend simply
/// calls it). `out` is indexed by user-in-block and holds bounded min-heaps
/// ordered by heap_cmp == ranks_before.
SweepCounters reference_sweep(const SweepTask& task,
                              std::vector<std::vector<Recommendation>>& out);

/// Analytic kernel traffic for one sweep, shared by every simulated-GPU
/// backend (see GpuSimScoringBackend's header comment for the derivation).
[[nodiscard]] gpusim::KernelStats sweep_kernel_stats(const SweepTask& task,
                                                     const SweepCounters& c,
                                                     bool use_texture);

class ScoringBackend {
 public:
  virtual ~ScoringBackend() = default;

  [[nodiscard]] virtual const char* name() const = 0;

  /// Called once per recommend() batch by a *live* engine, before any sweep,
  /// with the generation pinned for the batch. Capacity-accounting backends
  /// use it to charge a newly-seen snapshot and release drained ones; the
  /// default is a no-op. Static engines never call it — their snapshot is
  /// fixed at construction.
  virtual void begin_batch(const std::shared_ptr<const FactorStore>& store) {
    (void)store;
  }

  /// Execute one sweep, filling `out` with per-user top-k heaps. Called
  /// concurrently from pool workers; implementations must be thread-safe.
  virtual SweepCounters sweep(
      const SweepTask& task,
      std::vector<std::vector<Recommendation>>& out) = 0;

  /// Called once per recommend() batch after every sweep completed. Returns
  /// the backend's modeled batch cost (all-zero = wall-clock-only backend).
  /// Batches are assumed not to overlap (the RequestBatcher serializes them
  /// through one flusher thread).
  virtual BatchCost finish_batch() { return {}; }

  /// Devices this backend spreads the model across (1 = host or a single
  /// simulated device).
  [[nodiscard]] virtual int device_count() const { return 1; }

  /// Scatter-gather merge topology for `store`: element s is the device that
  /// owns shard s, so the engine can merge per-device partial top-k lists
  /// before the cross-device gather. Empty = every shard on one device (flat
  /// merge). Must be answered for any store the backend has admitted.
  [[nodiscard]] virtual std::vector<int> shard_devices(
      const FactorStore& store) const {
    (void)store;
    return {};
  }
};

/// Host backend: the sweep runs on pool threads and that is the whole story.
class CpuScoringBackend final : public ScoringBackend {
 public:
  [[nodiscard]] const char* name() const override { return "cpu"; }
  SweepCounters sweep(const SweepTask& task,
                      std::vector<std::vector<Recommendation>>& out) override;
};

/// Simulated-GPU backend. Arithmetic is delegated to reference_sweep (so
/// top-k lists are bit-identical to the CPU backend); each sweep is accounted
/// on the device as one kernel launch with analytic traffic:
///
///   flops         2·f per scored dot
///   global_read   rows_swept · f floats — θ rows streamed contiguously
///                 (shards are slot-contiguous in descending-norm order)
///   gathered_read block_users · f floats — x_u rows fetched once into
///                 on-chip storage, discontiguous by user id (optionally via
///                 the texture path; block reuse is high, quality 1)
///   shared_read   scored · f floats — each dot replays the cached user row
///   global_write  block_users · k · 8 B — (item, score) heap write-back
///
/// The resident model (X + Θ + norms) is charged against the device's
/// capacity — a model that does not fit raises DeviceOomError, the same
/// eq.-8 pressure that forces training to partition.
///
/// Residency comes in two flavours:
///  - static store (three-argument constructor): the model is charged at
///    construction and released at destruction, as before;
///  - live store (device-only constructor): each generation the engine pins
///    is charged the first time begin_batch() sees it, and released only
///    after it has *drained* — the generation's last shared_ptr (live-store
///    current pointer, engine pins) is gone. During a hot swap old and new
///    snapshots are therefore both resident, surfacing the transient
///    both-resident capacity peak a real serving GPU pays; peak_model_bytes()
///    reports its high-water mark, and a device too small to host both
///    generations at once raises DeviceOomError at the swap, not silently.
struct GpuSimScoringOptions {
  /// Route the x_u gathers through the read-only texture path.
  bool use_texture = true;
};

class GpuSimScoringBackend final : public ScoringBackend {
 public:
  using Options = GpuSimScoringOptions;

  /// Static-store residency: the device and store must outlive the backend,
  /// and the store must be the one the owning TopKEngine serves.
  GpuSimScoringBackend(gpusim::Device& device, const FactorStore& store,
                       Options opt = {});
  /// Live-store residency: generations attach via begin_batch(). The device
  /// must outlive the backend.
  explicit GpuSimScoringBackend(gpusim::Device& device, Options opt = {});
  ~GpuSimScoringBackend() override;

  GpuSimScoringBackend(const GpuSimScoringBackend&) = delete;
  GpuSimScoringBackend& operator=(const GpuSimScoringBackend&) = delete;

  [[nodiscard]] const char* name() const override { return "gpusim"; }
  void begin_batch(const std::shared_ptr<const FactorStore>& store) override;
  SweepCounters sweep(const SweepTask& task,
                      std::vector<std::vector<Recommendation>>& out) override;
  BatchCost finish_batch() override;

  [[nodiscard]] gpusim::Device& device() const { return *dev_; }
  /// Bytes currently charged for resident model snapshots (one for a static
  /// store; one per undrained generation for a live store).
  [[nodiscard]] bytes_t model_bytes() const;
  /// High-water mark of model_bytes() — the both-resident swap peak.
  [[nodiscard]] bytes_t peak_model_bytes() const;
  /// Snapshots currently charged.
  [[nodiscard]] int resident_models() const;

  /// Capacity charge for one snapshot: X + Θ factors plus per-row norms.
  [[nodiscard]] static bytes_t model_bytes_for(const FactorStore& store);

 private:
  /// One charged snapshot. `alive` is empty for the static-store entry
  /// (released only at destruction); generation entries hold a weak_ptr and
  /// are released by gc_locked() once it expires — i.e. after drain.
  struct Resident {
    const FactorStore* key = nullptr;
    std::weak_ptr<const FactorStore> alive;
    bool pinned_for_life = false;
    bytes_t bytes = 0;
  };

  void gc_locked();

  gpusim::Device* dev_;
  Options opt_;
  mutable std::mutex mu_;         // Device accounting is not thread-safe
  std::vector<Resident> resident_;
  bytes_t resident_bytes_ = 0;
  bytes_t peak_bytes_ = 0;
  double batch_modeled_s_ = 0.0;  // modeled seconds accumulated this batch
};

}  // namespace cumf::serve
