#pragma once

// Batched top-k recommendation engine over a sharded FactorStore.
//
// recommend(users, k) fans one scoring task per shard × user-block out over
// the shared thread pool. Each task sweeps its shard's Θ rows item-major and
// scores every user in the block against the row while it is hot — the same
// amortization MO-ALS gets from batching row solves — maintaining a bounded
// min-heap of the k best per user. Per-shard heaps are then merged per user.
//
// The engine serves either a *static* FactorStore (the reference it was
// constructed over never changes) or a LiveFactorStore (live_store.hpp): in
// live mode every recommend() batch pins the current generation once up
// front, so the whole batch is answered from one immutable snapshot even
// while refreshes swap new checkpoints in underneath. recommend_batch()
// additionally reports which generation answered, which is what lets the
// RequestBatcher tag its score cache and invalidate stale entries
// incrementally after a hot swap.
//
// The sweep itself is executed by a pluggable ScoringBackend
// (serve/scoring_backend.hpp): the default CpuScoringBackend runs it on host
// threads; GpuSimScoringBackend runs the identical arithmetic but accounts
// every sweep as a gpusim::Device kernel launch, putting serving on the
// modeled-time axis. Backends are required to return bit-identical top-k
// lists, so the choice moves cost, never answers.
//
// Two candidate filters run inside the sweep:
//  - norm pruning: shards store items in descending-‖θ_v‖ order, so once
//    ‖x_u‖·‖θ_v‖ (padded by a float-rounding guard) falls below user u's
//    current k-th best score, the rest of the shard is skipped for u;
//  - exclude-rated: with a training CSR attached, items the user already
//    rated never enter the heap.
//
// Results are deterministic: ordering is by (score desc, item id asc), and
// the pruning bound is strict, so output is identical to a brute-force scan.

#include <atomic>
#include <memory>
#include <span>
#include <vector>

#include "serve/factor_store.hpp"
#include "serve/serve_stats.hpp"
#include "sparse/csr.hpp"
#include "util/thread_pool.hpp"

namespace cumf::serve {

class ScoringBackend;  // serve/scoring_backend.hpp
class CpuScoringBackend;
class LiveFactorStore;  // serve/live_store.hpp

struct Recommendation {
  idx_t item = 0;
  double score = 0.0;

  friend bool operator==(const Recommendation&,
                         const Recommendation&) = default;
};

/// Ranking order: higher score first, ties broken by ascending item id.
[[nodiscard]] inline bool ranks_before(const Recommendation& a,
                                       const Recommendation& b) {
  return a.score > b.score || (a.score == b.score && a.item < b.item);
}

struct TopKOptions {
  /// Users scored together per task; the throughput lever (Θ rows are read
  /// once per block instead of once per user).
  int user_block = 32;
  /// Training ratings (m×n CSR). When set, items a user already rated are
  /// excluded from their recommendations.
  const sparse::CsrMatrix* exclude_rated = nullptr;
  /// Pool for the shard × block fan-out; nullptr uses ThreadPool::global().
  util::ThreadPool* pool = nullptr;
  /// Cauchy–Schwarz norm pruning (on by default; off for A/B in benches).
  bool prune = true;
  /// Scoring backend; nullptr uses an engine-owned CpuScoringBackend. The
  /// backend must outlive the engine. A GpuSimScoringBackend built over a
  /// static FactorStore must be given the engine's store; in live mode use
  /// its device-only constructor and generations attach via begin_batch().
  ScoringBackend* backend = nullptr;
};

/// One recommend() batch plus the generation that answered it. For engines
/// over a static FactorStore the generation is 0.
struct RecommendBatch {
  std::vector<std::vector<Recommendation>> lists;
  std::uint64_t generation = 0;
};

class TopKEngine {
 public:
  /// Static mode: the store (and the exclude CSR / backend, when set) must
  /// outlive the engine.
  explicit TopKEngine(const FactorStore& store, TopKOptions opt = {});
  /// Live mode: every batch pins `live`'s current generation; refreshes under
  /// a running engine are safe. `live` must outlive the engine.
  explicit TopKEngine(const LiveFactorStore& live, TopKOptions opt = {});
  ~TopKEngine();

  /// Static mode only (throws std::logic_error in live mode — a generation
  /// reference would dangle the moment the pin is released; use live_store()
  /// and pin() instead).
  [[nodiscard]] const FactorStore& store() const;
  /// The live store this engine serves, nullptr in static mode.
  [[nodiscard]] const LiveFactorStore* live_store() const { return live_; }
  /// User-id bound of the snapshot serving right now (pins in live mode).
  [[nodiscard]] idx_t num_users() const;
  [[nodiscard]] const TopKOptions& options() const { return opt_; }
  [[nodiscard]] ScoringBackend& backend() const { return *backend_; }

  /// Top-k items for every user in `users`, ranked by ranks_before, plus the
  /// generation that was pinned for the batch. Asking for more items than
  /// exist (or than remain after exclusion) returns a shorter list.
  [[nodiscard]] RecommendBatch recommend_batch(std::span<const idx_t> users,
                                               int k) const;

  /// recommend_batch without the generation tag.
  [[nodiscard]] std::vector<std::vector<Recommendation>> recommend(
      std::span<const idx_t> users, int k) const {
    return recommend_batch(users, k).lists;
  }

  /// Single-user convenience wrapper.
  [[nodiscard]] std::vector<Recommendation> recommend_one(idx_t user,
                                                          int k) const;

  /// Cumulative scored/pruned candidate counts since construction.
  [[nodiscard]] std::uint64_t items_scored() const {
    return items_scored_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t items_pruned() const {
    return items_pruned_.load(std::memory_order_relaxed);
  }

  /// Wall-clock latency per recommend() batch.
  [[nodiscard]] LatencySummary batch_wall_summary() const {
    return batch_wall_.summary();
  }
  /// Backend modeled time per batch (all-zero for wall-clock-only backends).
  [[nodiscard]] LatencySummary batch_modeled_summary() const {
    return batch_modeled_.summary();
  }
  /// Modeled interconnect slice of batch time — the cross-device candidate
  /// gather. All-zero except for multi-device backends.
  [[nodiscard]] LatencySummary batch_interconnect_summary() const {
    return batch_interconnect_.summary();
  }

 private:
  void init();  // shared constructor tail: option clamp + backend selection

  const FactorStore* static_store_ = nullptr;  // exactly one of these is set
  const LiveFactorStore* live_ = nullptr;
  TopKOptions opt_;
  std::unique_ptr<CpuScoringBackend> owned_backend_;  // when opt_.backend null
  ScoringBackend* backend_;
  mutable std::atomic<std::uint64_t> items_scored_{0};
  mutable std::atomic<std::uint64_t> items_pruned_{0};
  mutable LatencyTracker batch_wall_;
  mutable LatencyTracker batch_modeled_;
  mutable LatencyTracker batch_interconnect_;
};

}  // namespace cumf::serve
