#pragma once

// Counters surfaced by the serving layer.
//
// Each component owns its slice — the TopKEngine counts scored/pruned
// candidates, the ScoreCache counts hits/misses, the RequestBatcher counts
// queries and flushed micro-batches — and RequestBatcher::stats() merges them
// into one snapshot for operators and the throughput bench.

#include <cstdint>

namespace cumf::serve {

struct ServeStats {
  std::uint64_t queries = 0;       // user queries answered (hit or miss)
  std::uint64_t batches = 0;       // micro-batches flushed to the engine
  std::uint64_t cache_hits = 0;    // answered straight from the LRU cache
  std::uint64_t cache_misses = 0;  // had to be scored
  std::uint64_t items_scored = 0;  // user×item dot products actually computed
  std::uint64_t items_pruned = 0;  // candidates skipped via the norm bound
};

}  // namespace cumf::serve
