#pragma once

// Counters surfaced by the serving layer.
//
// Each component owns its slice — the TopKEngine counts scored/pruned
// candidates and per-batch wall/modeled latencies, the ScoreCache counts
// hits/misses, the RequestBatcher counts queries and flushed micro-batches —
// and RequestBatcher::stats() merges them into one snapshot for operators and
// the throughput bench.

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <iterator>
#include <vector>

namespace cumf::serve {

/// Fixed histogram bucket upper bounds (milliseconds) shared by every
/// LatencyTracker, so the metrics registry (obs/metrics.hpp) can expose
/// cumulative latency histograms straight from per-bucket counters without
/// touching the percentile window.
inline constexpr std::array<double, 14> kLatencyBucketBoundsMs = {
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
    500.0, 1000.0};
/// Bucket count including the final overflow (> last bound) bucket.
inline constexpr std::size_t kLatencyBuckets =
    kLatencyBucketBoundsMs.size() + 1;

/// Percentile snapshot of a latency distribution, in milliseconds.
struct LatencySummary {
  /// Samples in the retained window — exactly what the percentiles and max
  /// below cover.
  std::uint64_t samples = 0;
  /// Samples recorded over the tracker's lifetime (>= samples once the ring
  /// window has wrapped). Consumers reading "how many queries produced these
  /// percentiles" want `samples`; throughput math wants this.
  std::uint64_t total_recorded = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  /// Lifetime sum of recorded samples (ms) — pairs with total_recorded for
  /// the histogram's _sum/_count exposition.
  double sum_ms = 0.0;
  /// Lifetime per-bucket counts (non-cumulative), aligned with
  /// kLatencyBucketBoundsMs plus the overflow bucket. Sums to
  /// total_recorded.
  std::array<std::uint64_t, kLatencyBuckets> bucket_counts{};
};

/// Thread-safe latency recorder. Keeps a bounded window of the most recent
/// samples (old ones are overwritten ring-buffer style), so long-lived
/// servers report *current* tail behaviour, not lifetime averages —
/// alongside lifetime histogram buckets (kLatencyBucketBoundsMs) for the
/// metrics exposition.
///
/// record() is wait-free — one fetch_add to claim a ring slot plus relaxed
/// atomic stores — so a stats()/summary() reader can never stall the query
/// path (the old design copied the whole 16K window under a mutex that
/// record() also took, a visible stats-op hiccup at high qps). summary()
/// snapshots the ring with relaxed loads and sorts its private copy; under
/// concurrent writes a slot may read as a slightly newer sample, which only
/// perturbs the reported window by the handful of in-flight records.
class LatencyTracker {
 public:
  /// `window` is rounded up to a power of two (ring indexing by mask).
  explicit LatencyTracker(std::size_t window = 1 << 14)
      : ring_(round_up_pow2(window == 0 ? 1 : window)) {}

  LatencyTracker(const LatencyTracker&) = delete;
  LatencyTracker& operator=(const LatencyTracker&) = delete;

  void record(double ms) {
    const std::uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
    ring_[ticket & (ring_.size() - 1)].store(ms, std::memory_order_relaxed);
    buckets_[bucket_index(ms)].fetch_add(1, std::memory_order_relaxed);
    // Nanosecond integer sum: fetch_add is wait-free where a CAS loop on an
    // atomic<double> is not. Latencies are non-negative; sub-ns truncation
    // is far below measurement noise.
    sum_ns_.fetch_add(static_cast<std::uint64_t>(ms * 1e6),
                      std::memory_order_relaxed);
  }

  /// Nearest-rank percentiles over the retained window, plus the lifetime
  /// histogram. Lock-free: never blocks record() callers.
  [[nodiscard]] LatencySummary summary() const {
    LatencySummary out;
    const std::uint64_t total = next_.load(std::memory_order_acquire);
    const std::uint64_t n = std::min<std::uint64_t>(
        total, static_cast<std::uint64_t>(ring_.size()));
    out.samples = n;
    out.total_recorded = total;
    out.sum_ms =
        static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) / 1e6;
    for (std::size_t i = 0; i < kLatencyBuckets; ++i) {
      out.bucket_counts[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    if (n == 0) return out;
    std::vector<double> sorted;
    sorted.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      sorted.push_back(ring_[i].load(std::memory_order_relaxed));
    }
    std::sort(sorted.begin(), sorted.end());
    const auto rank = [&](double q) {
      const auto count = static_cast<double>(sorted.size());
      const auto i = static_cast<std::size_t>(std::ceil(q * count)) - 1;
      return sorted[std::min(i, sorted.size() - 1)];
    };
    out.p50_ms = rank(0.50);
    out.p95_ms = rank(0.95);
    out.p99_ms = rank(0.99);
    out.max_ms = sorted.back();
    return out;
  }

  /// Bucket index into kLatencyBucketBoundsMs for one sample (the last
  /// index is the overflow bucket).
  static std::size_t bucket_index(double ms) {
    const auto it = std::lower_bound(kLatencyBucketBoundsMs.begin(),
                                     kLatencyBucketBoundsMs.end(), ms);
    return static_cast<std::size_t>(
        std::distance(kLatencyBucketBoundsMs.begin(), it));
  }

 private:
  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  std::vector<std::atomic<double>> ring_;
  std::atomic<std::uint64_t> next_{0};  // total recorded; ring write cursor
  std::array<std::atomic<std::uint64_t>, kLatencyBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_ns_{0};
};

/// Counters exported by the retrain orchestrator (src/orchestrate/) when one
/// runs behind the serving stack. All-zero otherwise. Defined here — not in
/// orchestrate/ — so the stats op and its consumers need no dependency on
/// the orchestration layer.
struct OrchestratorStats {
  std::uint64_t retrains = 0;     // retrain cycles that ran a training pass
  std::uint64_t promotions = 0;   // candidates that passed the gate + swapped
  std::uint64_t rejections = 0;   // candidates the quality gate refused
  std::uint64_t rollbacks = 0;    // reverts to the last-good checkpoint
  std::uint64_t deltas_ingested = 0;  // rating deltas accepted by the log
  std::uint64_t deltas_rejected = 0;  // deltas with out-of-range ids
  /// Gate metrics of the most recently evaluated candidate.
  double last_gate_rmse = 0.0;
  double last_gate_recall = 0.0;
  /// Baseline (currently-serving model) metrics candidates are judged
  /// against.
  double baseline_rmse = 0.0;
  double baseline_recall = 0.0;
  /// Cost of the most recent training pass, on both time axes.
  double last_train_wall_ms = 0.0;
  double last_train_modeled_s = 0.0;
  /// Per-tier splits of retrains/promotions/rejections. The aggregate
  /// counters above stay the sums (external submit_candidate promotions
  /// count under the full tier). Tier values: 0 = full ALS, 1 = incremental
  /// SGD — see orchestrate::TrainTier.
  std::uint64_t retrains_full = 0;
  std::uint64_t retrains_incremental = 0;
  std::uint64_t promotions_full = 0;
  std::uint64_t promotions_incremental = 0;
  std::uint64_t rejections_full = 0;
  std::uint64_t rejections_incremental = 0;
  /// Full-ALS passes forced by the gate rejecting an incremental candidate
  /// in the same cycle (the escalation rule: a rejection never stalls the
  /// pipeline).
  std::uint64_t escalations = 0;
  /// Full-ALS cycles scheduled by the auto tier's consolidation cadence.
  std::uint64_t consolidations = 0;
  /// Tier of the most recent training pass (0 full, 1 incremental).
  std::uint64_t last_train_tier = 0;
};

/// Burn-rate view of the serving SLOs, filled from an attached
/// obs::SloMonitor (RequestBatcher::set_slo). All-zero with `attached`
/// false when no monitor is wired in. Defined here — not in obs/ — as plain
/// fields, so stats consumers need no dependency on the SLO engine.
struct SloStats {
  bool attached = false;
  /// Latency SLO threshold (queries slower than this are violations).
  double latency_threshold_ms = 0.0;
  /// Alert states: 0 = ok, 1 = warn, 2 = page (obs::AlertState).
  std::uint64_t latency_state = 0;
  std::uint64_t availability_state = 0;
  /// Fast/slow-window burn rates (error rate ÷ error budget).
  double latency_fast_burn = 0.0;
  double latency_slow_burn = 0.0;
  double availability_fast_burn = 0.0;
  double availability_slow_burn = 0.0;
  /// Lifetime counts: latency-SLO violations and non-kOk replies (sheds
  /// included).
  std::uint64_t latency_violations = 0;
  std::uint64_t availability_errors = 0;
  /// Alert-state transitions so far, per objective.
  std::uint64_t latency_transitions = 0;
  std::uint64_t availability_transitions = 0;
  /// Slow-query exemplars captured over the monitor's lifetime.
  std::uint64_t exemplars_captured = 0;
};

/// Counters exported by the TCP front-end (net/server.hpp) when one runs in
/// front of the serving stack. All-zero otherwise. Defined here — not in
/// net/ — so the metrics exposition and the stats op need no dependency on
/// the network layer.
struct NetMetrics {
  std::uint64_t connections_accepted = 0;
  /// Connections turned away at accept time (ServerOptions::max_connections).
  std::uint64_t connections_rejected = 0;
  /// Connections dropped for malformed frames.
  std::uint64_t protocol_errors = 0;
  /// Connections closed on a hard recv() error (ECONNRESET and friends);
  /// without this count a dead peer would linger until a later epoll error.
  std::uint64_t recv_errors = 0;
  /// Connections closed because the client stopped reading replies and its
  /// buffered output exceeded ServerOptions::max_out_buffer.
  std::uint64_t slow_client_closes = 0;
  /// Queries answered Status::kOverloaded because the shard's completion
  /// lane was at ServerOptions::max_queued_replies.
  std::uint64_t overload_sheds = 0;
  /// Epoll io threads (shards) the server runs; 0 when no server.
  std::uint64_t io_shards = 0;
  /// Connections open at snapshot time.
  std::uint64_t open_connections = 0;
};

struct ServeStats {
  std::uint64_t queries = 0;       // user queries answered (hit or miss)
  std::uint64_t batches = 0;       // micro-batches flushed to the engine
  std::uint64_t cache_hits = 0;    // answered straight from the LRU cache
  std::uint64_t cache_misses = 0;  // had to be scored
  std::uint64_t items_scored = 0;  // user×item dot products actually computed
  std::uint64_t items_pruned = 0;  // candidates skipped via the norm bound

  /// Devices the scoring backend spreads the model across (1 = host or a
  /// single simulated device).
  std::uint64_t serving_devices = 1;

  /// Model generation serving right now (0 = static FactorStore, no live
  /// refresh in the stack).
  std::uint64_t generation = 0;
  /// Successful hot swaps into the LiveFactorStore.
  std::uint64_t refreshes = 0;
  /// Refreshes rejected (missing/corrupt checkpoint); the old generation
  /// kept serving.
  std::uint64_t refresh_failures = 0;
  /// Superseded-generation cache entries evicted lazily since the batcher's
  /// cache was built (the incremental-invalidation cost of swaps).
  std::uint64_t cache_stale_evictions = 0;

  /// Per-query end-to-end latency, submit() → future fulfillment, recorded
  /// by the RequestBatcher for *every* answered query: cache hits contribute
  /// their near-zero samples (that is what the cache buys), misses pay
  /// queueing plus their micro-batch's service time, and rejected ids are
  /// answered (with an error) too. By construction each miss's sample is at
  /// least the wall time of the engine batch that scored it, so on a
  /// hit-free run e2e p99 >= batch_wall p99.
  LatencySummary e2e;
  /// Per-query queueing delay, submit() → micro-batch take by the flusher —
  /// the slice of e2e spent waiting for a batch to fill or the deadline to
  /// fire. Bounded by BatcherOptions::max_delay plus the time any already
  /// in-flight batch needs to clear the flusher.
  LatencySummary queue_delay;
  /// Accept→reply latency measured by the TCP front-end (net/server.hpp):
  /// request frame fully read → response frame handed to the socket. All
  /// zero when no server is attached; filled by TcpServer::stats().
  LatencySummary net_e2e;

  /// Wall-clock time per engine batch (TopKEngine::recommend call). Engine
  /// recent-window summaries: they cover every caller of the engine, not
  /// just the component whose counters ride alongside.
  LatencySummary batch_wall;
  /// Backend modeled time per batch; all-zero for wall-clock-only backends,
  /// the simulated-GPU kernel time for GpuSimScoringBackend.
  LatencySummary batch_modeled;
  /// Modeled cross-device candidate-gather time per batch; nonzero only when
  /// a multi-device backend is serving (the interconnect slice of
  /// batch_modeled).
  LatencySummary batch_interconnect;
  /// Duration of each refresh's pointer-swap critical section (queries never
  /// block on it — they hold generation pins, not locks).
  LatencySummary swap_pause;

  /// Retrain-orchestrator counters; all-zero when no orchestrator is
  /// attached. Filled by Orchestrator::merge_into (the TcpServer's
  /// augment_stats hook routes it into the stats op).
  OrchestratorStats orchestrator;

  /// SLO burn-rate slice; all-zero (attached=false) when no SloMonitor is
  /// wired into the batcher.
  SloStats slo;

  /// TCP front-end counters; all-zero when no server is attached. Filled by
  /// TcpServer::stats().
  NetMetrics net;
};

}  // namespace cumf::serve
