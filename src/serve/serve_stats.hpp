#pragma once

// Counters surfaced by the serving layer.
//
// Each component owns its slice — the TopKEngine counts scored/pruned
// candidates and per-batch wall/modeled latencies, the ScoreCache counts
// hits/misses, the RequestBatcher counts queries and flushed micro-batches —
// and RequestBatcher::stats() merges them into one snapshot for operators and
// the throughput bench.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <vector>

namespace cumf::serve {

/// Percentile snapshot of a latency distribution, in milliseconds.
struct LatencySummary {
  std::uint64_t samples = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

/// Thread-safe latency recorder. Keeps a bounded window of the most recent
/// samples (old ones are overwritten ring-buffer style), so long-lived
/// servers report *current* tail behaviour, not lifetime averages.
class LatencyTracker {
 public:
  explicit LatencyTracker(std::size_t window = 1 << 14) : window_(window) {}

  void record(double ms) {
    std::lock_guard<std::mutex> lock(mu_);
    if (samples_.size() < window_) {
      samples_.push_back(ms);
    } else {
      samples_[next_ % window_] = ms;
    }
    ++next_;
  }

  /// Nearest-rank percentiles over the retained window.
  [[nodiscard]] LatencySummary summary() const {
    std::vector<double> sorted;
    std::uint64_t total = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      sorted = samples_;
      total = next_;
    }
    LatencySummary out;
    out.samples = total;
    if (sorted.empty()) return out;
    std::sort(sorted.begin(), sorted.end());
    const auto rank = [&](double q) {
      const auto n = static_cast<double>(sorted.size());
      const auto i = static_cast<std::size_t>(std::ceil(q * n)) - 1;
      return sorted[std::min(i, sorted.size() - 1)];
    };
    out.p50_ms = rank(0.50);
    out.p95_ms = rank(0.95);
    out.p99_ms = rank(0.99);
    out.max_ms = sorted.back();
    return out;
  }

 private:
  std::size_t window_;
  mutable std::mutex mu_;
  std::vector<double> samples_;
  std::uint64_t next_ = 0;  // total recorded; ring write cursor
};

struct ServeStats {
  std::uint64_t queries = 0;       // user queries answered (hit or miss)
  std::uint64_t batches = 0;       // micro-batches flushed to the engine
  std::uint64_t cache_hits = 0;    // answered straight from the LRU cache
  std::uint64_t cache_misses = 0;  // had to be scored
  std::uint64_t items_scored = 0;  // user×item dot products actually computed
  std::uint64_t items_pruned = 0;  // candidates skipped via the norm bound

  /// Model generation serving right now (0 = static FactorStore, no live
  /// refresh in the stack).
  std::uint64_t generation = 0;
  /// Successful hot swaps into the LiveFactorStore.
  std::uint64_t refreshes = 0;
  /// Refreshes rejected (missing/corrupt checkpoint); the old generation
  /// kept serving.
  std::uint64_t refresh_failures = 0;
  /// Superseded-generation cache entries evicted lazily since the batcher's
  /// cache was built (the incremental-invalidation cost of swaps).
  std::uint64_t cache_stale_evictions = 0;

  /// Wall-clock time per engine batch (TopKEngine::recommend call). Engine
  /// recent-window summaries: they cover every caller of the engine, not
  /// just the component whose counters ride alongside.
  LatencySummary batch_wall;
  /// Backend modeled time per batch; all-zero for wall-clock-only backends,
  /// the simulated-GPU kernel time for GpuSimScoringBackend.
  LatencySummary batch_modeled;
  /// Duration of each refresh's pointer-swap critical section (queries never
  /// block on it — they hold generation pins, not locks).
  LatencySummary swap_pause;
};

}  // namespace cumf::serve
