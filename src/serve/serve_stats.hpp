#pragma once

// Counters surfaced by the serving layer.
//
// Each component owns its slice — the TopKEngine counts scored/pruned
// candidates and per-batch wall/modeled latencies, the ScoreCache counts
// hits/misses, the RequestBatcher counts queries and flushed micro-batches —
// and RequestBatcher::stats() merges them into one snapshot for operators and
// the throughput bench.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <vector>

namespace cumf::serve {

/// Percentile snapshot of a latency distribution, in milliseconds.
struct LatencySummary {
  /// Samples in the retained window — exactly what the percentiles and max
  /// below cover.
  std::uint64_t samples = 0;
  /// Samples recorded over the tracker's lifetime (>= samples once the ring
  /// window has wrapped). Consumers reading "how many queries produced these
  /// percentiles" want `samples`; throughput math wants this.
  std::uint64_t total_recorded = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

/// Thread-safe latency recorder. Keeps a bounded window of the most recent
/// samples (old ones are overwritten ring-buffer style), so long-lived
/// servers report *current* tail behaviour, not lifetime averages.
class LatencyTracker {
 public:
  explicit LatencyTracker(std::size_t window = 1 << 14) : window_(window) {}

  void record(double ms) {
    std::lock_guard<std::mutex> lock(mu_);
    if (samples_.size() < window_) {
      samples_.push_back(ms);
    } else {
      samples_[next_ % window_] = ms;
    }
    ++next_;
  }

  /// Nearest-rank percentiles over the retained window.
  [[nodiscard]] LatencySummary summary() const {
    std::vector<double> sorted;
    std::uint64_t total = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      sorted = samples_;
      total = next_;
    }
    LatencySummary out;
    out.samples = sorted.size();
    out.total_recorded = total;
    if (sorted.empty()) return out;
    std::sort(sorted.begin(), sorted.end());
    const auto rank = [&](double q) {
      const auto n = static_cast<double>(sorted.size());
      const auto i = static_cast<std::size_t>(std::ceil(q * n)) - 1;
      return sorted[std::min(i, sorted.size() - 1)];
    };
    out.p50_ms = rank(0.50);
    out.p95_ms = rank(0.95);
    out.p99_ms = rank(0.99);
    out.max_ms = sorted.back();
    return out;
  }

 private:
  std::size_t window_;
  mutable std::mutex mu_;
  std::vector<double> samples_;
  std::uint64_t next_ = 0;  // total recorded; ring write cursor
};

/// Counters exported by the retrain orchestrator (src/orchestrate/) when one
/// runs behind the serving stack. All-zero otherwise. Defined here — not in
/// orchestrate/ — so the stats op and its consumers need no dependency on
/// the orchestration layer.
struct OrchestratorStats {
  std::uint64_t retrains = 0;     // retrain cycles that ran a training pass
  std::uint64_t promotions = 0;   // candidates that passed the gate + swapped
  std::uint64_t rejections = 0;   // candidates the quality gate refused
  std::uint64_t rollbacks = 0;    // reverts to the last-good checkpoint
  std::uint64_t deltas_ingested = 0;  // rating deltas accepted by the log
  std::uint64_t deltas_rejected = 0;  // deltas with out-of-range ids
  /// Gate metrics of the most recently evaluated candidate.
  double last_gate_rmse = 0.0;
  double last_gate_recall = 0.0;
  /// Baseline (currently-serving model) metrics candidates are judged
  /// against.
  double baseline_rmse = 0.0;
  double baseline_recall = 0.0;
  /// Cost of the most recent training pass, on both time axes.
  double last_train_wall_ms = 0.0;
  double last_train_modeled_s = 0.0;
};

struct ServeStats {
  std::uint64_t queries = 0;       // user queries answered (hit or miss)
  std::uint64_t batches = 0;       // micro-batches flushed to the engine
  std::uint64_t cache_hits = 0;    // answered straight from the LRU cache
  std::uint64_t cache_misses = 0;  // had to be scored
  std::uint64_t items_scored = 0;  // user×item dot products actually computed
  std::uint64_t items_pruned = 0;  // candidates skipped via the norm bound

  /// Model generation serving right now (0 = static FactorStore, no live
  /// refresh in the stack).
  std::uint64_t generation = 0;
  /// Successful hot swaps into the LiveFactorStore.
  std::uint64_t refreshes = 0;
  /// Refreshes rejected (missing/corrupt checkpoint); the old generation
  /// kept serving.
  std::uint64_t refresh_failures = 0;
  /// Superseded-generation cache entries evicted lazily since the batcher's
  /// cache was built (the incremental-invalidation cost of swaps).
  std::uint64_t cache_stale_evictions = 0;

  /// Per-query end-to-end latency, submit() → future fulfillment, recorded
  /// by the RequestBatcher for *every* answered query: cache hits contribute
  /// their near-zero samples (that is what the cache buys), misses pay
  /// queueing plus their micro-batch's service time, and rejected ids are
  /// answered (with an error) too. By construction each miss's sample is at
  /// least the wall time of the engine batch that scored it, so on a
  /// hit-free run e2e p99 >= batch_wall p99.
  LatencySummary e2e;
  /// Per-query queueing delay, submit() → micro-batch take by the flusher —
  /// the slice of e2e spent waiting for a batch to fill or the deadline to
  /// fire. Bounded by BatcherOptions::max_delay plus the time any already
  /// in-flight batch needs to clear the flusher.
  LatencySummary queue_delay;
  /// Accept→reply latency measured by the TCP front-end (net/server.hpp):
  /// request frame fully read → response frame handed to the socket. All
  /// zero when no server is attached; filled by TcpServer::stats().
  LatencySummary net_e2e;

  /// Wall-clock time per engine batch (TopKEngine::recommend call). Engine
  /// recent-window summaries: they cover every caller of the engine, not
  /// just the component whose counters ride alongside.
  LatencySummary batch_wall;
  /// Backend modeled time per batch; all-zero for wall-clock-only backends,
  /// the simulated-GPU kernel time for GpuSimScoringBackend.
  LatencySummary batch_modeled;
  /// Duration of each refresh's pointer-swap critical section (queries never
  /// block on it — they hold generation pins, not locks).
  LatencySummary swap_pause;

  /// Retrain-orchestrator counters; all-zero when no orchestrator is
  /// attached. Filled by Orchestrator::merge_into (the TcpServer's
  /// augment_stats hook routes it into the stats op).
  OrchestratorStats orchestrator;
};

}  // namespace cumf::serve
