#include "serve/topk.hpp"

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <string>

#include "serve/scoring_backend.hpp"
#include "util/stopwatch.hpp"

namespace cumf::serve {

TopKEngine::TopKEngine(const FactorStore& store, TopKOptions opt)
    : store_(store), opt_(opt) {
  if (opt_.user_block < 1) opt_.user_block = 1;
  if (opt_.backend != nullptr) {
    backend_ = opt_.backend;
  } else {
    owned_backend_ = std::make_unique<CpuScoringBackend>();
    backend_ = owned_backend_.get();
  }
}

TopKEngine::~TopKEngine() = default;

std::vector<std::vector<Recommendation>> TopKEngine::recommend(
    std::span<const idx_t> users, int k) const {
  const std::size_t n = users.size();
  std::vector<std::vector<Recommendation>> result(n);
  if (n == 0 || k <= 0) return result;
  util::Stopwatch watch;

  // Reject out-of-range ids before any factor access — the store indexes X
  // unchecked, and the batcher is the front door for untrusted traffic.
  for (const idx_t u : users) {
    if (u < 0 || u >= store_.num_users()) {
      throw std::out_of_range("TopKEngine: user id " + std::to_string(u) +
                              " outside [0, " +
                              std::to_string(store_.num_users()) + ")");
    }
  }

  // Per-user sorted rated lists, built once per call so the inner loop's
  // exclusion check is a binary search over a small array.
  std::vector<std::vector<idx_t>> rated(n);
  if (opt_.exclude_rated != nullptr) {
    const auto& R = *opt_.exclude_rated;
    for (std::size_t i = 0; i < n; ++i) {
      if (users[i] < R.rows) {
        const auto cols = R.row_cols(users[i]);
        rated[i].assign(cols.begin(), cols.end());
        std::sort(rated[i].begin(), rated[i].end());
      }
    }
  }

  const int num_shards = store_.num_shards();
  const std::size_t block = static_cast<std::size_t>(opt_.user_block);
  const std::size_t num_blocks = (n + block - 1) / block;
  const std::size_t num_tasks = num_blocks * static_cast<std::size_t>(num_shards);

  // partial[block * num_shards + shard][user-in-block] = that shard's top-k.
  std::vector<std::vector<std::vector<Recommendation>>> partial(num_tasks);

  util::ThreadPool& pool =
      opt_.pool != nullptr ? *opt_.pool : util::ThreadPool::global();
  util::parallel_for(
      pool, 0, static_cast<nnz_t>(num_tasks),
      [&](nnz_t task) {
        const std::size_t t = static_cast<std::size_t>(task);
        const std::size_t b = t / static_cast<std::size_t>(num_shards);
        const int s = static_cast<int>(t % static_cast<std::size_t>(num_shards));
        auto& slots = partial[t];
        SweepTask sweep;
        sweep.store = &store_;
        sweep.users = users;
        sweep.rated = &rated;
        sweep.first = static_cast<int>(b * block);
        sweep.last = static_cast<int>(std::min(n, (b + 1) * block));
        sweep.shard = &store_.shard(s);
        sweep.k = k;
        sweep.prune = opt_.prune;
        sweep.exclude = opt_.exclude_rated != nullptr;
        slots.resize(static_cast<std::size_t>(sweep.last - sweep.first));
        for (auto& heap : slots) heap.reserve(static_cast<std::size_t>(k));
        const SweepCounters c = backend_->sweep(sweep, slots);
        items_scored_.fetch_add(c.scored, std::memory_order_relaxed);
        items_pruned_.fetch_add(c.pruned, std::memory_order_relaxed);
      });

  // Merge the per-shard heaps per user and rank the union.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t b = i / block;
    const std::size_t bi = i % block;
    auto& merged = result[i];
    for (int s = 0; s < num_shards; ++s) {
      const auto& heap =
          partial[b * static_cast<std::size_t>(num_shards) +
                  static_cast<std::size_t>(s)][bi];
      merged.insert(merged.end(), heap.begin(), heap.end());
    }
    std::sort(merged.begin(), merged.end(), ranks_before);
    if (merged.size() > static_cast<std::size_t>(k)) {
      merged.resize(static_cast<std::size_t>(k));
    }
  }

  const double modeled_s = backend_->finish_batch();
  if (modeled_s > 0.0) batch_modeled_.record(modeled_s * 1e3);
  batch_wall_.record(watch.milliseconds());
  return result;
}

std::vector<Recommendation> TopKEngine::recommend_one(idx_t user, int k) const {
  return recommend(std::span<const idx_t>(&user, 1), k)[0];
}

}  // namespace cumf::serve
