#include "serve/topk.hpp"

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <string>

#include "linalg/hermitian.hpp"

namespace cumf::serve {

namespace {

// Bounded-heap comparator: "less" = ranks earlier, so the std::heap max — its
// front — is the *worst* kept entry, which a full heap evicts when a better
// candidate arrives.
bool heap_cmp(const Recommendation& a, const Recommendation& b) {
  return ranks_before(a, b);
}

// Relative padding on the Cauchy–Schwarz bound. Norms and dots are both
// accumulated in double from the same float inputs, so their rounding error
// is far below this; the padding keeps pruning strictly conservative.
constexpr double kBoundSlack = 1.0 + 1e-9;

bool is_rated(const std::vector<idx_t>& rated, idx_t item) {
  return std::binary_search(rated.begin(), rated.end(), item);
}

// Scores four users against one θ row in a single pass over f, keeping four
// independent accumulator chains in flight. A lone double accumulator is
// latency-bound on its add chain; four chains fill the pipeline — the serving
// analogue of the paper's register-blocked update kernels (§3.1, Fig. 7).
// Each chain accumulates in exactly linalg::dot's element order and widening,
// so the results are bit-identical to the one-user path.
void dot4(const real_t* x0, const real_t* x1, const real_t* x2,
          const real_t* x3, const real_t* t, int f, double out[4]) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  for (int j = 0; j < f; ++j) {
    const double tj = t[j];
    s0 += static_cast<double>(x0[j]) * tj;
    s1 += static_cast<double>(x1[j]) * tj;
    s2 += static_cast<double>(x2[j]) * tj;
    s3 += static_cast<double>(x3[j]) * tj;
  }
  out[0] = s0;
  out[1] = s1;
  out[2] = s2;
  out[3] = s3;
}

}  // namespace

TopKEngine::TopKEngine(const FactorStore& store, TopKOptions opt)
    : store_(store), opt_(opt) {
  if (opt_.user_block < 1) opt_.user_block = 1;
}

void TopKEngine::score_block(std::span<const idx_t> users,
                             const std::vector<std::vector<idx_t>>& rated,
                             int first, int last, const FactorShard& shard,
                             int k, std::vector<std::vector<Recommendation>>& out) const {
  const int f = store_.f();
  const std::size_t block = static_cast<std::size_t>(last - first);
  const std::size_t shard_items = shard.item_ids.size();
  std::vector<char> done(block, 0);
  std::size_t active = block;
  std::uint64_t scored = 0;
  std::uint64_t pruned = 0;

  const auto offer = [k](std::vector<Recommendation>& heap,
                         const Recommendation& cand) {
    if (static_cast<int>(heap.size()) < k) {
      heap.push_back(cand);
      std::push_heap(heap.begin(), heap.end(), heap_cmp);
    } else if (ranks_before(cand, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), heap_cmp);
      heap.back() = cand;
      std::push_heap(heap.begin(), heap.end(), heap_cmp);
    }
  };

  // Item-major sweep: each θ_v row is read once and scored against every
  // still-active user in the block while it is hot. Users that survive the
  // prune/exclude gates are scored four at a time (dot4) — the batching win.
  std::vector<std::size_t> cand;  // block slots to score for the current item
  cand.reserve(block);
  for (std::size_t slot = 0; slot < shard_items && active > 0; ++slot) {
    const idx_t gid = shard.item_ids[slot];
    const real_t* tv = shard.theta.row(static_cast<idx_t>(slot));
    const double item_norm = shard.norms[slot];

    cand.clear();
    for (std::size_t bi = 0; bi < block; ++bi) {
      if (done[bi]) continue;
      const idx_t user = users[static_cast<std::size_t>(first) + bi];
      const auto& heap = out[bi];

      if (opt_.prune && static_cast<int>(heap.size()) == k) {
        const double bound = item_norm * store_.user_norm(user) * kBoundSlack;
        // Items are in descending-norm order, so once the bound drops below
        // this user's k-th best the rest of the shard cannot place.
        if (bound < heap.front().score) {
          done[bi] = 1;
          --active;
          pruned += shard_items - slot;
          continue;
        }
      }

      if (opt_.exclude_rated != nullptr &&
          is_rated(rated[static_cast<std::size_t>(first) + bi], gid)) {
        continue;
      }
      cand.push_back(bi);
    }

    scored += cand.size();
    std::size_t c = 0;
    for (; c + 4 <= cand.size(); c += 4) {
      double scores[4];
      dot4(store_.user(users[static_cast<std::size_t>(first) + cand[c]]),
           store_.user(users[static_cast<std::size_t>(first) + cand[c + 1]]),
           store_.user(users[static_cast<std::size_t>(first) + cand[c + 2]]),
           store_.user(users[static_cast<std::size_t>(first) + cand[c + 3]]),
           tv, f, scores);
      for (int r = 0; r < 4; ++r) {
        offer(out[cand[c + static_cast<std::size_t>(r)]],
              Recommendation{gid, scores[r]});
      }
    }
    for (; c < cand.size(); ++c) {
      const idx_t user = users[static_cast<std::size_t>(first) + cand[c]];
      offer(out[cand[c]], Recommendation{gid, linalg::dot(store_.user(user), tv, f)});
    }
  }

  items_scored_.fetch_add(scored, std::memory_order_relaxed);
  items_pruned_.fetch_add(pruned, std::memory_order_relaxed);
}

std::vector<std::vector<Recommendation>> TopKEngine::recommend(
    std::span<const idx_t> users, int k) const {
  const std::size_t n = users.size();
  std::vector<std::vector<Recommendation>> result(n);
  if (n == 0 || k <= 0) return result;

  // Reject out-of-range ids before any factor access — the store indexes X
  // unchecked, and the batcher is the front door for untrusted traffic.
  for (const idx_t u : users) {
    if (u < 0 || u >= store_.num_users()) {
      throw std::out_of_range("TopKEngine: user id " + std::to_string(u) +
                              " outside [0, " +
                              std::to_string(store_.num_users()) + ")");
    }
  }

  // Per-user sorted rated lists, built once per call so the inner loop's
  // exclusion check is a binary search over a small array.
  std::vector<std::vector<idx_t>> rated(n);
  if (opt_.exclude_rated != nullptr) {
    const auto& R = *opt_.exclude_rated;
    for (std::size_t i = 0; i < n; ++i) {
      if (users[i] < R.rows) {
        const auto cols = R.row_cols(users[i]);
        rated[i].assign(cols.begin(), cols.end());
        std::sort(rated[i].begin(), rated[i].end());
      }
    }
  }

  const int num_shards = store_.num_shards();
  const std::size_t block = static_cast<std::size_t>(opt_.user_block);
  const std::size_t num_blocks = (n + block - 1) / block;
  const std::size_t num_tasks = num_blocks * static_cast<std::size_t>(num_shards);

  // partial[block * num_shards + shard][user-in-block] = that shard's top-k.
  std::vector<std::vector<std::vector<Recommendation>>> partial(num_tasks);

  util::ThreadPool& pool =
      opt_.pool != nullptr ? *opt_.pool : util::ThreadPool::global();
  util::parallel_for(
      pool, 0, static_cast<nnz_t>(num_tasks),
      [&](nnz_t task) {
        const std::size_t t = static_cast<std::size_t>(task);
        const std::size_t b = t / static_cast<std::size_t>(num_shards);
        const int s = static_cast<int>(t % static_cast<std::size_t>(num_shards));
        const int first = static_cast<int>(b * block);
        const int last = static_cast<int>(std::min(n, (b + 1) * block));
        auto& slots = partial[t];
        slots.resize(static_cast<std::size_t>(last - first));
        for (auto& heap : slots) heap.reserve(static_cast<std::size_t>(k));
        score_block(users, rated, first, last, store_.shard(s), k, slots);
      });

  // Merge the per-shard heaps per user and rank the union.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t b = i / block;
    const std::size_t bi = i % block;
    auto& merged = result[i];
    for (int s = 0; s < num_shards; ++s) {
      const auto& heap =
          partial[b * static_cast<std::size_t>(num_shards) +
                  static_cast<std::size_t>(s)][bi];
      merged.insert(merged.end(), heap.begin(), heap.end());
    }
    std::sort(merged.begin(), merged.end(), ranks_before);
    if (merged.size() > static_cast<std::size_t>(k)) {
      merged.resize(static_cast<std::size_t>(k));
    }
  }
  return result;
}

std::vector<Recommendation> TopKEngine::recommend_one(idx_t user, int k) const {
  return recommend(std::span<const idx_t>(&user, 1), k)[0];
}

}  // namespace cumf::serve
