#include "serve/topk.hpp"

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <string>

#include "obs/trace.hpp"
#include "serve/live_store.hpp"
#include "serve/scoring_backend.hpp"
#include "util/stopwatch.hpp"

namespace cumf::serve {

void TopKEngine::init() {
  if (opt_.user_block < 1) opt_.user_block = 1;
  if (opt_.backend != nullptr) {
    backend_ = opt_.backend;
  } else {
    owned_backend_ = std::make_unique<CpuScoringBackend>();
    backend_ = owned_backend_.get();
  }
}

TopKEngine::TopKEngine(const FactorStore& store, TopKOptions opt)
    : static_store_(&store), opt_(opt) {
  init();
}

TopKEngine::TopKEngine(const LiveFactorStore& live, TopKOptions opt)
    : live_(&live), opt_(opt) {
  init();
}

TopKEngine::~TopKEngine() = default;

const FactorStore& TopKEngine::store() const {
  if (static_store_ == nullptr) {
    throw std::logic_error(
        "TopKEngine::store(): engine serves a LiveFactorStore; pin a "
        "generation via live_store()->pin() instead");
  }
  return *static_store_;
}

idx_t TopKEngine::num_users() const {
  return live_ != nullptr ? live_->pin()->num_users()
                          : static_store_->num_users();
}

RecommendBatch TopKEngine::recommend_batch(std::span<const idx_t> users,
                                           int k) const {
  RecommendBatch out;
  const std::size_t n = users.size();
  out.lists.resize(n);

  // Pin one generation for the whole batch: every sweep, bound check, and
  // merge below reads this snapshot, no matter how many refreshes land while
  // the batch is in flight. The pin keeps it alive until we return.
  LiveFactorStore::Pinned pinned;
  if (live_ != nullptr) {
    pinned = live_->pin();
    out.generation = pinned.generation;
  }
  const FactorStore& store = live_ != nullptr ? *pinned.store : *static_store_;

  if (n == 0 || k <= 0) return out;
  util::Stopwatch watch;
  obs::TraceSpan batch_span(obs::TraceCollector::global(), "engine.batch");
  batch_span.arg("users", n);
  batch_span.arg("k", static_cast<std::uint64_t>(k));
  batch_span.arg("generation", out.generation);

  // Reject out-of-range ids before any factor access — the store indexes X
  // unchecked, and the batcher is the front door for untrusted traffic.
  for (const idx_t u : users) {
    if (u < 0 || u >= store.num_users()) {
      throw std::out_of_range("TopKEngine: user id " + std::to_string(u) +
                              " outside [0, " +
                              std::to_string(store.num_users()) + ")");
    }
  }

  // Let the backend account residency for this generation (GpuSim re-charges
  // device capacity on first sight of a new snapshot and releases drained
  // ones); static engines keep their construction-time charge.
  if (live_ != nullptr) backend_->begin_batch(pinned.store);

  auto& result = out.lists;

  // Per-user sorted rated lists, built once per call so the inner loop's
  // exclusion check is a binary search over a small array.
  std::vector<std::vector<idx_t>> rated(n);
  if (opt_.exclude_rated != nullptr) {
    const auto& R = *opt_.exclude_rated;
    for (std::size_t i = 0; i < n; ++i) {
      if (users[i] < R.rows) {
        const auto cols = R.row_cols(users[i]);
        rated[i].assign(cols.begin(), cols.end());
        std::sort(rated[i].begin(), rated[i].end());
      }
    }
  }

  const int num_shards = store.num_shards();
  const std::size_t block = static_cast<std::size_t>(opt_.user_block);
  const std::size_t num_blocks = (n + block - 1) / block;
  const std::size_t num_tasks =
      num_blocks * static_cast<std::size_t>(num_shards);

  // partial[block * num_shards + shard][user-in-block] = that shard's top-k.
  std::vector<std::vector<std::vector<Recommendation>>> partial(num_tasks);

  util::ThreadPool& pool =
      opt_.pool != nullptr ? *opt_.pool : util::ThreadPool::global();
  util::parallel_for(
      pool, 0, static_cast<nnz_t>(num_tasks),
      [&](nnz_t task) {
        const std::size_t t = static_cast<std::size_t>(task);
        const std::size_t b = t / static_cast<std::size_t>(num_shards);
        const int s =
            static_cast<int>(t % static_cast<std::size_t>(num_shards));
        // One span per shard×block sweep, on the worker that ran it — this
        // is the fan-out a slow engine.batch decomposes into.
        obs::TraceSpan sweep_span(obs::TraceCollector::global(),
                                  "engine.sweep");
        sweep_span.arg("shard", static_cast<std::uint64_t>(s));
        sweep_span.arg("block", b);
        auto& slots = partial[t];
        SweepTask sweep;
        sweep.store = &store;
        sweep.users = users;
        sweep.rated = &rated;
        sweep.first = static_cast<int>(b * block);
        sweep.last = static_cast<int>(std::min(n, (b + 1) * block));
        sweep.shard = &store.shard(s);
        sweep.k = k;
        sweep.prune = opt_.prune;
        sweep.exclude = opt_.exclude_rated != nullptr;
        slots.resize(static_cast<std::size_t>(sweep.last - sweep.first));
        for (auto& heap : slots) heap.reserve(static_cast<std::size_t>(k));
        const SweepCounters c = backend_->sweep(sweep, slots);
        sweep_span.arg("scored", c.scored);
        items_scored_.fetch_add(c.scored, std::memory_order_relaxed);
        items_pruned_.fetch_add(c.pruned, std::memory_order_relaxed);
      });

  // Scatter-gather merge. When the backend spreads shards across devices,
  // shard heaps first reduce per device (the partial top-k each device would
  // ship home), then the per-device partials merge into the final top-k.
  // ranks_before is a strict total order over distinct items, so top-k of
  // per-device top-ks equals the flat top-k over all shard heaps — grouping
  // changes the gather cost, never the answer.
  const std::vector<int> shard_dev = backend_->shard_devices(store);
  int num_devices = 1;
  for (const int d : shard_dev) num_devices = std::max(num_devices, d + 1);

  {
    obs::TraceSpan merge_span(obs::TraceCollector::global(), "engine.merge");
    merge_span.arg("users", n);
    merge_span.arg("devices", static_cast<std::uint64_t>(num_devices));

    const auto rank_truncate = [k](std::vector<Recommendation>& list) {
      std::sort(list.begin(), list.end(), ranks_before);
      if (list.size() > static_cast<std::size_t>(k)) {
        list.resize(static_cast<std::size_t>(k));
      }
    };

    std::vector<Recommendation> device_partial;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t b = i / block;
      const std::size_t bi = i % block;
      auto& merged = result[i];
      const auto heap_for = [&](int s) -> const std::vector<Recommendation>& {
        return partial[b * static_cast<std::size_t>(num_shards) +
                       static_cast<std::size_t>(s)][bi];
      };
      if (num_devices == 1) {
        for (int s = 0; s < num_shards; ++s) {
          const auto& heap = heap_for(s);
          merged.insert(merged.end(), heap.begin(), heap.end());
        }
      } else {
        for (int d = 0; d < num_devices; ++d) {
          device_partial.clear();
          for (int s = 0; s < num_shards; ++s) {
            if (shard_dev[static_cast<std::size_t>(s)] != d) continue;
            const auto& heap = heap_for(s);
            device_partial.insert(device_partial.end(), heap.begin(),
                                  heap.end());
          }
          rank_truncate(device_partial);
          merged.insert(merged.end(), device_partial.begin(),
                        device_partial.end());
        }
      }
      rank_truncate(merged);
    }
  }

  const BatchCost cost = backend_->finish_batch();
  if (cost.modeled_s > 0.0) batch_modeled_.record(cost.modeled_s * 1e3);
  if (cost.interconnect_s > 0.0) {
    batch_interconnect_.record(cost.interconnect_s * 1e3);
  }
  batch_wall_.record(watch.milliseconds());
  return out;
}

std::vector<Recommendation> TopKEngine::recommend_one(idx_t user, int k) const {
  return recommend(std::span<const idx_t>(&user, 1), k)[0];
}

}  // namespace cumf::serve
