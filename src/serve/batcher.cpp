#include "serve/batcher.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "serve/live_store.hpp"
#include "serve/scoring_backend.hpp"

namespace cumf::serve {

RequestBatcher::RequestBatcher(const TopKEngine& engine, BatcherOptions opt)
    : engine_(engine), opt_(opt), cache_(opt.cache_capacity) {
  if (opt_.k < 1) opt_.k = 1;
  if (opt_.max_batch < 1) opt_.max_batch = 1;
  base_scored_ = engine_.items_scored();
  base_pruned_ = engine_.items_pruned();
  flusher_ = std::thread([this] { flusher_loop(); });
}

RequestBatcher::~RequestBatcher() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  flusher_.join();
}

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

void RequestBatcher::trace_e2e(const Pending& p, std::uint64_t generation,
                               bool failed) const {
  if (!p.traced) return;
  auto& trace = obs::TraceCollector::global();
  trace.record_span("query.e2e", trace.to_us(p.enqueued), trace.now_us(),
                    {"user", static_cast<std::uint64_t>(p.user)},
                    {"generation", generation}, {"failed", failed ? 1u : 0u});
}

void RequestBatcher::slo_observe(idx_t user, bool traced, double e2e_ms,
                                 bool ok, double queue_ms,
                                 double engine_ms) const {
  auto* slo = slo_.load(std::memory_order_acquire);
  if (slo == nullptr) return;
  slo->observe(e2e_ms, ok);
  if (ok && traced && e2e_ms > slo->latency_threshold_ms()) {
    slo->capture_exemplar(static_cast<std::uint64_t>(user), e2e_ms, queue_ms,
                          engine_ms);
  }
}

std::future<BatchedAnswer> RequestBatcher::submit(idx_t user) {
  const auto accepted = std::chrono::steady_clock::now();
  // One sampling decision per query covers its whole traced path: a sampled
  // query emits batch.queue_wait at take time and query.e2e at fulfillment.
  auto& trace = obs::TraceCollector::global();
  const bool traced = trace.sample();
  std::promise<BatchedAnswer> promise;
  auto fut = promise.get_future();

  // Bad ids fail their own future without poisoning the micro-batch they
  // would have ridden in. In live mode the bound is the generation serving
  // *now* (one pin per submit); a swap may still shrink the model before the
  // batch runs, which run_batch turns into per-user failed futures rather
  // than a crash.
  const idx_t bound = engine_.num_users();
  if (user < 0 || user >= bound) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++queries_;
    }
    // Samples are recorded *before* the promise is fulfilled, here and in
    // run_batch: a caller that wakes on the future and reads stats() must
    // find its own query already accounted.
    const double reject_ms = ms_since(accepted);
    e2e_.record(reject_ms);
    slo_observe(user, traced, reject_ms, /*ok=*/false, 0.0, 0.0);
    if (traced) {
      trace.record_span("query.e2e", trace.to_us(accepted), trace.now_us(),
                        {"user", static_cast<std::uint64_t>(user)},
                        {"failed", 1});
    }
    promise.set_exception(std::make_exception_ptr(std::out_of_range(
        "RequestBatcher: user id " + std::to_string(user) + " outside [0, " +
        std::to_string(bound) + ")")));
    return fut;
  }

  if (opt_.cache_capacity > 0) {
    // Keep the cache's generation in step with the live store so a query
    // arriving after a swap can never be answered from superseded factors —
    // the stale entry is evicted by the get() below instead.
    if (const auto* live = engine_.live_store()) {
      cache_.set_generation(live->generation());
    }
    std::vector<Recommendation> cached;
    std::uint64_t cached_gen = 0;
    if (cache_.get(user, opt_.k, &cached, &cached_gen)) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++queries_;
      }
      // Hits contribute their (near-zero) end-to-end sample: the reported
      // percentiles cover every answered query, not just miss traffic —
      // otherwise `queries` and the latency distribution describe different
      // populations, and the cache's main effect is invisible.
      const double hit_ms = ms_since(accepted);
      e2e_.record(hit_ms);
      slo_observe(user, traced, hit_ms, /*ok=*/true, 0.0, 0.0);
      if (traced) {
        trace.record_span("query.e2e", trace.to_us(accepted), trace.now_us(),
                          {"user", static_cast<std::uint64_t>(user)},
                          {"generation", cached_gen}, {"cache_hit", 1});
      }
      promise.set_value(BatchedAnswer{std::move(cached), cached_gen});
      return fut;
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++queries_;
    pending_.push_back(Pending{user, std::move(promise), accepted, traced});
  }
  cv_.notify_one();
  return fut;
}

void RequestBatcher::flush() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    flush_now_ = true;
  }
  cv_.notify_one();
}

void RequestBatcher::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  if (!pending_.empty()) flush_now_ = true;
  cv_.notify_one();
  drained_cv_.wait(lock,
                   [this] { return pending_.empty() && !batch_in_flight_; });
}

void RequestBatcher::flusher_loop() {
  obs::TraceCollector::global().set_thread_name("batch.flusher");
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (pending_.empty()) {
      flush_now_ = false;  // any drain in progress is complete
      drained_cv_.notify_all();
      if (stop_) return;
      cv_.wait(lock,
               [this] { return stop_ || flush_now_ || !pending_.empty(); });
      // Only a flush that found nothing pending is vacuous; one that raced
      // with a submit must survive into the deadline wait below.
      if (pending_.empty()) flush_now_ = false;
      continue;
    }

    // Wait for a full micro-batch, but never past the oldest query's
    // deadline — tail latency is bounded by max_delay even at low traffic.
    const auto deadline = pending_.front().enqueued + opt_.max_delay;
    cv_.wait_until(lock, deadline, [this] {
      return stop_ || flush_now_ || pending_.size() >= opt_.max_batch;
    });

    const std::size_t take = std::min(pending_.size(), opt_.max_batch);
    // An explicit flush stays armed until the whole pending set has drained:
    // clearing it after one take stranded the sub-max_batch remainder of a
    // large pending set to wait out max_delay. Micro-batches keep their
    // max_batch shape; they just run back to back until the queue is empty.
    if (take == pending_.size()) flush_now_ = false;
    std::vector<Pending> batch;
    batch.reserve(take);
    std::move(pending_.begin(),
              pending_.begin() + static_cast<std::ptrdiff_t>(take),
              std::back_inserter(batch));
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<std::ptrdiff_t>(take));
    ++batches_;
    batch_in_flight_ = true;

    lock.unlock();
    // Queueing delay ends when the flusher takes the query into a batch;
    // what remains of its end-to-end time is service (run_batch below).
    const auto taken = std::chrono::steady_clock::now();
    auto& trace = obs::TraceCollector::global();
    for (const auto& p : batch) {
      queue_delay_.record(
          std::chrono::duration<double, std::milli>(taken - p.enqueued)
              .count());
      if (p.traced) {
        trace.record_span("batch.queue_wait", trace.to_us(p.enqueued),
                          trace.to_us(taken),
                          {"user", static_cast<std::uint64_t>(p.user)});
      }
    }
    run_batch(std::move(batch), taken);
    lock.lock();
    batch_in_flight_ = false;
    drained_cv_.notify_all();
  }
}

void RequestBatcher::run_batch(std::vector<Pending> batch,
                               std::chrono::steady_clock::time_point taken) {
  obs::TraceSpan flush_span(obs::TraceCollector::global(), "batch.flush");
  flush_span.arg("batch", batch.size());
  // Each pass either answers the batch, fails it, or strictly shrinks it
  // (a hot swap pulled users out of range mid-flight), so the loop ends.
  while (!batch.empty()) {
    // Duplicate users in one micro-batch are scored once.
    std::vector<idx_t> unique_users;
    std::vector<std::size_t> slot_of;  // batch index -> unique_users index
    unique_users.reserve(batch.size());
    slot_of.reserve(batch.size());
    for (const auto& p : batch) {
      const auto it =
          std::find(unique_users.begin(), unique_users.end(), p.user);
      if (it == unique_users.end()) {
        slot_of.push_back(unique_users.size());
        unique_users.push_back(p.user);
      } else {
        slot_of.push_back(
            static_cast<std::size_t>(it - unique_users.begin()));
      }
    }

    // An engine failure must fail futures, not unwind through the flusher
    // thread and terminate the server.
    RecommendBatch scored;
    const auto engine_t0 = std::chrono::steady_clock::now();
    try {
      scored = engine_.recommend_batch(unique_users, opt_.k);
    } catch (const std::out_of_range&) {
      // A swap shrank the model under queries admitted against the old
      // generation: fail only the now-out-of-range futures and rescore the
      // rest — a valid query never pays for the id that happened to share
      // its micro-batch.
      const idx_t bound = engine_.num_users();
      std::vector<Pending> keep;
      keep.reserve(batch.size());
      for (auto& p : batch) {
        if (p.user < 0 || p.user >= bound) {
          const double e2e_ms = ms_since(p.enqueued);
          e2e_.record(e2e_ms);
          slo_observe(p.user, p.traced, e2e_ms, /*ok=*/false, 0.0, 0.0);
          trace_e2e(p, 0, /*failed=*/true);
          p.promise.set_exception(std::make_exception_ptr(std::out_of_range(
              "RequestBatcher: user id " + std::to_string(p.user) +
              " left range after a factor refresh (now [0, " +
              std::to_string(bound) + "))")));
        } else {
          keep.push_back(std::move(p));
        }
      }
      if (keep.size() == batch.size()) {
        // Nothing is out of range against the generation serving *now* —
        // the engine's complaint has some other cause; fail the batch
        // rather than retry forever.
        const auto error = std::current_exception();
        for (auto& p : keep) {
          const double e2e_ms = ms_since(p.enqueued);
          e2e_.record(e2e_ms);
          slo_observe(p.user, p.traced, e2e_ms, /*ok=*/false, 0.0, 0.0);
          trace_e2e(p, 0, /*failed=*/true);
          p.promise.set_exception(error);
        }
        return;
      }
      batch = std::move(keep);
      continue;
    } catch (...) {
      // OOM charging a new generation, and anything else non-recoverable.
      const auto error = std::current_exception();
      for (auto& p : batch) {
        const double e2e_ms = ms_since(p.enqueued);
        e2e_.record(e2e_ms);
        slo_observe(p.user, p.traced, e2e_ms, /*ok=*/false, 0.0, 0.0);
        trace_e2e(p, 0, /*failed=*/true);
        p.promise.set_exception(error);
      }
      return;
    }
    const double engine_ms = ms_since(engine_t0);
    const auto& results = scored.lists;

    if (opt_.cache_capacity > 0) {
      // Tagging puts with the answering generation is what retires stale
      // entries after a hot swap: the first post-swap put advances the cache
      // generation and older entries evict lazily as they are touched.
      for (std::size_t i = 0; i < unique_users.size(); ++i) {
        cache_.put(unique_users[i], opt_.k, results[i], scored.generation);
      }
    }
    flush_span.arg("generation", scored.generation);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const double e2e_ms = ms_since(batch[i].enqueued);
      e2e_.record(e2e_ms);
      const double queue_ms =
          std::chrono::duration<double, std::milli>(taken -
                                                    batch[i].enqueued)
              .count();
      slo_observe(batch[i].user, batch[i].traced, e2e_ms, /*ok=*/true,
                  queue_ms, engine_ms);
      trace_e2e(batch[i], scored.generation, /*failed=*/false);
      batch[i].promise.set_value(
          BatchedAnswer{results[slot_of[i]], scored.generation});
    }
    return;
  }
}

ServeStats RequestBatcher::stats() const {
  ServeStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.queries = queries_;
    s.batches = batches_;
  }
  s.cache_hits = cache_.hits();
  s.cache_misses = cache_.misses();
  s.cache_stale_evictions = cache_.stale_evictions();
  s.e2e = e2e_.summary();
  s.queue_delay = queue_delay_.summary();
  s.items_scored = engine_.items_scored() - base_scored_;
  s.items_pruned = engine_.items_pruned() - base_pruned_;
  s.batch_wall = engine_.batch_wall_summary();
  s.batch_modeled = engine_.batch_modeled_summary();
  s.batch_interconnect = engine_.batch_interconnect_summary();
  s.serving_devices =
      static_cast<std::uint64_t>(engine_.backend().device_count());
  if (const auto* live = engine_.live_store()) {
    s.generation = live->generation();
    s.refreshes = live->refreshes();
    s.refresh_failures = live->refresh_failures();
    s.swap_pause = live->swap_pause_summary();
  }
  if (auto* slo = slo_.load(std::memory_order_acquire)) {
    const obs::HealthSnapshot h = slo->snapshot();
    s.slo.attached = true;
    s.slo.latency_threshold_ms = h.latency_threshold_ms;
    s.slo.latency_state = static_cast<std::uint64_t>(h.latency.state);
    s.slo.availability_state =
        static_cast<std::uint64_t>(h.availability.state);
    s.slo.latency_fast_burn = h.latency.fast_burn;
    s.slo.latency_slow_burn = h.latency.slow_burn;
    s.slo.availability_fast_burn = h.availability.fast_burn;
    s.slo.availability_slow_burn = h.availability.slow_burn;
    s.slo.latency_violations = h.latency.lifetime_bad;
    s.slo.availability_errors = h.availability.lifetime_bad;
    s.slo.latency_transitions = h.latency.transitions;
    s.slo.availability_transitions = h.availability.transitions;
    s.slo.exemplars_captured = slo->exemplars_captured();
  }
  return s;
}

}  // namespace cumf::serve
