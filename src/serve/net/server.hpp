#pragma once

// Poll-based TCP front-end for the RequestBatcher.
//
// Everything the serving stack already does — micro-batching, the hot-user
// ScoreCache, live hot swaps — works unchanged behind a socket: the server
// parses protocol.hpp frames off client connections and feeds each query to
// RequestBatcher::submit(), so queries from many connections coalesce into
// the same micro-batches in-process callers ride.
//
// Threading model (two threads per server, no thread per connection):
//
//  - the io thread owns every socket: it poll()s the listen fd, a self-wake
//    pipe, and all client fds; reads accumulate per-connection until a full
//    frame is available; writes drain per-connection send buffers. Responses
//    that are ready at submit time (cache hits, rejected requests, stats)
//    are answered inline without a handoff.
//  - the completion thread resolves in-flight futures. The batcher's single
//    flusher fulfills futures in submission order, so a FIFO queue of
//    pending replies never waits on a future while a later one is ready for
//    long; each resolved reply is encoded into its connection's outbox and
//    the io thread is woken through the pipe to splice it onto the socket.
//
// Responses are written in request order per connection (the inline fast
// path is taken only when that connection has nothing in the completion
// queue), so the protocol needs no request ids.
//
// Per-query accept→reply latency — request frame fully parsed to response
// handed to the connection's send buffer — is recorded into a LatencyTracker
// and surfaced as ServeStats::net_e2e by stats(); it contains the batcher's
// own submit→fulfillment e2e plus frame parse/encode time.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/batcher.hpp"
#include "serve/net/protocol.hpp"
#include "serve/serve_stats.hpp"

namespace cumf::serve::net {

struct ServerOptions {
  /// TCP port to bind; 0 picks an ephemeral port (see TcpServer::port()).
  std::uint16_t port = 0;
  /// Bind 127.0.0.1 (default) or all interfaces.
  bool loopback_only = true;
  /// listen(2) backlog.
  int backlog = 64;
  /// Connections beyond this are accepted and closed immediately.
  std::size_t max_connections = 256;
  /// Sink for AddRating frames (the retrain orchestrator's RatingLog).
  /// Returning false answers kBadUser (out-of-range ids); an unset sink
  /// answers every AddRating with kBadRequest. Called on the io thread, so
  /// it must be cheap and thread-safe (RatingLog::append is both).
  std::function<bool(idx_t user, idx_t item, double value)> ingest;
  /// Merges extra counters into stats() snapshots before they are encoded
  /// for the stats op (Orchestrator::merge_into). Must be thread-safe.
  std::function<void(ServeStats&)> augment_stats;
};

/// Serves a RequestBatcher over TCP. The batcher (and everything behind it)
/// must outlive the server. Construction binds, listens, and starts the io
/// and completion threads; stop() (or destruction) drains and shuts down.
class TcpServer {
 public:
  explicit TcpServer(RequestBatcher& batcher, ServerOptions opt = {});
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// The port actually bound (resolves opt.port == 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Flushes the batcher, resolves every in-flight reply, joins both threads
  /// and closes all sockets. Idempotent.
  void stop();

  /// Batcher/engine snapshot with net_e2e (accept→reply) filled in.
  [[nodiscard]] ServeStats stats() const;

  [[nodiscard]] std::uint64_t connections_accepted() const {
    return connections_.load(std::memory_order_relaxed);
  }
  /// Connections dropped for malformed frames.
  [[nodiscard]] std::uint64_t protocol_errors() const {
    return protocol_errors_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn {
    int fd = -1;
    std::vector<std::uint8_t> in;   // read accumulation (io thread only)
    std::vector<std::uint8_t> out;  // send buffer (io thread only)
    std::size_t out_off = 0;
    /// Replies for this connection routed through the completion queue
    /// (future-backed or pre-encoded) and not yet appended to its outbox;
    /// the inline fast path requires 0 so replies never overtake each other.
    std::atomic<int> inflight{0};
    std::mutex outbox_mu;
    std::vector<std::uint8_t> outbox;  // completion thread appends frames
    bool dead = false;                 // guarded by outbox_mu; set on close
  };

  /// One pending reply: either a future still resolving in the batcher, or
  /// an already-encoded frame that must stay behind earlier replies of the
  /// same connection to preserve response order.
  struct Reply {
    std::shared_ptr<Conn> conn;
    bool is_query = false;
    std::future<BatchedAnswer> fut;  // valid when is_query
    std::chrono::steady_clock::time_point t0;
    int k = 0;                          // requested k (list truncated to it)
    std::vector<std::uint8_t> encoded;  // valid when !is_query
  };

  void io_loop();
  void completion_loop();
  void wake();
  /// Handles one decoded frame; returns false when the connection must close
  /// (protocol violation).
  bool handle_frame(const std::shared_ptr<Conn>& conn,
                    const std::uint8_t* payload, std::size_t len);
  void queue_reply(Reply reply);
  /// Delivers an already-encoded reply: appended straight to the send buffer
  /// when the inline fast path is allowed, else routed through the
  /// completion queue behind this connection's in-flight replies. io thread
  /// only; the caller must have flushed the outbox when can_inline.
  void respond(const std::shared_ptr<Conn>& conn, bool can_inline,
               std::chrono::steady_clock::time_point t0,
               std::vector<std::uint8_t> encoded);
  /// Splices completion-thread output onto the io-thread send buffer. Must
  /// run before any inline append so replies keep request order.
  static void flush_outbox(Conn& conn);
  void close_conn(const std::shared_ptr<Conn>& conn);
  [[nodiscard]] QueryResponse resolve(std::future<BatchedAnswer>& fut,
                                      int k) const;

  RequestBatcher& batcher_;
  ServerOptions opt_;
  int listen_fd_ = -1;
  int wake_rd_ = -1;
  int wake_wr_ = -1;
  std::uint16_t port_ = 0;

  std::unordered_map<int, std::shared_ptr<Conn>> conns_;  // io thread only

  std::mutex replies_mu_;
  std::condition_variable replies_cv_;
  std::deque<Reply> replies_;

  std::atomic<bool> stop_{false};
  bool stopped_ = false;  // stop() already ran (main-thread use only)
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  LatencyTracker net_e2e_;

  std::thread io_thread_;
  std::thread completion_thread_;
};

}  // namespace cumf::serve::net
