#pragma once

// Sharded epoll TCP front-end for the RequestBatcher.
//
// Everything the serving stack already does — micro-batching, the hot-user
// ScoreCache, live hot swaps — works unchanged behind a socket: the server
// parses protocol.hpp frames off client connections and feeds each query to
// RequestBatcher::submit(), so queries from many connections coalesce into
// the same micro-batches in-process callers ride.
//
// Threading model (2·io_threads threads per server, none per connection):
//
//  - io shards: `io_threads` epoll loops, each owning a disjoint set of
//    client sockets. Shard 0 additionally owns the listen fd; accepted
//    connections are handed off round-robin to the shards through a small
//    queue + self-wake pipe, so load spreads without SO_REUSEPORT kernel
//    luck. Reads accumulate per-connection until full frames are available;
//    writes drain per-connection send buffers; interest (EPOLLIN/EPOLLOUT)
//    is re-armed only when it changes. Responses that are ready at submit
//    time (cache hits, rejected requests, shed queries) are answered inline
//    without a hand-off.
//  - completion lanes: one per io shard. A lane resolves its shard's
//    in-flight futures in FIFO order — a connection lives on exactly one
//    shard, and the io thread enqueues replies in request order, so
//    per-connection reply order is preserved by construction. Stats and
//    metrics responses are *encoded on the lane* too: rendering a Prometheus
//    exposition on the io thread would head-of-line block every connection
//    on that shard. Each completed reply lands in its connection's outbox
//    and the owning shard is woken with the connection marked dirty, so a
//    wake touches only connections with fresh output (not all of them).
//
// Admission control and backpressure (the knobs live in ServerOptions):
//
//  - max_connections: accepted-and-closed beyond the cap, counted as
//    connections_rejected.
//  - max_in_buffer: a shard stops recv()ing a connection whose buffered
//    input exceeds the cap and pauses its EPOLLIN until the backlog drains —
//    a flooding writer is throttled by TCP flow control, not by server RAM.
//  - max_inflight: frames beyond this many unanswered replies per connection
//    stay buffered (and reading pauses), bounding both the completion lane
//    and the batcher's pending queue per connection.
//  - max_queued_replies: when a lane holds this many unresolved *query*
//    replies, further queries on that shard are answered Status::kOverloaded
//    immediately — shed at the edge instead of queueing unboundedly.
//  - max_out_buffer: a connection whose unread replies exceed the cap is
//    closed (slow_client_closes) — a reader that never drains cannot pin
//    server memory.
//
// Hard recv() errors (ECONNRESET and friends) close the connection
// immediately and count as recv_errors; previously the dead connection
// lingered until a later epoll error event.
//
// Per-query accept→reply latency — request frame fully parsed to response
// handed to the connection's send buffer — is recorded into a LatencyTracker
// and surfaced as ServeStats::net_e2e by stats(); the front-end counters
// ride along as ServeStats::net.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/batcher.hpp"
#include "serve/net/protocol.hpp"
#include "serve/serve_stats.hpp"

namespace cumf::obs {
class SloMonitor;
}  // namespace cumf::obs

namespace cumf::serve::net {

struct ServerOptions {
  /// TCP port to bind; 0 picks an ephemeral port (see TcpServer::port()).
  std::uint16_t port = 0;
  /// Bind 127.0.0.1 (default) or all interfaces.
  bool loopback_only = true;
  /// listen(2) backlog.
  int backlog = 128;
  /// Connections beyond this are accepted and closed immediately (counted
  /// as NetMetrics::connections_rejected).
  std::size_t max_connections = 1024;
  /// Epoll io shards (and completion lanes). Clamped to >= 1.
  int io_threads = 2;
  /// Per-connection receive-buffer cap: reading pauses above it until the
  /// buffered frames are consumed. Clamped up so one maximum frame always
  /// fits.
  std::size_t max_in_buffer = 2u << 20;
  /// Per-connection unread-reply cap (send buffer + outbox): exceeding it
  /// closes the connection (NetMetrics::slow_client_closes).
  std::size_t max_out_buffer = 4u << 20;
  /// Per-connection in-flight reply cap: frames beyond it stay buffered and
  /// reading pauses until replies drain. Clamped to >= 1.
  int max_inflight = 512;
  /// Per-shard bound on unresolved query replies in the completion lane:
  /// at the bound, new queries are answered Status::kOverloaded
  /// (NetMetrics::overload_sheds) instead of being submitted to the batcher.
  std::size_t max_queued_replies = 4096;
  /// SO_SNDBUF for accepted sockets; 0 keeps the kernel default. Small
  /// values make slow-reader backpressure observable quickly (tests).
  int so_sndbuf = 0;
  /// Sink for AddRating frames (the retrain orchestrator's RatingLog).
  /// Returning false answers kBadUser (out-of-range ids); an unset sink
  /// answers every AddRating with kBadRequest. Called on an io thread, so
  /// it must be cheap and thread-safe (RatingLog::append is both).
  std::function<bool(idx_t user, idx_t item, double value)> ingest;
  /// Merges extra counters into stats() snapshots before they are encoded
  /// for the stats op (Orchestrator::merge_into). Must be thread-safe.
  std::function<void(ServeStats&)> augment_stats;
  /// SLO monitor behind the GetHealth op. When set, edge sheds feed its
  /// availability objective (shed queries never reach the batcher, so the
  /// batcher's own observe() hook cannot see them) and health responses
  /// carry its burn rates / exemplars. Must outlive the server. Optional:
  /// unset, GetHealth answers with zero states and the event tail alone.
  obs::SloMonitor* slo = nullptr;
};

/// Serves a RequestBatcher over TCP. The batcher (and everything behind it)
/// must outlive the server. Construction binds, listens, and starts the io
/// shards and completion lanes; stop() (or destruction) drains and shuts
/// down.
class TcpServer {
 public:
  explicit TcpServer(RequestBatcher& batcher, ServerOptions opt = {});
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// The port actually bound (resolves opt.port == 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Flushes the batcher, resolves every in-flight reply, joins every shard
  /// and lane, and closes all sockets. Idempotent.
  void stop();

  /// Batcher/engine snapshot with net_e2e (accept→reply) and the front-end
  /// counter slice (ServeStats::net) filled in.
  [[nodiscard]] ServeStats stats() const;

  /// The front-end counter slice alone (cheap; no batcher snapshot).
  [[nodiscard]] NetMetrics net_metrics() const;

  [[nodiscard]] std::uint64_t connections_accepted() const {
    return connections_.load(std::memory_order_relaxed);
  }
  /// Connections dropped for malformed frames.
  [[nodiscard]] std::uint64_t protocol_errors() const {
    return protocol_errors_.load(std::memory_order_relaxed);
  }
  /// Connections closed on hard recv() errors.
  [[nodiscard]] std::uint64_t recv_errors() const {
    return recv_errors_.load(std::memory_order_relaxed);
  }
  /// Connections closed for unread reply backlog.
  [[nodiscard]] std::uint64_t slow_client_closes() const {
    return slow_closes_.load(std::memory_order_relaxed);
  }
  /// Queries answered kOverloaded at the admission bound.
  [[nodiscard]] std::uint64_t overload_sheds() const {
    return overload_sheds_.load(std::memory_order_relaxed);
  }
  /// Connections turned away by max_connections.
  [[nodiscard]] std::uint64_t connections_rejected() const {
    return conns_rejected_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] int io_shards() const {
    return static_cast<int>(shards_.size());
  }

 private:
  struct Conn {
    int fd = -1;
    int shard = 0;                  // owning io shard (never migrates)
    std::vector<std::uint8_t> in;   // read accumulation (io thread only)
    std::vector<std::uint8_t> out;  // send buffer (io thread only)
    std::size_t out_off = 0;
    /// EPOLLIN/EPOLLOUT mask currently registered (io thread only).
    std::uint32_t armed = 0;
    /// Reading paused for backpressure (io thread only): in-buffer over cap
    /// or inflight at cap.
    bool paused = false;
    /// Replies for this connection routed through the completion lane
    /// (future-backed or pre-encoded) and not yet appended to its outbox;
    /// the inline fast path requires 0 so replies never overtake each other.
    std::atomic<int> inflight{0};
    std::mutex outbox_mu;
    std::vector<std::uint8_t> outbox;  // completion lane appends frames
    bool dead = false;                 // guarded by outbox_mu; set on close
  };

  /// One pending reply on a shard's completion lane, in request order.
  struct Reply {
    enum class Kind : std::uint8_t {
      kEncoded,  // already-encoded frame held behind earlier replies
      kQuery,    // future still resolving in the batcher
      kStats,    // stats snapshot: taken + encoded on the lane
      kMetrics,  // exposition: rendered + encoded on the lane
      kHealth,   // SLO snapshot + event tail: taken + encoded on the lane
    };
    std::shared_ptr<Conn> conn;
    Kind kind = Kind::kEncoded;
    std::future<BatchedAnswer> fut;  // valid when kind == kQuery
    std::chrono::steady_clock::time_point t0;
    int k = 0;                          // requested k (list truncated to it)
    std::vector<std::uint8_t> encoded;  // valid when kind == kEncoded
  };

  /// One epoll io loop plus its completion lane.
  struct Shard {
    int epoll_fd = -1;
    int wake_rd = -1;
    int wake_wr = -1;
    std::unordered_map<int, std::shared_ptr<Conn>> conns;  // io thread only

    /// Accepted connections handed off by shard 0, adopted on wake.
    std::mutex pending_mu;
    std::vector<std::shared_ptr<Conn>> pending;

    /// Connections with fresh completion output; flushed on wake.
    std::mutex dirty_mu;
    std::vector<std::shared_ptr<Conn>> dirty;

    std::mutex replies_mu;
    std::condition_variable replies_cv;
    std::deque<Reply> replies;
    /// Unresolved kQuery entries on the lane — the admission-control level.
    std::atomic<std::size_t> queued_queries{0};

    std::thread io_thread;
    std::thread lane_thread;
  };

  void io_loop(int shard_index);
  void completion_loop(int shard_index);
  static void wake(Shard& sh);
  void accept_loop(Shard& sh0);
  void add_conn(Shard& sh, const std::shared_ptr<Conn>& conn);
  void on_readable(Shard& sh, const std::shared_ptr<Conn>& conn);
  /// Parses and handles every complete frame buffered on `conn`, honouring
  /// the inflight cap. Returns false when the connection must close
  /// (protocol violation).
  bool process_in(Shard& sh, const std::shared_ptr<Conn>& conn);
  /// Handles one decoded frame; returns false on a protocol violation.
  bool handle_frame(Shard& sh, const std::shared_ptr<Conn>& conn,
                    const std::uint8_t* payload, std::size_t len);
  void queue_reply(Shard& sh, Reply reply);
  /// Delivers an already-encoded reply: appended straight to the send buffer
  /// when the inline fast path is allowed, else routed through the
  /// completion lane behind this connection's in-flight replies. io thread
  /// only; the caller must have flushed the outbox when can_inline.
  void respond(Shard& sh, const std::shared_ptr<Conn>& conn, bool can_inline,
               std::chrono::steady_clock::time_point t0,
               std::vector<std::uint8_t> encoded);
  /// Splices completion-lane output onto the io-thread send buffer. Must
  /// run before any inline append so replies keep request order. The
  /// max_out_buffer cap is enforced by the event loop after writes drain.
  void flush_outbox(Conn& conn);
  /// Drains as much of conn.out to the socket as it accepts; returns false
  /// on a hard send error (caller closes).
  bool try_write(Conn& conn);
  /// Re-arms epoll interest when it changed (reads unless paused; writes
  /// while output is pending).
  void update_interest(Shard& sh, Conn& conn);
  void close_conn(Shard& sh, const std::shared_ptr<Conn>& conn);
  [[nodiscard]] QueryResponse resolve(std::future<BatchedAnswer>& fut,
                                      int k) const;

  RequestBatcher& batcher_;
  ServerOptions opt_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t next_shard_ = 0;  // round-robin hand-off cursor (shard 0 only)

  std::atomic<bool> stop_{false};
  bool stopped_ = false;  // stop() already ran (main-thread use only)
  std::atomic<std::size_t> open_conns_{0};
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> conns_rejected_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> recv_errors_{0};
  std::atomic<std::uint64_t> slow_closes_{0};
  std::atomic<std::uint64_t> overload_sheds_{0};
  LatencyTracker net_e2e_;
};

}  // namespace cumf::serve::net
