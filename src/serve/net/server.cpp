#include "serve/net/server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/trace.hpp"
#include "serve/metrics_export.hpp"

namespace cumf::serve::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string("TcpServer: ") + what + ": " +
                           std::strerror(errno));
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void set_nodelay(int fd) {
  // Micro-batch deadlines are in the hundreds of microseconds; Nagle would
  // hold small response frames for an RTT and dwarf the latency being
  // measured. Best effort: a non-TCP fd (tests) just ignores it.
  int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

TcpServer::TcpServer(RequestBatcher& batcher, ServerOptions opt)
    : batcher_(batcher), opt_(opt) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  int one = 1;
  (void)setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr =
      htonl(opt_.loopback_only ? INADDR_LOOPBACK : INADDR_ANY);
  addr.sin_port = htons(opt_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    throw_errno("bind");
  }
  if (::listen(listen_fd_, opt_.backlog) < 0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    throw_errno("listen");
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) < 0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) < 0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    throw_errno("pipe2");
  }
  wake_rd_ = pipe_fds[0];
  wake_wr_ = pipe_fds[1];

  io_thread_ = std::thread([this] { io_loop(); });
  completion_thread_ = std::thread([this] { completion_loop(); });
}

TcpServer::~TcpServer() { stop(); }

void TcpServer::stop() {
  if (stopped_) return;
  stopped_ = true;
  stop_.store(true, std::memory_order_release);
  // Join the io thread first so no new queries can be submitted, then flush
  // the batcher so every future already handed to the completion thread
  // resolves without waiting out max_delay; the completion thread drains its
  // queue (replies to closed connections are dropped) and exits.
  wake();
  io_thread_.join();
  batcher_.flush();
  replies_cv_.notify_all();
  completion_thread_.join();
  ::close(wake_rd_);
  ::close(wake_wr_);
  ::close(listen_fd_);
}

ServeStats TcpServer::stats() const {
  ServeStats s = batcher_.stats();
  s.net_e2e = net_e2e_.summary();
  if (opt_.augment_stats) opt_.augment_stats(s);
  return s;
}

void TcpServer::wake() {
  const char byte = 1;
  // A full pipe already guarantees a pending wakeup; EAGAIN is success.
  (void)!::write(wake_wr_, &byte, 1);
}

void TcpServer::queue_reply(Reply reply) {
  reply.conn->inflight.fetch_add(1, std::memory_order_acq_rel);
  {
    std::lock_guard<std::mutex> lock(replies_mu_);
    replies_.push_back(std::move(reply));
  }
  replies_cv_.notify_one();
}

void TcpServer::respond(const std::shared_ptr<Conn>& conn, bool can_inline,
                        std::chrono::steady_clock::time_point t0,
                        std::vector<std::uint8_t> encoded) {
  if (can_inline) {
    conn->out.insert(conn->out.end(), encoded.begin(), encoded.end());
    net_e2e_.record(ms_since(t0));
    return;
  }
  Reply reply;
  reply.conn = conn;
  reply.t0 = t0;
  reply.encoded = std::move(encoded);
  queue_reply(std::move(reply));
}

void TcpServer::flush_outbox(Conn& conn) {
  std::lock_guard<std::mutex> lock(conn.outbox_mu);
  if (conn.outbox.empty()) return;
  conn.out.insert(conn.out.end(), conn.outbox.begin(), conn.outbox.end());
  conn.outbox.clear();
}

QueryResponse TcpServer::resolve(std::future<BatchedAnswer>& fut,
                                 int k) const {
  QueryResponse resp;
  try {
    BatchedAnswer answer = fut.get();
    resp.status = Status::kOk;
    resp.generation = answer.generation;
    resp.items = std::move(answer.items);
    // A top-k list's prefix is the top-k' list (total order), so a request
    // for fewer than the batcher's configured k truncates.
    if (resp.items.size() > static_cast<std::size_t>(k)) {
      resp.items.resize(static_cast<std::size_t>(k));
    }
  } catch (const std::out_of_range&) {
    resp.status = Status::kBadUser;
  } catch (...) {
    resp.status = Status::kError;
  }
  return resp;
}

bool TcpServer::handle_frame(const std::shared_ptr<Conn>& conn,
                             const std::uint8_t* payload, std::size_t len) {
  const auto t0 = std::chrono::steady_clock::now();
  Request req;
  try {
    req = decode_request(payload, len);
  } catch (const ProtocolError&) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  // io-thread slice of the request: frame decode + dispatch (+ inline
  // encode on the fast path). A batched query's remaining time shows up as
  // batch.queue_wait / batch.flush / query.e2e and the completion thread's
  // net.reply on the same timeline.
  obs::TraceSpan frame_span(obs::TraceCollector::global(), "net.frame");
  frame_span.arg("fd", static_cast<std::uint64_t>(conn->fd));
  frame_span.arg("type", static_cast<std::uint64_t>(req.type));

  // The inline fast path may only run when nothing for this connection is
  // still in the completion queue, otherwise replies would overtake each
  // other; inflight is decremented only after the earlier reply reached the
  // outbox, so flushing the outbox first preserves request order.
  const bool can_inline = conn->inflight.load(std::memory_order_acquire) == 0;
  if (can_inline) flush_outbox(*conn);

  if (req.type == MsgType::kStats) {
    std::vector<std::uint8_t> encoded;
    encode_stats_response(stats_from(stats()), &encoded);
    respond(conn, can_inline, t0, std::move(encoded));
    return true;
  }

  if (req.type == MsgType::kMetrics) {
    // Rendered from the same stats() snapshot the stats op encodes, so the
    // two views agree whenever they are taken back to back.
    const NetMetrics net{connections_accepted(), protocol_errors()};
    std::vector<std::uint8_t> encoded;
    encode_metrics_response(metrics_exposition(stats(), &net), &encoded);
    respond(conn, can_inline, t0, std::move(encoded));
    return true;
  }

  if (req.type == MsgType::kAddRating) {
    // Ratings are answered at submit time like stats: the ingest sink is a
    // mutex push_back, so there is nothing to hand to the completion thread.
    Status status = Status::kBadRequest;  // no ingest sink attached
    if (opt_.ingest) {
      status = opt_.ingest(req.rating.user, req.rating.item, req.rating.value)
                   ? Status::kOk
                   : Status::kBadUser;
    }
    std::vector<std::uint8_t> encoded;
    encode_add_rating_response(status, &encoded);
    respond(conn, can_inline, t0, std::move(encoded));
    return true;
  }

  const int max_k = batcher_.options().k;
  if (req.query.k < 1 || req.query.k > max_k) {
    QueryResponse resp;
    resp.status = Status::kBadRequest;
    std::vector<std::uint8_t> encoded;
    encode_query_response(resp, &encoded);
    respond(conn, can_inline, t0, std::move(encoded));
    return true;
  }

  auto fut = batcher_.submit(req.query.user);
  if (can_inline &&
      fut.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
    // Cache hit or immediately-rejected id: answer without a handoff.
    std::vector<std::uint8_t> encoded;
    encode_query_response(resolve(fut, req.query.k), &encoded);
    respond(conn, true, t0, std::move(encoded));
    return true;
  }

  Reply reply;
  reply.conn = conn;
  reply.is_query = true;
  reply.fut = std::move(fut);
  reply.t0 = t0;
  reply.k = req.query.k;
  queue_reply(std::move(reply));
  return true;
}

void TcpServer::completion_loop() {
  obs::TraceCollector::global().set_thread_name("net.completion");
  for (;;) {
    Reply reply;
    {
      std::unique_lock<std::mutex> lock(replies_mu_);
      replies_cv_.wait(lock, [this] {
        return !replies_.empty() || stop_.load(std::memory_order_acquire);
      });
      if (replies_.empty()) {
        if (stop_.load(std::memory_order_acquire)) return;
        continue;
      }
      reply = std::move(replies_.front());
      replies_.pop_front();
    }

    // Future resolution + encode + outbox splice: the completion thread's
    // slice of a pipelined reply's timeline.
    obs::TraceSpan reply_span(obs::TraceCollector::global(), "net.reply");
    reply_span.arg("fd", static_cast<std::uint64_t>(reply.conn->fd));

    std::vector<std::uint8_t> encoded;
    if (reply.is_query) {
      // Blocking here is safe: the batcher's single flusher resolves futures
      // in submission order, which is exactly this queue's order.
      const QueryResponse resp = resolve(reply.fut, reply.k);
      encode_query_response(resp, &encoded);
    } else {
      encoded = std::move(reply.encoded);
    }

    {
      std::lock_guard<std::mutex> lock(reply.conn->outbox_mu);
      if (!reply.conn->dead) {
        reply.conn->outbox.insert(reply.conn->outbox.end(), encoded.begin(),
                                  encoded.end());
      }
    }
    net_e2e_.record(ms_since(reply.t0));
    reply.conn->inflight.fetch_sub(1, std::memory_order_acq_rel);
    wake();
  }
}

void TcpServer::close_conn(const std::shared_ptr<Conn>& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->outbox_mu);
    conn->dead = true;
    conn->outbox.clear();
  }
  ::close(conn->fd);
  conns_.erase(conn->fd);
}

void TcpServer::io_loop() {
  obs::TraceCollector::global().set_thread_name("net.io");
  std::vector<pollfd> fds;
  std::vector<std::shared_ptr<Conn>> polled;
  char buf[4096];

  while (!stop_.load(std::memory_order_acquire)) {
    fds.clear();
    polled.clear();
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_rd_, POLLIN, 0});
    for (auto& [fd, conn] : conns_) {
      short events = POLLIN;
      if (conn->out.size() > conn->out_off) events |= POLLOUT;
      fds.push_back({fd, events, 0});
      polled.push_back(conn);
    }

    if (::poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable; stop() still joins cleanly
    }

    if ((fds[1].revents & POLLIN) != 0) {
      while (::read(wake_rd_, buf, sizeof(buf)) > 0) {
      }
      // A wakeup means completion output may be waiting on any connection.
      for (auto& [fd, conn] : conns_) flush_outbox(*conn);
    }

    if ((fds[0].revents & POLLIN) != 0) {
      for (;;) {
        const int cfd = ::accept4(listen_fd_, nullptr, nullptr,
                                  SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (cfd < 0) break;
        if (conns_.size() >= opt_.max_connections) {
          ::close(cfd);
          continue;
        }
        set_nodelay(cfd);
        auto conn = std::make_shared<Conn>();
        conn->fd = cfd;
        conns_.emplace(cfd, std::move(conn));
        connections_.fetch_add(1, std::memory_order_relaxed);
      }
    }

    for (std::size_t i = 2; i < fds.size(); ++i) {
      const auto& conn = polled[i - 2];
      if (conns_.find(conn->fd) == conns_.end()) continue;  // closed above
      const short revents = fds[i].revents;
      if ((revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
        close_conn(conn);
        continue;
      }

      if ((revents & POLLIN) != 0) {
        bool closed = false;
        for (;;) {
          const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
          if (n > 0) {
            conn->in.insert(conn->in.end(), buf, buf + n);
            continue;
          }
          if (n == 0) closed = true;  // orderly shutdown from the client
          break;
        }

        bool violated = false;
        std::size_t consumed = 0;
        while (!violated) {
          std::size_t payload_off = 0;
          std::size_t payload_len = 0;
          bool have = false;
          try {
            have = try_frame(conn->in.data() + consumed,
                             conn->in.size() - consumed, &payload_off,
                             &payload_len);
          } catch (const ProtocolError&) {
            protocol_errors_.fetch_add(1, std::memory_order_relaxed);
            violated = true;
            break;
          }
          if (!have) break;
          if (!handle_frame(conn, conn->in.data() + consumed + payload_off,
                            payload_len)) {
            violated = true;
            break;
          }
          consumed += payload_off + payload_len;
        }
        if (consumed > 0) {
          conn->in.erase(conn->in.begin(),
                         conn->in.begin() +
                             static_cast<std::ptrdiff_t>(consumed));
        }
        if (violated || closed) {
          close_conn(conn);
          continue;
        }
      }

      if (conn->out.size() > conn->out_off) {
        const ssize_t n =
            ::send(conn->fd, conn->out.data() + conn->out_off,
                   conn->out.size() - conn->out_off, MSG_NOSIGNAL);
        if (n > 0) {
          conn->out_off += static_cast<std::size_t>(n);
          if (conn->out_off == conn->out.size()) {
            conn->out.clear();
            conn->out_off = 0;
          }
        } else if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
          close_conn(conn);
          continue;
        }
      }
    }
  }

  for (auto& [fd, conn] : conns_) {
    std::lock_guard<std::mutex> lock(conn->outbox_mu);
    conn->dead = true;
    ::close(fd);
  }
  conns_.clear();
}

}  // namespace cumf::serve::net
