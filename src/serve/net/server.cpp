#include "serve/net/server.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/events.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "serve/metrics_export.hpp"

namespace cumf::serve::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string("TcpServer: ") + what + ": " +
                           std::strerror(errno));
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

void set_nodelay(int fd) {
  // Micro-batch deadlines are in the hundreds of microseconds; Nagle would
  // hold small response frames for an RTT and dwarf the latency being
  // measured. Best effort: a non-TCP fd (tests) just ignores it.
  int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

// TraceCollector::set_thread_name stores the pointer, so shard names must be
// string literals; shards beyond the tables share a generic name.
const char* io_thread_name(int shard) {
  static const char* const kNames[] = {"net.io0", "net.io1", "net.io2",
                                       "net.io3", "net.io4", "net.io5",
                                       "net.io6", "net.io7"};
  return shard < 8 ? kNames[shard] : "net.io";
}

const char* lane_thread_name(int shard) {
  static const char* const kNames[] = {"net.lane0", "net.lane1", "net.lane2",
                                       "net.lane3", "net.lane4", "net.lane5",
                                       "net.lane6", "net.lane7"};
  return shard < 8 ? kNames[shard] : "net.lane";
}

/// Most recent events a health response carries; the encoder trims further
/// if the frame would overflow, but 64 lines is an incident tail, not a dump.
constexpr std::size_t kHealthEventTail = 64;

HealthResponse build_health(obs::SloMonitor* slo) {
  HealthResponse h;
  if (slo != nullptr) {
    obs::HealthSnapshot snap = slo->snapshot();
    h.latency_state = static_cast<std::uint8_t>(snap.latency.state);
    h.availability_state = static_cast<std::uint8_t>(snap.availability.state);
    h.latency_threshold_ms = snap.latency_threshold_ms;
    h.latency_fast_burn = snap.latency.fast_burn;
    h.latency_slow_burn = snap.latency.slow_burn;
    h.availability_fast_burn = snap.availability.fast_burn;
    h.availability_slow_burn = snap.availability.slow_burn;
    h.latency_violations = snap.latency.lifetime_bad;
    h.availability_errors = snap.availability.lifetime_bad;
    h.latency_transitions = snap.latency.transitions;
    h.availability_transitions = snap.availability.transitions;
    h.exemplars.reserve(snap.exemplars.size());
    for (const auto& ex : snap.exemplars) {
      HealthExemplar w;
      w.ticket = ex.ticket;
      w.user = ex.user;
      w.e2e_ms = ex.e2e_ms;
      w.queue_ms = ex.queue_ms;
      w.engine_ms = ex.engine_ms;
      w.finish_ms = ex.finish_ms;
      h.exemplars.push_back(w);
    }
  }
  auto& events = obs::EventLog::global();
  h.events_recorded = events.recorded();
  h.events_dropped = events.dropped();
  h.events_json = events.export_json_lines(kHealthEventTail);
  return h;
}

}  // namespace

TcpServer::TcpServer(RequestBatcher& batcher, ServerOptions opt)
    : batcher_(batcher), opt_(std::move(opt)) {
  opt_.io_threads = std::max(1, opt_.io_threads);
  opt_.max_inflight = std::max(1, opt_.max_inflight);
  opt_.max_queued_replies = std::max<std::size_t>(1, opt_.max_queued_replies);
  // One maximum frame must always fit, or a paused connection whose buffer
  // holds a single incomplete frame could never make progress.
  opt_.max_in_buffer =
      std::max(opt_.max_in_buffer,
               static_cast<std::size_t>(kMaxPayload) + kFramePrefix);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  int one = 1;
  (void)setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr =
      htonl(opt_.loopback_only ? INADDR_LOOPBACK : INADDR_ANY);
  addr.sin_port = htons(opt_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    throw_errno("bind");
  }
  if (::listen(listen_fd_, opt_.backlog) < 0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    throw_errno("listen");
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) < 0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  auto fail = [this](const char* what) {
    const int saved = errno;
    for (auto& sh : shards_) {
      if (sh->epoll_fd >= 0) ::close(sh->epoll_fd);
      if (sh->wake_rd >= 0) ::close(sh->wake_rd);
      if (sh->wake_wr >= 0) ::close(sh->wake_wr);
    }
    ::close(listen_fd_);
    errno = saved;
    throw_errno(what);
  };

  shards_.reserve(static_cast<std::size_t>(opt_.io_threads));
  for (int i = 0; i < opt_.io_threads; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    Shard& sh = *shards_.back();
    sh.epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (sh.epoll_fd < 0) fail("epoll_create1");
    int pipe_fds[2];
    if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) < 0) fail("pipe2");
    sh.wake_rd = pipe_fds[0];
    sh.wake_wr = pipe_fds[1];
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = sh.wake_rd;
    if (::epoll_ctl(sh.epoll_fd, EPOLL_CTL_ADD, sh.wake_rd, &ev) < 0) {
      fail("epoll_ctl wake");
    }
  }
  // The listen fd lives in shard 0's epoll; accepted connections are handed
  // off round-robin (accept_loop).
  epoll_event lev{};
  lev.events = EPOLLIN;
  lev.data.fd = listen_fd_;
  if (::epoll_ctl(shards_[0]->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &lev) < 0) {
    fail("epoll_ctl listen");
  }

  for (int i = 0; i < opt_.io_threads; ++i) {
    shards_[static_cast<std::size_t>(i)]->io_thread =
        std::thread([this, i] { io_loop(i); });
    shards_[static_cast<std::size_t>(i)]->lane_thread =
        std::thread([this, i] { completion_loop(i); });
  }
}

TcpServer::~TcpServer() { stop(); }

void TcpServer::stop() {
  if (stopped_) return;
  stopped_ = true;
  stop_.store(true, std::memory_order_release);
  // Join the io threads first so no new queries can be submitted, then flush
  // the batcher so every future already handed to a completion lane resolves
  // without waiting out max_delay; the lanes drain their queues (replies to
  // closed connections are dropped) and exit.
  for (auto& sh : shards_) wake(*sh);
  for (auto& sh : shards_) sh->io_thread.join();
  batcher_.flush();
  for (auto& sh : shards_) sh->replies_cv.notify_all();
  for (auto& sh : shards_) sh->lane_thread.join();
  for (auto& sh : shards_) {
    ::close(sh->epoll_fd);
    ::close(sh->wake_rd);
    ::close(sh->wake_wr);
  }
  ::close(listen_fd_);
}

NetMetrics TcpServer::net_metrics() const {
  NetMetrics m;
  m.connections_accepted = connections_.load(std::memory_order_relaxed);
  m.connections_rejected = conns_rejected_.load(std::memory_order_relaxed);
  m.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  m.recv_errors = recv_errors_.load(std::memory_order_relaxed);
  m.slow_client_closes = slow_closes_.load(std::memory_order_relaxed);
  m.overload_sheds = overload_sheds_.load(std::memory_order_relaxed);
  m.io_shards = static_cast<std::uint64_t>(shards_.size());
  m.open_connections = open_conns_.load(std::memory_order_relaxed);
  return m;
}

ServeStats TcpServer::stats() const {
  ServeStats s = batcher_.stats();
  s.net_e2e = net_e2e_.summary();
  s.net = net_metrics();
  if (opt_.augment_stats) opt_.augment_stats(s);
  return s;
}

void TcpServer::wake(Shard& sh) {
  const char byte = 1;
  // A full pipe already guarantees a pending wakeup; EAGAIN is success.
  (void)!::write(sh.wake_wr, &byte, 1);
}

void TcpServer::queue_reply(Shard& sh, Reply reply) {
  reply.conn->inflight.fetch_add(1, std::memory_order_acq_rel);
  if (reply.kind == Reply::Kind::kQuery) {
    sh.queued_queries.fetch_add(1, std::memory_order_acq_rel);
  }
  {
    std::lock_guard<std::mutex> lock(sh.replies_mu);
    sh.replies.push_back(std::move(reply));
  }
  sh.replies_cv.notify_one();
}

void TcpServer::respond(Shard& sh, const std::shared_ptr<Conn>& conn,
                        bool can_inline,
                        std::chrono::steady_clock::time_point t0,
                        std::vector<std::uint8_t> encoded) {
  if (can_inline) {
    conn->out.insert(conn->out.end(), encoded.begin(), encoded.end());
    net_e2e_.record(ms_since(t0));
    return;
  }
  Reply reply;
  reply.conn = conn;
  reply.t0 = t0;
  reply.encoded = std::move(encoded);
  queue_reply(sh, std::move(reply));
}

void TcpServer::flush_outbox(Conn& conn) {
  std::lock_guard<std::mutex> lock(conn.outbox_mu);
  if (conn.outbox.empty()) return;
  conn.out.insert(conn.out.end(), conn.outbox.begin(), conn.outbox.end());
  conn.outbox.clear();
}

QueryResponse TcpServer::resolve(std::future<BatchedAnswer>& fut,
                                 int k) const {
  QueryResponse resp;
  try {
    BatchedAnswer answer = fut.get();
    resp.status = Status::kOk;
    resp.generation = answer.generation;
    resp.items = std::move(answer.items);
    // A top-k list's prefix is the top-k' list (total order), so a request
    // for fewer than the batcher's configured k truncates.
    if (resp.items.size() > static_cast<std::size_t>(k)) {
      resp.items.resize(static_cast<std::size_t>(k));
    }
  } catch (const std::out_of_range&) {
    resp.status = Status::kBadUser;
  } catch (...) {
    resp.status = Status::kError;
  }
  return resp;
}

bool TcpServer::handle_frame(Shard& sh, const std::shared_ptr<Conn>& conn,
                             const std::uint8_t* payload, std::size_t len) {
  const auto t0 = std::chrono::steady_clock::now();
  Request req;
  try {
    req = decode_request(payload, len);
  } catch (const ProtocolError&) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  // io-thread slice of the request: frame decode + dispatch (+ inline
  // encode on the fast path). A batched query's remaining time shows up as
  // batch.queue_wait / batch.flush / query.e2e and the completion lane's
  // net.reply on the same timeline.
  obs::TraceSpan frame_span(obs::TraceCollector::global(), "net.frame");
  frame_span.arg("fd", static_cast<std::uint64_t>(conn->fd));
  frame_span.arg("type", static_cast<std::uint64_t>(req.type));
  frame_span.arg("shard", static_cast<std::uint64_t>(conn->shard));

  // The inline fast path may only run when nothing for this connection is
  // still on the completion lane, otherwise replies would overtake each
  // other; inflight is decremented only after the earlier reply reached the
  // outbox, so flushing the outbox first preserves request order.
  const bool can_inline = conn->inflight.load(std::memory_order_acquire) == 0;
  if (can_inline) flush_outbox(*conn);

  if (req.type == MsgType::kStats || req.type == MsgType::kMetrics ||
      req.type == MsgType::kHealth) {
    // Snapshotting stats — and especially rendering the Prometheus
    // exposition or the health event tail — is milliseconds of string work;
    // doing it here would head-of-line block every connection on this shard,
    // so the lane encodes it behind this connection's earlier replies.
    Reply reply;
    reply.conn = conn;
    reply.kind = req.type == MsgType::kStats     ? Reply::Kind::kStats
                 : req.type == MsgType::kMetrics ? Reply::Kind::kMetrics
                                                 : Reply::Kind::kHealth;
    reply.t0 = t0;
    queue_reply(sh, std::move(reply));
    return true;
  }

  if (req.type == MsgType::kAddRating) {
    // Ratings are answered at submit time: the ingest sink is a mutex
    // push_back, so there is nothing to hand to the completion lane.
    Status status = Status::kBadRequest;  // no ingest sink attached
    if (opt_.ingest) {
      status = opt_.ingest(req.rating.user, req.rating.item, req.rating.value)
                   ? Status::kOk
                   : Status::kBadUser;
    }
    std::vector<std::uint8_t> encoded;
    encode_add_rating_response(status, &encoded);
    respond(sh, conn, can_inline, t0, std::move(encoded));
    return true;
  }

  const int max_k = batcher_.options().k;
  if (req.query.k < 1 || req.query.k > max_k) {
    QueryResponse resp;
    resp.status = Status::kBadRequest;
    std::vector<std::uint8_t> encoded;
    encode_query_response(resp, &encoded);
    respond(sh, conn, can_inline, t0, std::move(encoded));
    return true;
  }

  // Admission control: at the lane's query bound this shard stops feeding
  // the batcher and sheds at the edge — the client gets an immediate
  // kOverloaded instead of a reply that would have blown its deadline, and
  // server memory stays bounded.
  if (sh.queued_queries.load(std::memory_order_acquire) >=
      opt_.max_queued_replies) {
    overload_sheds_.fetch_add(1, std::memory_order_relaxed);
    // A shed query never reaches the batcher, so the availability SLO is fed
    // here — it is a failed reply from the client's point of view.
    if (opt_.slo != nullptr) opt_.slo->shed();
    obs::EventLog::global().record(
        obs::Severity::kWarn, obs::Component::kNet, "overload_shed",
        {"shard", static_cast<std::uint64_t>(conn->shard)},
        {"queued", sh.queued_queries.load(std::memory_order_relaxed)});
    QueryResponse resp;
    resp.status = Status::kOverloaded;
    std::vector<std::uint8_t> encoded;
    encode_query_response(resp, &encoded);
    respond(sh, conn, can_inline, t0, std::move(encoded));
    return true;
  }

  auto fut = batcher_.submit(req.query.user);
  if (can_inline &&
      fut.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
    // Cache hit or immediately-rejected id: answer without a hand-off.
    std::vector<std::uint8_t> encoded;
    encode_query_response(resolve(fut, req.query.k), &encoded);
    respond(sh, conn, true, t0, std::move(encoded));
    return true;
  }

  Reply reply;
  reply.conn = conn;
  reply.kind = Reply::Kind::kQuery;
  reply.fut = std::move(fut);
  reply.t0 = t0;
  reply.k = req.query.k;
  queue_reply(sh, std::move(reply));
  return true;
}

void TcpServer::completion_loop(int shard_index) {
  obs::TraceCollector::global().set_thread_name(lane_thread_name(shard_index));
  Shard& sh = *shards_[static_cast<std::size_t>(shard_index)];
  for (;;) {
    Reply reply;
    {
      std::unique_lock<std::mutex> lock(sh.replies_mu);
      sh.replies_cv.wait(lock, [this, &sh] {
        return !sh.replies.empty() || stop_.load(std::memory_order_acquire);
      });
      if (sh.replies.empty()) {
        if (stop_.load(std::memory_order_acquire)) return;
        continue;
      }
      reply = std::move(sh.replies.front());
      sh.replies.pop_front();
    }

    // Future resolution + encode + outbox splice: the lane's slice of a
    // pipelined reply's timeline.
    obs::TraceSpan reply_span(obs::TraceCollector::global(), "net.reply");
    reply_span.arg("fd", static_cast<std::uint64_t>(reply.conn->fd));
    reply_span.arg("shard", static_cast<std::uint64_t>(reply.conn->shard));

    std::vector<std::uint8_t> encoded;
    switch (reply.kind) {
      case Reply::Kind::kQuery: {
        // Blocking here is safe: the batcher's single flusher resolves
        // futures in submission order, which is exactly this queue's order.
        const QueryResponse resp = resolve(reply.fut, reply.k);
        encode_query_response(resp, &encoded);
        sh.queued_queries.fetch_sub(1, std::memory_order_acq_rel);
        break;
      }
      case Reply::Kind::kStats:
        encode_stats_response(stats_from(stats()), &encoded);
        break;
      case Reply::Kind::kMetrics:
        // Rendered from the same stats() snapshot the stats op encodes, so
        // the two views agree whenever they are taken back to back.
        encode_metrics_response(metrics_exposition(stats()), &encoded);
        break;
      case Reply::Kind::kHealth:
        encode_health_response(build_health(opt_.slo), &encoded);
        break;
      case Reply::Kind::kEncoded:
        encoded = std::move(reply.encoded);
        break;
    }

    {
      std::lock_guard<std::mutex> lock(reply.conn->outbox_mu);
      if (!reply.conn->dead) {
        reply.conn->outbox.insert(reply.conn->outbox.end(), encoded.begin(),
                                  encoded.end());
      }
    }
    net_e2e_.record(ms_since(reply.t0));
    reply.conn->inflight.fetch_sub(1, std::memory_order_acq_rel);

    // Only the owning shard touches conn->out, so hand it the fresh output:
    // mark the connection dirty and wake that shard. Duplicate dirty entries
    // are fine — flushing an empty outbox is a no-op.
    Shard& owner = *shards_[static_cast<std::size_t>(reply.conn->shard)];
    {
      std::lock_guard<std::mutex> lock(owner.dirty_mu);
      owner.dirty.push_back(reply.conn);
    }
    wake(owner);
  }
}

void TcpServer::close_conn(Shard& sh, const std::shared_ptr<Conn>& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->outbox_mu);
    conn->dead = true;
    conn->outbox.clear();
  }
  (void)::epoll_ctl(sh.epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  sh.conns.erase(conn->fd);
  open_conns_.fetch_sub(1, std::memory_order_relaxed);
}

void TcpServer::add_conn(Shard& sh, const std::shared_ptr<Conn>& conn) {
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = conn->fd;
  if (::epoll_ctl(sh.epoll_fd, EPOLL_CTL_ADD, conn->fd, &ev) < 0) {
    ::close(conn->fd);
    open_conns_.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  conn->armed = EPOLLIN;
  sh.conns.emplace(conn->fd, conn);
}

void TcpServer::accept_loop(Shard& sh0) {
  for (;;) {
    const int cfd = ::accept4(listen_fd_, nullptr, nullptr,
                              SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (cfd < 0) break;
    if (open_conns_.load(std::memory_order_relaxed) >= opt_.max_connections) {
      conns_rejected_.fetch_add(1, std::memory_order_relaxed);
      ::close(cfd);
      continue;
    }
    set_nodelay(cfd);
    if (opt_.so_sndbuf > 0) {
      (void)setsockopt(cfd, SOL_SOCKET, SO_SNDBUF, &opt_.so_sndbuf,
                       sizeof(opt_.so_sndbuf));
    }
    auto conn = std::make_shared<Conn>();
    conn->fd = cfd;
    conn->shard = static_cast<int>(next_shard_++ % shards_.size());
    open_conns_.fetch_add(1, std::memory_order_relaxed);
    connections_.fetch_add(1, std::memory_order_relaxed);
    if (conn->shard == 0) {
      add_conn(sh0, conn);
      continue;
    }
    Shard& target = *shards_[static_cast<std::size_t>(conn->shard)];
    {
      std::lock_guard<std::mutex> lock(target.pending_mu);
      target.pending.push_back(std::move(conn));
    }
    wake(target);
  }
}

bool TcpServer::process_in(Shard& sh, const std::shared_ptr<Conn>& conn) {
  std::size_t consumed = 0;
  while (conn->inflight.load(std::memory_order_acquire) < opt_.max_inflight) {
    std::size_t payload_off = 0;
    std::size_t payload_len = 0;
    bool have = false;
    try {
      have = try_frame(conn->in.data() + consumed, conn->in.size() - consumed,
                       &payload_off, &payload_len);
    } catch (const ProtocolError&) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (!have) break;
    if (!handle_frame(sh, conn, conn->in.data() + consumed + payload_off,
                      payload_len)) {
      return false;
    }
    consumed += payload_off + payload_len;
  }
  if (consumed > 0) {
    conn->in.erase(conn->in.begin(),
                   conn->in.begin() + static_cast<std::ptrdiff_t>(consumed));
  }
  // Backpressure: stop reading while the inflight cap is hit (frames beyond
  // it stay buffered) or buffered input is still over the cap. Resumed by
  // the dirty-connection flush when replies drain — buffered bytes never
  // re-trigger epoll, so the flush re-runs this parse.
  conn->paused =
      conn->inflight.load(std::memory_order_acquire) >= opt_.max_inflight ||
      conn->in.size() >= opt_.max_in_buffer;
  return true;
}

void TcpServer::on_readable(Shard& sh, const std::shared_ptr<Conn>& conn) {
  char buf[16384];
  bool peer_closed = false;
  while (conn->in.size() < opt_.max_in_buffer) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->in.insert(conn->in.end(), buf, buf + n);
      continue;
    }
    if (n == 0) {
      peer_closed = true;  // orderly shutdown from the client
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    // Hard error (ECONNRESET and friends): close now instead of leaving the
    // dead connection to linger until a later epoll error event.
    recv_errors_.fetch_add(1, std::memory_order_relaxed);
    obs::EventLog::global().record(
        obs::Severity::kWarn, obs::Component::kNet, "recv_error",
        {"fd", static_cast<std::uint64_t>(conn->fd)},
        {"errno", static_cast<std::uint64_t>(errno)});
    close_conn(sh, conn);
    return;
  }

  if (!process_in(sh, conn)) {
    close_conn(sh, conn);
    return;
  }
  if (peer_closed) close_conn(sh, conn);
}

bool TcpServer::try_write(Conn& conn) {
  while (conn.out.size() > conn.out_off) {
    const ssize_t n = ::send(conn.fd, conn.out.data() + conn.out_off,
                             conn.out.size() - conn.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  if (conn.out_off == conn.out.size()) {
    conn.out.clear();
    conn.out_off = 0;
  }
  return true;
}

void TcpServer::update_interest(Shard& sh, Conn& conn) {
  std::uint32_t want = 0;
  if (!conn.paused) want |= EPOLLIN;
  if (conn.out.size() > conn.out_off) want |= EPOLLOUT;
  if (want == conn.armed) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.fd = conn.fd;
  (void)::epoll_ctl(sh.epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
  conn.armed = want;
}

void TcpServer::io_loop(int shard_index) {
  obs::TraceCollector::global().set_thread_name(io_thread_name(shard_index));
  Shard& sh = *shards_[static_cast<std::size_t>(shard_index)];
  epoll_event events[64];
  char drain[4096];

  while (!stop_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(sh.epoll_fd, events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable; stop() still joins cleanly
    }

    // Connection events first, wake/accept after: a connection closed in
    // this pass may free its fd, and handling accepts last guarantees a
    // stale event can never be attributed to a fresh connection that reused
    // the number.
    bool woken = false;
    bool acceptable = false;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == sh.wake_rd) {
        woken = true;
        continue;
      }
      if (shard_index == 0 && fd == listen_fd_) {
        acceptable = true;
        continue;
      }
      auto it = sh.conns.find(fd);
      if (it == sh.conns.end()) continue;  // closed earlier in this pass
      auto conn = it->second;
      const std::uint32_t ev = events[i].events;

      // Reads before the error bits so a hard recv() failure is observed
      // (and counted) rather than folded into a generic EPOLLERR close.
      if ((ev & EPOLLIN) != 0) {
        on_readable(sh, conn);
        auto again = sh.conns.find(fd);
        if (again == sh.conns.end() || again->second != conn) continue;
      }
      if ((ev & (EPOLLERR | EPOLLHUP)) != 0) {
        close_conn(sh, conn);
        continue;
      }
      if (conn->out.size() > conn->out_off && !try_write(*conn)) {
        close_conn(sh, conn);
        continue;
      }
      // Slow-reader bound: whatever the socket would not take stays in
      // conn->out; past the cap the reader is not keeping up and holding
      // its replies would pin server memory.
      if (conn->out.size() - conn->out_off > opt_.max_out_buffer) {
        slow_closes_.fetch_add(1, std::memory_order_relaxed);
        obs::EventLog::global().record(
            obs::Severity::kWarn, obs::Component::kNet, "slow_client_close",
            {"fd", static_cast<std::uint64_t>(conn->fd)},
            {"unread", conn->out.size() - conn->out_off});
        close_conn(sh, conn);
        continue;
      }
      update_interest(sh, *conn);
    }

    if (woken) {
      while (::read(sh.wake_rd, drain, sizeof(drain)) > 0) {
      }
      // Adopt connections handed off by the acceptor.
      std::vector<std::shared_ptr<Conn>> adopted;
      {
        std::lock_guard<std::mutex> lock(sh.pending_mu);
        adopted.swap(sh.pending);
      }
      for (auto& conn : adopted) add_conn(sh, conn);
      // Flush completion output onto the connections it belongs to.
      std::vector<std::shared_ptr<Conn>> dirty;
      {
        std::lock_guard<std::mutex> lock(sh.dirty_mu);
        dirty.swap(sh.dirty);
      }
      for (auto& conn : dirty) {
        auto it = sh.conns.find(conn->fd);
        if (it == sh.conns.end() || it->second != conn) continue;  // closed
        flush_outbox(*conn);
        if (!try_write(*conn)) {
          close_conn(sh, conn);
          continue;
        }
        if (conn->out.size() - conn->out_off > opt_.max_out_buffer) {
          slow_closes_.fetch_add(1, std::memory_order_relaxed);
          obs::EventLog::global().record(
              obs::Severity::kWarn, obs::Component::kNet, "slow_client_close",
              {"fd", static_cast<std::uint64_t>(conn->fd)},
              {"unread", conn->out.size() - conn->out_off});
          close_conn(sh, conn);
          continue;
        }
        if (conn->paused) {
          // Replies drained; frames buffered behind the inflight cap can
          // run now (epoll will not re-deliver bytes already read).
          if (!process_in(sh, conn)) {
            close_conn(sh, conn);
            continue;
          }
          if (!try_write(*conn)) {
            close_conn(sh, conn);
            continue;
          }
        }
        update_interest(sh, *conn);
      }
    }

    if (acceptable) accept_loop(sh);
  }

  // Shutdown: mark every owned connection dead (lanes drop their replies)
  // and close the sockets, including hand-offs never adopted.
  for (auto& [fd, conn] : sh.conns) {
    std::lock_guard<std::mutex> lock(conn->outbox_mu);
    conn->dead = true;
    ::close(fd);
    open_conns_.fetch_sub(1, std::memory_order_relaxed);
  }
  sh.conns.clear();
  std::vector<std::shared_ptr<Conn>> orphans;
  {
    std::lock_guard<std::mutex> lock(sh.pending_mu);
    orphans.swap(sh.pending);
  }
  for (auto& conn : orphans) {
    std::lock_guard<std::mutex> lock(conn->outbox_mu);
    conn->dead = true;
    ::close(conn->fd);
    open_conns_.fetch_sub(1, std::memory_order_relaxed);
  }
}

}  // namespace cumf::serve::net
