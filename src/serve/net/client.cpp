#include "serve/net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace cumf::serve::net {

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string("net::Client: ") + what + ": " +
                           std::strerror(errno));
}

}  // namespace

Client::Client(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw_errno("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("net::Client: bad IPv4 address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("connect");
  }
  int one = 1;
  (void)setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), buf_(std::move(other.buf_)) {
  other.fd_ = -1;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::send_all(const std::uint8_t* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

void Client::read_frame(std::size_t* payload_off, std::size_t* payload_len) {
  char chunk[4096];
  for (;;) {
    if (try_frame(buf_.data(), buf_.size(), payload_off, payload_len)) return;
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (n == 0) {
      throw std::runtime_error("net::Client: server closed the connection");
    }
    buf_.insert(buf_.end(), chunk, chunk + n);
  }
}

void Client::send_query(idx_t user, int k) {
  std::vector<std::uint8_t> frame;
  encode_query_request(QueryRequest{user, k}, &frame);
  send_all(frame.data(), frame.size());
}

QueryResponse Client::read_query_response() {
  std::size_t off = 0, len = 0;
  read_frame(&off, &len);
  QueryResponse query;
  StatsResponse stats;
  const MsgType type = decode_response(buf_.data() + off, len, &query, &stats);
  buf_.erase(buf_.begin(),
             buf_.begin() + static_cast<std::ptrdiff_t>(off + len));
  if (type != MsgType::kQuery) {
    throw ProtocolError("expected a query response");
  }
  return query;
}

QueryResponse Client::query(idx_t user, int k) {
  send_query(user, k);
  return read_query_response();
}

void Client::send_add_rating(idx_t user, idx_t item, double value) {
  std::vector<std::uint8_t> frame;
  encode_add_rating_request(AddRatingRequest{user, item, value}, &frame);
  send_all(frame.data(), frame.size());
}

Status Client::read_add_rating_response() {
  std::size_t off = 0, len = 0;
  read_frame(&off, &len);
  QueryResponse query;
  StatsResponse stats;
  const MsgType type = decode_response(buf_.data() + off, len, &query, &stats);
  buf_.erase(buf_.begin(),
             buf_.begin() + static_cast<std::ptrdiff_t>(off + len));
  if (type != MsgType::kAddRating) {
    throw ProtocolError("expected an add-rating response");
  }
  return query.status;
}

Status Client::add_rating(idx_t user, idx_t item, double value) {
  send_add_rating(user, item, value);
  return read_add_rating_response();
}

std::string Client::metrics() {
  std::vector<std::uint8_t> frame;
  encode_metrics_request(&frame);
  send_all(frame.data(), frame.size());

  std::size_t off = 0, len = 0;
  read_frame(&off, &len);
  QueryResponse query;
  StatsResponse stats;
  std::string text;
  const MsgType type =
      decode_response(buf_.data() + off, len, &query, &stats, &text);
  buf_.erase(buf_.begin(),
             buf_.begin() + static_cast<std::ptrdiff_t>(off + len));
  if (type != MsgType::kMetrics) {
    throw ProtocolError("expected a metrics response");
  }
  return text;
}

HealthResponse Client::health() {
  std::vector<std::uint8_t> frame;
  encode_health_request(&frame);
  send_all(frame.data(), frame.size());

  std::size_t off = 0, len = 0;
  read_frame(&off, &len);
  QueryResponse query;
  StatsResponse stats;
  HealthResponse health;
  const MsgType type = decode_response(buf_.data() + off, len, &query, &stats,
                                       nullptr, &health);
  buf_.erase(buf_.begin(),
             buf_.begin() + static_cast<std::ptrdiff_t>(off + len));
  if (type != MsgType::kHealth) {
    throw ProtocolError("expected a health response");
  }
  return health;
}

StatsResponse Client::stats() {
  std::vector<std::uint8_t> frame;
  encode_stats_request(&frame);
  send_all(frame.data(), frame.size());

  std::size_t off = 0, len = 0;
  read_frame(&off, &len);
  QueryResponse query;
  StatsResponse stats;
  const MsgType type = decode_response(buf_.data() + off, len, &query, &stats);
  buf_.erase(buf_.begin(),
             buf_.begin() + static_cast<std::ptrdiff_t>(off + len));
  if (type != MsgType::kStats) {
    throw ProtocolError("expected a stats response");
  }
  return stats;
}

}  // namespace cumf::serve::net
