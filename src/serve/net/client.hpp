#pragma once

// Blocking client for the serving TCP front-end.
//
// One connection, synchronous by default: query() writes a QueryRequest
// frame and blocks until the response frame arrives. For load generators
// that need many requests in flight on one connection, send_query() and
// read_query_response() split the two halves — the server pipelines and
// answers in request order, so a caller that sends N requests reads exactly
// N responses back in the same order.

#include <cstdint>
#include <string>

#include "serve/net/protocol.hpp"
#include "util/types.hpp"

namespace cumf::serve::net {

class Client {
 public:
  /// Connects (blocking) to a TcpServer. Throws std::runtime_error when the
  /// connection cannot be established.
  Client(const std::string& host, std::uint16_t port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&&) = delete;

  /// Synchronous round trip: top-k recommendations for `user`.
  QueryResponse query(idx_t user, int k);

  /// Synchronous round trip: the server's ServeStats snapshot.
  StatsResponse stats();

  /// Synchronous round trip: the server's metrics in the Prometheus text
  /// exposition format (the GetMetrics op).
  std::string metrics();

  /// Synchronous round trip: the server's SLO health view — alert states,
  /// burn rates, slow-query exemplars, recent events (the GetHealth op).
  HealthResponse health();

  /// Synchronous round trip: hands one rating delta to the server's ingest
  /// sink (the retrain orchestrator's RatingLog). kOk = accepted, kBadUser =
  /// out-of-range ids, kBadRequest = server has no ingest sink.
  Status add_rating(idx_t user, idx_t item, double value);

  // --- pipelined half-calls (responses arrive in request order) -----------
  void send_query(idx_t user, int k);
  QueryResponse read_query_response();
  void send_add_rating(idx_t user, idx_t item, double value);
  Status read_add_rating_response();

 private:
  void send_all(const std::uint8_t* data, std::size_t size);
  /// Reads until a complete frame is buffered; returns its payload within
  /// buf_ (valid until the next read call).
  void read_frame(std::size_t* payload_off, std::size_t* payload_len);

  int fd_ = -1;
  std::vector<std::uint8_t> buf_;  // receive accumulation
};

}  // namespace cumf::serve::net
