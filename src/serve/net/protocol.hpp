#pragma once

// Wire protocol for the serving TCP front-end.
//
// A deliberately small, length-prefixed binary protocol: every message is one
// frame, `u32 payload_len` followed by `payload_len` bytes of payload, all
// integers little-endian (doubles are IEEE-754 bit patterns carried in a
// little-endian u64). Four operations:
//
//   QueryRequest  { u8 type=1, i32 user, i32 k }
//   QueryResponse { u8 type=1, u8 status, u64 generation, u32 count,
//                   count × { i32 item, f64 score } }
//
//   StatsRequest  { u8 type=2 }
//   StatsResponse { u8 type=2, u8 status=0, u64 queries, u64 batches,
//                   u64 cache_hits, u64 cache_misses, u64 generation,
//                   u64 e2e_samples, u64 e2e_total,
//                   f64 e2e_p50_ms, f64 e2e_p95_ms, f64 e2e_p99_ms,
//                   f64 queue_p50_ms, f64 queue_p99_ms,
//                   f64 batch_wall_p99_ms, f64 net_e2e_p99_ms,
//                   u64 retrains, u64 promotions, u64 rejections,
//                   u64 rollbacks, u64 deltas_ingested, u64 deltas_rejected,
//                   f64 gate_rmse, f64 gate_recall,
//                   f64 baseline_rmse, f64 baseline_recall,
//                   f64 train_wall_ms, f64 train_modeled_s,
//                   u64 retrains_full, u64 retrains_incremental,
//                   u64 promotions_full, u64 promotions_incremental,
//                   u64 rejections_full, u64 rejections_incremental,
//                   u64 escalations, u64 consolidations, u64 train_tier,
//                   u64 net_connections, u64 net_rejected,
//                   u64 net_protocol_errors, u64 net_recv_errors,
//                   u64 net_slow_closes, u64 net_overload_sheds,
//                   u64 net_io_shards }
//
//   AddRatingRequest  { u8 type=3, i32 user, i32 item, f64 value }
//   AddRatingResponse { u8 type=3, u8 status }
//
//   MetricsRequest  { u8 type=4 }
//   MetricsResponse { u8 type=4, u8 status=0, u32 len, len bytes of UTF-8 }
//
//   HealthRequest  { u8 type=5 }
//   HealthResponse { u8 type=5, u8 status=0,
//                    u8 latency_state, u8 availability_state,
//                    f64 latency_threshold_ms,
//                    f64 latency_fast_burn, f64 latency_slow_burn,
//                    f64 availability_fast_burn, f64 availability_slow_burn,
//                    u64 latency_violations, u64 availability_errors,
//                    u64 latency_transitions, u64 availability_transitions,
//                    u64 events_recorded, u64 events_dropped,
//                    u32 n_exemplars, n × { u64 ticket, u64 user, f64 e2e_ms,
//                                           f64 queue_ms, f64 engine_ms,
//                                           f64 finish_ms },
//                    u32 events_len, events_len bytes of UTF-8 }
//
// GetMetrics (type=4) returns the server's metrics in the Prometheus text
// exposition format (serve/metrics_export.hpp): the same ServeStats
// snapshot the stats op encodes, rendered as labeled counter/gauge/
// histogram families. The text rides as a length-prefixed byte string
// inside the frame; kMaxPayload bounds it like every other payload.
//
// GetHealth (type=5) is the SLO/incident view (obs/slo.hpp, obs/events.hpp):
// alert states (0 ok / 1 warn / 2 page) and fast/slow burn rates for the
// latency and availability objectives, the slowest-query exemplars with
// their per-stage breakdown, and a JSON-lines tail of recent operational
// events. Like GetMetrics it is length-capped: exemplars are bounded by
// kMaxHealthExemplars and the event text is trimmed (oldest lines first) to
// keep the frame within kMaxPayload. A server with no SloMonitor attached
// answers with all-zero states and burns — the events tail still rides.
//
// AddRating feeds the retrain orchestrator's RatingLog (src/orchestrate/):
// a server without an ingest sink attached answers kBadRequest; one with a
// sink answers kOk when the delta was accepted and kBadUser when the user
// or item id falls outside the training matrix. The stats tail reports the
// orchestrator counters (all-zero without an orchestrator) so promotion /
// rejection activity is observable over the same socket queries ride.
//
// Responses arrive in request order on each connection (the server pipelines
// but never reorders), so no request id is needed. A query's `k` may be at
// most the batcher's configured k: top-k lists are totally ordered
// (score desc, item asc), so the first k' entries of a top-k list *are* the
// top-k' list, and the server truncates; k > configured is kBadRequest.
//
// Frames larger than kMaxPayload are a protocol violation — decoding fails
// rather than allocating unbounded memory off a corrupt length prefix.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/serve_stats.hpp"
#include "serve/topk.hpp"
#include "util/types.hpp"

namespace cumf::serve::net {

/// Payload cap: a query response is 14 bytes of header plus 12 per item, so
/// this admits top-k lists beyond any sane k while still rejecting garbage
/// length prefixes immediately.
inline constexpr std::uint32_t kMaxPayload = 1u << 20;

/// Bytes of the length prefix that fronts every frame.
inline constexpr std::size_t kFramePrefix = 4;

enum class MsgType : std::uint8_t {
  kQuery = 1,
  kStats = 2,
  kAddRating = 3,
  kMetrics = 4,
  kHealth = 5,
};

/// Most slow-query exemplars a health response carries. The SloMonitor's own
/// ring is typically smaller; the cap exists so a corrupt count can never
/// expand past the payload bound.
inline constexpr std::uint32_t kMaxHealthExemplars = 32;

enum class Status : std::uint8_t {
  kOk = 0,
  kBadUser = 1,     // user id outside the serving generation's range
  kBadRequest = 2,  // malformed field (k < 1 or k > the server's configured k)
  kError = 3,       // engine failure (e.g. refresh shrank the model mid-batch)
  /// The server's completion lane is at its admission bound: the query was
  /// shed at the edge instead of queueing unboundedly behind the batcher.
  /// The connection stays open — back off and retry.
  kOverloaded = 4,
};

/// Malformed frame or payload; the server closes the offending connection and
/// the client surfaces it to the caller.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct QueryRequest {
  idx_t user = 0;
  std::int32_t k = 0;
};

/// One rating delta bound for the orchestrator's RatingLog. The value rides
/// as f64 on the wire (protocol uniformity) and narrows to real_t at the
/// ingest sink.
struct AddRatingRequest {
  idx_t user = 0;
  idx_t item = 0;
  double value = 0.0;
};

struct QueryResponse {
  Status status = Status::kOk;
  std::uint64_t generation = 0;  // model generation that answered (0 = static)
  std::vector<Recommendation> items;
};

/// Wire form of the ServeStats slice an operator polls over the socket.
struct StatsResponse {
  std::uint64_t queries = 0;
  std::uint64_t batches = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t generation = 0;
  std::uint64_t e2e_samples = 0;  // window behind the e2e percentiles
  std::uint64_t e2e_total = 0;    // lifetime e2e samples recorded
  double e2e_p50_ms = 0.0;
  double e2e_p95_ms = 0.0;
  double e2e_p99_ms = 0.0;
  double queue_p50_ms = 0.0;
  double queue_p99_ms = 0.0;
  double batch_wall_p99_ms = 0.0;
  double net_e2e_p99_ms = 0.0;
  // Retrain-orchestrator slice (ServeStats::orchestrator); all-zero when the
  // server has no orchestrator behind it.
  std::uint64_t retrains = 0;
  std::uint64_t promotions = 0;
  std::uint64_t rejections = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t deltas_ingested = 0;
  std::uint64_t deltas_rejected = 0;
  double gate_rmse = 0.0;
  double gate_recall = 0.0;
  double baseline_rmse = 0.0;
  double baseline_recall = 0.0;
  double train_wall_ms = 0.0;
  double train_modeled_s = 0.0;
  // Per-tier retraining splits (0 = full ALS, 1 = incremental SGD). The
  // aggregate counters above stay the sums; escalations counts incremental
  // rejections that re-ran full ALS in-cycle, consolidations the auto
  // tier's scheduled full passes, train_tier the tier of the latest pass.
  std::uint64_t retrains_full = 0;
  std::uint64_t retrains_incremental = 0;
  std::uint64_t promotions_full = 0;
  std::uint64_t promotions_incremental = 0;
  std::uint64_t rejections_full = 0;
  std::uint64_t rejections_incremental = 0;
  std::uint64_t escalations = 0;
  std::uint64_t consolidations = 0;
  std::uint64_t train_tier = 0;
  // Front-end slice (ServeStats::net): the sharded io layer's own counters,
  // so overload shedding and client misbehaviour are observable over the
  // same socket queries ride. All-zero when decoded from a pre-sharding
  // server is impossible — the frame length would not match.
  std::uint64_t net_connections = 0;       // accepted
  std::uint64_t net_rejected = 0;          // admission control turned away
  std::uint64_t net_protocol_errors = 0;   // closed for malformed frames
  std::uint64_t net_recv_errors = 0;       // closed on hard recv() errors
  std::uint64_t net_slow_closes = 0;       // closed for unread reply backlog
  std::uint64_t net_overload_sheds = 0;    // queries answered kOverloaded
  std::uint64_t net_io_shards = 0;         // epoll io threads serving
};

/// Builds the wire stats from a ServeStats snapshot.
StatsResponse stats_from(const ServeStats& s);

/// One slow-query exemplar on the wire: a traced query whose end-to-end time
/// crossed the latency SLO threshold, with its per-stage breakdown
/// (queue + engine + finish ≈ e2e by construction).
struct HealthExemplar {
  std::uint64_t ticket = 0;
  std::uint64_t user = 0;
  double e2e_ms = 0.0;
  double queue_ms = 0.0;
  double engine_ms = 0.0;
  double finish_ms = 0.0;
};

/// Wire form of the GetHealth reply: SLO alert states and burn rates, the
/// slowest traced queries, and a JSON-lines tail of recent events. States are
/// 0 ok / 1 warn / 2 page (obs::AlertState).
struct HealthResponse {
  std::uint8_t latency_state = 0;
  std::uint8_t availability_state = 0;
  double latency_threshold_ms = 0.0;
  double latency_fast_burn = 0.0;
  double latency_slow_burn = 0.0;
  double availability_fast_burn = 0.0;
  double availability_slow_burn = 0.0;
  std::uint64_t latency_violations = 0;
  std::uint64_t availability_errors = 0;
  std::uint64_t latency_transitions = 0;
  std::uint64_t availability_transitions = 0;
  std::uint64_t events_recorded = 0;
  std::uint64_t events_dropped = 0;
  std::vector<HealthExemplar> exemplars;  // slowest first
  std::string events_json;                // JSON lines, newest last
};

/// A decoded request frame (the server side of the protocol).
struct Request {
  MsgType type = MsgType::kQuery;
  QueryRequest query;       // valid when type == kQuery
  AddRatingRequest rating;  // valid when type == kAddRating
};

// --- encoding: append one complete frame (length prefix included) ----------
void encode_query_request(const QueryRequest& req,
                          std::vector<std::uint8_t>* out);
void encode_stats_request(std::vector<std::uint8_t>* out);
void encode_metrics_request(std::vector<std::uint8_t>* out);
void encode_health_request(std::vector<std::uint8_t>* out);
void encode_add_rating_request(const AddRatingRequest& req,
                               std::vector<std::uint8_t>* out);
void encode_query_response(const QueryResponse& resp,
                           std::vector<std::uint8_t>* out);
void encode_stats_response(const StatsResponse& resp,
                           std::vector<std::uint8_t>* out);
/// Truncates `text` to fit kMaxPayload (headers included) — a metrics dump
/// must never make the frame undecodable.
void encode_metrics_response(const std::string& text,
                             std::vector<std::uint8_t>* out);
void encode_add_rating_response(Status status, std::vector<std::uint8_t>* out);
/// Caps exemplars at kMaxHealthExemplars and trims the events text — oldest
/// (front) lines first, at line boundaries — until the frame fits kMaxPayload.
void encode_health_response(const HealthResponse& resp,
                            std::vector<std::uint8_t>* out);

// --- framing ---------------------------------------------------------------

/// Inspects the front of a receive buffer. Returns true when a complete frame
/// is available, setting *payload_off / *payload_len to its payload bytes
/// within `data`; false when more bytes are needed. Throws ProtocolError on
/// an oversized or zero-length payload.
bool try_frame(const std::uint8_t* data, std::size_t size,
               std::size_t* payload_off, std::size_t* payload_len);

// --- decoding (payload bytes, prefix already stripped) ---------------------
Request decode_request(const std::uint8_t* payload, std::size_t len);
/// Decodes a response payload; *stats is filled when the frame is a stats
/// response, *metrics (when non-null) for a metrics response, *health (when
/// non-null) for a health response; for everything but kQuery the returned
/// QueryResponse carries only `status`.
MsgType decode_response(const std::uint8_t* payload, std::size_t len,
                        QueryResponse* query, StatsResponse* stats,
                        std::string* metrics = nullptr,
                        HealthResponse* health = nullptr);

}  // namespace cumf::serve::net
