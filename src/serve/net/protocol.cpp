#include "serve/net/protocol.hpp"

#include <cstring>

namespace cumf::serve::net {

namespace {

// Explicit little-endian serialization: the wire format is identical across
// hosts regardless of native byte order, and doubles travel as their IEEE-754
// bit pattern in a u64.

void put_u8(std::vector<std::uint8_t>* out, std::uint8_t v) {
  out->push_back(v);
}

void put_u32(std::vector<std::uint8_t>* out, std::uint32_t v) {
  out->push_back(static_cast<std::uint8_t>(v));
  out->push_back(static_cast<std::uint8_t>(v >> 8));
  out->push_back(static_cast<std::uint8_t>(v >> 16));
  out->push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>* out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

void put_i32(std::vector<std::uint8_t>* out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_f64(std::vector<std::uint8_t>* out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

/// Cursor over a payload; every read is bounds-checked so a truncated or
/// corrupt payload raises ProtocolError instead of reading past the buffer.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }

  std::uint32_t u32() {
    need(4);
    const std::uint32_t v = static_cast<std::uint32_t>(data_[pos_]) |
                            static_cast<std::uint32_t>(data_[pos_ + 1]) << 8 |
                            static_cast<std::uint32_t>(data_[pos_ + 2]) << 16 |
                            static_cast<std::uint32_t>(data_[pos_ + 3]) << 24;
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    const std::uint64_t hi = u32();
    return lo | hi << 32;
  }

  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }

  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  /// Returns a pointer to the next `n` payload bytes and advances past them.
  const std::uint8_t* bytes(std::size_t n) {
    need(n);
    const std::uint8_t* p = data_ + pos_;
    pos_ += n;
    return p;
  }

  void expect_done() const {
    if (pos_ != size_) throw ProtocolError("trailing bytes in payload");
  }

 private:
  void need(std::size_t n) const {
    if (size_ - pos_ < n) throw ProtocolError("truncated payload");
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Writes the length prefix for everything appended after `mark`.
void seal_frame(std::vector<std::uint8_t>* out, std::size_t mark) {
  const std::size_t payload = out->size() - mark - kFramePrefix;
  if (payload > kMaxPayload) throw ProtocolError("payload exceeds kMaxPayload");
  const auto len = static_cast<std::uint32_t>(payload);
  (*out)[mark] = static_cast<std::uint8_t>(len);
  (*out)[mark + 1] = static_cast<std::uint8_t>(len >> 8);
  (*out)[mark + 2] = static_cast<std::uint8_t>(len >> 16);
  (*out)[mark + 3] = static_cast<std::uint8_t>(len >> 24);
}

std::size_t open_frame(std::vector<std::uint8_t>* out) {
  const std::size_t mark = out->size();
  out->resize(mark + kFramePrefix);
  return mark;
}

}  // namespace

StatsResponse stats_from(const ServeStats& s) {
  StatsResponse w;
  w.queries = s.queries;
  w.batches = s.batches;
  w.cache_hits = s.cache_hits;
  w.cache_misses = s.cache_misses;
  w.generation = s.generation;
  w.e2e_samples = s.e2e.samples;
  w.e2e_total = s.e2e.total_recorded;
  w.e2e_p50_ms = s.e2e.p50_ms;
  w.e2e_p95_ms = s.e2e.p95_ms;
  w.e2e_p99_ms = s.e2e.p99_ms;
  w.queue_p50_ms = s.queue_delay.p50_ms;
  w.queue_p99_ms = s.queue_delay.p99_ms;
  w.batch_wall_p99_ms = s.batch_wall.p99_ms;
  w.net_e2e_p99_ms = s.net_e2e.p99_ms;
  w.retrains = s.orchestrator.retrains;
  w.promotions = s.orchestrator.promotions;
  w.rejections = s.orchestrator.rejections;
  w.rollbacks = s.orchestrator.rollbacks;
  w.deltas_ingested = s.orchestrator.deltas_ingested;
  w.deltas_rejected = s.orchestrator.deltas_rejected;
  w.gate_rmse = s.orchestrator.last_gate_rmse;
  w.gate_recall = s.orchestrator.last_gate_recall;
  w.baseline_rmse = s.orchestrator.baseline_rmse;
  w.baseline_recall = s.orchestrator.baseline_recall;
  w.train_wall_ms = s.orchestrator.last_train_wall_ms;
  w.train_modeled_s = s.orchestrator.last_train_modeled_s;
  w.retrains_full = s.orchestrator.retrains_full;
  w.retrains_incremental = s.orchestrator.retrains_incremental;
  w.promotions_full = s.orchestrator.promotions_full;
  w.promotions_incremental = s.orchestrator.promotions_incremental;
  w.rejections_full = s.orchestrator.rejections_full;
  w.rejections_incremental = s.orchestrator.rejections_incremental;
  w.escalations = s.orchestrator.escalations;
  w.consolidations = s.orchestrator.consolidations;
  w.train_tier = s.orchestrator.last_train_tier;
  w.net_connections = s.net.connections_accepted;
  w.net_rejected = s.net.connections_rejected;
  w.net_protocol_errors = s.net.protocol_errors;
  w.net_recv_errors = s.net.recv_errors;
  w.net_slow_closes = s.net.slow_client_closes;
  w.net_overload_sheds = s.net.overload_sheds;
  w.net_io_shards = s.net.io_shards;
  return w;
}

void encode_query_request(const QueryRequest& req,
                          std::vector<std::uint8_t>* out) {
  const std::size_t mark = open_frame(out);
  put_u8(out, static_cast<std::uint8_t>(MsgType::kQuery));
  put_i32(out, req.user);
  put_i32(out, req.k);
  seal_frame(out, mark);
}

void encode_stats_request(std::vector<std::uint8_t>* out) {
  const std::size_t mark = open_frame(out);
  put_u8(out, static_cast<std::uint8_t>(MsgType::kStats));
  seal_frame(out, mark);
}

void encode_metrics_request(std::vector<std::uint8_t>* out) {
  const std::size_t mark = open_frame(out);
  put_u8(out, static_cast<std::uint8_t>(MsgType::kMetrics));
  seal_frame(out, mark);
}

void encode_health_request(std::vector<std::uint8_t>* out) {
  const std::size_t mark = open_frame(out);
  put_u8(out, static_cast<std::uint8_t>(MsgType::kHealth));
  seal_frame(out, mark);
}

void encode_add_rating_request(const AddRatingRequest& req,
                               std::vector<std::uint8_t>* out) {
  const std::size_t mark = open_frame(out);
  put_u8(out, static_cast<std::uint8_t>(MsgType::kAddRating));
  put_i32(out, req.user);
  put_i32(out, req.item);
  put_f64(out, req.value);
  seal_frame(out, mark);
}

void encode_add_rating_response(Status status,
                                std::vector<std::uint8_t>* out) {
  const std::size_t mark = open_frame(out);
  put_u8(out, static_cast<std::uint8_t>(MsgType::kAddRating));
  put_u8(out, static_cast<std::uint8_t>(status));
  seal_frame(out, mark);
}

void encode_query_response(const QueryResponse& resp,
                           std::vector<std::uint8_t>* out) {
  const std::size_t mark = open_frame(out);
  put_u8(out, static_cast<std::uint8_t>(MsgType::kQuery));
  put_u8(out, static_cast<std::uint8_t>(resp.status));
  put_u64(out, resp.generation);
  put_u32(out, static_cast<std::uint32_t>(resp.items.size()));
  for (const auto& rec : resp.items) {
    put_i32(out, rec.item);
    put_f64(out, rec.score);
  }
  seal_frame(out, mark);
}

void encode_stats_response(const StatsResponse& resp,
                           std::vector<std::uint8_t>* out) {
  const std::size_t mark = open_frame(out);
  put_u8(out, static_cast<std::uint8_t>(MsgType::kStats));
  put_u8(out, static_cast<std::uint8_t>(Status::kOk));
  put_u64(out, resp.queries);
  put_u64(out, resp.batches);
  put_u64(out, resp.cache_hits);
  put_u64(out, resp.cache_misses);
  put_u64(out, resp.generation);
  put_u64(out, resp.e2e_samples);
  put_u64(out, resp.e2e_total);
  put_f64(out, resp.e2e_p50_ms);
  put_f64(out, resp.e2e_p95_ms);
  put_f64(out, resp.e2e_p99_ms);
  put_f64(out, resp.queue_p50_ms);
  put_f64(out, resp.queue_p99_ms);
  put_f64(out, resp.batch_wall_p99_ms);
  put_f64(out, resp.net_e2e_p99_ms);
  put_u64(out, resp.retrains);
  put_u64(out, resp.promotions);
  put_u64(out, resp.rejections);
  put_u64(out, resp.rollbacks);
  put_u64(out, resp.deltas_ingested);
  put_u64(out, resp.deltas_rejected);
  put_f64(out, resp.gate_rmse);
  put_f64(out, resp.gate_recall);
  put_f64(out, resp.baseline_rmse);
  put_f64(out, resp.baseline_recall);
  put_f64(out, resp.train_wall_ms);
  put_f64(out, resp.train_modeled_s);
  put_u64(out, resp.retrains_full);
  put_u64(out, resp.retrains_incremental);
  put_u64(out, resp.promotions_full);
  put_u64(out, resp.promotions_incremental);
  put_u64(out, resp.rejections_full);
  put_u64(out, resp.rejections_incremental);
  put_u64(out, resp.escalations);
  put_u64(out, resp.consolidations);
  put_u64(out, resp.train_tier);
  put_u64(out, resp.net_connections);
  put_u64(out, resp.net_rejected);
  put_u64(out, resp.net_protocol_errors);
  put_u64(out, resp.net_recv_errors);
  put_u64(out, resp.net_slow_closes);
  put_u64(out, resp.net_overload_sheds);
  put_u64(out, resp.net_io_shards);
  seal_frame(out, mark);
}

void encode_metrics_response(const std::string& text,
                             std::vector<std::uint8_t>* out) {
  // u8 type + u8 status + u32 len ahead of the text itself.
  constexpr std::size_t kHeader = 6;
  std::size_t n = text.size();
  if (n > kMaxPayload - kHeader) n = kMaxPayload - kHeader;
  const std::size_t mark = open_frame(out);
  put_u8(out, static_cast<std::uint8_t>(MsgType::kMetrics));
  put_u8(out, static_cast<std::uint8_t>(Status::kOk));
  put_u32(out, static_cast<std::uint32_t>(n));
  out->insert(out->end(), text.begin(),
              text.begin() + static_cast<std::ptrdiff_t>(n));
  seal_frame(out, mark);
}

void encode_health_response(const HealthResponse& resp,
                            std::vector<std::uint8_t>* out) {
  // 4 × u8, 5 × f64, 6 × u64, u32 exemplar count: bytes ahead of exemplars.
  constexpr std::size_t kHeader = 4 + 5 * 8 + 6 * 8 + 4;
  constexpr std::size_t kExemplarBytes = 2 * 8 + 4 * 8;
  std::size_t n_ex = resp.exemplars.size();
  if (n_ex > kMaxHealthExemplars) n_ex = kMaxHealthExemplars;
  // Events budget after the fixed part and the trailing u32 text length.
  const std::size_t budget = kMaxPayload - kHeader - n_ex * kExemplarBytes - 4;
  // Trim oldest lines first: keep the largest suffix that fits, then advance
  // past the partial first line so every surviving line is intact JSON.
  std::size_t start = 0;
  if (resp.events_json.size() > budget) {
    start = resp.events_json.size() - budget;
    const std::size_t nl = resp.events_json.find('\n', start);
    start = nl == std::string::npos ? resp.events_json.size() : nl + 1;
  }
  const std::size_t text_len = resp.events_json.size() - start;

  const std::size_t mark = open_frame(out);
  put_u8(out, static_cast<std::uint8_t>(MsgType::kHealth));
  put_u8(out, static_cast<std::uint8_t>(Status::kOk));
  put_u8(out, resp.latency_state);
  put_u8(out, resp.availability_state);
  put_f64(out, resp.latency_threshold_ms);
  put_f64(out, resp.latency_fast_burn);
  put_f64(out, resp.latency_slow_burn);
  put_f64(out, resp.availability_fast_burn);
  put_f64(out, resp.availability_slow_burn);
  put_u64(out, resp.latency_violations);
  put_u64(out, resp.availability_errors);
  put_u64(out, resp.latency_transitions);
  put_u64(out, resp.availability_transitions);
  put_u64(out, resp.events_recorded);
  put_u64(out, resp.events_dropped);
  put_u32(out, static_cast<std::uint32_t>(n_ex));
  for (std::size_t i = 0; i < n_ex; ++i) {
    const auto& ex = resp.exemplars[i];
    put_u64(out, ex.ticket);
    put_u64(out, ex.user);
    put_f64(out, ex.e2e_ms);
    put_f64(out, ex.queue_ms);
    put_f64(out, ex.engine_ms);
    put_f64(out, ex.finish_ms);
  }
  put_u32(out, static_cast<std::uint32_t>(text_len));
  out->insert(out->end(),
              resp.events_json.begin() + static_cast<std::ptrdiff_t>(start),
              resp.events_json.end());
  seal_frame(out, mark);
}

bool try_frame(const std::uint8_t* data, std::size_t size,
               std::size_t* payload_off, std::size_t* payload_len) {
  if (size < kFramePrefix) return false;
  const std::uint32_t len = static_cast<std::uint32_t>(data[0]) |
                            static_cast<std::uint32_t>(data[1]) << 8 |
                            static_cast<std::uint32_t>(data[2]) << 16 |
                            static_cast<std::uint32_t>(data[3]) << 24;
  if (len == 0) throw ProtocolError("zero-length payload");
  if (len > kMaxPayload) throw ProtocolError("payload length exceeds cap");
  if (size < kFramePrefix + len) return false;
  *payload_off = kFramePrefix;
  *payload_len = len;
  return true;
}

Request decode_request(const std::uint8_t* payload, std::size_t len) {
  Reader r(payload, len);
  Request req;
  const auto type = r.u8();
  switch (static_cast<MsgType>(type)) {
    case MsgType::kQuery:
      req.type = MsgType::kQuery;
      req.query.user = r.i32();
      req.query.k = r.i32();
      break;
    case MsgType::kStats:
      req.type = MsgType::kStats;
      break;
    case MsgType::kMetrics:
      req.type = MsgType::kMetrics;
      break;
    case MsgType::kHealth:
      req.type = MsgType::kHealth;
      break;
    case MsgType::kAddRating:
      req.type = MsgType::kAddRating;
      req.rating.user = r.i32();
      req.rating.item = r.i32();
      req.rating.value = r.f64();
      break;
    default:
      throw ProtocolError("unknown request type " + std::to_string(type));
  }
  r.expect_done();
  return req;
}

MsgType decode_response(const std::uint8_t* payload, std::size_t len,
                        QueryResponse* query, StatsResponse* stats,
                        std::string* metrics, HealthResponse* health) {
  Reader r(payload, len);
  const auto type = r.u8();
  switch (static_cast<MsgType>(type)) {
    case MsgType::kQuery: {
      query->status = static_cast<Status>(r.u8());
      query->generation = r.u64();
      const std::uint32_t count = r.u32();
      // Each item is 12 payload bytes; validate the count against what the
      // frame can actually hold before reserving, so a corrupt count raises
      // ProtocolError instead of attempting a multi-GB allocation.
      if (count > len / 12) throw ProtocolError("item count exceeds payload");
      query->items.clear();
      query->items.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        Recommendation rec;
        rec.item = r.i32();
        rec.score = r.f64();
        query->items.push_back(rec);
      }
      r.expect_done();
      return MsgType::kQuery;
    }
    case MsgType::kStats: {
      (void)r.u8();  // status: stats responses always succeed
      stats->queries = r.u64();
      stats->batches = r.u64();
      stats->cache_hits = r.u64();
      stats->cache_misses = r.u64();
      stats->generation = r.u64();
      stats->e2e_samples = r.u64();
      stats->e2e_total = r.u64();
      stats->e2e_p50_ms = r.f64();
      stats->e2e_p95_ms = r.f64();
      stats->e2e_p99_ms = r.f64();
      stats->queue_p50_ms = r.f64();
      stats->queue_p99_ms = r.f64();
      stats->batch_wall_p99_ms = r.f64();
      stats->net_e2e_p99_ms = r.f64();
      stats->retrains = r.u64();
      stats->promotions = r.u64();
      stats->rejections = r.u64();
      stats->rollbacks = r.u64();
      stats->deltas_ingested = r.u64();
      stats->deltas_rejected = r.u64();
      stats->gate_rmse = r.f64();
      stats->gate_recall = r.f64();
      stats->baseline_rmse = r.f64();
      stats->baseline_recall = r.f64();
      stats->train_wall_ms = r.f64();
      stats->train_modeled_s = r.f64();
      stats->retrains_full = r.u64();
      stats->retrains_incremental = r.u64();
      stats->promotions_full = r.u64();
      stats->promotions_incremental = r.u64();
      stats->rejections_full = r.u64();
      stats->rejections_incremental = r.u64();
      stats->escalations = r.u64();
      stats->consolidations = r.u64();
      stats->train_tier = r.u64();
      stats->net_connections = r.u64();
      stats->net_rejected = r.u64();
      stats->net_protocol_errors = r.u64();
      stats->net_recv_errors = r.u64();
      stats->net_slow_closes = r.u64();
      stats->net_overload_sheds = r.u64();
      stats->net_io_shards = r.u64();
      r.expect_done();
      return MsgType::kStats;
    }
    case MsgType::kMetrics: {
      query->status = static_cast<Status>(r.u8());
      query->generation = 0;
      query->items.clear();
      const std::uint32_t count = r.u32();
      // The declared text length can never exceed what the frame holds; a
      // corrupt count is a protocol violation, not a giant allocation.
      if (count > len) throw ProtocolError("metrics text exceeds payload");
      const std::uint8_t* text = r.bytes(count);
      if (metrics != nullptr) {
        metrics->assign(reinterpret_cast<const char*>(text), count);
      }
      r.expect_done();
      return MsgType::kMetrics;
    }
    case MsgType::kHealth: {
      query->status = static_cast<Status>(r.u8());
      query->generation = 0;
      query->items.clear();
      HealthResponse scratch;
      HealthResponse& h = health != nullptr ? *health : scratch;
      h.latency_state = r.u8();
      h.availability_state = r.u8();
      h.latency_threshold_ms = r.f64();
      h.latency_fast_burn = r.f64();
      h.latency_slow_burn = r.f64();
      h.availability_fast_burn = r.f64();
      h.availability_slow_burn = r.f64();
      h.latency_violations = r.u64();
      h.availability_errors = r.u64();
      h.latency_transitions = r.u64();
      h.availability_transitions = r.u64();
      h.events_recorded = r.u64();
      h.events_dropped = r.u64();
      const std::uint32_t n_ex = r.u32();
      // 48 payload bytes per exemplar; reject counts the frame cannot hold
      // (and anything past the encoder's own cap) before reserving.
      if (n_ex > kMaxHealthExemplars || n_ex > len / 48) {
        throw ProtocolError("exemplar count exceeds payload");
      }
      h.exemplars.clear();
      h.exemplars.reserve(n_ex);
      for (std::uint32_t i = 0; i < n_ex; ++i) {
        HealthExemplar ex;
        ex.ticket = r.u64();
        ex.user = r.u64();
        ex.e2e_ms = r.f64();
        ex.queue_ms = r.f64();
        ex.engine_ms = r.f64();
        ex.finish_ms = r.f64();
        h.exemplars.push_back(ex);
      }
      const std::uint32_t text_len = r.u32();
      if (text_len > len) throw ProtocolError("events text exceeds payload");
      const std::uint8_t* text = r.bytes(text_len);
      h.events_json.assign(reinterpret_cast<const char*>(text), text_len);
      r.expect_done();
      return MsgType::kHealth;
    }
    case MsgType::kAddRating: {
      query->status = static_cast<Status>(r.u8());
      query->generation = 0;
      query->items.clear();
      r.expect_done();
      return MsgType::kAddRating;
    }
    default:
      throw ProtocolError("unknown response type " + std::to_string(type));
  }
}

}  // namespace cumf::serve::net
