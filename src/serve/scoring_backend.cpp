#include "serve/scoring_backend.hpp"

#include <algorithm>
#include <cstddef>

#include "linalg/hermitian.hpp"
#include "obs/trace.hpp"
#include "serve/topk.hpp"

namespace cumf::serve {

namespace {

// Bounded-heap comparator: "less" = ranks earlier, so the std::heap max — its
// front — is the *worst* kept entry, which a full heap evicts when a better
// candidate arrives.
bool heap_cmp(const Recommendation& a, const Recommendation& b) {
  return ranks_before(a, b);
}

// Relative padding on the Cauchy–Schwarz bound. Norms and dots are both
// accumulated in double from the same float inputs, so their rounding error
// is far below this; the padding keeps pruning strictly conservative.
constexpr double kBoundSlack = 1.0 + 1e-9;

bool is_rated(const std::vector<idx_t>& rated, idx_t item) {
  return std::binary_search(rated.begin(), rated.end(), item);
}

// Scores four users against one θ row in a single pass over f, keeping four
// independent accumulator chains in flight. A lone double accumulator is
// latency-bound on its add chain; four chains fill the pipeline — the serving
// analogue of the paper's register-blocked update kernels (§3.1, Fig. 7).
// Each chain accumulates in exactly linalg::dot's element order and widening,
// so the results are bit-identical to the one-user path.
void dot4(const real_t* x0, const real_t* x1, const real_t* x2,
          const real_t* x3, const real_t* t, int f, double out[4]) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  for (int j = 0; j < f; ++j) {
    const double tj = t[j];
    s0 += static_cast<double>(x0[j]) * tj;
    s1 += static_cast<double>(x1[j]) * tj;
    s2 += static_cast<double>(x2[j]) * tj;
    s3 += static_cast<double>(x3[j]) * tj;
  }
  out[0] = s0;
  out[1] = s1;
  out[2] = s2;
  out[3] = s3;
}

}  // namespace

SweepCounters reference_sweep(const SweepTask& task,
                              std::vector<std::vector<Recommendation>>& out) {
  const FactorStore& store = *task.store;
  const FactorShard& shard = *task.shard;
  const std::span<const idx_t> users = task.users;
  const int first = task.first;
  const int k = task.k;
  const int f = store.f();
  const std::size_t block = static_cast<std::size_t>(task.last - task.first);
  const std::size_t shard_items = shard.item_ids.size();
  std::vector<char> done(block, 0);
  std::size_t active = block;
  SweepCounters counters;

  const auto offer = [k](std::vector<Recommendation>& heap,
                         const Recommendation& cand) {
    if (static_cast<int>(heap.size()) < k) {
      heap.push_back(cand);
      std::push_heap(heap.begin(), heap.end(), heap_cmp);
    } else if (ranks_before(cand, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), heap_cmp);
      heap.back() = cand;
      std::push_heap(heap.begin(), heap.end(), heap_cmp);
    }
  };

  // Item-major sweep: each θ_v row is read once and scored against every
  // still-active user in the block while it is hot. Users that survive the
  // prune/exclude gates are scored four at a time (dot4) — the batching win.
  std::vector<std::size_t> cand;  // block slots to score for the current item
  cand.reserve(block);
  for (std::size_t slot = 0; slot < shard_items && active > 0; ++slot) {
    const idx_t gid = shard.item_ids[slot];
    const real_t* tv = shard.theta.row(static_cast<idx_t>(slot));
    const double item_norm = shard.norms[slot];
    ++counters.rows_swept;

    cand.clear();
    for (std::size_t bi = 0; bi < block; ++bi) {
      if (done[bi]) continue;
      const idx_t user = users[static_cast<std::size_t>(first) + bi];
      const auto& heap = out[bi];

      if (task.prune && static_cast<int>(heap.size()) == k) {
        const double bound = item_norm * store.user_norm(user) * kBoundSlack;
        // Items are in descending-norm order, so once the bound drops below
        // this user's k-th best the rest of the shard cannot place.
        if (bound < heap.front().score) {
          done[bi] = 1;
          --active;
          counters.pruned += shard_items - slot;
          continue;
        }
      }

      if (task.exclude &&
          is_rated((*task.rated)[static_cast<std::size_t>(first) + bi], gid)) {
        continue;
      }
      cand.push_back(bi);
    }

    counters.scored += cand.size();
    std::size_t c = 0;
    for (; c + 4 <= cand.size(); c += 4) {
      double scores[4];
      dot4(store.user(users[static_cast<std::size_t>(first) + cand[c]]),
           store.user(users[static_cast<std::size_t>(first) + cand[c + 1]]),
           store.user(users[static_cast<std::size_t>(first) + cand[c + 2]]),
           store.user(users[static_cast<std::size_t>(first) + cand[c + 3]]),
           tv, f, scores);
      for (int r = 0; r < 4; ++r) {
        offer(out[cand[c + static_cast<std::size_t>(r)]],
              Recommendation{gid, scores[r]});
      }
    }
    for (; c < cand.size(); ++c) {
      const idx_t user = users[static_cast<std::size_t>(first) + cand[c]];
      offer(out[cand[c]],
            Recommendation{gid, linalg::dot(store.user(user), tv, f)});
    }
  }
  return counters;
}

gpusim::KernelStats sweep_kernel_stats(const SweepTask& task,
                                       const SweepCounters& c,
                                       bool use_texture) {
  const auto f = static_cast<double>(task.store->f());
  const auto fbytes = f * sizeof(real_t);
  const auto block_users = static_cast<double>(task.last - task.first);
  gpusim::KernelStats stats;
  stats.flops = 2.0 * f * static_cast<double>(c.scored);
  stats.global_read =
      static_cast<bytes_t>(static_cast<double>(c.rows_swept) * fbytes);
  stats.gathered_read = static_cast<bytes_t>(block_users * fbytes);
  stats.gathered_via_texture = use_texture;
  stats.shared_read =
      static_cast<bytes_t>(static_cast<double>(c.scored) * fbytes);
  stats.global_write =
      static_cast<bytes_t>(block_users * static_cast<double>(task.k) * 8);
  return stats;
}

// ------------------------------------------------------ CpuScoringBackend --

SweepCounters CpuScoringBackend::sweep(
    const SweepTask& task, std::vector<std::vector<Recommendation>>& out) {
  return reference_sweep(task, out);
}

// --------------------------------------------------- GpuSimScoringBackend --

bytes_t GpuSimScoringBackend::model_bytes_for(const FactorStore& store) {
  // Resident model: X (users·f) + Θ (items·f) + the per-row norms serving
  // keeps alongside (double per item + double per user).
  const auto users = static_cast<bytes_t>(store.num_users());
  const auto items = static_cast<bytes_t>(store.num_items());
  const auto f = static_cast<bytes_t>(store.f());
  return (users + items) * f * sizeof(real_t) +
         (users + items) * sizeof(double);
}

GpuSimScoringBackend::GpuSimScoringBackend(gpusim::Device& device,
                                           const FactorStore& store,
                                           Options opt)
    : dev_(&device), opt_(opt) {
  const bytes_t bytes = model_bytes_for(store);
  dev_->charge(bytes);
  resident_.push_back(Resident{&store, {}, /*pinned_for_life=*/true, bytes});
  resident_bytes_ = peak_bytes_ = bytes;
}

GpuSimScoringBackend::GpuSimScoringBackend(gpusim::Device& device, Options opt)
    : dev_(&device), opt_(opt) {}

GpuSimScoringBackend::~GpuSimScoringBackend() {
  if (resident_bytes_ > 0) dev_->release(resident_bytes_);
}

void GpuSimScoringBackend::begin_batch(
    const std::shared_ptr<const FactorStore>& store) {
  std::lock_guard<std::mutex> lock(mu_);
  // Release drained generations first so a swap on a tight device only OOMs
  // when old and new genuinely have to coexist (old still pinned).
  gc_locked();
  for (const auto& r : resident_) {
    if (r.key == store.get()) return;  // already charged
  }
  const bytes_t bytes = model_bytes_for(*store);
  dev_->charge(bytes);  // may raise DeviceOomError: both models must fit
  resident_.push_back(Resident{store.get(), store, false, bytes});
  resident_bytes_ += bytes;
  peak_bytes_ = std::max(peak_bytes_, resident_bytes_);
}

void GpuSimScoringBackend::gc_locked() {
  std::erase_if(resident_, [this](const Resident& r) {
    if (r.pinned_for_life || !r.alive.expired()) return false;
    dev_->release(r.bytes);
    resident_bytes_ -= r.bytes;
    return true;
  });
}

bytes_t GpuSimScoringBackend::model_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_bytes_;
}

bytes_t GpuSimScoringBackend::peak_model_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_bytes_;
}

int GpuSimScoringBackend::resident_models() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(resident_.size());
}

SweepCounters GpuSimScoringBackend::sweep(
    const SweepTask& task, std::vector<std::vector<Recommendation>>& out) {
  // Span over the host-side execution of this modeled launch; the modeled
  // GPU time rides along as an arg so the trace shows both time axes.
  auto& trace = obs::TraceCollector::global();
  const bool traced = trace.enabled();
  const double begin_us = traced ? trace.now_us() : 0.0;
  const SweepCounters c = reference_sweep(task, out);

  const gpusim::KernelStats stats =
      sweep_kernel_stats(task, c, opt_.use_texture);

  double modeled_s = 0.0;
  {
    // Device accounting is not thread-safe and sweeps race on the pool; the
    // lock also keeps the per-batch modeled sum consistent. Launches
    // serialize on the simulated stream, so batch modeled time is the sum
    // of launches.
    std::lock_guard<std::mutex> lock(mu_);
    dev_->account_kernel(stats);
    modeled_s = dev_->model_kernel_seconds(stats);
    batch_modeled_s_ += modeled_s;
  }
  if (traced) {
    trace.record_span("gpusim.kernel", begin_us, trace.now_us(),
                      {"scored", c.scored}, {"rows_swept", c.rows_swept},
                      {"modeled_us",
                       static_cast<std::uint64_t>(modeled_s * 1e6)});
  }
  return c;
}

BatchCost GpuSimScoringBackend::finish_batch() {
  std::lock_guard<std::mutex> lock(mu_);
  // Drained generations can also die between batches (the live store swapped
  // while this backend sat idle); sweep them out at every batch boundary.
  gc_locked();
  BatchCost cost;
  cost.modeled_s = batch_modeled_s_;
  batch_modeled_s_ = 0.0;
  return cost;
}

}  // namespace cumf::serve
