#pragma once

// Bridges a ServeStats snapshot into an obs::MetricsRegistry and renders
// the Prometheus-style exposition text the GetMetrics protocol op serves.
//
// ServeStats stays the typed in-process view the components maintain; this
// translation is the single place its fields map onto metric families, so
// the exposition's counters agree with the stats op by construction — both
// are rendered from the same snapshot. Latency stages share one histogram
// family (cumf_serve_latency_ms{stage=...}) fed from the trackers' fixed
// buckets (kLatencyBucketBoundsMs), plus window-percentile gauges.

#include <string>

#include "obs/metrics.hpp"
#include "serve/serve_stats.hpp"

namespace cumf::serve {

/// Populates `reg` from one ServeStats snapshot (the front-end slice rides
/// along as ServeStats::net). Counter series are set to the snapshot's
/// absolute values, so call it on a freshly constructed registry per
/// exposition.
void fill_registry(const ServeStats& stats, obs::MetricsRegistry* reg);

/// fill_registry into a fresh registry, rendered as exposition text. Also
/// appends the trace collector's self-metrics (events recorded/dropped,
/// enabled flag).
[[nodiscard]] std::string metrics_exposition(const ServeStats& stats);

}  // namespace cumf::serve
