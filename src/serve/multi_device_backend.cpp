#include "serve/multi_device_backend.hpp"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <stdexcept>

#include "obs/trace.hpp"
#include "serve/topk.hpp"

namespace cumf::serve {

bytes_t MultiDeviceScoringBackend::shard_bytes(const FactorShard& shard,
                                               int f) {
  const auto items = static_cast<bytes_t>(shard.item_ids.size());
  return items * static_cast<bytes_t>(f) * sizeof(real_t) +
         items * sizeof(double);
}

bytes_t MultiDeviceScoringBackend::replica_bytes(const FactorStore& store) {
  const auto users = static_cast<bytes_t>(store.num_users());
  return users * static_cast<bytes_t>(store.f()) * sizeof(real_t) +
         users * sizeof(double);
}

MultiDeviceScoringBackend::MultiDeviceScoringBackend(
    gpusim::DeviceGroup& group, const gpusim::PcieTopology& topo,
    const FactorStore& store, Options opt)
    : devs_(group.pointers()),
      topo_(&topo),
      opt_(opt),
      used_bytes_(devs_.size(), 0),
      peak_bytes_(devs_.size(), 0),
      batch_kernel_s_(devs_.size(), 0.0) {
  std::lock_guard<std::mutex> lock(mu_);
  charge_locked(store, {}, /*pinned=*/true);
}

MultiDeviceScoringBackend::MultiDeviceScoringBackend(
    gpusim::DeviceGroup& group, const gpusim::PcieTopology& topo, Options opt)
    : devs_(group.pointers()),
      topo_(&topo),
      opt_(opt),
      used_bytes_(devs_.size(), 0),
      peak_bytes_(devs_.size(), 0),
      batch_kernel_s_(devs_.size(), 0.0) {}

MultiDeviceScoringBackend::~MultiDeviceScoringBackend() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& r : resident_) release_locked(r);
  resident_.clear();
}

void MultiDeviceScoringBackend::charge_locked(
    const FactorStore& store, std::weak_ptr<const FactorStore> alive,
    bool pinned) {
  const int p = static_cast<int>(devs_.size());
  const int f = store.f();
  const bytes_t replica = replica_bytes(store);

  // Largest-first (LPT) placement onto the device with the most free memory.
  // "Free" accounts for everything already charged on the device — other
  // resident generations of ours and any outside tenant — so a lopsided
  // group receives a lopsided placement. The X replica is paid lazily: a
  // device is only charged for it when its first shard lands there.
  std::vector<int> order(static_cast<std::size_t>(store.num_shards()));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return shard_bytes(store.shard(a), f) > shard_bytes(store.shard(b), f);
  });

  Resident r;
  r.key = &store;
  r.alive = std::move(alive);
  r.pinned_for_life = pinned;
  r.device_of_shard.assign(static_cast<std::size_t>(store.num_shards()), -1);
  r.device_bytes.assign(devs_.size(), 0);

  // Plan against a local free-bytes view first, then charge device by device
  // so a mid-placement OOM (e.g. a racing tenant) can roll back cleanly.
  std::vector<bytes_t> planned(devs_.size(), 0);
  const auto free_after = [&](int d) -> std::int64_t {
    const auto du = static_cast<std::size_t>(d);
    return static_cast<std::int64_t>(devs_[du]->free_bytes()) -
           static_cast<std::int64_t>(planned[du]);
  };
  bool feasible = true;
  for (const int s : order) {
    const bytes_t need = shard_bytes(store.shard(s), f);
    int best = -1;
    std::int64_t best_free = -1;
    for (int d = 0; d < p; ++d) {
      const bytes_t entry =
          r.device_bytes[static_cast<std::size_t>(d)] == 0 ? replica : 0;
      const auto fits = free_after(d) - static_cast<std::int64_t>(entry);
      if (fits >= static_cast<std::int64_t>(need) && fits > best_free) {
        best = d;
        best_free = fits;
      }
    }
    if (best < 0) {
      feasible = false;
      break;
    }
    const auto bu = static_cast<std::size_t>(best);
    const bytes_t entry = r.device_bytes[bu] == 0 ? replica : 0;
    planned[bu] += entry + need;
    r.device_bytes[bu] += entry + need;
    r.device_of_shard[static_cast<std::size_t>(s)] = best;
  }

  // All-or-nothing: charge every device, rolling back the ones already
  // charged if any throws, so a refused generation leaves no torn placement.
  std::size_t charged = 0;
  try {
    if (!feasible) {
      // Surface the OOM through the same error type a single device raises;
      // report the tightest device so the message is actionable.
      int fullest = 0;
      for (int d = 1; d < p; ++d) {
        if (devs_[static_cast<std::size_t>(d)]->free_bytes() <
            devs_[static_cast<std::size_t>(fullest)]->free_bytes()) {
          fullest = d;
        }
      }
      const auto fu = static_cast<std::size_t>(fullest);
      throw gpusim::DeviceOomError(
          "multigpu:device" + std::to_string(fullest),
          replica + shard_bytes(store.shard(order.empty() ? 0 : order[0]), f),
          devs_[fu]->used_bytes(), devs_[fu]->spec().global_bytes);
    }
    for (; charged < devs_.size(); ++charged) {
      if (r.device_bytes[charged] > 0) {
        devs_[charged]->charge(r.device_bytes[charged]);
      }
    }
  } catch (...) {
    for (std::size_t d = 0; d < charged; ++d) {
      if (r.device_bytes[d] > 0) devs_[d]->release(r.device_bytes[d]);
    }
    throw;
  }

  // Imbalance: max per-device Θ bytes over the even share across devices
  // that hold shards (replica excluded — it is the price of model
  // parallelism, not of a skewed split).
  bytes_t theta_total = 0;
  std::vector<bytes_t> theta_dev(devs_.size(), 0);
  for (int s = 0; s < store.num_shards(); ++s) {
    const bytes_t b = shard_bytes(store.shard(s), f);
    theta_total += b;
    theta_dev[static_cast<std::size_t>(
        r.device_of_shard[static_cast<std::size_t>(s)])] += b;
  }
  const int active = static_cast<int>(
      std::count_if(theta_dev.begin(), theta_dev.end(),
                    [](bytes_t b) { return b > 0; }));
  const bytes_t max_dev = *std::max_element(theta_dev.begin(), theta_dev.end());
  r.imbalance = theta_total == 0
                    ? 1.0
                    : static_cast<double>(max_dev) * active /
                          static_cast<double>(theta_total);

  for (std::size_t d = 0; d < devs_.size(); ++d) {
    used_bytes_[d] += r.device_bytes[d];
    peak_bytes_[d] = std::max(peak_bytes_[d], used_bytes_[d]);
  }
  resident_.push_back(std::move(r));
}

void MultiDeviceScoringBackend::release_locked(const Resident& r) {
  for (std::size_t d = 0; d < devs_.size(); ++d) {
    if (r.device_bytes[d] > 0) {
      devs_[d]->release(r.device_bytes[d]);
      used_bytes_[d] -= r.device_bytes[d];
    }
  }
}

void MultiDeviceScoringBackend::gc_locked() {
  std::erase_if(resident_, [this](const Resident& r) {
    if (r.pinned_for_life || !r.alive.expired()) return false;
    release_locked(r);
    return true;
  });
}

const MultiDeviceScoringBackend::Resident* MultiDeviceScoringBackend::
    find_locked(const FactorStore* key) const {
  for (const auto& r : resident_) {
    if (r.key == key) return &r;
  }
  return nullptr;
}

int MultiDeviceScoringBackend::device_of_locked(
    const FactorStore* store, const FactorShard* shard) const {
  const Resident* r = find_locked(store);
  if (r == nullptr) {
    throw std::logic_error(
        "MultiDeviceScoringBackend: sweep on a store that was never "
        "admitted");
  }
  for (int s = 0; s < static_cast<int>(r->device_of_shard.size()); ++s) {
    if (&store->shard(s) == shard) {
      return r->device_of_shard[static_cast<std::size_t>(s)];
    }
  }
  throw std::logic_error(
      "MultiDeviceScoringBackend: sweep on an unknown shard");
}

void MultiDeviceScoringBackend::admit(
    const std::shared_ptr<const FactorStore>& store) {
  std::lock_guard<std::mutex> lock(mu_);
  gc_locked();  // drained generations free their devices first
  if (find_locked(store.get()) != nullptr) return;
  charge_locked(*store, store, /*pinned=*/false);
}

void MultiDeviceScoringBackend::begin_batch(
    const std::shared_ptr<const FactorStore>& store) {
  admit(store);  // idempotent: lazy charge for generations not pre-admitted
}

std::vector<int> MultiDeviceScoringBackend::shard_devices(
    const FactorStore& store) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Resident* r = find_locked(&store);
  return r == nullptr ? std::vector<int>{} : r->device_of_shard;
}

SweepCounters MultiDeviceScoringBackend::sweep(
    const SweepTask& task, std::vector<std::vector<Recommendation>>& out) {
  auto& trace = obs::TraceCollector::global();
  const bool traced = trace.enabled();
  const double begin_us = traced ? trace.now_us() : 0.0;
  const SweepCounters c = reference_sweep(task, out);

  const gpusim::KernelStats stats =
      sweep_kernel_stats(task, c, opt_.use_texture);
  int dev = 0;
  double modeled_s = 0.0;
  {
    // Device accounting is not thread-safe and sweeps race on the pool. Each
    // device's launches serialize on its own simulated stream, but devices
    // run concurrently — finish_batch() takes the max over per-device sums.
    std::lock_guard<std::mutex> lock(mu_);
    dev = device_of_locked(task.store, task.shard);
    const auto du = static_cast<std::size_t>(dev);
    devs_[du]->account_kernel(stats);
    modeled_s = devs_[du]->model_kernel_seconds(stats);
    batch_kernel_s_[du] += modeled_s;
    batch_users_ = std::max(batch_users_, task.last);
    batch_k_ = task.k;
  }
  if (traced) {
    trace.record_span("gpusim.kernel", begin_us, trace.now_us(),
                      {"device", static_cast<std::uint64_t>(dev)},
                      {"scored", c.scored},
                      {"modeled_us",
                       static_cast<std::uint64_t>(modeled_s * 1e6)});
  }
  return c;
}

BatchCost MultiDeviceScoringBackend::finish_batch() {
  auto& trace = obs::TraceCollector::global();
  const bool traced = trace.enabled();
  const double begin_us = traced ? trace.now_us() : 0.0;

  BatchCost cost;
  std::uint64_t gather_bytes = 0;
  int senders = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    gc_locked();  // generations drained mid-batch free their devices now

    // Scatter-gather: every device that swept this batch ships its partial
    // top-k candidates (k (item, score) pairs per user) to the host, all
    // transfers in flight together — the topology's bottleneck model prices
    // the gather.
    double kernel_max = 0.0;
    std::vector<gpusim::Transfer> xfers;
    const auto per_dev = static_cast<bytes_t>(batch_users_) *
                         static_cast<bytes_t>(batch_k_) * 8;
    for (std::size_t d = 0; d < devs_.size(); ++d) {
      if (batch_kernel_s_[d] > 0.0 && per_dev > 0) {
        xfers.push_back(
            gpusim::Transfer{static_cast<int>(d), gpusim::kHost, per_dev});
      }
      kernel_max = std::max(kernel_max, batch_kernel_s_[d]);
      batch_kernel_s_[d] = 0.0;
    }
    double gather_s = 0.0;
    if (xfers.size() > 1) {  // single device: partials are final, no gather
      gather_s = topo_->makespan_seconds(xfers);
      for (const auto& t : xfers) {
        devs_[static_cast<std::size_t>(t.src)]->account_transfer(
            t.bytes, gather_s, /*host_link=*/true, /*outgoing=*/true);
        gather_bytes += t.bytes;
      }
      senders = static_cast<int>(xfers.size());
    }
    cost.modeled_s = kernel_max + gather_s;
    cost.interconnect_s = gather_s;
    batch_users_ = 0;
    batch_k_ = 0;
  }
  if (traced && senders > 0) {
    trace.record_span("gpusim.transfer", begin_us, trace.now_us(),
                      {"devices", static_cast<std::uint64_t>(senders)},
                      {"bytes", gather_bytes},
                      {"modeled_us",
                       static_cast<std::uint64_t>(cost.interconnect_s * 1e6)});
  }
  return cost;
}

bytes_t MultiDeviceScoringBackend::model_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::accumulate(used_bytes_.begin(), used_bytes_.end(), bytes_t{0});
}

bytes_t MultiDeviceScoringBackend::peak_model_bytes(int device) const {
  std::lock_guard<std::mutex> lock(mu_);
  return peak_bytes_[static_cast<std::size_t>(device)];
}

int MultiDeviceScoringBackend::resident_models() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(resident_.size());
}

double MultiDeviceScoringBackend::placement_imbalance(
    const FactorStore& store) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Resident* r = find_locked(&store);
  return r == nullptr ? 0.0 : r->imbalance;
}

}  // namespace cumf::serve
