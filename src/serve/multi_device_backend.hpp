#pragma once

// Multi-device model-parallel scoring backend.
//
// One simulated device caps the servable catalog at its memory capacity —
// the same eq.-8 pressure that forces SU-ALS to partition training. This
// backend applies the paper's multi-GPU split (figure 9) to serving: item
// shards are partitioned across a gpusim::DeviceGroup (X is replicated on
// every device that holds shards, Θ is scattered), each shard × user-block
// sweep is accounted as a kernel launch on the device that owns the shard,
// and per-device partial top-k candidates are gathered over the
// gpusim::PcieTopology interconnect for the final scatter-gather merge in
// the engine. Answers stay bit-identical to the single-device CPU reference
// — only the cost axis changes, never the ranking.
//
// Placement is capacity-aware: shards are assigned largest-first to the
// device with the most free memory (LPT), so a catalog no single device can
// hold spreads across the group, and a device already carrying ballast
// (another tenant, an undrained generation) receives less of the new model.
//
// Hot swaps land shard-by-shard across devices, which makes partial failure
// the dangerous case: generation charging is all-or-nothing. admit() places
// and charges a candidate generation on every device — the both-resident
// peak, old generation still pinned — and on *any* device's DeviceOomError
// rolls back every charge already made and rethrows, so the old generation
// keeps serving everywhere and no device is left holding a torn placement.
// Wired as a LiveFactorStore admission hook, a vetoed swap is refused before
// the generation ever becomes current; without the hook, begin_batch()
// charges lazily on first sight, as the single-device backend does.

#include <memory>
#include <mutex>
#include <vector>

#include "gpusim/device_group.hpp"
#include "gpusim/topology.hpp"
#include "serve/scoring_backend.hpp"

namespace cumf::serve {

struct MultiDeviceOptions {
  /// Route the x_u gathers through the read-only texture path.
  bool use_texture = true;
};

class MultiDeviceScoringBackend final : public ScoringBackend {
 public:
  using Options = MultiDeviceOptions;

  /// Static-store residency: `store`'s shards are placed and charged across
  /// the group at construction (raises DeviceOomError when the catalog does
  /// not fit the fleet) and released at destruction. The group, topology,
  /// and store must outlive the backend.
  MultiDeviceScoringBackend(gpusim::DeviceGroup& group,
                            const gpusim::PcieTopology& topo,
                            const FactorStore& store, Options opt = {});
  /// Live-store residency: generations attach via admit() (the
  /// LiveFactorStore admission hook) or lazily via begin_batch(). The group
  /// and topology must outlive the backend.
  MultiDeviceScoringBackend(gpusim::DeviceGroup& group,
                            const gpusim::PcieTopology& topo, Options opt = {});
  ~MultiDeviceScoringBackend() override;

  MultiDeviceScoringBackend(const MultiDeviceScoringBackend&) = delete;
  MultiDeviceScoringBackend& operator=(const MultiDeviceScoringBackend&) =
      delete;

  [[nodiscard]] const char* name() const override { return "multigpu"; }
  [[nodiscard]] int device_count() const override {
    return static_cast<int>(devs_.size());
  }
  void begin_batch(const std::shared_ptr<const FactorStore>& store) override;
  SweepCounters sweep(const SweepTask& task,
                      std::vector<std::vector<Recommendation>>& out) override;
  BatchCost finish_batch() override;
  [[nodiscard]] std::vector<int> shard_devices(
      const FactorStore& store) const override;

  /// All-or-nothing generation charging, for LiveFactorStore's admission
  /// hook: places `store`'s shards and charges every device (the
  /// both-resident peak while the old generation is still pinned). On any
  /// device's DeviceOomError every charge already made is released and the
  /// error rethrown — the swap is refused everywhere, never torn. Idempotent
  /// for an already-admitted snapshot.
  void admit(const std::shared_ptr<const FactorStore>& store);

  /// Bytes currently charged across all devices (one placement per
  /// undrained generation).
  [[nodiscard]] bytes_t model_bytes() const;
  /// Per-device high-water mark of charged bytes — the both-resident swap
  /// peak each device actually paid.
  [[nodiscard]] bytes_t peak_model_bytes(int device) const;
  /// Snapshots currently charged.
  [[nodiscard]] int resident_models() const;
  /// Shard-size imbalance of `store`'s placement: max per-device Θ bytes
  /// over the even share (1 = perfectly balanced). 0 when not admitted.
  [[nodiscard]] double placement_imbalance(const FactorStore& store) const;

  /// Capacity charge for one Θ shard (rows + per-row norms).
  [[nodiscard]] static bytes_t shard_bytes(const FactorShard& shard, int f);
  /// Capacity charge for the per-device X replica (rows + user norms);
  /// queries index X by user id, so every device holding shards carries it.
  [[nodiscard]] static bytes_t replica_bytes(const FactorStore& store);

 private:
  /// One charged snapshot: its shard→device placement and the bytes charged
  /// per device. `alive` is empty for the static-store entry.
  struct Resident {
    const FactorStore* key = nullptr;
    std::weak_ptr<const FactorStore> alive;
    bool pinned_for_life = false;
    std::vector<int> device_of_shard;
    std::vector<bytes_t> device_bytes;  // parallel to devs_
    double imbalance = 1.0;
  };

  /// Places and charges `store` across the group; rolls back and rethrows
  /// on any device's OOM. Appends the Resident on success.
  void charge_locked(const FactorStore& store,
                     std::weak_ptr<const FactorStore> alive, bool pinned);
  void release_locked(const Resident& r);
  void gc_locked();
  [[nodiscard]] const Resident* find_locked(const FactorStore* key) const;
  [[nodiscard]] int device_of_locked(const FactorStore* store,
                                     const FactorShard* shard) const;

  std::vector<gpusim::Device*> devs_;
  const gpusim::PcieTopology* topo_;
  Options opt_;
  mutable std::mutex mu_;  // residency + device accounting + batch state
  std::vector<Resident> resident_;
  std::vector<bytes_t> used_bytes_;  // our charge per device
  std::vector<bytes_t> peak_bytes_;  // high-water mark per device
  // Per-batch accumulators, reset by finish_batch().
  std::vector<double> batch_kernel_s_;  // modeled kernel seconds per device
  int batch_users_ = 0;                 // widest user index swept this batch
  int batch_k_ = 0;
};

}  // namespace cumf::serve
