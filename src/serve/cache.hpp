#pragma once

// LRU cache of per-user recommendation lists.
//
// Recommendation traffic is Zipf-skewed (the same popularity skew the
// synthetic generator plants in item degrees shows up in user queries), so a
// small hot-user cache absorbs a large share of queries without touching the
// factor shards. Entries are keyed by (user, k); any k change is a miss.
// Thread-safe; hit/miss counters feed ServeStats.

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "serve/topk.hpp"
#include "util/types.hpp"

namespace cumf::serve {

class ScoreCache {
 public:
  /// capacity == 0 disables the cache (every get() is a miss, put() drops).
  explicit ScoreCache(std::size_t capacity) : capacity_(capacity) {}

  /// On hit, copies the cached list into `out`, refreshes recency, and counts
  /// a hit; otherwise counts a miss.
  bool get(idx_t user, int k, std::vector<Recommendation>* out) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(key(user, k));
    if (it == index_.end()) {
      ++misses_;
      return false;
    }
    entries_.splice(entries_.begin(), entries_, it->second);
    *out = it->second->recs;
    ++hits_;
    return true;
  }

  void put(idx_t user, int k, std::vector<Recommendation> recs) {
    if (capacity_ == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t id = key(user, k);
    const auto it = index_.find(id);
    if (it != index_.end()) {
      it->second->recs = std::move(recs);
      entries_.splice(entries_.begin(), entries_, it->second);
      return;
    }
    entries_.push_front(Entry{id, std::move(recs)});
    index_[id] = entries_.begin();
    if (entries_.size() > capacity_) {
      index_.erase(entries_.back().id);
      entries_.pop_back();
    }
  }

  void invalidate(idx_t user, int k) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(key(user, k));
    if (it == index_.end()) return;
    entries_.erase(it->second);
    index_.erase(it);
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    index_.clear();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }
  [[nodiscard]] std::uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }
  [[nodiscard]] std::uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }

 private:
  struct Entry {
    std::uint64_t id;
    std::vector<Recommendation> recs;
  };

  static std::uint64_t key(idx_t user, int k) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(user)) << 32) |
           static_cast<std::uint32_t>(k);
  }

  std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> entries_;  // front = most recently used
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace cumf::serve
