#pragma once

// LRU cache of per-user recommendation lists.
//
// Recommendation traffic is Zipf-skewed (the same popularity skew the
// synthetic generator plants in item degrees shows up in user queries), so a
// small hot-user cache absorbs a large share of queries without touching the
// factor shards. Entries are keyed by (user, k); any k change is a miss.
// Thread-safe; hit/miss counters feed ServeStats.
//
// Entries are additionally tagged with the model *generation* whose factors
// produced them (0 for a static store). A hot swap does not pay a global
// clear(): bumping the cache's generation — explicitly via set_generation()
// or implicitly by a put() carrying a newer tag — marks older entries stale,
// and each stale entry is evicted lazily the next time it is touched (or by
// ordinary LRU pressure). Invalidation cost is thereby spread across the
// queries that follow the swap instead of spiking at swap time; a put()
// tagged older than the cache's generation is dropped, so a slow batch that
// was scored against a superseded snapshot can never poison the cache.

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "serve/topk.hpp"
#include "util/types.hpp"

namespace cumf::serve {

class ScoreCache {
 public:
  /// capacity == 0 disables the cache (every get() is a miss, put() drops).
  explicit ScoreCache(std::size_t capacity) : capacity_(capacity) {}

  /// On hit, copies the cached list into `out` (and, when `generation_out`
  /// is given, the generation the entry was scored under), refreshes recency,
  /// and counts a hit. An entry from a superseded generation is evicted on
  /// the spot and counts as a miss (plus a stale eviction); an absent entry
  /// is a plain miss.
  bool get(idx_t user, int k, std::vector<Recommendation>* out,
           std::uint64_t* generation_out = nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(key(user, k));
    if (it == index_.end()) {
      ++misses_;
      return false;
    }
    if (it->second->generation != generation_) {
      entries_.erase(it->second);
      index_.erase(it);
      ++stale_evictions_;
      ++misses_;
      return false;
    }
    entries_.splice(entries_.begin(), entries_, it->second);
    *out = it->second->recs;
    if (generation_out != nullptr) *generation_out = it->second->generation;
    ++hits_;
    return true;
  }

  /// Inserts under the given generation tag. A tag newer than the cache's
  /// current generation advances it (staling older entries); a tag older is
  /// dropped without touching the cache.
  void put(idx_t user, int k, std::vector<Recommendation> recs,
           std::uint64_t generation = 0) {
    if (capacity_ == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    if (generation > generation_) generation_ = generation;
    if (generation < generation_) return;  // scored against a stale snapshot
    const Key id = key(user, k);
    const auto it = index_.find(id);
    if (it != index_.end()) {
      it->second->generation = generation;
      it->second->recs = std::move(recs);
      entries_.splice(entries_.begin(), entries_, it->second);
      return;
    }
    entries_.push_front(Entry{id, generation, std::move(recs)});
    index_[id] = entries_.begin();
    if (entries_.size() > capacity_) {
      index_.erase(entries_.back().id);
      entries_.pop_back();
    }
  }

  /// Marks every entry tagged older than `generation` stale (monotonic; an
  /// older value is ignored). Stale entries are evicted lazily by get().
  void set_generation(std::uint64_t generation) {
    std::lock_guard<std::mutex> lock(mu_);
    if (generation > generation_) generation_ = generation;
  }

  [[nodiscard]] std::uint64_t generation() const {
    std::lock_guard<std::mutex> lock(mu_);
    return generation_;
  }

  void invalidate(idx_t user, int k) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = index_.find(key(user, k));
    if (it == index_.end()) return;
    entries_.erase(it->second);
    index_.erase(it);
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    index_.clear();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }
  [[nodiscard]] std::uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }
  [[nodiscard]] std::uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }
  /// Superseded-generation entries evicted on access since construction.
  [[nodiscard]] std::uint64_t stale_evictions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stale_evictions_;
  }

 private:
  // Full-width key: no packing, so a wider idx_t can never silently alias
  // user ids 2^32 apart (the old packed-uint64 key truncated idx_t to its
  // low 32 bits and relied on a static_assert to catch a widening).
  struct Key {
    idx_t user;
    int k;

    friend bool operator==(const Key&, const Key&) = default;
  };

  struct KeyHash {
    std::size_t operator()(const Key& key) const noexcept {
      // splitmix64 finalizer over both fields — cheap and avalanche-complete
      // regardless of idx_t's width.
      auto h = static_cast<std::uint64_t>(key.user);
      h = (h << 32) ^ static_cast<std::uint64_t>(
                          static_cast<std::uint32_t>(key.k));
      h ^= h >> 30;
      h *= 0xbf58476d1ce4e5b9ULL;
      h ^= h >> 27;
      h *= 0x94d049bb133111ebULL;
      h ^= h >> 31;
      return static_cast<std::size_t>(h);
    }
  };

  struct Entry {
    Key id;
    std::uint64_t generation;
    std::vector<Recommendation> recs;
  };

  static Key key(idx_t user, int k) { return Key{user, k}; }

  std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> entries_;  // front = most recently used
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_;
  std::uint64_t generation_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t stale_evictions_ = 0;
};

}  // namespace cumf::serve
