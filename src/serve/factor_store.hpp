#pragma once

// Read-only sharded factor store for online serving.
//
// Training produces (X, Θ); serving reads them. The store keeps X whole
// (queries index it by user id) and row-partitions Θ into near-even shards
// following the same split_even idiom the SU-ALS grid partitioner uses, so a
// recommend() call can fan one scoring task per shard × user-block out over
// the thread pool.
//
// Within a shard, items are re-ordered by descending ‖θ_v‖₂ and the norms are
// kept alongside the rows. Scorers exploit the Cauchy–Schwarz bound
// score(u,v) ≤ ‖x_u‖·‖θ_v‖: once the bound for the next item falls below a
// user's current k-th best score, every remaining item in the shard can be
// skipped.

#include <string>
#include <vector>

#include "linalg/dense.hpp"
#include "sparse/partition.hpp"
#include "util/types.hpp"

namespace cumf::serve {

/// One row-partition of Θ. Rows are stored in descending-norm order;
/// `item_ids[slot]` maps a local slot back to the global item id.
struct FactorShard {
  sparse::Range items;          // global item-id range covered, [begin, end)
  std::vector<idx_t> item_ids;  // local slot -> global item id
  linalg::FactorMatrix theta;   // items.size() × f, rows follow item_ids
  std::vector<double> norms;    // ‖θ_v‖₂ per slot, non-increasing
};

class FactorStore {
 public:
  /// Takes ownership of X and shards Θ row-wise into `shards` near-even
  /// partitions. `shards` must be ≥ 1; it is clamped to the item count.
  FactorStore(linalg::FactorMatrix x, const linalg::FactorMatrix& theta,
              int shards);

  /// Restores the freshest valid (X, Θ) snapshot from a core::CheckpointManager
  /// directory and shards it. Throws std::runtime_error when no valid
  /// snapshot exists.
  static FactorStore from_checkpoint(const std::string& dir, int shards);

  [[nodiscard]] int f() const { return x_.f(); }
  [[nodiscard]] idx_t num_users() const { return x_.rows(); }
  [[nodiscard]] idx_t num_items() const { return num_items_; }
  [[nodiscard]] int num_shards() const {
    return static_cast<int>(shards_.size());
  }

  [[nodiscard]] const real_t* user(idx_t u) const { return x_.row(u); }
  [[nodiscard]] double user_norm(idx_t u) const {
    return user_norms_[static_cast<std::size_t>(u)];
  }
  [[nodiscard]] const FactorShard& shard(int s) const {
    return shards_[static_cast<std::size_t>(s)];
  }

  /// Completed training iteration of the restored snapshot; -1 when the store
  /// was built from in-memory factors.
  [[nodiscard]] int restored_iteration() const { return restored_iteration_; }

 private:
  linalg::FactorMatrix x_;
  std::vector<double> user_norms_;  // ‖x_u‖₂ per user, for the prune bound
  std::vector<FactorShard> shards_;
  idx_t num_items_ = 0;
  int restored_iteration_ = -1;
};

}  // namespace cumf::serve
