#pragma once

// Off-query-path retraining for the orchestrator.
//
// Each retrain cycle builds a fresh core::AlsSolver over the RatingLog's
// latest snapshot (the grid plan depends on the nonzero structure, so the
// solver is not reusable across snapshots), optionally warm-starts it from
// the factors serving right now — a handful of ALS iterations from a good
// iterate beats a cold start, which is exactly what makes frequent
// retraining cheap — runs a fixed iteration budget, and writes the candidate
// (X, Θ) through core::CheckpointManager into the candidate directory.
//
// The candidate checkpoint is written with the atomic unique-temp + rename
// publish, so the serving side (LiveFactorStore::refresh_from_checkpoint)
// can load it the moment train() returns with no torn-file window. Nothing
// here touches the query path: training runs on the caller's thread against
// its own simulated devices.

#include <string>

#include "core/solver.hpp"
#include "gpusim/device_spec.hpp"
#include "orchestrate/rating_log.hpp"

namespace cumf::orchestrate {

struct TrainerOptions {
  /// Solver configuration (latent rank, lambda, kernel toggles...). The
  /// iteration budget below overrides config.als.iterations.
  core::SolverConfig solver;
  /// ALS iterations per retrain cycle.
  int iterations = 4;
  /// Simulated devices to train on.
  int devices = 1;
  gpusim::DeviceSpec device_spec = gpusim::titan_x();
  /// Warm-start from the currently-serving factors when their shapes match
  /// the snapshot (they always do — RatingLog never grows the matrix).
  bool warm_start = true;
};

struct TrainResult {
  int iterations = 0;            // ALS iterations this cycle ran
  double wall_ms = 0.0;          // host wall time of the training run
  double modeled_seconds = 0.0;  // simulated device clock
  double train_rmse = 0.0;       // RMSE on the snapshot it trained on
  linalg::FactorMatrix x;        // candidate factors, handed to the gate
  linalg::FactorMatrix theta;
};

class Trainer {
 public:
  /// `candidate_dir` must exist; each train() overwrites the candidate
  /// checkpoint in it (atomically — see core/checkpoint.cpp).
  Trainer(TrainerOptions opt, std::string candidate_dir);

  /// Trains on `snap`, warm-started from `warm_x`/`warm_theta` when given
  /// (and enabled), and publishes the candidate checkpoint. The checkpoint's
  /// iteration stamp increments monotonically across calls so restore()
  /// always prefers the newest candidate.
  TrainResult train(const RatingLog::Snapshot& snap,
                    const linalg::FactorMatrix* warm_x = nullptr,
                    const linalg::FactorMatrix* warm_theta = nullptr);

  [[nodiscard]] const std::string& candidate_dir() const {
    return candidate_dir_;
  }
  [[nodiscard]] const TrainerOptions& options() const { return opt_; }

 private:
  TrainerOptions opt_;
  std::string candidate_dir_;
  int total_iterations_ = 0;  // lifetime stamp for checkpoint ordering
};

}  // namespace cumf::orchestrate
