#pragma once

// Pluggable retraining tiers for the orchestrator.
//
// The orchestrator used to own exactly one trainer: full warm-started ALS
// every cycle. bench/orchestrate_refresh shows that is too heavy at high
// delta rates — cycles fall behind and the gate starts rejecting — while
// CuMF_SGD-style incremental updates reach the same gated quality at a
// fraction of the per-cycle cost. This header is the seam that makes the
// tier a per-cycle choice:
//
//   TrainerBackend            train(snapshot, warm_x, warm_theta) → TrainResult
//   ├─ FullAlsTrainer         fresh core::AlsSolver per snapshot, a handful
//   │                         of warm-started ALS iterations (the original
//   │                         Trainer, unchanged in behavior)
//   └─ IncrementalSgdTrainer  eq.-(4) SGD epochs over only the delta-touched
//                             user/item rows (Snapshot::touched_*), warm-
//                             started from the serving factors; untouched
//                             rows stay bit-identical
//
// Both backends publish their candidate (X, Θ) through the shared
// TrainerBackend::train wrapper: core::CheckpointManager's atomic
// unique-temp + rename into the candidate directory, stamped from one
// CheckpointStampSource. The stamp source is owned by the orchestrator and
// shared across every writer into its checkpoint dirs because restore()
// prefers the highest stamp — with per-trainer counters two alternating
// tiers would collide or go backwards and restore() could resurrect a stale
// candidate (the pre-refactor Trainer kept a per-instance counter that did
// exactly that).
//
// Nothing here touches the query path: training runs on the caller's thread.

#include <atomic>
#include <cstdint>
#include <string>

#include "core/solver.hpp"
#include "costmodel/machines.hpp"
#include "gpusim/device_spec.hpp"
#include "orchestrate/rating_log.hpp"

namespace cumf::orchestrate {

/// Which training tier produced a candidate. Numeric values are stable: they
/// ride the wire stats op and the orch.train trace arg.
enum class TrainTier : std::uint8_t {
  kFullAls = 0,
  kIncrementalSgd = 1,
};

[[nodiscard]] const char* tier_name(TrainTier tier);

/// Monotonic stamp source shared by every publisher writing into the
/// orchestrator's checkpoint directories (both trainer backends, the
/// submit_candidate path, and the rollback-target persist). Checkpoint
/// restore() picks the freshest valid snapshot by stamp, so publication
/// order must equal stamp order across *all* writers.
class CheckpointStampSource {
 public:
  /// Returns the next stamp; strictly increasing across all callers.
  int next() { return value_.fetch_add(1, std::memory_order_relaxed) + 1; }

 private:
  std::atomic<int> value_{0};
};

struct TrainerOptions {
  /// Solver configuration (latent rank, lambda, kernel toggles...). The
  /// iteration budget below overrides config.als.iterations.
  core::SolverConfig solver;
  /// ALS iterations per retrain cycle.
  int iterations = 4;
  /// Simulated devices to train on.
  int devices = 1;
  gpusim::DeviceSpec device_spec = gpusim::titan_x();
  /// Warm-start from the currently-serving factors when their shapes match
  /// the snapshot (they always do — RatingLog never grows the matrix).
  bool warm_start = true;
};

struct IncrementalSgdOptions {
  /// SGD epochs over the delta-touched samples per cycle.
  int epochs = 3;
  real_t lr = 0.02f;
  real_t lr_decay = 0.9f;  // per epoch, reset each cycle
  real_t lambda = 0.05f;
  /// Epoch sample order is a seeded deterministic shuffle (re-derived from
  /// seed ^ snapshot state): same snapshot + same seed ⇒ bit-identical
  /// candidate. Pinned by orchestrate_test's determinism suite.
  std::uint64_t seed = 1234;
  /// Machine model pricing the cycle via costmodel::sgd_epoch_seconds, so
  /// TrainResult::modeled_seconds stays honest across tiers.
  costmodel::CpuSpec model_cpu = costmodel::xeon_30core();
  int model_threads = 8;
};

struct TrainResult {
  TrainTier tier = TrainTier::kFullAls;
  int iterations = 0;            // ALS iterations or SGD epochs this cycle
  double wall_ms = 0.0;          // host wall time of the training run
  double modeled_seconds = 0.0;  // simulated device / machine-model clock
  double train_rmse = 0.0;       // RMSE on the snapshot it trained on
  /// Incremental tier: distinct delta-touched user/item rows rewritten and
  /// rating samples visited per epoch. Zero for the full tier (it rewrites
  /// every row).
  idx_t users_touched = 0;
  idx_t items_touched = 0;
  std::uint64_t samples_per_epoch = 0;
  linalg::FactorMatrix x;  // candidate factors, handed to the gate
  linalg::FactorMatrix theta;
};

/// The seam the orchestrator trains through. train() runs the tier-specific
/// pass, then publishes the candidate checkpoint with the next shared stamp.
class TrainerBackend {
 public:
  /// `candidate_dir` must exist; each train() overwrites the candidate
  /// checkpoint in it (atomically — see core/checkpoint.cpp). `stamps` is
  /// owned by the orchestrator and must outlive the backend.
  TrainerBackend(std::string candidate_dir, CheckpointStampSource* stamps);
  virtual ~TrainerBackend() = default;

  TrainerBackend(const TrainerBackend&) = delete;
  TrainerBackend& operator=(const TrainerBackend&) = delete;

  [[nodiscard]] virtual TrainTier tier() const = 0;

  /// Trains on `snap`, warm-started from `warm_x`/`warm_theta` when given,
  /// and publishes the candidate checkpoint under the next shared stamp so
  /// restore() always prefers the newest candidate regardless of which
  /// backend wrote it.
  TrainResult train(const RatingLog::Snapshot& snap,
                    const linalg::FactorMatrix* warm_x = nullptr,
                    const linalg::FactorMatrix* warm_theta = nullptr);

  [[nodiscard]] const std::string& candidate_dir() const {
    return candidate_dir_;
  }

 protected:
  [[nodiscard]] virtual TrainResult train_impl(
      const RatingLog::Snapshot& snap, const linalg::FactorMatrix* warm_x,
      const linalg::FactorMatrix* warm_theta) = 0;

 private:
  std::string candidate_dir_;
  CheckpointStampSource* stamps_;
};

/// The original warm-started ALS trainer: a fresh core::AlsSolver per
/// snapshot (the grid plan depends on the nonzero structure, so the solver
/// is not reusable across snapshots), a fixed iteration budget, every factor
/// row rewritten.
class FullAlsTrainer final : public TrainerBackend {
 public:
  FullAlsTrainer(TrainerOptions opt, std::string candidate_dir,
                 CheckpointStampSource* stamps);

  [[nodiscard]] TrainTier tier() const override { return TrainTier::kFullAls; }
  [[nodiscard]] const TrainerOptions& options() const { return opt_; }

 protected:
  [[nodiscard]] TrainResult train_impl(
      const RatingLog::Snapshot& snap, const linalg::FactorMatrix* warm_x,
      const linalg::FactorMatrix* warm_theta) override;

 private:
  TrainerOptions opt_;
};

/// The incremental tier: copies the warm factors and runs eq.-(4) SGD epochs
/// (baselines::sgd_update via its masked wrapper) over only the ratings
/// incident to Snapshot::touched_users / touched_items. Rows outside the
/// touched sets are never written, so an incremental candidate differs from
/// the serving model in exactly the delta-affected rows. The update loop is
/// single-threaded with a seeded shuffle — bit-identical across runs, which
/// the gate's reject-then-escalate logic and the determinism tests rely on.
/// Requires warm factors shaped like the snapshot; throws otherwise (the
/// orchestrator maps that to kTrainFailed).
class IncrementalSgdTrainer final : public TrainerBackend {
 public:
  IncrementalSgdTrainer(IncrementalSgdOptions opt, std::string candidate_dir,
                        CheckpointStampSource* stamps);

  [[nodiscard]] TrainTier tier() const override {
    return TrainTier::kIncrementalSgd;
  }
  [[nodiscard]] const IncrementalSgdOptions& options() const { return opt_; }

 protected:
  [[nodiscard]] TrainResult train_impl(
      const RatingLog::Snapshot& snap, const linalg::FactorMatrix* warm_x,
      const linalg::FactorMatrix* warm_theta) override;

 private:
  IncrementalSgdOptions opt_;
};

}  // namespace cumf::orchestrate
