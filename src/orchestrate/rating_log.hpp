#pragma once

// Thread-safe rating-delta ingestion for the retrain orchestrator.
//
// The paper's economics argue for *frequent* retraining — which only matters
// if each retrain sees data the last one didn't. A RatingLog owns the base
// rating matrix (the COO the serving model was trained on) and accepts a
// stream of rating deltas from any thread: online feedback arriving over the
// TCP front-end's AddRating op, an offline backfill, a test driver.
//
// snapshot() merges base + every accepted delta into the CSR/CSC pair the
// AlsSolver trains on. Merge semantics are last-writer-wins per (user, item):
// a delta for an already-rated pair overwrites that rating; a delta for a new
// pair appends. Deltas never grow the matrix — the base dimensions fix the
// id range, and out-of-range ids or non-finite values are rejected (counted,
// not thrown), the same contract the serving path applies to unknown user
// ids.
//
// append() is a mutex push_back — cheap enough to sit on the network io
// thread — and snapshot() does the O(base + deltas) merge under the same
// mutex only long enough to copy the pending vector out, so ingestion never
// stalls behind a retrain.

#include <cstdint>
#include <mutex>
#include <vector>

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "util/types.hpp"

namespace cumf::orchestrate {

struct RatingDelta {
  idx_t user = 0;
  idx_t item = 0;
  real_t value = 0;
};

class RatingLog {
 public:
  /// The base matrix the current serving model was trained on. Its
  /// dimensions bound the accepted (user, item) id range.
  explicit RatingLog(sparse::CooMatrix base);

  RatingLog(const RatingLog&) = delete;
  RatingLog& operator=(const RatingLog&) = delete;

  /// Appends one delta. Returns false — and counts a rejection — when the
  /// user or item id falls outside the base matrix or the value is not
  /// finite (the wire feeds raw f64s in here).
  bool append(idx_t user, idx_t item, real_t value);

  [[nodiscard]] idx_t users() const { return rows_; }
  [[nodiscard]] idx_t items() const { return cols_; }

  /// Deltas accepted since construction.
  [[nodiscard]] std::uint64_t accepted() const;
  /// Deltas rejected for out-of-range ids.
  [[nodiscard]] std::uint64_t rejected() const;
  /// Deltas accepted since the last snapshot() — the orchestrator's
  /// retrain-trigger signal.
  [[nodiscard]] std::uint64_t pending() const;

  struct Snapshot {
    sparse::CooMatrix coo;   // base + deltas, last-writer-wins
    sparse::CsrMatrix csr;   // coo compiled for update-X
    sparse::CsrMatrix csr_t; // CSR of the transpose, for update-Θ
    std::uint64_t deltas_applied = 0;  // lifetime deltas merged into `coo`
    /// Distinct user/item ids the deltas merged by THIS snapshot touched
    /// (sorted ascending, deduplicated; empty when no deltas arrived).
    /// Collected inside the merge loop itself — no extra pass over the base
    /// matrix. The incremental retraining tier trains only these rows and
    /// leaves every other factor row bit-identical to its warm start.
    std::vector<idx_t> touched_users;
    std::vector<idx_t> touched_items;
  };

  /// Merges base + all accepted deltas into a training-ready snapshot and
  /// resets pending() to the deltas that arrive afterwards. Safe to call
  /// concurrently with append(); snapshot() callers must serialize among
  /// themselves (the Orchestrator's cycle lock does).
  [[nodiscard]] Snapshot snapshot();

 private:
  idx_t rows_;
  idx_t cols_;

  mutable std::mutex mu_;
  // Base folded forward: each snapshot merges pending deltas into merged_
  // so repeated retrains don't replay the whole delta history.
  sparse::CooMatrix merged_;
  std::vector<RatingDelta> pending_;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t applied_ = 0;
};

}  // namespace cumf::orchestrate
