#include "orchestrate/rating_log.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <utility>

namespace cumf::orchestrate {

namespace {
std::uint64_t pair_key(idx_t user, idx_t item) {
  return static_cast<std::uint64_t>(static_cast<std::uint32_t>(user)) << 32 |
         static_cast<std::uint32_t>(item);
}
}  // namespace

RatingLog::RatingLog(sparse::CooMatrix base)
    : rows_(base.rows), cols_(base.cols), merged_(std::move(base)) {}

bool RatingLog::append(idx_t user, idx_t item, real_t value) {
  // The AddRating op carries a raw f64 off the network: a NaN/Inf rating
  // would poison every future training snapshot, so non-finite values are
  // rejected like out-of-range ids.
  if (user < 0 || user >= rows_ || item < 0 || item >= cols_ ||
      !std::isfinite(value)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++rejected_;
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  pending_.push_back({user, item, value});
  ++accepted_;
  return true;
}

std::uint64_t RatingLog::accepted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return accepted_;
}

std::uint64_t RatingLog::rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_;
}

std::uint64_t RatingLog::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

RatingLog::Snapshot RatingLog::snapshot() {
  // Take the pending deltas; appends continue unblocked from here on. The
  // merge below mutates merged_, which only snapshot() touches — and
  // concurrent snapshots are already serialized by the orchestrator's cycle
  // lock, so mu_ protects exactly the shared append state.
  std::vector<RatingDelta> deltas;
  {
    std::lock_guard<std::mutex> lock(mu_);
    deltas.swap(pending_);
  }

  Snapshot s;
  if (!deltas.empty()) {
    // Last-writer-wins: overwrite in place when the pair exists, append when
    // it doesn't. The index covers merged_ exactly (rebuilt lazily per merge
    // batch; O(base) only when deltas actually arrived). The touched-row id
    // sets for the incremental retraining tier fall out of the same loop.
    std::unordered_map<std::uint64_t, std::size_t> index;
    index.reserve(merged_.val.size() + deltas.size());
    for (std::size_t i = 0; i < merged_.val.size(); ++i) {
      index.emplace(pair_key(merged_.row[i], merged_.col[i]), i);
    }
    s.touched_users.reserve(deltas.size());
    s.touched_items.reserve(deltas.size());
    for (const auto& d : deltas) {
      const auto [it, inserted] =
          index.try_emplace(pair_key(d.user, d.item), merged_.val.size());
      if (inserted) {
        merged_.push_back(d.user, d.item, d.value);
      } else {
        merged_.val[it->second] = d.value;
      }
      s.touched_users.push_back(d.user);
      s.touched_items.push_back(d.item);
    }
    applied_ += deltas.size();
    auto dedupe = [](std::vector<idx_t>& ids) {
      std::sort(ids.begin(), ids.end());
      ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    };
    dedupe(s.touched_users);
    dedupe(s.touched_items);
  }

  s.coo = merged_;
  s.csr = sparse::coo_to_csr(s.coo);
  s.csr_t = sparse::csc_as_csr_of_transpose(sparse::csr_to_csc(s.csr));
  s.deltas_applied = applied_;
  return s;
}

}  // namespace cumf::orchestrate
