#pragma once

// Promotion gate: no candidate model reaches serving without passing it.
//
// Frequent retraining cuts both ways — a retrain over a poisoned delta
// batch, a diverged solve, or a bad warm start would otherwise hot-swap a
// *worse* model under live traffic. The gate evaluates every candidate
// (X, Θ) against a held-out rating slice on two axes before the orchestrator
// may promote it:
//
//   - RMSE on the held-out slice (eval::rmse) — the paper's convergence
//     metric; catches diverged or undertrained candidates;
//   - recall@k (eval::ranking_quality) — serving quality proper; catches
//     models whose error looks fine but whose rankings collapsed.
//
// Each axis has an absolute floor/ceiling and a relative slack against the
// *baseline* — the metrics of the model currently serving, updated on every
// promotion — so quality may wobble within the slack but never regress past
// it. A candidate failing any check is rejected with a human-readable
// reason; the orchestrator logs it and keeps the old generation serving.

#include <mutex>
#include <string>

#include "eval/metrics.hpp"
#include "linalg/dense.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

namespace cumf::orchestrate {

struct GateOptions {
  /// Absolute held-out RMSE ceiling; candidates above it never promote.
  /// <= 0 disables the absolute check.
  double max_rmse = 0.0;
  /// Candidate RMSE may exceed the baseline by at most this (absolute).
  double rmse_slack = 0.02;
  /// Absolute recall@k floor; < 0 disables (0 is a real floor: a model
  /// recommending nothing relevant is rejected).
  double min_recall = -1.0;
  /// Candidate recall@k may trail the baseline by at most this.
  double recall_slack = 0.05;
  /// k for the ranking metrics.
  int k = 10;
  /// Users sampled for the ranking metrics (gate cost bound).
  int max_eval_users = 200;
};

struct GateReport {
  bool passed = false;
  double rmse = 0.0;
  double recall = 0.0;
  double ndcg = 0.0;
  /// Baseline the candidate was judged against (0/0 before any baseline).
  double baseline_rmse = 0.0;
  double baseline_recall = 0.0;
  /// Why the candidate was rejected; empty when passed.
  std::string reason;
};

class QualityGate {
 public:
  /// `holdout` is the held-out rating slice every candidate is scored on;
  /// `exclude`, when set, must outlive the gate (training CSR, so ranking
  /// mirrors serving's already-rated filter).
  QualityGate(sparse::CooMatrix holdout, GateOptions opt,
              const sparse::CsrMatrix* exclude = nullptr);

  QualityGate(const QualityGate&) = delete;
  QualityGate& operator=(const QualityGate&) = delete;

  /// Scores the candidate and applies the floors + baseline slacks. Does
  /// not update the baseline — promotion decides that (set_baseline).
  [[nodiscard]] GateReport evaluate(const linalg::FactorMatrix& x,
                                    const linalg::FactorMatrix& theta) const;

  /// Records the metrics of the model now serving; subsequent candidates
  /// are judged relative to them. Called by the orchestrator on promotion
  /// (and once at startup for the initial generation).
  void set_baseline(double rmse, double recall);

  [[nodiscard]] bool has_baseline() const;
  [[nodiscard]] double baseline_rmse() const;
  [[nodiscard]] double baseline_recall() const;
  [[nodiscard]] const GateOptions& options() const { return opt_; }

 private:
  sparse::CooMatrix holdout_;
  GateOptions opt_;
  const sparse::CsrMatrix* exclude_;

  mutable std::mutex mu_;  // baseline shared between gate calls + stats
  bool has_baseline_ = false;
  double baseline_rmse_ = 0.0;
  double baseline_recall_ = 0.0;
};

}  // namespace cumf::orchestrate
