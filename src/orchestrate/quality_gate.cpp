#include "orchestrate/quality_gate.hpp"

#include <cmath>
#include <cstdio>
#include <utility>

namespace cumf::orchestrate {

namespace {
std::string format_reject(const char* metric, double got, double limit) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s %.4f violates limit %.4f", metric, got,
                limit);
  return buf;
}
}  // namespace

QualityGate::QualityGate(sparse::CooMatrix holdout, GateOptions opt,
                         const sparse::CsrMatrix* exclude)
    : holdout_(std::move(holdout)), opt_(opt), exclude_(exclude) {}

GateReport QualityGate::evaluate(const linalg::FactorMatrix& x,
                                 const linalg::FactorMatrix& theta) const {
  GateReport report;
  report.rmse = eval::rmse(holdout_, x, theta);
  // Every rejection below is a `metric > limit` comparison, which NaN sails
  // through — and NaN scores would feed the ranking comparator too. A
  // diverged candidate (NaN/Inf factors) is rejected here, before anything
  // else runs.
  if (!std::isfinite(report.rmse)) {
    std::lock_guard<std::mutex> lock(mu_);
    report.baseline_rmse = baseline_rmse_;
    report.baseline_recall = baseline_recall_;
    report.reason = "holdout rmse is not finite (diverged candidate)";
    return report;
  }
  const auto ranking = eval::ranking_quality(holdout_, x, theta, opt_.k,
                                             exclude_, opt_.max_eval_users);
  report.recall = ranking.mean_recall;
  report.ndcg = ranking.mean_ndcg;

  bool has_baseline = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    has_baseline = has_baseline_;
    report.baseline_rmse = baseline_rmse_;
    report.baseline_recall = baseline_recall_;
  }

  if (opt_.max_rmse > 0.0 && report.rmse > opt_.max_rmse) {
    report.reason = format_reject("holdout rmse", report.rmse, opt_.max_rmse);
    return report;
  }
  if (opt_.min_recall >= 0.0 && report.recall < opt_.min_recall) {
    report.reason =
        format_reject("recall@k", report.recall, opt_.min_recall);
    return report;
  }
  if (has_baseline) {
    if (report.rmse > report.baseline_rmse + opt_.rmse_slack) {
      report.reason = format_reject("holdout rmse", report.rmse,
                                    report.baseline_rmse + opt_.rmse_slack);
      return report;
    }
    if (report.recall < report.baseline_recall - opt_.recall_slack) {
      report.reason = format_reject(
          "recall@k", report.recall,
          report.baseline_recall - opt_.recall_slack);
      return report;
    }
  }
  report.passed = true;
  return report;
}

void QualityGate::set_baseline(double rmse, double recall) {
  std::lock_guard<std::mutex> lock(mu_);
  has_baseline_ = true;
  baseline_rmse_ = rmse;
  baseline_recall_ = recall;
}

bool QualityGate::has_baseline() const {
  std::lock_guard<std::mutex> lock(mu_);
  return has_baseline_;
}

double QualityGate::baseline_rmse() const {
  std::lock_guard<std::mutex> lock(mu_);
  return baseline_rmse_;
}

double QualityGate::baseline_recall() const {
  std::lock_guard<std::mutex> lock(mu_);
  return baseline_recall_;
}

}  // namespace cumf::orchestrate
