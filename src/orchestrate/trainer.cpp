#include "orchestrate/trainer.hpp"

#include <stdexcept>
#include <utility>
#include <vector>

#include "baselines/sgd_common.hpp"
#include "core/checkpoint.hpp"
#include "eval/metrics.hpp"
#include "gpusim/device_group.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace cumf::orchestrate {

const char* tier_name(TrainTier tier) {
  switch (tier) {
    case TrainTier::kFullAls:
      return "full";
    case TrainTier::kIncrementalSgd:
      return "incremental";
  }
  return "unknown";
}

TrainerBackend::TrainerBackend(std::string candidate_dir,
                               CheckpointStampSource* stamps)
    : candidate_dir_(std::move(candidate_dir)), stamps_(stamps) {}

TrainResult TrainerBackend::train(const RatingLog::Snapshot& snap,
                                  const linalg::FactorMatrix* warm_x,
                                  const linalg::FactorMatrix* warm_theta) {
  util::Stopwatch wall;
  TrainResult result = train_impl(snap, warm_x, warm_theta);
  result.tier = tier();

  // One stamp for both factor files, drawn from the shared source *after*
  // training: whichever backend publishes later carries the higher stamp,
  // so restore() ordering matches publication order across tiers.
  const int stamp = stamps_->next();
  core::CheckpointManager manager(candidate_dir_);
  manager.save_x(result.x, stamp);
  manager.save_theta(result.theta, stamp);

  result.wall_ms = wall.milliseconds();
  return result;
}

FullAlsTrainer::FullAlsTrainer(TrainerOptions opt, std::string candidate_dir,
                               CheckpointStampSource* stamps)
    : TrainerBackend(std::move(candidate_dir), stamps), opt_(std::move(opt)) {}

TrainResult FullAlsTrainer::train_impl(const RatingLog::Snapshot& snap,
                                       const linalg::FactorMatrix* warm_x,
                                       const linalg::FactorMatrix* warm_theta) {
  const auto topo = gpusim::PcieTopology::flat(opt_.devices);
  gpusim::DeviceGroup gpus(opt_.devices, opt_.device_spec, topo);
  core::SolverConfig cfg = opt_.solver;
  cfg.als.iterations = opt_.iterations;
  core::AlsSolver solver(gpus.pointers(), topo, snap.csr, snap.csr_t, cfg);

  const bool warm = opt_.warm_start && warm_x != nullptr &&
                    warm_theta != nullptr &&
                    warm_x->rows() == solver.x().rows() &&
                    warm_theta->rows() == solver.theta().rows() &&
                    warm_x->f() == solver.x().f() &&
                    warm_theta->f() == solver.theta().f();
  if (warm) solver.set_factors(*warm_x, *warm_theta);

  for (int it = 0; it < opt_.iterations; ++it) solver.run_iteration();

  TrainResult result;
  result.iterations = opt_.iterations;
  result.modeled_seconds = solver.modeled_seconds();
  result.x = solver.x();
  result.theta = solver.theta();
  result.train_rmse = eval::rmse(snap.coo, result.x, result.theta);
  return result;
}

IncrementalSgdTrainer::IncrementalSgdTrainer(IncrementalSgdOptions opt,
                                             std::string candidate_dir,
                                             CheckpointStampSource* stamps)
    : TrainerBackend(std::move(candidate_dir), stamps), opt_(opt) {}

TrainResult IncrementalSgdTrainer::train_impl(
    const RatingLog::Snapshot& snap, const linalg::FactorMatrix* warm_x,
    const linalg::FactorMatrix* warm_theta) {
  if (warm_x == nullptr || warm_theta == nullptr ||
      warm_x->rows() != snap.csr.rows || warm_theta->rows() != snap.csr.cols ||
      warm_x->f() != warm_theta->f()) {
    throw std::runtime_error(
        "incremental tier requires warm factors shaped like the snapshot");
  }

  TrainResult result;
  result.x = *warm_x;
  result.theta = *warm_theta;
  const int f = result.x.f();

  // Touched-row masks. RatingLog guarantees ids within the base dimensions.
  std::vector<char> user_touched(static_cast<std::size_t>(snap.csr.rows), 0);
  std::vector<char> item_touched(static_cast<std::size_t>(snap.csr.cols), 0);
  for (const idx_t u : snap.touched_users) {
    user_touched[static_cast<std::size_t>(u)] = 1;
  }
  for (const idx_t v : snap.touched_items) {
    item_touched[static_cast<std::size_t>(v)] = 1;
  }

  // The epoch's sample set: every rating incident to a touched row, on
  // either side. Ratings between two untouched rows cannot move any factor
  // the mask lets us write, so they are skipped entirely — that asymmetry
  // against full ALS is where the tier's speed comes from.
  struct Sample {
    idx_t user;
    idx_t item;
    real_t value;
  };
  std::vector<Sample> samples;
  for (const idx_t u : snap.touched_users) {
    const auto cols = snap.csr.row_cols(u);
    const auto vals = snap.csr.row_vals(u);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      samples.push_back({u, cols[i], vals[i]});
    }
  }
  for (const idx_t v : snap.touched_items) {
    const auto users = snap.csr_t.row_cols(v);
    const auto vals = snap.csr_t.row_vals(v);
    for (std::size_t i = 0; i < users.size(); ++i) {
      if (user_touched[static_cast<std::size_t>(users[i])]) continue;  // dup
      samples.push_back({users[i], v, vals[i]});
    }
  }

  // Deterministic shuffle + single-threaded epochs: same snapshot, same
  // seed ⇒ bit-identical candidate. The sample count is the delta working
  // set, typically orders of magnitude below Nz.
  util::Rng rng(opt_.seed ^ snap.deltas_applied);
  for (std::size_t i = samples.size(); i > 1; --i) {
    std::swap(samples[i - 1], samples[rng.next_below(i)]);
  }
  real_t lr = opt_.lr;
  for (int epoch = 0; epoch < opt_.epochs; ++epoch) {
    for (const Sample& s : samples) {
      baselines::sgd_update_masked(
          result.x.row(s.user), result.theta.row(s.item), s.value, lr,
          opt_.lambda, f, user_touched[static_cast<std::size_t>(s.user)] != 0,
          item_touched[static_cast<std::size_t>(s.item)] != 0);
    }
    lr *= opt_.lr_decay;
  }

  result.iterations = opt_.epochs;
  result.users_touched = static_cast<idx_t>(snap.touched_users.size());
  result.items_touched = static_cast<idx_t>(snap.touched_items.size());
  result.samples_per_epoch = samples.size();
  result.modeled_seconds =
      costmodel::sgd_epoch_seconds(
          opt_.model_cpu, opt_.model_threads,
          costmodel::libmf_efficiency(opt_.model_threads),
          static_cast<double>(samples.size()), f) *
      opt_.epochs;
  result.train_rmse = eval::rmse(snap.coo, result.x, result.theta);
  return result;
}

}  // namespace cumf::orchestrate
