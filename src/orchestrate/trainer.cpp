#include "orchestrate/trainer.hpp"

#include <utility>

#include "core/checkpoint.hpp"
#include "eval/metrics.hpp"
#include "gpusim/device_group.hpp"
#include "util/stopwatch.hpp"

namespace cumf::orchestrate {

Trainer::Trainer(TrainerOptions opt, std::string candidate_dir)
    : opt_(std::move(opt)), candidate_dir_(std::move(candidate_dir)) {}

TrainResult Trainer::train(const RatingLog::Snapshot& snap,
                           const linalg::FactorMatrix* warm_x,
                           const linalg::FactorMatrix* warm_theta) {
  util::Stopwatch wall;

  const auto topo = gpusim::PcieTopology::flat(opt_.devices);
  gpusim::DeviceGroup gpus(opt_.devices, opt_.device_spec, topo);
  core::SolverConfig cfg = opt_.solver;
  cfg.als.iterations = opt_.iterations;
  core::AlsSolver solver(gpus.pointers(), topo, snap.csr, snap.csr_t, cfg);

  const bool warm = opt_.warm_start && warm_x != nullptr &&
                    warm_theta != nullptr &&
                    warm_x->rows() == solver.x().rows() &&
                    warm_theta->rows() == solver.theta().rows() &&
                    warm_x->f() == solver.x().f() &&
                    warm_theta->f() == solver.theta().f();
  if (warm) solver.set_factors(*warm_x, *warm_theta);

  for (int it = 0; it < opt_.iterations; ++it) solver.run_iteration();

  TrainResult result;
  result.iterations = opt_.iterations;
  result.modeled_seconds = solver.modeled_seconds();
  result.x = solver.x();
  result.theta = solver.theta();
  result.train_rmse = eval::rmse(snap.coo, result.x, result.theta);

  // Stamp with a lifetime-monotonic iteration count so the candidate dir's
  // restore() ordering matches publication order across cycles.
  total_iterations_ += opt_.iterations;
  core::CheckpointManager manager(candidate_dir_);
  manager.save_x(result.x, total_iterations_);
  manager.save_theta(result.theta, total_iterations_);

  result.wall_ms = wall.milliseconds();
  return result;
}

}  // namespace cumf::orchestrate
