#pragma once

// The retrain orchestrator: the daemon that closes the train→serve loop.
//
// The serving stack (PRs 1-4) could already hot-swap a checkpoint under live
// traffic — but a human had to train, gate, and swap it. The Orchestrator
// runs that loop continuously:
//
//   RatingLog ──snapshot──► Trainer ──candidate──► QualityGate ─┬─ pass ──►
//   promote: LiveFactorStore::refresh_from_checkpoint + baseline update
//                                                              └─ fail ──►
//   reject: old generation keeps serving, rejection logged + counted
//
// One cycle (run_cycle) is synchronous and serialized: snapshot the log,
// retrain (warm-started from the last-good factors), evaluate, and either
// promote the candidate checkpoint into the live store or reject it. The
// daemon thread (start/stop) fires cycles on a cadence or as soon as enough
// deltas pend, whichever comes first.
//
// Retraining is tiered (see orchestrate/trainer.hpp). The tier policy:
//
//   tier_mode = kFull         every cycle is a full warm-started ALS pass
//   tier_mode = kIncremental  every cycle is an incremental SGD pass over
//                             the delta-touched rows
//   tier_mode = kAuto         incremental by default; every
//                             consolidate_every-th training cycle runs full
//                             ALS instead (consolidation)
//
// Under kAuto and kIncremental, a gate rejection of an incremental
// candidate escalates to full ALS within the same cycle (same snapshot)
// rather than stalling — the rejection and the escalation are both counted,
// and the cycle's final tier is whatever produced the promoted/rejected
// model. Touched-row ids accumulate across cycles whose candidates did not
// promote, so deltas merged during a rejected cycle stay in scope for the
// next incremental pass instead of being silently dropped. Every promoted model's checkpoint is
// re-published to the last-good directory, so rollback() can always restore
// the newest model that ever passed the gate — promotions and rollbacks both
// go through the same refresh_from_checkpoint path queries already ride
// through without dropping.
//
// Externally-trained candidates enter through submit_candidate(), which runs
// the identical gate→promote path — that is also the seam the quality-gate
// tests use to push a deliberately degraded model at the gate.
//
// History and counters: every cycle appends a CycleRecord (audit trail), and
// counters() exports OrchestratorStats for ServeStats::orchestrator so the
// existing stats op reports the retrain loop next to the serving numbers.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "orchestrate/quality_gate.hpp"
#include "orchestrate/rating_log.hpp"
#include "orchestrate/trainer.hpp"
#include "serve/live_store.hpp"
#include "serve/serve_stats.hpp"

namespace cumf::orchestrate {

/// Which retraining tier run_cycle picks. See the tier-policy block in the
/// header comment.
enum class TrainTierMode : std::uint8_t {
  kFull = 0,
  kIncremental = 1,
  kAuto = 2,
};

struct OrchestratorOptions {
  TrainerOptions trainer;   // the full-ALS tier
  IncrementalSgdOptions sgd;  // the incremental tier
  GateOptions gate;
  /// Tier policy. kAuto serves incremental cycles by default with periodic
  /// full-ALS consolidation; rejection of an incremental candidate always
  /// escalates to full ALS in the same cycle (kAuto and kIncremental).
  TrainTierMode tier_mode = TrainTierMode::kAuto;
  /// kAuto: every Nth training cycle runs full ALS (N ≤ 1 → full every
  /// cycle). Counted over cycles that actually train; escalated full passes
  /// also reset the countdown.
  int consolidate_every = 8;
  /// Daemon: retrain at least this often.
  std::chrono::milliseconds cadence{2000};
  /// Daemon: retrain as soon as this many deltas pend (0 = cadence only).
  std::uint64_t delta_trigger = 0;
  /// Daemon: skip the training pass when no deltas arrived since the last
  /// cycle (the model could not change; cadence cycles record kSkipped).
  bool skip_when_idle = true;
  /// Working directory for the candidate and last-good checkpoint dirs
  /// (created under it). Must be writable.
  std::string work_dir;
};

enum class CycleOutcome {
  kPromoted,     // candidate passed the gate and is serving
  kRejected,     // gate refused it; old generation kept serving
  kSkipped,      // no new deltas, training pass elided
  kTrainFailed,  // solver/checkpoint error; nothing swapped
  kRolledBack,   // rollback() record
};

struct CycleRecord {
  std::uint64_t cycle = 0;  // 1-based sequence number
  CycleOutcome outcome = CycleOutcome::kSkipped;
  std::uint64_t generation = 0;   // serving generation after the cycle
  std::uint64_t deltas_seen = 0;  // lifetime deltas in the training snapshot
  GateReport gate;                // valid for kPromoted / kRejected
  /// Tier that produced the cycle's final candidate (after any escalation).
  TrainTier tier = TrainTier::kFullAls;
  /// True when an incremental candidate was rejected and the cycle re-ran
  /// full ALS on the same snapshot. The gate report is the final (full)
  /// verdict; train_wall_ms / train_modeled_s sum both passes.
  bool escalated = false;
  /// True when kAuto scheduled this cycle as a full-ALS consolidation.
  bool consolidation = false;
  double train_wall_ms = 0.0;
  double train_modeled_s = 0.0;
  double swap_pause_ms = 0.0;  // kPromoted / kRolledBack
  std::string error;           // kTrainFailed detail
};

class Orchestrator {
 public:
  /// `log` and `live` must outlive the orchestrator; `holdout` is the
  /// held-out rating slice the gate scores every candidate on. The gate
  /// baseline — and the rollback target — are initialized from the factors
  /// serving in `live` at construction, so the first candidate is judged
  /// against the seed model and rollback() works before any promotion.
  /// `exclude` (optional, must outlive the orchestrator) is the training
  /// CSR handed to the ranking metrics.
  Orchestrator(RatingLog& log, serve::LiveFactorStore& live,
               sparse::CooMatrix holdout, OrchestratorOptions opt,
               const sparse::CsrMatrix* exclude = nullptr);
  ~Orchestrator();

  Orchestrator(const Orchestrator&) = delete;
  Orchestrator& operator=(const Orchestrator&) = delete;

  /// Runs one full cycle synchronously: snapshot → train → gate →
  /// promote/reject. Serialized against the daemon and other callers.
  /// `force` trains even when no deltas pend.
  CycleRecord run_cycle(bool force = false);

  /// Gates and (on pass) promotes an externally-produced candidate through
  /// the same path run_cycle uses, without a training pass.
  CycleRecord submit_candidate(const linalg::FactorMatrix& x,
                               const linalg::FactorMatrix& theta);

  /// Re-promotes the last-good checkpoint — the newest model that passed
  /// the gate *before* the one serving now (the seed model until a second
  /// promotion happens) — into the live store, and reverts the gate
  /// baseline to it. One level deep: rolling back twice re-promotes the
  /// same checkpoint. Returns false when the refresh failed.
  bool rollback();

  /// Starts/stops the daemon thread. start() is idempotent; stop() joins
  /// and is also run by the destructor.
  void start();
  void stop();
  [[nodiscard]] bool running() const;

  /// Promotion/rejection audit trail, oldest first.
  [[nodiscard]] std::vector<CycleRecord> history() const;

  /// Counter snapshot for ServeStats::orchestrator.
  [[nodiscard]] serve::OrchestratorStats counters() const;
  /// Convenience: counters() into an existing snapshot (the TcpServer
  /// augment_stats hook).
  void merge_into(serve::ServeStats* stats) const { stats->orchestrator = counters(); }

  [[nodiscard]] const std::string& candidate_dir() const {
    return candidate_dir_;
  }
  [[nodiscard]] const std::string& last_good_dir() const { return good_dir_; }

 private:
  /// Gate → promote/reject tail shared by run_cycle and submit_candidate.
  /// Expects cycle_mu_ held; fills `record` in place. `published` says the
  /// candidate checkpoint is already in candidate_dir_ (the trainer wrote
  /// it); submit_candidate publishes it here after the gate passes. `tier`
  /// attributes the per-tier promotion/rejection counters (external
  /// submit_candidate models count under the full tier).
  void gate_and_promote(const linalg::FactorMatrix& x,
                        const linalg::FactorMatrix& theta, bool published,
                        TrainTier tier, CycleRecord* record);
  /// Picks the tier for the next training pass; sets *consolidation when
  /// kAuto's countdown scheduled a full cycle. Expects cycle_mu_ held.
  [[nodiscard]] TrainTier choose_tier(bool* consolidation) const;
  /// Runs one training pass on the chosen backend, with the tier-tagged
  /// orch.train span and per-tier retrain counters. Expects cycle_mu_ held.
  TrainResult run_training_pass(const RatingLog::Snapshot& snap,
                                TrainTier tier);
  void append_record(CycleRecord record);
  void daemon_loop();

  RatingLog& log_;
  serve::LiveFactorStore& live_;
  OrchestratorOptions opt_;
  QualityGate gate_;
  std::string candidate_dir_;
  std::string good_dir_;
  /// Single stamp source for every checkpoint writer (both trainer backends
  /// plus the orchestrator's own candidate/rollback-target saves): restore()
  /// prefers the highest stamp, so one counter keeps publication order and
  /// stamp order aligned across tiers.
  CheckpointStampSource stamps_;
  FullAlsTrainer full_trainer_;
  IncrementalSgdTrainer sgd_trainer_;

  /// Serializes cycles (daemon vs. manual run_cycle / submit_candidate /
  /// rollback). Never held on the query path.
  std::mutex cycle_mu_;
  // Guarded by cycle_mu_. serving_* mirrors the gate-blessed model in the
  // live store (warm-start source); good_* is the rollback target persisted
  // in good_dir_ (the model superseded by the latest promotion).
  linalg::FactorMatrix serving_x_;
  linalg::FactorMatrix serving_theta_;
  double serving_rmse_ = 0.0;
  double serving_recall_ = 0.0;
  double good_rmse_ = 0.0;
  double good_recall_ = 0.0;
  std::uint64_t cycles_run_ = 0;
  /// Training cycles since the last full-ALS pass (kAuto's consolidation
  /// countdown; any full pass — scheduled, escalated, or kFull mode —
  /// resets it).
  int cycles_since_full_ = 0;
  /// Touched-row ids accumulated across cycles whose candidate did not
  /// promote (sorted, deduplicated). Folded into every incremental pass and
  /// cleared when a run_cycle candidate promotes, so rejected cycles' deltas
  /// stay in training scope.
  std::vector<idx_t> carry_users_;
  std::vector<idx_t> carry_items_;

  mutable std::mutex history_mu_;
  std::vector<CycleRecord> history_;
  serve::OrchestratorStats stats_;  // guarded by history_mu_

  std::thread daemon_;
  /// Held across all of start()/stop() (including the join), so concurrent
  /// stop()s — e.g. an explicit stop() racing the destructor — serialize
  /// and both return only once the daemon has exited.
  std::mutex lifecycle_mu_;
  mutable std::mutex daemon_mu_;
  std::condition_variable daemon_cv_;
  bool daemon_stop_ = false;
  bool daemon_running_ = false;
};

}  // namespace cumf::orchestrate
