#include "orchestrate/orchestrator.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <iterator>
#include <stdexcept>
#include <utility>

#include "core/checkpoint.hpp"
#include "obs/events.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace cumf::orchestrate {

namespace {

std::string make_subdir(const std::string& work_dir, const char* name) {
  const auto path = std::filesystem::path(work_dir) / name;
  std::filesystem::create_directories(path);
  return path.string();
}

/// Folds `add` (sorted, unique) into `into` (sorted, unique), keeping the
/// result sorted and unique — the carried touched-row sets.
void merge_ids(std::vector<idx_t>* into, const std::vector<idx_t>& add) {
  if (add.empty()) return;
  if (into->empty()) {
    *into = add;
    return;
  }
  std::vector<idx_t> merged;
  merged.reserve(into->size() + add.size());
  std::set_union(into->begin(), into->end(), add.begin(), add.end(),
                 std::back_inserter(merged));
  *into = std::move(merged);
}

/// (X, Θ) of the snapshot a live store is serving, re-assembled from the
/// sharded layout (shards keep Θ rows in descending-norm order with a
/// slot → item-id map).
std::pair<linalg::FactorMatrix, linalg::FactorMatrix> reconstruct_factors(
    const serve::FactorStore& store) {
  const int f = store.f();
  linalg::FactorMatrix x(store.num_users(), f);
  for (idx_t u = 0; u < store.num_users(); ++u) {
    std::memcpy(x.row(u), store.user(u), sizeof(real_t) * static_cast<std::size_t>(f));
  }
  linalg::FactorMatrix theta(store.num_items(), f);
  for (int s = 0; s < store.num_shards(); ++s) {
    const auto& shard = store.shard(s);
    for (std::size_t slot = 0; slot < shard.item_ids.size(); ++slot) {
      std::memcpy(theta.row(shard.item_ids[slot]),
                  shard.theta.row(static_cast<idx_t>(slot)),
                  sizeof(real_t) * static_cast<std::size_t>(f));
    }
  }
  return {std::move(x), std::move(theta)};
}

}  // namespace

Orchestrator::Orchestrator(RatingLog& log, serve::LiveFactorStore& live,
                           sparse::CooMatrix holdout, OrchestratorOptions opt,
                           const sparse::CsrMatrix* exclude)
    : log_(log),
      live_(live),
      opt_(std::move(opt)),
      gate_(std::move(holdout), opt_.gate, exclude),
      candidate_dir_(make_subdir(opt_.work_dir, "candidate")),
      good_dir_(make_subdir(opt_.work_dir, "good")),
      full_trainer_(opt_.trainer, candidate_dir_, &stamps_),
      sgd_trainer_(opt_.sgd, candidate_dir_, &stamps_) {
  // Seed the baseline and the rollback target from whatever is serving:
  // the first candidate is judged against the live model, and rollback()
  // is meaningful from the very first promotion.
  auto [x0, theta0] = reconstruct_factors(*live_.pin().store);
  const GateReport seed = gate_.evaluate(x0, theta0);
  gate_.set_baseline(seed.rmse, seed.recall);
  serving_x_ = std::move(x0);
  serving_theta_ = std::move(theta0);
  serving_rmse_ = good_rmse_ = seed.rmse;
  serving_recall_ = good_recall_ = seed.recall;
  core::CheckpointManager good(good_dir_);
  const int stamp = stamps_.next();
  good.save_x(serving_x_, stamp);
  good.save_theta(serving_theta_, stamp);
}

Orchestrator::~Orchestrator() { stop(); }

CycleRecord Orchestrator::run_cycle(bool force) {
  std::lock_guard<std::mutex> cycle(cycle_mu_);
  CycleRecord rec;
  rec.cycle = ++cycles_run_;
  rec.generation = live_.generation();

  if (!force && opt_.skip_when_idle && log_.pending() == 0) {
    rec.outcome = CycleOutcome::kSkipped;
    return rec;  // nothing changed; not worth an audit entry
  }

  obs::TraceSpan cycle_span(obs::TraceCollector::global(), "orch.cycle");
  cycle_span.arg("cycle", rec.cycle);

  rec.tier = choose_tier(&rec.consolidation);
  if (rec.consolidation) {
    {
      std::lock_guard<std::mutex> lock(history_mu_);
      ++stats_.consolidations;
    }
    obs::EventLog::global().record(obs::Severity::kInfo,
                                   obs::Component::kOrch, "consolidation",
                                   {"cycle", rec.cycle});
  }

  RatingLog::Snapshot snap;
  TrainResult trained;
  try {
    {
      obs::TraceSpan snap_span(obs::TraceCollector::global(),
                               "orch.snapshot");
      snap = log_.snapshot();
    }
    rec.deltas_seen = snap.deltas_applied;
    // Fold this snapshot's touched rows into the carried set and hand the
    // union to the trainer: deltas merged during a cycle whose candidate
    // was rejected are already in the log's matrix, so keeping their rows
    // in scope until some candidate promotes is the only way a later
    // incremental pass can still learn them.
    merge_ids(&carry_users_, snap.touched_users);
    merge_ids(&carry_items_, snap.touched_items);
    snap.touched_users = carry_users_;
    snap.touched_items = carry_items_;
    trained = run_training_pass(snap, rec.tier);
  } catch (const std::exception& e) {
    rec.outcome = CycleOutcome::kTrainFailed;
    rec.error = e.what();
    util::log_warn("orchestrator: retrain failed: ", rec.error);
    append_record(rec);
    return rec;
  }
  rec.train_wall_ms = trained.wall_ms;
  rec.train_modeled_s = trained.modeled_seconds;

  try {
    gate_and_promote(trained.x, trained.theta, /*published=*/true, rec.tier,
                     &rec);
    if (rec.outcome == CycleOutcome::kRejected &&
        rec.tier == TrainTier::kIncrementalSgd &&
        opt_.tier_mode != TrainTierMode::kFull) {
      // Escalation: the gate refused the incremental candidate, so re-run
      // the cycle's training pass as full ALS on the same snapshot rather
      // than stalling until the next consolidation. The rejection above is
      // already counted; the record carries the final (full) verdict and
      // the summed cost of both passes.
      {
        std::lock_guard<std::mutex> lock(history_mu_);
        ++stats_.escalations;
      }
      obs::EventLog::global().record(obs::Severity::kWarn,
                                     obs::Component::kOrch, "escalation",
                                     {"cycle", rec.cycle});
      rec.escalated = true;
      rec.tier = TrainTier::kFullAls;
      util::log_warn(
          "orchestrator: incremental candidate rejected; escalating to "
          "full ALS");
      trained = run_training_pass(snap, TrainTier::kFullAls);
      rec.train_wall_ms += trained.wall_ms;
      rec.train_modeled_s += trained.modeled_seconds;
      gate_and_promote(trained.x, trained.theta, /*published=*/true,
                       TrainTier::kFullAls, &rec);
    }
  } catch (const std::exception& e) {
    rec.outcome = CycleOutcome::kTrainFailed;
    rec.error = e.what();  // e.g. the rollback-target checkpoint write failed
    util::log_warn("orchestrator: promotion failed: ", rec.error);
  }
  if (rec.outcome == CycleOutcome::kPromoted) {
    // The promoted candidate trained on every carried touched row (full ALS
    // trains on everything); the carry is settled.
    carry_users_.clear();
    carry_items_.clear();
  }
  append_record(rec);
  return rec;
}

TrainTier Orchestrator::choose_tier(bool* consolidation) const {
  *consolidation = false;
  switch (opt_.tier_mode) {
    case TrainTierMode::kFull:
      return TrainTier::kFullAls;
    case TrainTierMode::kIncremental:
      return TrainTier::kIncrementalSgd;
    case TrainTierMode::kAuto:
      break;
  }
  if (cycles_since_full_ + 1 >= opt_.consolidate_every) {
    *consolidation = true;
    return TrainTier::kFullAls;
  }
  return TrainTier::kIncrementalSgd;
}

TrainResult Orchestrator::run_training_pass(const RatingLog::Snapshot& snap,
                                            TrainTier tier) {
  obs::TraceSpan train_span(obs::TraceCollector::global(), "orch.train");
  train_span.arg("deltas", snap.deltas_applied);
  train_span.arg("tier", static_cast<std::uint64_t>(tier));
  TrainerBackend& backend =
      tier == TrainTier::kFullAls
          ? static_cast<TrainerBackend&>(full_trainer_)
          : static_cast<TrainerBackend&>(sgd_trainer_);
  TrainResult trained = backend.train(snap, &serving_x_, &serving_theta_);
  train_span.finish();

  if (tier == TrainTier::kFullAls) {
    cycles_since_full_ = 0;
  } else {
    ++cycles_since_full_;
  }
  std::lock_guard<std::mutex> lock(history_mu_);
  ++stats_.retrains;
  if (tier == TrainTier::kFullAls) {
    ++stats_.retrains_full;
  } else {
    ++stats_.retrains_incremental;
  }
  stats_.last_train_tier = static_cast<std::uint64_t>(tier);
  stats_.last_train_wall_ms = trained.wall_ms;
  stats_.last_train_modeled_s = trained.modeled_seconds;
  return trained;
}

CycleRecord Orchestrator::submit_candidate(const linalg::FactorMatrix& x,
                                           const linalg::FactorMatrix& theta) {
  std::lock_guard<std::mutex> cycle(cycle_mu_);
  CycleRecord rec;
  rec.cycle = ++cycles_run_;
  rec.generation = live_.generation();
  try {
    gate_and_promote(x, theta, /*published=*/false, TrainTier::kFullAls,
                     &rec);
  } catch (const std::exception& e) {
    rec.outcome = CycleOutcome::kTrainFailed;
    rec.error = e.what();  // candidate/rollback checkpoint write failed
    util::log_warn("orchestrator: promotion failed: ", rec.error);
  }
  append_record(rec);
  return rec;
}

void Orchestrator::gate_and_promote(const linalg::FactorMatrix& x,
                                    const linalg::FactorMatrix& theta,
                                    bool published, TrainTier tier,
                                    CycleRecord* record) {
  {
    obs::TraceSpan gate_span(obs::TraceCollector::global(), "orch.gate");
    record->gate = gate_.evaluate(x, theta);
    gate_span.arg("passed", record->gate.passed ? 1u : 0u);
  }
  {
    std::lock_guard<std::mutex> lock(history_mu_);
    stats_.last_gate_rmse = record->gate.rmse;
    stats_.last_gate_recall = record->gate.recall;
  }
  if (!record->gate.passed) {
    record->outcome = CycleOutcome::kRejected;
    record->generation = live_.generation();
    {
      std::lock_guard<std::mutex> lock(history_mu_);
      ++stats_.rejections;
      if (tier == TrainTier::kFullAls) {
        ++stats_.rejections_full;
      } else {
        ++stats_.rejections_incremental;
      }
    }
    obs::EventLog::global().record(
        obs::Severity::kWarn, obs::Component::kOrch, "gate_reject",
        {"cycle", record->cycle},
        {"tier", static_cast<std::uint64_t>(tier)},
        {"generation", record->generation});
    util::log_warn("orchestrator: candidate rejected: ",
                   record->gate.reason);
    return;
  }

  obs::TraceSpan promote_span(obs::TraceCollector::global(), "orch.promote");

  if (!published) {
    core::CheckpointManager candidate(candidate_dir_);
    const int stamp = stamps_.next();
    candidate.save_x(x, stamp);
    candidate.save_theta(theta, stamp);
  }

  const auto outcome = live_.refresh_from_checkpoint(candidate_dir_);
  if (!outcome.swapped) {
    // Nothing changed: the old model keeps serving AND stays the rollback
    // target (good_dir is only rewritten below, after a successful swap —
    // a failed promotion must not clobber it).
    record->outcome = CycleOutcome::kTrainFailed;
    record->error = "promotion refresh failed: " + outcome.error;
    record->generation = live_.generation();
    util::log_warn("orchestrator: ", record->error);
    return;
  }

  record->outcome = CycleOutcome::kPromoted;
  record->generation = outcome.generation;
  record->swap_pause_ms = outcome.swap_pause_ms;
  promote_span.arg("generation", outcome.generation);
  obs::EventLog::global().record(
      obs::Severity::kInfo, obs::Component::kOrch, "promotion",
      {"cycle", record->cycle}, {"generation", outcome.generation},
      {"tier", static_cast<std::uint64_t>(tier)});

  // The swap landed: persist the *outgoing* model as the rollback target so
  // a promotion that later proves bad can be reverted to what it replaced.
  // A persist failure (disk full) must not contradict reality — the new
  // model IS serving — so the record stays kPromoted with the error noted,
  // and the previous rollback target's metrics are kept (the directory may
  // hold a partial update; rollback() will promote whatever restores
  // validly, each factor falling back to its .prev copy).
  try {
    core::CheckpointManager good(good_dir_);
    const int stamp = stamps_.next();
    good.save_x(serving_x_, stamp);
    good.save_theta(serving_theta_, stamp);
    good_rmse_ = serving_rmse_;
    good_recall_ = serving_recall_;
  } catch (const std::exception& e) {
    record->error = std::string("rollback-target persist failed: ") + e.what();
    util::log_warn("orchestrator: ", record->error);
  }
  serving_x_ = x;
  serving_theta_ = theta;
  serving_rmse_ = record->gate.rmse;
  serving_recall_ = record->gate.recall;
  gate_.set_baseline(serving_rmse_, serving_recall_);
  std::lock_guard<std::mutex> lock(history_mu_);
  ++stats_.promotions;
  if (tier == TrainTier::kFullAls) {
    ++stats_.promotions_full;
  } else {
    ++stats_.promotions_incremental;
  }
}

bool Orchestrator::rollback() {
  std::lock_guard<std::mutex> cycle(cycle_mu_);
  CycleRecord rec;
  rec.cycle = ++cycles_run_;

  obs::TraceSpan rollback_span(obs::TraceCollector::global(),
                               "orch.rollback");
  const auto outcome = live_.refresh_from_checkpoint(good_dir_);
  if (!outcome.swapped) {
    util::log_warn("orchestrator: rollback failed: ", outcome.error);
    return false;
  }
  // The rolled-back model is now both serving and the rollback target
  // (one level deep — rolling back again re-promotes the same snapshot).
  auto [x, theta] = reconstruct_factors(*live_.pin().store);
  serving_x_ = std::move(x);
  serving_theta_ = std::move(theta);
  serving_rmse_ = good_rmse_;
  serving_recall_ = good_recall_;
  gate_.set_baseline(serving_rmse_, serving_recall_);

  rec.outcome = CycleOutcome::kRolledBack;
  rec.generation = outcome.generation;
  rec.swap_pause_ms = outcome.swap_pause_ms;
  {
    std::lock_guard<std::mutex> lock(history_mu_);
    ++stats_.rollbacks;
  }
  obs::EventLog::global().record(obs::Severity::kError,
                                 obs::Component::kOrch, "rollback",
                                 {"generation", outcome.generation});
  append_record(rec);
  return true;
}

void Orchestrator::start() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  {
    std::lock_guard<std::mutex> lock(daemon_mu_);
    if (daemon_running_) return;
    daemon_stop_ = false;
    daemon_running_ = true;
  }
  daemon_ = std::thread([this] { daemon_loop(); });
}

void Orchestrator::stop() {
  // lifecycle_mu_ is held across the join, so a stop() racing another
  // stop() (or the destructor) blocks until the daemon has fully exited
  // instead of returning while it still runs against our members. The
  // daemon thread itself never takes lifecycle_mu_, so no deadlock.
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  {
    std::lock_guard<std::mutex> lock(daemon_mu_);
    if (!daemon_running_) return;
    daemon_stop_ = true;
  }
  daemon_cv_.notify_all();
  daemon_.join();
  std::lock_guard<std::mutex> lock(daemon_mu_);
  daemon_running_ = false;
}

bool Orchestrator::running() const {
  std::lock_guard<std::mutex> lock(daemon_mu_);
  return daemon_running_;
}

void Orchestrator::daemon_loop() {
  obs::TraceCollector::global().set_thread_name("orchestrator");
  auto next_cadence = std::chrono::steady_clock::now() + opt_.cadence;
  // Poll well below the cadence so a delta-count trigger fires promptly.
  const auto poll = std::min<std::chrono::milliseconds>(
      std::chrono::milliseconds(20),
      std::max<std::chrono::milliseconds>(opt_.cadence / 4,
                                          std::chrono::milliseconds(1)));
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(daemon_mu_);
      daemon_cv_.wait_for(lock, poll, [this] { return daemon_stop_; });
      if (daemon_stop_) return;
    }
    const bool delta_hit =
        opt_.delta_trigger > 0 && log_.pending() >= opt_.delta_trigger;
    const bool cadence_hit = std::chrono::steady_clock::now() >= next_cadence;
    if (!delta_hit && !cadence_hit) continue;
    (void)run_cycle(/*force=*/false);
    next_cadence = std::chrono::steady_clock::now() + opt_.cadence;
  }
}

void Orchestrator::append_record(CycleRecord record) {
  std::lock_guard<std::mutex> lock(history_mu_);
  history_.push_back(std::move(record));
}

std::vector<CycleRecord> Orchestrator::history() const {
  std::lock_guard<std::mutex> lock(history_mu_);
  return history_;
}

serve::OrchestratorStats Orchestrator::counters() const {
  serve::OrchestratorStats out;
  {
    std::lock_guard<std::mutex> lock(history_mu_);
    out = stats_;
  }
  out.deltas_ingested = log_.accepted();
  out.deltas_rejected = log_.rejected();
  out.baseline_rmse = gate_.baseline_rmse();
  out.baseline_recall = gate_.baseline_recall();
  return out;
}

}  // namespace cumf::orchestrate
