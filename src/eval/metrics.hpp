#pragma once

// Quality metrics and convergence recording.
//
// The paper evaluates test RMSE vs training time (Figs. 6-10) and the
// regularized objective J of eq. (1). RMSE and J are accumulated in double to
// keep them stable across summation orders and thread counts.

#include <string>
#include <vector>

#include "linalg/dense.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "util/types.hpp"

namespace cumf::eval {

/// Root-mean-square error of X·Θᵀ against the ratings in `ratings`.
double rmse(const sparse::CooMatrix& ratings, const linalg::FactorMatrix& X,
            const linalg::FactorMatrix& Theta);

/// The weighted-λ-regularized objective J of eq. (1):
///   Σ (r_uv - x_uᵀθ_v)² + λ (Σ_u n_{x_u}‖x_u‖² + Σ_v n_{θ_v}‖θ_v‖²).
double objective(const sparse::CsrMatrix& R, const linalg::FactorMatrix& X,
                 const linalg::FactorMatrix& Theta, double lambda);

/// One convergence sample.
struct ConvergencePoint {
  int iteration = 0;
  double wall_seconds = 0.0;     // measured on the host
  double modeled_seconds = 0.0;  // simulated device / cluster clock
  double train_rmse = 0.0;
  double test_rmse = 0.0;
};

/// Convergence series for one solver run; benches write these out as CSV.
struct ConvergenceHistory {
  std::string label;
  std::vector<ConvergencePoint> points;

  void add(const ConvergencePoint& p) { points.push_back(p); }

  /// First modeled time at which test RMSE drops to `target`, or a negative
  /// value if the run never reaches it. Linear interpolation between samples
  /// (the paper quotes "time to RMSE 0.92" numbers this way).
  [[nodiscard]] double modeled_time_to_rmse(double target) const;
  [[nodiscard]] double wall_time_to_rmse(double target) const;

  [[nodiscard]] double best_test_rmse() const;
};

}  // namespace cumf::eval
