#pragma once

// Quality metrics and convergence recording.
//
// The paper evaluates test RMSE vs training time (Figs. 6-10) and the
// regularized objective J of eq. (1). RMSE and J are accumulated in double to
// keep them stable across summation orders and thread counts.

#include <span>
#include <string>
#include <vector>

#include "linalg/dense.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "util/types.hpp"

namespace cumf::eval {

/// Root-mean-square error of X·Θᵀ against the ratings in `ratings`.
double rmse(const sparse::CooMatrix& ratings, const linalg::FactorMatrix& X,
            const linalg::FactorMatrix& Theta);

/// The weighted-λ-regularized objective J of eq. (1):
///   Σ (r_uv - x_uᵀθ_v)² + λ (Σ_u n_{x_u}‖x_u‖² + Σ_v n_{θ_v}‖θ_v‖²).
double objective(const sparse::CsrMatrix& R, const linalg::FactorMatrix& X,
                 const linalg::FactorMatrix& Theta, double lambda);

/// Fraction of distinct `relevant` items that appear in the ranked
/// `recommended` list (recall@k with k = recommended.size()). Neither span
/// need be sorted; duplicates never count a relevant item twice, so the
/// result is always in [0, 1]. Returns 0 when `relevant` is empty.
double recall_at_k(std::span<const idx_t> recommended,
                   std::span<const idx_t> relevant);

/// Normalized discounted cumulative gain with binary relevance: the first
/// occurrence of a relevant item at rank i (0-based) contributes
/// 1/log2(i+2), normalized by the ideal DCG of min(k, distinct |relevant|)
/// leading hits. Always in [0, 1]; returns 0 when `relevant` is empty.
double ndcg_at_k(std::span<const idx_t> recommended,
                 std::span<const idx_t> relevant);

/// Aggregate ranking quality of a factor model against a held-out slice.
struct RankingQuality {
  double mean_recall = 0.0;  // mean recall@k over evaluated users
  double mean_ndcg = 0.0;    // mean NDCG@k over evaluated users
  int users_evaluated = 0;   // users with >= 1 held-out rating scored
};

/// Scores each user's exact top-k list (serial brute force over Θ, ranked by
/// score desc / item asc) against their held-out items, averaging recall@k
/// and NDCG@k. Users without held-out ratings are skipped; at most
/// `max_users` users (in ascending id order) are evaluated, so gate checks
/// stay cheap on large models. With `exclude` set, items a user already
/// rated in training never enter their list — the same filter serving
/// applies. This is the promotion criterion the retrain orchestrator's
/// QualityGate applies to every candidate model.
RankingQuality ranking_quality(const sparse::CooMatrix& holdout,
                               const linalg::FactorMatrix& X,
                               const linalg::FactorMatrix& Theta, int k,
                               const sparse::CsrMatrix* exclude = nullptr,
                               int max_users = 200);

/// One convergence sample.
struct ConvergencePoint {
  int iteration = 0;
  double wall_seconds = 0.0;     // measured on the host
  double modeled_seconds = 0.0;  // simulated device / cluster clock
  double train_rmse = 0.0;
  double test_rmse = 0.0;
};

/// Convergence series for one solver run; benches write these out as CSV.
struct ConvergenceHistory {
  std::string label;
  std::vector<ConvergencePoint> points;

  void add(const ConvergencePoint& p) { points.push_back(p); }

  /// Sentinel returned by the time-to-RMSE queries when the run never
  /// reaches the target — including the empty-history case, which callers
  /// must treat the same as "never converged". Always negative, so
  /// `t >= 0` is the "did converge" test.
  static constexpr double kNeverReached = -1.0;

  /// First modeled time at which test RMSE drops to `target`, or
  /// kNeverReached if the run never reaches it (an empty history returns
  /// kNeverReached). Linear interpolation between samples (the paper quotes
  /// "time to RMSE 0.92" numbers this way).
  [[nodiscard]] double modeled_time_to_rmse(double target) const;
  [[nodiscard]] double wall_time_to_rmse(double target) const;

  /// Smallest test RMSE seen; +infinity on an empty history.
  [[nodiscard]] double best_test_rmse() const;
};

}  // namespace cumf::eval
