#include "eval/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/hermitian.hpp"
#include "sparse/stats.hpp"

namespace cumf::eval {

double rmse(const sparse::CooMatrix& ratings, const linalg::FactorMatrix& X,
            const linalg::FactorMatrix& Theta) {
  if (ratings.nnz() == 0) return 0.0;
  const int f = X.f();
  double sum = 0.0;
  for (std::size_t k = 0; k < ratings.val.size(); ++k) {
    const double pred =
        linalg::dot(X.row(ratings.row[k]), Theta.row(ratings.col[k]), f);
    const double err = static_cast<double>(ratings.val[k]) - pred;
    sum += err * err;
  }
  return std::sqrt(sum / static_cast<double>(ratings.nnz()));
}

double objective(const sparse::CsrMatrix& R, const linalg::FactorMatrix& X,
                 const linalg::FactorMatrix& Theta, double lambda) {
  const int f = X.f();
  double sq = 0.0;
  for (idx_t u = 0; u < R.rows; ++u) {
    const auto cols = R.row_cols(u);
    const auto vals = R.row_vals(u);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const double err =
          static_cast<double>(vals[k]) - linalg::dot(X.row(u), Theta.row(cols[k]), f);
      sq += err * err;
    }
  }
  double reg = 0.0;
  const auto ndeg_x = sparse::row_degrees(R);
  for (idx_t u = 0; u < R.rows; ++u) {
    reg += static_cast<double>(ndeg_x[static_cast<std::size_t>(u)]) *
           linalg::dot(X.row(u), X.row(u), f);
  }
  const auto ndeg_t = sparse::col_degrees(R);
  for (idx_t v = 0; v < R.cols; ++v) {
    reg += static_cast<double>(ndeg_t[static_cast<std::size_t>(v)]) *
           linalg::dot(Theta.row(v), Theta.row(v), f);
  }
  return sq + lambda * reg;
}

namespace {
// Consumes `item` from the sorted pool on first match, so duplicates in a
// recommendation list can never credit the same relevant item twice.
bool take_hit(std::vector<idx_t>& pool, idx_t item) {
  const auto it = std::lower_bound(pool.begin(), pool.end(), item);
  if (it == pool.end() || *it != item) return false;
  pool.erase(it);
  return true;
}
}  // namespace

double recall_at_k(std::span<const idx_t> recommended,
                   std::span<const idx_t> relevant) {
  if (relevant.empty()) return 0.0;
  std::vector<idx_t> pool(relevant.begin(), relevant.end());
  std::sort(pool.begin(), pool.end());
  pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
  const std::size_t distinct = pool.size();
  std::size_t hits = 0;
  for (const idx_t item : recommended) {
    if (take_hit(pool, item)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(distinct);
}

double ndcg_at_k(std::span<const idx_t> recommended,
                 std::span<const idx_t> relevant) {
  if (relevant.empty()) return 0.0;
  std::vector<idx_t> pool(relevant.begin(), relevant.end());
  std::sort(pool.begin(), pool.end());
  pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
  const std::size_t distinct = pool.size();
  double dcg = 0.0;
  for (std::size_t i = 0; i < recommended.size(); ++i) {
    if (take_hit(pool, recommended[i])) {
      dcg += 1.0 / std::log2(static_cast<double>(i) + 2.0);
    }
  }
  const std::size_t ideal_hits = std::min(recommended.size(), distinct);
  double idcg = 0.0;
  for (std::size_t i = 0; i < ideal_hits; ++i) {
    idcg += 1.0 / std::log2(static_cast<double>(i) + 2.0);
  }
  return idcg > 0.0 ? dcg / idcg : 0.0;
}

RankingQuality ranking_quality(const sparse::CooMatrix& holdout,
                               const linalg::FactorMatrix& X,
                               const linalg::FactorMatrix& Theta, int k,
                               const sparse::CsrMatrix* exclude,
                               int max_users) {
  RankingQuality q;
  if (k < 1 || max_users < 1) return q;

  // Held-out items per user; only users with at least one matter.
  std::vector<std::vector<idx_t>> relevant(
      static_cast<std::size_t>(holdout.rows));
  for (std::size_t i = 0; i < holdout.val.size(); ++i) {
    relevant[static_cast<std::size_t>(holdout.row[i])].push_back(
        holdout.col[i]);
  }

  const int f = X.f();
  const idx_t users = std::min<idx_t>(X.rows(), holdout.rows);
  std::vector<idx_t> rated;
  std::vector<std::pair<double, idx_t>> scored;
  std::vector<idx_t> top;
  double recall_sum = 0.0;
  double ndcg_sum = 0.0;
  for (idx_t u = 0; u < users && q.users_evaluated < max_users; ++u) {
    const auto& rel = relevant[static_cast<std::size_t>(u)];
    if (rel.empty()) continue;

    rated.clear();
    if (exclude != nullptr && u < exclude->rows) {
      const auto cols = exclude->row_cols(u);
      rated.assign(cols.begin(), cols.end());
      std::sort(rated.begin(), rated.end());
    }
    scored.clear();
    for (idx_t v = 0; v < Theta.rows(); ++v) {
      if (std::binary_search(rated.begin(), rated.end(), v)) continue;
      scored.emplace_back(linalg::dot(X.row(u), Theta.row(v), f), v);
    }
    const std::size_t kk = std::min<std::size_t>(
        static_cast<std::size_t>(k), scored.size());
    // Ranking order matches serving: score desc, item id asc on ties.
    std::partial_sort(scored.begin(), scored.begin() + kk, scored.end(),
                      [](const auto& a, const auto& b) {
                        return a.first > b.first ||
                               (a.first == b.first && a.second < b.second);
                      });
    top.clear();
    for (std::size_t i = 0; i < kk; ++i) top.push_back(scored[i].second);

    recall_sum += recall_at_k(top, rel);
    ndcg_sum += ndcg_at_k(top, rel);
    ++q.users_evaluated;
  }
  if (q.users_evaluated > 0) {
    q.mean_recall = recall_sum / q.users_evaluated;
    q.mean_ndcg = ndcg_sum / q.users_evaluated;
  }
  return q;
}

namespace {
double time_to_rmse(const std::vector<ConvergencePoint>& points, double target,
                    double ConvergencePoint::*axis) {
  if (points.empty()) return ConvergenceHistory::kNeverReached;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].test_rmse <= target) {
      if (i == 0) return points[i].*axis;
      // Interpolate between the bracketing samples.
      const auto& a = points[i - 1];
      const auto& b = points[i];
      const double span = a.test_rmse - b.test_rmse;
      const double frac = span > 0 ? (a.test_rmse - target) / span : 1.0;
      return a.*axis + frac * (b.*axis - a.*axis);
    }
  }
  return ConvergenceHistory::kNeverReached;
}
}  // namespace

double ConvergenceHistory::modeled_time_to_rmse(double target) const {
  return time_to_rmse(points, target, &ConvergencePoint::modeled_seconds);
}

double ConvergenceHistory::wall_time_to_rmse(double target) const {
  return time_to_rmse(points, target, &ConvergencePoint::wall_seconds);
}

double ConvergenceHistory::best_test_rmse() const {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& p : points) best = std::min(best, p.test_rmse);
  return best;
}

}  // namespace cumf::eval
