#pragma once

// Compressed Sparse Row / Compressed Sparse Column matrices.
//
// The paper stores R in CSR for update-X (row u's ratings drive A_u, B_u) and
// needs column access for update-Θ; we keep an explicit CSC mirror (CscMatrix
// is CSR of Rᵀ with the same index conventions). Memory layout matches the
// paper's accounting: a CSR of R costs 2·Nz + m + 1 words (Table 3).

#include <span>
#include <vector>

#include "sparse/coo.hpp"
#include "util/types.hpp"

namespace cumf::sparse {

struct CsrMatrix {
  idx_t rows = 0;
  idx_t cols = 0;
  std::vector<nnz_t> row_ptr;   // size rows + 1
  std::vector<idx_t> col_ind;   // size nnz
  std::vector<real_t> vals;     // size nnz

  [[nodiscard]] nnz_t nnz() const { return static_cast<nnz_t>(vals.size()); }

  [[nodiscard]] nnz_t row_nnz(idx_t r) const {
    return row_ptr[static_cast<std::size_t>(r) + 1] -
           row_ptr[static_cast<std::size_t>(r)];
  }

  [[nodiscard]] std::span<const idx_t> row_cols(idx_t r) const {
    const auto lo = static_cast<std::size_t>(row_ptr[r]);
    const auto hi = static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(r) + 1]);
    return {col_ind.data() + lo, hi - lo};
  }

  [[nodiscard]] std::span<const real_t> row_vals(idx_t r) const {
    const auto lo = static_cast<std::size_t>(row_ptr[r]);
    const auto hi = static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(r) + 1]);
    return {vals.data() + lo, hi - lo};
  }

  /// Storage footprint in bytes (row_ptr + col_ind + vals), as counted by the
  /// partition planner against device capacity.
  [[nodiscard]] bytes_t footprint_bytes() const {
    return static_cast<bytes_t>(row_ptr.size()) * sizeof(nnz_t) +
           static_cast<bytes_t>(col_ind.size()) * sizeof(idx_t) +
           static_cast<bytes_t>(vals.size()) * sizeof(real_t);
  }
};

/// CSC of R == CSR of Rᵀ. Kept as a distinct type so interfaces say which
/// orientation they require.
struct CscMatrix {
  idx_t rows = 0;  // rows of the logical R
  idx_t cols = 0;
  std::vector<nnz_t> col_ptr;   // size cols + 1
  std::vector<idx_t> row_ind;   // size nnz
  std::vector<real_t> vals;

  [[nodiscard]] nnz_t nnz() const { return static_cast<nnz_t>(vals.size()); }

  [[nodiscard]] nnz_t col_nnz(idx_t c) const {
    return col_ptr[static_cast<std::size_t>(c) + 1] -
           col_ptr[static_cast<std::size_t>(c)];
  }

  [[nodiscard]] std::span<const idx_t> col_rows(idx_t c) const {
    const auto lo = static_cast<std::size_t>(col_ptr[c]);
    const auto hi = static_cast<std::size_t>(col_ptr[static_cast<std::size_t>(c) + 1]);
    return {row_ind.data() + lo, hi - lo};
  }

  [[nodiscard]] std::span<const real_t> col_vals(idx_t c) const {
    const auto lo = static_cast<std::size_t>(col_ptr[c]);
    const auto hi = static_cast<std::size_t>(col_ptr[static_cast<std::size_t>(c) + 1]);
    return {vals.data() + lo, hi - lo};
  }
};

/// Builds CSR from COO triples (stable counting sort by row; column order
/// within a row follows the input order).
CsrMatrix coo_to_csr(const CooMatrix& coo);

/// Builds the CSC mirror of a CSR matrix (i.e. transposes the index
/// structure; values are shared semantics, copied storage).
CscMatrix csr_to_csc(const CsrMatrix& csr);

/// Transpose: CSR of Rᵀ from CSR of R.
CsrMatrix transpose(const CsrMatrix& csr);

/// Re-interpret a CSC as the CSR of the transposed matrix (cheap move).
CsrMatrix csc_as_csr_of_transpose(CscMatrix&& csc);

/// Dense reconstruction for tests (rows*cols must be small).
std::vector<real_t> to_dense(const CsrMatrix& csr);

}  // namespace cumf::sparse
