#pragma once

// Matrix Market (.mtx) interchange I/O — the format the public MF data sets
// (Netflix dumps, Hugewiki, SNAP exports) ship in. Supports the coordinate
// variants cuMF consumes: real / integer / pattern, general symmetry.

#include <string>

#include "sparse/coo.hpp"

namespace cumf::sparse {

/// Parses a MatrixMarket coordinate file (1-based indices; `pattern` entries
/// get value 1). Throws std::runtime_error on malformed input.
CooMatrix load_matrix_market(const std::string& path);

/// Writes `coo` as "%%MatrixMarket matrix coordinate real general".
void save_matrix_market(const std::string& path, const CooMatrix& coo);

}  // namespace cumf::sparse
