#include "sparse/csr.hpp"

#include <cassert>

namespace cumf::sparse {

CsrMatrix coo_to_csr(const CooMatrix& coo) {
  CsrMatrix csr;
  csr.rows = coo.rows;
  csr.cols = coo.cols;
  csr.row_ptr.assign(static_cast<std::size_t>(coo.rows) + 1, 0);
  csr.col_ind.resize(coo.val.size());
  csr.vals.resize(coo.val.size());

  for (const idx_t r : coo.row) {
    assert(r >= 0 && r < coo.rows);
    ++csr.row_ptr[static_cast<std::size_t>(r) + 1];
  }
  for (std::size_t r = 0; r < static_cast<std::size_t>(coo.rows); ++r) {
    csr.row_ptr[r + 1] += csr.row_ptr[r];
  }
  std::vector<nnz_t> cursor(csr.row_ptr.begin(), csr.row_ptr.end() - 1);
  for (std::size_t k = 0; k < coo.val.size(); ++k) {
    const auto r = static_cast<std::size_t>(coo.row[k]);
    const auto at = static_cast<std::size_t>(cursor[r]++);
    csr.col_ind[at] = coo.col[k];
    csr.vals[at] = coo.val[k];
  }
  return csr;
}

CscMatrix csr_to_csc(const CsrMatrix& csr) {
  CscMatrix csc;
  csc.rows = csr.rows;
  csc.cols = csr.cols;
  csc.col_ptr.assign(static_cast<std::size_t>(csr.cols) + 1, 0);
  csc.row_ind.resize(csr.vals.size());
  csc.vals.resize(csr.vals.size());

  for (const idx_t c : csr.col_ind) {
    assert(c >= 0 && c < csr.cols);
    ++csc.col_ptr[static_cast<std::size_t>(c) + 1];
  }
  for (std::size_t c = 0; c < static_cast<std::size_t>(csr.cols); ++c) {
    csc.col_ptr[c + 1] += csc.col_ptr[c];
  }
  std::vector<nnz_t> cursor(csc.col_ptr.begin(), csc.col_ptr.end() - 1);
  for (idx_t r = 0; r < csr.rows; ++r) {
    const auto lo = csr.row_ptr[static_cast<std::size_t>(r)];
    const auto hi = csr.row_ptr[static_cast<std::size_t>(r) + 1];
    for (nnz_t k = lo; k < hi; ++k) {
      const auto c = static_cast<std::size_t>(csr.col_ind[static_cast<std::size_t>(k)]);
      const auto at = static_cast<std::size_t>(cursor[c]++);
      csc.row_ind[at] = r;
      csc.vals[at] = csr.vals[static_cast<std::size_t>(k)];
    }
  }
  return csc;
}

CsrMatrix transpose(const CsrMatrix& csr) {
  return csc_as_csr_of_transpose(csr_to_csc(csr));
}

CsrMatrix csc_as_csr_of_transpose(CscMatrix&& csc) {
  CsrMatrix out;
  out.rows = csc.cols;
  out.cols = csc.rows;
  out.row_ptr = std::move(csc.col_ptr);
  out.col_ind = std::move(csc.row_ind);
  out.vals = std::move(csc.vals);
  return out;
}

std::vector<real_t> to_dense(const CsrMatrix& csr) {
  std::vector<real_t> dense(static_cast<std::size_t>(csr.rows) *
                                static_cast<std::size_t>(csr.cols),
                            real_t{0});
  for (idx_t r = 0; r < csr.rows; ++r) {
    const auto cols = csr.row_cols(r);
    const auto vals = csr.row_vals(r);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      dense[static_cast<std::size_t>(r) * static_cast<std::size_t>(csr.cols) +
            static_cast<std::size_t>(cols[k])] += vals[k];
    }
  }
  return dense;
}

}  // namespace cumf::sparse
