#pragma once

// Coordinate-format sparse matrix. This is the ingestion format: generators
// emit COO triples, which are then compiled into CSR/CSC for the solvers.

#include <vector>

#include "util/types.hpp"

namespace cumf::sparse {

struct CooMatrix {
  idx_t rows = 0;
  idx_t cols = 0;
  std::vector<idx_t> row;
  std::vector<idx_t> col;
  std::vector<real_t> val;

  [[nodiscard]] nnz_t nnz() const { return static_cast<nnz_t>(val.size()); }

  void reserve(nnz_t n) {
    row.reserve(static_cast<std::size_t>(n));
    col.reserve(static_cast<std::size_t>(n));
    val.reserve(static_cast<std::size_t>(n));
  }

  void push_back(idx_t r, idx_t c, real_t v) {
    row.push_back(r);
    col.push_back(c);
    val.push_back(v);
  }
};

}  // namespace cumf::sparse
