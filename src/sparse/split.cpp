#include "sparse/split.hpp"

#include <vector>

namespace cumf::sparse {

TrainTestSplit split_ratings(const CooMatrix& all, double test_fraction,
                             util::Rng& rng) {
  TrainTestSplit out;
  out.train.rows = out.test.rows = all.rows;
  out.train.cols = out.test.cols = all.cols;

  // Count entries per row so we can cap the held-out share at degree - 1.
  std::vector<nnz_t> degree(static_cast<std::size_t>(all.rows), 0);
  for (const idx_t r : all.row) ++degree[static_cast<std::size_t>(r)];
  std::vector<nnz_t> held(static_cast<std::size_t>(all.rows), 0);

  const auto n = all.val.size();
  out.train.reserve(static_cast<nnz_t>(n));
  for (std::size_t k = 0; k < n; ++k) {
    const auto r = static_cast<std::size_t>(all.row[k]);
    const bool can_hold = held[r] + 1 < degree[r];
    if (can_hold && rng.next_double() < test_fraction) {
      out.test.push_back(all.row[k], all.col[k], all.val[k]);
      ++held[r];
    } else {
      out.train.push_back(all.row[k], all.col[k], all.val[k]);
    }
  }
  return out;
}

}  // namespace cumf::sparse
