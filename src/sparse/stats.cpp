#include "sparse/stats.hpp"

#include <algorithm>
#include <cmath>

namespace cumf::sparse {

namespace {
DegreeStats stats_of(const std::vector<nnz_t>& degrees) {
  DegreeStats s;
  if (degrees.empty()) return s;
  s.min = *std::min_element(degrees.begin(), degrees.end());
  s.max = *std::max_element(degrees.begin(), degrees.end());
  double sum = 0.0, sum2 = 0.0;
  std::size_t empty = 0;
  for (const nnz_t d : degrees) {
    sum += static_cast<double>(d);
    sum2 += static_cast<double>(d) * static_cast<double>(d);
    if (d == 0) ++empty;
  }
  const double n = static_cast<double>(degrees.size());
  s.mean = sum / n;
  s.stddev = std::sqrt(std::max(0.0, sum2 / n - s.mean * s.mean));
  s.empty_fraction = static_cast<double>(empty) / n;
  return s;
}
}  // namespace

std::vector<nnz_t> row_degrees(const CsrMatrix& R) {
  std::vector<nnz_t> d(static_cast<std::size_t>(R.rows));
  for (idx_t r = 0; r < R.rows; ++r) d[static_cast<std::size_t>(r)] = R.row_nnz(r);
  return d;
}

std::vector<nnz_t> col_degrees(const CsrMatrix& R) {
  std::vector<nnz_t> d(static_cast<std::size_t>(R.cols), 0);
  for (const idx_t c : R.col_ind) ++d[static_cast<std::size_t>(c)];
  return d;
}

DegreeStats row_degree_stats(const CsrMatrix& R) { return stats_of(row_degrees(R)); }

DegreeStats col_degree_stats(const CsrMatrix& R) { return stats_of(col_degrees(R)); }

double density(const CsrMatrix& R) {
  if (R.rows == 0 || R.cols == 0) return 0.0;
  return static_cast<double>(R.nnz()) /
         (static_cast<double>(R.rows) * static_cast<double>(R.cols));
}

}  // namespace cumf::sparse
