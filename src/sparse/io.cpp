#include "sparse/io.hpp"

#include <cstring>
#include <stdexcept>

#include "util/binary_io.hpp"

namespace cumf::sparse {

namespace {
constexpr std::uint32_t kCsrTag = 0x43535231;  // "CSR1"

struct CsrHeader {
  idx_t rows;
  idx_t cols;
  nnz_t nnz;
};
}  // namespace

void save_csr(const std::string& path, const CsrMatrix& csr) {
  const std::size_t rp_bytes = csr.row_ptr.size() * sizeof(nnz_t);
  const std::size_t ci_bytes = csr.col_ind.size() * sizeof(idx_t);
  const std::size_t va_bytes = csr.vals.size() * sizeof(real_t);
  std::vector<std::byte> payload(sizeof(CsrHeader) + rp_bytes + ci_bytes +
                                 va_bytes);
  const CsrHeader hdr{csr.rows, csr.cols, csr.nnz()};
  std::byte* at = payload.data();
  std::memcpy(at, &hdr, sizeof(hdr));
  at += sizeof(hdr);
  std::memcpy(at, csr.row_ptr.data(), rp_bytes);
  at += rp_bytes;
  std::memcpy(at, csr.col_ind.data(), ci_bytes);
  at += ci_bytes;
  std::memcpy(at, csr.vals.data(), va_bytes);
  util::write_blob(path, kCsrTag, payload);
}

CsrMatrix load_csr(const std::string& path) {
  const std::vector<std::byte> payload = util::read_blob(path, kCsrTag);
  if (payload.size() < sizeof(CsrHeader)) {
    throw std::runtime_error("load_csr: truncated " + path);
  }
  CsrHeader hdr{};
  std::memcpy(&hdr, payload.data(), sizeof(hdr));
  CsrMatrix csr;
  csr.rows = hdr.rows;
  csr.cols = hdr.cols;
  csr.row_ptr.resize(static_cast<std::size_t>(hdr.rows) + 1);
  csr.col_ind.resize(static_cast<std::size_t>(hdr.nnz));
  csr.vals.resize(static_cast<std::size_t>(hdr.nnz));
  const std::size_t rp_bytes = csr.row_ptr.size() * sizeof(nnz_t);
  const std::size_t ci_bytes = csr.col_ind.size() * sizeof(idx_t);
  const std::size_t va_bytes = csr.vals.size() * sizeof(real_t);
  if (payload.size() != sizeof(hdr) + rp_bytes + ci_bytes + va_bytes) {
    throw std::runtime_error("load_csr: size mismatch in " + path);
  }
  const std::byte* at = payload.data() + sizeof(hdr);
  std::memcpy(csr.row_ptr.data(), at, rp_bytes);
  at += rp_bytes;
  std::memcpy(csr.col_ind.data(), at, ci_bytes);
  at += ci_bytes;
  std::memcpy(csr.vals.data(), at, va_bytes);
  return csr;
}

}  // namespace cumf::sparse
