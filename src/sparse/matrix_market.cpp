#include "sparse/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace cumf::sparse {

namespace {
std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}
}  // namespace

CooMatrix load_matrix_market(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_matrix_market: cannot open " + path);

  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("load_matrix_market: empty file " + path);
  }
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket" || lower(object) != "matrix" ||
      lower(format) != "coordinate") {
    throw std::runtime_error("load_matrix_market: unsupported header in " +
                             path);
  }
  field = lower(field);
  symmetry = lower(symmetry);
  const bool pattern = field == "pattern";
  if (!pattern && field != "real" && field != "integer") {
    throw std::runtime_error("load_matrix_market: unsupported field " + field);
  }
  const bool symmetric = symmetry == "symmetric";
  if (!symmetric && symmetry != "general") {
    throw std::runtime_error("load_matrix_market: unsupported symmetry " +
                             symmetry);
  }

  // Skip comments, read the size line.
  do {
    if (!std::getline(in, line)) {
      throw std::runtime_error("load_matrix_market: missing size line");
    }
  } while (!line.empty() && line[0] == '%');

  long long rows = 0, cols = 0, nnz = 0;
  {
    std::istringstream size_line(line);
    if (!(size_line >> rows >> cols >> nnz) || rows < 0 || cols < 0 ||
        nnz < 0) {
      throw std::runtime_error("load_matrix_market: bad size line");
    }
  }

  CooMatrix coo;
  coo.rows = static_cast<idx_t>(rows);
  coo.cols = static_cast<idx_t>(cols);
  coo.reserve(symmetric ? 2 * nnz : nnz);
  for (long long k = 0; k < nnz; ++k) {
    long long i = 0, j = 0;
    double v = 1.0;
    if (!(in >> i >> j)) {
      throw std::runtime_error("load_matrix_market: truncated entries");
    }
    if (!pattern && !(in >> v)) {
      throw std::runtime_error("load_matrix_market: missing value");
    }
    if (i < 1 || i > rows || j < 1 || j > cols) {
      throw std::runtime_error("load_matrix_market: index out of range");
    }
    coo.push_back(static_cast<idx_t>(i - 1), static_cast<idx_t>(j - 1),
                  static_cast<real_t>(v));
    if (symmetric && i != j) {
      coo.push_back(static_cast<idx_t>(j - 1), static_cast<idx_t>(i - 1),
                    static_cast<real_t>(v));
    }
  }
  return coo;
}

void save_matrix_market(const std::string& path, const CooMatrix& coo) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_matrix_market: cannot open " + path);
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << "% written by cumf\n";
  out << coo.rows << ' ' << coo.cols << ' ' << coo.nnz() << '\n';
  out.precision(9);
  for (std::size_t k = 0; k < coo.val.size(); ++k) {
    out << (coo.row[k] + 1) << ' ' << (coo.col[k] + 1) << ' ' << coo.val[k]
        << '\n';
  }
  if (!out) throw std::runtime_error("save_matrix_market: write failed");
}

}  // namespace cumf::sparse
