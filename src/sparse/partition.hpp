#pragma once

// Partitioners for SU-ALS (Algorithm 3, lines 2-4):
//   VerticalPartition(Θᵀ, p)  — Θᵀ split evenly by columns across p devices;
//   HorizontalPartition(X, q) — X split evenly by rows into q batches;
//   GridPartition(R, p, q)    — R split into p×q blocks following the two.
//
// A grid block R(ij) holds the ratings of X-batch j restricted to the column
// range owned by device i, with *local* indices so device kernels never see
// global coordinates. Offsets are retained for reassembly.

#include <vector>

#include "sparse/csr.hpp"
#include "util/types.hpp"

namespace cumf::sparse {

/// Contiguous [begin, end) range of global row or column indices.
struct Range {
  idx_t begin = 0;
  idx_t end = 0;
  [[nodiscard]] idx_t size() const { return end - begin; }
  [[nodiscard]] bool contains(idx_t v) const { return v >= begin && v < end; }
};

/// Splits [0, extent) into `parts` near-equal contiguous ranges.
/// Earlier ranges get the remainder (sizes differ by at most one).
std::vector<Range> split_even(idx_t extent, int parts);

/// One block of the p×q grid. Ratings are stored as a CSR with local row
/// indices in [0, row_range.size()) and local column indices in
/// [0, col_range.size()).
struct GridBlock {
  Range row_range;   // global rows covered (an X batch)
  Range col_range;   // global cols covered (a Θ partition)
  CsrMatrix local;   // local-index CSR of the covered ratings
};

/// Full grid partition of R. Blocks are indexed [i*q + j] for Θ-partition i
/// (0-based, i < p) and X-batch j (j < q), mirroring R(ij) in the paper.
struct GridPartition {
  int p = 1;
  int q = 1;
  std::vector<Range> col_ranges;  // size p, over R's columns
  std::vector<Range> row_ranges;  // size q, over R's rows
  std::vector<GridBlock> blocks;  // size p*q

  [[nodiscard]] const GridBlock& block(int i, int j) const {
    return blocks[static_cast<std::size_t>(i) * static_cast<std::size_t>(q) +
                  static_cast<std::size_t>(j)];
  }
};

/// Builds the p×q grid partition of `R` (one pass over the nonzeros per
/// block row, two passes total).
GridPartition grid_partition(const CsrMatrix& R, int p, int q);

/// Sanity check used by tests: the blocks exactly tile R's nonzeros.
bool partition_covers(const CsrMatrix& R, const GridPartition& part);

}  // namespace cumf::sparse
