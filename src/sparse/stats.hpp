#pragma once

// Degree statistics of a rating matrix. The paper leans on these repeatedly:
// n_{x_u} (ratings per user) sizes the weighted-λ regularization and the
// get_hermitian cost; sparsity skew explains why YahooMusic gains less from
// the register/texture optimizations than Netflix (§5.3).

#include <vector>

#include "sparse/csr.hpp"
#include "util/types.hpp"

namespace cumf::sparse {

struct DegreeStats {
  nnz_t min = 0;
  nnz_t max = 0;
  double mean = 0.0;
  double stddev = 0.0;
  /// Fraction of rows (or cols) with zero entries.
  double empty_fraction = 0.0;
};

DegreeStats row_degree_stats(const CsrMatrix& R);
DegreeStats col_degree_stats(const CsrMatrix& R);

/// Per-row nonzero counts n_{x_u}.
std::vector<nnz_t> row_degrees(const CsrMatrix& R);

/// Per-column nonzero counts n_{θ_v}.
std::vector<nnz_t> col_degrees(const CsrMatrix& R);

/// Density Nz / (m·n).
double density(const CsrMatrix& R);

}  // namespace cumf::sparse
