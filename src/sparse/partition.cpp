#include "sparse/partition.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace cumf::sparse {

std::vector<Range> split_even(idx_t extent, int parts) {
  if (parts <= 0) throw std::invalid_argument("split_even: parts must be > 0");
  std::vector<Range> out(static_cast<std::size_t>(parts));
  const idx_t base = extent / parts;
  const idx_t rem = extent % parts;
  idx_t at = 0;
  for (int i = 0; i < parts; ++i) {
    const idx_t len = base + (i < rem ? 1 : 0);
    out[static_cast<std::size_t>(i)] = Range{at, at + len};
    at += len;
  }
  return out;
}

namespace {
/// Locates the partition owning global column c given even split ranges.
int owner_of(const std::vector<Range>& ranges, idx_t c) {
  // Even split: sizes differ by at most 1, so direct arithmetic beats a
  // binary search. Derive from the first range's size pattern.
  const auto parts = static_cast<int>(ranges.size());
  const idx_t extent = ranges.back().end;
  const idx_t base = extent / parts;
  const idx_t rem = extent % parts;
  const idx_t fat_span = (base + 1) * rem;  // region covered by the +1 ranges
  int guess;
  if (base == 0) {
    guess = (c < fat_span) ? static_cast<int>(c) : parts - 1;
  } else if (c < fat_span) {
    guess = static_cast<int>(c / (base + 1));
  } else {
    guess = static_cast<int>(rem + (c - fat_span) / base);
  }
  guess = std::clamp(guess, 0, parts - 1);
  assert(ranges[static_cast<std::size_t>(guess)].contains(c));
  return guess;
}
}  // namespace

GridPartition grid_partition(const CsrMatrix& R, int p, int q) {
  if (p <= 0 || q <= 0) {
    throw std::invalid_argument("grid_partition: p and q must be > 0");
  }
  GridPartition part;
  part.p = p;
  part.q = q;
  part.col_ranges = split_even(R.cols, p);
  part.row_ranges = split_even(R.rows, q);
  part.blocks.resize(static_cast<std::size_t>(p) * static_cast<std::size_t>(q));

  for (int i = 0; i < p; ++i) {
    for (int j = 0; j < q; ++j) {
      auto& blk = part.blocks[static_cast<std::size_t>(i) * q + j];
      blk.row_range = part.row_ranges[static_cast<std::size_t>(j)];
      blk.col_range = part.col_ranges[static_cast<std::size_t>(i)];
      blk.local.rows = blk.row_range.size();
      blk.local.cols = blk.col_range.size();
      blk.local.row_ptr.assign(static_cast<std::size_t>(blk.local.rows) + 1, 0);
    }
  }

  // Pass 1: count nonzeros per (block, local row).
  for (int j = 0; j < q; ++j) {
    const Range rows = part.row_ranges[static_cast<std::size_t>(j)];
    for (idx_t r = rows.begin; r < rows.end; ++r) {
      for (const idx_t c : R.row_cols(r)) {
        const int i = owner_of(part.col_ranges, c);
        auto& blk = part.blocks[static_cast<std::size_t>(i) * q + j];
        ++blk.local.row_ptr[static_cast<std::size_t>(r - rows.begin) + 1];
      }
    }
  }
  for (auto& blk : part.blocks) {
    for (std::size_t r = 0; r < static_cast<std::size_t>(blk.local.rows); ++r) {
      blk.local.row_ptr[r + 1] += blk.local.row_ptr[r];
    }
    blk.local.col_ind.resize(static_cast<std::size_t>(blk.local.row_ptr.back()));
    blk.local.vals.resize(static_cast<std::size_t>(blk.local.row_ptr.back()));
  }

  // Pass 2: scatter values with per-block cursors.
  std::vector<std::vector<nnz_t>> cursors(part.blocks.size());
  for (std::size_t b = 0; b < part.blocks.size(); ++b) {
    const auto& rp = part.blocks[b].local.row_ptr;
    cursors[b].assign(rp.begin(), rp.end() - 1);
  }
  for (int j = 0; j < q; ++j) {
    const Range rows = part.row_ranges[static_cast<std::size_t>(j)];
    for (idx_t r = rows.begin; r < rows.end; ++r) {
      const auto cols = R.row_cols(r);
      const auto vals = R.row_vals(r);
      for (std::size_t k = 0; k < cols.size(); ++k) {
        const int i = owner_of(part.col_ranges, cols[k]);
        const std::size_t b = static_cast<std::size_t>(i) * q + j;
        auto& blk = part.blocks[b];
        const auto at = static_cast<std::size_t>(
            cursors[b][static_cast<std::size_t>(r - rows.begin)]++);
        blk.local.col_ind[at] = cols[k] - blk.col_range.begin;
        blk.local.vals[at] = vals[k];
      }
    }
  }
  return part;
}

bool partition_covers(const CsrMatrix& R, const GridPartition& part) {
  nnz_t total = 0;
  for (const auto& blk : part.blocks) total += blk.local.nnz();
  if (total != R.nnz()) return false;

  // Spot-check: reconstruct every nonzero through the block it landed in.
  for (const auto& blk : part.blocks) {
    for (idx_t lr = 0; lr < blk.local.rows; ++lr) {
      const idx_t gr = blk.row_range.begin + lr;
      const auto lcols = blk.local.row_cols(lr);
      const auto lvals = blk.local.row_vals(lr);
      const auto gcols = R.row_cols(gr);
      const auto gvals = R.row_vals(gr);
      for (std::size_t k = 0; k < lcols.size(); ++k) {
        const idx_t gc = blk.col_range.begin + lcols[k];
        bool found = false;
        for (std::size_t g = 0; g < gcols.size(); ++g) {
          if (gcols[g] == gc && gvals[g] == lvals[k]) {
            found = true;
            break;
          }
        }
        if (!found) return false;
      }
    }
  }
  return true;
}

}  // namespace cumf::sparse
