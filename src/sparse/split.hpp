#pragma once

// Train/test split of rating data, used by the convergence experiments
// (Figures 6-10 evaluate test RMSE on a held-out set).

#include <utility>

#include "sparse/coo.hpp"
#include "util/rng.hpp"

namespace cumf::sparse {

struct TrainTestSplit {
  CooMatrix train;
  CooMatrix test;
};

/// Holds out ~`test_fraction` of each row's ratings uniformly at random,
/// never removing a row's last remaining training rating (a user with no
/// training ratings would make its x_u unconstrained).
TrainTestSplit split_ratings(const CooMatrix& all, double test_fraction,
                             util::Rng& rng);

}  // namespace cumf::sparse
