#pragma once

// Disk (de)serialization of CSR matrices, used by the out-of-core block
// store and anyone persisting generated workloads.

#include <string>

#include "sparse/csr.hpp"

namespace cumf::sparse {

void save_csr(const std::string& path, const CsrMatrix& csr);
CsrMatrix load_csr(const std::string& path);

}  // namespace cumf::sparse
