#include "baselines/fpsgd.hpp"

#include <cmath>
#include <condition_variable>
#include <mutex>
#include <vector>

#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace cumf::baselines {

FpsgdSgd::FpsgdSgd(const sparse::CsrMatrix& train, SgdOptions opt)
    : train_(train), opt_(opt),
      grid_(sparse::grid_partition(train, opt.threads + 1, opt.threads + 1)),
      x_(train.rows, opt.f), theta_(train.cols, opt.f), lr_(opt.lr) {
  util::Rng rng(opt_.seed);
  const real_t scale = opt_.effective_init_scale();
  x_.randomize(rng, scale);
  theta_.randomize(rng, scale);
}

void FpsgdSgd::process_block(const sparse::GridBlock& blk, real_t lr) {
  const int f = opt_.f;
  for (idx_t lr_row = 0; lr_row < blk.local.rows; ++lr_row) {
    const idx_t u = blk.row_range.begin + lr_row;
    const auto cols = blk.local.row_cols(lr_row);
    const auto vals = blk.local.row_vals(lr_row);
    real_t* xu = x_.row(u);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const idx_t v = blk.col_range.begin + cols[k];
      sgd_update(xu, theta_.row(v), vals[k], lr, opt_.lambda, f);
    }
  }
}

void FpsgdSgd::run_epoch() {
  const int g = grid_.p;  // (threads+1) × (threads+1) grid
  const auto total_blocks = static_cast<std::size_t>(g) * static_cast<std::size_t>(g);

  // The libMF scheduler: a worker takes any unprocessed block whose row and
  // column stripes are free; conflict-freedom makes the inner loop lock-free.
  std::mutex mu;
  std::condition_variable cv;
  std::vector<char> done(total_blocks, 0);
  std::vector<char> row_busy(static_cast<std::size_t>(g), 0);
  std::vector<char> col_busy(static_cast<std::size_t>(g), 0);
  std::size_t remaining = total_blocks;
  const real_t lr = lr_;

  auto worker = [&] {
    std::unique_lock lock(mu);
    for (;;) {
      if (remaining == 0) return;
      int pick_i = -1, pick_j = -1;
      for (int i = 0; i < g && pick_i < 0; ++i) {
        if (col_busy[static_cast<std::size_t>(i)]) continue;
        for (int j = 0; j < g; ++j) {
          if (row_busy[static_cast<std::size_t>(j)]) continue;
          if (!done[static_cast<std::size_t>(i) * g + j]) {
            pick_i = i;
            pick_j = j;
            break;
          }
        }
      }
      if (pick_i < 0) {
        cv.wait(lock);
        continue;
      }
      done[static_cast<std::size_t>(pick_i) * g + pick_j] = 1;
      col_busy[static_cast<std::size_t>(pick_i)] = 1;
      row_busy[static_cast<std::size_t>(pick_j)] = 1;
      --remaining;
      lock.unlock();
      process_block(grid_.block(pick_i, pick_j), lr);
      lock.lock();
      col_busy[static_cast<std::size_t>(pick_i)] = 0;
      row_busy[static_cast<std::size_t>(pick_j)] = 0;
      cv.notify_all();
    }
  };

  auto& pool = util::ThreadPool::global();
  std::mutex wait_mu;
  std::condition_variable wait_cv;
  int live = opt_.threads;
  for (int t = 0; t < opt_.threads - 1; ++t) {
    pool.submit([&] {
      worker();
      std::lock_guard g2(wait_mu);
      if (--live == 1) wait_cv.notify_all();  // caller counts as the last one
    });
  }
  worker();  // the caller participates so progress never stalls
  {
    std::unique_lock lk(wait_mu);
    wait_cv.wait(lk, [&] { return live == 1; });
  }

  samples_ += static_cast<double>(train_.nnz());
  lr_ *= opt_.lr_decay;
  ++epochs_run_;
}

BaselineRun FpsgdSgd::train(const sparse::CooMatrix* train_eval,
                            const sparse::CooMatrix* test_eval,
                            const std::string& label) {
  BaselineRun run;
  run.history.label = label;
  auto snapshot = [&](int epoch, double wall) {
    eval::ConvergencePoint pt;
    pt.iteration = epoch;
    pt.wall_seconds = wall;
    pt.train_rmse = train_eval ? eval::rmse(*train_eval, x_, theta_) : 0.0;
    pt.test_rmse = test_eval ? eval::rmse(*test_eval, x_, theta_) : 0.0;
    run.history.add(pt);
  };
  snapshot(0, 0.0);
  double wall = 0.0;
  for (int e = 1; e <= opt_.epochs; ++e) {
    util::Stopwatch sw;
    run_epoch();
    wall += sw.seconds();
    snapshot(e, wall);
  }
  run.samples_processed = samples_;
  return run;
}

}  // namespace cumf::baselines
