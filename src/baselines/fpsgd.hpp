#pragma once

// FPSGD — the libMF baseline (§5.2, [36]).
//
// libMF partitions R into a (t+1)×(t+1) grid of blocks; a scheduler hands
// each worker a block whose row range and column range are not currently in
// use by any other worker, so blocks never conflict and no locking is needed
// inside the SGD inner loop. Per epoch every block is processed exactly once;
// the scheduler prefers less-processed blocks to keep the pass balanced.

#include "baselines/sgd_common.hpp"
#include "sparse/partition.hpp"

namespace cumf::baselines {

class FpsgdSgd {
 public:
  FpsgdSgd(const sparse::CsrMatrix& train, SgdOptions opt);

  void run_epoch();

  [[nodiscard]] const linalg::FactorMatrix& x() const { return x_; }
  [[nodiscard]] const linalg::FactorMatrix& theta() const { return theta_; }
  [[nodiscard]] int grid_dim() const { return grid_.p; }

  BaselineRun train(const sparse::CooMatrix* train_eval,
                    const sparse::CooMatrix* test_eval,
                    const std::string& label);

 private:
  void process_block(const sparse::GridBlock& blk, real_t lr);

  const sparse::CsrMatrix& train_;
  SgdOptions opt_;
  sparse::GridPartition grid_;
  linalg::FactorMatrix x_;
  linalg::FactorMatrix theta_;
  real_t lr_;
  int epochs_run_ = 0;
  double samples_ = 0.0;
};

}  // namespace cumf::baselines
