#pragma once

// HOGWILD!-style lock-free parallel SGD (§6.2): every worker applies eq.-(4)
// updates to the shared factors without synchronization. On sparse problems
// conflicting touches are rare enough that convergence survives; this is the
// conceptual ancestor of libMF and NOMAD and serves as the simplest SGD
// baseline.

#include "baselines/sgd_common.hpp"
#include "util/thread_pool.hpp"

namespace cumf::baselines {

class HogwildSgd {
 public:
  HogwildSgd(const sparse::CooMatrix& train, SgdOptions opt);

  /// One pass over all ratings (workers stripe the shuffled sample order).
  void run_epoch();

  [[nodiscard]] const linalg::FactorMatrix& x() const { return x_; }
  [[nodiscard]] const linalg::FactorMatrix& theta() const { return theta_; }
  [[nodiscard]] int epochs_run() const { return epochs_run_; }

  /// Full training loop with per-epoch RMSE evaluation.
  BaselineRun train(const sparse::CooMatrix* train_eval,
                    const sparse::CooMatrix* test_eval,
                    const std::string& label);

 private:
  const sparse::CooMatrix& train_;
  SgdOptions opt_;
  linalg::FactorMatrix x_;
  linalg::FactorMatrix theta_;
  std::vector<nnz_t> order_;
  real_t lr_;
  int epochs_run_ = 0;
};

}  // namespace cumf::baselines
