#pragma once

// NOMAD — non-locking, decentralized SGD ([33], §5.2/§5.4).
//
// Rows are statically partitioned across workers. Item columns are the unit
// of ownership and circulate: a worker pops a column token from its queue,
// applies eq.-(4) updates for every rating of that column falling in its row
// range, and passes the token to the next worker. A column finishes an epoch
// once every worker has seen it. No factor entry is ever touched by two
// workers at once (x rows are worker-private, θ_v travels with its token), so
// the algorithm needs no locks — only the token queues synchronize.

#include <atomic>
#include <deque>
#include <mutex>
#include <vector>

#include "baselines/sgd_common.hpp"

namespace cumf::baselines {

class NomadSgd {
 public:
  NomadSgd(const sparse::CsrMatrix& train, SgdOptions opt);

  void run_epoch();

  [[nodiscard]] const linalg::FactorMatrix& x() const { return x_; }
  [[nodiscard]] const linalg::FactorMatrix& theta() const { return theta_; }

  BaselineRun train(const sparse::CooMatrix* train_eval,
                    const sparse::CooMatrix* test_eval,
                    const std::string& label);

 private:
  struct TokenQueue {
    std::mutex mu;
    std::deque<idx_t> cols;
  };

  void worker_loop(int w, real_t lr, std::atomic<nnz_t>& hops_done,
                   nnz_t total_hops);

  const sparse::CsrMatrix& train_;
  SgdOptions opt_;
  linalg::FactorMatrix x_;
  linalg::FactorMatrix theta_;
  real_t lr_;
  int epochs_run_ = 0;
  double samples_ = 0.0;

  // Column-major view: ratings of column v grouped by owning worker.
  // col_rows_/col_vals_ hold column v's entries sorted by row at
  // [col_ptr_[v], col_ptr_[v+1]); col_worker_off_[v*(T+1)+w] marks worker w's
  // segment inside that span.
  std::vector<nnz_t> col_ptr_;
  std::vector<idx_t> col_rows_;
  std::vector<real_t> col_vals_;
  std::vector<nnz_t> col_worker_off_;
  std::vector<idx_t> row_boundaries_;  // worker w owns rows [b[w], b[w+1])

  std::vector<TokenQueue> queues_;
  std::vector<int> visits_;  // per-column hop count within the epoch
};

}  // namespace cumf::baselines
