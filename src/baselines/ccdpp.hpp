#pragma once

// CCD++ — cyclic coordinate descent baseline ([32], §6.2).
//
// CCD++ sweeps the latent features one at a time: for feature k it removes
// the rank-one term x_{*k}·θ_{*k}ᵀ from the residual, then alternately
// refreshes the two coordinate vectors in closed form,
//   x_uk = Σ_v ê_uv·θ_vk / (λ + Σ_v θ_vk²),
// and folds the updated term back in. Lower per-sweep cost than ALS but less
// progress per sweep — the related-work section notes it "behaves well in the
// early stage of optimization, but then becomes slower than libMF", a shape
// our benches reproduce.

#include "baselines/sgd_common.hpp"
#include "sparse/csr.hpp"

namespace cumf::baselines {

struct CcdOptions {
  int f = 32;
  real_t lambda = 0.05f;
  int outer_sweeps = 10;   // full passes over the f features
  int inner_iters = 2;     // x/θ refinements per feature per sweep
  std::uint64_t seed = 321;
};

class CcdPlusPlus {
 public:
  CcdPlusPlus(const sparse::CsrMatrix& train, CcdOptions opt);

  /// One outer sweep over all f features.
  void run_sweep();

  [[nodiscard]] const linalg::FactorMatrix& x() const { return x_; }
  [[nodiscard]] const linalg::FactorMatrix& theta() const { return theta_; }

  eval::ConvergenceHistory train(const sparse::CooMatrix* train_eval,
                                 const sparse::CooMatrix* test_eval,
                                 const std::string& label);

 private:
  const sparse::CsrMatrix& train_;
  CcdOptions opt_;
  linalg::FactorMatrix x_;
  linalg::FactorMatrix theta_;

  // Residuals e_uv = r_uv - x_uᵀθ_v, stored in CSR order; csc_of_csr_ maps
  // each CSC position to its CSR position so both orientations share them.
  std::vector<real_t> residual_;
  std::vector<nnz_t> col_ptr_;
  std::vector<idx_t> col_rows_;
  std::vector<nnz_t> csc_to_csr_;
  int sweeps_run_ = 0;
};

}  // namespace cumf::baselines
