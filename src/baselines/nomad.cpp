#include "baselines/nomad.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <thread>

#include "sparse/csr.hpp"
#include "sparse/partition.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace cumf::baselines {

NomadSgd::NomadSgd(const sparse::CsrMatrix& train, SgdOptions opt)
    : train_(train), opt_(opt), x_(train.rows, opt.f),
      theta_(train.cols, opt.f), lr_(opt.lr),
      queues_(static_cast<std::size_t>(opt.threads)),
      visits_(static_cast<std::size_t>(train.cols), 0) {
  util::Rng rng(opt_.seed);
  const real_t scale = opt_.effective_init_scale();
  x_.randomize(rng, scale);
  theta_.randomize(rng, scale);

  // Column-major ratings with per-worker segment offsets.
  const sparse::CscMatrix csc = sparse::csr_to_csc(train);
  col_ptr_ = csc.col_ptr;
  col_rows_ = csc.row_ind;
  col_vals_ = csc.vals;

  const int T = opt_.threads;
  const auto ranges = sparse::split_even(train.rows, T);
  row_boundaries_.resize(static_cast<std::size_t>(T) + 1);
  for (int w = 0; w < T; ++w) {
    row_boundaries_[static_cast<std::size_t>(w)] = ranges[static_cast<std::size_t>(w)].begin;
  }
  row_boundaries_[static_cast<std::size_t>(T)] = train.rows;

  // off[v][w] = first entry of column v with row >= b[w]; worker w's segment
  // is [off[v][w], off[v][w+1]) (CSC keeps rows sorted, so it's contiguous).
  col_worker_off_.resize(static_cast<std::size_t>(train.cols) * (T + 1));
  for (idx_t v = 0; v < train.cols; ++v) {
    const auto lo = static_cast<std::size_t>(col_ptr_[static_cast<std::size_t>(v)]);
    const auto hi = static_cast<std::size_t>(col_ptr_[static_cast<std::size_t>(v) + 1]);
    for (int w = 0; w <= T; ++w) {
      const idx_t bound = row_boundaries_[static_cast<std::size_t>(w)];
      const auto it = std::lower_bound(col_rows_.begin() + static_cast<std::ptrdiff_t>(lo),
                                       col_rows_.begin() + static_cast<std::ptrdiff_t>(hi),
                                       bound);
      col_worker_off_[static_cast<std::size_t>(v) * (T + 1) + w] =
          static_cast<nnz_t>(it - col_rows_.begin());
    }
  }
}

void NomadSgd::worker_loop(int w, real_t lr, std::atomic<nnz_t>& hops_done,
                           nnz_t total_hops) {
  const int T = opt_.threads;
  const int f = opt_.f;
  auto& my_queue = queues_[static_cast<std::size_t>(w)];
  while (hops_done.load(std::memory_order_acquire) < total_hops) {
    idx_t v = -1;
    {
      std::lock_guard lock(my_queue.mu);
      if (!my_queue.cols.empty()) {
        v = my_queue.cols.front();
        my_queue.cols.pop_front();
      }
    }
    if (v < 0) {
      std::this_thread::yield();
      continue;
    }
    // Apply this worker's segment of column v.
    const auto seg_lo = static_cast<std::size_t>(
        col_worker_off_[static_cast<std::size_t>(v) * (T + 1) + w]);
    const auto seg_hi = static_cast<std::size_t>(
        col_worker_off_[static_cast<std::size_t>(v) * (T + 1) + w + 1]);
    real_t* tv = theta_.row(v);
    for (std::size_t k = seg_lo; k < seg_hi; ++k) {
      sgd_update(x_.row(col_rows_[k]), tv, col_vals_[k], lr, opt_.lambda, f);
    }
    // Forward the token, or retire it after its T-th visit.
    const int visit = ++visits_[static_cast<std::size_t>(v)];
    if (visit < T) {
      auto& next = queues_[static_cast<std::size_t>((w + 1) % T)];
      std::lock_guard lock(next.mu);
      next.cols.push_back(v);
    }
    hops_done.fetch_add(1, std::memory_order_release);
  }
}

void NomadSgd::run_epoch() {
  const int T = opt_.threads;
  std::fill(visits_.begin(), visits_.end(), 0);
  for (idx_t v = 0; v < train_.cols; ++v) {
    queues_[static_cast<std::size_t>(v % T)].cols.push_back(v);
  }
  std::atomic<nnz_t> hops_done{0};
  const nnz_t total_hops = static_cast<nnz_t>(train_.cols) * T;
  const real_t lr = lr_;

  // Dedicated threads (not the shared pool): every NOMAD worker must be
  // runnable, because tokens forwarded to a never-scheduled worker would
  // stall the ring.
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(T) - 1);
  for (int w = 1; w < T; ++w) {
    workers.emplace_back(
        [&, w] { worker_loop(w, lr, hops_done, total_hops); });
  }
  worker_loop(0, lr, hops_done, total_hops);
  for (auto& t : workers) t.join();

  samples_ += static_cast<double>(train_.nnz());
  lr_ *= opt_.lr_decay;
  ++epochs_run_;
}

BaselineRun NomadSgd::train(const sparse::CooMatrix* train_eval,
                            const sparse::CooMatrix* test_eval,
                            const std::string& label) {
  BaselineRun run;
  run.history.label = label;
  auto snapshot = [&](int epoch, double wall) {
    eval::ConvergencePoint pt;
    pt.iteration = epoch;
    pt.wall_seconds = wall;
    pt.train_rmse = train_eval ? eval::rmse(*train_eval, x_, theta_) : 0.0;
    pt.test_rmse = test_eval ? eval::rmse(*test_eval, x_, theta_) : 0.0;
    run.history.add(pt);
  };
  snapshot(0, 0.0);
  double wall = 0.0;
  for (int e = 1; e <= opt_.epochs; ++e) {
    util::Stopwatch sw;
    run_epoch();
    wall += sw.seconds();
    snapshot(e, wall);
  }
  run.samples_processed = samples_;
  return run;
}

}  // namespace cumf::baselines
