#pragma once

// Shared pieces of the SGD-based baselines (libMF/FPSGD, NOMAD, Hogwild).
//
// These are the systems the paper compares against in §5.2 and §5.4. The SGD
// update is eq. (4):
//   e    = r_uv - x_uᵀθ_v
//   x_u += α (e·θ_v - λ·x_u)
//   θ_v += α (e·x_u - λ·θ_v)
// (using the pre-update x_u on the second line, as in the standard FunkSVD
// formulation the cited systems implement).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>

#include "eval/metrics.hpp"
#include "linalg/dense.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "util/types.hpp"

namespace cumf::baselines {

struct SgdOptions {
  int f = 32;
  real_t lambda = 0.05f;
  real_t lr = 0.05f;        // initial learning rate α
  real_t lr_decay = 0.9f;   // α multiplier per epoch
  int epochs = 10;
  int threads = 4;          // worker count (simulated cores)
  real_t init_scale = 0.0f; // factor init in [0, scale); 0 → 1/sqrt(f)
  std::uint64_t seed = 123;

  [[nodiscard]] real_t effective_init_scale() const {
    if (init_scale > 0) return init_scale;
    return static_cast<real_t>(1.0 / std::sqrt(static_cast<double>(f)));
  }

  /// Rescales lr / init for data whose ratings live on mean `mean` with
  /// variance `var` (YahooMusic's 0-100 scale vs Netflix's 1-5): gradients
  /// scale with the error magnitude, so α must shrink with the variance, and
  /// x·θ should start near the mean.
  void adapt_to_rating_scale(double mean, double var) {
    lr = static_cast<real_t>(std::min(0.05, 0.12 / std::max(1.0, var)));
    lr_decay = 0.97f;  // gentle decay so long runs keep making progress
    init_scale = static_cast<real_t>(
        std::sqrt(std::max(mean, 0.25) / static_cast<double>(f)) * 2.0);
  }
};

/// One SGD update on a single rating (eq. 4). Returns the pre-update error.
inline real_t sgd_update(real_t* xu, real_t* tv, real_t r, real_t lr,
                         real_t lambda, int f) {
  double pred = 0.0;
  for (int k = 0; k < f; ++k) pred += static_cast<double>(xu[k]) * tv[k];
  const real_t e = r - static_cast<real_t>(pred);
  for (int k = 0; k < f; ++k) {
    const real_t xk = xu[k];
    xu[k] += lr * (e * tv[k] - lambda * xk);
    tv[k] += lr * (e * xk - lambda * tv[k]);
  }
  return e;
}

/// Eq.-(4) update restricted to one side. The incremental retraining tier
/// (orchestrate/trainer.hpp) must leave factor rows outside the delta-touched
/// set bit-identical to their warm start, so a rating pairing a touched user
/// with an untouched item updates x_u only (θ_v reads as a constant), and
/// vice versa. With both sides enabled this IS sgd_update. Returns the
/// pre-update error.
inline real_t sgd_update_masked(real_t* xu, real_t* tv, real_t r, real_t lr,
                                real_t lambda, int f, bool update_x,
                                bool update_theta) {
  if (update_x && update_theta) return sgd_update(xu, tv, r, lr, lambda, f);
  double pred = 0.0;
  for (int k = 0; k < f; ++k) pred += static_cast<double>(xu[k]) * tv[k];
  const real_t e = r - static_cast<real_t>(pred);
  if (update_x) {
    for (int k = 0; k < f; ++k) xu[k] += lr * (e * tv[k] - lambda * xu[k]);
  } else if (update_theta) {
    for (int k = 0; k < f; ++k) tv[k] += lr * (e * xu[k] - lambda * tv[k]);
  }
  return e;
}

/// Convergence record plus the traffic stats the machine models need.
struct BaselineRun {
  eval::ConvergenceHistory history;
  double samples_processed = 0.0;  // total SGD updates (Nz × epochs)
};

}  // namespace cumf::baselines
