#include "baselines/ccdpp.hpp"

#include <cmath>

#include "util/rng.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace cumf::baselines {

CcdPlusPlus::CcdPlusPlus(const sparse::CsrMatrix& train, CcdOptions opt)
    : train_(train), opt_(opt), x_(train.rows, opt.f),
      theta_(train.cols, opt.f) {
  util::Rng rng(opt_.seed);
  const auto scale =
      static_cast<real_t>(1.0 / std::sqrt(static_cast<double>(opt_.f)));
  x_.randomize(rng, scale);
  theta_.randomize(rng, scale);

  // CSC index structure with a permutation into CSR positions.
  col_ptr_.assign(static_cast<std::size_t>(train.cols) + 1, 0);
  for (const idx_t c : train.col_ind) ++col_ptr_[static_cast<std::size_t>(c) + 1];
  for (std::size_t c = 0; c < static_cast<std::size_t>(train.cols); ++c) {
    col_ptr_[c + 1] += col_ptr_[c];
  }
  col_rows_.resize(static_cast<std::size_t>(train.nnz()));
  csc_to_csr_.resize(static_cast<std::size_t>(train.nnz()));
  std::vector<nnz_t> cursor(col_ptr_.begin(), col_ptr_.end() - 1);
  for (idx_t r = 0; r < train.rows; ++r) {
    for (nnz_t k = train.row_ptr[static_cast<std::size_t>(r)];
         k < train.row_ptr[static_cast<std::size_t>(r) + 1]; ++k) {
      const auto c =
          static_cast<std::size_t>(train.col_ind[static_cast<std::size_t>(k)]);
      const auto at = static_cast<std::size_t>(cursor[c]++);
      col_rows_[at] = r;
      csc_to_csr_[at] = k;
    }
  }

  // Initial residual: r_uv - x_uᵀθ_v.
  residual_.resize(static_cast<std::size_t>(train.nnz()));
  util::parallel_for_chunks(
      util::ThreadPool::global(), 0, train.rows, [&](nnz_t lo, nnz_t hi) {
        for (nnz_t u = lo; u < hi; ++u) {
          const real_t* xu = x_.row(static_cast<idx_t>(u));
          for (nnz_t k = train.row_ptr[static_cast<std::size_t>(u)];
               k < train.row_ptr[static_cast<std::size_t>(u) + 1]; ++k) {
            const real_t* tv =
                theta_.row(train.col_ind[static_cast<std::size_t>(k)]);
            double pred = 0.0;
            for (int j = 0; j < opt_.f; ++j) {
              pred += static_cast<double>(xu[j]) * tv[j];
            }
            residual_[static_cast<std::size_t>(k)] =
                train.vals[static_cast<std::size_t>(k)] -
                static_cast<real_t>(pred);
          }
        }
      });
}

void CcdPlusPlus::run_sweep() {
  const int f = opt_.f;
  auto& pool = util::ThreadPool::global();

  for (int k = 0; k < f; ++k) {
    // ê_uv = e_uv + x_uk·θ_vk: fold the rank-one term out of the residual.
    util::parallel_for_chunks(pool, 0, train_.rows, [&](nnz_t lo, nnz_t hi) {
      for (nnz_t u = lo; u < hi; ++u) {
        const real_t xk = x_.row(static_cast<idx_t>(u))[k];
        for (nnz_t e = train_.row_ptr[static_cast<std::size_t>(u)];
             e < train_.row_ptr[static_cast<std::size_t>(u) + 1]; ++e) {
          residual_[static_cast<std::size_t>(e)] +=
              xk * theta_.row(train_.col_ind[static_cast<std::size_t>(e)])[k];
        }
      }
    });

    for (int inner = 0; inner < opt_.inner_iters; ++inner) {
      // x_uk given θ_vk (rows are independent).
      util::parallel_for_chunks(pool, 0, train_.rows, [&](nnz_t lo, nnz_t hi) {
        for (nnz_t u = lo; u < hi; ++u) {
          double num = 0.0, den = static_cast<double>(opt_.lambda);
          for (nnz_t e = train_.row_ptr[static_cast<std::size_t>(u)];
               e < train_.row_ptr[static_cast<std::size_t>(u) + 1]; ++e) {
            const real_t tk =
                theta_.row(train_.col_ind[static_cast<std::size_t>(e)])[k];
            num += static_cast<double>(residual_[static_cast<std::size_t>(e)]) * tk;
            den += static_cast<double>(tk) * tk;
          }
          x_.row(static_cast<idx_t>(u))[k] = static_cast<real_t>(num / den);
        }
      });
      // θ_vk given x_uk (columns are independent).
      util::parallel_for_chunks(pool, 0, train_.cols, [&](nnz_t lo, nnz_t hi) {
        for (nnz_t v = lo; v < hi; ++v) {
          double num = 0.0, den = static_cast<double>(opt_.lambda);
          for (nnz_t e = col_ptr_[static_cast<std::size_t>(v)];
               e < col_ptr_[static_cast<std::size_t>(v) + 1]; ++e) {
            const real_t xk = x_.row(col_rows_[static_cast<std::size_t>(e)])[k];
            num += static_cast<double>(
                       residual_[static_cast<std::size_t>(
                           csc_to_csr_[static_cast<std::size_t>(e)])]) *
                   xk;
            den += static_cast<double>(xk) * xk;
          }
          theta_.row(static_cast<idx_t>(v))[k] = static_cast<real_t>(num / den);
        }
      });
    }

    // Fold the refreshed rank-one term back in.
    util::parallel_for_chunks(pool, 0, train_.rows, [&](nnz_t lo, nnz_t hi) {
      for (nnz_t u = lo; u < hi; ++u) {
        const real_t xk = x_.row(static_cast<idx_t>(u))[k];
        for (nnz_t e = train_.row_ptr[static_cast<std::size_t>(u)];
             e < train_.row_ptr[static_cast<std::size_t>(u) + 1]; ++e) {
          residual_[static_cast<std::size_t>(e)] -=
              xk * theta_.row(train_.col_ind[static_cast<std::size_t>(e)])[k];
        }
      }
    });
  }
  ++sweeps_run_;
}

eval::ConvergenceHistory CcdPlusPlus::train(
    const sparse::CooMatrix* train_eval, const sparse::CooMatrix* test_eval,
    const std::string& label) {
  eval::ConvergenceHistory hist;
  hist.label = label;
  auto snapshot = [&](int sweep, double wall) {
    eval::ConvergencePoint pt;
    pt.iteration = sweep;
    pt.wall_seconds = wall;
    pt.train_rmse = train_eval ? eval::rmse(*train_eval, x_, theta_) : 0.0;
    pt.test_rmse = test_eval ? eval::rmse(*test_eval, x_, theta_) : 0.0;
    hist.add(pt);
  };
  snapshot(0, 0.0);
  double wall = 0.0;
  for (int s = 1; s <= opt_.outer_sweeps; ++s) {
    util::Stopwatch sw;
    run_sweep();
    wall += sw.seconds();
    snapshot(s, wall);
  }
  return hist;
}

}  // namespace cumf::baselines
