#include "baselines/hogwild.hpp"

#include <cmath>
#include <numeric>

#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace cumf::baselines {

HogwildSgd::HogwildSgd(const sparse::CooMatrix& train, SgdOptions opt)
    : train_(train), opt_(opt), x_(train.rows, opt.f),
      theta_(train.cols, opt.f), lr_(opt.lr) {
  util::Rng rng(opt_.seed);
  const real_t scale = opt_.effective_init_scale();
  x_.randomize(rng, scale);
  theta_.randomize(rng, scale);
  order_.resize(static_cast<std::size_t>(train.nnz()));
  std::iota(order_.begin(), order_.end(), nnz_t{0});
  for (std::size_t i = order_.size(); i > 1; --i) {
    std::swap(order_[i - 1], order_[rng.next_below(i)]);
  }
}

void HogwildSgd::run_epoch() {
  const int f = opt_.f;
  util::parallel_for_chunks(
      util::ThreadPool::global(), 0, train_.nnz(),
      [&](nnz_t lo, nnz_t hi) {
        for (nnz_t i = lo; i < hi; ++i) {
          const auto k = static_cast<std::size_t>(order_[static_cast<std::size_t>(i)]);
          sgd_update(x_.row(train_.row[k]), theta_.row(train_.col[k]),
                     train_.val[k], lr_, opt_.lambda, f);
        }
      },
      static_cast<std::size_t>(opt_.threads));
  lr_ *= opt_.lr_decay;
  ++epochs_run_;
}

BaselineRun HogwildSgd::train(const sparse::CooMatrix* train_eval,
                              const sparse::CooMatrix* test_eval,
                              const std::string& label) {
  BaselineRun run;
  run.history.label = label;
  auto snapshot = [&](int epoch, double wall) {
    eval::ConvergencePoint pt;
    pt.iteration = epoch;
    pt.wall_seconds = wall;
    pt.train_rmse = train_eval ? eval::rmse(*train_eval, x_, theta_) : 0.0;
    pt.test_rmse = test_eval ? eval::rmse(*test_eval, x_, theta_) : 0.0;
    run.history.add(pt);
  };
  snapshot(0, 0.0);
  double wall = 0.0;
  for (int e = 1; e <= opt_.epochs; ++e) {
    util::Stopwatch sw;
    run_epoch();
    wall += sw.seconds();
    run.samples_processed += static_cast<double>(train_.nnz());
    snapshot(e, wall);
  }
  return run;
}

}  // namespace cumf::baselines
