#pragma once

// In-place Cholesky factorization and solve for the batch_solve phase.
//
// Each A_u = Σ θθᵀ + n_{x_u}λI is symmetric positive definite whenever the
// row has at least one rating, so LLᵀ is the natural batched solver (the
// paper defers this phase to cuBLAS's batched dense solvers; we implement it
// directly). Solving is in-place: no extra storage per system, matching the
// paper's "in-place solvers" note in §2.2.

#include "util/types.hpp"

namespace cumf::linalg {

struct CholeskyResult {
  bool ok = false;        // false => matrix was not numerically SPD
  int clamped_pivots = 0; // diagonal entries nudged to epsilon to proceed
};

/// Factors row-major f×f SPD matrix A into L (lower triangle of A, in
/// place; the strict upper triangle is left untouched). Non-positive pivots
/// are clamped to a tiny epsilon and counted, so a near-singular system
/// still produces a usable (regularized) solution.
CholeskyResult cholesky_factor(real_t* A, int f);

/// Solves L·Lᵀ·x = b given the factor from cholesky_factor. b is overwritten
/// with the solution.
void cholesky_solve_inplace(const real_t* L, real_t* b, int f);

/// Convenience: factor + solve; A and b are both clobbered.
CholeskyResult solve_spd_inplace(real_t* A, real_t* b, int f);

}  // namespace cumf::linalg
