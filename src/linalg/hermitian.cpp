#include "linalg/hermitian.hpp"

namespace cumf::linalg {

void rank1_update_global(real_t* A, const real_t* theta, int f) {
  for (int i = 0; i < f; ++i) {
    const real_t ti = theta[i];
    real_t* row = A + static_cast<std::size_t>(i) * f;
    for (int j = 0; j < f; ++j) {
      row[j] += ti * theta[j];
    }
  }
}

void rank1_accumulate_global(real_t* A, const real_t* thetas, int bin, int f) {
  for (int k = 0; k < bin; ++k) {
    rank1_update_global(A, thetas + static_cast<std::size_t>(k) * f, f);
  }
}

namespace {

// Register tile edge. 4x4 = 16 accumulators plus 8 operand registers stays
// comfortably inside the x86-64 SSE/AVX register budget after vectorization,
// mirroring how the paper statically places the f² accumulators in the GPU
// register file.
constexpr int kTile = 4;

// Contract one (ti, tj) tile across the bin with tile-local accumulators.
// ei/ej are the live tile extents at the matrix edge.
inline void tile_accumulate(real_t* A, const real_t* thetas, int bin, int f,
                            int ti, int tj, int ei, int ej) {
  real_t acc[kTile][kTile] = {};
  for (int k = 0; k < bin; ++k) {
    const real_t* col = thetas + static_cast<std::size_t>(k) * f;
    real_t lhs[kTile];
    real_t rhs[kTile];
    for (int i = 0; i < ei; ++i) lhs[i] = col[ti + i];
    for (int j = 0; j < ej; ++j) rhs[j] = col[tj + j];
    for (int i = 0; i < ei; ++i) {
      for (int j = 0; j < ej; ++j) {
        acc[i][j] += lhs[i] * rhs[j];
      }
    }
  }
  for (int i = 0; i < ei; ++i) {
    real_t* row = A + static_cast<std::size_t>(ti + i) * f + tj;
    for (int j = 0; j < ej; ++j) {
      row[j] += acc[i][j];
    }
  }
}

}  // namespace

void rank1_accumulate_registers(real_t* A, const real_t* thetas, int bin, int f) {
  for (int ti = 0; ti < f; ti += kTile) {
    const int ei = (f - ti < kTile) ? f - ti : kTile;
    for (int tj = 0; tj < f; tj += kTile) {
      const int ej = (f - tj < kTile) ? f - tj : kTile;
      tile_accumulate(A, thetas, bin, f, ti, tj, ei, ej);
    }
  }
}

}  // namespace cumf::linalg
