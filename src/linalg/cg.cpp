#include "linalg/cg.hpp"

#include <cmath>
#include <vector>

#include "linalg/hermitian.hpp"

namespace cumf::linalg {

namespace {
void symv(const real_t* A, const real_t* x, real_t* y, int f) {
  for (int i = 0; i < f; ++i) {
    const real_t* row = A + static_cast<std::size_t>(i) * f;
    double s = 0.0;
    for (int j = 0; j < f; ++j) s += static_cast<double>(row[j]) * x[j];
    y[i] = static_cast<real_t>(s);
  }
}
}  // namespace

CgResult cg_solve(const real_t* A, const real_t* b, real_t* x, int f,
                  const CgOptions& opt) {
  CgResult res;
  std::vector<real_t> r(static_cast<std::size_t>(f));
  std::vector<real_t> p(static_cast<std::size_t>(f));
  std::vector<real_t> ap(static_cast<std::size_t>(f));

  // r = b - A·x (x is the warm start), p = r.
  symv(A, x, ap.data(), f);
  double rr = 0.0, bnorm = 0.0;
  for (int i = 0; i < f; ++i) {
    r[static_cast<std::size_t>(i)] = b[i] - ap[static_cast<std::size_t>(i)];
    p[static_cast<std::size_t>(i)] = r[static_cast<std::size_t>(i)];
    rr += static_cast<double>(r[static_cast<std::size_t>(i)]) *
          r[static_cast<std::size_t>(i)];
    bnorm += static_cast<double>(b[i]) * b[i];
  }
  bnorm = std::sqrt(bnorm);
  if (bnorm == 0.0) {
    for (int i = 0; i < f; ++i) x[i] = 0.0f;
    res.converged = true;
    return res;
  }
  const double tol = opt.tolerance * bnorm;

  for (int k = 0; k < opt.max_iters; ++k) {
    if (std::sqrt(rr) <= tol) break;
    symv(A, p.data(), ap.data(), f);
    const double pap = dot(p.data(), ap.data(), f);
    if (pap <= 0.0) break;  // lost positive-definiteness numerically
    const double alpha = rr / pap;
    double rr_next = 0.0;
    for (int i = 0; i < f; ++i) {
      x[i] += static_cast<real_t>(alpha * p[static_cast<std::size_t>(i)]);
      r[static_cast<std::size_t>(i)] -=
          static_cast<real_t>(alpha * ap[static_cast<std::size_t>(i)]);
      rr_next += static_cast<double>(r[static_cast<std::size_t>(i)]) *
                 r[static_cast<std::size_t>(i)];
    }
    const double beta = rr_next / rr;
    for (int i = 0; i < f; ++i) {
      p[static_cast<std::size_t>(i)] =
          r[static_cast<std::size_t>(i)] +
          static_cast<real_t>(beta) * p[static_cast<std::size_t>(i)];
    }
    rr = rr_next;
    ++res.iterations;
  }
  res.residual = std::sqrt(rr) / bnorm;
  res.converged = res.residual <= opt.tolerance;
  return res;
}

}  // namespace cumf::linalg
