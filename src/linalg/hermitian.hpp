#pragma once

// Hermitian accumulation kernels: the inner loop of get_hermitian_x.
//
// The paper's single biggest optimization (§3.4, Fig. 7) is where the partial
// sum  A_u += θ_v·θ_vᵀ  lives while iterating over a row's rated columns:
//
//  * "global" path  — every rank-1 update does f² read-modify-writes against
//    the A_u buffer in (simulated) global memory. This is Algorithm 1 and the
//    use_registers=false ablation.
//  * "register" path — a bin of columns is accumulated into fixed-size local
//    tiles that the compiler keeps in registers (the CPU analogue of the
//    paper's macro-expanded f² register variables, Listing 1), and A_u is
//    touched exactly once per bin flush.
//
// The two paths sum in different orders (per-column vs per-tile), so results
// agree to floating-point tolerance rather than bit-for-bit; the tests bound
// the divergence.

#include "util/types.hpp"

namespace cumf::linalg {

/// A += θ·θᵀ for a single column. A is a dense row-major f×f buffer.
/// This is the no-register baseline: f² heap read-modify-writes per column.
void rank1_update_global(real_t* A, const real_t* theta, int f);

/// A += Σ_{k<bin} θ_k·θ_kᵀ for `bin` columns stored contiguously
/// (thetas[k*f .. k*f+f)), accumulating in register tiles and writing each
/// A element exactly once. Tile size is fixed at compile time.
void rank1_accumulate_registers(real_t* A, const real_t* thetas, int bin, int f);

/// Same contraction as rank1_accumulate_registers but accumulating straight
/// into A per column (the use_registers=false path over a bin).
void rank1_accumulate_global(real_t* A, const real_t* thetas, int bin, int f);

/// y += alpha * x over f elements.
inline void axpy(real_t* y, real_t alpha, const real_t* x, int f) {
  for (int i = 0; i < f; ++i) y[i] += alpha * x[i];
}

/// Dot product over f elements (double accumulation).
inline double dot(const real_t* a, const real_t* b, int f) {
  double s = 0.0;
  for (int i = 0; i < f; ++i) s += static_cast<double>(a[i]) * b[i];
  return s;
}

/// Adds lambda to the diagonal of a row-major f×f matrix.
inline void add_diagonal(real_t* A, real_t lambda, int f) {
  for (int i = 0; i < f; ++i) A[static_cast<std::size_t>(i) * f + i] += lambda;
}

}  // namespace cumf::linalg
