#pragma once

// Dense row-major matrices for the factor matrices X (m×f) and Θ (n×f).
//
// The solvers address Θ as Θᵀ (f×n, column θ_v contiguous) exactly like the
// paper's kernels do; FactorMatrix provides both views: rows are contiguous,
// and `col_major_copy` materializes the f×n transposed layout when a kernel
// wants θ_v as a contiguous f-vector.

#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/types.hpp"

namespace cumf::linalg {

class FactorMatrix {
 public:
  FactorMatrix() = default;
  FactorMatrix(idx_t rows, int f)
      : rows_(rows), f_(f),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(f),
              real_t{0}) {}

  [[nodiscard]] idx_t rows() const { return rows_; }
  [[nodiscard]] int f() const { return f_; }

  [[nodiscard]] real_t* row(idx_t r) {
    return data_.data() + static_cast<std::size_t>(r) * static_cast<std::size_t>(f_);
  }
  [[nodiscard]] const real_t* row(idx_t r) const {
    return data_.data() + static_cast<std::size_t>(r) * static_cast<std::size_t>(f_);
  }

  [[nodiscard]] std::vector<real_t>& data() { return data_; }
  [[nodiscard]] const std::vector<real_t>& data() const { return data_; }

  /// Uniform entries in [0, scale). The paper initializes in [0, 1]; the
  /// benches use scale = 1/sqrt(f) so the initial predictions are O(1).
  void randomize(util::Rng& rng, real_t scale = real_t{1});

  /// Uniform entries in [lo, hi). The serving tests and benches use signed
  /// factors so top-k scores spread on both sides of zero.
  void randomize_uniform(util::Rng& rng, real_t lo, real_t hi);

  [[nodiscard]] bytes_t footprint_bytes() const {
    return static_cast<bytes_t>(data_.size()) * sizeof(real_t);
  }

  /// Frobenius norm (double accumulation).
  [[nodiscard]] double frobenius_norm() const;

 private:
  idx_t rows_ = 0;
  int f_ = 0;
  std::vector<real_t> data_;
};

/// Checkpoint support (§4.4 fault tolerance): blob round-trip with checksum.
void save_factors(const std::string& path, const FactorMatrix& mat);
FactorMatrix load_factors(const std::string& path);

/// In-memory (de)serialization used by the checkpoint manager, which wraps
/// the payload with its own iteration stamp.
std::vector<std::byte> serialize_factors(const FactorMatrix& mat);
FactorMatrix deserialize_factors(const std::byte* data, std::size_t size);

}  // namespace cumf::linalg
