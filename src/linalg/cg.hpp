#pragma once

// Conjugate-gradient solver for the SPD systems of batch_solve.
//
// The published cuMF line later replaced the exact Cholesky batch solver
// with an approximate CG solver (als_cg): for well-conditioned A_u a handful
// of CG iterations reaches ALS-useful accuracy at O(k·f²) cost instead of
// O(f³), and needs no triangular factor storage. We implement it as an
// alternative backend for batch_solve and compare the two in
// bench/ablation_solvers.

#include "util/types.hpp"

namespace cumf::linalg {

struct CgOptions {
  int max_iters = 20;      // k; cuMF-CG style defaults
  double tolerance = 1e-6; // on the residual norm relative to ‖b‖
};

struct CgResult {
  int iterations = 0;      // iterations actually taken
  double residual = 0.0;   // final ‖Ax-b‖ / ‖b‖
  bool converged = false;
};

/// Solves A·x = b for a dense row-major SPD f×f matrix A. `x` is both the
/// initial guess and the output (warm starts matter in ALS: the previous
/// iteration's x_u is an excellent starting point).
CgResult cg_solve(const real_t* A, const real_t* b, real_t* x, int f,
                  const CgOptions& opt = {});

}  // namespace cumf::linalg
