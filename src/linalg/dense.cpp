#include "linalg/dense.hpp"

#include <cmath>
#include <stdexcept>

#include "util/binary_io.hpp"

namespace cumf::linalg {

void FactorMatrix::randomize(util::Rng& rng, real_t scale) {
  for (auto& v : data_) v = rng.next_real() * scale;
}

void FactorMatrix::randomize_uniform(util::Rng& rng, real_t lo, real_t hi) {
  for (auto& v : data_) {
    v = static_cast<real_t>(
        rng.uniform(static_cast<double>(lo), static_cast<double>(hi)));
  }
}

double FactorMatrix::frobenius_norm() const {
  double sum = 0.0;
  for (const real_t v : data_) sum += static_cast<double>(v) * v;
  return std::sqrt(sum);
}

namespace {
constexpr std::uint32_t kFactorTag = 0x464d4154;  // "FMAT"

struct FactorHeader {
  idx_t rows;
  std::int32_t f;
};
}  // namespace

std::vector<std::byte> serialize_factors(const FactorMatrix& mat) {
  std::vector<std::byte> payload(sizeof(FactorHeader) +
                                 mat.data().size() * sizeof(real_t));
  const FactorHeader hdr{mat.rows(), mat.f()};
  std::memcpy(payload.data(), &hdr, sizeof(hdr));
  std::memcpy(payload.data() + sizeof(hdr), mat.data().data(),
              mat.data().size() * sizeof(real_t));
  return payload;
}

FactorMatrix deserialize_factors(const std::byte* data, std::size_t size) {
  if (size < sizeof(FactorHeader)) {
    throw std::runtime_error("deserialize_factors: truncated payload");
  }
  FactorHeader hdr{};
  std::memcpy(&hdr, data, sizeof(hdr));
  FactorMatrix mat(hdr.rows, hdr.f);
  const std::size_t expect = mat.data().size() * sizeof(real_t);
  if (size != sizeof(hdr) + expect) {
    throw std::runtime_error("deserialize_factors: size mismatch");
  }
  std::memcpy(mat.data().data(), data + sizeof(hdr), expect);
  return mat;
}

void save_factors(const std::string& path, const FactorMatrix& mat) {
  util::write_blob(path, kFactorTag, serialize_factors(mat));
}

FactorMatrix load_factors(const std::string& path) {
  const std::vector<std::byte> payload = util::read_blob(path, kFactorTag);
  return deserialize_factors(payload.data(), payload.size());
}

}  // namespace cumf::linalg
