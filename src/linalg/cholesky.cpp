#include "linalg/cholesky.hpp"

#include <cmath>

namespace cumf::linalg {

CholeskyResult cholesky_factor(real_t* A, int f) {
  CholeskyResult result;
  constexpr double kEps = 1e-10;
  for (int j = 0; j < f; ++j) {
    real_t* colj = A + static_cast<std::size_t>(j) * f;
    double diag = static_cast<double>(colj[j]);
    for (int k = 0; k < j; ++k) {
      diag -= static_cast<double>(colj[k]) * colj[k];
    }
    if (diag <= kEps) {
      diag = kEps;
      ++result.clamped_pivots;
    }
    const double ljj = std::sqrt(diag);
    colj[j] = static_cast<real_t>(ljj);
    const double inv = 1.0 / ljj;
    for (int i = j + 1; i < f; ++i) {
      real_t* rowi = A + static_cast<std::size_t>(i) * f;
      double s = static_cast<double>(rowi[j]);
      for (int k = 0; k < j; ++k) {
        s -= static_cast<double>(rowi[k]) * colj[k];
      }
      rowi[j] = static_cast<real_t>(s * inv);
    }
  }
  result.ok = (result.clamped_pivots == 0);
  return result;
}

void cholesky_solve_inplace(const real_t* L, real_t* b, int f) {
  // Forward substitution: L·y = b.
  for (int i = 0; i < f; ++i) {
    const real_t* rowi = L + static_cast<std::size_t>(i) * f;
    double s = static_cast<double>(b[i]);
    for (int k = 0; k < i; ++k) {
      s -= static_cast<double>(rowi[k]) * b[k];
    }
    b[i] = static_cast<real_t>(s / rowi[i]);
  }
  // Back substitution: Lᵀ·x = y.
  for (int i = f - 1; i >= 0; --i) {
    double s = static_cast<double>(b[i]);
    for (int k = i + 1; k < f; ++k) {
      s -= static_cast<double>(L[static_cast<std::size_t>(k) * f + i]) * b[k];
    }
    b[i] = static_cast<real_t>(s / L[static_cast<std::size_t>(i) * f + i]);
  }
}

CholeskyResult solve_spd_inplace(real_t* A, real_t* b, int f) {
  const CholeskyResult r = cholesky_factor(A, f);
  cholesky_solve_inplace(A, b, f);
  return r;
}

}  // namespace cumf::linalg
