#pragma once

// The paper's duplication scheme for synthesizing extreme-scale data sets
// (§5.5): SparkALS uses a 100-by-1 duplication of Amazon Reviews, Facebook a
// 160-by-20 duplication. Tiling a base matrix kr×kc ways multiplies m by kr,
// n by kc and Nz by kr·kc while preserving the degree distributions exactly.

#include "sparse/coo.hpp"
#include "util/rng.hpp"

namespace cumf::data {

/// Tiles `base` into a kr-by-kc grid of copies. When `value_jitter` > 0 each
/// copied rating is perturbed by N(0, value_jitter) so duplicated blocks are
/// not bit-identical (rank stays ~rank(base) + noise, like the paper's use).
sparse::CooMatrix duplicate_grid(const sparse::CooMatrix& base, int kr, int kc,
                                 double value_jitter, util::Rng& rng);

}  // namespace cumf::data
