#pragma once

// Dataset registry: every data set the paper evaluates or charts.
//
// Table 5 gives exact shapes for Netflix, YahooMusic, Hugewiki and the three
// synthesized giants (SparkALS, Factorbird, Facebook) plus the paper's own
// f=100 "largest ever" run. Figure 2 additionally charts the data sets used
// by CCD++, DSGD, DSGD++ and Flink; where the paper gives no exact numbers we
// mark the entry approximate.

#include <string>
#include <vector>

#include "util/types.hpp"

namespace cumf::data {

struct DatasetSpec {
  std::string name;
  std::int64_t m = 0;   // users
  std::int64_t n = 0;   // items
  std::int64_t nz = 0;  // ratings
  int f = 0;            // latent dimension used in the paper
  double lambda = 0.0;
  bool approximate = false;  // true when the paper gives no exact shape

  /// Model-parameter count (m+n)·f — the x-axis of Figure 2.
  [[nodiscard]] double model_parameters() const {
    return static_cast<double>(m + n) * f;
  }

  /// Shrinks m, n and nz by `factor` (all three linearly, preserving the
  /// per-row and per-column degree means that drive ALS cost shape).
  [[nodiscard]] DatasetSpec scaled(double factor) const;
};

// Table 5 entries.
DatasetSpec netflix();
DatasetSpec yahoomusic();
DatasetSpec hugewiki();
DatasetSpec sparkals();
DatasetSpec factorbird();
DatasetSpec facebook();
DatasetSpec cumf_largest();  // Facebook shape with f = 100 (§5.5)

/// All data sets charted in Figure 2 (footnote 1).
std::vector<DatasetSpec> figure2_inventory();

/// Looks up any registry entry by name (case sensitive); throws
/// std::invalid_argument for unknown names.
DatasetSpec dataset_by_name(const std::string& name);

}  // namespace cumf::data
