#include "data/datasets.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cumf::data {

DatasetSpec DatasetSpec::scaled(double factor) const {
  DatasetSpec s = *this;
  if (factor >= 1.0) return s;
  auto shrink = [factor](std::int64_t v) {
    return std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::llround(static_cast<double>(v) * factor)));
  };
  s.m = shrink(m);
  s.n = shrink(n);
  s.nz = shrink(nz);
  // The per-row degree Nz/m is what drives get_hermitian cost, so it is the
  // quantity scaling must preserve. At aggressive factors the catalog n can
  // shrink below the row degree (a user cannot rate 200 of 100 items): floor
  // n at 4× the row degree — column skew flattens a little, row behaviour
  // stays exact.
  const std::int64_t row_deg = std::max<std::int64_t>(1, s.nz / s.m);
  s.n = std::clamp(s.n, std::min(n, 4 * row_deg), n);
  s.nz = std::min(s.nz, s.m * s.n / 2 + 1);
  return s;
}

DatasetSpec netflix() {
  return {"Netflix", 480'189, 17'770, 99'000'000, 100, 0.05, false};
}

DatasetSpec yahoomusic() {
  return {"YahooMusic", 1'000'990, 624'961, 252'800'000, 100, 1.4, false};
}

DatasetSpec hugewiki() {
  return {"Hugewiki", 50'082'603, 39'780, 3'100'000'000, 100, 0.05, false};
}

DatasetSpec sparkals() {
  return {"SparkALS", 660'000'000, 2'400'000, 3'500'000'000, 10, 0.05, false};
}

DatasetSpec factorbird() {
  return {"Factorbird", 229'000'000, 195'000'000, 38'500'000'000, 5, 0.05,
          false};
}

DatasetSpec facebook() {
  return {"Facebook", 1'000'000'000, 48'000'000, 112'000'000'000, 16, 0.05,
          false};
}

DatasetSpec cumf_largest() {
  DatasetSpec s = facebook();
  s.name = "cuMF";
  s.f = 100;  // the paper enlarges f from 16 to 100 (§5.5)
  return s;
}

std::vector<DatasetSpec> figure2_inventory() {
  std::vector<DatasetSpec> sets{
      netflix(), yahoomusic(), hugewiki(), sparkals(), factorbird(),
      facebook(), cumf_largest()};
  // Footnote-1 systems whose data shapes the paper does not tabulate;
  // shapes below follow the cited sources and are marked approximate.
  sets.push_back({"CCD++ (Hugewiki'12)", 50'082'603, 39'780, 2'736'496'604,
                  100, 0.05, true});
  sets.push_back({"DSGD (Netflix)", 480'189, 17'770, 99'000'000, 50, 0.05,
                  true});
  sets.push_back({"Flink (700GB)", 30'000'000, 2'000'000, 25'000'000'000, 100,
                  0.05, true});
  return sets;
}

DatasetSpec dataset_by_name(const std::string& name) {
  for (const auto& s : figure2_inventory()) {
    if (s.name == name) return s;
  }
  throw std::invalid_argument("unknown dataset: " + name);
}

}  // namespace cumf::data
