#include "data/duplicate.hpp"

#include <stdexcept>

namespace cumf::data {

sparse::CooMatrix duplicate_grid(const sparse::CooMatrix& base, int kr, int kc,
                                 double value_jitter, util::Rng& rng) {
  if (kr <= 0 || kc <= 0) {
    throw std::invalid_argument("duplicate_grid: kr and kc must be > 0");
  }
  sparse::CooMatrix out;
  out.rows = base.rows * kr;
  out.cols = base.cols * kc;
  out.reserve(base.nnz() * kr * kc);
  for (int br = 0; br < kr; ++br) {
    for (int bc = 0; bc < kc; ++bc) {
      const idx_t row_off = br * base.rows;
      const idx_t col_off = bc * base.cols;
      for (std::size_t k = 0; k < base.val.size(); ++k) {
        real_t v = base.val[k];
        if (value_jitter > 0.0) {
          v += static_cast<real_t>(rng.gaussian(0.0, value_jitter));
        }
        out.push_back(base.row[k] + row_off, base.col[k] + col_off, v);
      }
    }
  }
  return out;
}

}  // namespace cumf::data
