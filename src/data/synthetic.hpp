#pragma once

// Synthetic rating-matrix generation.
//
// The generator plants a rank-f_true structure (R = X*·Θ*ᵀ + shift + noise)
// and samples the observation pattern with the two skews that drive cuMF's
// performance story: per-row degrees are log-normal (some users rate
// thousands of items, most rate few) and column popularity is Zipf (hot items
// shared across users, which is what makes texture-cache reuse of θ_v pay
// off, §3.3).
//
// `make_sim_dataset` shapes a generator run to a registry dataset scaled to
// laptop size, splits train/test, and precomputes the CSR/CSC forms solvers
// need.

#include <string>

#include "data/datasets.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "util/rng.hpp"

namespace cumf::data {

struct SyntheticOptions {
  idx_t m = 1000;
  idx_t n = 500;
  nnz_t nz = 20'000;
  int f_true = 16;             // planted rank
  double signal_std = 0.6;     // std of x·θ across entries
  double mean_rating = 3.5;    // additive shift
  double noise_std = 0.85;     // irreducible test RMSE floor
  double row_degree_sigma = 1.0;  // log-normal σ of per-row counts
  double col_zipf_s = 1.05;       // popularity skew exponent
  std::uint64_t seed = 1;
};

/// Samples a rating matrix per the options. Deterministic given the seed.
sparse::CooMatrix generate_ratings(const SyntheticOptions& opt);

/// A ready-to-train data set: COO splits plus CSR of R (update-X) and CSR of
/// Rᵀ (update-Θ).
struct SimDataset {
  DatasetSpec spec;  // scaled shape actually generated
  sparse::CooMatrix train;
  sparse::CooMatrix test;
  sparse::CsrMatrix train_csr;     // R, m×n
  sparse::CsrMatrix train_rt_csr;  // Rᵀ, n×m
  double target_rmse = 0.92;       // the "time to RMSE x" threshold
};

/// Builds a simulation-scale version of a registry dataset. `scale` shrinks
/// m, n, nz linearly; `f_override` (>0) replaces the paper's f in the spec.
SimDataset make_sim_dataset(const DatasetSpec& full, double scale,
                            std::uint64_t seed, double test_fraction = 0.1,
                            int f_override = 0);

}  // namespace cumf::data
