#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>
#include <vector>

#include "sparse/split.hpp"
#include "util/thread_pool.hpp"

namespace cumf::data {

namespace {

/// Ground-truth factor scale: entries ~ N(0, a²) give Var(x·θ) = f·a⁴.
double factor_entry_std(int f_true, double signal_std) {
  return std::sqrt(signal_std / std::sqrt(static_cast<double>(f_true)));
}

/// Per-row rating counts: log-normal weights normalized to sum ≈ nz, each
/// clamped to [1, n] so rows are non-empty and can be deduplicated.
std::vector<idx_t> draw_row_degrees(const SyntheticOptions& opt,
                                    util::Rng& rng) {
  std::vector<double> w(static_cast<std::size_t>(opt.m));
  double total = 0.0;
  for (auto& v : w) {
    v = rng.lognormal(0.0, opt.row_degree_sigma);
    total += v;
  }
  std::vector<idx_t> deg(static_cast<std::size_t>(opt.m));
  const double scale = static_cast<double>(opt.nz) / total;
  for (std::size_t u = 0; u < w.size(); ++u) {
    const auto d = static_cast<idx_t>(std::llround(w[u] * scale));
    deg[u] = std::clamp<idx_t>(d, 1, opt.n);
  }
  return deg;
}

}  // namespace

sparse::CooMatrix generate_ratings(const SyntheticOptions& opt) {
  util::Rng rng(opt.seed);

  // Ground-truth low-rank factors.
  const double a = factor_entry_std(opt.f_true, opt.signal_std);
  std::vector<float> xs(static_cast<std::size_t>(opt.m) * opt.f_true);
  std::vector<float> ts(static_cast<std::size_t>(opt.n) * opt.f_true);
  for (auto& v : xs) v = static_cast<float>(rng.gaussian(0.0, a));
  for (auto& v : ts) v = static_cast<float>(rng.gaussian(0.0, a));

  // Popularity permutation: Zipf rank k maps to column perm[k], so hot
  // columns are scattered across the index space like real catalogs.
  std::vector<idx_t> perm(static_cast<std::size_t>(opt.n));
  std::iota(perm.begin(), perm.end(), 0);
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.next_below(i)]);
  }

  const std::vector<idx_t> degrees = draw_row_degrees(opt, rng);
  std::vector<nnz_t> offsets(static_cast<std::size_t>(opt.m) + 1, 0);
  for (std::size_t u = 0; u < degrees.size(); ++u) {
    offsets[u + 1] = offsets[u] + degrees[u];
  }
  const nnz_t total = offsets.back();

  sparse::CooMatrix coo;
  coo.rows = opt.m;
  coo.cols = opt.n;
  coo.row.resize(static_cast<std::size_t>(total));
  coo.col.resize(static_cast<std::size_t>(total));
  coo.val.resize(static_cast<std::size_t>(total));

  // Rows are independent given a per-row RNG, so generation parallelizes
  // deterministically (thread count does not change the output).
  util::parallel_for_chunks(
      util::ThreadPool::global(), 0, opt.m, [&](nnz_t lo, nnz_t hi) {
        std::vector<idx_t> cols;
        std::unordered_set<idx_t> seen;
        for (nnz_t u = lo; u < hi; ++u) {
          util::Rng row_rng(opt.seed ^ (0x9e3779b97f4a7c15ull *
                                        (static_cast<std::uint64_t>(u) + 1)));
          const idx_t want = degrees[static_cast<std::size_t>(u)];
          cols.clear();
          if (want > opt.n / 2) {
            // Dense row: sample without replacement via partial shuffle.
            std::vector<idx_t> all(static_cast<std::size_t>(opt.n));
            std::iota(all.begin(), all.end(), 0);
            for (idx_t k = 0; k < want; ++k) {
              const auto j = k + static_cast<idx_t>(row_rng.next_below(
                                     static_cast<std::uint64_t>(opt.n - k)));
              std::swap(all[static_cast<std::size_t>(k)],
                        all[static_cast<std::size_t>(j)]);
              cols.push_back(all[static_cast<std::size_t>(k)]);
            }
          } else {
            seen.clear();
            while (static_cast<idx_t>(cols.size()) < want) {
              const idx_t v = perm[row_rng.zipf(
                  static_cast<std::uint64_t>(opt.n), opt.col_zipf_s)];
              if (seen.insert(v).second) cols.push_back(v);
            }
          }
          std::sort(cols.begin(), cols.end());
          nnz_t at = offsets[static_cast<std::size_t>(u)];
          for (const idx_t v : cols) {
            double dotp = 0.0;
            const float* xu = xs.data() + static_cast<std::size_t>(u) * opt.f_true;
            const float* tv = ts.data() + static_cast<std::size_t>(v) * opt.f_true;
            for (int k = 0; k < opt.f_true; ++k) {
              dotp += static_cast<double>(xu[k]) * tv[k];
            }
            const double r =
                dotp + opt.mean_rating + row_rng.gaussian(0.0, opt.noise_std);
            coo.row[static_cast<std::size_t>(at)] = static_cast<idx_t>(u);
            coo.col[static_cast<std::size_t>(at)] = v;
            coo.val[static_cast<std::size_t>(at)] = static_cast<real_t>(r);
            ++at;
          }
        }
      });
  return coo;
}

SimDataset make_sim_dataset(const DatasetSpec& full, double scale,
                            std::uint64_t seed, double test_fraction,
                            int f_override) {
  SimDataset ds;
  ds.spec = full.scaled(scale);
  if (f_override > 0) ds.spec.f = f_override;

  SyntheticOptions opt;
  opt.m = static_cast<idx_t>(ds.spec.m);
  opt.n = static_cast<idx_t>(ds.spec.n);
  opt.nz = ds.spec.nz;
  opt.seed = seed;
  // YahooMusic differs from Netflix in two ways the experiments depend on:
  // ratings live on a 0-100 scale (which is what makes the paper's λ = 1.4
  // sensible — RMSE converges to ~22 there, not ~0.92), and the matrix is
  // sparser per item with milder column skew, which is why §5.3 sees smaller
  // register/texture gains on it.
  if (full.name == "YahooMusic") {
    opt.mean_rating = 50.0;
    opt.signal_std = 12.0;
    opt.noise_std = 21.0;
    opt.col_zipf_s = 0.7;
    opt.row_degree_sigma = 1.2;
  }

  const sparse::CooMatrix all = generate_ratings(opt);
  util::Rng split_rng(seed ^ 0xabcdef1234567ull);
  auto split = sparse::split_ratings(all, test_fraction, split_rng);
  ds.train = std::move(split.train);
  ds.test = std::move(split.test);
  ds.train_csr = sparse::coo_to_csr(ds.train);
  ds.train_rt_csr =
      sparse::csc_as_csr_of_transpose(sparse::csr_to_csc(ds.train_csr));
  // "Time to RMSE x" threshold: the achievable test RMSE is the noise floor
  // inflated by estimation error (≈ √(1 + params/observations) for a least-
  // squares fit), and the paper measures a point slightly above what the
  // runs converge to. For the Netflix shape at bench scales this lands at
  // ~0.92-0.94 (paper: 0.92); for 0-100-scale YahooMusic at ~23 (paper ~22).
  const double params = static_cast<double>(ds.spec.m + ds.spec.n) * ds.spec.f;
  const double obs = std::max(1.0, static_cast<double>(ds.train_csr.nnz()));
  ds.target_rmse =
      opt.noise_std * std::sqrt(1.0 + params / obs) * 1.04;
  return ds;
}

}  // namespace cumf::data
