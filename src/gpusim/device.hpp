#pragma once

// A simulated GPU device.
//
// Kernels are real C++ executed on the shared host thread pool; the Device
// supplies three services the algorithms depend on:
//
//  1. capacity accounting — DeviceBuffer<T> charges the device's global
//     memory allocator; exceeding DeviceSpec::global_bytes throws
//     DeviceOomError (this is what forces SU-ALS partitioning, eq. 8);
//  2. traffic accounting — account_kernel(stats) accumulates counters;
//  3. simulated time — a roofline model converts each kernel's traffic into
//     modeled seconds on the device clock:
//       t = launch_overhead
//         + max(flops/peak, contiguous_bytes/mem_bw, gathered/gather_bw,
//               shared_bytes/shared_bw)
//     Transfers advance the clock by bytes/link_bandwidth (the topology model
//     decides the link). sync_devices() is the barrier of Alg. 3 line 12:
//     every clock jumps to the max.

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "gpusim/counters.hpp"
#include "gpusim/device_spec.hpp"
#include "util/thread_pool.hpp"
#include "util/types.hpp"

namespace cumf::gpusim {

class DeviceOomError : public std::runtime_error {
 public:
  DeviceOomError(const std::string& device, bytes_t requested, bytes_t used,
                 bytes_t capacity);
};

class Device {
 public:
  Device(int id, DeviceSpec spec, int socket = 0,
         util::ThreadPool* pool = nullptr);

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] int socket() const { return socket_; }
  [[nodiscard]] const DeviceSpec& spec() const { return spec_; }
  [[nodiscard]] util::ThreadPool& pool() const { return *pool_; }

  // -- capacity ------------------------------------------------------------
  void charge(bytes_t bytes);
  void release(bytes_t bytes) noexcept;
  [[nodiscard]] bytes_t used_bytes() const { return used_.load(); }
  [[nodiscard]] bytes_t free_bytes() const {
    return spec_.global_bytes - used_.load();
  }

  // -- accounting ----------------------------------------------------------
  /// Record a kernel's traffic and advance the simulated clock.
  void account_kernel(const KernelStats& stats);
  /// Record a host<->device or device<->device copy of `bytes` taking
  /// `seconds` of modeled time (the topology computes seconds).
  void account_transfer(bytes_t bytes, double seconds, bool host_link,
                        bool outgoing);

  [[nodiscard]] const DeviceCounters& counters() const { return counters_; }
  void reset_counters() { counters_.reset(); }

  // -- simulated clock -----------------------------------------------------
  [[nodiscard]] double clock_seconds() const { return clock_seconds_; }
  void advance_clock(double seconds) { clock_seconds_ += seconds; }
  void set_clock(double seconds) { clock_seconds_ = seconds; }
  void reset_clock() { clock_seconds_ = 0.0; }

  /// Modeled duration of a kernel with the given traffic (does not mutate).
  [[nodiscard]] double model_kernel_seconds(const KernelStats& stats) const;

 private:
  int id_;
  DeviceSpec spec_;
  int socket_;
  util::ThreadPool* pool_;
  std::atomic<bytes_t> used_{0};
  DeviceCounters counters_{};
  double clock_seconds_ = 0.0;
};

/// Barrier: align all device clocks to the maximum (Alg. 3 line 12).
void sync_devices(const std::vector<Device*>& devices);
double max_clock(const std::vector<Device*>& devices);

/// RAII device-memory allocation. Storage physically lives in host RAM; the
/// device is charged for capacity purposes.
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  DeviceBuffer(Device& dev, std::size_t count) : dev_(&dev), data_(count) {
    dev_->charge(bytes());
  }
  ~DeviceBuffer() { reset(); }

  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;
  DeviceBuffer(DeviceBuffer&& o) noexcept
      : dev_(o.dev_), data_(std::move(o.data_)) {
    o.dev_ = nullptr;
    o.data_.clear();
  }
  DeviceBuffer& operator=(DeviceBuffer&& o) noexcept {
    if (this != &o) {
      reset();
      dev_ = o.dev_;
      data_ = std::move(o.data_);
      o.dev_ = nullptr;
      o.data_.clear();
    }
    return *this;
  }

  void reset() {
    if (dev_ && !data_.empty()) dev_->release(bytes());
    dev_ = nullptr;
    data_.clear();
    data_.shrink_to_fit();
  }

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bytes_t bytes() const {
    return static_cast<bytes_t>(data_.size()) * sizeof(T);
  }
  [[nodiscard]] T* data() { return data_.data(); }
  [[nodiscard]] const T* data() const { return data_.data(); }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

 private:
  Device* dev_ = nullptr;
  std::vector<T> data_;
};

}  // namespace cumf::gpusim
