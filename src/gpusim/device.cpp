#include "gpusim/device.hpp"

#include <algorithm>
#include <sstream>

namespace cumf::gpusim {

namespace {
std::string oom_message(const std::string& device, bytes_t requested,
                        bytes_t used, bytes_t capacity) {
  std::ostringstream os;
  os << "device " << device << " out of memory: requested " << requested
     << " B with " << used << "/" << capacity << " B in use";
  return os.str();
}
}  // namespace

DeviceOomError::DeviceOomError(const std::string& device, bytes_t requested,
                               bytes_t used, bytes_t capacity)
    : std::runtime_error(oom_message(device, requested, used, capacity)) {}

Device::Device(int id, DeviceSpec spec, int socket, util::ThreadPool* pool)
    : id_(id), spec_(std::move(spec)), socket_(socket),
      pool_(pool ? pool : &util::ThreadPool::global()) {}

void Device::charge(bytes_t bytes) {
  const bytes_t before = used_.fetch_add(bytes);
  if (before + bytes > spec_.global_bytes) {
    used_.fetch_sub(bytes);
    throw DeviceOomError(spec_.name + "#" + std::to_string(id_), bytes, before,
                         spec_.global_bytes);
  }
}

void Device::release(bytes_t bytes) noexcept { used_.fetch_sub(bytes); }

double Device::model_kernel_seconds(const KernelStats& stats) const {
  const double compute_s = stats.flops / (spec_.peak_sp_gflops * 1e9);
  const double contiguous =
      static_cast<double>(stats.global_read + stats.global_write);
  const double mem_s = contiguous / (spec_.mem_bw_gbps * 1e9);
  const double gather_bw =
      stats.gathered_via_texture
          ? spec_.gathered_texture_bw() * stats.gather_quality
          : spec_.gathered_global_bw();
  const double gather_s =
      static_cast<double>(stats.gathered_read) / (gather_bw * 1e9);
  const double shared_s =
      static_cast<double>(stats.shared_read + stats.shared_write) /
      (spec_.shared_bw_gbps * 1e9);
  const double busy =
      std::max({compute_s, mem_s, gather_s, shared_s});
  return spec_.kernel_launch_overhead_us * 1e-6 + busy;
}

void Device::account_kernel(const KernelStats& stats) {
  counters_.flops += stats.flops;
  counters_.global_read += stats.global_read;
  counters_.global_write += stats.global_write;
  counters_.gathered_read += stats.gathered_read;
  if (stats.gathered_via_texture) counters_.texture_read += stats.gathered_read;
  counters_.shared_read += stats.shared_read;
  counters_.shared_write += stats.shared_write;
  ++counters_.kernels_launched;
  clock_seconds_ += model_kernel_seconds(stats);
}

void Device::account_transfer(bytes_t bytes, double seconds, bool host_link,
                              bool outgoing) {
  if (host_link) {
    if (outgoing) {
      counters_.d2h_bytes += bytes;
    } else {
      counters_.h2d_bytes += bytes;
    }
  } else {
    counters_.d2d_bytes += bytes;
  }
  ++counters_.transfers;
  clock_seconds_ += seconds;
}

void sync_devices(const std::vector<Device*>& devices) {
  const double target = max_clock(devices);
  for (Device* d : devices) d->set_clock(target);
}

double max_clock(const std::vector<Device*>& devices) {
  double target = 0.0;
  for (const Device* d : devices) {
    target = std::max(target, d->clock_seconds());
  }
  return target;
}

}  // namespace cumf::gpusim
