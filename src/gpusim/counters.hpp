#pragma once

// Traffic accounting for simulated kernels.
//
// Kernels compute their traffic analytically as they execute (aggregate
// counts per launch, not per element, so accounting costs nothing at run
// time) and hand a KernelStats to Device::account_kernel, which advances the
// device's simulated clock via a roofline model. Table-3 validation
// (bench/table3_cost_model) checks these counters against the paper's
// closed-form costs.

#include <algorithm>

#include "util/types.hpp"

namespace cumf::gpusim {

struct KernelStats {
  double flops = 0.0;

  bytes_t global_read = 0;    // contiguous global-memory reads
  bytes_t global_write = 0;   // global-memory writes
  bytes_t gathered_read = 0;  // discontiguous read-only traffic (θ gathers);
                              // routed via texture when the kernel enables it
  bool gathered_via_texture = false;
  // Texture-cache effectiveness for this kernel's gather pattern in (0, 1]:
  // high when the same θ columns are re-fetched by many rows (Netflix-like),
  // lower on sparse catalogs with little reuse (YahooMusic-like, §5.3).
  double gather_quality = 1.0;

  bytes_t shared_read = 0;
  bytes_t shared_write = 0;

  KernelStats& operator+=(const KernelStats& o) {
    flops += o.flops;
    global_read += o.global_read;
    global_write += o.global_write;
    gathered_read += o.gathered_read;
    shared_read += o.shared_read;
    shared_write += o.shared_write;
    gathered_via_texture = gathered_via_texture || o.gathered_via_texture;
    gather_quality = std::min(gather_quality, o.gather_quality);
    return *this;
  }
};

/// Cumulative per-device totals since construction / reset.
struct DeviceCounters {
  double flops = 0.0;
  bytes_t global_read = 0;
  bytes_t global_write = 0;
  bytes_t gathered_read = 0;
  bytes_t texture_read = 0;  // the subset of gathered_read served by texture
  bytes_t shared_read = 0;
  bytes_t shared_write = 0;
  bytes_t h2d_bytes = 0;
  bytes_t d2h_bytes = 0;
  bytes_t d2d_bytes = 0;
  std::uint64_t kernels_launched = 0;
  std::uint64_t transfers = 0;

  void reset() { *this = DeviceCounters{}; }
};

}  // namespace cumf::gpusim
