#pragma once

// Convenience owner for a set of simulated devices wired to a topology —
// the "one machine with p GPUs" of the paper's experiments.

#include <memory>
#include <vector>

#include "gpusim/device.hpp"
#include "gpusim/topology.hpp"

namespace cumf::gpusim {

class DeviceGroup {
 public:
  /// Creates `p` devices of identical `spec`, with socket assignment taken
  /// from the topology.
  DeviceGroup(int p, const DeviceSpec& spec, const PcieTopology& topo) {
    devices_.reserve(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      devices_.push_back(std::make_unique<Device>(d, spec, topo.socket_of(d)));
    }
  }

  [[nodiscard]] int size() const { return static_cast<int>(devices_.size()); }
  [[nodiscard]] Device& operator[](int i) {
    return *devices_[static_cast<std::size_t>(i)];
  }

  /// Pointer view for APIs taking std::vector<Device*>.
  [[nodiscard]] std::vector<Device*> pointers() const {
    std::vector<Device*> out;
    out.reserve(devices_.size());
    for (const auto& d : devices_) out.push_back(d.get());
    return out;
  }

 private:
  std::vector<std::unique_ptr<Device>> devices_;
};

}  // namespace cumf::gpusim
