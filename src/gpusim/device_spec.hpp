#pragma once

// Hardware descriptions for the simulated devices.
//
// The paper evaluates on Nvidia Titan X (Maxwell, 3072 cores, 12 GB) and
// GK210 (one half of a K80, 2496 cores, 12 GB). We reproduce their published
// characteristics here; every modeled quantity used by the simulator is an
// explicit field of this struct so the timing model is fully inspectable.
//
// Memory-hierarchy modeling (Table 4 of the paper):
//  * global  — large, high latency. Contiguous traffic runs at mem_bw_gbps;
//    *gathered* traffic (discontiguous θ_v column fetches, §2.2 challenge 1)
//    only achieves gather_efficiency_global of that bandwidth, reflecting
//    wasted sectors on uncoalesced access.
//  * texture — read-only cache; gathered read-only traffic routed through it
//    achieves gather_efficiency_texture of texture_bw_gbps (spatial locality
//    + cross-row reuse of θ columns).
//  * shared  — per-SM scratchpad at shared_bw_gbps, capacity
//    shared_bytes_per_sm (the bin-size constraint of Algorithm 2 line 6).
//  * register — per-SM register file; traffic is free (that is the point of
//    the paper's Listing-1 optimization) but capacity bounds how much state a
//    block may hold.

#include <string>

#include "util/types.hpp"

namespace cumf::gpusim {

struct DeviceSpec {
  std::string name;

  int num_sms = 0;
  int cores_per_sm = 0;
  double clock_ghz = 0.0;

  double peak_sp_gflops = 0.0;   // single-precision peak
  double mem_bw_gbps = 0.0;      // global memory, contiguous
  double texture_bw_gbps = 0.0;  // texture cache service rate
  double shared_bw_gbps = 0.0;   // aggregate shared-memory bandwidth

  double gather_efficiency_global = 0.55;   // uncoalesced reads, L2-assisted
  double gather_efficiency_texture = 0.70;  // same reads via texture cache

  bytes_t global_bytes = 0;           // device memory capacity (12 GB)
  bytes_t shared_bytes_per_sm = 0;    // 48 or 96 KB
  bytes_t register_bytes_per_sm = 0;  // 256 KB on Maxwell

  double kernel_launch_overhead_us = 5.0;

  /// Effective bandwidth for gathered traffic when routed through global
  /// memory vs the texture path.
  [[nodiscard]] double gathered_global_bw() const {
    return mem_bw_gbps * gather_efficiency_global;
  }
  [[nodiscard]] double gathered_texture_bw() const {
    return texture_bw_gbps * gather_efficiency_texture;
  }
};

/// Nvidia Titan X (Maxwell GM200) — the card of §5.1.
DeviceSpec titan_x();

/// Nvidia GK210, one half of a Tesla K80 — the card of §5.5.
DeviceSpec gk210();

/// A deliberately tiny device for partition-planner and OOM tests
/// (capacity in MB instead of GB, same ratios otherwise).
DeviceSpec tiny_device(bytes_t global_capacity);

/// Host/PCIe link speed shared by the presets (GB/s, per direction).
inline constexpr double kPcieGbps = 12.0;
/// Effective inter-socket (QPI) bandwidth for device-to-device traffic that
/// crosses sockets (GB/s, per direction). Slower than intra-socket PCIe,
/// which is what makes the two-phase reduction of Fig. 5(b) win.
inline constexpr double kInterSocketGbps = 6.0;

}  // namespace cumf::gpusim
