#include "gpusim/device_spec.hpp"

namespace cumf::gpusim {

DeviceSpec titan_x() {
  DeviceSpec s;
  s.name = "TitanX";
  s.num_sms = 24;
  s.cores_per_sm = 128;  // 3072 CUDA cores total (§5.1)
  s.clock_ghz = 1.0;
  s.peak_sp_gflops = 6144.0;  // 3072 cores * 1 GHz * 2 flops (FMA)
  s.mem_bw_gbps = 336.0;
  s.texture_bw_gbps = 600.0;
  // Aggregate across 24 SMs (~128 B/cycle/SM at 1 GHz).
  s.shared_bw_gbps = 3000.0;
  s.global_bytes = 12_GiB;
  s.shared_bytes_per_sm = 96_KiB;
  s.register_bytes_per_sm = 256_KiB;
  return s;
}

DeviceSpec gk210() {
  DeviceSpec s;
  s.name = "GK210";
  s.num_sms = 13;
  s.cores_per_sm = 192;  // 2496 CUDA cores total (§5.5)
  s.clock_ghz = 0.875;
  s.peak_sp_gflops = 2496.0 * 0.875 * 2.0 / 1.0;  // ~4368
  s.mem_bw_gbps = 240.0;
  s.texture_bw_gbps = 440.0;
  s.shared_bw_gbps = 2200.0;  // 13 SMX, wider Kepler shared banks
  s.global_bytes = 12_GiB;
  s.shared_bytes_per_sm = 48_KiB;  // Kepler default split
  s.register_bytes_per_sm = 512_KiB;  // GK210 doubled the Kepler register file
  return s;
}

DeviceSpec tiny_device(bytes_t global_capacity) {
  DeviceSpec s = titan_x();
  s.name = "Tiny";
  s.global_bytes = global_capacity;
  return s;
}

}  // namespace cumf::gpusim
