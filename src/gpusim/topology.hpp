#pragma once

// PCIe interconnect model (§4.2 of the paper).
//
// Devices hang off sockets; each device has a full-duplex PCIe channel (one
// resource per direction), and traffic between sockets additionally crosses a
// shared inter-socket link (also full-duplex, lower bandwidth). The host has
// its own channel pair.
//
// A batch of concurrent transfers is scored with a bottleneck (makespan)
// model: every directed resource serializes the bytes routed through it, and
// the batch takes as long as its busiest resource. This captures exactly the
// paper's two claims: the one-phase parallel reduction wins because it
// spreads bytes over every device's in- AND out-channel (full duplex), and
// the two-phase scheme wins again because it minimizes bytes crossing the
// slow inter-socket link.

#include <span>
#include <vector>

#include "util/types.hpp"

namespace cumf::gpusim {

/// Endpoint id: 0..p-1 are devices, kHost is the host.
inline constexpr int kHost = -1;

struct Transfer {
  int src = kHost;
  int dst = kHost;
  bytes_t bytes = 0;
};

class PcieTopology {
 public:
  /// All `p` devices on a single PCIe root (Fig. 5a's assumption).
  static PcieTopology flat(int p, double pcie_gbps = 12.0);

  /// Devices split evenly across two sockets (Fig. 5b's machine: every two
  /// GPUs connect to one socket).
  static PcieTopology two_socket(int p, double pcie_gbps = 12.0,
                                 double inter_socket_gbps = 6.0);

  [[nodiscard]] int num_devices() const {
    return static_cast<int>(socket_of_.size());
  }
  [[nodiscard]] int socket_of(int device) const {
    return device == kHost ? host_socket_
                           : socket_of_[static_cast<std::size_t>(device)];
  }
  [[nodiscard]] int num_sockets() const { return num_sockets_; }
  [[nodiscard]] double pcie_gbps() const { return pcie_gbps_; }
  [[nodiscard]] double inter_socket_gbps() const { return inter_socket_gbps_; }

  /// Modeled seconds for one isolated transfer.
  [[nodiscard]] double transfer_seconds(const Transfer& t) const;

  /// Modeled seconds for a batch of transfers that all start together
  /// (bottleneck model over directed channel resources).
  [[nodiscard]] double makespan_seconds(std::span<const Transfer> batch) const;

 private:
  PcieTopology() = default;

  std::vector<int> socket_of_;
  int num_sockets_ = 1;
  int host_socket_ = 0;
  double pcie_gbps_ = 12.0;
  double inter_socket_gbps_ = 6.0;
};

}  // namespace cumf::gpusim
