#include "gpusim/topology.hpp"

#include <algorithm>
#include <stdexcept>

namespace cumf::gpusim {

PcieTopology PcieTopology::flat(int p, double pcie_gbps) {
  if (p <= 0) throw std::invalid_argument("PcieTopology: p must be > 0");
  PcieTopology t;
  t.socket_of_.assign(static_cast<std::size_t>(p), 0);
  t.num_sockets_ = 1;
  t.pcie_gbps_ = pcie_gbps;
  t.inter_socket_gbps_ = pcie_gbps;  // unused: nothing ever crosses
  return t;
}

PcieTopology PcieTopology::two_socket(int p, double pcie_gbps,
                                      double inter_socket_gbps) {
  if (p <= 0) throw std::invalid_argument("PcieTopology: p must be > 0");
  PcieTopology t;
  t.socket_of_.resize(static_cast<std::size_t>(p));
  // First half of the devices on socket 0, second half on socket 1.
  for (int d = 0; d < p; ++d) {
    t.socket_of_[static_cast<std::size_t>(d)] = (d < (p + 1) / 2) ? 0 : 1;
  }
  t.num_sockets_ = 2;
  t.pcie_gbps_ = pcie_gbps;
  t.inter_socket_gbps_ = inter_socket_gbps;
  return t;
}

namespace {

// Directed channel resources for the bottleneck model.
// Layout: [dev d out][dev d in] [host out per socket][host in per socket]
//         [inter-socket a->b].
struct ResourceMap {
  int num_devices;
  int num_sockets;

  [[nodiscard]] int dev_out(int d) const { return 2 * d; }
  [[nodiscard]] int dev_in(int d) const { return 2 * d + 1; }
  [[nodiscard]] int host_out(int s) const { return 2 * num_devices + 2 * s; }
  [[nodiscard]] int host_in(int s) const { return 2 * num_devices + 2 * s + 1; }
  [[nodiscard]] int inter(int a, int b) const {
    return 2 * num_devices + 2 * num_sockets + a * num_sockets + b;
  }
  [[nodiscard]] int total() const {
    return 2 * num_devices + 2 * num_sockets + num_sockets * num_sockets;
  }
};

}  // namespace

double PcieTopology::transfer_seconds(const Transfer& t) const {
  if (t.bytes == 0) return 0.0;
  double bw = pcie_gbps_;
  if (t.src != kHost && t.dst != kHost &&
      socket_of(t.src) != socket_of(t.dst)) {
    bw = std::min(bw, inter_socket_gbps_);
  }
  return static_cast<double>(t.bytes) / (bw * 1e9);
}

double PcieTopology::makespan_seconds(std::span<const Transfer> batch) const {
  const ResourceMap rm{num_devices(), num_sockets_};
  std::vector<double> busy(static_cast<std::size_t>(rm.total()), 0.0);

  auto add = [&busy](int resource, double seconds) {
    busy[static_cast<std::size_t>(resource)] += seconds;
  };

  for (const Transfer& t : batch) {
    if (t.bytes == 0) continue;
    const double pcie_s = static_cast<double>(t.bytes) / (pcie_gbps_ * 1e9);
    const double inter_s =
        static_cast<double>(t.bytes) / (inter_socket_gbps_ * 1e9);

    if (t.src == kHost && t.dst == kHost) continue;
    if (t.src == kHost) {
      add(rm.host_out(socket_of(t.dst)), pcie_s);
      add(rm.dev_in(t.dst), pcie_s);
    } else if (t.dst == kHost) {
      add(rm.dev_out(t.src), pcie_s);
      add(rm.host_in(socket_of(t.src)), pcie_s);
    } else {
      add(rm.dev_out(t.src), pcie_s);
      add(rm.dev_in(t.dst), pcie_s);
      const int sa = socket_of(t.src);
      const int sb = socket_of(t.dst);
      if (sa != sb) add(rm.inter(sa, sb), inter_s);
    }
  }
  return *std::max_element(busy.begin(), busy.end());
}

}  // namespace cumf::gpusim
