#include "costmodel/serving_fleet.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "gpusim/device.hpp"

namespace cumf::costmodel {

std::vector<PricedDevice> priced_serving_devices() {
  return {{gpusim::titan_x(), titan_x_pricing()},
          {gpusim::gk210(), gk210_pricing()}};
}

ServingProfile model_serving_profile(const gpusim::DeviceSpec& spec,
                                     const gpusim::KernelStats& batch_traffic,
                                     std::uint64_t launches, int batch_users) {
  ServingProfile profile;
  profile.batch_users = batch_users;
  if (batch_users <= 0) return profile;
  // model_kernel_seconds prices the aggregate traffic plus one launch
  // overhead; the remaining launches add theirs on top (the simulated stream
  // runs them back to back).
  const gpusim::Device pricer(0, spec);
  const double extra_launches =
      launches > 0 ? static_cast<double>(launches - 1) : 0.0;
  profile.batch_seconds = pricer.model_kernel_seconds(batch_traffic) +
                          extra_launches * spec.kernel_launch_overhead_us * 1e-6;
  return profile;
}

ServingProfile measured_serving_profile(const serve::ServeStats& stats,
                                        int batch_users, bool use_modeled) {
  ServingProfile profile;
  profile.batch_users = batch_users;
  const double p50_ms = use_modeled && stats.batch_modeled.total_recorded > 0
                            ? stats.batch_modeled.p50_ms
                            : stats.batch_wall.p50_ms;
  profile.batch_seconds = p50_ms * 1e-3;
  // The batcher's own queueing-delay tail, widened by the front-end when the
  // snapshot came from a TCP server: accept→reply p99 minus one median batch
  // of service time is everything a wire query waited for — io-shard
  // scheduling, completion-lane hand-off, and batcher queueing together —
  // which the in-process queue_delay tracker alone cannot see.
  double floor_ms = stats.queue_delay.p99_ms;
  if (stats.net_e2e.total_recorded > 0) {
    floor_ms =
        std::max(floor_ms, stats.net_e2e.p99_ms - stats.batch_wall.p50_ms);
  }
  profile.queue_floor_s = std::max(0.0, floor_ms) * 1e-3;
  return profile;
}

namespace {

/// Modeled p99 for `devices` devices sharing the target load (see the header
/// for the fill/queue/service decomposition). Returns +inf at ρ ≥ 1.
double modeled_p99_ms(const FleetRequirement& req,
                      const ServingProfile& profile, int devices) {
  const double lambda = req.target_qps / devices;  // qps per device
  const double rho = lambda / profile.device_qps();
  if (rho >= 1.0) return std::numeric_limits<double>::infinity();
  const double fill_s =
      std::min(profile.batch_users / lambda, req.max_fill_ms * 1e-3);
  const double queue_s =
      profile.batch_seconds * rho / (2.0 * (1.0 - rho));
  // The analytic wait can never undercut queueing a live batcher actually
  // measured (deadline waits, scheduling) — a measured profile's floor.
  const double wait_s = std::max(fill_s + queue_s, profile.queue_floor_s);
  return (wait_s + profile.batch_seconds) * 1e3;
}

}  // namespace

FleetPlan plan_serving_fleet(const FleetRequirement& req,
                             const gpusim::DeviceSpec& spec,
                             double price_per_device_hr,
                             const ServingProfile& profile) {
  FleetPlan plan;
  plan.device = spec.name;
  plan.device_qps = profile.device_qps();
  if (req.target_qps <= 0.0 || plan.device_qps <= 0.0) return plan;

  // Smallest fleet that can absorb the load at all (ρ < 1)...
  const int n_min = std::max(
      1, static_cast<int>(std::floor(req.target_qps / plan.device_qps)) + 1);
  // ...scanned upward: more devices trade queueing for batch-fill latency,
  // so p99 is not monotone and the first SLO-meeting size is the answer.
  // Past ~32× the capacity floor fill time dominates and nothing improves.
  const int n_max = std::max(n_min + 16, n_min * 32);

  int best_n = n_min;
  double best_p99 = std::numeric_limits<double>::infinity();
  for (int n = n_min; n <= n_max; ++n) {
    const double p99 = modeled_p99_ms(req, profile, n);
    if (p99 < best_p99) {
      best_p99 = p99;
      best_n = n;
    }
    if (p99 <= req.p99_ms) {
      plan.feasible = true;
      best_n = n;
      best_p99 = p99;
      break;
    }
  }

  plan.devices = best_n;
  plan.nodes = best_n;  // one device per node unless a caller re-derives
  plan.modeled_p99_ms = best_p99;
  plan.fleet_qps = best_n * plan.device_qps;
  plan.dollars_per_hr = best_n * price_per_device_hr;
  plan.qps_per_dollar_hr =
      plan.dollars_per_hr > 0.0 ? req.target_qps / plan.dollars_per_hr : 0.0;
  return plan;
}

ServingProfile node_serving_profile(const ServingProfile& single,
                                    const MultiDeviceNode& node, int k,
                                    double shard_imbalance) {
  ServingProfile profile = single;
  const int p = std::max(1, node.devices);
  if (p == 1) return profile;
  // Kernel time: the sweep splits across devices; the batch finishes when the
  // most loaded device does, i.e. the even share scaled by the placement's
  // imbalance (1 = perfect split; capped at full single-device time).
  const double imbalance = std::max(1.0, shard_imbalance);
  const double kernel_s =
      std::min(single.batch_seconds, single.batch_seconds * imbalance / p);
  // Gather: every device ships batch_users × k (item, score) pairs — 8 bytes
  // each — over the shared host link, which serializes the p transfers.
  const double gather_bytes = static_cast<double>(p) *
                              static_cast<double>(single.batch_users) *
                              static_cast<double>(k) * 8.0;
  const double gather_s = node.interconnect_gbps > 0.0
                              ? gather_bytes / (node.interconnect_gbps * 1e9)
                              : 0.0;
  profile.batch_seconds = kernel_s + gather_s;
  return profile;
}

FleetPlan plan_multi_device_fleet(const FleetRequirement& req,
                                  const MultiDeviceNode& node,
                                  const ServingProfile& single_device, int k,
                                  double shard_imbalance) {
  const int p = std::max(1, node.devices);
  const ServingProfile profile =
      node_serving_profile(single_device, node, k, shard_imbalance);
  FleetPlan plan = plan_serving_fleet(req, node.spec,
                                      node.price_per_device_hr * p, profile);
  plan.nodes = plan.devices;  // the scan counted nodes
  plan.devices_per_node = p;
  plan.devices = plan.nodes * p;
  if (p > 1) {
    plan.device += "x" + std::to_string(p);
    const double gather_bytes = static_cast<double>(p) *
                                static_cast<double>(single_device.batch_users) *
                                static_cast<double>(k) * 8.0;
    plan.interconnect_ms = node.interconnect_gbps > 0.0
                               ? gather_bytes / (node.interconnect_gbps * 1e9) *
                                     1e3
                               : 0.0;
  }
  return plan;
}

}  // namespace cumf::costmodel
