#include "costmodel/table3.hpp"

namespace cumf::costmodel {

Table3Row Table3Model::one_item() const {
  Table3Row row;
  const double dm = static_cast<double>(m);
  const double dnz = static_cast<double>(nz);
  const double df = static_cast<double>(f);
  row.a_compute = dnz * df * (df + 1.0) / (2.0 * dm);
  row.b_compute = (dnz + dnz * df) / dm + 2.0 * df;
  row.solve_compute = df * df * df;
  row.a_mem_floats = df * df;
  row.b_mem_floats = static_cast<double>(n) * df + df +
                     (2.0 * dnz + dm + 1.0) / dm;
  return row;
}

Table3Row Table3Model::batch(std::int64_t mb) const {
  const Table3Row one = one_item();
  const double dmb = static_cast<double>(mb);
  Table3Row row;
  row.a_compute = one.a_compute * dmb;
  row.b_compute = one.b_compute * dmb;
  row.solve_compute = one.solve_compute * dmb;
  row.a_mem_floats = one.a_mem_floats * dmb;
  // Θ and R are shared across the batch; only B_u and X grow with m_b.
  const double df = static_cast<double>(f);
  row.b_mem_floats = static_cast<double>(n) * df + dmb * df +
                     dmb * (2.0 * static_cast<double>(nz) +
                            static_cast<double>(m) + 1.0) /
                         static_cast<double>(m);
  return row;
}

double Table3Model::resident_floats() const {
  const double df = static_cast<double>(f);
  return static_cast<double>(m) * df * df      // A
         + static_cast<double>(m) * df         // X
         + static_cast<double>(n) * df         // Θ
         + 2.0 * static_cast<double>(nz) + static_cast<double>(m) + 1.0;  // R
}

}  // namespace cumf::costmodel
