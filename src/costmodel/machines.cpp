#include "costmodel/machines.hpp"

#include <algorithm>
#include <cmath>

namespace cumf::costmodel {

CpuSpec xeon_30core() { return {"Xeon-30core", 30, 16.0, 100.0}; }
CpuSpec m3_2xlarge() { return {"m3.2xlarge", 8, 12.0, 30.0}; }
CpuSpec c3_2xlarge() { return {"c3.2xlarge", 8, 16.0, 30.0}; }

double libmf_efficiency(int threads) {
  // Scales well to 16 threads, flat afterwards (§6.2 and [19]).
  if (threads <= 1) return 1.0;
  const double effective = std::min(threads, 16);
  return 0.85 * effective / threads + (threads <= 16 ? 0.15 : 0.0);
}

double nomad_efficiency(int threads) {
  // Sub-linear but keeps improving (§5.4): ~85% at 4, ~70% at 30.
  if (threads <= 1) return 1.0;
  return std::max(0.55, 1.0 - 0.05 * std::log2(static_cast<double>(threads)) * 2.0);
}

double sgd_epoch_seconds(const CpuSpec& cpu, int threads, double efficiency,
                         double nz, int f) {
  const int used = std::min(threads, cpu.cores);
  const double eff_cores = std::max(1.0, used * efficiency);
  const double flops = nz * 6.0 * f;
  const double bytes = nz * 4.0 * f * sizeof(real_t);
  const double compute_s = flops / (cpu.gflops_per_core * 1e9 * eff_cores);
  // Memory bandwidth is shared across cores; efficiency models contention.
  const double mem_s = bytes / (cpu.mem_bw_gbps * 1e9 * efficiency);
  return std::max(compute_s, mem_s);
}

ClusterSpec nomad_hpc64() {
  // Stampede-class HPC nodes with a fast interconnect.
  return {"NOMAD-HPC64", 64, {"hpc-node", 16, 20.0, 80.0}, 5.0, 0.0, 0.75};
}

ClusterSpec nomad_aws32() {
  // m1.xlarge superseded by m3.xlarge (Table 1 note): $0.27/node/hr. The
  // low efficiency reflects what Fig. 10 shows: on virtualized AWS nodes
  // with slow interconnect NOMAD runs far below its HPC-cluster rate
  // (stragglers + token starvation).
  return {"NOMAD-AWS32", 32, {"m3.xlarge", 4, 10.0, 15.0}, 0.12, 0.27, 0.2};
}

ClusterSpec sparkals_cluster() {
  return {"SparkALS-50", 50, m3_2xlarge(), 0.12, 0.53, 0.45};
}

ClusterSpec factorbird_cluster() {
  return {"Factorbird-50", 50, c3_2xlarge(), 0.12, 0.42, 0.5};
}

double cluster_sgd_epoch_seconds(const ClusterSpec& cluster, double nz, int f,
                                 double model_floats) {
  const double per_node =
      sgd_epoch_seconds(cluster.node, cluster.node.cores,
                        cluster.parallel_efficiency, nz / cluster.nodes, f);
  const double comm_bytes = model_floats * sizeof(real_t) / cluster.nodes;
  const double comm_s = comm_bytes / (cluster.net_gbps_per_node * 1e9);
  // Compute and communication overlap imperfectly; take the bottleneck plus
  // a fraction of the other (NOMAD overlaps well, Spark barely — the
  // parallel_efficiency field already differentiates the systems).
  return std::max(per_node, comm_s) +
         0.25 * std::min(per_node, comm_s);
}

double run_cost_dollars(double price_per_node_hr, int nodes, double seconds) {
  return price_per_node_hr * nodes * (seconds / 3600.0);
}

GpuPricing gk210_pricing() {
  return {"GK210", kCumfMachinePricePerHr / 4.0};
}

GpuPricing titan_x_pricing() { return {"TitanX", 0.91}; }

}  // namespace cumf::costmodel
