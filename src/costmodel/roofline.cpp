#include "costmodel/roofline.hpp"

#include <algorithm>

namespace cumf::costmodel {

double roofline_gflops(const gpusim::DeviceSpec& spec, double flops_per_byte) {
  return std::min(spec.peak_sp_gflops, flops_per_byte * spec.mem_bw_gbps);
}

double roofline_ridge(const gpusim::DeviceSpec& spec) {
  return spec.peak_sp_gflops / spec.mem_bw_gbps;
}

double hermitian_intensity_mo(double nz, double rows, int f) {
  const double flops = nz * f * (f + 1.0);
  const double bytes = (nz * f + rows * static_cast<double>(f) * f) * 4.0;
  return flops / bytes;
}

double hermitian_intensity_base(double nz, double rows, int f) {
  (void)rows;
  const double flops = nz * f * (f + 1.0);
  const double bytes = 3.0 * nz * static_cast<double>(f) * f * 4.0;
  return flops / bytes;
}

}  // namespace cumf::costmodel
