#pragma once

// Closed-form compute/memory model of the ALS update-X step — Table 3 of the
// paper, verbatim:
//
//              compute cost                    memory footprint (floats)
//   A_u:   Nz·f(f+1)/2m  per item              f²
//   B_u:   (Nz + Nz·f)/m + 2f per item         n·f + f + (2Nz + m + 1)/m
//   solve: f³ per item                         (in place)
//
// with the m_b-item and all-m rows scaling linearly. The gpusim counters are
// validated against these formulas in bench/table3_cost_model.

#include <cstdint>

namespace cumf::costmodel {

struct Table3Row {
  double a_compute = 0.0;   // multiplications for A
  double b_compute = 0.0;   // operations for B
  double solve_compute = 0.0;
  double a_mem_floats = 0.0;
  double b_mem_floats = 0.0;
};

struct Table3Model {
  std::int64_t m = 0;
  std::int64_t n = 0;
  std::int64_t nz = 0;
  int f = 0;

  [[nodiscard]] Table3Row one_item() const;
  [[nodiscard]] Table3Row batch(std::int64_t mb) const;
  [[nodiscard]] Table3Row all_items() const { return batch(m); }

  /// Total single-precision bytes the update-X step must hold resident
  /// without batching: m·f² (A) + m·f (X) + n·f (Θ) + CSR(R). This is the
  /// §2.2 capacity argument (Netflix at f=100 → 4.8e9 floats > 3e9).
  [[nodiscard]] double resident_floats() const;
};

}  // namespace cumf::costmodel
