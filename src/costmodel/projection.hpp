#pragma once

// Full-scale cuMF iteration projection.
//
// The paper's headline numbers (Table 1, Fig. 11) are per-iteration times on
// data sets with 10⁹ rows and 10¹¹ ratings — far beyond anything we can
// materialize. We *run* scaled replicas to validate convergence behaviour,
// and *project* full-scale per-iteration time from the same analytic kernel
// model the simulator uses: the eq.-8 planner picks (mode, p, q), the
// Hermitian/solve kernel stats are priced on the device's roofline, the
// reduction schedule on the PCIe model, and host transfers on the host
// channel. Compute and transfer overlap (the paper's async streams), so an
// update phase costs max(compute, transfer) + reduction.
//
// Roofline models are optimistic; real sparse kernels reach a fraction of
// peak. kAchievedFraction calibrates that gap (0.3 is a typical achieved
// fraction for irregular sparse kernels, and puts our projected SparkALS
// iteration in the paper's reported range). All comparisons in the benches
// are ratios against published baseline anchors, which do not depend on this
// constant's exact value.

#include "core/planner.hpp"
#include "core/reduction.hpp"
#include "data/datasets.hpp"
#include "gpusim/device_spec.hpp"
#include "gpusim/topology.hpp"

namespace cumf::costmodel {

inline constexpr double kAchievedFraction = 0.3;

struct ProjectionResult {
  double update_x_seconds = 0.0;
  double update_theta_seconds = 0.0;
  core::Plan plan_x;
  core::Plan plan_theta;
  [[nodiscard]] double iteration_seconds() const {
    return update_x_seconds + update_theta_seconds;
  }
};

/// Projects one full ALS iteration (update-X + update-Θ) for `full` on
/// `num_devices` devices of `spec` wired as `topo`.
ProjectionResult project_cumf_iteration(const data::DatasetSpec& full,
                                        const gpusim::DeviceSpec& spec,
                                        int num_devices,
                                        const gpusim::PcieTopology& topo,
                                        core::ReduceScheme scheme);

}  // namespace cumf::costmodel
