#include "costmodel/projection.hpp"

#include <algorithm>

#include "core/kernels.hpp"
#include "gpusim/device.hpp"

namespace cumf::costmodel {

namespace {

/// Modeled seconds for one update phase at full scale.
double phase_seconds(std::int64_t rows, std::int64_t cols, std::int64_t nz,
                     int f, const gpusim::DeviceSpec& spec, int P,
                     const gpusim::PcieTopology& topo,
                     core::ReduceScheme scheme, core::Plan& plan_out) {
  core::PlanInput in;
  in.rows_solved = rows;
  in.cols_fixed = cols;
  in.nz = nz;
  in.f = f;
  in.physical_devices = P;
  in.capacity = spec.global_bytes;
  plan_out = core::plan_partition(in);
  const core::Plan& plan = plan_out;

  gpusim::Device model_dev(0, spec);
  const core::KernelOptions mo{};  // full MO-ALS kernel

  // Hermitian work per device: each device sees ~nz/P ratings; under data
  // parallelism every device also flushes a partial A for every row.
  const auto dev_nz = static_cast<nnz_t>(nz / P);
  const idx_t dev_rows =
      plan.mode == core::ParallelMode::DataParallel
          ? static_cast<idx_t>(std::min<std::int64_t>(rows, 1LL << 30))
          : static_cast<idx_t>(std::min<std::int64_t>(rows / P, 1LL << 30));
  auto herm = core::hermitian_kernel_stats(
      dev_nz, dev_rows, f, mo,
      static_cast<idx_t>(std::min<std::int64_t>(cols, 1LL << 30)));
  // Batched execution launches q kernels instead of one.
  herm.flops *= 1.0;  // traffic already totals; only overhead multiplies
  double compute =
      model_dev.model_kernel_seconds(herm) / kAchievedFraction +
      spec.kernel_launch_overhead_us * 1e-6 * plan.q;

  const auto solve_rows = static_cast<idx_t>(
      std::min<std::int64_t>(rows / P, 1LL << 30));
  compute +=
      model_dev.model_kernel_seconds(core::solve_kernel_stats(solve_rows, f)) /
      kAchievedFraction;

  // Reduction (data parallelism only): rows·(f² + f) elements per batch,
  // totalled across the q batches.
  double reduce_s = 0.0;
  if (plan.mode == core::ParallelMode::DataParallel && P > 1) {
    const double total_elems =
        static_cast<double>(rows) * (static_cast<double>(f) * f + f);
    reduce_s = core::reduce_modeled_seconds(P, topo, total_elems, scheme, spec);
  }

  // Host transfers: R streamed once (2·nz words), fixed factor cols·f floats
  // (replicated per device under model parallelism, or re-sent per wave of
  // the elastic schedule), solved rows·f floats gathered back. The host
  // channel carries all of it.
  const int waves = (plan.p + P - 1) / P;
  double fixed_copies = 1.0;
  if (plan.mode == core::ParallelMode::ModelParallel) {
    fixed_copies = P;
  } else if (plan.mode == core::ParallelMode::DataParallel && waves > 1) {
    fixed_copies = static_cast<double>(plan.q);  // re-streamed per batch
  }
  const double h2d_bytes =
      2.0 * static_cast<double>(nz) * sizeof(real_t) +
      fixed_copies * static_cast<double>(cols) * f * sizeof(real_t);
  const double d2h_bytes = static_cast<double>(rows) * f * sizeof(real_t);
  const double transfer_s =
      (h2d_bytes + d2h_bytes) / (topo.pcie_gbps() * 1e9);

  // Async streams overlap loading with compute (§4.4 out-of-core pipeline).
  return std::max(compute, transfer_s) + reduce_s;
}

}  // namespace

ProjectionResult project_cumf_iteration(const data::DatasetSpec& full,
                                        const gpusim::DeviceSpec& spec,
                                        int num_devices,
                                        const gpusim::PcieTopology& topo,
                                        core::ReduceScheme scheme) {
  ProjectionResult out;
  out.update_x_seconds =
      phase_seconds(full.m, full.n, full.nz, full.f, spec, num_devices, topo,
                    scheme, out.plan_x);
  out.update_theta_seconds =
      phase_seconds(full.n, full.m, full.nz, full.f, spec, num_devices, topo,
                    scheme, out.plan_theta);
  return out;
}

}  // namespace cumf::costmodel
