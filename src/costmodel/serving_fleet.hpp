#pragma once

// Serving-fleet projection — the Table 3 cost treatment applied to serving.
//
// Training already answers "seconds and dollars per ALS iteration"
// (projection.hpp, Table 1). This module answers the serving twin: *how many
// GPUs, at what $/hour, to serve N qps at p99 ≤ L ms*. It combines
//
//  - a ServingProfile: per-micro-batch modeled kernel time on one device,
//    taken from GpuSimScoringBackend's accounted launches (measured sweep
//    counters priced on the device roofline) or built analytically from
//    aggregate KernelStats;
//  - machines.hpp pricing at device granularity (GpuPricing).
//
// The latency model, per device at arrival rate λ = target_qps / devices
// (documented so the projection stays inspectable):
//
//   fill    = min(batch_users / λ, max_fill)   — a p99 query waits for its
//             micro-batch to fill or for the batcher deadline;
//   queue   = t_batch · ρ / (2(1−ρ))           — M/D/1 waiting time at
//             utilization ρ = λ / device_qps;
//   service = t_batch                          — its own batch's kernel time;
//   p99 ≈ (max(fill + queue, measured queue-delay floor) + service) · 1000 ms
//
// where the floor is ServingProfile::queue_floor_s — the queueing delay a
// live batcher actually measured (ServeStats::queue_delay p99), so profiles
// built from real serving runs price observed queueing, not just the ideal
// fill/queue terms.
//
// Note the tension the plan search has to resolve: adding devices lowers ρ
// (less queueing) but *raises* fill time (each device sees less traffic, so
// micro-batches take longer to fill). plan_serving_fleet scans fleet sizes
// and returns the smallest one meeting the SLO.

#include <string>
#include <vector>

#include "costmodel/machines.hpp"
#include "gpusim/counters.hpp"
#include "gpusim/device_spec.hpp"
#include "serve/serve_stats.hpp"

namespace cumf::costmodel {

/// A device spec paired with its hourly price — the unit the fleet planner
/// shops across.
struct PricedDevice {
  gpusim::DeviceSpec spec;
  GpuPricing pricing;
};

/// The priced presets benches and examples size fleets over (Titan X, GK210).
std::vector<PricedDevice> priced_serving_devices();

/// Per-device serving capability: modeled kernel seconds to answer one
/// micro-batch of `batch_users` queries.
struct ServingProfile {
  double batch_seconds = 0.0;
  int batch_users = 0;
  /// Measured per-query queueing-delay floor (seconds), typically
  /// ServeStats::queue_delay p99 from a live run. The analytic fill + M/D/1
  /// terms below model ideal queueing; this floor carries what they cannot
  /// see — batcher deadline waits and scheduling overhead actually observed
  /// at the serving edge — so a fleet plan fed a measured profile includes
  /// queueing, not just service time. 0 = no measurement, analytic only.
  double queue_floor_s = 0.0;

  /// Throughput of one device running batches back to back.
  [[nodiscard]] double device_qps() const {
    return batch_seconds > 0.0 ? batch_users / batch_seconds : 0.0;
  }
};

/// Analytic profile: price one micro-batch's aggregate kernel traffic on
/// `spec`'s roofline. `launches` is the number of kernel launches the batch
/// issued (one per shard × user-block sweep); each pays the launch overhead.
ServingProfile model_serving_profile(const gpusim::DeviceSpec& spec,
                                     const gpusim::KernelStats& batch_traffic,
                                     std::uint64_t launches, int batch_users);

/// Measured profile from a live ServeStats snapshot: batch_seconds from the
/// per-batch p50 (modeled when `use_modeled` and the backend populated it,
/// wall clock otherwise) and queue_floor_s from the measured queueing-delay
/// p99 — widened to the front-end's accept→reply p99 minus one median batch
/// of service time when the snapshot carries net_e2e samples, so a profile
/// fed from the sharded TCP front-end floors the planner on the whole wire
/// tail, not just the batcher's in-process queueing. The profile the TCP
/// front-end's stats feed straight into plan_serving_fleet.
ServingProfile measured_serving_profile(const serve::ServeStats& stats,
                                        int batch_users,
                                        bool use_modeled = false);

struct FleetRequirement {
  double target_qps = 0.0;
  double p99_ms = 0.0;        // latency SLO
  double max_fill_ms = 2.0;   // batcher deadline (BatcherOptions::max_delay)
};

struct FleetPlan {
  std::string device;          // DeviceSpec preset name (node name for
                               // multi-device plans, e.g. "gk210x2")
  bool feasible = false;       // SLO met at `devices`
  int devices = 0;             // smallest fleet meeting the SLO; with
                               // feasible=false, the fleet with the best p99
  double device_qps = 0.0;     // modeled per-device throughput (per-node for
                               // multi-device plans)
  double fleet_qps = 0.0;      // devices × device_qps (capacity headroom)
  double modeled_p99_ms = 0.0;
  double dollars_per_hr = 0.0;      // devices × price/device/hr
  double qps_per_dollar_hr = 0.0;   // target_qps / dollars_per_hr
  // Multi-device plans (plan_multi_device_fleet); single-device defaults
  // otherwise.
  int devices_per_node = 1;
  int nodes = 0;                   // == devices / devices_per_node
  double interconnect_ms = 0.0;    // candidate-gather slice of a node batch
};

/// Sizes a fleet of `spec` devices for `req`. Returns feasible=false when no
/// fleet size meets the SLO (e.g. p99 below one batch's kernel time); the
/// returned plan then carries the best-achievable p99 and its fleet size.
FleetPlan plan_serving_fleet(const FleetRequirement& req,
                             const gpusim::DeviceSpec& spec,
                             double price_per_device_hr,
                             const ServingProfile& profile);

/// A serving node built from several identical devices sharing one PCIe
/// interconnect — the unit plan_multi_device_fleet shops in, so the planner
/// can answer "2×cheap vs 1×big" with the gather cost priced in.
struct MultiDeviceNode {
  gpusim::DeviceSpec spec;
  double price_per_device_hr = 0.0;
  int devices = 1;
  /// Host-link bandwidth each device's candidate gather rides (GB/s).
  double interconnect_gbps = 12.0;
};

/// Derives a per-*node* serving profile from a single-device profile: the
/// item sweep splits across the node's devices (ideal 1/p kernel time,
/// degraded by `shard_imbalance` — max per-device share over the even share,
/// as MultiDeviceScoringBackend::placement_imbalance reports), then every
/// device ships its k-candidate partials over the shared host link, which
/// serializes the gather. `k` is the per-user top-k the gather carries.
ServingProfile node_serving_profile(const ServingProfile& single,
                                    const MultiDeviceNode& node, int k,
                                    double shard_imbalance = 1.0);

/// plan_serving_fleet over multi-device nodes: composes node_serving_profile,
/// prices nodes at devices × price/device/hr, and reports node/device counts
/// plus the per-batch interconnect slice.
FleetPlan plan_multi_device_fleet(const FleetRequirement& req,
                                  const MultiDeviceNode& node,
                                  const ServingProfile& single_device, int k,
                                  double shard_imbalance = 1.0);

}  // namespace cumf::costmodel
