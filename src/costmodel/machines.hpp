#pragma once

// Machine and cluster models for the CPU baselines, plus the cloud price
// table behind Table 1.
//
// The paper's cross-system numbers come from hardware we cannot run
// (30-core Xeons, 32/64-node clusters); we model their throughput and anchor
// per-iteration latencies at the values the paper itself reports, so every
// comparison's baseline side equals the published figure (see DESIGN.md §2).

#include <string>

#include "util/types.hpp"

namespace cumf::costmodel {

struct CpuSpec {
  std::string name;
  int cores = 1;
  double gflops_per_core = 16.0;  // SP, with SIMD
  double mem_bw_gbps = 60.0;
};

/// The 30-core machine of §5.2 (libMF/NOMAD single-node comparisons).
CpuSpec xeon_30core();
/// One AWS m3.2xlarge-class node (8 vCPU), the SparkALS cluster node.
CpuSpec m3_2xlarge();
/// One AWS c3.2xlarge-class node, Factorbird's node type.
CpuSpec c3_2xlarge();

/// Parallel efficiency of libMF at a given thread count: per §6.2 it "stops
/// scaling beyond 16 cores".
double libmf_efficiency(int threads);
/// NOMAD keeps scaling further but sub-linearly (§5.4: cache locality and
/// communication overhead).
double nomad_efficiency(int threads);

/// Modeled seconds for one SGD epoch (Nz eq.-(4) updates) on a CPU machine.
/// SGD is memory bound: each update touches 4f floats (read+write x_u, θ_v)
/// and does ~6f flops.
double sgd_epoch_seconds(const CpuSpec& cpu, int threads, double efficiency,
                         double nz, int f);

// --- clusters --------------------------------------------------------------

struct ClusterSpec {
  std::string name;
  int nodes = 1;
  CpuSpec node;
  double net_gbps_per_node = 1.0;  // usable point-to-point bandwidth
  double price_per_node_hr = 0.0;  // Table 1 prices
  double parallel_efficiency = 0.7;
};

/// NOMAD on the 64-node HPC cluster of Fig. 10.
ClusterSpec nomad_hpc64();
/// NOMAD on 32 AWS m3.xlarge-class nodes (Fig. 10, Table 1).
ClusterSpec nomad_aws32();
/// SparkALS: 50 × m3.2xlarge (§5.5).
ClusterSpec sparkals_cluster();
/// Factorbird: 50 nodes similar to c3.2xlarge (§5.5, Table 1).
ClusterSpec factorbird_cluster();

/// Modeled seconds for one distributed SGD epoch: per-node compute plus the
/// block/parameter hand-off traffic ((m+n)·f floats crossing the wire per
/// node per epoch, NOMAD-style).
double cluster_sgd_epoch_seconds(const ClusterSpec& cluster, double nz, int f,
                                 double model_floats);

// --- Table 1 pricing ---------------------------------------------------------

/// Amortized hourly price of the paper's GPU machine (one node, two K80s =
/// four GK210 devices, IBM SoftLayer): $2.44/hr.
inline constexpr double kCumfMachinePricePerHr = 2.44;

/// Published per-iteration anchors (§5.5 / Fig. 11).
inline constexpr double kSparkAlsSecPerIter = 240.0;
inline constexpr double kSparkAlsCumfSecPerIter = 24.0;
inline constexpr double kFactorbirdSecPerIter = 563.0;
inline constexpr double kFactorbirdCumfSecPerIter = 92.0;
inline constexpr double kFacebookCumfSecPerIter = 746.0;   // f = 16
inline constexpr double kCumfLargestSecPerIter = 3.8 * 3600;  // f = 100

/// cost = price/node/hr × nodes × hours (the Table 1 formula).
double run_cost_dollars(double price_per_node_hr, int nodes, double seconds);

// --- GPU device pricing ------------------------------------------------------
//
// The serving-fleet projection (costmodel/serving_fleet.hpp) prices fleets
// per *device*, so the node prices above are broken down to the simulated
// device granularity of gpusim::DeviceSpec.

struct GpuPricing {
  std::string name;                 // matches the DeviceSpec preset name
  double price_per_device_hr = 0.0;
};

/// One GK210: the paper's $2.44/hr SoftLayer node holds two K80s = four
/// GK210 devices, so a device-hour costs $0.61.
GpuPricing gk210_pricing();
/// One Titan X: amortized workstation estimate — a $1,000 card plus a host
/// share over three years of continuous use ≈ $0.91/device/hr (the paper
/// prices only the K80 node; this keeps the two presets comparable).
GpuPricing titan_x_pricing();

}  // namespace cumf::costmodel
