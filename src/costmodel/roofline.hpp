#pragma once

// Roofline model (§1/§3: "cuMF gets closer to the roofline performance of a
// single GPU"). Attainable GFLOP/s = min(peak, intensity × bandwidth).

#include "gpusim/device_spec.hpp"

namespace cumf::costmodel {

/// Attainable GFLOP/s at the given arithmetic intensity (flops per byte of
/// global traffic).
double roofline_gflops(const gpusim::DeviceSpec& spec,
                       double flops_per_byte);

/// The ridge point: the intensity at which a kernel turns compute bound.
double roofline_ridge(const gpusim::DeviceSpec& spec);

/// Arithmetic intensity of the get_hermitian phase: the MO kernel moves
/// ~Nz·f gathered floats + rows·f² flushed floats for Nz·f(f+1) flops;
/// the base (Alg. 1) kernel moves ~3·Nz·f² floats for the same flops.
double hermitian_intensity_mo(double nz, double rows, int f);
double hermitian_intensity_base(double nz, double rows, int f);

}  // namespace cumf::costmodel
