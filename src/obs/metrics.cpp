#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace cumf::obs {

namespace {

/// Prometheus label-value escaping: backslash, quote, newline.
void append_label_value(std::string* out, const std::string& v) {
  for (const char c : v) {
    switch (c) {
      case '\\':
        *out += "\\\\";
        break;
      case '"':
        *out += "\\\"";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        *out += c;
    }
  }
}

void append_labels(std::string* out, const Labels& labels,
                   const std::string& extra_key = {},
                   const std::string& extra_val = {}) {
  if (labels.empty() && extra_key.empty()) return;
  *out += '{';
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) *out += ',';
    first = false;
    *out += k;
    *out += "=\"";
    append_label_value(out, v);
    *out += '"';
  }
  if (!extra_key.empty()) {
    if (!first) *out += ',';
    *out += extra_key;
    *out += "=\"";
    append_label_value(out, extra_val);
    *out += '"';
  }
  *out += '}';
}

/// Numbers render compactly: integers without a fraction, everything else
/// with enough digits to round-trip.
void append_number(std::string* out, double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  *out += buf;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto i = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::merge_bins(const std::uint64_t* bin_counts, std::size_t n,
                           double sum, std::uint64_t count) {
  const std::size_t m = std::min(n, bounds_.size() + 1);
  for (std::size_t i = 0; i < m; ++i) {
    buckets_[i].fetch_add(bin_counts[i], std::memory_order_relaxed);
  }
  count_.fetch_add(count, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + sum,
                                     std::memory_order_relaxed)) {
  }
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Series& MetricsRegistry::find_or_create(
    const std::string& name, const std::string& help, Kind kind,
    const Labels& labels, const std::vector<double>* bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = families_.try_emplace(name);
  Family& fam = it->second;
  if (inserted) {
    fam.kind = kind;
    fam.help = help;
    if (bounds != nullptr) fam.bounds = *bounds;
  } else if (fam.kind != kind) {
    throw std::logic_error("MetricsRegistry: metric '" + name +
                           "' already registered with a different type");
  }
  for (auto& s : fam.series) {
    if (s->labels == labels) return *s;
  }
  auto series = std::make_unique<Series>();
  series->labels = labels;
  switch (kind) {
    case Kind::kCounter:
      series->counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      series->gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      series->histogram = std::make_unique<Histogram>(fam.bounds);
      break;
  }
  fam.series.push_back(std::move(series));
  return *fam.series.back();
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  const Labels& labels) {
  return *find_or_create(name, help, Kind::kCounter, labels, nullptr).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const std::string& help,
                              const Labels& labels) {
  return *find_or_create(name, help, Kind::kGauge, labels, nullptr).gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      const std::vector<double>& bounds,
                                      const Labels& labels) {
  return *find_or_create(name, help, Kind::kHistogram, labels, &bounds)
              .histogram;
}

std::string MetricsRegistry::expose() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, fam] : families_) {
    out += "# HELP ";
    out += name;
    out += ' ';
    out += fam.help;
    out += "\n# TYPE ";
    out += name;
    out += ' ';
    switch (fam.kind) {
      case Kind::kCounter:
        out += "counter";
        break;
      case Kind::kGauge:
        out += "gauge";
        break;
      case Kind::kHistogram:
        out += "histogram";
        break;
    }
    out += '\n';

    for (const auto& s : fam.series) {
      if (fam.kind == Kind::kCounter || fam.kind == Kind::kGauge) {
        out += name;
        append_labels(&out, s->labels);
        out += ' ';
        append_number(&out, fam.kind == Kind::kCounter ? s->counter->value()
                                                       : s->gauge->value());
        out += '\n';
        continue;
      }

      const Histogram& h = *s->histogram;
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < h.bounds().size(); ++i) {
        cumulative += h.bucket(i);
        out += name;
        out += "_bucket";
        std::string le;
        {
          char buf[64];
          std::snprintf(buf, sizeof(buf), "%g", h.bounds()[i]);
          le = buf;
        }
        append_labels(&out, s->labels, "le", le);
        out += ' ';
        append_number(&out, static_cast<double>(cumulative));
        out += '\n';
      }
      out += name;
      out += "_bucket";
      append_labels(&out, s->labels, "le", "+Inf");
      out += ' ';
      append_number(&out, static_cast<double>(h.count()));
      out += '\n';
      out += name;
      out += "_sum";
      append_labels(&out, s->labels);
      out += ' ';
      append_number(&out, h.sum());
      out += '\n';
      out += name;
      out += "_count";
      append_labels(&out, s->labels);
      out += ' ';
      append_number(&out, static_cast<double>(h.count()));
      out += '\n';
    }
  }
  return out;
}

}  // namespace cumf::obs
