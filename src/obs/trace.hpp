#pragma once

// Request tracing: a lock-free, sampled, bounded ring of trace events
// exported as Chrome trace-event JSON (loadable in Perfetto or
// chrome://tracing).
//
// The serving stack is instrumented with a fixed taxonomy of spans (see
// README "Observability"): the TCP front-end emits net.frame / net.reply,
// the batcher emits query.e2e / batch.queue_wait / batch.flush, the engine
// emits engine.batch / engine.sweep, the simulated-GPU backend emits
// gpusim.kernel, the live store emits store.load spans and store.swap
// instants, and the orchestrator emits orch.* cycle phases. Because every
// event carries the emitting thread and a wall-clock offset from one shared
// epoch, a single slow query can be decomposed end to end — decode, queue
// wait, engine batch, per-shard kernels, reply — on one timeline, with hot
// swaps and retrain cycles interleaved as they actually happened.
//
// Design constraints, in order:
//  - disabled must be (nearly) free: every instrumentation site is gated on
//    one relaxed atomic load; no ring exists until the first enable().
//  - recording must never block or allocate: span names and argument keys
//    are static string literals, payloads are fixed-size, and writers claim
//    slots with one fetch_add. Per-slot sequence numbers (a seqlock keyed by
//    the 64-bit ticket) let the exporter detect and skip slots that a
//    concurrent writer is overwriting — the ring wraps by overwriting the
//    oldest events rather than ever making a writer wait.
//  - everything a writer touches is a std::atomic, so concurrent record /
//    export is free of data races (TSan-clean) by construction. A reader
//    that loses the seqlock race simply drops that slot; the worst possible
//    outcome is one missing event in a diagnostic trace, never a torn one.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

namespace cumf::obs {

/// One span/instant argument: a static key and an integer value. A
/// default-constructed arg (null key) is an unused slot.
struct TraceArg {
  const char* key = nullptr;  // must be a string literal (never freed)
  std::uint64_t value = 0;
};

class TraceCollector {
 public:
  struct Options {
    /// Ring capacity in events; rounded up to a power of two. Fixed at the
    /// first enable() — later enables reuse the existing ring.
    std::size_t capacity = 1 << 16;
    /// Trace one in every `sample_every` sampled units (sample() callers —
    /// the batcher samples per query). 1 traces everything; 0 behaves as 1.
    std::uint64_t sample_every = 1;
  };

  TraceCollector() = default;

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  /// Process-wide collector every instrumentation site records into.
  static TraceCollector& global();

  /// Allocates the ring (first call) and starts accepting events.
  void enable(Options opt);
  void enable() { enable(Options()); }
  void disable() { enabled_.store(false, std::memory_order_release); }

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Per-unit sampling decision (false whenever disabled). The batcher asks
  /// once per query; a sampled query has its whole path traced.
  bool sample();

  /// Microseconds since the collector's epoch (steady clock).
  [[nodiscard]] double now_us() const;
  /// Converts a caller-held steady_clock time point to epoch-relative µs,
  /// so spans can start at timestamps taken before tracing was consulted.
  [[nodiscard]] double to_us(std::chrono::steady_clock::time_point tp) const;

  /// Records one complete span ("ph":"X"). No-op when disabled. `name` and
  /// every arg key must be string literals.
  void record_span(const char* name, double begin_us, double end_us,
                   TraceArg a = {}, TraceArg b = {}, TraceArg c = {});

  /// Records an instant event ("ph":"i") at now_us().
  void record_instant(const char* name, TraceArg a = {}, TraceArg b = {},
                      TraceArg c = {});

  /// Names the calling thread in exported traces ("thread_name" metadata).
  /// Works while disabled — threads register at startup, tracing may be
  /// enabled later.
  void set_thread_name(const char* name);

  /// Events recorded over the collector's lifetime (survivors + overwritten).
  [[nodiscard]] std::uint64_t events_recorded() const {
    return cursor_.load(std::memory_order_relaxed);
  }
  /// Events overwritten by ring wrap (recorded - retained).
  [[nodiscard]] std::uint64_t events_dropped() const;

  /// Renders the retained events as Chrome trace-event JSON. Safe to call
  /// while writers are recording; slots mid-overwrite are skipped.
  [[nodiscard]] std::string export_chrome_json() const;

  /// export_chrome_json() to a file; returns false when the file cannot be
  /// written.
  bool write_chrome_json(const std::string& path) const;

  /// Forgets all retained events (the ring stays allocated). Not meant to
  /// race with writers: concurrent records may land as skippable torn slots.
  void clear();

 private:
  struct Slot {
    /// Seqlock word: 2·ticket+1 while the owning writer fills the payload,
    /// 2·ticket+2 once stable. The ticket keys the check, so a slot reused
    /// by a later wrap never validates for an earlier ticket.
    std::atomic<std::uint64_t> seq{0};
    std::atomic<const char*> name{nullptr};
    std::atomic<std::uint8_t> phase{0};  // 'X' span | 'i' instant
    std::atomic<std::uint32_t> tid{0};
    std::atomic<double> ts_us{0.0};
    std::atomic<double> dur_us{0.0};
    std::atomic<const char*> k0{nullptr};
    std::atomic<const char*> k1{nullptr};
    std::atomic<const char*> k2{nullptr};
    std::atomic<std::uint64_t> v0{0};
    std::atomic<std::uint64_t> v1{0};
    std::atomic<std::uint64_t> v2{0};
  };

  void record_event(const char* name, char phase, double ts_us, double dur_us,
                    const TraceArg& a, const TraceArg& b, const TraceArg& c);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> cursor_{0};      // next ticket to claim
  std::atomic<std::uint64_t> sample_ctr_{0};  // sampling round-robin
  std::atomic<std::uint64_t> sample_every_{1};

  // Ring storage; written only under mu_ (first enable), read by writers
  // after an acquire load of enabled_ observed the publishing release store.
  std::unique_ptr<Slot[]> ring_;
  std::size_t mask_ = 0;  // capacity - 1
  std::size_t capacity_ = 0;

  const std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();

  mutable std::mutex mu_;  // enable/export/clear/thread-name bookkeeping
  std::unordered_map<std::uint32_t, std::string> thread_names_;
};

/// RAII span: measures construction → finish()/destruction and records into
/// a collector when it is enabled (checked once, at construction). Cheap to
/// put on hot paths — a disarmed span is two stores.
class TraceSpan {
 public:
  TraceSpan(TraceCollector& collector, const char* name, bool sampled = true)
      : collector_(&collector),
        name_(name),
        armed_(sampled && collector.enabled()),
        begin_us_(armed_ ? collector.now_us() : 0.0) {}

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() { finish(); }

  /// Attaches up to three args (extra calls are ignored). Keys must be
  /// string literals.
  void arg(const char* key, std::uint64_t value) {
    if (!armed_ || args_ >= 3) return;
    a_[args_++] = TraceArg{key, value};
  }

  /// Records the span now (idempotent; the destructor calls it too).
  void finish() {
    if (!armed_) return;
    armed_ = false;
    collector_->record_span(name_, begin_us_, collector_->now_us(), a_[0],
                            a_[1], a_[2]);
  }

 private:
  TraceCollector* collector_;
  const char* name_;
  bool armed_;
  double begin_us_;
  int args_ = 0;
  TraceArg a_[3];
};

}  // namespace cumf::obs
