#include "obs/trace.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <vector>

namespace cumf::obs {

namespace {

/// Small dense per-thread id, assigned on first use. Chrome trace "tid"s
/// only need to be stable and distinct, not OS thread ids.
std::uint32_t current_tid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

/// JSON string escaping. Names and keys are our own literals, but thread
/// names pass through here too, so escape defensively.
void append_escaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void append_f(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  *out += buf;
}

void append_u64(std::string* out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

TraceCollector& TraceCollector::global() {
  static TraceCollector collector;
  return collector;
}

void TraceCollector::enable(Options opt) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_ == nullptr) {
    capacity_ = round_up_pow2(opt.capacity == 0 ? 1 : opt.capacity);
    mask_ = capacity_ - 1;
    ring_ = std::make_unique<Slot[]>(capacity_);
  }
  sample_every_.store(opt.sample_every == 0 ? 1 : opt.sample_every,
                      std::memory_order_relaxed);
  // Release: writers that acquire-observe enabled_ == true also see the
  // ring pointer / mask stores above.
  enabled_.store(true, std::memory_order_release);
}

bool TraceCollector::sample() {
  if (!enabled_.load(std::memory_order_acquire)) return false;
  const std::uint64_t every = sample_every_.load(std::memory_order_relaxed);
  if (every <= 1) return true;
  return sample_ctr_.fetch_add(1, std::memory_order_relaxed) % every == 0;
}

double TraceCollector::now_us() const {
  return to_us(std::chrono::steady_clock::now());
}

double TraceCollector::to_us(std::chrono::steady_clock::time_point tp) const {
  return std::chrono::duration<double, std::micro>(tp - epoch_).count();
}

void TraceCollector::record_span(const char* name, double begin_us,
                                 double end_us, TraceArg a, TraceArg b,
                                 TraceArg c) {
  record_event(name, 'X', begin_us, end_us - begin_us, a, b, c);
}

void TraceCollector::record_instant(const char* name, TraceArg a, TraceArg b,
                                    TraceArg c) {
  record_event(name, 'i', now_us(), 0.0, a, b, c);
}

void TraceCollector::record_event(const char* name, char phase, double ts_us,
                                  double dur_us, const TraceArg& a,
                                  const TraceArg& b, const TraceArg& c) {
  if (!enabled_.load(std::memory_order_acquire)) return;
  const std::uint64_t ticket =
      cursor_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = ring_[ticket & mask_];
  // Seqlock write: odd tag while the payload is in flux, even when stable.
  // The exporter validates the even tag before and after copying, so a slot
  // it races with is skipped rather than exported torn.
  slot.seq.store(2 * ticket + 1, std::memory_order_release);
  slot.name.store(name, std::memory_order_relaxed);
  slot.phase.store(static_cast<std::uint8_t>(phase), std::memory_order_relaxed);
  slot.tid.store(current_tid(), std::memory_order_relaxed);
  slot.ts_us.store(ts_us, std::memory_order_relaxed);
  slot.dur_us.store(dur_us, std::memory_order_relaxed);
  slot.k0.store(a.key, std::memory_order_relaxed);
  slot.v0.store(a.value, std::memory_order_relaxed);
  slot.k1.store(b.key, std::memory_order_relaxed);
  slot.v1.store(b.value, std::memory_order_relaxed);
  slot.k2.store(c.key, std::memory_order_relaxed);
  slot.v2.store(c.value, std::memory_order_relaxed);
  slot.seq.store(2 * ticket + 2, std::memory_order_release);
}

void TraceCollector::set_thread_name(const char* name) {
  const std::uint32_t tid = current_tid();
  std::lock_guard<std::mutex> lock(mu_);
  thread_names_[tid] = name;
}

std::uint64_t TraceCollector::events_dropped() const {
  const std::uint64_t total = cursor_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_ > 0 && total > capacity_ ? total - capacity_ : 0;
}

std::string TraceCollector::export_chrome_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out += "{\"traceEvents\":[";
  bool first = true;

  for (const auto& [tid, name] : thread_names_) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    append_u64(&out, tid);
    out += ",\"args\":{\"name\":\"";
    append_escaped(&out, name.c_str());
    out += "\"}}";
  }

  if (ring_ != nullptr) {
    const std::uint64_t end = cursor_.load(std::memory_order_acquire);
    const std::uint64_t begin = end > capacity_ ? end - capacity_ : 0;
    for (std::uint64_t t = begin; t < end; ++t) {
      const Slot& slot = ring_[t & mask_];
      const std::uint64_t want = 2 * t + 2;
      if (slot.seq.load(std::memory_order_acquire) != want) continue;
      const char* name = slot.name.load(std::memory_order_relaxed);
      const char phase =
          static_cast<char>(slot.phase.load(std::memory_order_relaxed));
      const std::uint32_t tid = slot.tid.load(std::memory_order_relaxed);
      const double ts = slot.ts_us.load(std::memory_order_relaxed);
      const double dur = slot.dur_us.load(std::memory_order_relaxed);
      const char* keys[3] = {slot.k0.load(std::memory_order_relaxed),
                             slot.k1.load(std::memory_order_relaxed),
                             slot.k2.load(std::memory_order_relaxed)};
      const std::uint64_t vals[3] = {slot.v0.load(std::memory_order_relaxed),
                                     slot.v1.load(std::memory_order_relaxed),
                                     slot.v2.load(std::memory_order_relaxed)};
      // Seqlock read validation (Boehm-style): the acquire fence keeps the
      // payload loads above from sinking past the re-check.
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != want) continue;
      if (name == nullptr) continue;

      if (!first) out += ',';
      first = false;
      out += "{\"name\":\"";
      append_escaped(&out, name);
      out += "\",\"ph\":\"";
      out += phase;
      out += "\",\"ts\":";
      append_f(&out, ts);
      if (phase == 'X') {
        out += ",\"dur\":";
        append_f(&out, dur < 0.0 ? 0.0 : dur);
      } else if (phase == 'i') {
        out += ",\"s\":\"g\"";  // global-scope instant: full-height marker
      }
      out += ",\"pid\":1,\"tid\":";
      append_u64(&out, tid);
      bool any_arg = false;
      for (int i = 0; i < 3; ++i) {
        if (keys[i] == nullptr) continue;
        out += any_arg ? "," : ",\"args\":{";
        any_arg = true;
        out += '"';
        append_escaped(&out, keys[i]);
        out += "\":";
        append_u64(&out, vals[i]);
      }
      if (any_arg) out += '}';
      out += '}';
    }
  }

  out += "]}";
  return out;
}

bool TraceCollector::write_chrome_json(const std::string& path) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  const std::string json = export_chrome_json();
  f.write(json.data(), static_cast<std::streamsize>(json.size()));
  return static_cast<bool>(f);
}

void TraceCollector::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_ != nullptr) {
    for (std::size_t i = 0; i < capacity_; ++i) {
      ring_[i].seq.store(0, std::memory_order_relaxed);
      ring_[i].name.store(nullptr, std::memory_order_relaxed);
    }
  }
  cursor_.store(0, std::memory_order_release);
}

}  // namespace cumf::obs
