#pragma once

// Structured event log: a bounded, lock-free ring of operational events —
// the discrete state transitions that explain a latency or availability
// excursion after the fact. Where tracing (obs/trace.hpp) answers "where did
// this sampled query spend its time" and metrics answer "how much, in
// aggregate", the event log answers "what *happened*": a hot swap landed, a
// gate rejected a candidate, the edge shed queries, a slow client was cut.
//
// Every silent transition in the serving stack records here: the
// LiveFactorStore on swap / refresh failure / admission veto, the
// orchestrator on gate reject / escalate / consolidate / promote / rollback,
// the TCP front-end on shed / slow-client close / recv error, and the
// SloMonitor (obs/slo.hpp) on every alert-state change. The ring is always
// on — recording is a handful of relaxed atomic stores, messages are static
// string literals, and the ring wraps by overwriting the oldest events, so
// there is nothing to configure and nothing to leak.
//
// The slot design is the TraceCollector seqlock: a writer claims a ticket
// with one fetch_add, marks the slot odd (2·ticket+1) while filling it, and
// even (2·ticket+2) once stable. Readers validate the seq word before and
// after copying; a slot mid-overwrite is skipped, never torn. Concurrent
// record / export is data-race-free by construction (every field a writer
// touches is a std::atomic).

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace cumf::obs {

enum class Severity : std::uint8_t {
  kInfo = 0,
  kWarn = 1,
  kError = 2,
};

/// Subsystem that emitted the event (the "component" column of the log).
enum class Component : std::uint8_t {
  kStore = 0,  // LiveFactorStore: swaps, refresh failures, admission vetoes
  kOrch = 1,   // orchestrator: gate verdicts, escalations, rollbacks
  kNet = 2,    // TCP front-end: sheds, slow-client closes, recv errors
  kSlo = 3,    // SloMonitor alert-state transitions
};

/// One event argument: a static key and an integer value. A
/// default-constructed arg (null key) is an unused slot.
struct EventArg {
  const char* key = nullptr;  // must be a string literal (never freed)
  std::uint64_t value = 0;
};

/// One stable event copied out of the ring.
struct Event {
  std::uint64_t ticket = 0;  // monotonic sequence number (0-based)
  double ts_us = 0.0;        // microseconds since the log's epoch
  Severity severity = Severity::kInfo;
  Component component = Component::kStore;
  const char* message = nullptr;  // static string literal
  EventArg args[3];
};

class EventLog {
 public:
  /// `capacity` is rounded up to a power of two.
  explicit EventLog(std::size_t capacity = 1 << 10);

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Process-wide log every emission site records into.
  static EventLog& global();

  /// Records one event. Never blocks, never allocates; `message` and every
  /// arg key must be string literals.
  void record(Severity severity, Component component, const char* message,
              EventArg a = {}, EventArg b = {}, EventArg c = {});

  /// Events recorded over the log's lifetime (survivors + overwritten).
  [[nodiscard]] std::uint64_t recorded() const {
    return cursor_.load(std::memory_order_relaxed);
  }
  /// Events overwritten by ring wrap (recorded - retained).
  [[nodiscard]] std::uint64_t dropped() const;

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

  /// Stable retained events, oldest first. `max_events` keeps only the
  /// newest that many (the tail an operator wants after an incident).
  [[nodiscard]] std::vector<Event> snapshot(
      std::size_t max_events = static_cast<std::size_t>(-1)) const;

  /// Renders snapshot(max_events) as JSON lines, one object per event:
  ///   {"ticket":N,"ts_us":T,"severity":"warn","component":"net",
  ///    "message":"overload_shed","args":{"shard":0}}
  [[nodiscard]] std::string export_json_lines(
      std::size_t max_events = static_cast<std::size_t>(-1)) const;

  /// export_json_lines() to a file; false when the file cannot be written.
  bool write_json_lines(const std::string& path) const;

  /// Microseconds since the log's epoch (steady clock) — the timescale of
  /// Event::ts_us.
  [[nodiscard]] double now_us() const;

  static const char* severity_name(Severity s);
  static const char* component_name(Component c);

 private:
  struct Slot {
    /// Seqlock word: 2·ticket+1 while the owning writer fills the payload,
    /// 2·ticket+2 once stable (ticket-keyed like the trace ring).
    std::atomic<std::uint64_t> seq{0};
    std::atomic<const char*> message{nullptr};
    std::atomic<std::uint8_t> severity{0};
    std::atomic<std::uint8_t> component{0};
    std::atomic<double> ts_us{0.0};
    std::atomic<const char*> k0{nullptr};
    std::atomic<const char*> k1{nullptr};
    std::atomic<const char*> k2{nullptr};
    std::atomic<std::uint64_t> v0{0};
    std::atomic<std::uint64_t> v1{0};
    std::atomic<std::uint64_t> v2{0};
  };

  std::unique_ptr<Slot[]> ring_;
  std::size_t mask_ = 0;  // capacity - 1
  std::atomic<std::uint64_t> cursor_{0};

  const std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
};

}  // namespace cumf::obs
