#include "obs/events.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace cumf::obs {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

EventLog::EventLog(std::size_t capacity) {
  const std::size_t cap = round_up_pow2(capacity == 0 ? 1 : capacity);
  ring_ = std::make_unique<Slot[]>(cap);
  mask_ = cap - 1;
}

EventLog& EventLog::global() {
  static EventLog log;
  return log;
}

double EventLog::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void EventLog::record(Severity severity, Component component,
                      const char* message, EventArg a, EventArg b,
                      EventArg c) {
  const std::uint64_t ticket =
      cursor_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = ring_[ticket & mask_];
  // Odd = this writer owns the slot; readers that loaded the old even value
  // before the store will fail the recheck after copying.
  slot.seq.store(2 * ticket + 1, std::memory_order_release);
  slot.message.store(message, std::memory_order_relaxed);
  slot.severity.store(static_cast<std::uint8_t>(severity),
                      std::memory_order_relaxed);
  slot.component.store(static_cast<std::uint8_t>(component),
                       std::memory_order_relaxed);
  slot.ts_us.store(now_us(), std::memory_order_relaxed);
  slot.k0.store(a.key, std::memory_order_relaxed);
  slot.v0.store(a.value, std::memory_order_relaxed);
  slot.k1.store(b.key, std::memory_order_relaxed);
  slot.v1.store(b.value, std::memory_order_relaxed);
  slot.k2.store(c.key, std::memory_order_relaxed);
  slot.v2.store(c.value, std::memory_order_relaxed);
  slot.seq.store(2 * ticket + 2, std::memory_order_release);
}

std::uint64_t EventLog::dropped() const {
  const std::uint64_t total = cursor_.load(std::memory_order_relaxed);
  const std::uint64_t cap = mask_ + 1;
  return total > cap ? total - cap : 0;
}

std::vector<Event> EventLog::snapshot(std::size_t max_events) const {
  const std::uint64_t total = cursor_.load(std::memory_order_acquire);
  const std::uint64_t cap = mask_ + 1;
  std::uint64_t first = total > cap ? total - cap : 0;
  const std::uint64_t want =
      std::min<std::uint64_t>(total - first, max_events);
  first = total - want;

  std::vector<Event> out;
  out.reserve(static_cast<std::size_t>(want));
  for (std::uint64_t ticket = first; ticket < total; ++ticket) {
    const Slot& slot = ring_[ticket & mask_];
    if (slot.seq.load(std::memory_order_acquire) != 2 * ticket + 2) {
      continue;  // being overwritten (or already wrapped past)
    }
    Event ev;
    ev.ticket = ticket;
    ev.ts_us = slot.ts_us.load(std::memory_order_relaxed);
    ev.severity =
        static_cast<Severity>(slot.severity.load(std::memory_order_relaxed));
    ev.component =
        static_cast<Component>(slot.component.load(std::memory_order_relaxed));
    ev.message = slot.message.load(std::memory_order_relaxed);
    ev.args[0] = {slot.k0.load(std::memory_order_relaxed),
                  slot.v0.load(std::memory_order_relaxed)};
    ev.args[1] = {slot.k1.load(std::memory_order_relaxed),
                  slot.v1.load(std::memory_order_relaxed)};
    ev.args[2] = {slot.k2.load(std::memory_order_relaxed),
                  slot.v2.load(std::memory_order_relaxed)};
    // Seqlock recheck: a writer may have started overwriting mid-copy.
    if (slot.seq.load(std::memory_order_acquire) != 2 * ticket + 2) continue;
    if (ev.message == nullptr) continue;
    out.push_back(ev);
  }
  return out;
}

std::string EventLog::export_json_lines(std::size_t max_events) const {
  const std::vector<Event> events = snapshot(max_events);
  std::ostringstream out;
  for (const Event& ev : events) {
    out << "{\"ticket\":" << ev.ticket << ",\"ts_us\":" << ev.ts_us
        << ",\"severity\":\"" << severity_name(ev.severity)
        << "\",\"component\":\"" << component_name(ev.component)
        << "\",\"message\":\"" << ev.message << "\",\"args\":{";
    bool first = true;
    for (const EventArg& arg : ev.args) {
      if (arg.key == nullptr) continue;
      if (!first) out << ",";
      out << "\"" << arg.key << "\":" << arg.value;
      first = false;
    }
    out << "}}\n";
  }
  return out.str();
}

bool EventLog::write_json_lines(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << export_json_lines();
  return static_cast<bool>(out);
}

const char* EventLog::severity_name(Severity s) {
  switch (s) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarn:
      return "warn";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

const char* EventLog::component_name(Component c) {
  switch (c) {
    case Component::kStore:
      return "store";
    case Component::kOrch:
      return "orchestrator";
    case Component::kNet:
      return "net";
    case Component::kSlo:
      return "slo";
  }
  return "unknown";
}

}  // namespace cumf::obs
