#pragma once

// Metrics registry: labeled counters, gauges, and histograms with a
// Prometheus-style text exposition format.
//
// The registry is the serving stack's second observability pillar (the
// first, request tracing, lives in obs/trace.hpp): where ServeStats is the
// typed in-process view of the serving counters, the registry renders the
// same numbers in the exposition format scrape-based monitoring expects —
// `# HELP` / `# TYPE` headers, `name{label="value"} 1234` samples, and
// cumulative `_bucket{le="..."}` histograms. serve/metrics_export.hpp
// bridges a ServeStats snapshot into a registry, and the TCP front-end
// serves the rendered text over the GetMetrics protocol op.
//
// Concurrency: creating a metric takes the registry mutex; operating on one
// (inc / set / observe) is lock-free on atomics, so instruments can be held
// by hot paths. References returned by counter()/gauge()/histogram() stay
// valid for the registry's lifetime (series are heap-allocated and never
// removed).

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace cumf::obs {

/// Label set attached to one series, e.g. {{"result", "hit"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing value. Use add() with non-negative deltas.
class Counter {
 public:
  void inc(double delta = 1.0) { add(delta); }
  void add(double delta) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
    }
  }
  /// Sets an absolute value — for bridging counters maintained elsewhere
  /// (ServeStats snapshots) into a registry.
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// A value that can go up and down.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bound histogram. Exposed Prometheus-style: cumulative
/// `_bucket{le="bound"}` counts, a `+Inf` bucket, `_sum`, and `_count`.
class Histogram {
 public:
  /// `bounds` are the upper bucket edges, strictly increasing; one overflow
  /// (+Inf) bucket is added after the last.
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  /// Merges pre-binned data — per-bucket (non-cumulative) counts aligned
  /// with bounds() plus the overflow bucket — for bridging histograms
  /// maintained elsewhere (LatencyTracker buckets). `n` must be
  /// bounds().size() + 1; extra entries are ignored, missing ones are zero.
  void merge_bins(const std::uint64_t* bin_counts, std::size_t n, double sum,
                  std::uint64_t count);

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket i (non-cumulative); i == bounds().size() is overflow.
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide registry (components that want ambient metrics).
  static MetricsRegistry& global();

  /// Returns the counter series for (name, labels), creating it (and its
  /// family) on first use. Help text is taken from the first call for a
  /// name. Throws std::logic_error when `name` was registered as another
  /// type.
  Counter& counter(const std::string& name, const std::string& help,
                   const Labels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               const Labels& labels = {});
  /// `bounds` applies to the whole family (first call wins).
  Histogram& histogram(const std::string& name, const std::string& help,
                       const std::vector<double>& bounds,
                       const Labels& labels = {});

  /// Renders every family in the Prometheus text exposition format,
  /// families sorted by name, series in creation order.
  [[nodiscard]] std::string expose() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Series {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  struct Family {
    Kind kind = Kind::kCounter;
    std::string help;
    std::vector<double> bounds;  // histogram families only
    std::vector<std::unique_ptr<Series>> series;
  };

  Series& find_or_create(const std::string& name, const std::string& help,
                         Kind kind, const Labels& labels,
                         const std::vector<double>* bounds);

  mutable std::mutex mu_;
  std::map<std::string, Family> families_;
};

}  // namespace cumf::obs
