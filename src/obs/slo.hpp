#pragma once

// SLO engine: rolling multi-window burn-rate alerting over the serving
// path, SRE-workbook style.
//
// Two objectives are tracked, each as a good/bad event stream bucketed into
// a lock-free ring of one-second windows:
//
//  - latency:       a query is *bad* when its end-to-end latency exceeds
//                   SloOptions::latency_threshold_ms (the p-target, e.g.
//                   "p99 <= 25 ms" becomes threshold 25, objective 0.99).
//  - availability:  a reply is *bad* when it is not Status::kOk — engine
//                   errors, bad ids, and queries shed at the admission edge.
//
// For each objective the monitor computes the *burn rate* over a fast and a
// slow window: bad-fraction ÷ error-budget, where the budget is
// 1 − objective. Burn 1.0 means the budget is being consumed exactly at the
// sustainable rate; burn 10 means ten times too fast. Alerting keys on both
// windows (the workbook's multi-window rule): the fast window makes pages
// prompt, the slow window keeps one latency spike from paging. The alert
// state is hysteretic — entering `warn`/`page` is immediate once both
// windows cross the threshold, but leaving requires the burn to fall below
// threshold × clear_factor and steps down one state per evaluation, so a
// burn rate oscillating around the line cannot flap the pager.
//
// The clock is injectable (milliseconds, monotonic) so every window
// rotation, burn value, and state transition is deterministic under test;
// the default reads steady_clock. Observation is wait-free: bucket the
// sample by second, one CAS on the bucket's stamp when the second rolls
// over, one fetch_add. A write racing the once-per-second rotation can be
// dropped; burn rates are statistical and the loss is bounded by the number
// of racing threads, once per second.
//
// Slow-query exemplars: when a *traced* query's e2e crosses the latency
// threshold, the serving layer captures its per-stage breakdown (queue wait,
// engine batch, fulfillment remainder — the stages sum to the e2e) into a
// keep-the-slowest ring here, so a health dump answers "where did the p99
// go" with concrete offenders, not just a histogram.
//
// Alert-state transitions are recorded into an EventLog (obs/events.hpp) so
// the incident timeline interleaves "latency SLO paged" with the swaps /
// rejections / sheds that explain it.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/events.hpp"

namespace cumf::obs {

enum class AlertState : std::uint8_t {
  kOk = 0,
  kWarn = 1,
  kPage = 2,
};

const char* alert_state_name(AlertState s);

struct SloOptions {
  /// Latency SLO threshold: a query slower than this is an SLO violation.
  double latency_threshold_ms = 50.0;
  /// Fraction of queries that must meet the threshold (budget = 1 - this).
  double latency_objective = 0.999;
  /// Fraction of replies that must be kOk.
  double availability_objective = 0.999;
  /// Fast / slow alerting windows, in whole seconds (bucket granularity).
  std::uint64_t fast_window_s = 5;
  std::uint64_t slow_window_s = 60;
  /// Enter kWarn when both windows burn at >= warn_burn; kPage at
  /// >= page_burn.
  double warn_burn = 2.0;
  double page_burn = 10.0;
  /// Hysteresis: leave a state only when the fast-window burn drops below
  /// its entry threshold times this factor (and one state per evaluation).
  double clear_factor = 0.8;
  /// Slowest-query exemplars retained (keep-the-slowest replacement).
  std::size_t exemplar_capacity = 8;
};

/// Burn-rate view of one objective at snapshot time.
struct BurnState {
  AlertState state = AlertState::kOk;
  double fast_burn = 0.0;
  double slow_burn = 0.0;
  std::uint64_t fast_total = 0;  // events in the fast window
  std::uint64_t fast_bad = 0;
  std::uint64_t slow_total = 0;
  std::uint64_t slow_bad = 0;
  std::uint64_t lifetime_total = 0;
  std::uint64_t lifetime_bad = 0;
  std::uint64_t transitions = 0;  // alert-state changes so far
};

/// One captured slow query: stage breakdown sums to ~e2e_ms by construction
/// (finish_ms is the remainder).
struct SloExemplar {
  std::uint64_t ticket = 0;  // capture order (monotonic)
  std::uint64_t user = 0;
  double e2e_ms = 0.0;
  double queue_ms = 0.0;
  double engine_ms = 0.0;
  double finish_ms = 0.0;
};

struct HealthSnapshot {
  BurnState latency;
  BurnState availability;
  double latency_threshold_ms = 0.0;
  /// Slowest first.
  std::vector<SloExemplar> exemplars;
};

class SloMonitor {
 public:
  /// Monotonic clock in milliseconds. The default reads steady_clock.
  using ClockFn = std::function<std::uint64_t()>;

  /// `events` receives alert-state transition events; nullptr disables
  /// emission (tests that only exercise the math).
  explicit SloMonitor(SloOptions opt = {}, EventLog* events = nullptr,
                      ClockFn clock = {});

  SloMonitor(const SloMonitor&) = delete;
  SloMonitor& operator=(const SloMonitor&) = delete;

  /// One answered query: feeds availability (ok?) and, for ok replies, the
  /// latency objective. Wait-free except for an opportunistic (try_lock)
  /// state evaluation.
  void observe(double e2e_ms, bool ok);

  /// One query shed at the admission edge: availability-bad with no
  /// meaningful latency sample.
  void shed();

  /// Captures one slow traced query. `finish_ms` is derived:
  /// e2e − queue − engine, clamped at zero. Rare path (only queries already
  /// past the threshold); takes a short mutex.
  void capture_exemplar(std::uint64_t user, double e2e_ms, double queue_ms,
                        double engine_ms);

  [[nodiscard]] double latency_threshold_ms() const {
    return opt_.latency_threshold_ms;
  }
  [[nodiscard]] const SloOptions& options() const { return opt_; }

  /// Evaluates both state machines at the current clock and returns the
  /// full health view.
  HealthSnapshot snapshot();

  [[nodiscard]] AlertState latency_state() const {
    return static_cast<AlertState>(
        latency_.state.load(std::memory_order_relaxed));
  }
  [[nodiscard]] AlertState availability_state() const {
    return static_cast<AlertState>(
        availability_.state.load(std::memory_order_relaxed));
  }
  /// Lifetime latency-SLO violations (bad samples).
  [[nodiscard]] std::uint64_t latency_violations() const {
    return latency_.lifetime_bad.load(std::memory_order_relaxed);
  }
  /// Lifetime non-kOk replies (sheds included).
  [[nodiscard]] std::uint64_t availability_errors() const {
    return availability_.lifetime_bad.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t exemplars_captured() const {
    return exemplar_tickets_.load(std::memory_order_relaxed);
  }

 private:
  struct Bucket {
    /// Second this bucket currently covers; kNeverStamp = untouched.
    std::atomic<std::uint64_t> stamp{kNeverStamp};
    std::atomic<std::uint64_t> total{0};
    std::atomic<std::uint64_t> bad{0};
  };
  static constexpr std::uint64_t kNeverStamp = ~std::uint64_t{0};

  struct Series {
    std::unique_ptr<Bucket[]> ring;
    std::size_t mask = 0;
    std::atomic<std::uint64_t> lifetime_total{0};
    std::atomic<std::uint64_t> lifetime_bad{0};
    std::atomic<std::uint8_t> state{0};
    std::uint64_t transitions = 0;  // guarded by state_mu_
    double budget = 0.001;
    const char* transition_message = nullptr;  // static, for the EventLog
  };

  void init_series(Series* s, double objective, const char* message);
  void add(Series* s, std::uint64_t now_s, bool bad);
  /// Events in [now_s - window + 1, now_s]; returns {total, bad}.
  void window_counts(const Series& s, std::uint64_t now_s,
                     std::uint64_t window_s, std::uint64_t* total,
                     std::uint64_t* bad) const;
  [[nodiscard]] double burn(std::uint64_t total, std::uint64_t bad,
                            double budget) const;
  /// Runs one series' hysteretic state machine; caller holds state_mu_.
  void evaluate_locked(Series* s, std::uint64_t now_s);
  void fill_burn_state(const Series& s, std::uint64_t now_s,
                       BurnState* out) const;
  [[nodiscard]] std::uint64_t now_ms() const;

  SloOptions opt_;
  EventLog* events_;
  ClockFn clock_;

  Series latency_;
  Series availability_;

  std::mutex state_mu_;  // transition bookkeeping (evaluate/snapshot)

  std::mutex exemplar_mu_;
  std::vector<SloExemplar> exemplars_;  // unordered; min replaced on insert
  std::atomic<std::uint64_t> exemplar_tickets_{0};
};

}  // namespace cumf::obs
