#include "obs/slo.hpp"

#include <algorithm>
#include <chrono>

namespace cumf::obs {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

const char* alert_state_name(AlertState s) {
  switch (s) {
    case AlertState::kOk:
      return "ok";
    case AlertState::kWarn:
      return "warn";
    case AlertState::kPage:
      return "page";
  }
  return "unknown";
}

SloMonitor::SloMonitor(SloOptions opt, EventLog* events, ClockFn clock)
    : opt_(opt), events_(events), clock_(std::move(clock)) {
  if (opt_.fast_window_s == 0) opt_.fast_window_s = 1;
  if (opt_.slow_window_s < opt_.fast_window_s) {
    opt_.slow_window_s = opt_.fast_window_s;
  }
  init_series(&latency_, opt_.latency_objective, "latency_slo_state");
  init_series(&availability_, opt_.availability_objective,
              "availability_slo_state");
}

void SloMonitor::init_series(Series* s, double objective,
                             const char* message) {
  // One bucket per second; the ring must hold the whole slow window plus the
  // current (partial) second without index collisions.
  const std::size_t cap =
      round_up_pow2(static_cast<std::size_t>(opt_.slow_window_s) + 1);
  s->ring = std::make_unique<Bucket[]>(cap);
  s->mask = cap - 1;
  s->budget = std::max(1e-9, 1.0 - objective);
  s->transition_message = message;
}

std::uint64_t SloMonitor::now_ms() const {
  if (clock_) return clock_();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void SloMonitor::add(Series* s, std::uint64_t now_s, bool bad) {
  Bucket& bucket = s->ring[now_s & s->mask];
  std::uint64_t stamp = bucket.stamp.load(std::memory_order_relaxed);
  if (stamp != now_s) {
    // First write of this second: the CAS winner rotates the bucket. A
    // concurrent add that lands between the CAS and the resets can be lost —
    // bounded to one sample per racing thread per rotation, and burn rates
    // are ratios, so the loss is noise.
    if (bucket.stamp.compare_exchange_strong(stamp, now_s,
                                             std::memory_order_acq_rel)) {
      bucket.total.store(0, std::memory_order_relaxed);
      bucket.bad.store(0, std::memory_order_relaxed);
    }
  }
  bucket.total.fetch_add(1, std::memory_order_relaxed);
  if (bad) bucket.bad.fetch_add(1, std::memory_order_relaxed);
  s->lifetime_total.fetch_add(1, std::memory_order_relaxed);
  if (bad) s->lifetime_bad.fetch_add(1, std::memory_order_relaxed);
}

void SloMonitor::observe(double e2e_ms, bool ok) {
  const std::uint64_t now_s = now_ms() / 1000;
  add(&availability_, now_s, !ok);
  if (ok) add(&latency_, now_s, e2e_ms > opt_.latency_threshold_ms);
  // Opportunistic evaluation: one observer at a time runs the state
  // machines; contenders skip — snapshot() always evaluates.
  if (state_mu_.try_lock()) {
    evaluate_locked(&latency_, now_s);
    evaluate_locked(&availability_, now_s);
    state_mu_.unlock();
  }
}

void SloMonitor::shed() {
  const std::uint64_t now_s = now_ms() / 1000;
  add(&availability_, now_s, true);
  if (state_mu_.try_lock()) {
    evaluate_locked(&availability_, now_s);
    state_mu_.unlock();
  }
}

void SloMonitor::window_counts(const Series& s, std::uint64_t now_s,
                               std::uint64_t window_s, std::uint64_t* total,
                               std::uint64_t* bad) const {
  *total = 0;
  *bad = 0;
  const std::uint64_t span = std::min<std::uint64_t>(window_s, now_s + 1);
  for (std::uint64_t age = 0; age < span; ++age) {
    const std::uint64_t second = now_s - age;
    const Bucket& bucket = s.ring[second & s.mask];
    if (bucket.stamp.load(std::memory_order_relaxed) != second) continue;
    *total += bucket.total.load(std::memory_order_relaxed);
    *bad += bucket.bad.load(std::memory_order_relaxed);
  }
}

double SloMonitor::burn(std::uint64_t total, std::uint64_t bad,
                        double budget) const {
  if (total == 0) return 0.0;  // zero-traffic window burns nothing
  return (static_cast<double>(bad) / static_cast<double>(total)) / budget;
}

void SloMonitor::evaluate_locked(Series* s, std::uint64_t now_s) {
  std::uint64_t fast_total = 0, fast_bad = 0, slow_total = 0, slow_bad = 0;
  window_counts(*s, now_s, opt_.fast_window_s, &fast_total, &fast_bad);
  window_counts(*s, now_s, opt_.slow_window_s, &slow_total, &slow_bad);
  const double fast = burn(fast_total, fast_bad, s->budget);
  const double slow = burn(slow_total, slow_bad, s->budget);

  // Multi-window raw level: both windows must burn past a threshold.
  AlertState raw = AlertState::kOk;
  if (fast >= opt_.page_burn && slow >= opt_.page_burn) {
    raw = AlertState::kPage;
  } else if (fast >= opt_.warn_burn && slow >= opt_.warn_burn) {
    raw = AlertState::kWarn;
  }

  const auto cur =
      static_cast<AlertState>(s->state.load(std::memory_order_relaxed));
  AlertState next = cur;
  if (raw > cur) {
    next = raw;  // upgrades are immediate: paging latency matters
  } else if (raw < cur) {
    // Hysteretic downgrade: both burns must fall clearly below the level
    // that holds the current state, and the state steps down one notch per
    // evaluation — a burn oscillating around the line cannot flap.
    const double hold = (cur == AlertState::kPage ? opt_.page_burn
                                                  : opt_.warn_burn) *
                        opt_.clear_factor;
    if (fast < hold && slow < hold) {
      next = cur == AlertState::kPage ? AlertState::kWarn : AlertState::kOk;
    }
  }
  if (next == cur) return;

  s->state.store(static_cast<std::uint8_t>(next), std::memory_order_relaxed);
  ++s->transitions;
  if (events_ != nullptr) {
    const Severity sev = next == AlertState::kPage  ? Severity::kError
                         : next == AlertState::kWarn ? Severity::kWarn
                                                     : Severity::kInfo;
    events_->record(sev, Component::kSlo, s->transition_message,
                    {"from", static_cast<std::uint64_t>(cur)},
                    {"to", static_cast<std::uint64_t>(next)},
                    {"fast_burn_milli",
                     static_cast<std::uint64_t>(std::max(0.0, fast) * 1e3)});
  }
}

void SloMonitor::fill_burn_state(const Series& s, std::uint64_t now_s,
                                 BurnState* out) const {
  window_counts(s, now_s, opt_.fast_window_s, &out->fast_total,
                &out->fast_bad);
  window_counts(s, now_s, opt_.slow_window_s, &out->slow_total,
                &out->slow_bad);
  out->fast_burn = burn(out->fast_total, out->fast_bad, s.budget);
  out->slow_burn = burn(out->slow_total, out->slow_bad, s.budget);
  out->lifetime_total = s.lifetime_total.load(std::memory_order_relaxed);
  out->lifetime_bad = s.lifetime_bad.load(std::memory_order_relaxed);
  out->state = static_cast<AlertState>(s.state.load(std::memory_order_relaxed));
  out->transitions = s.transitions;
}

HealthSnapshot SloMonitor::snapshot() {
  const std::uint64_t now_s = now_ms() / 1000;
  HealthSnapshot out;
  out.latency_threshold_ms = opt_.latency_threshold_ms;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    evaluate_locked(&latency_, now_s);
    evaluate_locked(&availability_, now_s);
    fill_burn_state(latency_, now_s, &out.latency);
    fill_burn_state(availability_, now_s, &out.availability);
  }
  {
    std::lock_guard<std::mutex> lock(exemplar_mu_);
    out.exemplars = exemplars_;
  }
  std::sort(out.exemplars.begin(), out.exemplars.end(),
            [](const SloExemplar& a, const SloExemplar& b) {
              return a.e2e_ms > b.e2e_ms;
            });
  return out;
}

void SloMonitor::capture_exemplar(std::uint64_t user, double e2e_ms,
                                  double queue_ms, double engine_ms) {
  SloExemplar ex;
  ex.ticket = exemplar_tickets_.fetch_add(1, std::memory_order_relaxed);
  ex.user = user;
  ex.e2e_ms = e2e_ms;
  ex.queue_ms = queue_ms;
  ex.engine_ms = engine_ms;
  ex.finish_ms = std::max(0.0, e2e_ms - queue_ms - engine_ms);

  std::lock_guard<std::mutex> lock(exemplar_mu_);
  if (exemplars_.size() < opt_.exemplar_capacity) {
    exemplars_.push_back(ex);
    return;
  }
  if (exemplars_.empty()) return;  // capacity configured to zero
  auto min_it = std::min_element(exemplars_.begin(), exemplars_.end(),
                                 [](const SloExemplar& a,
                                    const SloExemplar& b) {
                                   return a.e2e_ms < b.e2e_ms;
                                 });
  if (e2e_ms > min_it->e2e_ms) *min_it = ex;
}

}  // namespace cumf::obs
