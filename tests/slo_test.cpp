#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/events.hpp"
#include "obs/slo.hpp"

namespace cumf {
namespace {

// Fake millisecond clock shared with a monitor via the injectable ClockFn;
// tests advance it explicitly so every window rotation is deterministic.
struct FakeClock {
  std::uint64_t ms = 0;
  obs::SloMonitor::ClockFn fn() {
    return [this] { return ms; };
  }
};

void feed_ok(obs::SloMonitor* mon, int n, double e2e_ms) {
  for (int i = 0; i < n; ++i) mon->observe(e2e_ms, true);
}

// ---------------------------------------------------------- burn math ------

TEST(SloMonitor, WindowCountsAndBurnRates) {
  FakeClock clock;
  obs::SloOptions opt;
  opt.latency_threshold_ms = 25.0;
  opt.latency_objective = 0.99;  // budget 0.01: burn = bad-ratio * 100
  opt.fast_window_s = 2;
  opt.slow_window_s = 4;
  obs::SloMonitor mon(opt, nullptr, clock.fn());

  // Second 0: 10 samples, 1 over threshold. Second 1: 10 samples, all fast.
  clock.ms = 0;
  feed_ok(&mon, 9, 1.0);
  feed_ok(&mon, 1, 100.0);
  clock.ms = 1000;
  feed_ok(&mon, 10, 1.0);

  auto h = mon.snapshot();
  EXPECT_EQ(h.latency.fast_total, 20u);
  EXPECT_EQ(h.latency.fast_bad, 1u);
  EXPECT_EQ(h.latency.slow_total, 20u);
  EXPECT_NEAR(h.latency.fast_burn, 5.0, 1e-9);  // (1/20) / budget 0.01
  EXPECT_EQ(h.latency.lifetime_total, 20u);
  EXPECT_EQ(h.latency.lifetime_bad, 1u);

  // Seconds 2 and 3: clean traffic pushes the bad second out of the fast
  // window but it still counts in the slow one.
  clock.ms = 2000;
  feed_ok(&mon, 10, 1.0);
  clock.ms = 3000;
  feed_ok(&mon, 10, 1.0);
  h = mon.snapshot();
  EXPECT_EQ(h.latency.fast_total, 20u);
  EXPECT_EQ(h.latency.fast_bad, 0u);
  EXPECT_DOUBLE_EQ(h.latency.fast_burn, 0.0);
  EXPECT_EQ(h.latency.slow_total, 40u);
  EXPECT_EQ(h.latency.slow_bad, 1u);

  // Second 4: the bad sample ages out of the slow window too.
  clock.ms = 4000;
  feed_ok(&mon, 10, 1.0);
  h = mon.snapshot();
  EXPECT_EQ(h.latency.slow_total, 40u);
  EXPECT_EQ(h.latency.slow_bad, 0u);
  EXPECT_DOUBLE_EQ(h.latency.slow_burn, 0.0);
  EXPECT_EQ(h.latency.lifetime_bad, 1u);  // lifetime never forgets
}

TEST(SloMonitor, RingBucketsAreReusedAfterWrap) {
  FakeClock clock;
  obs::SloOptions opt;
  opt.latency_objective = 0.99;
  opt.fast_window_s = 1;
  opt.slow_window_s = 3;  // ring capacity rounds up to 4 buckets
  obs::SloMonitor mon(opt, nullptr, clock.fn());

  // Stamp every bucket, then wrap far past the ring and write again: stale
  // stamps must not leak old counts into the new windows.
  for (std::uint64_t s = 0; s < 4; ++s) {
    clock.ms = s * 1000;
    feed_ok(&mon, 5, 100.0);  // all bad
  }
  clock.ms = 100 * 1000;  // reuses bucket (100 & 3) == bucket 0
  feed_ok(&mon, 4, 1.0);
  auto h = mon.snapshot();
  EXPECT_EQ(h.latency.fast_total, 4u);
  EXPECT_EQ(h.latency.fast_bad, 0u);
  EXPECT_EQ(h.latency.slow_total, 4u);
  EXPECT_EQ(h.latency.slow_bad, 0u);
  EXPECT_EQ(h.latency.lifetime_total, 24u);
}

TEST(SloMonitor, ZeroTrafficBurnsNothing) {
  FakeClock clock;
  obs::SloMonitor mon(obs::SloOptions{}, nullptr, clock.fn());
  auto h = mon.snapshot();
  EXPECT_DOUBLE_EQ(h.latency.fast_burn, 0.0);
  EXPECT_DOUBLE_EQ(h.availability.slow_burn, 0.0);
  EXPECT_EQ(h.latency.state, obs::AlertState::kOk);
}

// ------------------------------------------------------- alert states ------

TEST(SloMonitor, SingleSpikeCannotPageWhenSlowWindowIsClean) {
  FakeClock clock;
  obs::SloOptions opt;
  opt.latency_threshold_ms = 25.0;
  opt.latency_objective = 0.99;
  opt.fast_window_s = 1;
  opt.slow_window_s = 10;
  obs::SloMonitor mon(opt, nullptr, clock.fn());

  // Nine clean seconds, then one solid second of violations: the fast
  // window burns at 100 but the slow window sits near 1 — no alert.
  for (std::uint64_t s = 0; s < 9; ++s) {
    clock.ms = s * 1000;
    feed_ok(&mon, 100, 1.0);
  }
  clock.ms = 9000;
  feed_ok(&mon, 10, 100.0);
  auto h = mon.snapshot();
  EXPECT_GE(h.latency.fast_burn, opt.page_burn);
  EXPECT_LT(h.latency.slow_burn, opt.warn_burn);
  EXPECT_EQ(h.latency.state, obs::AlertState::kOk);

  // Sustained violations saturate the slow window too: now it pages.
  for (std::uint64_t s = 10; s < 19; ++s) {
    clock.ms = s * 1000;
    feed_ok(&mon, 100, 100.0);
  }
  h = mon.snapshot();
  EXPECT_GE(h.latency.slow_burn, opt.page_burn);
  EXPECT_EQ(h.latency.state, obs::AlertState::kPage);
}

TEST(SloMonitor, HystereticDowngradeHoldsUntilBurnClears) {
  FakeClock clock;
  obs::SloOptions opt;
  opt.latency_threshold_ms = 25.0;
  opt.latency_objective = 0.99;  // burn = bad-ratio * 100
  opt.fast_window_s = 1;
  opt.slow_window_s = 1;  // coinciding windows keep the math exact
  obs::SloMonitor mon(opt, nullptr, clock.fn());

  // Second 0: everything bad -> burn 100 -> page.
  clock.ms = 0;
  feed_ok(&mon, 20, 100.0);
  EXPECT_EQ(mon.snapshot().latency.state, obs::AlertState::kPage);

  // Second 1: 9% bad -> burn 9, above the page hold (10 * 0.8 = 8): the
  // page must not clear. Bad samples first so intermediate evaluations only
  // ever see a burn >= 9.
  clock.ms = 1000;
  feed_ok(&mon, 9, 100.0);
  feed_ok(&mon, 91, 1.0);
  auto h = mon.snapshot();
  EXPECT_NEAR(h.latency.fast_burn, 9.0, 1e-9);
  EXPECT_EQ(h.latency.state, obs::AlertState::kPage);

  // Second 2: burn 100/13 ~ 7.7 — below the page hold but above the warn
  // threshold (2): steps down exactly one notch and holds at warn.
  clock.ms = 2000;
  feed_ok(&mon, 1, 100.0);
  feed_ok(&mon, 12, 1.0);
  h = mon.snapshot();
  EXPECT_LT(h.latency.fast_burn, opt.page_burn * opt.clear_factor);
  EXPECT_GE(h.latency.fast_burn, opt.warn_burn);
  EXPECT_EQ(h.latency.state, obs::AlertState::kWarn);
  h = mon.snapshot();  // still warm: a second evaluation must not move it
  EXPECT_EQ(h.latency.state, obs::AlertState::kWarn);
}

TEST(SloMonitor, IdleDecayStepsDownOneStatePerEvaluation) {
  FakeClock clock;
  obs::SloOptions opt;
  opt.latency_objective = 0.99;
  opt.fast_window_s = 1;
  opt.slow_window_s = 2;
  obs::EventLog events(16);
  obs::SloMonitor mon(opt, &events, clock.fn());

  clock.ms = 0;
  feed_ok(&mon, 50, 1000.0);  // all bad -> page
  EXPECT_EQ(mon.latency_state(), obs::AlertState::kPage);

  // Jump past both windows: zero traffic burns 0, so each evaluation steps
  // the state down exactly once — page, then warn, then ok.
  clock.ms = 60 * 1000;
  EXPECT_EQ(mon.snapshot().latency.state, obs::AlertState::kWarn);
  EXPECT_EQ(mon.snapshot().latency.state, obs::AlertState::kOk);
  auto h = mon.snapshot();
  EXPECT_EQ(h.latency.state, obs::AlertState::kOk);
  EXPECT_EQ(h.latency.transitions, 3u);  // ok->page, page->warn, warn->ok

  // The transition trail landed in the event log, in order, with from/to.
  std::vector<obs::Event> trail;
  for (const obs::Event& ev : events.snapshot()) {
    if (std::string(ev.message) == "latency_slo_state") trail.push_back(ev);
  }
  ASSERT_EQ(trail.size(), 3u);
  EXPECT_EQ(trail[0].severity, obs::Severity::kError);  // -> page
  EXPECT_EQ(trail[0].args[0].value, 0u);                // from ok
  EXPECT_EQ(trail[0].args[1].value, 2u);                // to page
  EXPECT_EQ(trail[1].args[0].value, 2u);
  EXPECT_EQ(trail[1].args[1].value, 1u);
  EXPECT_EQ(trail[2].args[0].value, 1u);
  EXPECT_EQ(trail[2].args[1].value, 0u);
  EXPECT_EQ(trail[2].severity, obs::Severity::kInfo);  // -> ok
}

// ------------------------------------------------------- availability ------

TEST(SloMonitor, ShedsAndErrorsFeedAvailabilityNotLatency) {
  FakeClock clock;
  obs::SloOptions opt;
  opt.availability_objective = 0.99;
  opt.fast_window_s = 1;
  opt.slow_window_s = 1;
  obs::SloMonitor mon(opt, nullptr, clock.fn());

  clock.ms = 0;
  for (int i = 0; i < 10; ++i) mon.shed();
  for (int i = 0; i < 10; ++i) mon.observe(1.0, false);  // engine errors
  feed_ok(&mon, 80, 1.0);

  auto h = mon.snapshot();
  EXPECT_EQ(h.availability.fast_total, 100u);
  EXPECT_EQ(h.availability.fast_bad, 20u);
  EXPECT_EQ(h.availability.state, obs::AlertState::kPage);  // burn 20
  EXPECT_EQ(mon.availability_errors(), 20u);
  // Sheds and errored replies have no meaningful latency: the latency
  // series only saw the 80 ok samples.
  EXPECT_EQ(h.latency.fast_total, 80u);
  EXPECT_EQ(h.latency.fast_bad, 0u);
  EXPECT_EQ(h.latency.state, obs::AlertState::kOk);
}

// ----------------------------------------------------------- exemplars ------

TEST(SloMonitor, ExemplarsKeepTheSlowestDeterministically) {
  FakeClock clock;
  obs::SloOptions opt;
  opt.exemplar_capacity = 2;
  obs::SloMonitor mon(opt, nullptr, clock.fn());

  mon.capture_exemplar(/*user=*/1, /*e2e_ms=*/10.0, 2.0, 3.0);
  mon.capture_exemplar(2, 20.0, 4.0, 5.0);
  mon.capture_exemplar(3, 5.0, 1.0, 1.0);   // slower pair retained: dropped
  mon.capture_exemplar(4, 30.0, 6.0, 7.0);  // evicts the 10 ms capture

  auto h = mon.snapshot();
  EXPECT_EQ(mon.exemplars_captured(), 4u);
  ASSERT_EQ(h.exemplars.size(), 2u);
  EXPECT_EQ(h.exemplars[0].user, 4u);  // slowest first
  EXPECT_DOUBLE_EQ(h.exemplars[0].e2e_ms, 30.0);
  EXPECT_EQ(h.exemplars[1].user, 2u);
  EXPECT_DOUBLE_EQ(h.exemplars[1].e2e_ms, 20.0);
}

TEST(SloMonitor, ExemplarStagesSumToEndToEnd) {
  FakeClock clock;
  obs::SloMonitor mon(obs::SloOptions{}, nullptr, clock.fn());
  mon.capture_exemplar(7, 40.0, 12.0, 20.0);
  mon.capture_exemplar(8, 10.0, 6.0, 6.0);  // over-measured: clamp, not -2
  auto h = mon.snapshot();
  ASSERT_EQ(h.exemplars.size(), 2u);
  EXPECT_DOUBLE_EQ(h.exemplars[0].finish_ms, 8.0);
  EXPECT_DOUBLE_EQ(h.exemplars[0].queue_ms + h.exemplars[0].engine_ms +
                       h.exemplars[0].finish_ms,
                   h.exemplars[0].e2e_ms);
  EXPECT_DOUBLE_EQ(h.exemplars[1].finish_ms, 0.0);
}

// ----------------------------------------------------------- event log ------

TEST(EventLog, RingWrapsKeepingTheNewestEvents) {
  obs::EventLog log(4);
  EXPECT_EQ(log.capacity(), 4u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    log.record(obs::Severity::kInfo, obs::Component::kStore, "swap",
               {"generation", i});
  }
  EXPECT_EQ(log.recorded(), 10u);
  EXPECT_EQ(log.dropped(), 6u);

  const auto events = log.snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ticket, 6u + i);  // oldest survivor first
    EXPECT_EQ(events[i].args[0].value, 6u + i);
    EXPECT_STREQ(events[i].message, "swap");
  }
}

TEST(EventLog, SnapshotMaxKeepsTheNewestTail) {
  obs::EventLog log(8);
  for (std::uint64_t i = 0; i < 5; ++i) {
    log.record(obs::Severity::kWarn, obs::Component::kNet, "overload_shed",
               {"shard", i});
  }
  const auto tail = log.snapshot(2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].ticket, 3u);
  EXPECT_EQ(tail[1].ticket, 4u);
}

TEST(EventLog, ExportsOneJsonObjectPerLine) {
  obs::EventLog log(8);
  log.record(obs::Severity::kError, obs::Component::kOrch, "gate_reject",
             {"generation", 3}, {"tier", 1});
  log.record(obs::Severity::kInfo, obs::Component::kSlo, "latency_slo_state");

  const std::string text = log.export_json_lines();
  std::istringstream lines(text);
  std::string line;
  std::vector<std::string> parsed;
  while (std::getline(lines, line)) parsed.push_back(line);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_NE(parsed[0].find("\"ticket\":0"), std::string::npos);
  EXPECT_NE(parsed[0].find("\"severity\":\"error\""), std::string::npos);
  EXPECT_NE(parsed[0].find("\"component\":\"orchestrator\""),
            std::string::npos);
  EXPECT_NE(parsed[0].find("\"message\":\"gate_reject\""), std::string::npos);
  EXPECT_NE(parsed[0].find("\"args\":{\"generation\":3,\"tier\":1}"),
            std::string::npos);
  // Unused arg slots render as an empty args object, still valid JSON.
  EXPECT_NE(parsed[1].find("\"args\":{}"), std::string::npos);
  for (const std::string& l : parsed) {
    EXPECT_EQ(l.front(), '{');
    EXPECT_EQ(l.back(), '}');
  }
}

TEST(EventLog, ConcurrentWritersNeverTearAnEvent) {
  obs::EventLog log(64);
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 1000;
  static const char* const kMessages[kWriters] = {"swap", "overload_shed",
                                                  "gate_reject", "rollback"};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&log, w] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        log.record(obs::Severity::kWarn, obs::Component::kNet, kMessages[w],
                   {"writer", static_cast<std::uint64_t>(w)}, {"seq", i});
      }
    });
  }
  for (auto& t : writers) t.join();

  EXPECT_EQ(log.recorded(), kWriters * kPerWriter);
  const auto events = log.snapshot();
  EXPECT_LE(events.size(), log.capacity());
  EXPECT_FALSE(events.empty());
  const std::set<std::string> valid(kMessages, kMessages + kWriters);
  std::uint64_t last_ticket = 0;
  for (const obs::Event& ev : events) {
    // Every surviving slot is internally consistent: a known message with
    // its matching writer id, tickets strictly increasing.
    ASSERT_NE(ev.message, nullptr);
    EXPECT_EQ(valid.count(ev.message), 1u);
    EXPECT_LT(ev.args[0].value, static_cast<std::uint64_t>(kWriters));
    EXPECT_STREQ(kMessages[ev.args[0].value], ev.message);
    EXPECT_LT(ev.args[1].value, kPerWriter);
    if (ev.ticket != events.front().ticket) {
      EXPECT_GT(ev.ticket, last_ticket);
    }
    last_ticket = ev.ticket;
  }
}

}  // namespace
}  // namespace cumf
