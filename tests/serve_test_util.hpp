#pragma once

// Shared fixtures for the serve-layer test suites (serve_test,
// live_store_test, and the serving-fleet half of costmodel_test): seeded
// factor/rating generators, the serial brute-force top-k reference every
// engine configuration is checked against bit-for-bit, and an RAII temp
// checkpoint directory that writes/corrupts core::CheckpointManager
// snapshots the way a training job (or a crash mid-write) would.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "linalg/dense.hpp"
#include "linalg/hermitian.hpp"
#include "serve/topk.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace cumf::serve_test {

inline linalg::FactorMatrix random_factors(idx_t rows, int f,
                                           std::uint64_t seed) {
  linalg::FactorMatrix m(rows, f);
  util::Rng rng(seed);
  m.randomize_uniform(rng, -1.0f, 1.0f);
  return m;
}

/// Brute-force reference: score every item serially, rank by
/// (score desc, item asc), drop rated items when `exclude` is given.
inline std::vector<serve::Recommendation> brute_force_topk(
    const linalg::FactorMatrix& x, const linalg::FactorMatrix& theta,
    idx_t user, int k, const sparse::CsrMatrix* exclude = nullptr) {
  std::vector<idx_t> rated;
  if (exclude != nullptr && user < exclude->rows) {
    const auto cols = exclude->row_cols(user);
    rated.assign(cols.begin(), cols.end());
    std::sort(rated.begin(), rated.end());
  }
  std::vector<serve::Recommendation> all;
  for (idx_t v = 0; v < theta.rows(); ++v) {
    if (std::binary_search(rated.begin(), rated.end(), v)) continue;
    all.push_back({v, linalg::dot(x.row(user), theta.row(v), x.f())});
  }
  std::sort(all.begin(), all.end(), serve::ranks_before);
  if (all.size() > static_cast<std::size_t>(k)) {
    all.resize(static_cast<std::size_t>(k));
  }
  return all;
}

inline sparse::CsrMatrix random_ratings(idx_t m, idx_t n, nnz_t nz,
                                        std::uint64_t seed) {
  util::Rng rng(seed);
  sparse::CooMatrix coo;
  coo.rows = m;
  coo.cols = n;
  for (nnz_t i = 0; i < nz; ++i) {
    coo.row.push_back(
        static_cast<idx_t>(rng.next_below(static_cast<std::uint64_t>(m))));
    coo.col.push_back(
        static_cast<idx_t>(rng.next_below(static_cast<std::uint64_t>(n))));
    coo.val.push_back(rng.next_real());
  }
  return sparse::coo_to_csr(coo);
}

/// A checkpoint directory under the gtest temp root, removed on destruction.
/// write() saves an (X, Θ) pair exactly as a training job would on its way
/// out; corrupt_current() clobbers the current files (leaving no valid
/// fallback) to simulate a crash mid-write.
class TempCheckpointDir {
 public:
  explicit TempCheckpointDir(const std::string& name)
      : path_(std::filesystem::path(testing::TempDir()) / name) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempCheckpointDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }

  TempCheckpointDir(const TempCheckpointDir&) = delete;
  TempCheckpointDir& operator=(const TempCheckpointDir&) = delete;

  [[nodiscard]] std::string path() const { return path_.string(); }

  void write(const linalg::FactorMatrix& x, const linalg::FactorMatrix& theta,
             int iteration) const {
    core::CheckpointManager manager(path_.string());
    manager.save_x(x, iteration);
    manager.save_theta(theta, iteration);
  }

  /// Overwrites both current factor files with garbage and deletes the
  /// .prev fallbacks, so no valid snapshot remains in the directory.
  void corrupt_current() const {
    for (const char* stem : {"x", "theta"}) {
      std::ofstream out(path_ / (std::string(stem) + ".ckpt"),
                        std::ios::binary | std::ios::trunc);
      out << "not a checkpoint";
      std::error_code ec;
      std::filesystem::remove(path_ / (std::string(stem) + ".prev.ckpt"), ec);
    }
  }

 private:
  std::filesystem::path path_;
};

}  // namespace cumf::serve_test
