#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "obs/events.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "serve/batcher.hpp"
#include "serve/factor_store.hpp"
#include "serve/live_store.hpp"
#include "serve/net/client.hpp"
#include "serve/net/protocol.hpp"
#include "serve/net/server.hpp"
#include "serve/topk.hpp"
#include "serve_test_util.hpp"

namespace cumf {
namespace {

using serve_test::brute_force_topk;
using serve_test::random_factors;
using namespace serve::net;

/// Value of one exposition series, e.g. `cumf_serve_queries_total` or
/// `cumf_serve_cache_requests_total{result="hit"}`. -1 when absent.
double metric_value(const std::string& text, const std::string& series) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.size() > series.size() + 1 && line.compare(0, series.size(), series) == 0 &&
        line[series.size()] == ' ') {
      return std::stod(line.substr(series.size() + 1));
    }
  }
  return -1.0;
}

// ------------------------------------------------------------- protocol ----

TEST(NetProtocol, QueryRequestRoundTrip) {
  std::vector<std::uint8_t> wire;
  encode_query_request(QueryRequest{42, 7}, &wire);

  std::size_t off = 0, len = 0;
  ASSERT_TRUE(try_frame(wire.data(), wire.size(), &off, &len));
  EXPECT_EQ(off + len, wire.size());

  const Request req = decode_request(wire.data() + off, len);
  EXPECT_EQ(req.type, MsgType::kQuery);
  EXPECT_EQ(req.query.user, 42);
  EXPECT_EQ(req.query.k, 7);
}

TEST(NetProtocol, QueryResponseRoundTrip) {
  QueryResponse resp;
  resp.status = Status::kOk;
  resp.generation = 3;
  resp.items = {{10, 1.5}, {4, 1.5}, {99, -0.25}};

  std::vector<std::uint8_t> wire;
  encode_query_response(resp, &wire);

  std::size_t off = 0, len = 0;
  ASSERT_TRUE(try_frame(wire.data(), wire.size(), &off, &len));
  QueryResponse got;
  StatsResponse stats;
  ASSERT_EQ(decode_response(wire.data() + off, len, &got, &stats),
            MsgType::kQuery);
  EXPECT_EQ(got.status, Status::kOk);
  EXPECT_EQ(got.generation, 3u);
  EXPECT_EQ(got.items, resp.items);  // scores bit-exact through the f64 path
}

TEST(NetProtocol, EmptyResponseAndStatsRoundTrip) {
  QueryResponse resp;
  resp.status = Status::kBadUser;
  std::vector<std::uint8_t> wire;
  encode_query_response(resp, &wire);

  std::size_t off = 0, len = 0;
  ASSERT_TRUE(try_frame(wire.data(), wire.size(), &off, &len));
  QueryResponse got;
  StatsResponse stats;
  ASSERT_EQ(decode_response(wire.data() + off, len, &got, &stats),
            MsgType::kQuery);
  EXPECT_EQ(got.status, Status::kBadUser);
  EXPECT_TRUE(got.items.empty());

  StatsResponse s;
  s.queries = 100;
  s.generation = 2;
  s.e2e_samples = 64;
  s.e2e_total = 100;
  s.e2e_p99_ms = 1.25;
  s.queue_p99_ms = 0.5;
  wire.clear();
  encode_stats_response(s, &wire);
  ASSERT_TRUE(try_frame(wire.data(), wire.size(), &off, &len));
  ASSERT_EQ(decode_response(wire.data() + off, len, &got, &stats),
            MsgType::kStats);
  EXPECT_EQ(stats.queries, 100u);
  EXPECT_EQ(stats.generation, 2u);
  EXPECT_EQ(stats.e2e_samples, 64u);
  EXPECT_EQ(stats.e2e_total, 100u);
  EXPECT_DOUBLE_EQ(stats.e2e_p99_ms, 1.25);
  EXPECT_DOUBLE_EQ(stats.queue_p99_ms, 0.5);
}

TEST(NetProtocol, FramingRejectsGarbageAndReportsIncomplete) {
  std::vector<std::uint8_t> wire;
  encode_query_request(QueryRequest{1, 2}, &wire);

  std::size_t off = 0, len = 0;
  // Incomplete prefix and incomplete payload want more bytes, not an error.
  EXPECT_FALSE(try_frame(wire.data(), 2, &off, &len));
  EXPECT_FALSE(try_frame(wire.data(), wire.size() - 1, &off, &len));

  // Zero-length and oversized payloads are violations, not retries.
  const std::uint8_t zero[4] = {0, 0, 0, 0};
  EXPECT_THROW((void)try_frame(zero, 4, &off, &len), ProtocolError);
  const std::uint8_t huge[4] = {0xff, 0xff, 0xff, 0xff};
  EXPECT_THROW((void)try_frame(huge, 4, &off, &len), ProtocolError);

  // Truncated / trailing-byte / unknown-type payloads all fail decode.
  const std::uint8_t query_type = 1;
  EXPECT_THROW((void)decode_request(&query_type, 1), ProtocolError);
  std::vector<std::uint8_t> padded(wire.begin() + 4, wire.end());
  padded.push_back(0);
  EXPECT_THROW((void)decode_request(padded.data(), padded.size()),
               ProtocolError);
  const std::uint8_t unknown = 9;
  EXPECT_THROW((void)decode_request(&unknown, 1), ProtocolError);
}

TEST(NetProtocol, AddRatingRoundTrip) {
  std::vector<std::uint8_t> wire;
  encode_add_rating_request(AddRatingRequest{42, 17, 4.5}, &wire);

  std::size_t off = 0, len = 0;
  ASSERT_TRUE(try_frame(wire.data(), wire.size(), &off, &len));
  const Request req = decode_request(wire.data() + off, len);
  EXPECT_EQ(req.type, MsgType::kAddRating);
  EXPECT_EQ(req.rating.user, 42);
  EXPECT_EQ(req.rating.item, 17);
  EXPECT_DOUBLE_EQ(req.rating.value, 4.5);

  wire.clear();
  encode_add_rating_response(Status::kBadUser, &wire);
  ASSERT_TRUE(try_frame(wire.data(), wire.size(), &off, &len));
  QueryResponse got;
  StatsResponse stats;
  ASSERT_EQ(decode_response(wire.data() + off, len, &got, &stats),
            MsgType::kAddRating);
  EXPECT_EQ(got.status, Status::kBadUser);

  // Truncated add-rating payload is a violation like any other.
  wire.clear();
  encode_add_rating_request(AddRatingRequest{1, 2, 3.0}, &wire);
  EXPECT_THROW((void)decode_request(wire.data() + 4, wire.size() - 5),
               ProtocolError);
}

TEST(NetProtocol, StatsCarriesOrchestratorCounters) {
  StatsResponse s;
  s.retrains = 5;
  s.promotions = 3;
  s.rejections = 2;
  s.rollbacks = 1;
  s.deltas_ingested = 4096;
  s.deltas_rejected = 9;
  s.gate_rmse = 0.91;
  s.gate_recall = 0.22;
  s.baseline_rmse = 0.89;
  s.baseline_recall = 0.25;
  s.train_wall_ms = 130.5;
  s.train_modeled_s = 0.004;
  s.retrains_full = 2;
  s.retrains_incremental = 3;
  s.promotions_full = 1;
  s.promotions_incremental = 2;
  s.rejections_full = 0;
  s.rejections_incremental = 2;
  s.escalations = 1;
  s.consolidations = 1;
  s.train_tier = 1;

  std::vector<std::uint8_t> wire;
  encode_stats_response(s, &wire);
  std::size_t off = 0, len = 0;
  ASSERT_TRUE(try_frame(wire.data(), wire.size(), &off, &len));
  QueryResponse query;
  StatsResponse got;
  ASSERT_EQ(decode_response(wire.data() + off, len, &query, &got),
            MsgType::kStats);
  EXPECT_EQ(got.retrains, 5u);
  EXPECT_EQ(got.promotions, 3u);
  EXPECT_EQ(got.rejections, 2u);
  EXPECT_EQ(got.rollbacks, 1u);
  EXPECT_EQ(got.deltas_ingested, 4096u);
  EXPECT_EQ(got.deltas_rejected, 9u);
  EXPECT_DOUBLE_EQ(got.gate_rmse, 0.91);
  EXPECT_DOUBLE_EQ(got.gate_recall, 0.22);
  EXPECT_DOUBLE_EQ(got.baseline_rmse, 0.89);
  EXPECT_DOUBLE_EQ(got.baseline_recall, 0.25);
  EXPECT_DOUBLE_EQ(got.train_wall_ms, 130.5);
  EXPECT_DOUBLE_EQ(got.train_modeled_s, 0.004);
  EXPECT_EQ(got.retrains_full, 2u);
  EXPECT_EQ(got.retrains_incremental, 3u);
  EXPECT_EQ(got.promotions_full, 1u);
  EXPECT_EQ(got.promotions_incremental, 2u);
  EXPECT_EQ(got.rejections_full, 0u);
  EXPECT_EQ(got.rejections_incremental, 2u);
  EXPECT_EQ(got.escalations, 1u);
  EXPECT_EQ(got.consolidations, 1u);
  EXPECT_EQ(got.train_tier, 1u);
}

TEST(NetProtocol, StatsCarriesNetCounters) {
  StatsResponse s;
  s.net_connections = 1000;
  s.net_rejected = 24;
  s.net_protocol_errors = 3;
  s.net_recv_errors = 7;
  s.net_slow_closes = 2;
  s.net_overload_sheds = 512;
  s.net_io_shards = 4;

  std::vector<std::uint8_t> wire;
  encode_stats_response(s, &wire);
  std::size_t off = 0, len = 0;
  ASSERT_TRUE(try_frame(wire.data(), wire.size(), &off, &len));
  QueryResponse query;
  StatsResponse got;
  ASSERT_EQ(decode_response(wire.data() + off, len, &query, &got),
            MsgType::kStats);
  EXPECT_EQ(got.net_connections, 1000u);
  EXPECT_EQ(got.net_rejected, 24u);
  EXPECT_EQ(got.net_protocol_errors, 3u);
  EXPECT_EQ(got.net_recv_errors, 7u);
  EXPECT_EQ(got.net_slow_closes, 2u);
  EXPECT_EQ(got.net_overload_sheds, 512u);
  EXPECT_EQ(got.net_io_shards, 4u);
}

TEST(NetProtocol, MetricsRoundTrip) {
  std::vector<std::uint8_t> wire;
  encode_metrics_request(&wire);
  std::size_t off = 0, len = 0;
  ASSERT_TRUE(try_frame(wire.data(), wire.size(), &off, &len));
  EXPECT_EQ(decode_request(wire.data() + off, len).type, MsgType::kMetrics);

  const std::string text =
      "# HELP cumf_serve_queries_total User queries answered\n"
      "# TYPE cumf_serve_queries_total counter\n"
      "cumf_serve_queries_total 42\n";
  wire.clear();
  encode_metrics_response(text, &wire);
  ASSERT_TRUE(try_frame(wire.data(), wire.size(), &off, &len));
  QueryResponse query;
  StatsResponse stats;
  std::string got;
  ASSERT_EQ(decode_response(wire.data() + off, len, &query, &stats, &got),
            MsgType::kMetrics);
  EXPECT_EQ(got, text);  // byte-exact through the length-prefixed path

  // A decode with no metrics sink still consumes the frame cleanly.
  ASSERT_EQ(decode_response(wire.data() + off, len, &query, &stats),
            MsgType::kMetrics);
}

TEST(NetProtocol, MetricsResponseTruncatesToMaxPayload) {
  const std::string huge(2 * kMaxPayload, 'x');
  std::vector<std::uint8_t> wire;
  encode_metrics_response(huge, &wire);
  // The frame stays within protocol bounds and decodes.
  ASSERT_LE(wire.size(), static_cast<std::size_t>(kMaxPayload) + 4);
  std::size_t off = 0, len = 0;
  ASSERT_TRUE(try_frame(wire.data(), wire.size(), &off, &len));
  QueryResponse query;
  StatsResponse stats;
  std::string got;
  ASSERT_EQ(decode_response(wire.data() + off, len, &query, &stats, &got),
            MsgType::kMetrics);
  EXPECT_EQ(got.size(), static_cast<std::size_t>(kMaxPayload) - 6);
  EXPECT_EQ(got, huge.substr(0, got.size()));
}

TEST(NetProtocol, MalformedMetricsFramesAreViolations) {
  std::vector<std::uint8_t> wire;
  encode_metrics_response("hello", &wire);
  std::size_t off = 0, len = 0;
  ASSERT_TRUE(try_frame(wire.data(), wire.size(), &off, &len));
  QueryResponse query;
  StatsResponse stats;
  std::string got;

  // Truncated payload: the declared text length exceeds the bytes present.
  EXPECT_THROW((void)decode_response(wire.data() + off, len - 1, &query,
                                     &stats, &got),
               ProtocolError);
  // Trailing garbage after the text is a violation, not ignored padding.
  std::vector<std::uint8_t> padded(wire.begin() + 4, wire.end());
  padded.push_back(0);
  EXPECT_THROW((void)decode_response(padded.data(), padded.size(), &query,
                                     &stats, &got),
               ProtocolError);
  // A bare type byte with no header is truncated too.
  const std::uint8_t type_only = 4;
  EXPECT_THROW((void)decode_response(&type_only, 1, &query, &stats, &got),
               ProtocolError);
  // Metrics *requests* carry nothing after the type byte.
  const std::uint8_t padded_req[2] = {4, 0};
  EXPECT_THROW((void)decode_request(padded_req, 2), ProtocolError);
}

TEST(NetProtocol, HealthRoundTrip) {
  std::vector<std::uint8_t> wire;
  encode_health_request(&wire);
  std::size_t off = 0, len = 0;
  ASSERT_TRUE(try_frame(wire.data(), wire.size(), &off, &len));
  EXPECT_EQ(decode_request(wire.data() + off, len).type, MsgType::kHealth);

  HealthResponse h;
  h.latency_state = 2;
  h.availability_state = 1;
  h.latency_threshold_ms = 25.0;
  h.latency_fast_burn = 14.5;
  h.latency_slow_burn = 11.0;
  h.availability_fast_burn = 3.25;
  h.availability_slow_burn = 2.5;
  h.latency_violations = 120;
  h.availability_errors = 7;
  h.latency_transitions = 4;
  h.availability_transitions = 2;
  h.events_recorded = 900;
  h.events_dropped = 12;
  h.exemplars = {{5, 17, 80.0, 30.0, 45.0, 5.0}, {3, 9, 60.0, 10.0, 48.0, 2.0}};
  h.events_json =
      "{\"ticket\":0,\"message\":\"overload_shed\"}\n"
      "{\"ticket\":1,\"message\":\"latency_slo_state\"}\n";

  wire.clear();
  encode_health_response(h, &wire);
  ASSERT_TRUE(try_frame(wire.data(), wire.size(), &off, &len));
  QueryResponse query;
  StatsResponse stats;
  HealthResponse got;
  ASSERT_EQ(decode_response(wire.data() + off, len, &query, &stats, nullptr,
                            &got),
            MsgType::kHealth);
  EXPECT_EQ(got.latency_state, 2);
  EXPECT_EQ(got.availability_state, 1);
  EXPECT_DOUBLE_EQ(got.latency_threshold_ms, 25.0);
  EXPECT_DOUBLE_EQ(got.latency_fast_burn, 14.5);
  EXPECT_DOUBLE_EQ(got.latency_slow_burn, 11.0);
  EXPECT_DOUBLE_EQ(got.availability_fast_burn, 3.25);
  EXPECT_DOUBLE_EQ(got.availability_slow_burn, 2.5);
  EXPECT_EQ(got.latency_violations, 120u);
  EXPECT_EQ(got.availability_errors, 7u);
  EXPECT_EQ(got.latency_transitions, 4u);
  EXPECT_EQ(got.availability_transitions, 2u);
  EXPECT_EQ(got.events_recorded, 900u);
  EXPECT_EQ(got.events_dropped, 12u);
  ASSERT_EQ(got.exemplars.size(), 2u);
  EXPECT_EQ(got.exemplars[0].ticket, 5u);
  EXPECT_EQ(got.exemplars[0].user, 17u);
  EXPECT_DOUBLE_EQ(got.exemplars[0].e2e_ms, 80.0);
  EXPECT_DOUBLE_EQ(got.exemplars[0].queue_ms, 30.0);
  EXPECT_DOUBLE_EQ(got.exemplars[0].engine_ms, 45.0);
  EXPECT_DOUBLE_EQ(got.exemplars[0].finish_ms, 5.0);
  EXPECT_EQ(got.exemplars[1].user, 9u);
  EXPECT_EQ(got.events_json, h.events_json);

  // A decode with no health sink still consumes the frame cleanly.
  ASSERT_EQ(decode_response(wire.data() + off, len, &query, &stats),
            MsgType::kHealth);
}

TEST(NetProtocol, HealthResponseTrimsEventsAtLineBoundaries) {
  HealthResponse h;
  for (std::uint64_t i = 0; i < 40; ++i) {
    h.exemplars.push_back({i, i, 100.0 - static_cast<double>(i), 1.0, 2.0,
                           3.0});
  }
  std::string huge;
  while (huge.size() < 2 * kMaxPayload) {
    huge += "{\"ticket\":" + std::to_string(huge.size()) + ",\"pad\":\"" +
            std::string(100, 'x') + "\"}\n";
  }
  h.events_json = huge;

  std::vector<std::uint8_t> wire;
  encode_health_response(h, &wire);
  ASSERT_LE(wire.size(), static_cast<std::size_t>(kMaxPayload) + 4);
  std::size_t off = 0, len = 0;
  ASSERT_TRUE(try_frame(wire.data(), wire.size(), &off, &len));
  QueryResponse query;
  StatsResponse stats;
  HealthResponse got;
  ASSERT_EQ(decode_response(wire.data() + off, len, &query, &stats, nullptr,
                            &got),
            MsgType::kHealth);

  // Exemplars cap at the wire bound, keeping the front (slowest-first) ones.
  ASSERT_EQ(got.exemplars.size(), kMaxHealthExemplars);
  EXPECT_EQ(got.exemplars[0].ticket, 0u);
  EXPECT_EQ(got.exemplars[kMaxHealthExemplars - 1].ticket,
            static_cast<std::uint64_t>(kMaxHealthExemplars - 1));

  // The events text is trimmed oldest-first to a *suffix* of the original,
  // and the cut lands on a line boundary so every surviving line is intact.
  ASSERT_FALSE(got.events_json.empty());
  ASSERT_LT(got.events_json.size(), huge.size());
  EXPECT_EQ(huge.compare(huge.size() - got.events_json.size(),
                         got.events_json.size(), got.events_json),
            0);
  EXPECT_EQ(huge[huge.size() - got.events_json.size() - 1], '\n');
  EXPECT_EQ(got.events_json.front(), '{');
  EXPECT_EQ(got.events_json.back(), '\n');
}

TEST(NetProtocol, MalformedHealthFramesAreViolations) {
  HealthResponse h;
  h.exemplars = {{1, 2, 30.0, 10.0, 15.0, 5.0}};
  h.events_json = "{\"ticket\":0}\n";
  std::vector<std::uint8_t> wire;
  encode_health_response(h, &wire);
  std::size_t off = 0, len = 0;
  ASSERT_TRUE(try_frame(wire.data(), wire.size(), &off, &len));
  QueryResponse query;
  StatsResponse stats;
  HealthResponse got;

  // Truncated payload: the trailing events text is cut short.
  EXPECT_THROW((void)decode_response(wire.data() + off, len - 1, &query,
                                     &stats, nullptr, &got),
               ProtocolError);
  // Trailing garbage after the events text is a violation.
  std::vector<std::uint8_t> padded(wire.begin() + 4, wire.end());
  padded.push_back(0);
  EXPECT_THROW((void)decode_response(padded.data(), padded.size(), &query,
                                     &stats, nullptr, &got),
               ProtocolError);
  // A corrupt exemplar count can never expand past the payload: huge counts
  // trip the bound check, small lies exhaust the frame.
  std::vector<std::uint8_t> corrupt(wire.begin() + 4, wire.end());
  const std::size_t n_ex_off = 4 + 5 * 8 + 6 * 8;  // fixed header before n_ex
  corrupt[n_ex_off] = 0xff;
  corrupt[n_ex_off + 1] = 0xff;
  corrupt[n_ex_off + 2] = 0xff;
  corrupt[n_ex_off + 3] = 0xff;
  EXPECT_THROW((void)decode_response(corrupt.data(), corrupt.size(), &query,
                                     &stats, nullptr, &got),
               ProtocolError);
  corrupt.assign(wire.begin() + 4, wire.end());
  corrupt[n_ex_off] = 2;  // claims one more exemplar than the frame holds
  EXPECT_THROW((void)decode_response(corrupt.data(), corrupt.size(), &query,
                                     &stats, nullptr, &got),
               ProtocolError);
  // A bare type byte is truncated; health *requests* carry nothing after it.
  const std::uint8_t type_only = 5;
  EXPECT_THROW((void)decode_response(&type_only, 1, &query, &stats, nullptr,
                                     &got),
               ProtocolError);
  const std::uint8_t padded_req[2] = {5, 0};
  EXPECT_THROW((void)decode_request(padded_req, 2), ProtocolError);
}

// ---------------------------------------------------- loopback serving -----

struct LoopbackFixture {
  static constexpr idx_t kUsers = 30;
  static constexpr idx_t kItems = 120;
  static constexpr int kK = 6;

  LoopbackFixture(std::size_t cache_capacity = 0,
                  std::chrono::microseconds max_delay =
                      std::chrono::microseconds(2000),
                  ServerOptions sopt = {})
      : x(random_factors(kUsers, 8, 601)),
        theta(random_factors(kItems, 8, 602)),
        store(x, theta, 3),
        engine(store) {
    serve::BatcherOptions opt;
    opt.k = kK;
    opt.max_batch = 8;
    opt.max_delay = max_delay;
    opt.cache_capacity = cache_capacity;
    batcher = std::make_unique<serve::RequestBatcher>(engine, opt);
    server = std::make_unique<TcpServer>(*batcher, std::move(sopt));
  }

  linalg::FactorMatrix x, theta;
  serve::FactorStore store;
  serve::TopKEngine engine;
  std::unique_ptr<serve::RequestBatcher> batcher;
  std::unique_ptr<TcpServer> server;
};

TEST(TcpServer, LoopbackAnswersBitIdenticalToDirectEngine) {
  LoopbackFixture fx;
  Client client("127.0.0.1", fx.server->port());

  for (idx_t u = 0; u < LoopbackFixture::kUsers; ++u) {
    const QueryResponse resp = client.query(u, LoopbackFixture::kK);
    ASSERT_EQ(resp.status, Status::kOk) << "user=" << u;
    EXPECT_EQ(resp.generation, 0u);  // static store
    EXPECT_EQ(resp.items, fx.engine.recommend_one(u, LoopbackFixture::kK))
        << "user=" << u;
  }
  EXPECT_EQ(fx.server->connections_accepted(), 1u);
}

TEST(TcpServer, SmallerKTruncatesTheSameRanking) {
  LoopbackFixture fx;
  Client client("127.0.0.1", fx.server->port());

  const auto full = fx.engine.recommend_one(5, LoopbackFixture::kK);
  const QueryResponse resp = client.query(5, 3);
  ASSERT_EQ(resp.status, Status::kOk);
  ASSERT_EQ(resp.items.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(resp.items[static_cast<std::size_t>(i)],
              full[static_cast<std::size_t>(i)]);
  }
}

TEST(TcpServer, RejectsBadUsersAndBadK) {
  LoopbackFixture fx;
  Client client("127.0.0.1", fx.server->port());

  EXPECT_EQ(client.query(LoopbackFixture::kUsers, 3).status, Status::kBadUser);
  EXPECT_EQ(client.query(-1, 3).status, Status::kBadUser);
  EXPECT_EQ(client.query(0, 0).status, Status::kBadRequest);
  EXPECT_EQ(client.query(0, LoopbackFixture::kK + 1).status,
            Status::kBadRequest);
  // The connection survives rejected requests.
  EXPECT_EQ(client.query(0, LoopbackFixture::kK).status, Status::kOk);
}

TEST(TcpServer, PipelinedResponsesKeepRequestOrder) {
  // Cache on: hits resolve at submit time while earlier misses are still in
  // flight, which is exactly the reordering hazard the server must suppress.
  LoopbackFixture fx(/*cache_capacity=*/16);
  Client client("127.0.0.1", fx.server->port());

  // Warm the cache closed-loop so the pipelined stream below mixes instant
  // hits (users 0–4) among misses still waiting on the flusher.
  for (idx_t u = 0; u < 5; ++u) {
    ASSERT_EQ(client.query(u, LoopbackFixture::kK).status, Status::kOk);
  }

  std::vector<idx_t> users;
  for (int round = 0; round < 5; ++round) {
    for (idx_t u = 0; u < 10; ++u) users.push_back(u);
  }
  for (const idx_t u : users) client.send_query(u, LoopbackFixture::kK);
  for (const idx_t u : users) {
    const QueryResponse resp = client.read_query_response();
    ASSERT_EQ(resp.status, Status::kOk) << "user=" << u;
    EXPECT_EQ(resp.items, fx.engine.recommend_one(u, LoopbackFixture::kK))
        << "user=" << u;
  }

  const auto stats = fx.server->stats();
  EXPECT_EQ(stats.queries, users.size() + 5);
  EXPECT_GT(stats.cache_hits, 0u);
}

TEST(TcpServer, ConcurrentConnectionsShareTheBatcher) {
  LoopbackFixture fx;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 40;

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Client client("127.0.0.1", fx.server->port());
      for (int i = 0; i < kPerThread; ++i) {
        const idx_t u = static_cast<idx_t>((t * 7 + i) %
                                           LoopbackFixture::kUsers);
        const QueryResponse resp = client.query(u, LoopbackFixture::kK);
        if (resp.status != Status::kOk ||
            resp.items != fx.engine.recommend_one(u, LoopbackFixture::kK)) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(fx.server->connections_accepted(),
            static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(fx.server->stats().queries,
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(TcpServer, StatsOverTheWireAndE2eCoversBatchWall) {
  // Cache off: every query is scored, so e2e and batch_wall cover the same
  // miss population and each query's e2e contains its batch's wall time —
  // the p99 ordering holds by construction.
  LoopbackFixture fx;
  Client client("127.0.0.1", fx.server->port());

  constexpr int kQueries = 120;
  for (int i = 0; i < kQueries; ++i) {
    (void)client.query(static_cast<idx_t>(i % LoopbackFixture::kUsers),
                       LoopbackFixture::kK);
  }

  const StatsResponse wire = client.stats();
  EXPECT_EQ(wire.queries, static_cast<std::uint64_t>(kQueries));
  EXPECT_EQ(wire.e2e_total, static_cast<std::uint64_t>(kQueries));
  EXPECT_EQ(wire.e2e_samples, static_cast<std::uint64_t>(kQueries));
  EXPECT_GT(wire.e2e_p99_ms, 0.0);
  EXPECT_GE(wire.e2e_p99_ms, wire.batch_wall_p99_ms);
  EXPECT_GE(wire.net_e2e_p99_ms, wire.e2e_p99_ms);
  EXPECT_GE(wire.e2e_p50_ms, wire.queue_p50_ms);

  const serve::ServeStats stats = fx.server->stats();
  EXPECT_EQ(stats.e2e.total_recorded, static_cast<std::uint64_t>(kQueries));
  EXPECT_EQ(stats.queue_delay.total_recorded,
            static_cast<std::uint64_t>(kQueries));
  EXPECT_GE(stats.e2e.p99_ms, stats.batch_wall.p99_ms);
  EXPECT_GE(stats.net_e2e.p99_ms, stats.e2e.p99_ms);
}

TEST(TcpServer, MetricsOverTheWireAgreeWithStats) {
  // Cache on so the hit/miss split is non-trivial.
  LoopbackFixture fx(/*cache_capacity=*/16);
  Client client("127.0.0.1", fx.server->port());
  for (int i = 0; i < 60; ++i) {
    ASSERT_EQ(client.query(static_cast<idx_t>(i % 10), LoopbackFixture::kK)
                  .status,
              Status::kOk);
  }

  const std::string text = client.metrics();
  const serve::ServeStats stats = fx.server->stats();

  // The exposition is rendered from the same snapshot family the stats op
  // serves, so the headline counters must agree exactly.
  EXPECT_EQ(metric_value(text, "cumf_serve_queries_total"),
            static_cast<double>(stats.queries));
  EXPECT_EQ(metric_value(text, "cumf_serve_batches_total"),
            static_cast<double>(stats.batches));
  EXPECT_EQ(
      metric_value(text, "cumf_serve_cache_requests_total{result=\"hit\"}"),
      static_cast<double>(stats.cache_hits));
  EXPECT_EQ(
      metric_value(text, "cumf_serve_cache_requests_total{result=\"miss\"}"),
      static_cast<double>(stats.cache_misses));
  EXPECT_EQ(metric_value(text, "cumf_serve_generation"),
            static_cast<double>(stats.generation));
  EXPECT_EQ(metric_value(text, "cumf_net_connections_total"), 1.0);
  EXPECT_EQ(metric_value(text, "cumf_net_protocol_errors_total"), 0.0);

  // Latency histograms ride along: every query contributed one e2e sample.
  EXPECT_EQ(metric_value(text, "cumf_serve_latency_ms_count{stage=\"e2e\"}"),
            static_cast<double>(stats.queries));
  EXPECT_GE(
      metric_value(text, "cumf_serve_latency_quantile_ms{stage=\"e2e\",q=\"0.99\"}"),
      0.0);

  // The stats op and the metrics op answer on the same connection.
  EXPECT_EQ(client.stats().queries, stats.queries);
  EXPECT_EQ(client.query(3, LoopbackFixture::kK).status, Status::kOk);
}

TEST(TcpServer, AbruptClientDisconnectLeavesServerServing) {
  LoopbackFixture fx;
  {
    Client doomed("127.0.0.1", fx.server->port());
    // In-flight queries whose responses are never read.
    for (int i = 0; i < 20; ++i) doomed.send_query(0, LoopbackFixture::kK);
  }  // closed with replies pending

  Client client("127.0.0.1", fx.server->port());
  const QueryResponse resp = client.query(1, LoopbackFixture::kK);
  EXPECT_EQ(resp.status, Status::kOk);
  EXPECT_EQ(resp.items, fx.engine.recommend_one(1, LoopbackFixture::kK));
}

TEST(TcpServer, MalformedFrameClosesOnlyThatConnection) {
  LoopbackFixture fx;
  Client good("127.0.0.1", fx.server->port());

  // A raw socket writes a length prefix far over kMaxPayload: the server
  // must close that connection without waiting for the phantom payload.
  {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(fx.server->port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    const std::uint8_t garbage[4] = {0xff, 0xff, 0xff, 0x7f};
    ASSERT_EQ(::send(fd, garbage, sizeof(garbage), MSG_NOSIGNAL), 4);
    char byte = 0;
    EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);  // orderly close from the server
    ::close(fd);
  }
  EXPECT_EQ(fx.server->protocol_errors(), 1u);

  // The well-behaved connection is unaffected.
  EXPECT_EQ(good.query(2, LoopbackFixture::kK).status, Status::kOk);
}

// ------------------------------------- backpressure & admission control ----

/// Spins until `pred()` holds or ~2s elapse; returns the final value.
template <typename Pred>
bool eventually(Pred pred) {
  for (int i = 0; i < 400; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

TEST(TcpServer, StatsReportNetSliceOverTheWire) {
  ServerOptions sopt;
  sopt.io_threads = 3;
  LoopbackFixture fx(0, std::chrono::microseconds(2000), sopt);
  Client client("127.0.0.1", fx.server->port());
  ASSERT_EQ(client.query(0, LoopbackFixture::kK).status, Status::kOk);

  const StatsResponse wire = client.stats();
  EXPECT_EQ(wire.net_connections, 1u);
  EXPECT_EQ(wire.net_io_shards, 3u);
  EXPECT_EQ(wire.net_rejected, 0u);
  EXPECT_EQ(wire.net_overload_sheds, 0u);

  const serve::ServeStats stats = fx.server->stats();
  EXPECT_EQ(stats.net.connections_accepted, 1u);
  EXPECT_EQ(stats.net.io_shards, 3u);
  EXPECT_EQ(stats.net.open_connections, 1u);
}

TEST(TcpServer, SlowReaderIsDisconnectedAtTheOutBufferCap) {
  // Tiny server-side send buffer and out cap so a reader that never drains
  // trips the bound with a few hundred replies instead of megabytes.
  ServerOptions sopt;
  sopt.so_sndbuf = 4096;
  sopt.max_out_buffer = 32 << 10;
  LoopbackFixture fx(0, std::chrono::microseconds(200), sopt);

  // Raw socket with a tiny receive buffer (set before connect so the window
  // stays small): the kernel can only absorb a few KB of replies, so the
  // backlog lands in the server's out buffer, not in TCP.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  int rcvbuf = 4096;
  ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf)),
            0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(fx.server->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  // Pipeline far more reply bytes than sndbuf + rcvbuf + out cap can hold
  // and never read; the server must cut the connection, not buffer without
  // bound. A send error just means it already did.
  std::vector<std::uint8_t> frames;
  for (int i = 0; i < 4000; ++i) {
    encode_query_request(
        QueryRequest{static_cast<idx_t>(i % LoopbackFixture::kUsers),
                     LoopbackFixture::kK},
        &frames);
  }
  std::size_t sent = 0;
  while (sent < frames.size()) {
    const ssize_t n = ::send(fd, frames.data() + sent, frames.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  EXPECT_TRUE(eventually([&] { return fx.server->slow_client_closes() > 0; }))
      << "slow reader was never disconnected";
  ::close(fd);

  // The rest of the server is unaffected.
  Client healthy("127.0.0.1", fx.server->port());
  EXPECT_EQ(healthy.query(1, LoopbackFixture::kK).status, Status::kOk);
  EXPECT_GT(fx.server->stats().net.slow_client_closes, 0u);
}

TEST(TcpServer, FloodingWriterIsThrottledNotKilled) {
  // A tight inflight cap forces the server to stop reading (backpressure)
  // instead of queueing every parsed frame; a client that floods then drains
  // still gets every reply, in order.
  ServerOptions sopt;
  sopt.max_inflight = 8;
  LoopbackFixture fx(0, std::chrono::microseconds(2000), sopt);
  Client client("127.0.0.1", fx.server->port());

  constexpr int kQueries = 500;
  for (int i = 0; i < kQueries; ++i) {
    client.send_query(static_cast<idx_t>(i % LoopbackFixture::kUsers),
                      LoopbackFixture::kK);
  }
  for (int i = 0; i < kQueries; ++i) {
    const idx_t u = static_cast<idx_t>(i % LoopbackFixture::kUsers);
    const QueryResponse resp = client.read_query_response();
    ASSERT_EQ(resp.status, Status::kOk) << "query " << i;
    EXPECT_EQ(resp.items, fx.engine.recommend_one(u, LoopbackFixture::kK))
        << "query " << i;
  }
  EXPECT_EQ(fx.server->stats().queries,
            static_cast<std::uint64_t>(kQueries));
  EXPECT_EQ(fx.server->slow_client_closes(), 0u);
}

TEST(TcpServer, OverloadShedsAtTheEdgeAndRecovers) {
  // A slow batcher (50ms deadline, nothing fills a 1024 batch) holds every
  // future, so the lane's query bound (4) trips almost immediately.
  ServerOptions sopt;
  sopt.max_queued_replies = 4;
  serve::BatcherOptions bopt;
  bopt.k = 6;
  bopt.max_batch = 1024;
  bopt.max_delay = std::chrono::microseconds(50000);

  const auto x = random_factors(30, 8, 601);
  const auto theta = random_factors(120, 8, 602);
  const serve::FactorStore store(x, theta, 3);
  const serve::TopKEngine engine(store);
  serve::RequestBatcher batcher(engine, bopt);
  TcpServer server(batcher, sopt);
  Client client("127.0.0.1", server.port());

  constexpr int kQueries = 100;
  for (int i = 0; i < kQueries; ++i) client.send_query(i % 30, 6);
  int ok = 0, shed = 0;
  for (int i = 0; i < kQueries; ++i) {
    const QueryResponse resp = client.read_query_response();
    if (resp.status == Status::kOk) {
      ++ok;
      EXPECT_FALSE(resp.items.empty());
    } else {
      ASSERT_EQ(resp.status, Status::kOverloaded) << "query " << i;
      ++shed;
      EXPECT_TRUE(resp.items.empty());
    }
  }
  EXPECT_EQ(ok + shed, kQueries);
  EXPECT_GE(ok, 4);       // everything admitted before the bound was answered
  EXPECT_GT(shed, 0);     // the bound tripped
  EXPECT_EQ(server.overload_sheds(), static_cast<std::uint64_t>(shed));

  // Recovery: with the lane drained the same connection is served again.
  const QueryResponse after = client.query(3, 6);
  EXPECT_EQ(after.status, Status::kOk);
  EXPECT_EQ(server.overload_sheds(), static_cast<std::uint64_t>(shed));
}

TEST(TcpServer, HardRecvErrorsAreCountedAndCloseTheConnection) {
  LoopbackFixture fx;
  {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(fx.server->port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    // Half a frame so the server has seen the connection readable at least
    // once before the abort.
    std::vector<std::uint8_t> frame;
    encode_query_request(QueryRequest{0, LoopbackFixture::kK}, &frame);
    ASSERT_EQ(::send(fd, frame.data(), 2, MSG_NOSIGNAL), 2);
    // SO_LINGER(1, 0): close() sends RST instead of FIN, so the server's
    // next recv() fails hard (ECONNRESET) instead of reading EOF.
    const linger lg{1, 0};
    ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg)), 0);
    ::close(fd);
  }
  EXPECT_TRUE(eventually([&] { return fx.server->recv_errors() > 0; }))
      << "RST was not surfaced as a recv error";
  EXPECT_EQ(fx.server->protocol_errors(), 0u);

  // Served traffic continues.
  Client client("127.0.0.1", fx.server->port());
  EXPECT_EQ(client.query(0, LoopbackFixture::kK).status, Status::kOk);
}

// ------------------------------------------- live refresh under traffic ----

TEST(TcpServer, AnswersStayGenerationConsistentAcrossHotSwap) {
  const idx_t users = 24, items = 90;
  const int f = 8, k = 5;
  const auto x1 = random_factors(users, f, 611);
  const auto t1 = random_factors(items, f, 612);
  const auto x2 = random_factors(users, f, 613);
  const auto t2 = random_factors(items, f, 614);

  serve::LiveFactorStore live(serve::FactorStore(x1, t1, 2));
  const serve::TopKEngine engine(live);
  serve::BatcherOptions opt;
  opt.k = k;
  opt.max_batch = 8;
  opt.cache_capacity = 32;
  serve::RequestBatcher batcher(engine, opt);
  TcpServer server(batcher);

  const serve_test::TempCheckpointDir dir("cumf_net_swap_ckpt");
  dir.write(x2, t2, 2);

  // A client pipelines queries while the refresh lands mid-stream: every
  // response must be bit-identical to the brute-force answer of the
  // generation that tags it — never a torn mix, never a drop.
  constexpr int kInFlight = 64;
  Client client("127.0.0.1", server.port());
  std::vector<idx_t> sent;
  for (int i = 0; i < kInFlight; ++i) {
    const idx_t u = static_cast<idx_t>(i % users);
    client.send_query(u, k);
    sent.push_back(u);
    if (i == kInFlight / 2) {
      const auto outcome = live.refresh_from_checkpoint(dir.path());
      ASSERT_TRUE(outcome.swapped) << outcome.error;
      ASSERT_EQ(outcome.generation, 2u);
    }
  }
  int gen1 = 0, gen2 = 0;
  for (const idx_t u : sent) {
    const QueryResponse resp = client.read_query_response();
    ASSERT_EQ(resp.status, Status::kOk) << "user=" << u;
    if (resp.generation == 1) {
      ++gen1;
      EXPECT_EQ(resp.items, brute_force_topk(x1, t1, u, k)) << "user=" << u;
    } else {
      ASSERT_EQ(resp.generation, 2u) << "user=" << u;
      ++gen2;
      EXPECT_EQ(resp.items, brute_force_topk(x2, t2, u, k)) << "user=" << u;
    }
  }
  EXPECT_EQ(gen1 + gen2, kInFlight);  // nothing dropped
  EXPECT_GT(gen2, 0);                 // the swap landed mid-stream

  // Post-swap queries can never be answered from the superseded generation,
  // cached or not.
  for (idx_t u = 0; u < users; ++u) {
    const QueryResponse resp = client.query(u, k);
    ASSERT_EQ(resp.status, Status::kOk);
    EXPECT_EQ(resp.generation, 2u) << "user=" << u;
    EXPECT_EQ(resp.items, brute_force_topk(x2, t2, u, k)) << "user=" << u;
  }

  const auto stats = server.stats();
  EXPECT_EQ(stats.generation, 2u);
  EXPECT_EQ(stats.refreshes, 1u);
}

// --------------------------------------------------- rating ingestion ------

TEST(TcpServer, AddRatingWithoutSinkIsBadRequest) {
  LoopbackFixture fx;
  Client client("127.0.0.1", fx.server->port());
  EXPECT_EQ(client.add_rating(1, 2, 5.0), Status::kBadRequest);
  // The connection stays healthy for queries afterwards.
  EXPECT_EQ(client.query(1, LoopbackFixture::kK).status, Status::kOk);
}

TEST(TcpServer, AddRatingFeedsIngestSinkInOrder) {
  const auto x = random_factors(16, 8, 621);
  const auto theta = random_factors(40, 8, 622);
  const serve::FactorStore store(x, theta, 2);
  const serve::TopKEngine engine(store);
  serve::BatcherOptions bopt;
  bopt.k = 4;
  serve::RequestBatcher batcher(engine, bopt);

  std::mutex mu;
  std::vector<std::tuple<idx_t, idx_t, double>> seen;
  ServerOptions sopt;
  sopt.ingest = [&](idx_t user, idx_t item, double value) {
    if (user >= 16 || item >= 40) return false;
    std::lock_guard<std::mutex> lock(mu);
    seen.emplace_back(user, item, value);
    return true;
  };
  sopt.augment_stats = [](serve::ServeStats& s) {
    s.orchestrator.deltas_ingested = 77;
  };
  TcpServer server(batcher, sopt);

  Client client("127.0.0.1", server.port());
  EXPECT_EQ(client.add_rating(3, 7, 4.25), Status::kOk);
  EXPECT_EQ(client.add_rating(99, 7, 1.0), Status::kBadUser);
  // Pipelined deltas interleaved with a query keep request order per
  // connection, so the sink sees them in send order.
  client.send_add_rating(1, 1, 1.0);
  client.send_query(2, 4);
  client.send_add_rating(2, 2, 2.0);
  EXPECT_EQ(client.read_add_rating_response(), Status::kOk);
  EXPECT_EQ(client.read_query_response().status, Status::kOk);
  EXPECT_EQ(client.read_add_rating_response(), Status::kOk);

  {
    std::lock_guard<std::mutex> lock(mu);
    const std::vector<std::tuple<idx_t, idx_t, double>> want = {
        {3, 7, 4.25}, {1, 1, 1.0}, {2, 2, 2.0}};
    EXPECT_EQ(seen, want);
  }
  // The stats op reports the augmented orchestrator slice.
  EXPECT_EQ(client.stats().deltas_ingested, 77u);
}

// ------------------------------------------------------ SLO health op ------

TEST(TcpServer, HealthWithoutMonitorAnswersZeroStates) {
  LoopbackFixture fx;
  Client client("127.0.0.1", fx.server->port());
  ASSERT_EQ(client.query(0, LoopbackFixture::kK).status, Status::kOk);

  const HealthResponse h = client.health();
  EXPECT_EQ(h.latency_state, 0);
  EXPECT_EQ(h.availability_state, 0);
  EXPECT_DOUBLE_EQ(h.latency_threshold_ms, 0.0);
  EXPECT_DOUBLE_EQ(h.latency_fast_burn, 0.0);
  EXPECT_EQ(h.latency_violations, 0u);
  EXPECT_TRUE(h.exemplars.empty());
  // The process-wide event tail rides even without a monitor.
  EXPECT_EQ(h.events_recorded, obs::EventLog::global().recorded());
}

TEST(TcpServer, SloHealthPagesUnderLoadAndDecaysWhenItStops) {
  // Trace every query so each SLO violation captures an exemplar with its
  // stage breakdown.
  obs::TraceCollector::Options topt;
  topt.sample_every = 1;
  obs::TraceCollector::global().enable(topt);

  // A monitor on a fake clock: the whole load burst lands in one 1-second
  // bucket, and decay is driven by advancing the clock, not by sleeping.
  std::atomic<std::uint64_t> fake_ms{0};
  obs::SloOptions slo_opt;
  slo_opt.latency_threshold_ms = 1e-3;  // every served query violates
  slo_opt.latency_objective = 0.99;
  slo_opt.fast_window_s = 1;
  slo_opt.slow_window_s = 1;
  obs::SloMonitor mon(slo_opt, &obs::EventLog::global(),
                      [&fake_ms] { return fake_ms.load(); });

  ServerOptions sopt;
  sopt.slo = &mon;
  LoopbackFixture fx(0, std::chrono::microseconds(2000), sopt);
  fx.batcher->set_slo(&mon);
  Client client("127.0.0.1", fx.server->port());

  constexpr int kQueries = 40;
  for (int i = 0; i < kQueries; ++i) {
    ASSERT_EQ(client.query(static_cast<idx_t>(i % LoopbackFixture::kUsers),
                           LoopbackFixture::kK)
                  .status,
              Status::kOk);
  }

  // Under load: every query blew the threshold, so the latency SLO pages
  // with a saturated fast burn, and the slowest offenders were captured.
  const HealthResponse paged = client.health();
  EXPECT_EQ(paged.latency_state, 2);  // page
  EXPECT_EQ(paged.availability_state, 0);
  EXPECT_GT(paged.latency_fast_burn, 0.0);
  EXPECT_NEAR(paged.latency_fast_burn, 100.0, 1e-6);  // all bad, budget 0.01
  EXPECT_EQ(paged.latency_violations, static_cast<std::uint64_t>(kQueries));
  EXPECT_DOUBLE_EQ(paged.latency_threshold_ms, 1e-3);
  ASSERT_FALSE(paged.exemplars.empty());
  for (const HealthExemplar& ex : paged.exemplars) {
    EXPECT_GT(ex.e2e_ms, 0.0);
    // The stage breakdown sums back to the end-to-end time by construction.
    EXPECT_NEAR(ex.queue_ms + ex.engine_ms + ex.finish_ms, ex.e2e_ms, 1e-3);
  }
  // Slowest first.
  for (std::size_t i = 1; i < paged.exemplars.size(); ++i) {
    EXPECT_LE(paged.exemplars[i].e2e_ms, paged.exemplars[i - 1].e2e_ms);
  }
  EXPECT_NE(paged.events_json.find("latency_slo_state"), std::string::npos);
  EXPECT_GT(paged.events_recorded, 0u);

  // Load stops and the windows empty: each health evaluation steps the
  // alert down one state — page, then warn, then ok. Hysteresis in reverse.
  fake_ms.store(10 * 1000);
  EXPECT_EQ(client.health().latency_state, 1);  // warn
  const HealthResponse cleared = client.health();
  EXPECT_EQ(cleared.latency_state, 0);  // ok
  EXPECT_DOUBLE_EQ(cleared.latency_fast_burn, 0.0);
  EXPECT_EQ(cleared.latency_transitions, 3u);  // ok->page->warn->ok

  // The incident trail is ordered in the event log: paged before cleared.
  const std::string events = obs::EventLog::global().export_json_lines();
  const std::size_t page_at = events.find(
      "\"message\":\"latency_slo_state\",\"args\":{\"from\":0,\"to\":2");
  const std::size_t ok_at = events.find(
      "\"message\":\"latency_slo_state\",\"args\":{\"from\":1,\"to\":0");
  EXPECT_NE(page_at, std::string::npos);
  EXPECT_NE(ok_at, std::string::npos);
  EXPECT_LT(page_at, ok_at);

  fx.batcher->set_slo(nullptr);  // detach before the monitor dies
  obs::TraceCollector::global().disable();
}

TEST(TcpServer, EdgeShedsFeedTheAvailabilitySlo) {
  // Same overload shape as OverloadShedsAtTheEdgeAndRecovers, now with a
  // monitor attached: every kOverloaded reply must burn availability budget.
  std::atomic<std::uint64_t> fake_ms{0};
  obs::SloOptions slo_opt;
  slo_opt.availability_objective = 0.99;
  slo_opt.fast_window_s = 1;
  slo_opt.slow_window_s = 1;
  obs::SloMonitor mon(slo_opt, nullptr, [&fake_ms] { return fake_ms.load(); });

  ServerOptions sopt;
  sopt.max_queued_replies = 4;
  sopt.slo = &mon;
  serve::BatcherOptions bopt;
  bopt.k = 6;
  bopt.max_batch = 1024;
  bopt.max_delay = std::chrono::microseconds(50000);

  const auto x = random_factors(30, 8, 601);
  const auto theta = random_factors(120, 8, 602);
  const serve::FactorStore store(x, theta, 3);
  const serve::TopKEngine engine(store);
  serve::RequestBatcher batcher(engine, bopt);
  batcher.set_slo(&mon);
  TcpServer server(batcher, sopt);
  Client client("127.0.0.1", server.port());

  constexpr int kQueries = 100;
  for (int i = 0; i < kQueries; ++i) client.send_query(i % 30, 6);
  int shed = 0;
  for (int i = 0; i < kQueries; ++i) {
    if (client.read_query_response().status == Status::kOverloaded) ++shed;
  }
  ASSERT_GT(shed, 0);
  EXPECT_EQ(mon.availability_errors(), static_cast<std::uint64_t>(shed));
  const HealthResponse h = client.health();
  EXPECT_GT(h.availability_fast_burn, 0.0);
  EXPECT_EQ(h.availability_errors, static_cast<std::uint64_t>(shed));
  batcher.set_slo(nullptr);
}

}  // namespace
}  // namespace cumf
