#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <vector>

#include "linalg/cg.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/dense.hpp"
#include "linalg/hermitian.hpp"
#include "util/rng.hpp"

namespace cumf::linalg {
namespace {

std::vector<real_t> random_columns(int bin, int f, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<real_t> cols(static_cast<std::size_t>(bin) * f);
  for (auto& v : cols) v = static_cast<real_t>(rng.uniform(-1.0, 1.0));
  return cols;
}

// ---------------------------------------------------- hermitian kernels ----

class HermitianKernelTest : public ::testing::TestWithParam<int> {};

TEST_P(HermitianKernelTest, RegisterPathMatchesGlobalPath) {
  const int f = GetParam();
  for (const int bin : {1, 3, 10, 30}) {
    const auto cols = random_columns(bin, f, 100 + static_cast<unsigned>(f));
    std::vector<real_t> a_global(static_cast<std::size_t>(f) * f, 0.0f);
    std::vector<real_t> a_regs(a_global);
    rank1_accumulate_global(a_global.data(), cols.data(), bin, f);
    rank1_accumulate_registers(a_regs.data(), cols.data(), bin, f);
    for (std::size_t i = 0; i < a_global.size(); ++i) {
      EXPECT_NEAR(a_global[i], a_regs[i], 1e-4f * bin)
          << "f=" << f << " bin=" << bin << " idx=" << i;
    }
  }
}

TEST_P(HermitianKernelTest, ResultIsSymmetric) {
  const int f = GetParam();
  const int bin = 20;
  const auto cols = random_columns(bin, f, 555);
  std::vector<real_t> A(static_cast<std::size_t>(f) * f, 0.0f);
  rank1_accumulate_registers(A.data(), cols.data(), bin, f);
  for (int i = 0; i < f; ++i) {
    for (int j = 0; j < f; ++j) {
      EXPECT_NEAR(A[static_cast<std::size_t>(i) * f + j],
                  A[static_cast<std::size_t>(j) * f + i], 1e-4f);
    }
  }
}

TEST_P(HermitianKernelTest, DiagonalIsSumOfSquares) {
  const int f = GetParam();
  const int bin = 7;
  const auto cols = random_columns(bin, f, 777);
  std::vector<real_t> A(static_cast<std::size_t>(f) * f, 0.0f);
  rank1_accumulate_registers(A.data(), cols.data(), bin, f);
  for (int i = 0; i < f; ++i) {
    double expect = 0.0;
    for (int k = 0; k < bin; ++k) {
      const real_t v = cols[static_cast<std::size_t>(k) * f + i];
      expect += static_cast<double>(v) * v;
    }
    EXPECT_NEAR(A[static_cast<std::size_t>(i) * f + i], expect, 1e-4);
  }
}

// f values straddle the register-tile edge (4): below, at, above,
// non-multiples, and the paper's f=100.
INSTANTIATE_TEST_SUITE_P(FeatureDims, HermitianKernelTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13, 16, 32, 64,
                                           100));

TEST(Hermitian, SingleRank1Update) {
  const int f = 3;
  const real_t theta[3] = {1.0f, 2.0f, -1.0f};
  std::vector<real_t> A(9, 0.0f);
  rank1_update_global(A.data(), theta, f);
  const real_t expect[9] = {1, 2, -1, 2, 4, -2, -1, -2, 1};
  for (int i = 0; i < 9; ++i) EXPECT_FLOAT_EQ(A[static_cast<std::size_t>(i)], expect[i]);
}

TEST(Hermitian, AxpyAndDot) {
  real_t y[4] = {1, 1, 1, 1};
  const real_t x[4] = {1, 2, 3, 4};
  axpy(y, 2.0f, x, 4);
  EXPECT_FLOAT_EQ(y[0], 3.0f);
  EXPECT_FLOAT_EQ(y[3], 9.0f);
  EXPECT_DOUBLE_EQ(dot(x, x, 4), 30.0);
}

TEST(Hermitian, AddDiagonal) {
  std::vector<real_t> A(16, 1.0f);
  add_diagonal(A.data(), 0.5f, 4);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      EXPECT_FLOAT_EQ(A[static_cast<std::size_t>(i) * 4 + j],
                      i == j ? 1.5f : 1.0f);
    }
  }
}

// ------------------------------------------------------------ cholesky -----

class CholeskyTest : public ::testing::TestWithParam<int> {};

TEST_P(CholeskyTest, SolvesRandomSpdSystem) {
  const int f = GetParam();
  util::Rng rng(900 + static_cast<unsigned>(f));
  // Build A = M·Mᵀ + f·I (SPD by construction) and b = A·x_true.
  std::vector<real_t> M(static_cast<std::size_t>(f) * f);
  for (auto& v : M) v = static_cast<real_t>(rng.uniform(-1.0, 1.0));
  std::vector<real_t> A(static_cast<std::size_t>(f) * f, 0.0f);
  for (int i = 0; i < f; ++i) {
    for (int j = 0; j < f; ++j) {
      double s = 0.0;
      for (int k = 0; k < f; ++k) {
        s += static_cast<double>(M[static_cast<std::size_t>(i) * f + k]) *
             M[static_cast<std::size_t>(j) * f + k];
      }
      A[static_cast<std::size_t>(i) * f + j] = static_cast<real_t>(s);
    }
  }
  add_diagonal(A.data(), static_cast<real_t>(f), f);

  std::vector<real_t> x_true(static_cast<std::size_t>(f));
  for (auto& v : x_true) v = static_cast<real_t>(rng.uniform(-2.0, 2.0));
  std::vector<real_t> b(static_cast<std::size_t>(f), 0.0f);
  for (int i = 0; i < f; ++i) {
    double s = 0.0;
    for (int j = 0; j < f; ++j) {
      s += static_cast<double>(A[static_cast<std::size_t>(i) * f + j]) * x_true[static_cast<std::size_t>(j)];
    }
    b[static_cast<std::size_t>(i)] = static_cast<real_t>(s);
  }

  const CholeskyResult res = solve_spd_inplace(A.data(), b.data(), f);
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.clamped_pivots, 0);
  for (int i = 0; i < f; ++i) {
    EXPECT_NEAR(b[static_cast<std::size_t>(i)], x_true[static_cast<std::size_t>(i)], 5e-3)
        << "f=" << f << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 33, 64, 100));

TEST(Cholesky, IdentityFactorsToIdentity) {
  const int f = 6;
  std::vector<real_t> A(static_cast<std::size_t>(f) * f, 0.0f);
  add_diagonal(A.data(), 1.0f, f);
  const CholeskyResult res = cholesky_factor(A.data(), f);
  EXPECT_TRUE(res.ok);
  for (int i = 0; i < f; ++i) {
    EXPECT_NEAR(A[static_cast<std::size_t>(i) * f + i], 1.0f, 1e-6f);
    for (int j = 0; j < i; ++j) {
      EXPECT_NEAR(A[static_cast<std::size_t>(i) * f + j], 0.0f, 1e-6f);
    }
  }
}

TEST(Cholesky, SingularMatrixClampsPivots) {
  const int f = 4;
  std::vector<real_t> A(16, 0.0f);  // all-zero matrix: rank 0
  std::vector<real_t> b(4, 1.0f);
  const CholeskyResult res = solve_spd_inplace(A.data(), b.data(), f);
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.clamped_pivots, f);
  for (const real_t v : b) EXPECT_TRUE(std::isfinite(v));
}

// ------------------------------------------------------------------ cg -----

class CgTest : public ::testing::TestWithParam<int> {};

TEST_P(CgTest, MatchesCholeskyOnSpdSystems) {
  const int f = GetParam();
  util::Rng rng(1300 + static_cast<unsigned>(f));
  // Well-conditioned SPD: M·Mᵀ + f·I (the shape ALS produces).
  std::vector<real_t> M(static_cast<std::size_t>(f) * f);
  for (auto& v : M) v = static_cast<real_t>(rng.uniform(-1.0, 1.0));
  std::vector<real_t> A(static_cast<std::size_t>(f) * f, 0.0f);
  for (int i = 0; i < f; ++i) {
    for (int j = 0; j < f; ++j) {
      double s = (i == j) ? static_cast<double>(f) : 0.0;
      for (int k = 0; k < f; ++k) {
        s += static_cast<double>(M[static_cast<std::size_t>(i) * f + k]) *
             M[static_cast<std::size_t>(j) * f + k];
      }
      A[static_cast<std::size_t>(i) * f + j] = static_cast<real_t>(s);
    }
  }
  std::vector<real_t> b(static_cast<std::size_t>(f));
  for (auto& v : b) v = static_cast<real_t>(rng.uniform(-1.0, 1.0));

  std::vector<real_t> a_chol(A), b_chol(b);
  solve_spd_inplace(a_chol.data(), b_chol.data(), f);

  std::vector<real_t> x(static_cast<std::size_t>(f), 0.0f);
  CgOptions opt;
  opt.max_iters = 4 * f;  // exact in at most f steps in exact arithmetic
  opt.tolerance = 1e-7;
  const CgResult res = cg_solve(A.data(), b.data(), x.data(), f, opt);
  EXPECT_TRUE(res.converged) << "residual " << res.residual;
  for (int i = 0; i < f; ++i) {
    EXPECT_NEAR(x[static_cast<std::size_t>(i)], b_chol[static_cast<std::size_t>(i)], 2e-3)
        << "f=" << f << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CgTest, ::testing::Values(1, 2, 4, 8, 16, 32, 64));

TEST(Cg, WarmStartAtSolutionConvergesInstantly) {
  const int f = 4;
  std::vector<real_t> A(16, 0.0f);
  add_diagonal(A.data(), 2.0f, f);
  const real_t b[4] = {2, 4, 6, 8};
  real_t x[4] = {1, 2, 3, 4};  // exactly A⁻¹b
  const CgResult res = cg_solve(A.data(), b, x, f);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.iterations, 0);
  EXPECT_FLOAT_EQ(x[2], 3.0f);
}

TEST(Cg, ZeroRhsGivesZero) {
  const int f = 3;
  std::vector<real_t> A(9, 0.0f);
  add_diagonal(A.data(), 1.0f, f);
  const real_t b[3] = {0, 0, 0};
  real_t x[3] = {5, 5, 5};
  const CgResult res = cg_solve(A.data(), b, x, f);
  EXPECT_TRUE(res.converged);
  for (const real_t v : x) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(Cg, IterationCapRespected) {
  const int f = 32;
  util::Rng rng(77);
  std::vector<real_t> A(static_cast<std::size_t>(f) * f, 0.0f);
  for (int i = 0; i < f; ++i) {
    // Wildly varying diagonal → poor conditioning → slow convergence.
    A[static_cast<std::size_t>(i) * f + i] = static_cast<real_t>(1 << (i % 12));
  }
  std::vector<real_t> b(static_cast<std::size_t>(f), 1.0f);
  std::vector<real_t> x(static_cast<std::size_t>(f), 0.0f);
  CgOptions opt;
  opt.max_iters = 3;
  opt.tolerance = 1e-12;
  const CgResult res = cg_solve(A.data(), b.data(), x.data(), f, opt);
  EXPECT_LE(res.iterations, 3);
}

// --------------------------------------------------------------- dense -----

TEST(FactorMatrix, ShapeAndInit) {
  util::Rng rng(3);
  FactorMatrix m(10, 8);
  EXPECT_EQ(m.rows(), 10);
  EXPECT_EQ(m.f(), 8);
  m.randomize(rng, 0.5f);
  for (const real_t v : m.data()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LT(v, 0.5f);
  }
  EXPECT_EQ(m.footprint_bytes(), 10u * 8u * sizeof(real_t));
}

TEST(FactorMatrix, RowAccess) {
  FactorMatrix m(3, 2);
  m.row(1)[0] = 7.0f;
  m.row(1)[1] = 8.0f;
  EXPECT_FLOAT_EQ(m.data()[2], 7.0f);
  EXPECT_FLOAT_EQ(m.data()[3], 8.0f);
}

TEST(FactorMatrix, SaveLoadRoundTrip) {
  const std::string path = testing::TempDir() + "/cumf_factors.bin";
  util::Rng rng(5);
  FactorMatrix m(37, 13);
  m.randomize(rng);
  save_factors(path, m);
  const FactorMatrix back = load_factors(path);
  EXPECT_EQ(back.rows(), m.rows());
  EXPECT_EQ(back.f(), m.f());
  EXPECT_EQ(back.data(), m.data());
  std::remove(path.c_str());
}

TEST(FactorMatrix, FrobeniusNorm) {
  FactorMatrix m(2, 2);
  m.row(0)[0] = 3.0f;
  m.row(1)[1] = 4.0f;
  EXPECT_NEAR(m.frobenius_norm(), 5.0, 1e-9);
}

}  // namespace
}  // namespace cumf::linalg
