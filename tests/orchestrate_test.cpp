// The retrain orchestrator: quality-gated continuous training → hot swap.
//
// Covers the full ISSUE-5 loop: RatingLog delta merge semantics, the quality
// gate rejecting a deliberately degraded candidate while the old generation
// keeps serving bit-identically, promotion of a later good candidate,
// rollback to the last-good checkpoint, a concurrent ingest-while-retrain
// stress run (exercised under TSan in CI like every other suite), and the
// end-to-end TCP integration: deltas over the wire → retrain → gate →
// hot swap with zero dropped queries.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <future>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/solver.hpp"
#include "obs/events.hpp"
#include "data/synthetic.hpp"
#include "eval/metrics.hpp"
#include "gpusim/device_group.hpp"
#include "orchestrate/orchestrator.hpp"
#include "orchestrate/quality_gate.hpp"
#include "orchestrate/rating_log.hpp"
#include "orchestrate/trainer.hpp"
#include "serve/batcher.hpp"
#include "serve/live_store.hpp"
#include "serve/net/client.hpp"
#include "serve/net/server.hpp"
#include "serve/topk.hpp"
#include "serve_test_util.hpp"
#include "sparse/split.hpp"
#include "util/rng.hpp"

namespace cumf {
namespace {

constexpr int kF = 8;
constexpr int kTopK = 5;

/// One trained world shared by every test in this suite (training is the
/// expensive part, especially under sanitizers): a planted-structure rating
/// matrix, its train/test split, a base model (3 ALS iterations) and a
/// better model (2 more warm iterations on the same data).
struct TrainedWorld {
  data::SyntheticOptions gen;
  sparse::CooMatrix ratings;
  sparse::TrainTestSplit split;
  sparse::CsrMatrix R;
  sparse::CsrMatrix Rt;
  linalg::FactorMatrix base_x, base_theta;
  linalg::FactorMatrix better_x, better_theta;
};

const TrainedWorld& world() {
  static const TrainedWorld* w = [] {
    auto* out = new TrainedWorld();
    out->gen.m = 400;
    out->gen.n = 180;
    out->gen.nz = 10'000;
    out->gen.f_true = 6;
    out->gen.noise_std = 0.4;
    out->gen.seed = 33;
    out->ratings = data::generate_ratings(out->gen);
    util::Rng rng(5);
    out->split = sparse::split_ratings(out->ratings, 0.15, rng);
    out->R = sparse::coo_to_csr(out->split.train);
    out->Rt = sparse::csc_as_csr_of_transpose(sparse::csr_to_csc(out->R));

    const auto topo = gpusim::PcieTopology::flat(1);
    gpusim::DeviceGroup gpu(1, gpusim::titan_x(), topo);
    core::SolverConfig cfg;
    cfg.als.f = kF;
    cfg.als.lambda = 0.05f;
    core::AlsSolver solver(gpu.pointers(), topo, out->R, out->Rt, cfg);
    for (int i = 0; i < 3; ++i) solver.run_iteration();
    out->base_x = solver.x();
    out->base_theta = solver.theta();
    for (int i = 0; i < 2; ++i) solver.run_iteration();
    out->better_x = solver.x();
    out->better_theta = solver.theta();
    return out;
  }();
  return *w;
}

/// Factors with enough uniform noise stirred in to wreck the ranking while
/// keeping shapes valid — the "deliberately degraded candidate".
linalg::FactorMatrix noised(const linalg::FactorMatrix& m, std::uint64_t seed) {
  linalg::FactorMatrix out = m;
  util::Rng rng(seed);
  for (auto& v : out.data()) {
    v += static_cast<real_t>(rng.uniform(-2.0, 2.0));
  }
  return out;
}

/// RAII temp working directory for the orchestrator's checkpoint dirs.
struct TempWorkDir {
  explicit TempWorkDir(const std::string& name)
      : path(std::filesystem::path(testing::TempDir()) / name) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~TempWorkDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::filesystem::path path;
};

orchestrate::OrchestratorOptions small_options(const std::string& work_dir) {
  orchestrate::OrchestratorOptions opt;
  opt.trainer.solver.als.f = kF;
  opt.trainer.solver.als.lambda = 0.05f;
  opt.trainer.iterations = 2;
  // Pinned to the full-ALS tier: these suites assert the original
  // gate/promote/rollback mechanics; the tier policy has its own tests
  // below.
  opt.tier_mode = orchestrate::TrainTierMode::kFull;
  opt.gate.k = kTopK;
  opt.gate.max_eval_users = 120;
  // Generous slacks: these tests assert the gate's *mechanism*; the
  // degraded-candidate cases blow past any sane slack regardless.
  opt.gate.rmse_slack = 0.05;
  opt.gate.recall_slack = 0.2;
  opt.work_dir = work_dir;
  return opt;
}

/// A delta batch over the trained world's id range, appended to `log`.
/// Values are the planted ratings' scale so incremental candidates stay
/// gate-worthy.
void append_deltas(orchestrate::RatingLog* log, int count,
                   std::uint64_t seed) {
  const auto& w = world();
  util::Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    const auto u = static_cast<idx_t>(
        rng.next_below(static_cast<std::uint64_t>(w.gen.m)));
    const auto v = static_cast<idx_t>(
        rng.next_below(static_cast<std::uint64_t>(w.gen.n)));
    ASSERT_TRUE(log->append(u, v, rng.next_real() * 4.0f + 1.0f));
  }
}

std::vector<std::vector<serve::Recommendation>> probe(
    const serve::TopKEngine& engine, idx_t users) {
  std::vector<idx_t> ids;
  for (idx_t u = 0; u < users; u += 7) ids.push_back(u);
  return engine.recommend(ids, kTopK);
}

// ------------------------------------------------------------ RatingLog ----

TEST(RatingLog, MergesDeltasLastWriterWins) {
  sparse::CooMatrix base;
  base.rows = 4;
  base.cols = 3;
  base.push_back(0, 0, 1.0f);
  base.push_back(1, 1, 2.0f);

  orchestrate::RatingLog log(std::move(base));
  EXPECT_TRUE(log.append(0, 0, 5.0f));   // overwrite existing pair
  EXPECT_TRUE(log.append(2, 2, 3.0f));   // brand-new pair
  EXPECT_TRUE(log.append(2, 2, 4.0f));   // overwrite the delta itself
  EXPECT_FALSE(log.append(9, 0, 1.0f));  // out-of-range user
  EXPECT_FALSE(log.append(0, 3, 1.0f));  // out-of-range item
  // Non-finite values (raw f64s off the wire) never reach a snapshot.
  EXPECT_FALSE(log.append(0, 0, std::numeric_limits<real_t>::quiet_NaN()));
  EXPECT_FALSE(log.append(0, 0, std::numeric_limits<real_t>::infinity()));
  EXPECT_EQ(log.accepted(), 3u);
  EXPECT_EQ(log.rejected(), 4u);
  EXPECT_EQ(log.pending(), 3u);

  auto snap = log.snapshot();
  EXPECT_EQ(log.pending(), 0u);
  EXPECT_EQ(snap.deltas_applied, 3u);
  ASSERT_EQ(snap.coo.nnz(), 3u);  // 2 base + 1 new, overwrites in place
  EXPECT_EQ(snap.csr.rows, 4);
  EXPECT_EQ(snap.csr.cols, 3);
  const auto dense = sparse::to_dense(snap.csr);
  EXPECT_FLOAT_EQ(dense[0 * 3 + 0], 5.0f);
  EXPECT_FLOAT_EQ(dense[1 * 3 + 1], 2.0f);
  EXPECT_FLOAT_EQ(dense[2 * 3 + 2], 4.0f);

  // The transpose mirrors the merged matrix.
  EXPECT_EQ(snap.csr_t.rows, 3);
  EXPECT_EQ(snap.csr_t.cols, 4);
  const auto dense_t = sparse::to_dense(snap.csr_t);
  EXPECT_FLOAT_EQ(dense_t[0 * 4 + 0], 5.0f);

  // A snapshot with nothing pending reproduces the same matrix.
  auto again = log.snapshot();
  EXPECT_EQ(again.coo.nnz(), 3u);
  EXPECT_EQ(again.deltas_applied, 3u);
}

TEST(RatingLog, SnapshotCollectsTouchedRowsFromMergedDeltas) {
  sparse::CooMatrix base;
  base.rows = 6;
  base.cols = 5;
  base.push_back(0, 0, 1.0f);
  base.push_back(5, 4, 2.0f);

  orchestrate::RatingLog log(std::move(base));
  ASSERT_TRUE(log.append(3, 1, 4.0f));
  ASSERT_TRUE(log.append(1, 1, 2.5f));  // second user, same item
  ASSERT_TRUE(log.append(3, 2, 1.0f));  // same user again
  ASSERT_TRUE(log.append(3, 1, 3.0f));  // overwrite of the first delta

  // Sorted, deduplicated, and covering exactly the delta-touched ids — the
  // base matrix's untouched rows (0 and 5) never appear.
  auto snap = log.snapshot();
  EXPECT_EQ(snap.touched_users, (std::vector<idx_t>{1, 3}));
  EXPECT_EQ(snap.touched_items, (std::vector<idx_t>{1, 2}));

  // Touched sets are per-snapshot: nothing pending → nothing touched.
  auto again = log.snapshot();
  EXPECT_TRUE(again.touched_users.empty());
  EXPECT_TRUE(again.touched_items.empty());
}

// ---------------------------------------------------------- QualityGate ----

TEST(QualityGate, RejectsDegradedAcceptsEqualCandidate) {
  const auto& w = world();
  orchestrate::GateOptions opt;
  opt.k = kTopK;
  opt.max_eval_users = 120;
  opt.rmse_slack = 0.05;
  opt.recall_slack = 0.2;
  orchestrate::QualityGate gate(w.split.test, opt, &w.R);

  const auto base = gate.evaluate(w.base_x, w.base_theta);
  EXPECT_TRUE(base.passed);  // no baseline yet: floors only
  gate.set_baseline(base.rmse, base.recall);
  EXPECT_TRUE(gate.has_baseline());

  // The same model re-evaluated passes against its own baseline.
  const auto same = gate.evaluate(w.base_x, w.base_theta);
  EXPECT_TRUE(same.passed);
  EXPECT_DOUBLE_EQ(same.baseline_rmse, base.rmse);

  // Noised factors crater both metrics and are rejected with a reason.
  const auto bad =
      gate.evaluate(noised(w.base_x, 77), noised(w.base_theta, 78));
  EXPECT_FALSE(bad.passed);
  EXPECT_FALSE(bad.reason.empty());
  EXPECT_GT(bad.rmse, base.rmse + opt.rmse_slack);

  // The extra-trained model also passes (it is simply better).
  const auto better = gate.evaluate(w.better_x, w.better_theta);
  EXPECT_TRUE(better.passed);
  EXPECT_LE(better.rmse, base.rmse + opt.rmse_slack);
}

TEST(QualityGate, RejectsNonFiniteCandidates) {
  // A diverged solve produces NaN factors; every threshold is a `> limit`
  // comparison NaN would sail through, so the gate must reject non-finite
  // RMSE explicitly — before the ranking metrics ever see the NaN scores.
  const auto& w = world();
  orchestrate::GateOptions opt;
  opt.k = kTopK;
  orchestrate::QualityGate gate(w.split.test, opt, &w.R);
  linalg::FactorMatrix bad_x = w.base_x;
  // Poison a user that provably appears in the holdout slice, so the NaN
  // reaches the RMSE sum.
  bad_x.row(w.split.test.row[0])[0] =
      std::numeric_limits<real_t>::quiet_NaN();
  const auto report = gate.evaluate(bad_x, w.base_theta);
  EXPECT_FALSE(report.passed);
  EXPECT_NE(report.reason.find("not finite"), std::string::npos);
}

TEST(QualityGate, AbsoluteFloorsApplyWithoutBaseline) {
  const auto& w = world();
  orchestrate::GateOptions opt;
  opt.k = kTopK;
  opt.max_rmse = 1e-6;  // impossible ceiling
  orchestrate::QualityGate gate(w.split.test, opt, &w.R);
  const auto report = gate.evaluate(w.base_x, w.base_theta);
  EXPECT_FALSE(report.passed);
  EXPECT_FALSE(report.reason.empty());
}

// --------------------------------------------------------- Orchestrator ----

TEST(Orchestrator, RejectedCandidateNeverDisturbsServing) {
  const auto& w = world();
  TempWorkDir work("cumf_orch_reject");
  orchestrate::RatingLog log(w.split.train);
  serve::LiveFactorStore live(serve::FactorStore(w.base_x, w.base_theta, 2));
  serve::TopKOptions eopt;
  eopt.exclude_rated = &w.R;
  const serve::TopKEngine engine(live, eopt);

  orchestrate::Orchestrator orch(log, live, w.split.test,
                                 small_options(work.path.string()), &w.R);
  const auto before = probe(engine, w.gen.m);

  // Degraded candidate: rejected, not swapped, and serving answers stay
  // bit-identical to the pre-candidate probe.
  const auto rejected =
      orch.submit_candidate(noised(w.base_x, 91), noised(w.base_theta, 92));
  EXPECT_EQ(rejected.outcome, orchestrate::CycleOutcome::kRejected);
  EXPECT_FALSE(rejected.gate.passed);
  EXPECT_EQ(rejected.generation, 1u);
  EXPECT_EQ(live.generation(), 1u);
  EXPECT_EQ(probe(engine, w.gen.m), before);

  // A later good candidate still promotes through the same path.
  const auto promoted = orch.submit_candidate(w.better_x, w.better_theta);
  EXPECT_EQ(promoted.outcome, orchestrate::CycleOutcome::kPromoted);
  EXPECT_EQ(promoted.generation, 2u);
  EXPECT_EQ(live.generation(), 2u);
  EXPECT_GE(promoted.swap_pause_ms, 0.0);

  const auto counters = orch.counters();
  EXPECT_EQ(counters.promotions, 1u);
  EXPECT_EQ(counters.rejections, 1u);
  EXPECT_EQ(counters.retrains, 0u);  // both candidates were external
  EXPECT_DOUBLE_EQ(counters.baseline_rmse, promoted.gate.rmse);

  const auto history = orch.history();
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0].outcome, orchestrate::CycleOutcome::kRejected);
  EXPECT_EQ(history[1].outcome, orchestrate::CycleOutcome::kPromoted);
}

TEST(Orchestrator, RunCycleTrainsGatesPromotesAndSkipsWhenIdle) {
  const auto& w = world();
  TempWorkDir work("cumf_orch_cycle");
  orchestrate::RatingLog log(w.split.train);
  serve::LiveFactorStore live(serve::FactorStore(w.base_x, w.base_theta, 2));
  const serve::TopKEngine engine(live);

  orchestrate::Orchestrator orch(log, live, w.split.test,
                                 small_options(work.path.string()), &w.R);

  // Nothing pending, not forced: the training pass is elided.
  const auto idle = orch.run_cycle();
  EXPECT_EQ(idle.outcome, orchestrate::CycleOutcome::kSkipped);
  EXPECT_EQ(orch.counters().retrains, 0u);

  // Feed the held-out ratings back as deltas — fresh signal, so the
  // warm-started retrain must clear the gate.
  for (std::size_t i = 0; i < w.split.test.val.size(); ++i) {
    ASSERT_TRUE(log.append(w.split.test.row[i], w.split.test.col[i],
                           w.split.test.val[i]));
  }
  const auto cycle = orch.run_cycle();
  EXPECT_EQ(cycle.outcome, orchestrate::CycleOutcome::kPromoted);
  EXPECT_EQ(cycle.deltas_seen, w.split.test.val.size());
  EXPECT_GT(cycle.train_wall_ms, 0.0);
  EXPECT_GT(cycle.train_modeled_s, 0.0);
  EXPECT_EQ(live.generation(), 2u);

  const auto counters = orch.counters();
  EXPECT_EQ(counters.retrains, 1u);
  EXPECT_EQ(counters.promotions, 1u);
  EXPECT_EQ(counters.deltas_ingested, w.split.test.val.size());
  EXPECT_GT(counters.last_train_wall_ms, 0.0);
}

TEST(Orchestrator, RollbackRestoresTheSupersededModel) {
  const auto& w = world();
  TempWorkDir work("cumf_orch_rollback");
  orchestrate::RatingLog log(w.split.train);
  serve::LiveFactorStore live(serve::FactorStore(w.base_x, w.base_theta, 2));
  const serve::TopKEngine engine(live);

  orchestrate::Orchestrator orch(log, live, w.split.test,
                                 small_options(work.path.string()), &w.R);
  const auto gen1_probe = probe(engine, w.gen.m);

  ASSERT_EQ(orch.submit_candidate(w.better_x, w.better_theta).outcome,
            orchestrate::CycleOutcome::kPromoted);
  const auto gen2_probe = probe(engine, w.gen.m);
  ASSERT_NE(gen2_probe, gen1_probe);  // the better model actually differs

  // Rollback re-promotes the superseded checkpoint: a *new* generation
  // serving the old factors, bit-identically.
  ASSERT_TRUE(orch.rollback());
  EXPECT_EQ(live.generation(), 3u);
  EXPECT_EQ(probe(engine, w.gen.m), gen1_probe);
  EXPECT_EQ(orch.counters().rollbacks, 1u);

  // A fresh good candidate still promotes after the rollback.
  ASSERT_EQ(orch.submit_candidate(w.better_x, w.better_theta).outcome,
            orchestrate::CycleOutcome::kPromoted);
  EXPECT_EQ(live.generation(), 4u);
  EXPECT_EQ(probe(engine, w.gen.m), gen2_probe);
}

TEST(Orchestrator, LifecycleTransitionsLandInTheEventLog) {
  const auto& w = world();
  TempWorkDir work("cumf_orch_events");
  orchestrate::RatingLog log(w.split.train);
  serve::LiveFactorStore live(serve::FactorStore(w.base_x, w.base_theta, 2));
  const serve::TopKEngine engine(live);

  orchestrate::Orchestrator orch(log, live, w.split.test,
                                 small_options(work.path.string()), &w.R);

  // Watermark the shared log: only events recorded by this test's cycles
  // are examined below.
  auto& events = obs::EventLog::global();
  const std::uint64_t mark = events.recorded();

  ASSERT_EQ(orch.submit_candidate(noised(w.base_x, 93), noised(w.base_theta,
                                                               94))
                .outcome,
            orchestrate::CycleOutcome::kRejected);
  ASSERT_EQ(orch.submit_candidate(w.better_x, w.better_theta).outcome,
            orchestrate::CycleOutcome::kPromoted);
  ASSERT_TRUE(orch.rollback());

  // Every silent transition above left a structured event, in the order it
  // happened: gate reject, then the promotion, then the rollback — with the
  // store's generation_swap interleaved for each actual swap.
  std::vector<std::string> trail;
  std::vector<std::uint64_t> swap_generations;
  for (const obs::Event& ev : events.snapshot()) {
    if (ev.ticket < mark) continue;
    if (ev.component == obs::Component::kOrch) {
      trail.push_back(ev.message);
    } else if (ev.component == obs::Component::kStore) {
      ASSERT_STREQ(ev.message, "generation_swap");
      swap_generations.push_back(ev.args[0].value);
    }
  }
  const std::vector<std::string> want = {"gate_reject", "promotion",
                                         "rollback"};
  EXPECT_EQ(trail, want);
  // Promotion swapped in generation 2; the rollback re-promoted the
  // superseded checkpoint as generation 3.
  const std::vector<std::uint64_t> want_swaps = {2, 3};
  EXPECT_EQ(swap_generations, want_swaps);
  EXPECT_EQ(live.generation(), 3u);
}

TEST(Orchestrator, ConcurrentIngestQueriesAndRetrainsStayConsistent) {
  const auto& w = world();
  TempWorkDir work("cumf_orch_stress");
  orchestrate::RatingLog log(w.split.train);
  serve::LiveFactorStore live(serve::FactorStore(w.base_x, w.base_theta, 2));
  const serve::TopKEngine engine(live);
  serve::BatcherOptions bopt;
  bopt.k = kTopK;
  bopt.max_batch = 16;
  bopt.cache_capacity = 32;
  serve::RequestBatcher batcher(engine, bopt);

  auto opt = small_options(work.path.string());
  opt.trainer.iterations = 1;  // keep the stress run fast under TSan
  orchestrate::Orchestrator orch(log, live, w.split.test, opt, &w.R);

  constexpr int kIngestThreads = 3;
  constexpr int kDeltasPerThread = 400;
  constexpr int kQueryThreads = 2;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> answered{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kIngestThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Rng rng(1000 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kDeltasPerThread; ++i) {
        const auto u = static_cast<idx_t>(
            rng.next_below(static_cast<std::uint64_t>(w.gen.m)));
        const auto v = static_cast<idx_t>(
            rng.next_below(static_cast<std::uint64_t>(w.gen.n)));
        EXPECT_TRUE(log.append(u, v, rng.next_real() * 5.0f));
      }
    });
  }
  for (int t = 0; t < kQueryThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Rng rng(2000 + static_cast<std::uint64_t>(t));
      while (!stop.load(std::memory_order_acquire)) {
        const auto u = static_cast<idx_t>(
            rng.next_below(static_cast<std::uint64_t>(w.gen.m)));
        const auto answer = batcher.submit(u).get();
        EXPECT_FALSE(answer.items.empty());
        answered.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Retrain continuously while ingest + queries hammer the stack.
  int promotions = 0;
  for (int cycle = 0; cycle < 3; ++cycle) {
    const auto rec = orch.run_cycle(/*force=*/true);
    ASSERT_NE(rec.outcome, orchestrate::CycleOutcome::kTrainFailed)
        << rec.error;
    if (rec.outcome == orchestrate::CycleOutcome::kPromoted) ++promotions;
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  const auto counters = orch.counters();
  EXPECT_EQ(counters.retrains, 3u);
  EXPECT_EQ(counters.deltas_ingested,
            static_cast<std::uint64_t>(kIngestThreads * kDeltasPerThread));
  EXPECT_EQ(counters.promotions, static_cast<std::uint64_t>(promotions));
  EXPECT_GT(answered.load(), 0u);
  // Every accepted delta was merged by some cycle's snapshot or pends for
  // the next — a final snapshot accounts for all of them, none lost.
  EXPECT_EQ(log.snapshot().deltas_applied,
            static_cast<std::uint64_t>(kIngestThreads * kDeltasPerThread));
}

// ------------------------------------------------ retraining tiers ---------

orchestrate::TrainerOptions small_trainer_options() {
  orchestrate::TrainerOptions topt;
  topt.solver.als.f = kF;
  topt.solver.als.lambda = 0.05f;
  topt.iterations = 1;
  return topt;
}

TEST(TrainerBackend, AlternatingTiersAlwaysRestoreTheNewestCandidate) {
  // Regression for the per-instance stamp bug: two backends publishing into
  // the same candidate dir must hand out strictly increasing checkpoint
  // stamps, or restore() (which prefers the highest stamp) can resurrect a
  // stale candidate after the tiers alternate.
  const auto& w = world();
  TempWorkDir work("cumf_trainer_stamps");
  orchestrate::CheckpointStampSource stamps;
  orchestrate::FullAlsTrainer full(small_trainer_options(),
                                   work.path.string(), &stamps);
  orchestrate::IncrementalSgdTrainer inc(orchestrate::IncrementalSgdOptions{},
                                         work.path.string(), &stamps);

  orchestrate::RatingLog log(w.split.train);
  core::CheckpointManager manager(work.path.string());
  linalg::FactorMatrix warm_x = w.base_x;
  linalg::FactorMatrix warm_theta = w.base_theta;
  int last_stamp = -1;
  for (int round = 0; round < 2; ++round) {
    append_deltas(&log, 40, 900 + static_cast<std::uint64_t>(round));
    const auto snap = log.snapshot();
    for (orchestrate::TrainerBackend* backend :
         {static_cast<orchestrate::TrainerBackend*>(&full),
          static_cast<orchestrate::TrainerBackend*>(&inc)}) {
      const auto result = backend->train(snap, &warm_x, &warm_theta);
      const auto restored = manager.restore();
      ASSERT_TRUE(restored.has_value());
      // The restored candidate is the one just published, bit-for-bit...
      EXPECT_EQ(restored->x.data(), result.x.data());
      EXPECT_EQ(restored->theta.data(), result.theta.data());
      // ...because the stamp moved strictly forward across both backends.
      EXPECT_GT(restored->resume_iteration(), last_stamp);
      last_stamp = restored->resume_iteration();
      warm_x = result.x;
      warm_theta = result.theta;
    }
  }
}

TEST(IncrementalSgdTrainer, TouchesOnlyDeltaAffectedRows) {
  const auto& w = world();
  TempWorkDir work("cumf_inc_masked");
  orchestrate::CheckpointStampSource stamps;
  orchestrate::IncrementalSgdTrainer inc(orchestrate::IncrementalSgdOptions{},
                                         work.path.string(), &stamps);

  orchestrate::RatingLog log(w.split.train);
  append_deltas(&log, 60, 911);
  const auto snap = log.snapshot();
  ASSERT_FALSE(snap.touched_users.empty());
  ASSERT_LT(snap.touched_users.size(), static_cast<std::size_t>(w.gen.m));

  const auto result = inc.train(snap, &w.base_x, &w.base_theta);
  EXPECT_EQ(result.tier, orchestrate::TrainTier::kIncrementalSgd);
  EXPECT_EQ(result.users_touched,
            static_cast<idx_t>(snap.touched_users.size()));
  EXPECT_EQ(result.items_touched,
            static_cast<idx_t>(snap.touched_items.size()));
  EXPECT_GT(result.samples_per_epoch, 0u);
  EXPECT_GT(result.modeled_seconds, 0.0);

  const std::vector<char> user_touched = [&] {
    std::vector<char> mask(static_cast<std::size_t>(w.gen.m), 0);
    for (const idx_t u : snap.touched_users) mask[u] = 1;
    return mask;
  }();
  const std::vector<char> item_touched = [&] {
    std::vector<char> mask(static_cast<std::size_t>(w.gen.n), 0);
    for (const idx_t v : snap.touched_items) mask[v] = 1;
    return mask;
  }();
  const auto row_bytes = sizeof(real_t) * static_cast<std::size_t>(kF);
  std::size_t changed_rows = 0;
  for (idx_t u = 0; u < w.gen.m; ++u) {
    if (user_touched[static_cast<std::size_t>(u)] != 0) {
      changed_rows +=
          std::memcmp(result.x.row(u), w.base_x.row(u), row_bytes) != 0;
    } else {
      // Untouched rows come out bit-identical to the warm start.
      EXPECT_EQ(std::memcmp(result.x.row(u), w.base_x.row(u), row_bytes), 0)
          << "untouched user row " << u << " was modified";
    }
  }
  for (idx_t v = 0; v < w.gen.n; ++v) {
    if (item_touched[static_cast<std::size_t>(v)] == 0) {
      EXPECT_EQ(
          std::memcmp(result.theta.row(v), w.base_theta.row(v), row_bytes), 0)
          << "untouched item row " << v << " was modified";
    }
  }
  EXPECT_GT(changed_rows, 0u);  // the touched rows actually trained
}

TEST(IncrementalSgdTrainer, SameSnapshotSameSeedIsBitIdentical) {
  const auto& w = world();
  TempWorkDir work_a("cumf_inc_det_a");
  TempWorkDir work_b("cumf_inc_det_b");
  orchestrate::CheckpointStampSource stamps_a, stamps_b;
  orchestrate::IncrementalSgdOptions sopt;
  orchestrate::IncrementalSgdTrainer a(sopt, work_a.path.string(), &stamps_a);
  orchestrate::IncrementalSgdTrainer b(sopt, work_b.path.string(), &stamps_b);

  orchestrate::RatingLog log(w.split.train);
  append_deltas(&log, 80, 922);
  const auto snap = log.snapshot();

  const auto r1 = a.train(snap, &w.base_x, &w.base_theta);
  const auto r2 = b.train(snap, &w.base_x, &w.base_theta);
  EXPECT_EQ(r1.x.data(), r2.x.data());  // bit-identical, not approximately
  EXPECT_EQ(r1.theta.data(), r2.theta.data());

  // A different seed shuffles the sample order into a different candidate.
  orchestrate::IncrementalSgdOptions other = sopt;
  other.seed ^= 0xbeef;
  TempWorkDir work_c("cumf_inc_det_c");
  orchestrate::CheckpointStampSource stamps_c;
  orchestrate::IncrementalSgdTrainer c(other, work_c.path.string(),
                                       &stamps_c);
  const auto r3 = c.train(snap, &w.base_x, &w.base_theta);
  EXPECT_NE(r1.x.data(), r3.x.data());
}

TEST(Orchestrator, AutoTierConsolidatesOnScheduleAndSplitsCounters) {
  const auto& w = world();
  TempWorkDir work("cumf_orch_auto");
  orchestrate::RatingLog log(w.split.train);
  serve::LiveFactorStore live(serve::FactorStore(w.base_x, w.base_theta, 2));

  auto opt = small_options(work.path.string());
  opt.tier_mode = orchestrate::TrainTierMode::kAuto;
  opt.consolidate_every = 3;
  orchestrate::Orchestrator orch(log, live, w.split.test, opt, &w.R);

  // Feed the held-out slice back in thirds — real signal, so every tier's
  // candidate clears the gate.
  const auto n = w.split.test.val.size();
  std::size_t fed = 0;
  auto feed_third = [&](int third) {
    const std::size_t end = n * static_cast<std::size_t>(third + 1) / 3;
    for (; fed < end; ++fed) {
      ASSERT_TRUE(log.append(w.split.test.row[fed], w.split.test.col[fed],
                             w.split.test.val[fed]));
    }
  };

  for (int cycle = 0; cycle < 3; ++cycle) {
    feed_third(cycle);
    const auto rec = orch.run_cycle();
    ASSERT_EQ(rec.outcome, orchestrate::CycleOutcome::kPromoted)
        << rec.error << " " << rec.gate.reason;
    EXPECT_FALSE(rec.escalated);
    if (cycle < 2) {
      EXPECT_EQ(rec.tier, orchestrate::TrainTier::kIncrementalSgd);
      EXPECT_FALSE(rec.consolidation);
    } else {
      // Every consolidate_every-th training cycle runs full ALS.
      EXPECT_EQ(rec.tier, orchestrate::TrainTier::kFullAls);
      EXPECT_TRUE(rec.consolidation);
    }
  }

  const auto counters = orch.counters();
  EXPECT_EQ(counters.retrains, 3u);
  EXPECT_EQ(counters.retrains_incremental, 2u);
  EXPECT_EQ(counters.retrains_full, 1u);
  EXPECT_EQ(counters.promotions, 3u);
  EXPECT_EQ(counters.promotions_incremental, 2u);
  EXPECT_EQ(counters.promotions_full, 1u);
  EXPECT_EQ(counters.consolidations, 1u);
  EXPECT_EQ(counters.escalations, 0u);
  EXPECT_EQ(counters.last_train_tier,
            static_cast<std::uint64_t>(orchestrate::TrainTier::kFullAls));
  EXPECT_EQ(live.generation(), 4u);  // three promotions over the seed
}

TEST(Orchestrator, RejectedIncrementalCandidateEscalatesToFullAls) {
  const auto& w = world();
  TempWorkDir work("cumf_orch_escalate");
  orchestrate::RatingLog log(w.split.train);
  serve::LiveFactorStore live(serve::FactorStore(w.base_x, w.base_theta, 2));

  auto opt = small_options(work.path.string());
  opt.tier_mode = orchestrate::TrainTierMode::kIncremental;
  // An absurd learning rate diverges the incremental candidate, so the gate
  // must reject it — the cycle then re-trains with full ALS on the same
  // snapshot instead of stalling.
  opt.sgd.lr = 10.0f;
  orchestrate::Orchestrator orch(log, live, w.split.test, opt, &w.R);

  for (std::size_t i = 0; i < w.split.test.val.size(); ++i) {
    ASSERT_TRUE(log.append(w.split.test.row[i], w.split.test.col[i],
                           w.split.test.val[i]));
  }
  const auto rec = orch.run_cycle();
  ASSERT_EQ(rec.outcome, orchestrate::CycleOutcome::kPromoted)
      << rec.error << " " << rec.gate.reason;
  EXPECT_TRUE(rec.escalated);
  EXPECT_EQ(rec.tier, orchestrate::TrainTier::kFullAls);
  EXPECT_EQ(live.generation(), 2u);

  const auto counters = orch.counters();
  EXPECT_EQ(counters.retrains, 2u);  // both passes of the one cycle
  EXPECT_EQ(counters.retrains_incremental, 1u);
  EXPECT_EQ(counters.retrains_full, 1u);
  EXPECT_EQ(counters.rejections_incremental, 1u);
  EXPECT_EQ(counters.rejections_full, 0u);
  EXPECT_EQ(counters.promotions_full, 1u);
  EXPECT_EQ(counters.escalations, 1u);
  EXPECT_EQ(counters.consolidations, 0u);  // escalation, not the schedule

  // Nothing pending after the escalated promotion: the next cycle skips.
  const auto idle = orch.run_cycle();
  EXPECT_EQ(idle.outcome, orchestrate::CycleOutcome::kSkipped);
}

// ------------------------------------------------- end-to-end over TCP -----

TEST(Orchestrator, EndToEndIngestRetrainGateSwapOverTcp) {
  const auto& w = world();
  TempWorkDir work("cumf_orch_e2e");
  orchestrate::RatingLog log(w.split.train);
  serve::LiveFactorStore live(serve::FactorStore(w.base_x, w.base_theta, 2));
  serve::TopKOptions eopt;
  eopt.exclude_rated = &w.R;
  const serve::TopKEngine engine(live, eopt);
  serve::BatcherOptions bopt;
  bopt.k = kTopK;
  bopt.max_batch = 16;
  bopt.max_delay = std::chrono::microseconds(500);
  serve::RequestBatcher batcher(engine, bopt);

  auto opt = small_options(work.path.string());
  orchestrate::Orchestrator orch(log, live, w.split.test, opt, &w.R);

  serve::net::ServerOptions sopt;
  sopt.ingest = [&log](idx_t user, idx_t item, double value) {
    return log.append(user, item, static_cast<real_t>(value));
  };
  sopt.augment_stats = [&orch](serve::ServeStats& s) { orch.merge_into(&s); };
  serve::net::TcpServer server(batcher, sopt);

  // Continuous query traffic for the whole scenario; every response must be
  // kOk — a promotion, rejection, or rollback may never drop a query.
  std::atomic<bool> stop{false};
  std::atomic<int> bad_responses{0};
  std::atomic<std::uint64_t> served{0};
  std::thread traffic([&] {
    serve::net::Client client("127.0.0.1", server.port());
    util::Rng rng(404);
    while (!stop.load(std::memory_order_acquire)) {
      const auto u = static_cast<idx_t>(
          rng.next_below(static_cast<std::uint64_t>(w.gen.m)));
      const auto resp = client.query(u, kTopK);
      if (resp.status != serve::net::Status::kOk) bad_responses.fetch_add(1);
      served.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // 1. Ingest the held-out slice as deltas over the wire.
  serve::net::Client ops("127.0.0.1", server.port());
  const auto n_deltas = w.split.test.val.size();
  for (std::size_t i = 0; i < n_deltas; ++i) {
    ASSERT_EQ(ops.add_rating(w.split.test.row[i], w.split.test.col[i],
                             w.split.test.val[i]),
              serve::net::Status::kOk);
  }
  EXPECT_EQ(ops.add_rating(static_cast<idx_t>(w.gen.m) + 5, 0, 3.0),
            serve::net::Status::kBadUser);
  auto stats = ops.stats();
  EXPECT_EQ(stats.deltas_ingested, n_deltas);
  EXPECT_EQ(stats.deltas_rejected, 1u);
  EXPECT_EQ(stats.generation, 1u);

  // 2. Retrain on the fresh deltas → gate → hot swap under live traffic.
  const auto cycle = orch.run_cycle();
  ASSERT_EQ(cycle.outcome, orchestrate::CycleOutcome::kPromoted)
      << cycle.error << " " << cycle.gate.reason;
  stats = ops.stats();
  EXPECT_EQ(stats.generation, 2u);
  EXPECT_EQ(stats.retrains, 1u);
  EXPECT_EQ(stats.promotions, 1u);
  // The per-tier splits ride the same frame (this server is pinned kFull).
  EXPECT_EQ(stats.retrains_full, 1u);
  EXPECT_EQ(stats.retrains_incremental, 0u);
  EXPECT_EQ(stats.promotions_full, 1u);
  EXPECT_EQ(stats.train_tier,
            static_cast<std::uint64_t>(orchestrate::TrainTier::kFullAls));
  EXPECT_GT(stats.train_wall_ms, 0.0);
  // Promotion moved the gate baseline to the promoted candidate's metrics.
  EXPECT_DOUBLE_EQ(stats.baseline_rmse, cycle.gate.rmse);
  EXPECT_DOUBLE_EQ(stats.baseline_recall, cycle.gate.recall);

  // 3. A degraded candidate is rejected; generation holds.
  const auto rejected =
      orch.submit_candidate(noised(w.base_x, 55), noised(w.base_theta, 56));
  EXPECT_EQ(rejected.outcome, orchestrate::CycleOutcome::kRejected);
  stats = ops.stats();
  EXPECT_EQ(stats.generation, 2u);
  EXPECT_EQ(stats.rejections, 1u);

  // 4. Rollback to the pre-promotion model; queries keep flowing.
  ASSERT_TRUE(orch.rollback());
  stats = ops.stats();
  EXPECT_EQ(stats.generation, 3u);
  EXPECT_EQ(stats.rollbacks, 1u);

  stop.store(true, std::memory_order_release);
  traffic.join();
  EXPECT_EQ(bad_responses.load(), 0);
  EXPECT_GT(served.load(), 0u);

  // The post-rollback answers over the wire are the generation-1 factors,
  // bit-identical to brute force.
  for (idx_t u = 0; u < 40; u += 7) {
    const auto resp = ops.query(u, kTopK);
    ASSERT_EQ(resp.status, serve::net::Status::kOk);
    EXPECT_EQ(resp.generation, 3u);
    EXPECT_EQ(resp.items,
              serve_test::brute_force_topk(w.base_x, w.base_theta, u, kTopK,
                                           &w.R));
  }
}

}  // namespace
}  // namespace cumf
